// Counting: the semantics-exploiting counterpoint to the oblivious
// universal constructions. A bitonic counting network distributes tokens
// over output wires through one-bit balancers, giving a shared counter
// whose registers never exceed a machine word — at the cost of O(log² n)
// steps per draw and only quiescent consistency.
//
// The run contrasts it with the group-update construction on both axes the
// paper cares about: shared accesses per operation (Theorem 6.1's
// currency) and register width (Section 7's caveat: the O(log n) tightness
// of the bound needs unbounded registers).
//
// Run with: go run ./examples/counting
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"

	"jayanti98/internal/counting"
	"jayanti98/internal/llsc"
	"jayanti98/internal/lowerbound"
)

func main() {
	const n = 16

	// Concurrent draw: n goroutines each take one ticket.
	nw := counting.New(n, 0)
	mem := llsc.New(n)
	tickets := make([]int, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for pid := 0; pid < n; pid++ {
		go func(pid int) {
			defer wg.Done()
			tickets[pid] = nw.Next(mem.Handle(pid))
		}(pid)
	}
	wg.Wait()
	sorted := append([]int(nil), tickets...)
	sort.Ints(sorted)
	fmt.Printf("%d goroutines drew tickets %v\n", n, sorted)
	for i, v := range sorted {
		if v != i {
			log.Fatalf("counting property violated: expected exactly 0..%d", n-1)
		}
	}
	fmt.Printf("network: width %d, depth %d balancers per path, %d balancers total\n",
		nw.Width(), nw.Depth(), nw.Balancers())

	// The trade-off table (steps vs register width), measured under
	// lockstep contention on the simulator.
	fmt.Println("\nsteps/op and register width under lockstep contention:")
	fmt.Printf("%-18s %-6s %-14s %-18s %s\n", "implementation", "n", "steps/op (max)", "max register bits", "consistency")
	for _, nn := range []int{8, 32, 128} {
		results, err := lowerbound.RegisterWidthProfile(nn)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range results {
			consistency := "linearizable"
			if !r.Linearizable {
				consistency = "quiescent only"
			}
			fmt.Printf("%-18s %-6d %-14d %-18d %s\n",
				r.Implementation, r.N, r.MaxStepsPerOp, r.MaxRegisterBits, consistency)
		}
	}
	fmt.Println("\nthe oblivious constructions buy O(log n) / O(n) steps with unbounded")
	fmt.Println("registers; the counting network stays word-sized and pays O(log² n) —")
	fmt.Println("every point obeys the paper's Ω(log n) floor.")
}
