// Fetchinc: the same oblivious universal construction code running on both
// backends — the deterministic simulator under the paper's adversary, and
// the concurrent LL/SC memory under real goroutines — and the cost gap
// between the two constructions.
//
// Run with: go run ./examples/fetchinc
package main

import (
	"fmt"
	"log"
	"sync"

	"jayanti98/internal/core"
	"jayanti98/internal/llsc"
	"jayanti98/internal/machine"
	"jayanti98/internal/objtype"
	"jayanti98/internal/shmem"
	"jayanti98/internal/universal"
)

const n = 16

func main() {
	typ := objtype.NewFetchIncrement(32)
	gu := universal.NewGroupUpdate(typ, n, 0)
	he := universal.NewHerlihy(typ, n, 0)

	fmt.Println("== concurrent backend (llsc, real goroutines) ==")
	for _, obj := range []universal.Construction{gu, he} {
		mem := llsc.New(n)
		var wg sync.WaitGroup
		wg.Add(n)
		responses := make([]objtype.Value, n)
		for pid := 0; pid < n; pid++ {
			go func(pid int) {
				defer wg.Done()
				responses[pid] = obj.Invoke(mem.Handle(pid), objtype.Op{Name: objtype.OpFetchIncrement})
			}(pid)
		}
		wg.Wait()
		seen := make(map[objtype.Value]bool)
		for _, v := range responses {
			if seen[v] {
				log.Fatalf("%s: duplicate counter value %v", obj.Name(), v)
			}
			seen[v] = true
		}
		fmt.Printf("%-13s %d goroutines incremented: %d distinct tickets, %d total shared accesses\n",
			obj.Name(), n, len(seen), mem.TotalSteps())
	}

	fmt.Println("\n== simulator backend (adversary-forced worst case) ==")
	for _, obj := range []universal.Construction{gu, he} {
		alg := machine.New(obj.Name(), func(e *machine.Env) shmem.Value {
			return obj.Invoke(e, objtype.Op{Name: objtype.OpFetchIncrement})
		})
		run, err := core.RunAll(alg, n, machine.ZeroTosses, core.Config{NoHistory: true})
		if err != nil {
			log.Fatal(err)
		}
		maxSteps, pid := run.MaxSteps()
		fmt.Printf("%-13s worst op cost %d shared accesses (p%d), documented bound %d, Ω bound %d\n",
			obj.Name(), maxSteps, pid, obj.StepBound(), core.Log4Ceil(n))
	}

	fmt.Println("\ngroup-update stays logarithmic; herlihy pays Θ(n) — and no oblivious")
	fmt.Println("construction may beat ⌈log₄ n⌉ (Theorem 6.1 + Corollary 6.1).")
}
