// Wakeup: watch Theorem 6.1 in action. The fetch&increment reduction of
// Theorem 6.2 solves the n-process wakeup problem with one object
// operation per process; running it against the Figure 2 adversary shows
// the winner paying Θ(log n) shared accesses — always at or above the
// ⌈log₄ n⌉ lower bound, and (because the object is implemented by the
// Group-Update construction) within the O(log n) upper bound.
//
// Run with: go run ./examples/wakeup
package main

import (
	"fmt"
	"log"

	"jayanti98/internal/lowerbound"
	"jayanti98/internal/machine"
	"jayanti98/internal/wakeup"
)

func main() {
	var spec wakeup.ReductionSpec
	for _, s := range wakeup.Reductions() {
		if s.Name == "fetch&increment" {
			spec = s
		}
	}

	fmt.Println("wakeup via fetch&increment over the group-update construction")
	fmt.Println("n      winner steps   ⌈log₄ n⌉   spec/lemmas")
	for n := 2; n <= 256; n *= 2 {
		alg, _, err := lowerbound.BuildReduction(spec, "group-update", n)
		if err != nil {
			log.Fatal(err)
		}
		res, err := lowerbound.MeasureWakeup(alg, n, machine.ZeroTosses)
		if err != nil {
			log.Fatal(err)
		}
		status := "all ok"
		if !res.OK() {
			status = fmt.Sprintf("spec=%v l51=%v t61=%v", res.SpecErr, res.Lemma51Err, res.Theorem61Err)
		}
		fmt.Printf("%-6d %-14d %-10d %s\n", n, res.WinnerSteps, res.Bound, status)
		if res.WinnerSteps < res.Bound {
			log.Fatalf("lower bound violated at n=%d — impossible for a correct run", n)
		}
	}
	fmt.Println("\nthe winner's cost grows with log n and never dips below the bound:")
	fmt.Println("oblivious universal constructions cannot give sublogarithmic objects.")
}
