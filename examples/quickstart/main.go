// Quickstart: build a wait-free shared queue from the Group-Update
// oblivious universal construction and use it from real goroutines.
//
// The construction runs on the concurrent LL/SC memory (package llsc) and
// guarantees at most 8·⌈log₂ n⌉ + 3 shared accesses per operation — the
// tight upper bound matching the paper's Ω(log n) lower bound for
// oblivious constructions.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"

	"jayanti98/internal/llsc"
	"jayanti98/internal/objtype"
	"jayanti98/internal/universal"
)

func main() {
	const n = 8 // number of processes (goroutines)

	// A queue type instantiated through the oblivious construction: the
	// construction never looks at queue semantics, only at its sequential
	// Apply function.
	queue := universal.NewGroupUpdate(objtype.NewEmptyQueue(), n, 0)
	mem := llsc.New(n)

	// Every goroutine enqueues two items and dequeues one.
	var wg sync.WaitGroup
	wg.Add(n)
	dequeued := make([]objtype.Value, n)
	for pid := 0; pid < n; pid++ {
		go func(pid int) {
			defer wg.Done()
			h := mem.Handle(pid)
			queue.Invoke(h, objtype.Op{Name: objtype.OpEnqueue, Arg: fmt.Sprintf("job-%d-a", pid)})
			queue.Invoke(h, objtype.Op{Name: objtype.OpEnqueue, Arg: fmt.Sprintf("job-%d-b", pid)})
			dequeued[pid] = queue.Invoke(h, objtype.Op{Name: objtype.OpDequeue})
		}(pid)
	}
	wg.Wait()

	// 2n enqueues and n dequeues: every dequeue must return a distinct job.
	seen := make(map[objtype.Value]bool)
	items := make([]string, 0, n)
	for pid, v := range dequeued {
		if v == objtype.Empty {
			log.Fatalf("p%d dequeued Empty although enqueues preceded it in its own order", pid)
		}
		if seen[v] {
			log.Fatalf("item %v dequeued twice — linearizability violated", v)
		}
		seen[v] = true
		items = append(items, v.(string))
	}
	sort.Strings(items)
	fmt.Println("each goroutine dequeued a distinct job:", items)

	// Wait-freedom in numbers: no invocation may exceed the documented
	// bound. Three invocations per goroutine here.
	bound := int64(3 * queue.StepBound())
	for pid := 0; pid < n; pid++ {
		if got := mem.Steps(pid); got > bound {
			log.Fatalf("p%d used %d shared accesses, above 3×StepBound = %d", pid, got, bound)
		}
	}
	fmt.Printf("per-op step bound %d held for all %d goroutines (tree depth %d)\n",
		queue.StepBound(), n, queue.Depth())
}
