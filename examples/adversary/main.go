// Adversary: the proof of Theorem 6.1 as a live demonstration. A broken
// "wakeup" algorithm claims victory after a single shared access. The
// adversary runs it, notices the winner's knowledge set S = UP(winner, 1)
// has at most 4 < n processes, replays the (S,A)-run — which Lemma 5.2
// guarantees the winner cannot distinguish from the full run — and exhibits
// the specification violation: the winner announces "everyone is up" while
// most processes never took a step.
//
// Run with: go run ./examples/adversary
package main

import (
	"fmt"
	"log"

	"jayanti98/internal/core"
	"jayanti98/internal/machine"
	"jayanti98/internal/wakeup"
)

func main() {
	const n = 64
	fmt.Printf("running the cheating wakeup algorithm with n = %d processes...\n\n", n)

	run, err := core.RunAll(wakeup.Cheater(), n, machine.ZeroTosses, core.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// In the full run the cheater *looks* fine: everyone stepped in round 1
	// and the 1-returns happen in round 2.
	fmt.Printf("full (All,A)-run: %d rounds, spec check: %v\n",
		len(run.Rounds), core.CheckWakeupRun(run))

	// But Theorem 6.1 says a correct winner needs ⌈log₄ n⌉ = %d steps.
	fmt.Printf("theorem 6.1 check: %v\n\n", core.VerifyTheorem61(run))

	catch, err := core.CatchFastWakeup(run)
	if err != nil {
		log.Fatal(err)
	}
	if catch == nil {
		log.Fatal("expected the cheater to be caught")
	}

	fmt.Printf("caught: winner p%d returned 1 after %d step(s)\n", catch.Winner, catch.WinnerSteps)
	fmt.Printf("its knowledge set S = UP(p%d, %d) = %s — only %d of %d processes\n",
		catch.Winner, catch.WinnerSteps, catch.S, catch.S.Len(), n)
	fmt.Printf("\nreplaying the (S,A)-run (Figure 3): only processes whose UP sets stay\n")
	fmt.Printf("inside S are scheduled. Lemma 5.2 (machine-checked here) makes the two\n")
	fmt.Printf("runs indistinguishable to p%d, so it returns 1 again...\n\n", catch.Winner)

	fmt.Printf("(S,A)-run: p%d returned %v; %d processes never took a step: %v...\n",
		catch.Winner, catch.Sub.Returns[catch.Winner],
		len(catch.NeverStepped), catch.NeverStepped[:8])
	fmt.Printf("\n=> the wakeup specification is violated (condition 3): the algorithm is wrong.\n")
	fmt.Printf("   Any algorithm whose winner spends < log₄ n shared accesses is caught this way.\n")
}
