module jayanti98

go 1.22
