# Developer and CI entry points. `make ci` is what .github/workflows/ci.yml
# runs: build, vet, the full test suite, the race-detector suite, a
# parallel lbreport smoke run, the mutation-detection tests, and the
# coverage gate. `make fuzz-short` and the explore smoke run as separate
# CI jobs.

GO ?= go
FUZZTIME ?= 10s
# Coverage floor for `make cover` (percent of internal/... statements).
# Baseline at the time the gate was added: 90.8%.
COVER_MIN ?= 88

# Commit identifier stamped into benchmark artifacts (BENCH_<sha>.json).
# CI passes GITHUB_SHA; local runs fall back to git, then to "local".
BENCH_SHA ?= $(shell git rev-parse --short=12 HEAD 2>/dev/null || echo local)

# Benchmarks the bench-compare gate runs: the register-file and
# exploration hot paths this codebase optimizes for, kept quick enough
# for CI. Timing diffs only gate when baseline and current ran on the
# same CPU model; allocation and paper-level metrics always gate.
HOTPATH_BENCH ?= E1WakeupForcedSteps|ShmemLLSC|PsetChurn|ValuesEqual|MaxSteps|LLSCFingerprint|ExhaustiveExplore|MachineStep|VMStep|CampaignExec|TASStep|BWLLSC
# Committed baseline artifact to diff against (first BENCH_*.json here).
BENCH_BASELINE ?= $(firstword $(wildcard BENCH_*.json))

.PHONY: build vet test race check smoke serve-smoke dist-smoke campaign-smoke restart-smoke bench bench-json bench-compare profile report mutation cover fuzz-short vm-equivalence tas-equivalence explore-smoke ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The short pre-commit loop: compile, vet, full test suite.
check: build vet test

# Smoke: the full report pipeline at quick sizes with a 4-worker sweep.
smoke:
	$(GO) run ./cmd/lbreport -quick -parallel 4 > /dev/null

# Smoke the job service end to end: build lbserver, submit a quick job
# twice, and assert the resubmission is a cache hit with the same job ID.
serve-smoke:
	./scripts/serve_smoke.sh

# Smoke the distributed subsystem: 1 coordinator + 2 workers, one worker
# SIGKILLed mid-job, and the merged result must be byte-identical to a
# local no-worker run.
dist-smoke:
	./scripts/dist_smoke.sh

# Smoke the campaign subsystem end to end (-tags mutation): 1 server + 2
# workers hunt the seeded group-update bug, one worker is SIGKILLed
# mid-campaign, the shrunk finding must replay bit-for-bit, and the
# campaign must survive a server restart with its corpus intact.
campaign-smoke:
	./scripts/campaign_smoke.sh

# Smoke restart durability: SIGKILL lbserver mid-run and assert the job
# journal re-enqueues pending work, keeps DELETE tombstones, and serves
# finished results byte-identically after the restart.
restart-smoke:
	./scripts/restart_smoke.sh

bench:
	$(GO) test -run=^$$ -bench=. -benchmem .

# Benchmark baseline artifact: three samples per benchmark, converted to
# BENCH_<sha>.json (scripts/bench_json.go) so CI can archive one
# machine-readable baseline per commit and two commits can be diffed.
bench-json:
	$(GO) test -run=^$$ -bench=. -benchmem -count=3 . | $(GO) run ./scripts -o BENCH_$(BENCH_SHA).json
	@echo "wrote BENCH_$(BENCH_SHA).json"

# Hot-path regression gate: rerun the hot-path benchmarks and diff them
# against the committed baseline with per-metric-class tolerances
# (scripts/bench_compare.go). Fails on regressions past tolerance.
bench-compare:
	@test -n "$(BENCH_BASELINE)" || { echo "bench-compare: no committed BENCH_*.json baseline found"; exit 1; }
	@echo "comparing against $(BENCH_BASELINE)"
	$(GO) test -run=^$$ -bench='$(HOTPATH_BENCH)' -benchmem -count=3 . | $(GO) run ./scripts -compare $(BENCH_BASELINE)

# Quick CPU-hotspot report: profile a quick lbreport run and print the
# top-10 flat consumers. The profile stays in /tmp for deeper digging
# (`go tool pprof /tmp/lbreport.cpu.pprof`); the live server exposes the
# same data on /debug/pprof/.
profile:
	$(GO) run ./cmd/lbreport -quick -parallel 4 -cpuprofile /tmp/lbreport.cpu.pprof > /dev/null
	$(GO) tool pprof -top -nodecount=10 /tmp/lbreport.cpu.pprof

# Regenerate the captured experiment report (full sizes, all CPUs).
report:
	$(GO) run ./cmd/lbreport -o EXPERIMENTS.report.md

# Prove the schedule explorer detects real bugs: the deliberately broken
# construction behind the mutation tag must be caught, shrunk, and replayed.
mutation:
	$(GO) test -tags mutation ./internal/explore/ ./internal/universal/ ./internal/campaign/ ./internal/algos/tas/

# Coverage gate: fail if internal/... statement coverage drops below
# COVER_MIN percent.
cover:
	$(GO) test -coverprofile=coverage.out ./internal/...
	@$(GO) tool cover -func=coverage.out | tail -1
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	ok=$$(awk -v t="$$total" -v m="$(COVER_MIN)" 'BEGIN {print (t >= m) ? 1 : 0}'); \
	if [ "$$ok" != 1 ]; then \
		echo "coverage $$total% is below the $(COVER_MIN)% floor"; exit 1; \
	fi

# Native fuzzing, ~FUZZTIME per target (plain `go test` already runs the
# committed corpus under testdata/fuzz as unit tests).
fuzz-short:
	$(GO) test ./internal/core/ -run '^$$' -fuzz '^FuzzLemma51AndDeterminism$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core/ -run '^$$' -fuzz '^FuzzIndistinguishability$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core/ -run '^$$' -fuzz '^FuzzUPMonotone$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/shmem/ -run '^$$' -fuzz '^FuzzRegStateEqual$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/lockstep/ -run '^$$' -fuzz '^FuzzVMEquivalence$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/algos/tas/ -run '^$$' -fuzz '^FuzzTAS$$' -fuzztime $(FUZZTIME)

# Differential proof that the bytecode VM and the goroutine interpreter are
# observably identical: exhaustive lockstep exploration at n ∈ {2,3} for
# every compiled construction, the committed fuzz corpus, the compiler
# edge-case suite, and the -race chunk-sharing stress tests.
vm-equivalence:
	$(GO) test ./internal/vmachine/ ./internal/machine/ ./internal/lockstep/
	$(GO) test -race ./internal/lockstep/

# Differential proof that the zoo's TAS protocols and the Blelloch–Wei
# LL/SC backend are equivalent to their references: both-engine lockstep
# goldens for the TAS algorithms, the randomized-vs-native backend
# differential, and the exhaustive backend-equality harness
# (TestExhaustiveBackendsEqual — byte-identical exploration reports).
tas-equivalence:
	$(GO) test ./internal/algos/... -run 'TestLockstep|TestSemantics|TestDifferentialAgainstNative|TestFingerprintAllocationParity'
	$(GO) test ./internal/explore/ -run 'TestExhaustiveBackendsEqual|TestTAS'

# Exhaustive schedule exploration of every construction at small n.
explore-smoke:
	$(GO) run ./cmd/explore -alg group-update -n 2
	$(GO) run ./cmd/explore -alg herlihy -n 2
	$(GO) run ./cmd/explore -alg central -n 2
	$(GO) run ./cmd/explore -alg central -n 3
	$(GO) run ./cmd/explore -alg tas-tv -object tas -n 2
	$(GO) run ./cmd/explore -alg tas-tournament -object tas -n 2 -llsc bw

ci: build vet test race smoke mutation cover
