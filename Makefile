# Developer and CI entry points. `make ci` is what .github/workflows/ci.yml
# runs: build, vet, the full test suite, the race-detector suite, and a
# parallel lbreport smoke run.

GO ?= go

.PHONY: build vet test race smoke bench report ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Smoke: the full report pipeline at quick sizes with a 4-worker sweep.
smoke:
	$(GO) run ./cmd/lbreport -quick -parallel 4 > /dev/null

bench:
	$(GO) test -run=^$$ -bench=. -benchmem .

# Regenerate the captured experiment report (full sizes, all CPUs).
report:
	$(GO) run ./cmd/lbreport -o EXPERIMENTS.report.md

ci: build vet test race smoke
