// Benchmark comparison: diff a current run against a committed
// BENCH_<sha>.json baseline, with a per-metric-class tolerance, and exit
// non-zero on hot-path regressions (`make bench-compare`; the
// bench-compare CI job).
//
// Metric classes:
//
//   - timing (ns/op and every */sec unit): compared with a loose relative
//     tolerance (-time-tol, default 1.0 — i.e. fail only past 2× worse),
//     because wall clock is the noisiest signal. Direction-aware: ns/op
//     regresses upward, */sec regresses downward. When the two artifacts
//     record different CPU models the comparison is cross-machine and
//     timing violations downgrade to warnings.
//   - allocation (B/op, allocs/op): moderate tolerance (-alloc-tol,
//     default 0.35). Allocation counts are near-deterministic and
//     machine-independent, so these gate even cross-machine.
//   - everything else — the paper-level metrics reported via
//     b.ReportMetric (winner-steps, log4n-bound, forced-steps/op, …) —
//     is deterministic by construction and must match exactly.
//
// Benchmarks present in only one artifact are skipped (reported, not
// failed), so a quick hot-path-pattern run can be compared against a
// full-suite baseline.
package main

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// metricClass is the tolerance family a unit belongs to.
type metricClass int

const (
	classExact metricClass = iota
	classAlloc
	classTiming
)

// classify maps a metric unit to its tolerance class and direction.
func classify(unit string) (c metricClass, higherIsBetter bool) {
	switch {
	case unit == "ns/op":
		return classTiming, false
	case strings.HasSuffix(unit, "/sec"):
		return classTiming, true
	case unit == "B/op" || unit == "allocs/op":
		return classAlloc, false
	default:
		return classExact, false
	}
}

// compareConfig carries the tolerances and whether timing gates.
type compareConfig struct {
	timeTol  float64 // relative, e.g. 1.0 = allow up to 2× worse
	allocTol float64
	// sameCPU gates timing: a cross-machine diff only warns on wall clock.
	sameCPU bool
}

// violation is one metric that regressed past its class tolerance.
type violation struct {
	bench, unit       string
	baseline, current float64
	gating            bool // false: cross-machine timing, warn only
}

func (v violation) String() string {
	kind := "FAIL"
	if !v.gating {
		kind = "warn (cross-machine timing)"
	}
	return fmt.Sprintf("%s: %s %s: baseline %.4g, current %.4g (%+.1f%%)",
		kind, v.bench, v.unit, v.baseline, v.current, 100*(v.current-v.baseline)/v.baseline)
}

// regressed reports whether cur is worse than base beyond tol, in the
// direction that matters for the unit. A zero baseline gates exactly.
func regressed(base, cur, tol float64, higherIsBetter bool) bool {
	if base == 0 {
		return cur != 0 && !higherIsBetter
	}
	if higherIsBetter {
		return cur < base/(1+tol)
	}
	return cur > base*(1+tol)
}

// compare diffs current against baseline and returns every violation plus
// the skipped benchmark names (present in only one artifact). Failures are
// the gating subset of the violations.
func compare(baseline, current *Output, cfg compareConfig) (violations []violation, skipped []string) {
	curByName := map[string]*Benchmark{}
	for _, b := range current.Benchmarks {
		curByName[b.Name] = b
	}
	seen := map[string]bool{}
	for _, base := range baseline.Benchmarks {
		cur := curByName[base.Name]
		if cur == nil {
			skipped = append(skipped, base.Name+" (baseline only)")
			continue
		}
		seen[base.Name] = true
		for _, unit := range unitNames(base.Mean) {
			bv := base.Mean[unit]
			cv, ok := cur.Mean[unit]
			if !ok {
				continue
			}
			class, higherBetter := classify(unit)
			var bad, gating bool
			switch class {
			case classExact:
				// Means of deterministic per-run values; exact up to float
				// representation.
				bad = math.Abs(cv-bv) > 1e-9*math.Max(math.Abs(bv), 1)
				gating = true
			case classAlloc:
				bad = regressed(bv, cv, cfg.allocTol, false)
				gating = true
			case classTiming:
				bad = regressed(bv, cv, cfg.timeTol, higherBetter)
				gating = cfg.sameCPU
			}
			if bad {
				violations = append(violations, violation{
					bench: base.Name, unit: unit, baseline: bv, current: cv, gating: gating,
				})
			}
		}
	}
	for _, b := range current.Benchmarks {
		if !seen[b.Name] {
			skipped = append(skipped, b.Name+" (current only)")
		}
	}
	return violations, skipped
}

// unitNames returns the unit keys of a mean map in sorted order so the
// report (and any test of it) is deterministic.
func unitNames(m map[string]float64) []string {
	names := make([]string, 0, len(m))
	for u := range m {
		names = append(names, u)
	}
	sort.Strings(names)
	return names
}

// runCompare prints the comparison report to w and returns the number of
// gating failures.
func runCompare(w io.Writer, baseline, current *Output, cfg compareConfig) int {
	violations, skipped := compare(baseline, current, cfg)
	failures := 0
	for _, v := range violations {
		fmt.Fprintln(w, v)
		if v.gating {
			failures++
		}
	}
	for _, s := range skipped {
		fmt.Fprintf(w, "skip: %s\n", s)
	}
	if failures == 0 {
		fmt.Fprintf(w, "bench-compare: ok (%d warnings, %d skipped)\n", len(violations)-failures, len(skipped))
	} else {
		fmt.Fprintf(w, "bench-compare: %d regression(s) past tolerance\n", failures)
	}
	return failures
}
