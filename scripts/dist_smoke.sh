#!/bin/sh
# dist_smoke.sh — end-to-end smoke test of the distributed execution
# subsystem: one lbserver coordinator, two lbworkers, one sweep job.
# Worker A is SIGKILLed mid-run so its lease expires and the shard is
# re-leased to worker B; the job must still complete, and the result must
# be byte-identical to a local (no-worker) run of the same spec — the
# determinism contract the shard protocol is built on.
set -eu

ADDR=${LBSERVER_ADDR:-127.0.0.1:18474}
BASE="http://$ADDR"
LOCAL_ADDR=${LBSERVER_LOCAL_ADDR:-127.0.0.1:18475}
LOCAL_BASE="http://$LOCAL_ADDR"
TMP=$(mktemp -d)
SERVER_PID=
LOCAL_PID=
WORKER_A_PID=
WORKER_B_PID=

cleanup() {
    for pid in "$SERVER_PID" "$LOCAL_PID" "$WORKER_A_PID" "$WORKER_B_PID"; do
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    done
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "dist-smoke: building lbserver and lbworker"
go build -o "$TMP/lbserver" ./cmd/lbserver
go build -o "$TMP/lbworker" ./cmd/lbworker

# Short lease TTL so the killed worker's shard is re-leased within the
# test's patience rather than the production default's 15s.
"$TMP/lbserver" -addr "$ADDR" -workers 2 -cache-dir "$TMP/dist-cache" \
    -lease-ttl 2s -dist-shards 8 &
SERVER_PID=$!

wait_healthy() {
    i=0
    until curl -fsS "$1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -ge 50 ]; then
            echo "dist-smoke: server at $1 never became healthy" >&2
            exit 1
        fi
        sleep 0.2
    done
}
wait_healthy "$BASE"

# metric NAME: read one counter/gauge value from /metrics (0 if absent).
metric() {
    curl -fsS "$BASE/metrics" | awk -v name="$1" '$1 == name {print $2; found=1} END {if (!found) print 0}'
}

# wait_metric NAME MIN: poll until the metric reaches MIN.
wait_metric() {
    i=0
    while true; do
        v=$(metric "$1")
        # Values are plain integers for counters; -ge works.
        if [ "${v%.*}" -ge "$2" ]; then
            return 0
        fi
        i=$((i + 1))
        if [ "$i" -ge 300 ]; then
            echo "dist-smoke: $1 never reached $2 (last: $v)" >&2
            exit 1
        fi
        sleep 0.1
    done
}

"$TMP/lbworker" -server "$BASE" -id worker-a -backoff 50ms &
WORKER_A_PID=$!
wait_metric dist_workers_active 1
echo "dist-smoke: worker-a polling"

# A sweep big enough that worker-a is still mid-job when it dies: 3
# constructions x ns 2..256 = 24 coordinates over 8 shards, the largest
# taking seconds.
SPEC='{"kind":"sweep","sweep":{"type":"fetch&increment","maxN":256}}'
resp=$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$SPEC" "$BASE/v1/jobs")
id=$(printf '%s' "$resp" | grep -o '"id":"[0-9a-f]\{64\}"' | head -1 | cut -d'"' -f4)
if [ -z "$id" ]; then
    echo "dist-smoke: no job ID in response: $resp" >&2
    exit 1
fi
echo "dist-smoke: submitted sweep job $id"

wait_metric dist_jobs_distributed_total 1
# Let worker-a lease its way into the job, then crash it without ceremony
# (SIGKILL: no goodbye, the lease just stops heartbeating).
wait_metric dist_shards_leased_total 3
kill -9 "$WORKER_A_PID" 2>/dev/null || true
wait "$WORKER_A_PID" 2>/dev/null || true
WORKER_A_PID=
echo "dist-smoke: worker-a killed mid-run; starting worker-b"
"$TMP/lbworker" -server "$BASE" -id worker-b -backoff 50ms &
WORKER_B_PID=$!

# The orphaned lease must expire and go back in the queue...
wait_metric dist_shards_released_total 1
echo "dist-smoke: orphaned shard re-leased after TTL"

# ...and the job must still finish.
status=
i=0
while [ "$i" -lt 600 ]; do
    view=$(curl -fsS "$BASE/v1/jobs/$id")
    status=$(printf '%s' "$view" | grep -o '"status":"[a-z]*"' | head -1 | cut -d'"' -f4)
    case "$status" in
    done) break ;;
    failed | canceled)
        echo "dist-smoke: job ended $status: $view" >&2
        exit 1
        ;;
    esac
    i=$((i + 1))
    sleep 0.2
done
if [ "$status" != done ]; then
    echo "dist-smoke: job never finished (last status: $status)" >&2
    exit 1
fi
echo "dist-smoke: distributed job done despite the worker crash"

# Byte-identity: a second server with no workers runs the same spec
# locally; the content-addressed cache files must be identical.
"$TMP/lbserver" -addr "$LOCAL_ADDR" -workers 2 -cache-dir "$TMP/local-cache" -dist=false &
LOCAL_PID=$!
wait_healthy "$LOCAL_BASE"
resp=$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$SPEC" "$LOCAL_BASE/v1/jobs")
printf '%s' "$resp" | grep -q "\"id\":\"$id\"" || {
    echo "dist-smoke: local server derived a different job ID: $resp" >&2
    exit 1
}
i=0
while [ "$i" -lt 600 ]; do
    status=$(curl -fsS "$LOCAL_BASE/v1/jobs/$id" | grep -o '"status":"[a-z]*"' | head -1 | cut -d'"' -f4)
    [ "$status" = done ] && break
    if [ "$status" = failed ] || [ "$status" = canceled ]; then
        echo "dist-smoke: local job ended $status" >&2
        exit 1
    fi
    i=$((i + 1))
    sleep 0.2
done
if [ "$status" != done ]; then
    echo "dist-smoke: local job never finished" >&2
    exit 1
fi

dist_hash=$(sha256sum "$TMP/dist-cache/$id.json" | cut -d' ' -f1)
local_hash=$(sha256sum "$TMP/local-cache/$id.json" | cut -d' ' -f1)
if [ "$dist_hash" != "$local_hash" ]; then
    echo "dist-smoke: distributed result differs from local run" >&2
    echo "  distributed: $dist_hash" >&2
    echo "  local:       $local_hash" >&2
    exit 1
fi
echo "dist-smoke: distributed result byte-identical to local run ($dist_hash)"

completed=$(metric dist_shards_completed_total)
released=$(metric dist_shards_released_total)
echo "dist-smoke: ok — shards completed=$completed released=$released"
