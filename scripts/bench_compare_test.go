package main

import (
	"strings"
	"testing"
)

func mkOutput(cpu string, benches map[string]map[string]float64) *Output {
	out := &Output{Env: map[string]string{"cpu": cpu}}
	for _, name := range unitKeys(benches) {
		out.Benchmarks = append(out.Benchmarks, &Benchmark{Name: name, Mean: benches[name]})
	}
	return out
}

func unitKeys(m map[string]map[string]float64) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	// Insertion order is irrelevant to compare(); keep it simple.
	return names
}

func TestClassify(t *testing.T) {
	cases := []struct {
		unit   string
		class  metricClass
		higher bool
	}{
		{"ns/op", classTiming, false},
		{"steps/sec", classTiming, true},
		{"runs/sec", classTiming, true},
		{"B/op", classAlloc, false},
		{"allocs/op", classAlloc, false},
		{"winner-steps", classExact, false},
		{"log4n-bound", classExact, false},
		{"forced-steps/op", classExact, false},
	}
	for _, tc := range cases {
		c, higher := classify(tc.unit)
		if c != tc.class || higher != tc.higher {
			t.Errorf("classify(%q) = (%v, %t), want (%v, %t)", tc.unit, c, higher, tc.class, tc.higher)
		}
	}
}

func TestCompareGatesClasses(t *testing.T) {
	cfg := compareConfig{timeTol: 1.0, allocTol: 0.35, sameCPU: true}
	baseline := mkOutput("cpuA", map[string]map[string]float64{
		"BenchmarkHot-4": {"ns/op": 100, "allocs/op": 10, "winner-steps": 8, "steps/sec": 1000},
	})

	// Within tolerance on every class: no violations.
	ok := mkOutput("cpuA", map[string]map[string]float64{
		"BenchmarkHot-4": {"ns/op": 150, "allocs/op": 12, "winner-steps": 8, "steps/sec": 700},
	})
	if v, _ := compare(baseline, ok, cfg); len(v) != 0 {
		t.Fatalf("unexpected violations: %v", v)
	}

	// Each class tripped: timing 2.5x slower, throughput under half,
	// allocs +50%, and a deterministic metric off by one.
	bad := mkOutput("cpuA", map[string]map[string]float64{
		"BenchmarkHot-4": {"ns/op": 250, "allocs/op": 15, "winner-steps": 9, "steps/sec": 400},
	})
	v, _ := compare(baseline, bad, cfg)
	if len(v) != 4 {
		t.Fatalf("got %d violations, want 4: %v", len(v), v)
	}
	for _, viol := range v {
		if !viol.gating {
			t.Errorf("violation %v should gate on the same CPU", viol)
		}
	}

	// Cross-machine: the timing violations downgrade to warnings, the
	// alloc and exact ones still gate.
	cfg.sameCPU = false
	v, _ = compare(baseline, bad, cfg)
	gating := 0
	for _, viol := range v {
		cls, _ := classify(viol.unit)
		if viol.gating != (cls != classTiming) {
			t.Errorf("violation %v: gating = %t on cross-machine compare", viol, viol.gating)
		}
		if viol.gating {
			gating++
		}
	}
	if gating != 2 {
		t.Fatalf("got %d gating violations cross-machine, want 2 (allocs, exact)", gating)
	}
}

func TestCompareImprovementsDoNotGate(t *testing.T) {
	cfg := compareConfig{timeTol: 1.0, allocTol: 0.35, sameCPU: true}
	baseline := mkOutput("cpuA", map[string]map[string]float64{
		"BenchmarkHot-4": {"ns/op": 100, "allocs/op": 10, "steps/sec": 1000},
	})
	// 10x faster, zero allocs, 10x throughput: improvements never fail.
	better := mkOutput("cpuA", map[string]map[string]float64{
		"BenchmarkHot-4": {"ns/op": 10, "allocs/op": 0, "steps/sec": 10000},
	})
	if v, _ := compare(baseline, better, cfg); len(v) != 0 {
		t.Fatalf("improvements flagged as regressions: %v", v)
	}
}

func TestCompareSkipsDisjointBenchmarks(t *testing.T) {
	cfg := compareConfig{timeTol: 1.0, allocTol: 0.35, sameCPU: true}
	baseline := mkOutput("cpuA", map[string]map[string]float64{
		"BenchmarkOld-4":    {"ns/op": 100},
		"BenchmarkShared-4": {"ns/op": 100},
	})
	current := mkOutput("cpuA", map[string]map[string]float64{
		"BenchmarkShared-4": {"ns/op": 120},
		"BenchmarkNew-4":    {"ns/op": 5},
	})
	v, skipped := compare(baseline, current, cfg)
	if len(v) != 0 {
		t.Fatalf("unexpected violations: %v", v)
	}
	if len(skipped) != 2 {
		t.Fatalf("skipped = %v, want baseline-only and current-only entries", skipped)
	}
	joined := strings.Join(skipped, "; ")
	if !strings.Contains(joined, "BenchmarkOld-4 (baseline only)") ||
		!strings.Contains(joined, "BenchmarkNew-4 (current only)") {
		t.Fatalf("skipped = %v", skipped)
	}
}

func TestCompareMissingUnitSkipped(t *testing.T) {
	cfg := compareConfig{timeTol: 1.0, allocTol: 0.35, sameCPU: true}
	baseline := mkOutput("cpuA", map[string]map[string]float64{
		"BenchmarkHot-4": {"ns/op": 100, "steps/sec": 1000},
	})
	// -benchmem off in the current run: units absent on one side are not
	// violations.
	current := mkOutput("cpuA", map[string]map[string]float64{
		"BenchmarkHot-4": {"ns/op": 100},
	})
	if v, _ := compare(baseline, current, cfg); len(v) != 0 {
		t.Fatalf("missing unit flagged: %v", v)
	}
}

func TestRunCompareReport(t *testing.T) {
	cfg := compareConfig{timeTol: 1.0, allocTol: 0.35, sameCPU: true}
	baseline := mkOutput("cpuA", map[string]map[string]float64{
		"BenchmarkHot-4": {"winner-steps": 8},
	})
	bad := mkOutput("cpuA", map[string]map[string]float64{
		"BenchmarkHot-4": {"winner-steps": 9},
	})
	var sb strings.Builder
	if failures := runCompare(&sb, baseline, bad, cfg); failures != 1 {
		t.Fatalf("failures = %d, want 1; report:\n%s", failures, sb.String())
	}
	if !strings.Contains(sb.String(), "FAIL: BenchmarkHot-4 winner-steps") {
		t.Fatalf("report missing failure line:\n%s", sb.String())
	}
	sb.Reset()
	if failures := runCompare(&sb, baseline, baseline, cfg); failures != 0 {
		t.Fatalf("self-compare failed:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "bench-compare: ok") {
		t.Fatalf("report missing ok line:\n%s", sb.String())
	}
}

func TestRegressedZeroBaseline(t *testing.T) {
	if regressed(0, 5, 1.0, false) != true {
		t.Error("nonzero over a zero lower-is-better baseline must regress")
	}
	if regressed(0, 0, 1.0, false) {
		t.Error("zero over zero is not a regression")
	}
	if regressed(0, 5, 1.0, true) {
		t.Error("throughput appearing where baseline had none is not a regression")
	}
}
