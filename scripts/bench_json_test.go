package main

import (
	"math"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: jayanti98
cpu: Intel(R) Xeon(R) CPU
BenchmarkWakeupCentral/n=8-4         	     100	  11027719 ns/op	   24.00 winner-steps	    2048 B/op	      12 allocs/op
BenchmarkWakeupCentral/n=8-4         	     102	  10899100 ns/op	   24.00 winner-steps	    2040 B/op	      12 allocs/op
BenchmarkReport-4                    	       2	 500000000 ns/op
PASS
ok  	jayanti98	3.21s
`

func TestParse(t *testing.T) {
	out, err := parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if out.Env["goos"] != "linux" || out.Env["pkg"] != "jayanti98" || out.Env["cpu"] != "Intel(R) Xeon(R) CPU" {
		t.Fatalf("env = %v", out.Env)
	}
	if len(out.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks", len(out.Benchmarks))
	}
	b := out.Benchmarks[0]
	if b.Name != "BenchmarkWakeupCentral/n=8-4" || len(b.Runs) != 2 {
		t.Fatalf("first benchmark = %+v", b)
	}
	if b.Runs[0].Iterations != 100 || b.Runs[0].Metrics["ns/op"] != 11027719 ||
		b.Runs[0].Metrics["winner-steps"] != 24 || b.Runs[0].Metrics["allocs/op"] != 12 {
		t.Fatalf("first run = %+v", b.Runs[0])
	}
	if got := b.Mean["ns/op"]; math.Abs(got-10963409.5) > 1e-6 {
		t.Fatalf("mean ns/op = %v", got)
	}
	if got := b.Mean["B/op"]; got != 2044 {
		t.Fatalf("mean B/op = %v", got)
	}
	if got := out.Benchmarks[1]; got.Name != "BenchmarkReport-4" || len(got.Runs) != 1 || got.Mean["ns/op"] != 5e8 {
		t.Fatalf("second benchmark = %+v", got)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, line := range []string{
		"BenchmarkX-4\t100\t12 ns/op\textra",
		"BenchmarkX-4\tNaNiter\t12 ns/op",
		"BenchmarkX-4\t100\tabc ns/op",
	} {
		if _, err := parse(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("parse accepted %q", line)
		}
	}
}

func TestParseBareNameLine(t *testing.T) {
	out, err := parse(strings.NewReader("BenchmarkX\nBenchmarkX-4 \t 10\t5 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Benchmarks) != 1 || out.Benchmarks[0].Name != "BenchmarkX-4" {
		t.Fatalf("benchmarks = %+v", out.Benchmarks)
	}
}
