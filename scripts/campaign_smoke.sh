#!/bin/sh
# campaign_smoke.sh — end-to-end smoke test of the coverage-guided
# campaign subsystem: one lbserver, two lbworkers, one campaign hunting
# the deliberately broken group-update construction (-tags mutation).
# Worker A is SIGKILLed mid-campaign; the campaign must still find the
# linearizability bug, auto-shrink it, and persist a replay file that
# re-executes bit-for-bit. The server is then SIGTERMed and restarted on
# the same cache directory; the campaign must resume from its checkpoint
# with the corpus intact (identical corpus digest).
set -eu

ADDR=${LBSERVER_ADDR:-127.0.0.1:18476}
BASE="http://$ADDR"
TMP=$(mktemp -d)
SERVER_PID=
WORKER_A_PID=
WORKER_B_PID=

cleanup() {
    for pid in "$SERVER_PID" "$WORKER_A_PID" "$WORKER_B_PID"; do
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    done
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "campaign-smoke: building lbserver, lbworker, explore (-tags mutation)"
go build -tags mutation -o "$TMP/lbserver" ./cmd/lbserver
go build -tags mutation -o "$TMP/lbworker" ./cmd/lbworker
go build -tags mutation -o "$TMP/explore" ./cmd/explore

start_server() {
    "$TMP/lbserver" -addr "$ADDR" -workers 2 -cache-dir "$TMP/cache" \
        -lease-ttl 2s -dist-shards 8 \
        -campaign-findings "$TMP/findings" -campaign-checkpoint-every 1 &
    SERVER_PID=$!
}
start_server

wait_healthy() {
    i=0
    until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -ge 50 ]; then
            echo "campaign-smoke: server never became healthy" >&2
            exit 1
        fi
        sleep 0.2
    done
}
wait_healthy

# metric NAME: read one counter/gauge value from /metrics (0 if absent).
metric() {
    curl -fsS "$BASE/metrics" | awk -v name="$1" '$1 == name {print $2; found=1} END {if (!found) print 0}'
}

# wait_metric NAME MIN: poll until the metric reaches MIN.
wait_metric() {
    i=0
    while true; do
        v=$(metric "$1")
        if [ "${v%.*}" -ge "$2" ]; then
            return 0
        fi
        i=$((i + 1))
        if [ "$i" -ge 300 ]; then
            echo "campaign-smoke: $1 never reached $2 (last: $v)" >&2
            exit 1
        fi
        sleep 0.1
    done
}

# field NAME JSON: extract a scalar JSON field value (string or number).
field() {
    printf '%s' "$2" | grep -o "\"$1\":\"[^\"]*\"\|\"$1\":[0-9]*" | head -1 | sed "s/\"$1\"://; s/\"//g"
}

"$TMP/lbworker" -server "$BASE" -id worker-a -backoff 50ms &
WORKER_A_PID=$!
wait_metric dist_workers_active 1
"$TMP/lbworker" -server "$BASE" -id worker-b -backoff 50ms &
WORKER_B_PID=$!
echo "campaign-smoke: two workers polling"

# A bounded campaign against the seeded bug: 8 rounds x 64 inputs is far
# more than the mutant survives, and the bound makes the post-restart
# corpus comparison exact (the resumed campaign is already at its bound).
SPEC='{"alg":"group-update-broken","n":2,"batchSize":64,"maxRounds":8}'
resp=$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$SPEC" "$BASE/v1/campaigns")
id=$(field id "$resp")
if [ -z "$id" ]; then
    echo "campaign-smoke: no campaign ID in response: $resp" >&2
    exit 1
fi
echo "campaign-smoke: started campaign $id"

# Resubmitting the same spec must attach (200), never fork a duplicate.
code=$(curl -fsS -o /dev/null -w '%{http_code}' -X POST -H 'Content-Type: application/json' -d "$SPEC" "$BASE/v1/campaigns")
if [ "$code" != 200 ]; then
    echo "campaign-smoke: resubmission answered $code, want 200" >&2
    exit 1
fi

# Let the fleet lease its way into the round fan-out, then SIGKILL
# worker-a: its shards must be re-leased to worker-b after the TTL.
wait_metric dist_shards_leased_total 3
kill -9 "$WORKER_A_PID" 2>/dev/null || true
wait "$WORKER_A_PID" 2>/dev/null || true
WORKER_A_PID=
echo "campaign-smoke: worker-a SIGKILLed mid-campaign"

# The campaign must find, shrink, and keep the seeded bug...
wait_metric campaign_findings_total 1
echo "campaign-smoke: finding kept (shrunk counterexample recorded)"

# ...and run to its round bound despite the crash.
status=
i=0
while [ "$i" -lt 600 ]; do
    view=$(curl -fsS "$BASE/v1/campaigns/$id")
    status=$(field status "$view")
    case "$status" in
    done) break ;;
    failed)
        echo "campaign-smoke: campaign failed: $view" >&2
        exit 1
        ;;
    esac
    i=$((i + 1))
    sleep 0.2
done
if [ "$status" != done ]; then
    echo "campaign-smoke: campaign never finished (last status: $status)" >&2
    exit 1
fi

view=$(curl -fsS "$BASE/v1/campaigns/$id")
rounds=$(field rounds "$view")
corpus_digest=$(field corpusDigest "$view")
corpus_size=$(field corpusSize "$view")
finding_kind=$(field kind "$view")
replay_path=$(field path "$view")
echo "campaign-smoke: campaign done: rounds=$rounds corpus=$corpus_size finding=$finding_kind"

[ "$rounds" = 8 ] || { echo "campaign-smoke: rounds=$rounds, want 8" >&2; exit 1; }
[ "${corpus_size:-0}" -ge 1 ] || { echo "campaign-smoke: empty corpus" >&2; exit 1; }
[ "$finding_kind" = non-linearizable ] || {
    echo "campaign-smoke: finding kind $finding_kind, want non-linearizable: $view" >&2
    exit 1
}
if [ -z "$replay_path" ] || [ ! -f "$replay_path" ]; then
    echo "campaign-smoke: no persisted replay file (path: '$replay_path')" >&2
    exit 1
fi

# The shrunk finding must re-execute bit-for-bit from its replay file.
"$TMP/explore" -replay "$replay_path"
echo "campaign-smoke: shrunk finding replays bit-for-bit ($replay_path)"

# Restart: SIGTERM the server, bring a new one up on the same cache dir.
# The checkpoint must resume the campaign with its corpus intact.
kill "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=
echo "campaign-smoke: server stopped; restarting on the same cache dir"
start_server
wait_healthy

status=
i=0
while [ "$i" -lt 300 ]; do
    view2=$(curl -fsS "$BASE/v1/campaigns/$id" || true)
    status=$(field status "$view2")
    [ "$status" = done ] && break
    i=$((i + 1))
    sleep 0.1
done
if [ "$status" != done ]; then
    echo "campaign-smoke: campaign did not resume after restart (status: $status)" >&2
    exit 1
fi
rounds2=$(field rounds "$view2")
corpus_digest2=$(field corpusDigest "$view2")
[ "$rounds2" = "$rounds" ] || {
    echo "campaign-smoke: resumed rounds=$rounds2, want $rounds" >&2
    exit 1
}
if [ "$corpus_digest2" != "$corpus_digest" ]; then
    echo "campaign-smoke: corpus digest changed across restart" >&2
    echo "  before: $corpus_digest" >&2
    echo "  after:  $corpus_digest2" >&2
    exit 1
fi
echo "campaign-smoke: campaign resumed from checkpoint, corpus intact ($corpus_digest)"

# Stop the campaign through the API for a clean shutdown path.
curl -fsS -X DELETE "$BASE/v1/campaigns/$id" >/dev/null
echo "campaign-smoke: ok"
