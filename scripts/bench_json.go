// Command bench_json converts `go test -bench` text output into JSON so
// CI can archive one machine-readable benchmark baseline per commit
// (BENCH_<sha>.json artifacts; see the bench job in ci.yml and
// `make bench-json`).
//
//	go test -run='^$' -bench=. -benchmem -count=3 . | go run ./scripts -o BENCH_abc123.json
//
// It understands the standard benchmark line shape — name, iteration
// count, then (value, unit) pairs — including custom units reported via
// b.ReportMetric (the suite reports paper-level units such as
// winner-steps and rounds alongside ns/op). Repeated lines from -count=N
// are kept as separate runs and summarized by a per-unit mean, so a
// diff between two commits' artifacts is a benchmark comparison.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Run is one benchmark result line: the b.N iteration count and every
// (value, unit) pair that followed it.
type Run struct {
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Benchmark groups the runs of one benchmark name (-count=N yields N).
type Benchmark struct {
	Name string `json:"name"`
	Runs []Run  `json:"runs"`
	// Mean holds the per-unit arithmetic mean across runs — the number
	// to compare between two commits' artifacts.
	Mean map[string]float64 `json:"mean"`
}

// Output is the whole artifact: the benchmark environment header lines
// (goos, goarch, pkg, cpu) plus every parsed benchmark.
type Output struct {
	Env        map[string]string `json:"env"`
	Benchmarks []*Benchmark      `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench_json: ")
	out := flag.String("o", "", "write JSON to this file (default stdout)")
	baselinePath := flag.String("compare", "", "compare against this BENCH_<sha>.json baseline instead of converting; exits 1 on regressions")
	againstPath := flag.String("against", "", "with -compare: current artifact JSON (default: parse bench text from stdin)")
	timeTol := flag.Float64("time-tol", 1.0, "relative tolerance for timing metrics (ns/op, */sec)")
	allocTol := flag.Float64("alloc-tol", 0.35, "relative tolerance for allocation metrics (B/op, allocs/op)")
	flag.Parse()
	if *baselinePath != "" {
		baseline, err := loadArtifact(*baselinePath)
		if err != nil {
			log.Fatal(err)
		}
		var current *Output
		if *againstPath != "" {
			current, err = loadArtifact(*againstPath)
		} else {
			current, err = parse(os.Stdin)
		}
		if err != nil {
			log.Fatal(err)
		}
		if len(current.Benchmarks) == 0 {
			log.Fatal("no benchmark results in the current run")
		}
		cfg := compareConfig{
			timeTol:  *timeTol,
			allocTol: *allocTol,
			sameCPU:  baseline.Env["cpu"] != "" && baseline.Env["cpu"] == current.Env["cpu"],
		}
		if failures := runCompare(os.Stdout, baseline, current, cfg); failures > 0 {
			os.Exit(1)
		}
		return
	}
	parsed, err := parse(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	if len(parsed.Benchmarks) == 0 {
		log.Fatal("no benchmark lines found on stdin")
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(parsed); err != nil {
		log.Fatal(err)
	}
}

// loadArtifact reads a BENCH_<sha>.json artifact back into an Output.
func loadArtifact(path string) (*Output, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out Output
	if err := json.NewDecoder(f).Decode(&out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &out, nil
}

// parse reads `go test -bench` output and collects environment headers
// and benchmark lines, preserving first-appearance order of names.
func parse(r io.Reader) (*Output, error) {
	out := &Output{Env: map[string]string{}}
	byName := map[string]*Benchmark{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				out.Env[key] = strings.TrimSpace(v)
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		name, run, err := parseBenchLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %q: %w", line, err)
		}
		if run == nil {
			continue // a benchmark name alone (verbose mode) — no result yet
		}
		b := byName[name]
		if b == nil {
			b = &Benchmark{Name: name}
			byName[name] = b
			out.Benchmarks = append(out.Benchmarks, b)
		}
		b.Runs = append(b.Runs, *run)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, b := range out.Benchmarks {
		b.Mean = meanMetrics(b.Runs)
	}
	return out, nil
}

// parseBenchLine splits one result line into its name, iteration count,
// and (value, unit) pairs. Returns a nil Run for a bare name line.
func parseBenchLine(line string) (string, *Run, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return fields[0], nil, nil
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", nil, fmt.Errorf("iteration count %q: %w", fields[1], err)
	}
	run := &Run{Iterations: iters, Metrics: map[string]float64{}}
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return "", nil, fmt.Errorf("odd value/unit field count %d", len(rest))
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return "", nil, fmt.Errorf("value %q: %w", rest[i], err)
		}
		run.Metrics[rest[i+1]] = v
	}
	return fields[0], run, nil
}

// meanMetrics averages each unit over the runs that report it.
func meanMetrics(runs []Run) map[string]float64 {
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, r := range runs {
		for unit, v := range r.Metrics {
			sums[unit] += v
			counts[unit]++
		}
	}
	mean := make(map[string]float64, len(sums))
	units := make([]string, 0, len(sums))
	for u := range sums {
		units = append(units, u)
	}
	sort.Strings(units)
	for _, u := range units {
		mean[u] = sums[u] / float64(counts[u])
	}
	return mean
}
