#!/bin/sh
# serve_smoke.sh — end-to-end smoke test of cmd/lbserver: build the server,
# wait for /healthz, submit a quick report job twice, and assert the second
# submission is answered from the content-addressed result cache with the
# same job ID. Exercises the full submit → run → cache → idempotent-replay
# path that the CI serve-smoke job gates on, then checks the observability
# surface: /healthz and /metrics must answer 200, and after the job
# /metrics must show a completed job, a populated request-latency
# histogram, and the cache counters; /debug/traces must contain the job's
# span.
set -eu

ADDR=${LBSERVER_ADDR:-127.0.0.1:18473}
BASE="http://$ADDR"
TMP=$(mktemp -d)
SERVER_PID=

cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "serve-smoke: building lbserver"
go build -o "$TMP/lbserver" ./cmd/lbserver

"$TMP/lbserver" -addr "$ADDR" -workers 2 -cache-dir "$TMP/cache" &
SERVER_PID=$!

echo "serve-smoke: waiting for $BASE/healthz"
i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "serve-smoke: server never became healthy" >&2
        exit 1
    fi
    sleep 0.2
done

SPEC='{"kind":"report","report":{"experiments":["E9"],"quick":true}}'

first=$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$SPEC" "$BASE/v1/jobs")
id=$(printf '%s' "$first" | grep -o '"id":"[0-9a-f]\{64\}"' | head -1 | cut -d'"' -f4)
if [ -z "$id" ]; then
    echo "serve-smoke: no job ID in response: $first" >&2
    exit 1
fi
echo "serve-smoke: submitted job $id"

status=
i=0
while [ "$i" -lt 300 ]; do
    view=$(curl -fsS "$BASE/v1/jobs/$id")
    status=$(printf '%s' "$view" | grep -o '"status":"[a-z]*"' | head -1 | cut -d'"' -f4)
    case "$status" in
    done) break ;;
    failed | canceled)
        echo "serve-smoke: job ended $status: $view" >&2
        exit 1
        ;;
    esac
    i=$((i + 1))
    sleep 0.2
done
if [ "$status" != done ]; then
    echo "serve-smoke: job never finished (last status: $status)" >&2
    exit 1
fi
echo "serve-smoke: job done"

second=$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$SPEC" "$BASE/v1/jobs")
printf '%s' "$second" | grep -q "\"id\":\"$id\"" || {
    echo "serve-smoke: resubmission changed the job ID: $second" >&2
    exit 1
}
printf '%s' "$second" | grep -q '"cached":true' || {
    echo "serve-smoke: resubmission was not a cache hit: $second" >&2
    exit 1
}

stats=$(curl -fsS "$BASE/v1/cache/stats")
echo "serve-smoke: cache stats: $stats"

# check_status URL: fail loudly on any non-200 answer. The earlier curls
# tolerate transient failures (server still starting); from here on a
# bad status is a bug.
check_status() {
    code=$(curl -sS -o /dev/null -w '%{http_code}' "$1")
    if [ "$code" != 200 ]; then
        echo "serve-smoke: GET $1 answered $code, want 200" >&2
        exit 1
    fi
}
check_status "$BASE/healthz"
check_status "$BASE/metrics"

metrics=$(curl -fsS "$BASE/metrics")
for want in \
    'jobs_completed_total 1' \
    'http_request_duration_seconds_count{route="POST /v1/jobs"} 2' \
    jobs_cache_hits_total \
    jobs_cache_misses_total; do
    printf '%s' "$metrics" | grep -qF "$want" || {
        echo "serve-smoke: /metrics missing '$want'" >&2
        printf '%s\n' "$metrics" >&2
        exit 1
    }
done
echo "serve-smoke: /metrics shows the completed job and request latency"

curl -fsS "$BASE/debug/traces" | grep -q '"name": "job report"' || {
    echo "serve-smoke: /debug/traces has no job span" >&2
    exit 1
}
echo "serve-smoke: /debug/traces shows the job span"
echo "serve-smoke: ok — job $id served from cache on resubmission"
