#!/bin/sh
# restart_smoke.sh — restart-durability smoke test of cmd/lbserver: the
# write-ahead job journal must make accepted work survive a SIGKILL.
#
#   1. Start lbserver with a cache dir; run one quick job to done, start a
#      slow job on the single worker, queue a quick job behind it, and
#      queue-then-DELETE a fourth job (the tombstone).
#   2. SIGKILL the server mid-run — no drain, no goodbye.
#   3. Restart over the same cache dir and assert, WITHOUT resubmitting:
#      the finished job is served byte-identically (cache-file hash
#      compare), the pending jobs were re-enqueued by journal replay and
#      complete, and the deleted job stays canceled (tombstone).
#   4. Run the interrupted specs on a fresh server with a fresh cache dir
#      and assert the post-restart results are content-identical to that
#      reference run — the determinism contract across process lives.
set -eu

ADDR=${LBSERVER_ADDR:-127.0.0.1:18474}
REF_ADDR=${LBSERVER_REF_ADDR:-127.0.0.1:18475}
BASE="http://$ADDR"
REF_BASE="http://$REF_ADDR"
TMP=$(mktemp -d)
SERVER_PID=
REF_PID=

cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    [ -n "$REF_PID" ] && kill "$REF_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

hash_file() {
    if command -v sha256sum >/dev/null 2>&1; then
        sha256sum "$1" | cut -d' ' -f1
    else
        shasum -a 256 "$1" | cut -d' ' -f1
    fi
}

wait_healthy() {
    i=0
    until curl -fsS "$1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -ge 50 ]; then
            echo "restart-smoke: server at $1 never became healthy" >&2
            exit 1
        fi
        sleep 0.2
    done
}

# submit BASE SPEC -> job id on stdout
submit() {
    resp=$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$2" "$1/v1/jobs")
    id=$(printf '%s' "$resp" | grep -o '"id":"[0-9a-f]\{64\}"' | head -1 | cut -d'"' -f4)
    if [ -z "$id" ]; then
        echo "restart-smoke: no job ID in response: $resp" >&2
        exit 1
    fi
    printf '%s' "$id"
}

# job_status BASE ID -> status on stdout (empty when the job is unknown)
job_status() {
    curl -fsS "$1/v1/jobs/$2" 2>/dev/null |
        grep -o '"status":"[a-z]*"' | head -1 | cut -d'"' -f4 || true
}

# wait_done BASE ID LABEL: poll until done; fail on failed/canceled
wait_done() {
    i=0
    while [ "$i" -lt 600 ]; do
        status=$(job_status "$1" "$2")
        case "$status" in
        done) return 0 ;;
        failed | canceled)
            echo "restart-smoke: $3 ended $status" >&2
            exit 1
            ;;
        esac
        i=$((i + 1))
        sleep 0.2
    done
    echo "restart-smoke: $3 never finished (last status: $status)" >&2
    exit 1
}

echo "restart-smoke: building lbserver"
go build -o "$TMP/lbserver" ./cmd/lbserver

CACHE="$TMP/cache"
"$TMP/lbserver" -addr "$ADDR" -workers 1 -cache-dir "$CACHE" &
SERVER_PID=$!
wait_healthy "$BASE"

QUICK_SPEC='{"kind":"report","report":{"experiments":["E9"],"quick":true}}'
SLOW_SPEC='{"kind":"explore","explore":{"alg":"central","n":3,"mode":"fuzz","samples":60000}}'
QUEUED_SPEC='{"kind":"explore","explore":{"alg":"central","n":2,"mode":"exhaustive"}}'
DELETED_SPEC='{"kind":"explore","explore":{"alg":"central","n":2,"mode":"fuzz","samples":10,"seed":99}}'

done_id=$(submit "$BASE" "$QUICK_SPEC")
wait_done "$BASE" "$done_id" "quick job"
done_hash_before=$(hash_file "$CACHE/$done_id.json")
echo "restart-smoke: job $done_id done (result hash $done_hash_before)"

slow_id=$(submit "$BASE" "$SLOW_SPEC")
i=0
until [ "$(job_status "$BASE" "$slow_id")" = running ]; do
    i=$((i + 1))
    if [ "$i" -ge 100 ]; then
        echo "restart-smoke: slow job never started running" >&2
        exit 1
    fi
    sleep 0.1
done
queued_id=$(submit "$BASE" "$QUEUED_SPEC")
deleted_id=$(submit "$BASE" "$DELETED_SPEC")
curl -fsS -X DELETE "$BASE/v1/jobs/$deleted_id" >/dev/null
echo "restart-smoke: slow $slow_id running, $queued_id queued, $deleted_id deleted"

# The journal must already hold all four records — they were durable
# before the submissions were acknowledged.
for id in "$done_id" "$slow_id" "$queued_id" "$deleted_id"; do
    if [ ! -f "$CACHE/$id.job.json" ]; then
        echo "restart-smoke: journal record $id.job.json missing before the kill" >&2
        exit 1
    fi
done

echo "restart-smoke: SIGKILLing the server mid-run"
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=

"$TMP/lbserver" -addr "$ADDR" -workers 1 -cache-dir "$CACHE" &
SERVER_PID=$!
wait_healthy "$BASE"
echo "restart-smoke: server restarted over the same cache dir"

# The finished job is tracked without resubmission and served from the
# cache — and its result file is byte-identical (hash compare).
status=$(job_status "$BASE" "$done_id")
if [ "$status" != done ]; then
    echo "restart-smoke: finished job replayed as '$status', want done" >&2
    exit 1
fi
curl -fsS "$BASE/v1/jobs/$done_id" | grep -q '"cached":true' || {
    echo "restart-smoke: replayed finished job is not served as cached" >&2
    exit 1
}
done_hash_after=$(hash_file "$CACHE/$done_id.json")
if [ "$done_hash_after" != "$done_hash_before" ]; then
    echo "restart-smoke: result file changed across restart: $done_hash_before -> $done_hash_after" >&2
    exit 1
fi
echo "restart-smoke: finished job served byte-identically after restart"

# The tombstoned job stays canceled — DELETE survives the SIGKILL.
status=$(job_status "$BASE" "$deleted_id")
if [ "$status" != canceled ]; then
    echo "restart-smoke: deleted job replayed as '$status', want canceled" >&2
    exit 1
fi
echo "restart-smoke: deleted job stayed canceled (tombstone)"

# The interrupted and queued jobs were re-enqueued by journal replay (no
# resubmission happened on this connection) and run to completion.
for id in "$slow_id" "$queued_id"; do
    status=$(job_status "$BASE" "$id")
    if [ -z "$status" ]; then
        echo "restart-smoke: job $id unknown after restart — journal replay lost it" >&2
        exit 1
    fi
done
wait_done "$BASE" "$slow_id" "re-enqueued slow job"
wait_done "$BASE" "$queued_id" "re-enqueued queued job"
slow_hash=$(hash_file "$CACHE/$slow_id.json")
queued_hash=$(hash_file "$CACHE/$queued_id.json")
echo "restart-smoke: re-enqueued jobs completed ($slow_hash, $queued_hash)"

# Reference run: the same specs in a fresh cache dir must produce
# content-identical results — re-running after a crash changed nothing.
"$TMP/lbserver" -addr "$REF_ADDR" -workers 1 -cache-dir "$TMP/ref-cache" &
REF_PID=$!
wait_healthy "$REF_BASE"
ref_slow_id=$(submit "$REF_BASE" "$SLOW_SPEC")
ref_queued_id=$(submit "$REF_BASE" "$QUEUED_SPEC")
if [ "$ref_slow_id" != "$slow_id" ] || [ "$ref_queued_id" != "$queued_id" ]; then
    echo "restart-smoke: reference run produced different job IDs" >&2
    exit 1
fi
wait_done "$REF_BASE" "$ref_slow_id" "reference slow job"
wait_done "$REF_BASE" "$ref_queued_id" "reference queued job"
if [ "$(hash_file "$TMP/ref-cache/$ref_slow_id.json")" != "$slow_hash" ]; then
    echo "restart-smoke: slow job result differs from the reference run" >&2
    exit 1
fi
if [ "$(hash_file "$TMP/ref-cache/$ref_queued_id.json")" != "$queued_hash" ]; then
    echo "restart-smoke: queued job result differs from the reference run" >&2
    exit 1
fi

echo "restart-smoke: ok — journal replay re-enqueued pending work, kept the tombstone, and served terminal results byte-identically"
