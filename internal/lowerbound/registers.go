package lowerbound

import (
	"fmt"

	"jayanti98/internal/core"
	"jayanti98/internal/machine"
	"jayanti98/internal/objtype"
	"jayanti98/internal/sched"
	"jayanti98/internal/shmem"
	"jayanti98/internal/universal"
	"jayanti98/internal/wakeup"
)

// WidthResult profiles the register footprint of one counter
// implementation under maximal lockstep contention (E12): the worst
// per-process shared-access cost of a single counter draw and the widest
// register value the implementation ever wrote. The paper's Section 7
// explains why this axis matters: the Ω(log n) bound is tight only with
// unbounded registers, and the implementations below occupy very different
// points on the (steps, register width) plane.
type WidthResult struct {
	Implementation string
	N              int
	// MaxStepsPerOp is the worst per-process shared-access cost.
	MaxStepsPerOp int
	// MaxRegisterBits is the widest value written (shmem.ApproxBits).
	MaxRegisterBits int
	// Linearizable records whether the implementation is linearizable
	// (the counting network is only quiescently consistent).
	Linearizable bool
	// LowerBound is ⌈log₄ n⌉.
	LowerBound int
}

// RegisterWidthProfile measures, for one n, a fetch&increment-style draw
// through the group-update construction, the Herlihy construction, and
// the bitonic counting network, under the lockstep round-robin schedule
// (one draw per process).
func RegisterWidthProfile(n int) ([]WidthResult, error) {
	type impl struct {
		name         string
		alg          machine.Algorithm
		linearizable bool
	}
	typ := objtype.NewFetchIncrement(64)
	gu := universal.NewGroupUpdate(typ, n, 0)
	he := universal.NewHerlihy(typ, n, 0)
	nw := wakeup.CountingNetwork(n)
	impls := []impl{
		{"group-update", machine.New(gu.Name(), func(e *machine.Env) shmem.Value {
			return gu.Invoke(e, objtype.Op{Name: objtype.OpFetchIncrement})
		}), true},
		{"herlihy", machine.New(he.Name(), func(e *machine.Env) shmem.Value {
			return he.Invoke(e, objtype.Op{Name: objtype.OpFetchIncrement})
		}), true},
		{"counting-network", nw, false},
	}
	out := make([]WidthResult, 0, len(impls))
	for _, im := range impls {
		mem := shmem.New(shmem.WithBitTracking())
		res, err := sched.Execute(im.alg, n, mem, &sched.RoundRobin{}, machine.ZeroTosses, 100_000_000)
		if err != nil {
			return out, fmt.Errorf("lowerbound: width profile %s n=%d: %w", im.name, n, err)
		}
		out = append(out, WidthResult{
			Implementation:  im.name,
			N:               n,
			MaxStepsPerOp:   res.MaxSteps,
			MaxRegisterBits: mem.MaxRegisterBits(),
			Linearizable:    im.linearizable,
			LowerBound:      core.Log4Ceil(n),
		})
	}
	return out, nil
}
