package lowerbound

import (
	"reflect"
	"sync"
	"testing"

	"jayanti98/internal/core"
	"jayanti98/internal/machine"
	"jayanti98/internal/objtype"
	"jayanti98/internal/stats"
	"jayanti98/internal/sweep"
	"jayanti98/internal/universal"
	"jayanti98/internal/wakeup"
)

// correctWakeupAlgorithms is every correct wakeup algorithm in the repo —
// the grid the race sweep and the determinism tests cover.
func correctWakeupAlgorithms() []struct {
	name string
	mk   func(n int) machine.Algorithm
} {
	return []struct {
		name string
		mk   func(n int) machine.Algorithm
	}{
		{"set-register", func(int) machine.Algorithm { return wakeup.SetRegister() }},
		{"move-courier", func(int) machine.Algorithm { return wakeup.MoveCourier() }},
		{"double-register", func(int) machine.Algorithm { return wakeup.DoubleRegister() }},
		{"counting-network", wakeup.CountingNetwork},
	}
}

// TestSweepWakeupParallelMatchesSerial pins the engine's determinism
// contract on every wakeup algorithm: identical results at parallelism 1,
// 4, and 16.
func TestSweepWakeupParallelMatchesSerial(t *testing.T) {
	ns := []int{2, 4, 8, 16}
	for _, alg := range correctWakeupAlgorithms() {
		serial, err := SweepWakeupParallel(alg.mk, ns, machine.ZeroTosses, 1)
		if err != nil {
			t.Fatalf("%s: %v", alg.name, err)
		}
		for _, parallel := range []int{4, 16} {
			par, err := SweepWakeupParallel(alg.mk, ns, machine.ZeroTosses, parallel)
			if err != nil {
				t.Fatalf("%s parallel=%d: %v", alg.name, parallel, err)
			}
			if !reflect.DeepEqual(serial, par) {
				t.Fatalf("%s parallel=%d diverged:\nserial   %+v\nparallel %+v", alg.name, parallel, serial, par)
			}
		}
	}
}

// TestRaceSmallSweepEveryAlgorithm is the satellite -race test: a small
// sweep at parallelism 4 over every algorithm (plus a reduction sweep and
// a Monte-Carlo sweep), so `go test -race` exercises all the concurrent
// paths the report uses.
func TestRaceSmallSweepEveryAlgorithm(t *testing.T) {
	ns := []int{2, 4, 8}
	for _, alg := range correctWakeupAlgorithms() {
		results, err := SweepWakeupParallel(alg.mk, ns, machine.ZeroTosses, 4)
		if err != nil {
			t.Fatalf("%s: %v", alg.name, err)
		}
		for _, r := range results {
			if !r.OK() {
				t.Fatalf("%s n=%d: %+v", alg.name, r.N, r)
			}
		}
	}
	specs := wakeup.Reductions()
	if _, err := SweepReductionParallel(specs[0], "group-update", ns, machine.ZeroTosses, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := ExpectedComplexityParallel(func(int) machine.Algorithm { return wakeup.DoubleRegister() },
		8, 12, sweep.Seed("race", "double-register", 8, 0), 4); err != nil {
		t.Fatal(err)
	}
}

// TestExpectedComplexityParallelMatchesSerial: the Monte-Carlo estimate
// must not depend on how samples are scheduled over workers.
func TestExpectedComplexityParallelMatchesSerial(t *testing.T) {
	mk := func(int) machine.Algorithm { return wakeup.DoubleRegister() }
	serial, err := ExpectedComplexityParallel(mk, 16, 20, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ExpectedComplexityParallel(mk, 16, 20, 7, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("parallel estimate diverged:\nserial   %+v\nparallel %+v", serial, par)
	}
	// And the serial wrapper is the parallel path at 1 worker.
	wrapped, err := ExpectedComplexity(mk, 16, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, wrapped) {
		t.Fatal("ExpectedComplexity must equal its parallelism-1 form")
	}
}

// TestVerifyIndistinguishabilityParallelMatchesSerial covers the fanned
// per-process (S,A)-replays of E5.
func TestVerifyIndistinguishabilityParallelMatchesSerial(t *testing.T) {
	for _, alg := range []machine.Algorithm{wakeup.SetRegister(), wakeup.MoveCourier()} {
		serial, serialErr := VerifyIndistinguishabilityParallel(alg, 8, machine.ZeroTosses, 1)
		par, parErr := VerifyIndistinguishabilityParallel(alg, 8, machine.ZeroTosses, 4)
		if (serialErr == nil) != (parErr == nil) {
			t.Fatalf("%s: error mismatch: %v vs %v", alg.Name(), serialErr, parErr)
		}
		if serial != par || serial != 8 {
			t.Fatalf("%s: checked %d (serial) vs %d (parallel), want 8", alg.Name(), serial, par)
		}
	}
}

// TestMoveScheduleComparisonConcurrent runs the E9 comparison from many
// goroutines with derived seeds — the satellite RNG bugfix's regression
// test: no shared rand state, deterministic per-seed results.
func TestMoveScheduleComparisonConcurrent(t *testing.T) {
	const n = 64
	want := make([][]MoveScheduleResult, 4)
	for i := range want {
		want[i] = MoveScheduleComparison(n, sweep.Seed("E9", "move-schedule", n, i))
	}
	var wg sync.WaitGroup
	got := make([][]MoveScheduleResult, len(want))
	for i := range want {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = MoveScheduleComparison(n, sweep.Seed("E9", "move-schedule", n, i))
		}(i)
	}
	wg.Wait()
	for i := range want {
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Fatalf("seed %d: concurrent run diverged from serial run", i)
		}
	}
}

func TestHashTossesDeterministicAndSpread(t *testing.T) {
	ta1, ta2 := HashTosses(1), HashTosses(1)
	if ta1(3, 7) != ta2(3, 7) {
		t.Fatal("same seed must give identical assignments")
	}
	if HashTosses(1)(0, 0) == HashTosses(2)(0, 0) && HashTosses(1)(0, 1) == HashTosses(2)(0, 1) {
		t.Fatal("different seeds should diverge quickly")
	}
	// Parity should be roughly balanced (the algorithms use toss&1).
	ones := 0
	for j := 0; j < 1000; j++ {
		ones += int(ta1(0, j) & 1)
	}
	if ones < 350 || ones > 650 {
		t.Fatalf("toss parity badly skewed: %d/1000 ones", ones)
	}
}

func TestMeasureWakeupSetRegister(t *testing.T) {
	res, err := MeasureWakeup(wakeup.SetRegister(), 16, machine.ZeroTosses)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("checks failed: %+v", res)
	}
	if res.WinnerSteps < res.Bound {
		t.Fatalf("winner %d below bound %d", res.WinnerSteps, res.Bound)
	}
	if res.Bound != core.Log4Ceil(16) {
		t.Fatalf("bound = %d", res.Bound)
	}
	if res.MaxSteps < 16 {
		t.Fatalf("adversary should force ≥ n steps on set-register, got %d", res.MaxSteps)
	}
}

func TestSweepWakeupBoundsHold(t *testing.T) {
	ns := []int{2, 4, 8, 16, 32, 64}
	results, err := SweepWakeup(func(n int) machine.Algorithm { return wakeup.SetRegister() }, ns, machine.ZeroTosses)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(ns) {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		if !r.OK() {
			t.Fatalf("n=%d: %+v", r.N, r)
		}
		if r.WinnerSteps < r.Bound {
			t.Fatalf("n=%d: winner %d < bound %d", r.N, r.WinnerSteps, r.Bound)
		}
	}
}

func TestExpectedComplexityRandomized(t *testing.T) {
	res, err := ExpectedComplexity(func(n int) machine.Algorithm { return wakeup.DoubleRegister() }, 16, 25, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 0 {
		t.Fatalf("%d failed runs", res.Failures)
	}
	if res.Winner.Mean < float64(res.Bound) {
		t.Fatalf("E[winner steps] = %.2f below bound %d", res.Winner.Mean, res.Bound)
	}
	if res.Samples != 25 || res.Winner.N != 25 {
		t.Fatalf("sample bookkeeping wrong: %+v", res)
	}
}

func TestVerifyIndistinguishabilityAcrossAlgorithms(t *testing.T) {
	algs := []machine.Algorithm{wakeup.SetRegister(), wakeup.MoveCourier()}
	for _, alg := range algs {
		checked, err := VerifyIndistinguishability(alg, 8, machine.ZeroTosses)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if checked != 8 {
			t.Fatalf("%s: checked %d subsets, want 8", alg.Name(), checked)
		}
	}
}

func TestBuildReductionUnknownConstruction(t *testing.T) {
	specs := wakeup.Reductions()
	if _, _, err := BuildReduction(specs[0], "nope", 4); err == nil {
		t.Fatal("unknown construction must error")
	}
}

func TestSweepReductionFetchIncrement(t *testing.T) {
	var spec wakeup.ReductionSpec
	for _, s := range wakeup.Reductions() {
		if s.Name == "fetch&increment" {
			spec = s
		}
	}
	results, err := SweepReduction(spec, "group-update", []int{2, 4, 8, 16}, machine.ZeroTosses)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !r.OK() {
			t.Fatalf("n=%d: %+v", r.N, r)
		}
		if r.WinnerSteps < r.PerOpBound {
			t.Fatalf("n=%d: winner %d < per-op bound %d", r.N, r.WinnerSteps, r.PerOpBound)
		}
		if r.Construction != "group-update" || r.OpsPerProcess != 1 {
			t.Fatalf("metadata wrong: %+v", r)
		}
	}
}

func TestAllReductionsOverGroupUpdateSmall(t *testing.T) {
	for _, spec := range wakeup.Reductions() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			results, err := SweepReduction(spec, "group-update", []int{4, 8}, machine.ZeroTosses)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range results {
				if !r.OK() {
					t.Fatalf("n=%d: spec=%v l51=%v t61=%v", r.N, r.SpecErr, r.Lemma51Err, r.Theorem61Err)
				}
			}
		})
	}
}

func TestSweepConstructionShapes(t *testing.T) {
	ns := []int{2, 4, 8, 16, 32, 64, 128}
	typ := func(n int) objtype.Type { return objtype.NewFetchIncrement(16) }

	gu, guGrowth, err := SweepConstruction(
		func(n int) universal.Construction { return universal.NewGroupUpdate(typ(n), n, 0) },
		FetchIncOp, ns)
	if err != nil {
		t.Fatal(err)
	}
	if guGrowth != stats.GrowthLogarithmic {
		t.Fatalf("group-update growth = %v, want logarithmic (%v)", guGrowth, gu)
	}
	for _, r := range gu {
		if r.MaxSteps > r.StepBound {
			t.Fatalf("n=%d: %d steps above bound %d", r.N, r.MaxSteps, r.StepBound)
		}
		if r.MaxSteps < r.LowerBound {
			t.Fatalf("n=%d: %d steps below the Ω(log n) lower bound %d?!", r.N, r.MaxSteps, r.LowerBound)
		}
	}

	he, heGrowth, err := SweepConstruction(
		func(n int) universal.Construction { return universal.NewHerlihy(typ(n), n, 0) },
		FetchIncOp, ns)
	if err != nil {
		t.Fatal(err)
	}
	if heGrowth != stats.GrowthLinear {
		t.Fatalf("herlihy growth = %v, want linear (%v)", heGrowth, he)
	}
}

func TestMoveScheduleComparison(t *testing.T) {
	results := MoveScheduleComparison(64, 1)
	if len(results) != 2 {
		t.Fatalf("got %d workloads", len(results))
	}
	for _, r := range results {
		if !r.SecretiveLegal {
			t.Fatalf("%s: secretive schedule illegal", r.Workload)
		}
		if r.SecretiveMax > 2 {
			t.Fatalf("%s: secretive max movers = %d", r.Workload, r.SecretiveMax)
		}
		if !r.Lemma42Verified {
			t.Fatalf("%s: Lemma 4.2 failed", r.Workload)
		}
	}
	// The chain workload's naive schedule must leak everything.
	if results[0].NaiveMaxMovers != 64 {
		t.Fatalf("chain naive movers = %d, want 64", results[0].NaiveMaxMovers)
	}
}

func TestRMWUnitTime(t *testing.T) {
	res, err := RMWUnitTime(objtype.NewFetchIncrement(16), 32, FetchIncOp)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct || res.StepsPerOp != 1 {
		t.Fatalf("RMW result: %+v", res)
	}
	// Queue too: dequeue from the wakeup queue.
	res, err = RMWUnitTime(objtype.NewWakeupQueue(), 16, func(n, pid int) objtype.Op {
		return objtype.Op{Name: objtype.OpDequeue}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct {
		t.Fatalf("RMW queue: %+v", res)
	}
}

func TestCheaterCaughtEndToEnd(t *testing.T) {
	run, err := core.RunAll(wakeup.Cheater(), 64, machine.ZeroTosses, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	catch, err := core.CatchFastWakeup(run)
	if err != nil {
		t.Fatal(err)
	}
	if catch == nil {
		t.Fatal("cheater must be caught at n=64")
	}
	if catch.S.Len() > 4 {
		t.Fatalf("|S| = %d after 1 step, want ≤ 4", catch.S.Len())
	}
}

func TestRegisterWidthProfile(t *testing.T) {
	results, err := RegisterWidthProfile(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d implementations", len(results))
	}
	byName := make(map[string]WidthResult, len(results))
	for _, r := range results {
		byName[r.Implementation] = r
		if r.MaxStepsPerOp < r.LowerBound && r.Linearizable {
			t.Fatalf("%s: %d steps below the lower bound %d", r.Implementation, r.MaxStepsPerOp, r.LowerBound)
		}
	}
	// The log-carrying constructions write registers orders of magnitude
	// wider than the counting network's toggles and counters.
	if byName["counting-network"].MaxRegisterBits > 64 {
		t.Fatalf("counting network registers too wide: %d bits", byName["counting-network"].MaxRegisterBits)
	}
	if byName["group-update"].MaxRegisterBits < 4*byName["counting-network"].MaxRegisterBits {
		t.Fatalf("group-update registers (%d bits) should dwarf the counting network's (%d bits)",
			byName["group-update"].MaxRegisterBits, byName["counting-network"].MaxRegisterBits)
	}
	if byName["herlihy"].MaxRegisterBits < 4*byName["counting-network"].MaxRegisterBits {
		t.Fatalf("herlihy registers (%d bits) should dwarf the counting network's (%d bits)",
			byName["herlihy"].MaxRegisterBits, byName["counting-network"].MaxRegisterBits)
	}
}

func TestCountingNetworkSweepGrowth(t *testing.T) {
	// The counting network's forced cost must grow (it is ≥ the Ω(log n)
	// bound) but stay well under Herlihy's linear cost at large n.
	ns := []int{4, 16, 64, 256}
	var last WakeupResult
	for _, n := range ns {
		res, err := MeasureWakeup(wakeup.CountingNetwork(n), n, machine.ZeroTosses)
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK() {
			t.Fatalf("n=%d: %+v", n, res)
		}
		if res.WinnerSteps < res.Bound {
			t.Fatalf("n=%d: winner %d below bound %d", n, res.WinnerSteps, res.Bound)
		}
		last = res
	}
	if last.MaxSteps >= 256 {
		t.Fatalf("counting network forced steps at n=256 should be well below n, got %d", last.MaxSteps)
	}
}

func TestReductionsAcrossAllConstructions(t *testing.T) {
	// Corollary 6.1 is construction-agnostic: the wakeup reductions must be
	// correct over every implementation of the object, and the winner's
	// cost must respect the bound regardless of which construction backs it.
	specs := wakeup.Reductions()
	for _, construction := range []string{"group-update", "herlihy", "central"} {
		construction := construction
		t.Run(construction, func(t *testing.T) {
			for _, spec := range []wakeup.ReductionSpec{specs[0], specs[5], specs[7]} { // fetch&increment, queue, read-increment
				for _, n := range []int{4, 8} {
					alg, _, err := BuildReduction(spec, construction, n)
					if err != nil {
						t.Fatal(err)
					}
					res, err := MeasureWakeup(alg, n, machine.ZeroTosses)
					if err != nil {
						t.Fatalf("%s n=%d: %v", spec.Name, n, err)
					}
					if !res.OK() {
						t.Fatalf("%s/%s n=%d: spec=%v l51=%v t61=%v",
							construction, spec.Name, n, res.SpecErr, res.Lemma51Err, res.Theorem61Err)
					}
				}
			}
		})
	}
}
