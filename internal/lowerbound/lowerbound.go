// Package lowerbound is the experiment harness: it runs the adversary of
// package core against wakeup algorithms and object implementations,
// measures forced shared-access step counts, validates every checkable
// lemma and theorem of the paper, and aggregates sweeps over n into the
// tables reported in EXPERIMENTS.md.
//
// Experiment map (see DESIGN.md §3):
//
//	E1  MeasureWakeup / SweepWakeup       — Theorem 6.1 bound per run
//	E2  ExpectedComplexity                — randomized bound (Lemma 3.1)
//	E3  SweepReduction                    — Theorem 6.2 per-type bounds
//	E4  MeasureWakeup (UPGrowthOK)        — Lemma 5.1
//	E5  VerifyIndistinguishability        — Lemma 5.2
//	E6  core.CatchFastWakeup              — proof mechanics on a cheater
//	E7  SweepConstruction (group-update)  — tightness: O(log n)
//	E8  SweepConstruction (herlihy)       — baseline: Θ(n)
//	E9  MoveScheduleComparison            — Section 4 motivation
//	E10 RMWUnitTime                       — Section 7 observation
//
// Every sweep has a *Parallel variant that fans its grid out over worker
// goroutines through the engine in package sweep. The parallel variants
// return byte-identical results at every parallelism level: each grid
// point owns its algorithm, construction, memory, and (for randomized
// sweeps) an RNG seed derived from its coordinates, and results are
// collected in index order behind a barrier. The plain functions are the
// parallel ones at parallelism 1.
package lowerbound

import (
	"context"
	"fmt"
	"sync"

	"jayanti98/internal/core"
	"jayanti98/internal/machine"
	"jayanti98/internal/objtype"
	"jayanti98/internal/obs"
	"jayanti98/internal/shmem"
	"jayanti98/internal/stats"
	"jayanti98/internal/sweep"
	"jayanti98/internal/universal"
	"jayanti98/internal/wakeup"
)

// Adversary-loop metrics, on the process Default registry. In paper
// terms: adversary_rounds_total counts executed rounds of the §5
// (All,A)-run loop (each round is one five-phase adversary move), and
// adversary_steps_total counts the shared-access steps of phases 2–5 the
// executor charged to processes — the quantity t(R) maximizes and
// Theorem 6.1 lower-bounds. Aggregated per run from the existing step
// counters (core.AllRun.Rounds / .Steps), so the hot loop itself is
// untouched.
var (
	advMetricsOnce sync.Once
	advRounds      *obs.Counter
	advSteps       *obs.Counter
	advRuns        *obs.Counter
)

func adversaryMetrics() (rounds, steps, runs *obs.Counter) {
	advMetricsOnce.Do(func() {
		r := obs.Default()
		advRounds = r.Counter("adversary_rounds_total", "Rounds executed by the §5 adversary loop, across all runs.", nil)
		advSteps = r.Counter("adversary_steps_total", "Shared-access steps forced by the adversary (phases 2–5), across all runs.", nil)
		advRuns = r.Counter("adversary_runs_total", "Completed (All,A)-runs.", nil)
	})
	return advRounds, advSteps, advRuns
}

// recordRun folds one completed (All,A)-run into the adversary counters.
func recordRun(run *core.AllRun) {
	rounds, steps, runs := adversaryMetrics()
	rounds.Add(int64(len(run.Rounds)))
	total := 0
	for _, s := range run.Steps {
		total += s
	}
	steps.Add(int64(total))
	runs.Inc()
}

// HashTosses returns a deterministic pseudo-random toss assignment keyed by
// seed (a splitmix64-style hash of (seed, pid, j)). Different seeds give
// independent-looking assignments; the same seed always gives the same
// assignment, so experiments are reproducible.
func HashTosses(seed int64) machine.TossAssignment {
	return func(pid, j int) int64 {
		z := uint64(seed)*0x9e3779b97f4a7c15 + uint64(pid+1)*0xbf58476d1ce4e5b9 + uint64(j+1)*0x94d049bb133111eb
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		z ^= z >> 31
		return int64(z >> 1)
	}
}

// WakeupResult is one adversary run of a wakeup algorithm, with every
// check the paper's Section 5–6 machinery provides.
type WakeupResult struct {
	Algorithm string
	N         int
	// Rounds the run took.
	Rounds int
	// MaxSteps is t(R): the worst per-process shared-access count.
	MaxSteps int
	// WinnerSteps is the fewest steps over processes that returned 1 —
	// the quantity Theorem 6.1 lower-bounds.
	WinnerSteps int
	// Bound is ⌈log₄ n⌉.
	Bound int
	// TotalSteps across all processes.
	TotalSteps int
	// SpecErr, Lemma51Err, Theorem61Err record check failures (nil = ok).
	SpecErr      error
	Lemma51Err   error
	Theorem61Err error
}

// OK reports whether every check passed.
func (r WakeupResult) OK() bool {
	return r.SpecErr == nil && r.Lemma51Err == nil && r.Theorem61Err == nil
}

// MeasureWakeup runs alg for n processes under the adversary with toss
// assignment ta and returns the measurements and check outcomes.
func MeasureWakeup(alg machine.Algorithm, n int, ta machine.TossAssignment) (WakeupResult, error) {
	run, err := core.RunAll(alg, n, ta, core.Config{NoHistory: true})
	if err != nil {
		return WakeupResult{}, fmt.Errorf("lowerbound: %s n=%d: %w", alg.Name(), n, err)
	}
	recordRun(run)
	res := WakeupResult{
		Algorithm:    alg.Name(),
		N:            n,
		Rounds:       len(run.Rounds),
		Bound:        core.Log4Ceil(n),
		SpecErr:      core.CheckWakeupRun(run),
		Lemma51Err:   core.CheckLemma51(run),
		Theorem61Err: core.VerifyTheorem61(run),
	}
	res.MaxSteps, _ = run.MaxSteps()
	for pid, steps := range run.Steps {
		res.TotalSteps += steps
		_ = pid
	}
	winners := core.WakeupWinners(run.Returns)
	res.WinnerSteps = -1
	for _, w := range winners {
		if res.WinnerSteps < 0 || run.Steps[w] < res.WinnerSteps {
			res.WinnerSteps = run.Steps[w]
		}
	}
	return res, nil
}

// SweepWakeup measures mk(n) for each n in ns (E1/E3 sweeps).
func SweepWakeup(mk func(n int) machine.Algorithm, ns []int, ta machine.TossAssignment) ([]WakeupResult, error) {
	return SweepWakeupParallel(mk, ns, ta, 1)
}

// SweepWakeupParallel is SweepWakeup fanned out over up to `parallel`
// worker goroutines (≤ 0 means one per CPU). Each grid point builds its
// own algorithm instance via mk and runs against its own simulated memory,
// so work items share nothing; results come back in ns order and are
// identical to the serial sweep at every parallelism level. ta must be a
// pure function of (pid, j), as HashTosses and machine.ZeroTosses are.
func SweepWakeupParallel(mk func(n int) machine.Algorithm, ns []int, ta machine.TossAssignment, parallel int) ([]WakeupResult, error) {
	return SweepWakeupCtx(context.Background(), mk, ns, ta, parallel)
}

// SweepWakeupCtx is SweepWakeupParallel under a context: cancellation
// stops dispatching grid points and returns ctx.Err() with the completed
// prefix (sweep.MapCtx semantics).
func SweepWakeupCtx(ctx context.Context, mk func(n int) machine.Algorithm, ns []int, ta machine.TossAssignment, parallel int) ([]WakeupResult, error) {
	return sweep.MapCtx(ctx, parallel, len(ns), func(i int) (WakeupResult, error) {
		return MeasureWakeup(mk(ns[i]), ns[i], ta)
	})
}

// ExpectedResult is a Monte-Carlo estimate of the expected shared-access
// complexity of a randomized wakeup algorithm against the adversary
// (E2, the randomized form of Theorem 6.1 via Lemma 3.1 with c = 1).
type ExpectedResult struct {
	Algorithm string
	N         int
	Samples   int
	// Winner summarizes the winner's steps across toss assignments.
	Winner stats.Summary
	// Max summarizes t(R) across toss assignments.
	Max stats.Summary
	// Bound is ⌈log₄ n⌉; the theorem asserts E[winner steps] ≥ c·log₄ n.
	Bound int
	// Failures counts runs whose checks failed.
	Failures int
}

// ExpectedComplexity estimates the expected complexity of mk(n) over
// `samples` pseudo-random toss assignments derived from seed.
func ExpectedComplexity(mk func(n int) machine.Algorithm, n, samples int, seed int64) (ExpectedResult, error) {
	return ExpectedComplexityParallel(mk, n, samples, seed, 1)
}

// ExpectedComplexityParallel is ExpectedComplexity with the Monte-Carlo
// samples fanned out over up to `parallel` workers (≤ 0 means one per
// CPU). Sample i's toss assignment is seeded with sweep.Derive(seed, i) —
// a pure function of (seed, i) — so every sample sees the same randomness
// at every parallelism level and the estimate is byte-for-byte
// reproducible.
func ExpectedComplexityParallel(mk func(n int) machine.Algorithm, n, samples int, seed int64, parallel int) (ExpectedResult, error) {
	return ExpectedComplexityCtx(context.Background(), mk, n, samples, seed, parallel)
}

// ExpectedComplexityCtx is ExpectedComplexityParallel under a context:
// cancellation abandons the Monte-Carlo estimate and returns ctx.Err().
func ExpectedComplexityCtx(ctx context.Context, mk func(n int) machine.Algorithm, n, samples int, seed int64, parallel int) (ExpectedResult, error) {
	res := ExpectedResult{
		Algorithm: mk(n).Name(),
		N:         n,
		Samples:   samples,
		Bound:     core.Log4Ceil(n),
	}
	type sample struct {
		winner, max float64
		ok          bool
	}
	out, err := sweep.MapCtx(ctx, parallel, samples, func(i int) (sample, error) {
		r, err := MeasureWakeup(mk(n), n, HashTosses(sweep.Derive(seed, i)))
		if err != nil {
			return sample{}, err
		}
		return sample{winner: float64(r.WinnerSteps), max: float64(r.MaxSteps), ok: r.OK()}, nil
	})
	if err != nil {
		return res, err
	}
	winner := make([]float64, 0, samples)
	maxs := make([]float64, 0, samples)
	for _, s := range out {
		if !s.ok {
			res.Failures++
		}
		winner = append(winner, s.winner)
		maxs = append(maxs, s.max)
	}
	res.Winner = stats.Summarize(winner)
	res.Max = stats.Summarize(maxs)
	return res, nil
}

// VerifyIndistinguishability checks Lemma 5.2 (E5) on one adversary run:
// for every process p, with S = UP(p, steps(p)), the (S,A)-run is
// indistinguishable from the (All,A)-run. Returns the number of subsets
// checked and the first violation, if any.
func VerifyIndistinguishability(alg machine.Algorithm, n int, ta machine.TossAssignment) (int, error) {
	return VerifyIndistinguishabilityParallel(alg, n, ta, 1)
}

// VerifyIndistinguishabilityParallel is VerifyIndistinguishability with
// the per-process (S,A)-run replays fanned out over up to `parallel`
// workers (≤ 0 means one per CPU). The replays only read the shared
// (All,A)-run (each builds its own memory and machines), so they are
// independent; the checked count and first violation match the serial
// pid-order scan.
func VerifyIndistinguishabilityParallel(alg machine.Algorithm, n int, ta machine.TossAssignment, parallel int) (int, error) {
	return VerifyIndistinguishabilityCtx(context.Background(), alg, n, ta, parallel)
}

// VerifyIndistinguishabilityCtx is VerifyIndistinguishabilityParallel
// under a context: cancellation stops dispatching per-process replays and
// returns the count of subsets checked so far with ctx.Err().
func VerifyIndistinguishabilityCtx(ctx context.Context, alg machine.Algorithm, n int, ta machine.TossAssignment, parallel int) (int, error) {
	run, err := core.RunAll(alg, n, ta, core.Config{})
	if err != nil {
		return 0, err
	}
	out, err := sweep.MapCtx(ctx, parallel, n, func(pid int) (struct{}, error) {
		s := run.UPProcAt(pid, run.Steps[pid]).Clone()
		sub, err := core.RunSub(run, s)
		if err != nil {
			return struct{}{}, fmt.Errorf("lowerbound: p%d: %w", pid, err)
		}
		if err := core.CheckIndist(run, sub); err != nil {
			return struct{}{}, fmt.Errorf("lowerbound: p%d (S=%v): %w", pid, s, err)
		}
		return struct{}{}, nil
	})
	return len(out), err
}

// GroupUpdateClient adapts a universal construction into the ObjectClient
// the Theorem 6.2 reductions expect.
type constructionClient struct {
	obj universal.Construction
}

// Invoke implements wakeup.ObjectClient.
func (c constructionClient) Invoke(p machine.Port, op objtype.Op) objtype.Value {
	return c.obj.Invoke(p, op)
}

// BuildReduction assembles the wakeup algorithm of a Theorem 6.2 reduction
// over an object implemented by the named construction ("group-update",
// "herlihy", or "central").
func BuildReduction(spec wakeup.ReductionSpec, construction string, n int) (machine.Algorithm, universal.Construction, error) {
	obj, err := universal.New(construction, spec.Type(n), n, 0)
	if err != nil {
		return nil, nil, fmt.Errorf("lowerbound: %w", err)
	}
	return spec.Build(constructionClient{obj}), obj, nil
}

// ReductionResult is one measurement of a Theorem 6.2 reduction (E3).
type ReductionResult struct {
	WakeupResult
	// Type is the implemented object type.
	Type string
	// Construction implements the object.
	Construction string
	// OpsPerProcess is the reduction's object-operation budget.
	OpsPerProcess int
	// PerOpBound is the per-operation lower bound implied by Corollary
	// 6.1: ⌈log₄ n⌉ / OpsPerProcess (integer floor of the winner's budget
	// split across its object operations).
	PerOpBound int
}

// SweepReduction measures one reduction over a construction for each n.
func SweepReduction(spec wakeup.ReductionSpec, construction string, ns []int, ta machine.TossAssignment) ([]ReductionResult, error) {
	return SweepReductionParallel(spec, construction, ns, ta, 1)
}

// SweepReductionParallel is SweepReduction fanned out over up to
// `parallel` workers (≤ 0 means one per CPU). Every grid point builds its
// own construction instance (fresh registers), so items share nothing.
func SweepReductionParallel(spec wakeup.ReductionSpec, construction string, ns []int, ta machine.TossAssignment, parallel int) ([]ReductionResult, error) {
	return SweepReductionCtx(context.Background(), spec, construction, ns, ta, parallel)
}

// SweepReductionCtx is SweepReductionParallel under a context
// (sweep.MapCtx semantics on cancellation).
func SweepReductionCtx(ctx context.Context, spec wakeup.ReductionSpec, construction string, ns []int, ta machine.TossAssignment, parallel int) ([]ReductionResult, error) {
	return sweep.MapCtx(ctx, parallel, len(ns), func(i int) (ReductionResult, error) {
		n := ns[i]
		alg, obj, err := BuildReduction(spec, construction, n)
		if err != nil {
			return ReductionResult{}, err
		}
		wr, err := MeasureWakeup(alg, n, ta)
		if err != nil {
			return ReductionResult{}, err
		}
		return ReductionResult{
			WakeupResult:  wr,
			Type:          obj.Type().Name(),
			Construction:  construction,
			OpsPerProcess: spec.OpsPerProcess,
			PerOpBound:    core.Log4Ceil(n) / spec.OpsPerProcess,
		}, nil
	})
}

// ConstructionResult is one measurement of a universal construction's
// worst-case per-operation cost under the adversary (E7/E8).
type ConstructionResult struct {
	Construction string
	Type         string
	N            int
	// MaxSteps is the adversary-forced worst per-process step count for a
	// single operation.
	MaxSteps int
	// StepBound is the construction's documented worst case (0 if not
	// wait-free).
	StepBound int
	// LowerBound is ⌈log₄ n⌉ — no oblivious construction can beat it.
	LowerBound int
}

// MeasureConstruction runs one op per process on the construction under
// the adversary and reports the forced worst-case per-op cost.
func MeasureConstruction(mk func(n int) universal.Construction, op func(n, pid int) objtype.Op, n int) (ConstructionResult, error) {
	obj := mk(n)
	alg := machine.New(obj.Name(), func(e *machine.Env) shmem.Value {
		return obj.Invoke(e, op(n, e.ID()))
	})
	run, err := core.RunAll(alg, n, machine.ZeroTosses, core.Config{NoHistory: true})
	if err != nil {
		return ConstructionResult{}, fmt.Errorf("lowerbound: %s n=%d: %w", obj.Name(), n, err)
	}
	recordRun(run)
	maxSteps, _ := run.MaxSteps()
	return ConstructionResult{
		Construction: obj.Name(),
		Type:         obj.Type().Name(),
		N:            n,
		MaxSteps:     maxSteps,
		StepBound:    obj.StepBound(),
		LowerBound:   core.Log4Ceil(n),
	}, nil
}

// SweepConstruction measures the construction across ns and classifies the
// growth of its forced cost.
func SweepConstruction(mk func(n int) universal.Construction, op func(n, pid int) objtype.Op, ns []int) ([]ConstructionResult, stats.Growth, error) {
	return SweepConstructionParallel(mk, op, ns, 1)
}

// SweepConstructionParallel is SweepConstruction fanned out over up to
// `parallel` workers (≤ 0 means one per CPU). mk is invoked once per grid
// point inside its work item, so each measurement owns its construction
// and simulated memory; the growth fit happens after the barrier, over the
// index-ordered results.
func SweepConstructionParallel(mk func(n int) universal.Construction, op func(n, pid int) objtype.Op, ns []int, parallel int) ([]ConstructionResult, stats.Growth, error) {
	return SweepConstructionCtx(context.Background(), mk, op, ns, parallel)
}

// SweepConstructionCtx is SweepConstructionParallel under a context: on
// cancellation the partial results come back with ctx.Err() and an empty
// growth classification.
func SweepConstructionCtx(ctx context.Context, mk func(n int) universal.Construction, op func(n, pid int) objtype.Op, ns []int, parallel int) ([]ConstructionResult, stats.Growth, error) {
	out, err := sweep.MapCtx(ctx, parallel, len(ns), func(i int) (ConstructionResult, error) {
		return MeasureConstruction(mk, op, ns[i])
	})
	if err != nil {
		return out, "", err
	}
	return out, ConstructionGrowth(ns, out), nil
}

// ConstructionGrowth classifies how a construction's forced per-op cost
// grows across the sweep's process counts (empty with fewer than three
// points — no fit is meaningful). It is shared by the in-process sweep
// above and the distributed shard merge (internal/dist), which re-derives
// the classification from the index-ordered shard results; both paths
// must see the same function so a distributed sweep stays byte-identical
// to a serial one.
func ConstructionGrowth(ns []int, results []ConstructionResult) stats.Growth {
	if len(ns) < 3 {
		return ""
	}
	ys := make([]float64, 0, len(results))
	for _, r := range results {
		ys = append(ys, float64(r.MaxSteps))
	}
	growth, _, _ := stats.ClassifyGrowth(ns, ys)
	return growth
}

// FetchIncOp is the op generator for fetch&increment sweeps.
func FetchIncOp(n, pid int) objtype.Op { return objtype.Op{Name: objtype.OpFetchIncrement} }
