package lowerbound

import (
	"fmt"
	"sort"
	"strings"

	"jayanti98/internal/objtype"
)

// SweepType pairs an object-type factory with the operation each process
// performs in a construction sweep — the workload vocabulary shared by
// cmd/unisweep and the job service, so a CLI sweep and a submitted sweep
// job mean exactly the same thing.
type SweepType struct {
	// Name is the registry key (e.g. "fetch&increment").
	Name string
	// New builds the sequential type for an n-process sweep.
	New func(n int) objtype.Type
	// Op is the operation process pid performs.
	Op func(n, pid int) objtype.Op
}

var sweepTypes = map[string]SweepType{
	"fetch&increment": {
		Name: "fetch&increment",
		New:  func(n int) objtype.Type { return objtype.NewFetchIncrement(64) },
		Op:   FetchIncOp,
	},
	"queue": {
		Name: "queue",
		New:  func(n int) objtype.Type { return objtype.NewWakeupQueue() },
		Op:   func(n, pid int) objtype.Op { return objtype.Op{Name: objtype.OpDequeue} },
	},
	"stack": {
		Name: "stack",
		New:  func(n int) objtype.Type { return objtype.NewWakeupStack() },
		Op:   func(n, pid int) objtype.Op { return objtype.Op{Name: objtype.OpPop} },
	},
}

// SweepTypes lists the registered sweep workload names, sorted.
func SweepTypes() []string {
	names := make([]string, 0, len(sweepTypes))
	for name := range sweepTypes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// SweepTypeFor resolves a sweep workload by name.
func SweepTypeFor(name string) (SweepType, error) {
	st, ok := sweepTypes[name]
	if !ok {
		return SweepType{}, fmt.Errorf("lowerbound: unknown sweep type %q (want %s)",
			name, strings.Join(SweepTypes(), ", "))
	}
	return st, nil
}
