package lowerbound

import (
	"fmt"
	"math/rand"

	"jayanti98/internal/moveplan"
	"jayanti98/internal/objtype"
	"jayanti98/internal/shmem"
)

// MoveScheduleResult compares the naive and secretive schedules on one
// move workload (E9, the motivation of Section 4): the longest movers chain
// is exactly how many processes a later reader of one register can infer
// took a step.
type MoveScheduleResult struct {
	Workload        string
	N               int
	NaiveMaxMovers  int
	SecretiveMax    int
	SecretiveLegal  bool // complete and ≤ 2 movers everywhere (Lemma 4.1)
	Lemma42Verified bool // restriction preserves sources (Lemma 4.2)
}

// MoveScheduleComparison builds the Section 4 chain workload — p_i performs
// move(R_i, R_{i+1}) — plus a random workload, and reports the information
// leakage of the naive pid-order schedule versus the secretive schedule.
//
// Safe for concurrent use: the random workload comes from a function-local
// RNG seeded by the caller, so no state is shared between calls. Parallel
// sweeps must NOT hoist the RNG out and share it (an unlocked *rand.Rand
// is a data race — see sched.Random); they pass each grid point its own
// seed, derived from the point's coordinates via sweep.Seed.
func MoveScheduleComparison(n int, seed int64) []MoveScheduleResult {
	chain := make(moveplan.Plan, n)
	for i := 0; i < n; i++ {
		chain[i] = moveplan.Move{Src: i, Dst: i + 1}
	}
	rng := rand.New(rand.NewSource(seed))
	random := make(moveplan.Plan, n)
	for i := 0; i < n; i++ {
		random[i] = moveplan.Move{Src: rng.Intn(n + 1), Dst: rng.Intn(n + 1)}
	}
	out := make([]MoveScheduleResult, 0, 2)
	for _, w := range []struct {
		name string
		plan moveplan.Plan
	}{{"chain", chain}, {"random", random}} {
		sigma := moveplan.Secretive(w.plan)
		res := MoveScheduleResult{
			Workload:       w.name,
			N:              n,
			NaiveMaxMovers: moveplan.MaxMovers(w.plan, moveplan.NaiveChain(w.plan)),
			SecretiveMax:   moveplan.MaxMovers(w.plan, sigma),
			SecretiveLegal: moveplan.IsSecretive(w.plan, sigma),
		}
		res.Lemma42Verified = verifyLemma42(w.plan, sigma)
		out = append(out, res)
	}
	return out
}

func verifyLemma42(plan moveplan.Plan, sigma moveplan.Schedule) bool {
	tr := moveplan.Eval(plan, sigma)
	for _, mv := range plan {
		sub := make(map[int]bool)
		for _, pid := range tr.Movers(mv.Dst) {
			sub[pid] = true
		}
		if err := moveplan.CheckLemma42(plan, sigma, mv.Dst, sub); err != nil {
			return false
		}
	}
	return true
}

// RMWResult demonstrates the Section 7 observation (E10): with an
// unbounded-register read-modify-write operation, ANY object has a
// wait-free implementation with unit shared-access time per operation —
// which is why the Ω(log n) bound cannot survive adding arbitrary RMW.
type RMWResult struct {
	Type       string
	N          int
	Ops        int
	StepsPerOp float64 // always exactly 1
	Correct    bool
}

// RMWUnitTime implements the given type over a single RMW register:
// process p performs op as ONE shared-memory access. It runs n processes,
// one op each in pid order, and verifies responses against the sequential
// specification.
func RMWUnitTime(typ objtype.Type, n int, op func(n, pid int) objtype.Op) (RMWResult, error) {
	mem := shmem.New()
	const reg = 0
	responses := make([]objtype.Value, n)
	for pid := 0; pid < n; pid++ {
		o := op(n, pid)
		cur := pid // capture for the closure below
		mem.RMW(pid, reg, func(v shmem.Value) shmem.Value {
			state := v
			if state == nil {
				state = typ.Init(n)
			}
			next, resp := typ.Apply(state, o)
			responses[cur] = resp
			return next
		})
	}
	// Validate against a pure sequential replay.
	ops := make([]objtype.Op, n)
	for pid := 0; pid < n; pid++ {
		ops[pid] = op(n, pid)
	}
	_, want := objtype.Replay(typ, n, ops)
	res := RMWResult{Type: typ.Name(), N: n, Ops: n, StepsPerOp: 1, Correct: true}
	for pid := 0; pid < n; pid++ {
		if !shmem.ValuesEqual(responses[pid], want[pid]) {
			res.Correct = false
			return res, fmt.Errorf("lowerbound: RMW response %d = %v, want %v", pid, responses[pid], want[pid])
		}
		if mem.Steps(pid) != 1 {
			res.Correct = false
			return res, fmt.Errorf("lowerbound: RMW process %d used %d steps, want 1", pid, mem.Steps(pid))
		}
	}
	return res, nil
}
