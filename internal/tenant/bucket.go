package tenant

import (
	"math"
	"sync"
	"time"
)

// Bucket is a token-bucket rate limiter: capacity burst, refilled at
// rate tokens per second. A zero rate means unlimited — Allow always
// succeeds. Buckets are safe for concurrent use.
type Bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second; 0 = unlimited
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time // test seam
}

// NewBucket builds a bucket that starts full. burst ≤ 0 with a positive
// rate defaults to ceil(rate) (at least 1), so "ratePerSec: 10" alone is
// a sensible config.
func NewBucket(rate float64, burst int) *Bucket {
	b := &Bucket{rate: rate, now: time.Now}
	if rate > 0 {
		if burst <= 0 {
			burst = int(math.Ceil(rate))
			if burst < 1 {
				burst = 1
			}
		}
		b.burst = float64(burst)
		b.tokens = b.burst
	}
	b.last = b.now()
	return b
}

// Allow takes one token. When the bucket is empty it returns false and
// the duration after which a retry can succeed — the Retry-After the
// HTTP layer serves with a 429.
func (b *Bucket) Allow() (bool, time.Duration) {
	if b == nil || b.rate <= 0 {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return false, wait
}

// Limiter keeps one bucket per tenant, built lazily from the registry's
// configured rate.
type Limiter struct {
	reg     *Registry
	mu      sync.Mutex
	buckets map[string]*Bucket
}

// NewLimiter builds a limiter over the registry's tenants.
func NewLimiter(reg *Registry) *Limiter {
	return &Limiter{reg: reg, buckets: make(map[string]*Bucket)}
}

// Allow meters one request for the tenant, lazily creating its bucket.
func (l *Limiter) Allow(t Tenant) (bool, time.Duration) {
	if t.RatePerSec <= 0 {
		return true, 0
	}
	l.mu.Lock()
	b, ok := l.buckets[t.Name]
	if !ok {
		b = NewBucket(t.RatePerSec, t.Burst)
		l.buckets[t.Name] = b
	}
	l.mu.Unlock()
	return b.Allow()
}

// setNow rewires every existing and future bucket clock; tests use it to
// drive refill deterministically.
func (l *Limiter) setNow(t Tenant, now func() time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[t.Name]
	if !ok {
		b = NewBucket(t.RatePerSec, t.Burst)
		l.buckets[t.Name] = b
	}
	b.mu.Lock()
	b.now = now
	b.last = now()
	b.tokens = b.burst
	b.mu.Unlock()
}
