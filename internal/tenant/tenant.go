// Package tenant is the multi-tenant access layer of the job service:
// named tenants with API keys, per-tenant token-bucket rate limits, and
// the fair-share weights and caps the job scheduler consumes.
//
// The package deliberately knows nothing about jobs: it authenticates a
// request to a tenant name and meters it, and the scheduler asks the
// registry for that name's scheduling Limits. Keeping tenancy out of the
// job Spec is load-bearing for the cache contract — a job's identity is
// the content hash of its spec alone, so two tenants submitting one spec
// share one job and one cached result. Tenancy decides *when* work runs
// (fair share, caps, rate limits) and who may ask, never *what* the
// result is.
package tenant

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
)

// DefaultName is the tenant anonymous requests map to when the registry
// is open (no tenants file). Internal submitters — campaign round
// resubmission, journal replay — also run as this tenant.
const DefaultName = "default"

// Limits are the scheduling knobs the job scheduler reads per tenant.
// The zero value means "unconstrained with weight 1".
type Limits struct {
	// Weight is the tenant's fair-share weight in the scheduler's
	// weighted round-robin (≤ 0 reads as 1). A weight-3 tenant gets
	// three dispatch slots for every one a weight-1 tenant gets when
	// both have work pending.
	Weight int `json:"weight,omitempty"`
	// MaxRunning caps the tenant's concurrently running jobs (0: no cap).
	MaxRunning int `json:"maxRunning,omitempty"`
	// MaxQueued caps the tenant's queued-but-not-running jobs (0: no
	// cap). Submissions beyond it answer 429 with Retry-After.
	MaxQueued int `json:"maxQueued,omitempty"`
}

// Tenant is one configured tenant.
type Tenant struct {
	// Name identifies the tenant in metrics, logs, and job records. It
	// must be unique and non-empty.
	Name string `json:"name"`
	// Key is the API key presented as "Authorization: Bearer <key>" (or
	// the X-API-Key header). Empty only for the anonymous tenant.
	Key string `json:"key,omitempty"`
	// RatePerSec refills the tenant's token bucket (0: unlimited).
	RatePerSec float64 `json:"ratePerSec,omitempty"`
	// Burst is the bucket capacity (0 with a rate: ceil(rate), min 1).
	Burst int `json:"burst,omitempty"`

	Limits
}

// NormWeight returns the tenant's effective fair-share weight (≥ 1).
func (l Limits) NormWeight() int {
	if l.Weight <= 0 {
		return 1
	}
	return l.Weight
}

// Config is the tenants file: a list of tenants plus the anonymous
// policy.
type Config struct {
	// Tenants is the tenant list; names and keys must be unique.
	Tenants []Tenant `json:"tenants"`
	// AllowAnonymous admits requests without a key as the "default"
	// tenant (with zero-value limits unless a tenant named "default" is
	// configured). Without it, a closed registry answers 401.
	AllowAnonymous bool `json:"allowAnonymous,omitempty"`
}

// Registry resolves API keys to tenants. A registry is either *open*
// (no tenants configured: every request is the default tenant, no
// limits — the single-user development mode every existing smoke script
// runs in) or *closed* (tenants file loaded: a request must present a
// configured key, or the anonymous tenant must be explicitly allowed).
type Registry struct {
	mu     sync.Mutex
	open   bool
	byKey  map[string]*Tenant
	byName map[string]*Tenant
	anon   *Tenant // non-nil when anonymous requests are admitted
}

// Open returns the open registry: anonymous single-tenant mode with no
// rate limits, the default when lbserver runs without -tenants.
func Open() *Registry {
	anon := &Tenant{Name: DefaultName}
	return &Registry{
		open:   true,
		byKey:  map[string]*Tenant{},
		byName: map[string]*Tenant{DefaultName: anon},
		anon:   anon,
	}
}

// New builds a closed registry from cfg.
func New(cfg Config) (*Registry, error) {
	r := &Registry{
		byKey:  make(map[string]*Tenant, len(cfg.Tenants)),
		byName: make(map[string]*Tenant, len(cfg.Tenants)),
	}
	for i := range cfg.Tenants {
		t := cfg.Tenants[i]
		if t.Name == "" {
			return nil, fmt.Errorf("tenant: entry %d has no name", i)
		}
		if _, dup := r.byName[t.Name]; dup {
			return nil, fmt.Errorf("tenant: duplicate tenant name %q", t.Name)
		}
		if t.Key == "" {
			return nil, fmt.Errorf("tenant: tenant %q has no key", t.Name)
		}
		if _, dup := r.byKey[t.Key]; dup {
			return nil, fmt.Errorf("tenant: tenant %q reuses another tenant's key", t.Name)
		}
		if t.RatePerSec < 0 || t.Burst < 0 || t.MaxRunning < 0 || t.MaxQueued < 0 || t.Weight < 0 {
			return nil, fmt.Errorf("tenant: tenant %q has a negative limit", t.Name)
		}
		r.byName[t.Name] = &t
		r.byKey[t.Key] = &t
	}
	if cfg.AllowAnonymous {
		if t, ok := r.byName[DefaultName]; ok {
			r.anon = t
		} else {
			anon := &Tenant{Name: DefaultName}
			r.byName[DefaultName] = anon
			r.anon = anon
		}
	}
	return r, nil
}

// Load reads a tenants file (JSON Config) into a closed registry.
func Load(path string) (*Registry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tenant: %w", err)
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("tenant: parsing %s: %w", path, err)
	}
	return New(cfg)
}

// IsOpen reports whether the registry admits everything as the default
// tenant (development mode).
func (r *Registry) IsOpen() bool { return r.open }

// Authenticate resolves a presented key. An empty key resolves to the
// anonymous tenant when one is admitted. The returned Tenant is a copy;
// mutating it does not affect the registry.
func (r *Registry) Authenticate(key string) (Tenant, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if key == "" {
		if r.anon != nil {
			return *r.anon, true
		}
		return Tenant{}, false
	}
	if t, ok := r.byKey[key]; ok {
		return *t, true
	}
	if r.open {
		// Open mode ignores credentials entirely rather than rejecting
		// them, so a client configured with a key keeps working against a
		// development server.
		return *r.anon, true
	}
	return Tenant{}, false
}

// LimitsFor returns the scheduling limits for a tenant name. Unknown
// names (journal records from a since-removed tenant) get the zero
// Limits — weight 1, no caps — so a config change never strands work.
func (r *Registry) LimitsFor(name string) Limits {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.byName[name]; ok {
		return t.Limits
	}
	return Limits{}
}

// Names lists the configured tenant names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.byName))
	for name := range r.byName {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// KeyFromRequestHeader extracts the API key from the standard places:
// "Authorization: Bearer <key>" first, then "X-API-Key". Empty when
// neither is present.
func KeyFromRequestHeader(get func(string) string) string {
	if auth := get("Authorization"); auth != "" {
		if key, ok := strings.CutPrefix(auth, "Bearer "); ok {
			return strings.TrimSpace(key)
		}
	}
	return strings.TrimSpace(get("X-API-Key"))
}
