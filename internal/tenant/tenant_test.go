package tenant

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"jayanti98/internal/obs"
)

func closedRegistry(t *testing.T, cfg Config) *Registry {
	t.Helper()
	reg, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func TestOpenRegistryAdmitsEverything(t *testing.T) {
	reg := Open()
	if !reg.IsOpen() {
		t.Fatal("Open() registry reports closed")
	}
	for _, key := range []string{"", "any-key-at-all"} {
		tn, ok := reg.Authenticate(key)
		if !ok || tn.Name != DefaultName {
			t.Fatalf("Authenticate(%q) = %+v, %v; want default tenant admitted", key, tn, ok)
		}
	}
	if lim := reg.LimitsFor(DefaultName); lim != (Limits{}) {
		t.Fatalf("open registry default limits = %+v, want zero", lim)
	}
}

func TestClosedRegistryAuth(t *testing.T) {
	reg := closedRegistry(t, Config{Tenants: []Tenant{
		{Name: "acme", Key: "k-acme", Limits: Limits{Weight: 3, MaxRunning: 2, MaxQueued: 5}},
		{Name: "zeta", Key: "k-zeta"},
	}})
	if reg.IsOpen() {
		t.Fatal("closed registry reports open")
	}
	if tn, ok := reg.Authenticate("k-acme"); !ok || tn.Name != "acme" {
		t.Fatalf("valid key rejected: %+v, %v", tn, ok)
	}
	if _, ok := reg.Authenticate("wrong"); ok {
		t.Fatal("unknown key admitted")
	}
	if _, ok := reg.Authenticate(""); ok {
		t.Fatal("anonymous admitted without allowAnonymous")
	}
	if lim := reg.LimitsFor("acme"); lim.Weight != 3 || lim.MaxRunning != 2 || lim.MaxQueued != 5 {
		t.Fatalf("acme limits = %+v", lim)
	}
	// Unknown names (a tenant removed from the config while its journal
	// records survive) must not strand work: zero limits, weight 1.
	if lim := reg.LimitsFor("ghost"); lim != (Limits{}) || lim.NormWeight() != 1 {
		t.Fatalf("unknown tenant limits = %+v", lim)
	}
}

func TestAllowAnonymousMapsToDefault(t *testing.T) {
	// Anonymous with no configured "default" tenant: admitted, zero limits.
	reg := closedRegistry(t, Config{
		Tenants:        []Tenant{{Name: "acme", Key: "k"}},
		AllowAnonymous: true,
	})
	if tn, ok := reg.Authenticate(""); !ok || tn.Name != DefaultName {
		t.Fatalf("anonymous = %+v, %v", tn, ok)
	}
	// A configured "default" tenant's limits apply to anonymous requests.
	reg = closedRegistry(t, Config{
		Tenants:        []Tenant{{Name: DefaultName, Key: "k-def", Limits: Limits{MaxQueued: 2}}},
		AllowAnonymous: true,
	})
	if tn, ok := reg.Authenticate(""); !ok || tn.MaxQueued != 2 {
		t.Fatalf("anonymous with configured default = %+v, %v", tn, ok)
	}
}

func TestNewRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{Tenants: []Tenant{{Name: "", Key: "k"}}},
		{Tenants: []Tenant{{Name: "a", Key: "k"}, {Name: "a", Key: "k2"}}},
		{Tenants: []Tenant{{Name: "a", Key: ""}}},
		{Tenants: []Tenant{{Name: "a", Key: "k"}, {Name: "b", Key: "k"}}},
		{Tenants: []Tenant{{Name: "a", Key: "k", RatePerSec: -1}}},
		{Tenants: []Tenant{{Name: "a", Key: "k", Limits: Limits{MaxQueued: -1}}}},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted, want error", i)
		}
	}
}

func TestLoadTenantsFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tenants.json")
	if err := os.WriteFile(path, []byte(`{
		"tenants": [{"name": "acme", "key": "k-acme", "ratePerSec": 10, "weight": 2}],
		"allowAnonymous": true
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	reg, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	tn, ok := reg.Authenticate("k-acme")
	if !ok || tn.RatePerSec != 10 || tn.NormWeight() != 2 {
		t.Fatalf("loaded tenant = %+v, %v", tn, ok)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := os.WriteFile(path, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("malformed file accepted")
	}
}

func TestKeyFromRequestHeader(t *testing.T) {
	get := func(h map[string]string) func(string) string {
		return func(name string) string { return h[name] }
	}
	cases := []struct {
		headers map[string]string
		want    string
	}{
		{map[string]string{"Authorization": "Bearer abc"}, "abc"},
		{map[string]string{"Authorization": "Bearer  abc "}, "abc"},
		{map[string]string{"Authorization": "Basic abc"}, ""},
		{map[string]string{"X-API-Key": "xyz"}, "xyz"},
		{map[string]string{"Authorization": "Bearer abc", "X-API-Key": "xyz"}, "abc"},
		{map[string]string{}, ""},
	}
	for i, c := range cases {
		if got := KeyFromRequestHeader(get(c.headers)); got != c.want {
			t.Errorf("case %d: got %q, want %q", i, got, c.want)
		}
	}
}

func TestBucketRefill(t *testing.T) {
	clock := time.Unix(1000, 0)
	b := NewBucket(2, 2) // 2 tokens/s, burst 2
	b.now = func() time.Time { return clock }
	b.last = clock
	for i := 0; i < 2; i++ {
		if ok, _ := b.Allow(); !ok {
			t.Fatalf("token %d denied from a full bucket", i)
		}
	}
	ok, retry := b.Allow()
	if ok {
		t.Fatal("empty bucket admitted a request")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retry = %s, want (0, 1s] at 2 tokens/s", retry)
	}
	// Advancing the clock past the retry hint refills exactly enough.
	clock = clock.Add(retry)
	if ok, _ := b.Allow(); !ok {
		t.Fatal("bucket still empty after the suggested retry wait")
	}
	// Refill clamps at burst: a long idle period does not bank tokens.
	clock = clock.Add(time.Hour)
	for i := 0; i < 2; i++ {
		if ok, _ := b.Allow(); !ok {
			t.Fatalf("token %d denied after refill to burst", i)
		}
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("burst clamp failed: more than burst tokens after idle")
	}
}

func TestBucketUnlimited(t *testing.T) {
	b := NewBucket(0, 0)
	for i := 0; i < 1000; i++ {
		if ok, _ := b.Allow(); !ok {
			t.Fatal("zero-rate bucket denied a request")
		}
	}
}

func TestBucketDefaultBurst(t *testing.T) {
	b := NewBucket(2.5, 0)
	if b.burst != 3 {
		t.Fatalf("default burst = %v, want ceil(2.5) = 3", b.burst)
	}
	if b := NewBucket(0.1, 0); b.burst != 1 {
		t.Fatalf("tiny-rate default burst = %v, want 1", b.burst)
	}
}

// echoHandler records the tenant name the middleware stamped on the
// request context.
func echoHandler(got *[]string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		*got = append(*got, FromContext(r.Context()))
		w.WriteHeader(http.StatusOK)
	})
}

func TestMiddlewareAuthPaths(t *testing.T) {
	reg := closedRegistry(t, Config{Tenants: []Tenant{{Name: "acme", Key: "k-acme"}}})
	var tenants []string
	h := Middleware(echoHandler(&tenants), MiddlewareOptions{Registry: reg, Obs: obs.NewRegistry()})
	srv := httptest.NewServer(h)
	defer srv.Close()

	do := func(path, header, value string) *http.Response {
		req, err := http.NewRequest(http.MethodGet, srv.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if header != "" {
			req.Header.Set(header, value)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// No key against a closed registry: 401 with a challenge.
	resp := do("/v1/jobs", "", "")
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("anonymous /v1/ = %d, want 401", resp.StatusCode)
	}
	if resp.Header.Get("WWW-Authenticate") == "" {
		t.Fatal("401 carries no WWW-Authenticate challenge")
	}
	if resp := do("/v1/jobs", "Authorization", "Bearer nope"); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("bad key = %d, want 401", resp.StatusCode)
	}
	// Liveness and observability stay open.
	for _, path := range []string{"/healthz", "/metrics", "/debug/vars"} {
		if resp := do(path, "", ""); resp.StatusCode != http.StatusOK {
			t.Fatalf("%s = %d, want 200 without a key", path, resp.StatusCode)
		}
	}
	// Both key spellings admit and stamp the tenant.
	tenants = nil
	if resp := do("/v1/jobs", "Authorization", "Bearer k-acme"); resp.StatusCode != http.StatusOK {
		t.Fatalf("bearer key = %d, want 200", resp.StatusCode)
	}
	if resp := do("/v1/jobs", "X-API-Key", "k-acme"); resp.StatusCode != http.StatusOK {
		t.Fatalf("X-API-Key = %d, want 200", resp.StatusCode)
	}
	if len(tenants) != 2 || tenants[0] != "acme" || tenants[1] != "acme" {
		t.Fatalf("handler saw tenants %v, want [acme acme]", tenants)
	}
}

func TestMiddlewareRateLimit429(t *testing.T) {
	reg := closedRegistry(t, Config{Tenants: []Tenant{
		{Name: "acme", Key: "k-acme", RatePerSec: 1, Burst: 2},
	}})
	var tenants []string
	h := Middleware(echoHandler(&tenants), MiddlewareOptions{Registry: reg, Obs: obs.NewRegistry()})
	srv := httptest.NewServer(h)
	defer srv.Close()

	do := func(path string) *http.Response {
		req, err := http.NewRequest(http.MethodGet, srv.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Authorization", "Bearer k-acme")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// Burst admits 2, the third is metered out.
	for i := 0; i < 2; i++ {
		if resp := do("/v1/jobs"); resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d = %d, want 200", i, resp.StatusCode)
		}
	}
	resp := do("/v1/jobs")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-burst request = %d, want 429", resp.StatusCode)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want a positive whole-second count", resp.Header.Get("Retry-After"))
	}
	// The shard pull protocol is authenticated but never metered:
	// heartbeats at TTL/3 are protocol overhead, not tenant demand.
	for i := 0; i < 20; i++ {
		if resp := do("/v1/shards/lease"); resp.StatusCode != http.StatusOK {
			t.Fatalf("shard request %d = %d, want unmetered 200", i, resp.StatusCode)
		}
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 1},
		{time.Millisecond, 1},
		{time.Second, 1},
		{time.Second + time.Millisecond, 2},
		{2500 * time.Millisecond, 3},
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.d); got != c.want {
			t.Errorf("retryAfterSeconds(%s) = %d, want %d", c.d, got, c.want)
		}
	}
}
