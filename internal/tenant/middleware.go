package tenant

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"time"

	"jayanti98/internal/obs"
)

type ctxKey struct{}

// WithTenant returns ctx carrying the tenant name.
func WithTenant(ctx context.Context, name string) context.Context {
	return context.WithValue(ctx, ctxKey{}, name)
}

// FromContext returns the tenant name carried by ctx, or DefaultName
// when the request never passed the middleware (direct handler tests,
// internal submissions).
func FromContext(ctx context.Context) string {
	if name, ok := ctx.Value(ctxKey{}).(string); ok && name != "" {
		return name
	}
	return DefaultName
}

// MiddlewareOptions configures Middleware.
type MiddlewareOptions struct {
	// Registry authenticates keys (nil: Open()).
	Registry *Registry
	// Obs receives the tenant_* metrics (nil: obs.Default()).
	Obs *obs.Registry
}

// Middleware authenticates and rate-limits the API surface:
//
//   - Only /v1/ paths are guarded; /healthz, /metrics, and /debug stay
//     open — liveness and observability must outlive a lost key.
//   - The key comes from "Authorization: Bearer <key>" or "X-API-Key".
//     Unknown keys (and anonymous requests against a closed registry
//     that does not allow them) answer 401.
//   - Each admitted request spends one token from the tenant's bucket;
//     an empty bucket answers 429 with Retry-After in whole seconds.
//     The shard pull protocol (/v1/shards/...) is authenticated but not
//     metered: heartbeats at TTL/3 are protocol overhead, not tenant
//     demand, and throttling them would churn leases.
//   - The request context is stamped with the tenant name for the
//     handlers (FromContext) and downstream job records.
func Middleware(next http.Handler, opts MiddlewareOptions) http.Handler {
	reg := opts.Registry
	if reg == nil {
		reg = Open()
	}
	met := opts.Obs
	if met == nil {
		met = obs.Default()
	}
	limiter := NewLimiter(reg)
	unauthorized := met.Counter("tenant_unauthorized_total",
		"Requests rejected 401: unknown key, or anonymous against a closed registry.", nil)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/v1/") {
			next.ServeHTTP(w, r)
			return
		}
		t, ok := reg.Authenticate(KeyFromRequestHeader(r.Header.Get))
		if !ok {
			unauthorized.Inc()
			w.Header().Set("WWW-Authenticate", `Bearer realm="lbserver"`)
			tenantError(w, http.StatusUnauthorized, "unknown or missing API key")
			return
		}
		met.Counter("tenant_requests_total", "Requests admitted past tenant auth, by tenant.",
			obs.Labels{"tenant": t.Name}).Inc()
		if !strings.HasPrefix(r.URL.Path, "/v1/shards") {
			if ok, retry := limiter.Allow(t); !ok {
				met.Counter("tenant_rate_limited_total", "Requests rejected 429 by the tenant token bucket, by tenant.",
					obs.Labels{"tenant": t.Name}).Inc()
				w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(retry)))
				tenantError(w, http.StatusTooManyRequests, "rate limit exceeded for tenant "+t.Name)
				return
			}
		}
		next.ServeHTTP(w, r.WithContext(WithTenant(r.Context(), t.Name)))
	})
}

// retryAfterSeconds rounds a wait up to whole seconds (minimum 1), the
// granularity the Retry-After header speaks.
func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

func tenantError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
