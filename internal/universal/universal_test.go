package universal

import (
	"fmt"
	"strings"
	"testing"

	"jayanti98/internal/core"
	"jayanti98/internal/machine"
	"jayanti98/internal/objtype"
	"jayanti98/internal/sched"
	"jayanti98/internal/shmem"
)

// constructions returns one instance of every construction for an
// n-process object of the given type, each at base register 0.
func constructions(typ objtype.Type, n int) []Construction {
	return []Construction{
		NewGroupUpdate(typ, n, 0),
		NewHerlihy(typ, n, 0),
		NewCentral(typ, n, 0),
	}
}

// oneOpAlg wraps "perform a single op on obj and return the response".
func oneOpAlg(obj Construction, op objtype.Op) machine.Algorithm {
	return machine.New(obj.Name(), func(e *machine.Env) shmem.Value {
		return obj.Invoke(e, op)
	})
}

func TestLogHelpers(t *testing.T) {
	l := Log{{Pid: 1, Seq: 0}, {Pid: 2, Seq: 3}}
	if !l.Contains(2, 3) || l.Contains(2, 0) {
		t.Fatal("Contains wrong")
	}
	if l.IndexOf(1, 0) != 0 || l.IndexOf(9, 9) != -1 {
		t.Fatal("IndexOf wrong")
	}
	if got := (Record{Pid: 1, Seq: 2, Op: objtype.Op{Name: "x"}}).String(); got != "p1#2:x()" {
		t.Fatalf("Record.String = %q", got)
	}
}

func TestMergeDeduplicatesAndPreservesOrder(t *testing.T) {
	a := Log{{Pid: 0, Seq: 0}, {Pid: 1, Seq: 0}}
	b := Log{{Pid: 1, Seq: 0}, {Pid: 2, Seq: 0}}
	c := Log{{Pid: 2, Seq: 0}, {Pid: 3, Seq: 0}}
	got := merge(a, b, c)
	want := Log{{Pid: 0, Seq: 0}, {Pid: 1, Seq: 0}, {Pid: 2, Seq: 0}, {Pid: 3, Seq: 0}}
	if len(got) != len(want) {
		t.Fatalf("merge = %v", got)
	}
	for i := range want {
		if got[i].Pid != want[i].Pid {
			t.Fatalf("merge = %v, want %v", got, want)
		}
	}
	// base must not be aliased
	got[0].Pid = 99
	if a[0].Pid == 99 {
		t.Fatal("merge aliased its base log")
	}
}

func TestMergeEmptyBase(t *testing.T) {
	got := merge(nil, Log{{Pid: 5, Seq: 0}})
	if len(got) != 1 || got[0].Pid != 5 {
		t.Fatalf("merge(nil, ...) = %v", got)
	}
}

func TestAsLogNilAndBadType(t *testing.T) {
	if asLog(nil) != nil {
		t.Fatal("asLog(nil) should be empty")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("asLog of a non-Log must panic")
		}
	}()
	asLog("garbage")
}

func TestFetchIncrementSingleUseAllConstructionsAllSchedules(t *testing.T) {
	type schedCase struct {
		name string
		mk   func() sched.Scheduler
	}
	scheds := []schedCase{
		{"sequential", func() sched.Scheduler { return sched.Sequential{} }},
		{"round-robin", func() sched.Scheduler { return &sched.RoundRobin{} }},
		{"random", func() sched.Scheduler { return sched.NewRandom(7) }},
	}
	for _, n := range []int{1, 2, 3, 8} {
		typ := objtype.NewFetchIncrement(16)
		for _, obj := range constructions(typ, n) {
			for _, sc := range scheds {
				alg := oneOpAlg(obj, objtype.Op{Name: objtype.OpFetchIncrement})
				mem := shmem.New()
				res, err := sched.Execute(alg, n, mem, sc.mk(), machine.ZeroTosses, 1_000_000)
				if err != nil {
					t.Fatalf("%s/%s n=%d: %v", obj.Name(), sc.name, n, err)
				}
				assertPermutationOfCounts(t, res.Returns, n, fmt.Sprintf("%s/%s n=%d", obj.Name(), sc.name, n))
			}
		}
	}
}

// assertPermutationOfCounts checks that returns are exactly {0..n-1} as hex.
func assertPermutationOfCounts(t *testing.T, returns map[int]shmem.Value, n int, label string) {
	t.Helper()
	seen := make(map[string]bool, n)
	for pid, v := range returns {
		s, ok := v.(string)
		if !ok {
			t.Fatalf("%s: p%d returned %T", label, pid, v)
		}
		if seen[s] {
			t.Fatalf("%s: duplicate fetch&increment response %q", label, s)
		}
		seen[s] = true
	}
	for i := 0; i < n; i++ {
		if !seen[objtype.HexUint(uint64(i))] {
			t.Fatalf("%s: missing response %d in %v", label, i, returns)
		}
	}
}

func TestFetchIncrementUnderAdversary(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16} {
		typ := objtype.NewFetchIncrement(16)
		for _, obj := range constructions(typ, n) {
			alg := oneOpAlg(obj, objtype.Op{Name: objtype.OpFetchIncrement})
			run, err := core.RunAll(alg, n, machine.ZeroTosses, core.Config{})
			if err != nil {
				t.Fatalf("%s n=%d: %v", obj.Name(), n, err)
			}
			assertPermutationOfCounts(t, run.Returns, n, fmt.Sprintf("%s n=%d", obj.Name(), n))
			if err := core.CheckLemma51(run); err != nil {
				t.Fatalf("%s n=%d: %v", obj.Name(), n, err)
			}
		}
	}
}

func TestWaitFreeStepBoundsHoldUnderAdversary(t *testing.T) {
	// The documented worst-case bounds must hold in adversary runs (the
	// adversary is a legal schedule; wait-freedom is schedule-independent).
	for _, n := range []int{1, 2, 3, 4, 8, 16, 32} {
		typ := objtype.NewFetchIncrement(16)
		for _, obj := range []Construction{
			NewGroupUpdate(typ, n, 0),
			NewHerlihy(typ, n, 0),
		} {
			alg := oneOpAlg(obj, objtype.Op{Name: objtype.OpFetchIncrement})
			run, err := core.RunAll(alg, n, machine.ZeroTosses, core.Config{})
			if err != nil {
				t.Fatalf("%s n=%d: %v", obj.Name(), n, err)
			}
			bound := obj.StepBound()
			for pid := 0; pid < n; pid++ {
				if run.Steps[pid] > bound {
					t.Fatalf("%s n=%d: p%d used %d steps, bound %d", obj.Name(), n, pid, run.Steps[pid], bound)
				}
			}
		}
	}
}

func TestGroupUpdateLogarithmicVsHerlihyLinear(t *testing.T) {
	// Adversary-forced worst-case steps: GroupUpdate grows with log n,
	// Herlihy with n. Compare at two sizes to verify the growth shapes.
	steps := func(obj Construction, n int) int {
		alg := oneOpAlg(obj, objtype.Op{Name: objtype.OpFetchIncrement})
		run, err := core.RunAll(alg, n, machine.ZeroTosses, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		maxSteps, _ := run.MaxSteps()
		return maxSteps
	}
	typ := objtype.NewFetchIncrement(16)
	gu16, gu64 := steps(NewGroupUpdate(typ, 16, 0), 16), steps(NewGroupUpdate(typ, 64, 0), 64)
	he16, he64 := steps(NewHerlihy(typ, 16, 0), 16), steps(NewHerlihy(typ, 64, 0), 64)
	// 4x processes: log grows by +2 levels (≤ +17 steps), linear by ~4x.
	if gu64-gu16 > 20 {
		t.Fatalf("group-update grew too fast: %d -> %d", gu16, gu64)
	}
	if he64 < 2*he16 {
		t.Fatalf("herlihy did not grow linearly: %d -> %d", he16, he64)
	}
	if gu64 >= he64 {
		t.Fatalf("group-update (%d) must beat herlihy (%d) at n=64", gu64, he64)
	}
}

func TestQueueMultiUseLinearizable(t *testing.T) {
	// Each process enqueues its id then dequeues; across all constructions
	// and schedules the dequeued multiset must equal the enqueued multiset
	// (no loss, no duplication), and every response must be non-Empty
	// (n enqueues precede... actually interleavings may dequeue Empty —
	// the queue may be empty when a fast process dequeues first. So check
	// multiset consistency: non-empty responses are distinct enqueued ids.)
	for _, n := range []int{2, 4, 8} {
		typ := objtype.NewEmptyQueue()
		for _, obj := range constructions(typ, n) {
			alg := machine.New(obj.Name(), func(e *machine.Env) shmem.Value {
				obj.Invoke(e, objtype.Op{Name: objtype.OpEnqueue, Arg: e.ID()})
				return obj.Invoke(e, objtype.Op{Name: objtype.OpDequeue})
			})
			run, err := core.RunAll(alg, n, machine.ZeroTosses, core.Config{})
			if err != nil {
				t.Fatalf("%s n=%d: %v", obj.Name(), n, err)
			}
			seen := make(map[shmem.Value]bool)
			for pid, v := range run.Returns {
				if v == objtype.Empty {
					continue
				}
				id, ok := v.(int)
				if !ok || id < 0 || id >= n {
					t.Fatalf("%s n=%d: p%d dequeued %v", obj.Name(), n, pid, v)
				}
				if seen[v] {
					t.Fatalf("%s n=%d: item %v dequeued twice", obj.Name(), n, v)
				}
				seen[v] = true
			}
		}
	}
}

func TestKUseSequenceNumbers(t *testing.T) {
	// Each process performs 3 increments; the 3n responses must be exactly
	// {0..3n-1}.
	const n, k = 4, 3
	typ := objtype.NewFetchIncrement(16)
	for _, obj := range constructions(typ, n) {
		alg := machine.New(obj.Name(), func(e *machine.Env) shmem.Value {
			out := make([]shmem.Value, 0, k)
			for i := 0; i < k; i++ {
				out = append(out, obj.Invoke(e, objtype.Op{Name: objtype.OpFetchIncrement}))
			}
			return fmt.Sprintf("%v", out)
		})
		run, err := core.RunAll(alg, n, machine.ZeroTosses, core.Config{})
		if err != nil {
			t.Fatalf("%s: %v", obj.Name(), err)
		}
		// Root state after 3n increments: inspect via a follow-up solo run
		// is overkill; instead collect all responses from the returns.
		seen := make(map[string]bool)
		for _, v := range run.Returns {
			fields := strings.Fields(strings.Trim(v.(string), "[]"))
			if len(fields) != k {
				t.Fatalf("%s: unparseable return %v", obj.Name(), v)
			}
			for _, s := range fields {
				if seen[s] {
					t.Fatalf("%s: duplicate response %q", obj.Name(), s)
				}
				seen[s] = true
			}
		}
		if len(seen) != n*k {
			t.Fatalf("%s: %d distinct responses, want %d", obj.Name(), len(seen), n*k)
		}
	}
}

func TestSequentialScheduleRealTimeOrder(t *testing.T) {
	// Under the sequential scheduler ops run one at a time, so responses
	// must match a FIFO linearization in pid order exactly.
	const n = 5
	typ := objtype.NewFetchIncrement(16)
	for _, obj := range constructions(typ, n) {
		alg := oneOpAlg(obj, objtype.Op{Name: objtype.OpFetchIncrement})
		mem := shmem.New()
		res, err := sched.Execute(alg, n, mem, sched.Sequential{}, machine.ZeroTosses, 100000)
		if err != nil {
			t.Fatal(err)
		}
		for pid := 0; pid < n; pid++ {
			if want := objtype.HexUint(uint64(pid)); res.Returns[pid] != want {
				t.Fatalf("%s: p%d returned %v, want %v (real-time order)", obj.Name(), pid, res.Returns[pid], want)
			}
		}
	}
}

func TestTwoObjectsDisjointRegisterLayout(t *testing.T) {
	// Two objects side by side must not interfere.
	const n = 4
	q := NewGroupUpdate(objtype.NewEmptyQueue(), n, 0)
	ctr := NewHerlihy(objtype.NewFetchIncrement(8), n, q.Registers())
	alg := machine.New("two-objects", func(e *machine.Env) shmem.Value {
		q.Invoke(e, objtype.Op{Name: objtype.OpEnqueue, Arg: e.ID()})
		v := ctr.Invoke(e, objtype.Op{Name: objtype.OpFetchIncrement})
		return v
	})
	run, err := core.RunAll(alg, n, machine.ZeroTosses, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	assertPermutationOfCounts(t, run.Returns, n, "two-objects")
}

func TestConstructionMetadata(t *testing.T) {
	typ := objtype.NewFetchIncrement(8)
	gu := NewGroupUpdate(typ, 5, 0)
	if gu.Registers() != 16 { // leaves=8, 2L=16
		t.Fatalf("GroupUpdate.Registers = %d, want 16", gu.Registers())
	}
	if gu.Depth() != 3 {
		t.Fatalf("Depth = %d, want 3", gu.Depth())
	}
	if gu.StepBound() != 8*3+3 {
		t.Fatalf("StepBound = %d", gu.StepBound())
	}
	he := NewHerlihy(typ, 5, 0)
	if he.Registers() != 6 {
		t.Fatalf("Herlihy.Registers = %d, want 6", he.Registers())
	}
	ce := NewCentral(typ, 5, 0)
	if ce.Registers() != 1 || ce.StepBound() != 0 {
		t.Fatal("Central metadata wrong")
	}
	if gu.Name() != "group-update" || he.Name() != "herlihy" || ce.Name() != "central" {
		t.Fatal("names changed")
	}
	if gu.Type() != typ || he.Type() != typ || ce.Type() != typ {
		t.Fatal("Type() must return the instantiated type")
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4}
	for v, want := range cases {
		if got := log2Ceil(v); got != want {
			t.Errorf("log2Ceil(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestReplayResponseMissingRecordPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("missing record must panic")
		}
	}()
	replayResponse(objtype.NewFetchIncrement(8), 2, Log{}, 0, 0)
}

func TestGroupUpdateStack(t *testing.T) {
	// Theorem 6.2's stack: n pops of the wakeup stack — responses must be a
	// permutation of 1..n, and exactly one process gets n (the bottom).
	const n = 8
	obj := NewGroupUpdate(objtype.NewWakeupStack(), n, 0)
	alg := oneOpAlg(obj, objtype.Op{Name: objtype.OpPop})
	run, err := core.RunAll(alg, n, machine.ZeroTosses, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[shmem.Value]bool)
	for _, v := range run.Returns {
		if seen[v] {
			t.Fatalf("duplicate pop %v", v)
		}
		seen[v] = true
	}
	for i := 1; i <= n; i++ {
		if !seen[i] {
			t.Fatalf("missing item %d in pops %v", i, run.Returns)
		}
	}
}
