package universal

import (
	"fmt"

	"jayanti98/internal/machine"
	"jayanti98/internal/objtype"
)

// GroupUpdate is the Group-Update universal construction of Afek, Dauber
// and Touitou, adapted per the paper's remark that "with two minor
// modifications" it becomes an O(log n) oblivious universal construction on
// this memory. The two modifications, which exploit the model's unbounded
// registers (Section 3 allows them — and Section 7 explains why the lower
// bound cannot be strengthened without restricting them):
//
//  1. Unbounded tree registers. Every node of a binary combining tree
//     stores the full log of announced operation records of its subtree,
//     instead of a bounded summary. One read of a node therefore conveys
//     everything known below it, and the root register is the
//     linearization log itself.
//
//  2. Response by local replay. A process computes its operation's
//     response by replaying the sequential specification over the root
//     log's prefix up to its own record, instead of waiting for a helper
//     to deposit a response. Propagation to the root is thus the only
//     synchronization an operation needs.
//
// An operation costs: 2 steps to announce at the process's leaf (validate
// own leaf + swap), at most 2·(1 LL + 2 validates + 1 SC) = 8 steps per
// tree level to propagate (the try-twice rule below), and 1 final validate
// of the root — i.e. at most 8·⌈log₂ n⌉ + 3 shared accesses, worst case,
// wait-free.
//
// Try-twice rule: at each internal node the process attempts
// {LL(node); validate both children; SC(node, merge)} at most twice. If
// both SCs fail, two successful SCs by other processes occurred after the
// process's first LL of the node; the second such SC read the children
// after the first succeeded — hence after the process's record was already
// in a child — so it carried the record upward on the process's behalf.
// Either way the record is in the node after two attempts.
//
// The construction is oblivious: the type is used only inside replay.
type GroupUpdate struct {
	typ    objtype.Type
	n      int
	base   int
	leaves int // number of leaf slots: smallest power of two ≥ n
}

var _ Construction = (*GroupUpdate)(nil)

// NewGroupUpdate instantiates the construction for an n-process object of
// the given type, occupying registers [base, base+Registers()).
func NewGroupUpdate(typ objtype.Type, n, base int) *GroupUpdate {
	leaves := 1
	for leaves < n {
		leaves *= 2
	}
	return &GroupUpdate{typ: typ, n: n, base: base, leaves: leaves}
}

// Name implements Construction.
func (g *GroupUpdate) Name() string { return "group-update" }

// Type implements Construction.
func (g *GroupUpdate) Type() objtype.Type { return g.typ }

// Registers implements Construction: the tree is heap-indexed 1..2L−1, so
// the object occupies 2L registers (index 0 unused).
func (g *GroupUpdate) Registers() int { return 2 * g.leaves }

// StepBound implements Construction.
func (g *GroupUpdate) StepBound() int { return 8*log2Ceil(g.leaves) + 3 }

// Depth returns the tree height ⌈log₂ n⌉.
func (g *GroupUpdate) Depth() int { return log2Ceil(g.leaves) }

// node register index for heap node i (1 = root; leaves at L..2L−1).
func (g *GroupUpdate) node(i int) int { return g.base + i }

// leaf returns the heap index of pid's leaf.
func (g *GroupUpdate) leaf(pid int) int { return g.leaves + pid }

// Invoke implements Construction.
func (g *GroupUpdate) Invoke(p machine.Port, op objtype.Op) objtype.Value {
	pid := p.ID()
	if pid < 0 || pid >= g.n {
		panic(fmt.Sprintf("universal: pid %d out of range for %d-process object", pid, g.n))
	}

	// Announce: append a fresh record to the single-writer leaf.
	leaf := g.leaf(pid)
	mine := asLog(p.Read(g.node(leaf)))
	seq := len(mine)
	rec := Record{Pid: pid, Seq: seq, Op: op}
	p.Swap(g.node(leaf), merge(mine, Log{rec}))

	// Propagate: climb from the leaf's parent to the root, trying twice at
	// each node.
	for v := leaf / 2; v >= 1; v /= 2 {
		left, right := 2*v, 2*v+1
		for attempt := 0; attempt < 2; attempt++ {
			cur := asLog(p.LL(g.node(v)))
			lv := asLog(p.Read(g.node(left)))
			rv := asLog(p.Read(g.node(right)))
			if ok, _ := p.SC(g.node(v), merge(cur, lv, rv)); ok {
				break
			}
		}
	}

	// The record is now in the root log; respond by local replay.
	root := asLog(p.Read(g.node(1)))
	return replayResponse(g.typ, g.n, root, pid, seq)
}

// log2Ceil returns ⌈log₂ v⌉ for v ≥ 1.
func log2Ceil(v int) int {
	d, x := 0, 1
	for x < v {
		x *= 2
		d++
	}
	return d
}
