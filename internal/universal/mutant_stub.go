//go:build !mutation

package universal

import (
	"errors"

	"jayanti98/internal/objtype"
)

// MutantAvailable reports whether the deliberately broken construction is
// compiled in (true under -tags mutation).
const MutantAvailable = false

// NewBrokenGroupUpdate is only available under -tags mutation; the normal
// build refuses it so the mutant can never leak into experiments.
func NewBrokenGroupUpdate(objtype.Type, int, int) (Construction, error) {
	return nil, errors.New("universal: broken group-update requires building with -tags mutation")
}
