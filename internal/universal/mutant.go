//go:build mutation

package universal

import (
	"jayanti98/internal/machine"
	"jayanti98/internal/objtype"
)

// MutantAvailable reports whether the deliberately broken construction is
// compiled in (true under -tags mutation).
const MutantAvailable = true

// NewBrokenGroupUpdate returns a GroupUpdate variant with a seeded
// merge-order bug, used to prove the schedule-exploration harness (package
// explore) actually detects real linearizability violations.
//
// The bug: at each internal node the correct construction computes
// merge(cur, lv, rv) — the node's current log extended with the children's
// records — so that records whose order is already committed in the node
// keep their positions. The mutant computes merge(lv, rv, cur) instead,
// letting a freshly read left-child log reorder records ahead of ones the
// node already committed. The mistake is schedule-dependent: solo and
// lockstep round-robin executions still linearize (which is why ordinary
// unit tests miss it), but any schedule in which one process's record is
// committed at a node before a left-sibling's propagation rewrites it
// yields, e.g., duplicate fetch&increment tickets.
func NewBrokenGroupUpdate(typ objtype.Type, n, base int) (Construction, error) {
	return &brokenGroupUpdate{GroupUpdate: *NewGroupUpdate(typ, n, base)}, nil
}

type brokenGroupUpdate struct {
	GroupUpdate
}

// Name implements Construction.
func (g *brokenGroupUpdate) Name() string { return "group-update-broken" }

// Invoke implements Construction: identical to GroupUpdate.Invoke except
// for the argument order of the merge at internal nodes.
func (g *brokenGroupUpdate) Invoke(p machine.Port, op objtype.Op) objtype.Value {
	pid := p.ID()
	leaf := g.leaf(pid)
	mine := asLog(p.Read(g.node(leaf)))
	seq := len(mine)
	rec := Record{Pid: pid, Seq: seq, Op: op}
	p.Swap(g.node(leaf), merge(mine, Log{rec}))

	for v := leaf / 2; v >= 1; v /= 2 {
		left, right := 2*v, 2*v+1
		for attempt := 0; attempt < 2; attempt++ {
			cur := asLog(p.LL(g.node(v)))
			lv := asLog(p.Read(g.node(left)))
			rv := asLog(p.Read(g.node(right)))
			// BUG (deliberate): base must be cur, so the node's committed
			// order is preserved; basing on lv lets it be rewritten.
			if ok, _ := p.SC(g.node(v), merge(lv, rv, cur)); ok {
				break
			}
		}
	}

	root := asLog(p.Read(g.node(1)))
	return replayResponse(g.typ, g.n, root, pid, seq)
}
