// Package universal implements oblivious universal constructions over
// LL/SC shared memory — the class of constructions the paper's lower bound
// applies to, and the one that witnesses its tightness.
//
// A universal construction turns the sequential specification of any type T
// (package objtype) into a wait-free linearizable shared object of type T.
// It is *oblivious* when it uses T only through its transition function,
// never exploiting its semantics. The paper shows (Theorem 6.1 + Corollary
// 6.1) that any oblivious construction on this memory costs Ω(log n)
// shared accesses per operation in the worst case, and that the
// Group-Update construction of Afek, Dauber and Touitou — after two minor
// modifications — achieves O(log n), making the bound tight.
//
// Three constructions are provided:
//
//   - GroupUpdate: a binary combining tree over unbounded registers;
//     worst-case Θ(log n) shared accesses per operation. See NewGroupUpdate
//     for the two modifications relative to the original construction.
//   - Herlihy: the classic announce-and-help construction; worst-case
//     Θ(n) per operation. The baseline the paper's introduction compares
//     against.
//   - Central: a single-register LL/SC retry loop; lock-free but not
//     wait-free (O(n) expected under contention, unbounded worst case).
//     Included as the simplest correct implementation and as a foil for
//     the wait-freedom discussions.
//
// All three run unchanged on the simulated memory (machine.Env) and on the
// concurrent memory (llsc.Handle) through machine.Port.
package universal

import (
	"fmt"
	"strings"

	"jayanti98/internal/machine"
	"jayanti98/internal/objtype"
)

// Record is one announced operation: the invoking process, its per-process
// sequence number, and the operation. A record's identity is (Pid, Seq).
type Record struct {
	Pid int
	Seq int
	Op  objtype.Op
}

// String renders the record.
func (r Record) String() string {
	return fmt.Sprintf("p%d#%d:%v", r.Pid, r.Seq, r.Op)
}

// Log is an immutable sequence of records. Logs stored in shared registers
// must never be modified in place; all log operations copy.
type Log []Record

// Contains reports whether the log holds the record with identity
// (pid, seq).
func (l Log) Contains(pid, seq int) bool {
	for _, r := range l {
		if r.Pid == pid && r.Seq == seq {
			return true
		}
	}
	return false
}

// IndexOf returns the position of record (pid, seq), or -1.
func (l Log) IndexOf(pid, seq int) int {
	for i, r := range l {
		if r.Pid == pid && r.Seq == seq {
			return i
		}
	}
	return -1
}

// Ops projects the log onto its operations.
func (l Log) Ops() []objtype.Op {
	ops := make([]objtype.Op, len(l))
	for i, r := range l {
		ops[i] = r.Op
	}
	return ops
}

// asLog interprets a register value as a Log (nil → empty).
func asLog(v any) Log {
	if v == nil {
		return nil
	}
	l, ok := v.(Log)
	if !ok {
		panic(fmt.Sprintf("universal: register holds %T, want Log", v))
	}
	return l
}

// merge returns base extended, in order, with the records of the extra
// logs that base does not already contain (first occurrence wins). The
// result shares no backing storage with base.
func merge(base Log, extras ...Log) Log {
	seen := make(map[[2]int]bool, len(base))
	for _, r := range base {
		seen[[2]int{r.Pid, r.Seq}] = true
	}
	out := make(Log, len(base), len(base)+4)
	copy(out, base)
	for _, extra := range extras {
		for _, r := range extra {
			key := [2]int{r.Pid, r.Seq}
			if !seen[key] {
				seen[key] = true
				out = append(out, r)
			}
		}
	}
	return out
}

// Construction is a universal construction instantiated with a type: a
// stateless descriptor (all object state lives in shared registers) whose
// Invoke performs one operation on behalf of the process behind the port.
type Construction interface {
	// Name identifies the construction.
	Name() string
	// Type returns the sequential type the construction was instantiated
	// with.
	Type() objtype.Type
	// Invoke applies op and returns its response.
	Invoke(p machine.Port, op objtype.Op) objtype.Value
	// Registers returns how many consecutive registers, starting at the
	// construction's base, the object occupies.
	Registers() int
	// StepBound returns a worst-case bound on shared accesses per Invoke,
	// or 0 if the construction is not wait-free.
	StepBound() int
}

// Names lists the provided constructions in presentation order — the
// accepted names for New.
func Names() []string { return []string{"group-update", "herlihy", "central"} }

// New builds the named construction over typ for n processes with its
// registers starting at base. Constructions carry no mutable Go state
// (everything lives in shared registers), but distinct simulated runs must
// not share one instance's registers — sweep work items should each build
// their own via New.
func New(name string, typ objtype.Type, n, base int) (Construction, error) {
	switch name {
	case "group-update":
		return NewGroupUpdate(typ, n, base), nil
	case "herlihy":
		return NewHerlihy(typ, n, base), nil
	case "central":
		return NewCentral(typ, n, base), nil
	}
	return nil, fmt.Errorf("universal: unknown construction %q (want %s)", name, strings.Join(Names(), ", "))
}

// Must unwraps a New result whose name is known at compile time.
func Must(c Construction, err error) Construction {
	if err != nil {
		panic(err)
	}
	return c
}

// replayResponse computes the response of record (pid, seq) by replaying
// the type over the log prefix ending at that record — the "response by
// local replay" modification (see NewGroupUpdate).
func replayResponse(typ objtype.Type, n int, log Log, pid, seq int) objtype.Value {
	idx := log.IndexOf(pid, seq)
	if idx < 0 {
		panic(fmt.Sprintf("universal: record p%d#%d missing from linearization log", pid, seq))
	}
	_, resps := objtype.Replay(typ, n, log[:idx+1].Ops())
	return resps[idx]
}
