package universal

import (
	"jayanti98/internal/machine"
	"jayanti98/internal/objtype"
)

// Central is the simplest correct construction: the entire linearization
// log lives in a single register and every operation is an LL/SC retry
// loop. It is linearizable and lock-free — a failed SC implies some other
// operation's SC succeeded — but NOT wait-free: a process can starve for as
// long as others keep succeeding, so StepBound reports 0. Under the
// adversary's lockstep rounds a single operation by the unluckiest process
// costs Θ(n) steps (one competitor succeeds per round).
//
// The construction is oblivious: the type is used only inside replay.
type Central struct {
	typ  objtype.Type
	n    int
	base int
}

var _ Construction = (*Central)(nil)

// NewCentral instantiates the construction for an n-process object of the
// given type, occupying the single register base.
func NewCentral(typ objtype.Type, n, base int) *Central {
	return &Central{typ: typ, n: n, base: base}
}

// Name implements Construction.
func (c *Central) Name() string { return "central" }

// Type implements Construction.
func (c *Central) Type() objtype.Type { return c.typ }

// Registers implements Construction.
func (c *Central) Registers() int { return 1 }

// StepBound implements Construction: 0 means not wait-free.
func (c *Central) StepBound() int { return 0 }

// Invoke implements Construction.
func (c *Central) Invoke(p machine.Port, op objtype.Op) objtype.Value {
	pid := p.ID()
	for attempt := 0; ; attempt++ {
		cur := asLog(p.LL(c.base))
		seq := nextSeq(cur, pid)
		next := merge(cur, Log{{Pid: pid, Seq: seq, Op: op}})
		if ok, _ := p.SC(c.base, next); ok {
			return replayResponse(c.typ, c.n, next, pid, seq)
		}
	}
}

// nextSeq returns one past the largest sequence number pid has in the log.
func nextSeq(l Log, pid int) int {
	seq := 0
	for _, r := range l {
		if r.Pid == pid && r.Seq >= seq {
			seq = r.Seq + 1
		}
	}
	return seq
}
