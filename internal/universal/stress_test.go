package universal

import (
	"testing"

	"jayanti98/internal/core"
	"jayanti98/internal/machine"
	"jayanti98/internal/objtype"
	"jayanti98/internal/shmem"
)

// TestWaitFreeBoundsAtLargerScaleKUse stresses the try-twice argument at
// n = 64 with two operations per process: every invocation must stay
// within StepBound even when announce registers and tree logs hold
// multiple records per process, under the adversary's lockstep contention.
func TestWaitFreeBoundsAtLargerScaleKUse(t *testing.T) {
	const n, k = 64, 2
	typ := objtype.NewFetchIncrement(32)
	for _, obj := range []Construction{
		NewGroupUpdate(typ, n, 0),
		NewHerlihy(typ, n, 0),
	} {
		obj := obj
		body := machine.New(obj.Name(), func(e *machine.Env) shmem.Value {
			for i := 0; i < k; i++ {
				obj.Invoke(e, objtype.Op{Name: objtype.OpFetchIncrement})
			}
			return nil
		})
		run, err := core.RunAll(body, n, machine.ZeroTosses, core.Config{NoHistory: true})
		if err != nil {
			t.Fatalf("%s: %v", obj.Name(), err)
		}
		for pid := 0; pid < n; pid++ {
			if run.Steps[pid] > k*obj.StepBound() {
				t.Fatalf("%s: p%d used %d steps for %d ops, bound %d",
					obj.Name(), pid, run.Steps[pid], k, k*obj.StepBound())
			}
		}
	}
}
