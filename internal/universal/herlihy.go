package universal

import (
	"jayanti98/internal/machine"
	"jayanti98/internal/objtype"
)

// Herlihy is the classic announce-and-help universal construction, restated
// on unbounded LL/SC registers: one main register holds the full
// linearization log; each process additionally owns an announce register.
// To perform an operation a process announces it, then repeatedly tries to
// extend the main log — helping along every announced-but-unapplied
// operation it can see — until its own record is in the log.
//
// Scanning the n announce registers makes every attempt cost n+2 shared
// accesses, and the try-twice argument (see GroupUpdate) bounds the number
// of attempts by 2 plus a final read: if both of a process's SCs fail, the
// second successful competitor scanned the announce registers after the
// process's announcement and therefore already helped it. Worst case:
// 2 announce steps + 2·(n+2) + 1 = 2n + 7 shared accesses — the Θ(n)
// baseline that the paper's introduction contrasts with sublogarithmic
// hand-crafted implementations.
//
// The construction is oblivious: the type is used only inside replay.
type Herlihy struct {
	typ  objtype.Type
	n    int
	base int
}

var _ Construction = (*Herlihy)(nil)

// NewHerlihy instantiates the construction for an n-process object of the
// given type, occupying registers [base, base+Registers()).
func NewHerlihy(typ objtype.Type, n, base int) *Herlihy {
	return &Herlihy{typ: typ, n: n, base: base}
}

// Name implements Construction.
func (h *Herlihy) Name() string { return "herlihy" }

// Type implements Construction.
func (h *Herlihy) Type() objtype.Type { return h.typ }

// Registers implements Construction: main register + n announce registers.
func (h *Herlihy) Registers() int { return 1 + h.n }

// StepBound implements Construction.
func (h *Herlihy) StepBound() int { return 2*(h.n+2) + 3 }

func (h *Herlihy) main() int            { return h.base }
func (h *Herlihy) announce(pid int) int { return h.base + 1 + pid }

// Invoke implements Construction.
func (h *Herlihy) Invoke(p machine.Port, op objtype.Op) objtype.Value {
	pid := p.ID()

	// Announce: append a fresh record to the single-writer announce
	// register.
	mine := asLog(p.Read(h.announce(pid)))
	seq := len(mine)
	rec := Record{Pid: pid, Seq: seq, Op: op}
	p.Swap(h.announce(pid), merge(mine, Log{rec}))

	// Help until our record is applied: at most two attempts are needed.
	for attempt := 0; attempt < 2; attempt++ {
		cur := asLog(p.LL(h.main()))
		if cur.Contains(pid, seq) {
			break
		}
		announced := make([]Log, 0, h.n)
		for q := 0; q < h.n; q++ {
			announced = append(announced, asLog(p.Read(h.announce(q))))
		}
		if ok, _ := p.SC(h.main(), merge(cur, announced...)); ok {
			break
		}
	}

	log := asLog(p.Read(h.main()))
	return replayResponse(h.typ, h.n, log, pid, seq)
}
