package shmem

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestLLReturnsValueAndLinks(t *testing.T) {
	m := New()
	resp := m.Apply(0, Op{Kind: OpLL, Reg: 5})
	if !resp.OK || resp.Val != nil {
		t.Fatalf("LL on fresh register: got %v, want (true, nil)", resp)
	}
	if !m.PsetContains(5, 0) {
		t.Fatal("LL did not add caller to Pset")
	}
}

func TestSCSucceedsAfterLL(t *testing.T) {
	m := New()
	m.Apply(1, Op{Kind: OpLL, Reg: 0})
	resp := m.Apply(1, Op{Kind: OpSC, Reg: 0, Arg: "x"})
	if !resp.OK {
		t.Fatalf("SC after LL should succeed, got %v", resp)
	}
	if resp.Val != nil {
		t.Fatalf("SC must return previous value nil, got %v", resp.Val)
	}
	if got := m.Read(0); got != "x" {
		t.Fatalf("register value = %v, want x", got)
	}
	if m.PsetContains(0, 1) {
		t.Fatal("successful SC must clear the Pset")
	}
}

func TestSCFailsWithoutLL(t *testing.T) {
	m := New()
	m.Apply(0, Op{Kind: OpSwap, Reg: 0, Arg: 7})
	resp := m.Apply(1, Op{Kind: OpSC, Reg: 0, Arg: 9})
	if resp.OK {
		t.Fatal("SC without preceding LL must fail")
	}
	if resp.Val != 7 {
		t.Fatalf("failed SC must still return current value 7, got %v", resp.Val)
	}
	if got := m.Read(0); got != 7 {
		t.Fatalf("failed SC must not change value, got %v", got)
	}
}

func TestSCInvalidatedByInterveningSC(t *testing.T) {
	m := New()
	m.Apply(0, Op{Kind: OpLL, Reg: 3})
	m.Apply(1, Op{Kind: OpLL, Reg: 3})
	if resp := m.Apply(1, Op{Kind: OpSC, Reg: 3, Arg: "q"}); !resp.OK {
		t.Fatalf("first SC should succeed, got %v", resp)
	}
	resp := m.Apply(0, Op{Kind: OpSC, Reg: 3, Arg: "p"})
	if resp.OK {
		t.Fatal("SC after intervening successful SC must fail")
	}
	if resp.Val != "q" {
		t.Fatalf("failed SC response value = %v, want q", resp.Val)
	}
}

func TestSCInvalidatedBySwap(t *testing.T) {
	m := New()
	m.Apply(0, Op{Kind: OpLL, Reg: 2})
	m.Apply(1, Op{Kind: OpSwap, Reg: 2, Arg: 42})
	if resp := m.Apply(0, Op{Kind: OpSC, Reg: 2, Arg: 1}); resp.OK {
		t.Fatal("swap must invalidate outstanding links")
	}
}

func TestSCInvalidatedByMove(t *testing.T) {
	m := New()
	m.Apply(0, Op{Kind: OpSwap, Reg: 9, Arg: "src"})
	m.Apply(1, Op{Kind: OpLL, Reg: 4})
	m.Apply(2, Op{Kind: OpMove, Src: 9, Reg: 4})
	if resp := m.Apply(1, Op{Kind: OpSC, Reg: 4, Arg: 1}); resp.OK {
		t.Fatal("move into register must invalidate outstanding links")
	}
	if got := m.Read(4); got != "src" {
		t.Fatalf("move did not copy value: got %v, want src", got)
	}
}

func TestSelfMoveIsCompleteNoOp(t *testing.T) {
	m := New()
	m.Apply(0, Op{Kind: OpSwap, Reg: 3, Arg: "v"})
	m.Apply(1, Op{Kind: OpLL, Reg: 3})
	resp := m.Apply(2, Op{Kind: OpMove, Src: 3, Reg: 3})
	if !resp.OK {
		t.Fatal("self-move must still acknowledge")
	}
	if got := m.Read(3); got != "v" {
		t.Fatalf("self-move changed value: %v", got)
	}
	// The register is its own source, whose state a move leaves unchanged:
	// outstanding links must survive.
	if ok, _ := m.Apply(1, Op{Kind: OpSC, Reg: 3, Arg: "w"}).OK, false; !ok {
		t.Fatal("self-move must not invalidate links")
	}
	if got := m.Steps(2); got != 1 {
		t.Fatalf("self-move must still cost one step, got %d", got)
	}
}

func TestMoveLeavesSourceUnchanged(t *testing.T) {
	m := New()
	m.Apply(0, Op{Kind: OpSwap, Reg: 1, Arg: "v"})
	m.Apply(0, Op{Kind: OpLL, Reg: 1})
	m.Apply(2, Op{Kind: OpMove, Src: 1, Reg: 8})
	if got := m.Read(1); got != "v" {
		t.Fatalf("move changed source value: %v", got)
	}
	if !m.PsetContains(1, 0) {
		t.Fatal("move must not clear the source register's Pset")
	}
	if resp := m.Apply(0, Op{Kind: OpSC, Reg: 1, Arg: "w"}); !resp.OK {
		t.Fatal("SC on untouched source must still succeed after a move out of it")
	}
}

func TestValidateReportsLinkAndValue(t *testing.T) {
	m := New()
	m.Apply(0, Op{Kind: OpSwap, Reg: 0, Arg: "a"})
	resp := m.Apply(1, Op{Kind: OpValidate, Reg: 0})
	if resp.OK {
		t.Fatal("validate without LL must report false")
	}
	if resp.Val != "a" {
		t.Fatalf("validate must return current value, got %v", resp.Val)
	}
	m.Apply(1, Op{Kind: OpLL, Reg: 0})
	if resp := m.Apply(1, Op{Kind: OpValidate, Reg: 0}); !resp.OK {
		t.Fatal("validate after LL must report true")
	}
	m.Apply(2, Op{Kind: OpSwap, Reg: 0, Arg: "b"})
	resp = m.Apply(1, Op{Kind: OpValidate, Reg: 0})
	if resp.OK || resp.Val != "b" {
		t.Fatalf("validate after swap: got %v, want (false, b)", resp)
	}
}

func TestValidateDoesNotPerturbRegister(t *testing.T) {
	m := New()
	m.Apply(0, Op{Kind: OpLL, Reg: 0})
	m.Apply(1, Op{Kind: OpValidate, Reg: 0})
	// pid 1's validate must not create a link for pid 1.
	if resp := m.Apply(1, Op{Kind: OpSC, Reg: 0, Arg: 1}); resp.OK {
		t.Fatal("validate must not link the caller")
	}
	// ... and must not break pid 0's link.
	if resp := m.Apply(0, Op{Kind: OpSC, Reg: 0, Arg: 2}); !resp.OK {
		t.Fatal("validate by another process must not break an existing link")
	}
}

func TestSwapReturnsPrevious(t *testing.T) {
	m := New()
	if resp := m.Apply(0, Op{Kind: OpSwap, Reg: 0, Arg: 1}); resp.Val != nil {
		t.Fatalf("first swap must return nil, got %v", resp.Val)
	}
	if resp := m.Apply(1, Op{Kind: OpSwap, Reg: 0, Arg: 2}); resp.Val != 1 {
		t.Fatalf("second swap must return 1, got %v", resp.Val)
	}
}

func TestWithInit(t *testing.T) {
	m := New(WithInit(func(reg int) Value { return reg * 10 }))
	if got := m.Read(3); got != 30 {
		t.Fatalf("initial value of R3 = %v, want 30", got)
	}
	resp := m.Apply(0, Op{Kind: OpLL, Reg: 7})
	if resp.Val != 70 {
		t.Fatalf("LL on initialized register = %v, want 70", resp.Val)
	}
}

func TestStepCounting(t *testing.T) {
	m := New()
	ops := []Op{
		{Kind: OpLL, Reg: 0},
		{Kind: OpSC, Reg: 0, Arg: 1},
		{Kind: OpValidate, Reg: 0},
	}
	for _, op := range ops {
		m.Apply(2, op)
	}
	m.Apply(5, Op{Kind: OpSwap, Reg: 1, Arg: 0})
	if got := m.Steps(2); got != 3 {
		t.Fatalf("Steps(2) = %d, want 3", got)
	}
	if got := m.Steps(5); got != 1 {
		t.Fatalf("Steps(5) = %d, want 1", got)
	}
	if got := m.TotalSteps(); got != 4 {
		t.Fatalf("TotalSteps = %d, want 4", got)
	}
	max, pid := m.MaxSteps()
	if max != 3 || pid != 2 {
		t.Fatalf("MaxSteps = (%d, %d), want (3, 2)", max, pid)
	}
	// Read/PsetContains/Snapshot are checker APIs and must not charge steps.
	m.Read(0)
	m.PsetContains(0, 2)
	m.Snapshot()
	if got := m.TotalSteps(); got != 4 {
		t.Fatalf("checker APIs charged steps: TotalSteps = %d, want 4", got)
	}
}

func TestSnapshotSortedPsets(t *testing.T) {
	m := New()
	for _, pid := range []int{5, 1, 3} {
		m.Apply(pid, Op{Kind: OpLL, Reg: 0})
	}
	snap := m.Snapshot()
	want := []int{1, 3, 5}
	if !reflect.DeepEqual(snap[0].Pset, want) {
		t.Fatalf("snapshot Pset = %v, want %v", snap[0].Pset, want)
	}
}

func TestRegStateEqual(t *testing.T) {
	a := RegState{Val: []int{1, 2}, Pset: []int{0, 1}}
	b := RegState{Val: []int{1, 2}, Pset: []int{0, 1}}
	if !a.Equal(b) {
		t.Fatal("structurally equal states must compare equal")
	}
	c := RegState{Val: []int{1, 2}, Pset: []int{0}}
	if a.Equal(c) {
		t.Fatal("states with different Psets must not compare equal")
	}
	d := RegState{Val: []int{1, 3}, Pset: []int{0, 1}}
	if a.Equal(d) {
		t.Fatal("states with different values must not compare equal")
	}
	e := RegState{Val: []int{1, 2}, Pset: []int{0, 2}}
	if a.Equal(e) {
		t.Fatal("states with same-length different Psets must not compare equal")
	}
}

func TestRMWUnitStep(t *testing.T) {
	m := New()
	prev := m.RMW(0, 0, func(v Value) Value {
		if v == nil {
			return 1
		}
		return v.(int) + 1
	})
	if prev != nil {
		t.Fatalf("RMW must return previous value nil, got %v", prev)
	}
	if got := m.Read(0); got != 1 {
		t.Fatalf("RMW result = %v, want 1", got)
	}
	if got := m.Steps(0); got != 1 {
		t.Fatalf("RMW must cost exactly one step, got %d", got)
	}
}

func TestRMWClearsPset(t *testing.T) {
	m := New()
	m.Apply(1, Op{Kind: OpLL, Reg: 0})
	m.RMW(0, 0, func(v Value) Value { return v })
	if resp := m.Apply(1, Op{Kind: OpSC, Reg: 0, Arg: 1}); resp.OK {
		t.Fatal("RMW must invalidate outstanding links")
	}
}

func TestOpAndResponseStrings(t *testing.T) {
	cases := []struct {
		op   Op
		want string
	}{
		{Op{Kind: OpLL, Reg: 2}, "LL(R2)"},
		{Op{Kind: OpSC, Reg: 0, Arg: 7}, "SC(R0, 7)"},
		{Op{Kind: OpValidate, Reg: 1}, "validate(R1)"},
		{Op{Kind: OpSwap, Reg: 3, Arg: "x"}, "swap(R3, x)"},
		{Op{Kind: OpMove, Src: 1, Reg: 2}, "move(R1, R2)"},
	}
	for _, c := range cases {
		if got := c.op.String(); got != c.want {
			t.Errorf("Op.String() = %q, want %q", got, c.want)
		}
	}
	if got := OpLL.String(); got != "LL" {
		t.Errorf("OpKind.String() = %q, want LL", got)
	}
	if got := (Response{OK: true, Val: 3}).String(); got != "(true, 3)" {
		t.Errorf("Response.String() = %q", got)
	}
}

// randomOp draws a random operation over a small register file.
func randomOp(rng *rand.Rand, nregs int) Op {
	kind := OpKind(rng.Intn(5) + 1)
	op := Op{Kind: kind, Reg: rng.Intn(nregs)}
	switch kind {
	case OpSC, OpSwap:
		op.Arg = rng.Intn(100)
	case OpMove:
		op.Src = rng.Intn(nregs)
	}
	return op
}

// TestPropertySCExactlyOneWinner: whatever the interleaving, between two
// successful SCs on a register every other SC on it fails, and a successful
// SC requires an unbroken link. We model the invariant by replaying a random
// op stream against a reference implementation of the link rule.
func TestPropertySCExactlyOneWinner(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New()
		const nregs, npids = 4, 5
		// linked[reg][pid] mirrors what the Pset must be.
		linked := make(map[int]map[int]bool)
		for r := 0; r < nregs; r++ {
			linked[r] = make(map[int]bool)
		}
		for step := 0; step < 300; step++ {
			pid := rng.Intn(npids)
			op := randomOp(rng, nregs)
			resp := m.Apply(pid, op)
			switch op.Kind {
			case OpLL:
				linked[op.Reg][pid] = true
			case OpSC:
				if resp.OK != linked[op.Reg][pid] {
					return false
				}
				if resp.OK {
					linked[op.Reg] = make(map[int]bool)
				}
			case OpValidate:
				if resp.OK != linked[op.Reg][pid] {
					return false
				}
			case OpSwap:
				linked[op.Reg] = make(map[int]bool)
			case OpMove:
				if op.Src != op.Reg { // self-moves are complete no-ops
					linked[op.Reg] = make(map[int]bool)
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyMoveCopiesValue: after move(Rs, Rd), Rd holds exactly what a
// shadow model says Rs held, for random op streams.
func TestPropertyMoveCopiesValue(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New()
		const nregs = 4
		shadow := make(map[int]Value)
		for step := 0; step < 200; step++ {
			pid := rng.Intn(3)
			op := randomOp(rng, nregs)
			resp := m.Apply(pid, op)
			switch op.Kind {
			case OpSC:
				if resp.OK {
					shadow[op.Reg] = op.Arg
				}
			case OpSwap:
				shadow[op.Reg] = op.Arg
			case OpMove:
				shadow[op.Reg] = shadow[op.Src]
			}
			if !ValuesEqual(m.Read(op.Reg), shadow[op.Reg]) {
				return false
			}
		}
		// Cross-check every register against one final read.
		for r := 0; r < nregs; r++ {
			if v, ok := shadow[r]; ok && !ValuesEqual(m.Read(r), v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyUnknownOpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Apply with unknown op kind must panic")
		}
	}()
	New().Apply(0, Op{Kind: OpKind(99)})
}
