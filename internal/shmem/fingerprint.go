package shmem

import (
	"encoding/binary"
	"fmt"
)

// AppendFingerprint appends a compact binary rendering of the register-file
// state to dst: a uvarint register count, then per touched register (in
// increasing index order) a uvarint index, the length-prefixed %v rendering
// of the value, and the canonical Pset bitset words (PidBits.AppendBinary).
// The count prefix makes the block self-delimiting, so callers can
// concatenate it with other key material without separators.
//
// This is the simulated-memory twin of llsc.Memory.AppendFingerprint, with
// the same encoding; the differential-testing harness (package lockstep)
// folds it into its exhaustive-search memoization keys, and compares the
// fingerprints of the two engines' memories directly.
func (m *Memory) AppendFingerprint(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(m.touched)))
	for _, i := range m.touched {
		r := m.regs[i]
		dst = binary.AppendUvarint(dst, uint64(i))
		m.fpScratch = fmt.Appendf(m.fpScratch[:0], "%v", r.val)
		dst = binary.AppendUvarint(dst, uint64(len(m.fpScratch)))
		dst = append(dst, m.fpScratch...)
		dst = r.pset.AppendBinary(dst)
	}
	return dst
}
