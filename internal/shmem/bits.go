package shmem

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Word/bit helpers for uint64-word bitsets (core.PidSet and friends).
// They exist in one place so the word-boundary arithmetic — the classic
// off-by-one hazards at bits 0, 63 and 64 — is written and tested once.

// WordOf returns the index of the 64-bit word holding bit i (i ≥ 0).
func WordOf(i int) int { return i >> 6 }

// BitOf returns the single-bit mask of bit i within its word.
func BitOf(i int) uint64 { return 1 << uint(i&63) }

// MaskUpTo returns the mask with the low k bits set, for k in [0, 64]:
// MaskUpTo(0) = 0, MaskUpTo(64) = all ones. The k = 64 case is why this
// helper exists: the naive 1<<k − 1 shifts a uint64 by its full width,
// which Go defines as 0 — the mask would silently lose a whole word.
func MaskUpTo(k int) uint64 {
	if k < 0 || k > 64 {
		panic(fmt.Sprintf("shmem: MaskUpTo(%d) out of range [0, 64]", k))
	}
	if k == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(k)) - 1
}

// PidBits is a set of process ids as a []uint64 bitset — the register-file
// Pset representation (DESIGN §11). The hot path cares about two
// operations: adding the caller on LL (one OR) and clearing the whole set
// on a successful SC, swap, or move (zeroing words in place, no
// allocation — the map representation it replaced allocated a fresh map
// per clear). The zero value is the empty set.
//
// core.PidSet is the same shape with a cached cardinality; PidBits lives
// here, below it, because package core imports shmem.
type PidBits []uint64

// Add inserts pid (non-negative), growing the word slice as needed.
func (b *PidBits) Add(pid int) {
	w := WordOf(pid)
	for len(*b) <= w {
		*b = append(*b, 0)
	}
	(*b)[w] |= BitOf(pid)
}

// Contains reports membership.
func (b PidBits) Contains(pid int) bool {
	if pid < 0 {
		return false
	}
	w := WordOf(pid)
	return w < len(b) && b[w]&BitOf(pid) != 0
}

// Clear empties the set in place, keeping the backing array.
func (b PidBits) Clear() {
	for i := range b {
		b[i] = 0
	}
}

// Empty reports whether the set has no elements.
func (b PidBits) Empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

// Count returns the cardinality.
func (b PidBits) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Each calls f for every element in increasing order.
func (b PidBits) Each(f func(pid int)) {
	for i, w := range b {
		for w != 0 {
			t := bits.TrailingZeros64(w)
			f(i<<6 + t)
			w &^= 1 << uint(t)
		}
	}
}

// Sorted returns the elements in increasing order. The result is non-nil
// even for the empty set, matching the []int Pset snapshots that predate
// the bitset representation.
func (b PidBits) Sorted() []int {
	out := make([]int, 0, b.Count())
	b.Each(func(pid int) { out = append(out, pid) })
	return out
}

// AppendBinary appends a canonical binary rendering of the set to dst:
// a uvarint word count followed by that many little-endian words, with
// trailing zero words trimmed so equal sets render identically regardless
// of backing-array capacity. Memory fingerprints build on it (DESIGN §11).
func (b PidBits) AppendBinary(dst []byte) []byte {
	n := len(b)
	for n > 0 && b[n-1] == 0 {
		n--
	}
	dst = binary.AppendUvarint(dst, uint64(n))
	for _, w := range b[:n] {
		dst = binary.LittleEndian.AppendUint64(dst, w)
	}
	return dst
}

// ApproxBits estimates the size of a register value in bits, as 8× the
// length of its rendered form (nil counts as 0). The estimate is crude but
// order-of-magnitude faithful, which is all the register-width experiment
// needs: it contrasts constructions whose registers hold whole operation
// logs (Θ(n) records → Θ(n·w) bits) with ones whose registers hold a
// counter or a toggle (O(log n) bits). See Section 7 of the paper: the
// Ω(log n) lower bound is tight only because register size is unbounded,
// and any size restriction is delicate precisely because practical
// constructions differ so widely on this axis.
func ApproxBits(v Value) int {
	if v == nil {
		return 0
	}
	return 8 * len(fmt.Sprint(v))
}

// WithBitTracking makes the memory record the largest value (per
// ApproxBits) ever written to each register. Tracking serializes every
// written value, which costs as much as the write itself for log-carrying
// constructions — leave it off except in the register-width experiment.
func WithBitTracking() Option {
	return func(m *Memory) { m.trackBits = true }
}

// MaxRegisterBits returns the largest ApproxBits over all values written so
// far (including initial values of touched registers), or 0 if the memory
// was created without WithBitTracking.
func (m *Memory) MaxRegisterBits() int { return m.maxBits }

func (m *Memory) noteBits(v Value) {
	if !m.trackBits {
		return
	}
	if b := ApproxBits(v); b > m.maxBits {
		m.maxBits = b
	}
}
