package shmem

import "fmt"

// Word/bit helpers for uint64-word bitsets (core.PidSet and friends).
// They exist in one place so the word-boundary arithmetic — the classic
// off-by-one hazards at bits 0, 63 and 64 — is written and tested once.

// WordOf returns the index of the 64-bit word holding bit i (i ≥ 0).
func WordOf(i int) int { return i >> 6 }

// BitOf returns the single-bit mask of bit i within its word.
func BitOf(i int) uint64 { return 1 << uint(i&63) }

// MaskUpTo returns the mask with the low k bits set, for k in [0, 64]:
// MaskUpTo(0) = 0, MaskUpTo(64) = all ones. The k = 64 case is why this
// helper exists: the naive 1<<k − 1 shifts a uint64 by its full width,
// which Go defines as 0 — the mask would silently lose a whole word.
func MaskUpTo(k int) uint64 {
	if k < 0 || k > 64 {
		panic(fmt.Sprintf("shmem: MaskUpTo(%d) out of range [0, 64]", k))
	}
	if k == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(k)) - 1
}

// ApproxBits estimates the size of a register value in bits, as 8× the
// length of its rendered form (nil counts as 0). The estimate is crude but
// order-of-magnitude faithful, which is all the register-width experiment
// needs: it contrasts constructions whose registers hold whole operation
// logs (Θ(n) records → Θ(n·w) bits) with ones whose registers hold a
// counter or a toggle (O(log n) bits). See Section 7 of the paper: the
// Ω(log n) lower bound is tight only because register size is unbounded,
// and any size restriction is delicate precisely because practical
// constructions differ so widely on this axis.
func ApproxBits(v Value) int {
	if v == nil {
		return 0
	}
	return 8 * len(fmt.Sprint(v))
}

// WithBitTracking makes the memory record the largest value (per
// ApproxBits) ever written to each register. Tracking serializes every
// written value, which costs as much as the write itself for log-carrying
// constructions — leave it off except in the register-width experiment.
func WithBitTracking() Option {
	return func(m *Memory) { m.trackBits = true }
}

// MaxRegisterBits returns the largest ApproxBits over all values written so
// far (including initial values of touched registers), or 0 if the memory
// was created without WithBitTracking.
func (m *Memory) MaxRegisterBits() int { return m.maxBits }

func (m *Memory) noteBits(v Value) {
	if !m.trackBits {
		return
	}
	if b := ApproxBits(v); b > m.maxBits {
		m.maxBits = b
	}
}
