package shmem

import "fmt"

// ApproxBits estimates the size of a register value in bits, as 8× the
// length of its rendered form (nil counts as 0). The estimate is crude but
// order-of-magnitude faithful, which is all the register-width experiment
// needs: it contrasts constructions whose registers hold whole operation
// logs (Θ(n) records → Θ(n·w) bits) with ones whose registers hold a
// counter or a toggle (O(log n) bits). See Section 7 of the paper: the
// Ω(log n) lower bound is tight only because register size is unbounded,
// and any size restriction is delicate precisely because practical
// constructions differ so widely on this axis.
func ApproxBits(v Value) int {
	if v == nil {
		return 0
	}
	return 8 * len(fmt.Sprint(v))
}

// WithBitTracking makes the memory record the largest value (per
// ApproxBits) ever written to each register. Tracking serializes every
// written value, which costs as much as the write itself for log-carrying
// constructions — leave it off except in the register-width experiment.
func WithBitTracking() Option {
	return func(m *Memory) { m.trackBits = true }
}

// MaxRegisterBits returns the largest ApproxBits over all values written so
// far (including initial values of touched registers), or 0 if the memory
// was created without WithBitTracking.
func (m *Memory) MaxRegisterBits() int { return m.maxBits }

func (m *Memory) noteBits(v Value) {
	if !m.trackBits {
		return
	}
	if b := ApproxBits(v); b > m.maxBits {
		m.maxBits = b
	}
}
