package shmem

import "testing"

// The word/bit helpers guard the classic boundary hazards of uint64-word
// bitsets: bit 0, bit 63 (last of a word), and bit/width 64 (first of the
// next word — and, for MaskUpTo, the full-width shift Go defines as 0).

func TestWordOfBoundaries(t *testing.T) {
	cases := []struct {
		bit, word int
	}{
		{0, 0}, {1, 0}, {63, 0},
		{64, 1}, {65, 1}, {127, 1},
		{128, 2}, {191, 2}, {192, 3},
	}
	for _, tc := range cases {
		if got := WordOf(tc.bit); got != tc.word {
			t.Errorf("WordOf(%d) = %d, want %d", tc.bit, got, tc.word)
		}
	}
}

func TestBitOfBoundaries(t *testing.T) {
	cases := []struct {
		bit  int
		mask uint64
	}{
		{0, 1},
		{1, 2},
		{63, 1 << 63},
		{64, 1},        // first bit of the next word wraps to position 0
		{127, 1 << 63}, // last bit of the second word
		{128, 1},
	}
	for _, tc := range cases {
		if got := BitOf(tc.bit); got != tc.mask {
			t.Errorf("BitOf(%d) = %#x, want %#x", tc.bit, got, tc.mask)
		}
	}
}

func TestMaskUpToBoundaries(t *testing.T) {
	cases := []struct {
		k    int
		mask uint64
	}{
		{0, 0},
		{1, 1},
		{2, 3},
		{63, 1<<63 - 1},  // all but the top bit
		{64, ^uint64(0)}, // full word: the naive 1<<64 - 1 is 0 in Go
	}
	for _, tc := range cases {
		if got := MaskUpTo(tc.k); got != tc.mask {
			t.Errorf("MaskUpTo(%d) = %#x, want %#x", tc.k, got, tc.mask)
		}
	}
	// Every mask must have exactly k bits set and be a prefix of the next.
	prev := uint64(0)
	for k := 0; k <= 64; k++ {
		m := MaskUpTo(k)
		if m&prev != prev {
			t.Errorf("MaskUpTo(%d) = %#x is not an extension of MaskUpTo(%d) = %#x", k, m, k-1, prev)
		}
		if bits := popcount(m); bits != k {
			t.Errorf("MaskUpTo(%d) has %d bits set", k, bits)
		}
		prev = m
	}
}

func TestMaskUpToPanicsOutOfRange(t *testing.T) {
	for _, k := range []int{-1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MaskUpTo(%d) did not panic", k)
				}
			}()
			MaskUpTo(k)
		}()
	}
}

// TestHelpersComposeLikeABitset checks the three helpers against a
// straightforward map-of-ints model across both sides of a word boundary.
func TestHelpersComposeLikeABitset(t *testing.T) {
	words := make([]uint64, 3)
	set := []int{0, 1, 62, 63, 64, 65, 126, 127, 128}
	for _, i := range set {
		words[WordOf(i)] |= BitOf(i)
	}
	in := func(i int) bool { return words[WordOf(i)]&BitOf(i) != 0 }
	for i := 0; i < 192; i++ {
		want := false
		for _, s := range set {
			if s == i {
				want = true
			}
		}
		if in(i) != want {
			t.Errorf("bit %d: got %v, want %v", i, in(i), want)
		}
	}
	// MaskUpTo(64) must cover exactly word 0's population.
	if got := popcount(words[0] & MaskUpTo(64)); got != 4 {
		t.Errorf("word 0 has %d bits under a full mask, want 4", got)
	}
	if got := popcount(words[0] & MaskUpTo(63)); got != 3 {
		t.Errorf("word 0 has %d bits under MaskUpTo(63), want 3 (bit 63 excluded)", got)
	}
}

func popcount(v uint64) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}
