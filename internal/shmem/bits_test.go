package shmem

import "testing"

// The word/bit helpers guard the classic boundary hazards of uint64-word
// bitsets: bit 0, bit 63 (last of a word), and bit/width 64 (first of the
// next word — and, for MaskUpTo, the full-width shift Go defines as 0).

func TestWordOfBoundaries(t *testing.T) {
	cases := []struct {
		bit, word int
	}{
		{0, 0}, {1, 0}, {63, 0},
		{64, 1}, {65, 1}, {127, 1},
		{128, 2}, {191, 2}, {192, 3},
	}
	for _, tc := range cases {
		if got := WordOf(tc.bit); got != tc.word {
			t.Errorf("WordOf(%d) = %d, want %d", tc.bit, got, tc.word)
		}
	}
}

func TestBitOfBoundaries(t *testing.T) {
	cases := []struct {
		bit  int
		mask uint64
	}{
		{0, 1},
		{1, 2},
		{63, 1 << 63},
		{64, 1},        // first bit of the next word wraps to position 0
		{127, 1 << 63}, // last bit of the second word
		{128, 1},
	}
	for _, tc := range cases {
		if got := BitOf(tc.bit); got != tc.mask {
			t.Errorf("BitOf(%d) = %#x, want %#x", tc.bit, got, tc.mask)
		}
	}
}

func TestMaskUpToBoundaries(t *testing.T) {
	cases := []struct {
		k    int
		mask uint64
	}{
		{0, 0},
		{1, 1},
		{2, 3},
		{63, 1<<63 - 1},  // all but the top bit
		{64, ^uint64(0)}, // full word: the naive 1<<64 - 1 is 0 in Go
	}
	for _, tc := range cases {
		if got := MaskUpTo(tc.k); got != tc.mask {
			t.Errorf("MaskUpTo(%d) = %#x, want %#x", tc.k, got, tc.mask)
		}
	}
	// Every mask must have exactly k bits set and be a prefix of the next.
	prev := uint64(0)
	for k := 0; k <= 64; k++ {
		m := MaskUpTo(k)
		if m&prev != prev {
			t.Errorf("MaskUpTo(%d) = %#x is not an extension of MaskUpTo(%d) = %#x", k, m, k-1, prev)
		}
		if bits := popcount(m); bits != k {
			t.Errorf("MaskUpTo(%d) has %d bits set", k, bits)
		}
		prev = m
	}
}

func TestMaskUpToPanicsOutOfRange(t *testing.T) {
	for _, k := range []int{-1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MaskUpTo(%d) did not panic", k)
				}
			}()
			MaskUpTo(k)
		}()
	}
}

// TestHelpersComposeLikeABitset checks the three helpers against a
// straightforward map-of-ints model across both sides of a word boundary.
func TestHelpersComposeLikeABitset(t *testing.T) {
	words := make([]uint64, 3)
	set := []int{0, 1, 62, 63, 64, 65, 126, 127, 128}
	for _, i := range set {
		words[WordOf(i)] |= BitOf(i)
	}
	in := func(i int) bool { return words[WordOf(i)]&BitOf(i) != 0 }
	for i := 0; i < 192; i++ {
		want := false
		for _, s := range set {
			if s == i {
				want = true
			}
		}
		if in(i) != want {
			t.Errorf("bit %d: got %v, want %v", i, in(i), want)
		}
	}
	// MaskUpTo(64) must cover exactly word 0's population.
	if got := popcount(words[0] & MaskUpTo(64)); got != 4 {
		t.Errorf("word 0 has %d bits under a full mask, want 4", got)
	}
	if got := popcount(words[0] & MaskUpTo(63)); got != 3 {
		t.Errorf("word 0 has %d bits under MaskUpTo(63), want 3 (bit 63 excluded)", got)
	}
}

func popcount(v uint64) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}

func TestPidBitsBasics(t *testing.T) {
	var b PidBits
	if !b.Empty() || b.Count() != 0 || b.Contains(0) || b.Contains(-1) {
		t.Fatal("zero PidBits must be the empty set")
	}
	for _, p := range []int{0, 63, 64, 130, 63} {
		b.Add(p)
	}
	if b.Count() != 4 {
		t.Fatalf("Count = %d, want 4 (duplicate Add must not double-count)", b.Count())
	}
	want := []int{0, 63, 64, 130}
	got := b.Sorted()
	if len(got) != len(want) {
		t.Fatalf("Sorted = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sorted = %v, want %v", got, want)
		}
	}
	for _, p := range want {
		if !b.Contains(p) {
			t.Fatalf("Contains(%d) = false after Add", p)
		}
	}
	if b.Contains(1) || b.Contains(65) || b.Contains(131) || b.Contains(1000) {
		t.Fatal("Contains reports absent elements")
	}
	b.Clear()
	if !b.Empty() || b.Count() != 0 {
		t.Fatal("Clear must empty the set")
	}
	if cap(b) == 0 {
		t.Fatal("Clear must keep the backing array")
	}
}

func TestPidBitsSortedNonNilWhenEmpty(t *testing.T) {
	var b PidBits
	if b.Sorted() == nil {
		t.Fatal("Sorted of the empty set must be non-nil (snapshot compatibility)")
	}
}

func TestPidBitsAppendBinaryCanonical(t *testing.T) {
	// Equal sets with different backing capacities must render identically:
	// trailing zero words are trimmed.
	var a PidBits
	a.Add(3)
	b := PidBits{0, 0, 0}
	b.Add(3) // word 0; words 1, 2 remain zero
	ra, rb := a.AppendBinary(nil), b.AppendBinary(nil)
	if string(ra) != string(rb) {
		t.Fatalf("AppendBinary not canonical: %x vs %x", ra, rb)
	}
	// The empty set renders as a bare zero count regardless of capacity.
	var empty PidBits
	cleared := PidBits{0, 0}
	if string(empty.AppendBinary(nil)) != string(cleared.AppendBinary(nil)) {
		t.Fatal("AppendBinary of empty sets must not depend on capacity")
	}
	// Distinct sets must render distinctly.
	var c PidBits
	c.Add(4)
	if string(a.AppendBinary(nil)) == string(c.AppendBinary(nil)) {
		t.Fatal("AppendBinary collided on distinct sets")
	}
	// Appends to dst, preserving the prefix.
	out := a.AppendBinary([]byte("prefix"))
	if string(out[:6]) != "prefix" {
		t.Fatalf("AppendBinary clobbered dst prefix: %q", out)
	}
}

func TestPidBitsEachAscending(t *testing.T) {
	var b PidBits
	for _, p := range []int{200, 5, 64, 0} {
		b.Add(p)
	}
	var got []int
	b.Each(func(p int) { got = append(got, p) })
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("Each not ascending: %v", got)
		}
	}
	if len(got) != 4 {
		t.Fatalf("Each visited %d elements, want 4", len(got))
	}
}
