package shmem

// RMW atomically replaces register i's value v with f(v) and returns v,
// clearing the register's Pset (any write invalidates outstanding links).
//
// This operation is NOT part of the memory model the lower bound is proved
// against. It implements the observation of Section 7 (open problems): if
// shared memory supports read-modify-write with an arbitrary computable
// function on unbounded registers, every object has a wait-free
// implementation with unit worst-case shared-access time complexity — store
// the whole object state in one register and perform each operation as a
// single RMW. Experiment E10 demonstrates exactly that, which is why the
// lower bound cannot extend to such a memory without restricting it.
func (m *Memory) RMW(pid, i int, f func(Value) Value) Value {
	m.chargeStep(pid)
	r := m.reg(i)
	prev := r.val
	r.val = f(prev)
	r.pset.Clear()
	return prev
}
