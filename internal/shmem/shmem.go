// Package shmem implements the shared-memory model of Jayanti (PODC 1998),
// "A Time Complexity Lower Bound for Randomized Implementations of Some
// Shared Objects", Section 3.
//
// The memory consists of an infinite number of shared registers R0, R1, ...,
// each of unbounded size. The state of a register R is the pair
// (value(R), Pset(R)), where Pset is the set of processes whose last LL on R
// has not been invalidated. Five operations are supported: LL, SC, validate,
// swap, and move. Per the paper's strengthened definitions, SC and validate
// return the register's value in addition to the usual boolean, which makes
// the lower bound proved against this memory stronger.
//
// Registers are allocated lazily, so the "infinite" register file costs only
// what a run touches. Values are arbitrary Go values treated as immutable;
// callers must never mutate a value after storing it.
package shmem

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
)

// Value is the contents of a shared register. Values are immutable by
// convention: once stored, a Value (including any slice or map it contains)
// must not be modified. Equality of values is structural (reflect.DeepEqual).
type Value any

// OpKind identifies one of the five shared-memory operations of the model.
type OpKind int

// The five operations supported by the shared memory (Section 3 of the
// paper). There is deliberately no plain read: validate returns the current
// value without perturbing the register, so read(R) = validate(R).Val.
const (
	OpLL OpKind = iota + 1
	OpSC
	OpValidate
	OpSwap
	OpMove
)

// String returns the paper's name for the operation.
func (k OpKind) String() string {
	switch k {
	case OpLL:
		return "LL"
	case OpSC:
		return "SC"
	case OpValidate:
		return "validate"
	case OpSwap:
		return "swap"
	case OpMove:
		return "move"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is a single shared-memory operation request.
//
//   - LL, Validate: Reg is the register to access.
//   - SC, Swap: Reg is the register, Arg the value to store.
//   - Move: Src is the source register, Reg the destination register
//     (move(R_src, R_dst) copies value(R_src) into R_dst).
type Op struct {
	Kind OpKind
	Reg  int
	Src  int
	Arg  Value
}

// String renders the operation in the paper's notation.
func (o Op) String() string {
	switch o.Kind {
	case OpLL:
		return fmt.Sprintf("LL(R%d)", o.Reg)
	case OpSC:
		return fmt.Sprintf("SC(R%d, %v)", o.Reg, o.Arg)
	case OpValidate:
		return fmt.Sprintf("validate(R%d)", o.Reg)
	case OpSwap:
		return fmt.Sprintf("swap(R%d, %v)", o.Reg, o.Arg)
	case OpMove:
		return fmt.Sprintf("move(R%d, R%d)", o.Src, o.Reg)
	default:
		return fmt.Sprintf("op(%v)", o.Kind)
	}
}

// Response is the reply to an Op.
//
//   - LL: Val is the register's value; OK is true.
//   - SC: OK reports success; Val is the register's previous value (the
//     strengthened response of Section 3).
//   - Validate: OK reports whether the caller's link is still valid; Val is
//     the register's current value.
//   - Swap: Val is the register's previous value; OK is true.
//   - Move: OK is true; Val is nil (move returns only an acknowledgement).
type Response struct {
	OK  bool
	Val Value
}

// String renders the response compactly.
func (r Response) String() string {
	return fmt.Sprintf("(%t, %v)", r.OK, r.Val)
}

// RegState is a snapshot of one register's state: its value and the sorted
// list of processes in its Pset.
type RegState struct {
	Val  Value
	Pset []int
}

// Equal reports whether two register snapshots have structurally equal values
// and identical Psets.
func (s RegState) Equal(o RegState) bool {
	if !ValuesEqual(s.Val, o.Val) {
		return false
	}
	if len(s.Pset) != len(o.Pset) {
		return false
	}
	for i := range s.Pset {
		if s.Pset[i] != o.Pset[i] {
			return false
		}
	}
	return true
}

// ValuesEqual reports structural equality of two register values. Scalar
// values — the overwhelming majority on the adversary and exploration hot
// paths — are compared by a type switch; everything else falls back to
// reflect.DeepEqual. The two agree exactly: DeepEqual on identical scalar
// types is ==, and on mismatched dynamic types it is false.
func ValuesEqual(a, b Value) bool {
	if a == nil || b == nil {
		return a == b
	}
	switch av := a.(type) {
	case int:
		bv, ok := b.(int)
		return ok && av == bv
	case int64:
		bv, ok := b.(int64)
		return ok && av == bv
	case string:
		bv, ok := b.(string)
		return ok && av == bv
	case bool:
		bv, ok := b.(bool)
		return ok && av == bv
	}
	return reflect.DeepEqual(a, b)
}

type register struct {
	val  Value
	pset PidBits
}

// Memory is the shared memory: an unbounded register file plus per-process
// shared-access step counters. Memory is not safe for concurrent use; the
// lower-bound machinery drives it from a single scheduler goroutine. For a
// concurrent linearizable variant usable from many goroutines, see package
// llsc.
type Memory struct {
	regs map[int]*register
	// touched holds the indices of allocated registers in increasing
	// order, maintained on first touch so Snapshot/Touched/Dump never
	// sort (DESIGN §11).
	touched []int
	initVal func(reg int) Value
	steps   map[int]int64
	total   int64
	// maxSteps/maxPid track max_p Steps(p) incrementally (smallest pid on
	// ties), so MaxSteps is O(1) instead of sort-per-call.
	maxSteps  int64
	maxPid    int
	trackBits bool
	maxBits   int
	// fpScratch is the reused value-rendering buffer of AppendFingerprint.
	fpScratch []byte
}

// Option configures a Memory.
type Option func(*Memory)

// WithInit sets the initial value of every register as a function of its
// index. The default initial value is nil. The function must be pure: it is
// re-evaluated whenever an untouched register is first accessed.
func WithInit(f func(reg int) Value) Option {
	return func(m *Memory) { m.initVal = f }
}

// New creates an empty shared memory. All registers initially hold nil (or
// the value supplied by WithInit) and have empty Psets.
func New(opts ...Option) *Memory {
	m := &Memory{
		regs:   make(map[int]*register),
		steps:  make(map[int]int64),
		maxPid: -1,
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

func (m *Memory) reg(i int) *register {
	r, ok := m.regs[i]
	if !ok {
		r = &register{}
		if m.initVal != nil {
			r.val = m.initVal(i)
			m.noteBits(r.val)
		}
		m.regs[i] = r
		m.noteTouched(i)
	}
	return r
}

// chargeStep charges pid one shared-access step and maintains the running
// max (smallest pid on ties) that MaxSteps reports.
func (m *Memory) chargeStep(pid int) {
	s := m.steps[pid] + 1
	m.steps[pid] = s
	m.total++
	if s > m.maxSteps || (s == m.maxSteps && pid < m.maxPid) {
		m.maxSteps, m.maxPid = s, pid
	}
}

// noteTouched inserts i into the sorted touched index (first touch only).
func (m *Memory) noteTouched(i int) {
	at := sort.SearchInts(m.touched, i)
	m.touched = append(m.touched, 0)
	copy(m.touched[at+1:], m.touched[at:])
	m.touched[at] = i
}

// Apply performs op on behalf of process pid, charges pid one shared-access
// step, and returns the response. The semantics follow Section 3 verbatim.
func (m *Memory) Apply(pid int, op Op) Response {
	m.chargeStep(pid)
	switch op.Kind {
	case OpLL:
		r := m.reg(op.Reg)
		r.pset.Add(pid)
		return Response{OK: true, Val: r.val}
	case OpSC:
		r := m.reg(op.Reg)
		prev := r.val
		if r.pset.Contains(pid) {
			r.val = op.Arg
			r.pset.Clear()
			m.noteBits(op.Arg)
			return Response{OK: true, Val: prev}
		}
		return Response{OK: false, Val: prev}
	case OpValidate:
		r := m.reg(op.Reg)
		return Response{OK: r.pset.Contains(pid), Val: r.val}
	case OpSwap:
		r := m.reg(op.Reg)
		prev := r.val
		r.val = op.Arg
		r.pset.Clear()
		m.noteBits(op.Arg)
		return Response{OK: true, Val: prev}
	case OpMove:
		// A self-move is a complete no-op: Section 3 states that a move
		// leaves the source register's state unchanged, and when src = dst
		// the register is its own source, so neither its value nor its
		// Pset may change. (Clearing the Pset would leak the mover's
		// existence through later SC failures while the movers bookkeeping
		// of Section 4 — which carries only value flow — could not account
		// for it, breaking Lemmas 4.1 and 5.2 simultaneously.)
		if op.Src == op.Reg {
			return Response{OK: true}
		}
		src := m.reg(op.Src)
		dst := m.reg(op.Reg)
		dst.val = src.val
		dst.pset.Clear()
		return Response{OK: true}
	default:
		panic(fmt.Sprintf("shmem: unknown op kind %v", op.Kind))
	}
}

// Read returns the current value of register i without charging any process
// a step and without perturbing the register. It exists for checkers and
// reporting code; algorithms must go through Apply.
//
// Reading an untouched register returns its initial value without
// allocating it: the register stays out of Touched, Snapshot, and Dump.
// (Until PR 6 this routed through the lazily-allocating register lookup,
// so a documented-as-non-perturbing checker read changed all three.)
func (m *Memory) Read(i int) Value {
	if r, ok := m.regs[i]; ok {
		return r.val
	}
	if m.initVal != nil {
		return m.initVal(i)
	}
	return nil
}

// PsetContains reports whether pid is in register i's Pset, without charging
// a step. For checkers only. Like Read, it never allocates the register:
// an untouched register has an empty Pset by construction.
func (m *Memory) PsetContains(i, pid int) bool {
	r, ok := m.regs[i]
	return ok && r.pset.Contains(pid)
}

// Steps returns the number of shared-memory operations performed by pid so
// far — the per-process shared-access time t(p, R) of the paper.
func (m *Memory) Steps(pid int) int64 {
	return m.steps[pid]
}

// TotalSteps returns the total number of shared-memory operations applied.
func (m *Memory) TotalSteps() int64 {
	return m.total
}

// MaxSteps returns max over processes of Steps — t(R) in the paper's
// notation — and the pid attaining it (smallest pid on ties, -1 if no
// steps). The running max is maintained by Apply, so this is O(1);
// lbreport calls it once per experiment section.
func (m *Memory) MaxSteps() (steps int64, pid int) {
	return m.maxSteps, m.maxPid
}

// Snapshot captures the state of every touched register: value plus sorted
// Pset. Untouched registers are omitted (they hold their initial value and
// an empty Pset by construction).
func (m *Memory) Snapshot() map[int]RegState {
	snap := make(map[int]RegState, len(m.touched))
	for _, i := range m.touched {
		r := m.regs[i]
		snap[i] = RegState{Val: r.val, Pset: r.pset.Sorted()}
	}
	return snap
}

// Touched returns the sorted indices of registers that have been accessed.
func (m *Memory) Touched() []int {
	return append([]int(nil), m.touched...)
}

// Dump renders the touched registers, for debugging.
func (m *Memory) Dump() string {
	var b strings.Builder
	for _, i := range m.touched {
		r := m.regs[i]
		fmt.Fprintf(&b, "R%d = %v Pset=%v\n", i, r.val, r.pset.Sorted())
	}
	return b.String()
}
