package shmem

import (
	"reflect"
	"testing"
)

// TestReadDoesNotPerturbFreshRegister is the PR 6 headline regression
// test: the read-only checker accessors must not allocate an untouched
// register, so Touched/Snapshot/Dump are unchanged by them.
func TestReadDoesNotPerturbFreshRegister(t *testing.T) {
	m := New(WithInit(func(reg int) Value { return reg * 10 }))
	if got := m.Read(7); got != 70 {
		t.Fatalf("Read(7) = %v, want 70 (the initial value)", got)
	}
	if m.PsetContains(7, 0) {
		t.Fatal("fresh register must have an empty Pset")
	}
	if got := m.Touched(); len(got) != 0 {
		t.Fatalf("checker reads perturbed the register file: Touched = %v, want none", got)
	}
	if snap := m.Snapshot(); len(snap) != 0 {
		t.Fatalf("checker reads perturbed the snapshot: %v", snap)
	}
	if dump := m.Dump(); dump != "" {
		t.Fatalf("checker reads perturbed the dump: %q", dump)
	}

	// A real operation still allocates and initializes as before.
	r := m.Apply(0, Op{Kind: OpLL, Reg: 7})
	if r.Val != 70 {
		t.Fatalf("LL(R7) = %v, want 70", r.Val)
	}
	if got, want := m.Touched(), []int{7}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Touched = %v, want %v", got, want)
	}
	if got := m.Read(7); got != 70 {
		t.Fatalf("Read(7) after LL = %v, want 70", got)
	}
	if !m.PsetContains(7, 0) {
		t.Fatal("PsetContains must see the LL link")
	}
}

func TestReadFreshRegisterNoInit(t *testing.T) {
	m := New()
	if got := m.Read(3); got != nil {
		t.Fatalf("Read of fresh register = %v, want nil", got)
	}
	if allocs := testing.AllocsPerRun(100, func() { m.Read(3) }); allocs != 0 {
		t.Fatalf("Read of fresh register allocates %.1f objects/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { m.PsetContains(3, 0) }); allocs != 0 {
		t.Fatalf("PsetContains of fresh register allocates %.1f objects/op, want 0", allocs)
	}
}

// TestPsetClearAllocationFree backstops the bitset conversion: the LL/SC
// pair on a warmed register — including the Pset clear on SC success, and
// the repeated clear of an already-empty Pset by swap — must not allocate.
func TestPsetClearAllocationFree(t *testing.T) {
	m := New()
	val := Value("v")
	// Warm: register allocated, pid counters exist, pset word grown.
	m.Apply(0, Op{Kind: OpLL, Reg: 0})
	m.Apply(0, Op{Kind: OpSC, Reg: 0, Arg: val})
	if allocs := testing.AllocsPerRun(100, func() {
		m.Apply(0, Op{Kind: OpLL, Reg: 0})
		m.Apply(0, Op{Kind: OpSC, Reg: 0, Arg: val})
	}); allocs != 0 {
		t.Fatalf("warm LL+SC pair allocates %.1f objects/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		m.Apply(0, Op{Kind: OpSwap, Reg: 0, Arg: val})
	}); allocs != 0 {
		t.Fatalf("swap with already-empty Pset allocates %.1f objects/op, want 0", allocs)
	}
}

func TestMaxStepsTieAndEmpty(t *testing.T) {
	m := New()
	if steps, pid := m.MaxSteps(); steps != 0 || pid != -1 {
		t.Fatalf("MaxSteps with no steps = (%d, %d), want (0, -1)", steps, pid)
	}
	// p2 steps first; then p0 catches up to the same count. The smallest
	// pid attaining the max must win the tie even though it got there last.
	m.Apply(2, Op{Kind: OpLL, Reg: 0})
	m.Apply(2, Op{Kind: OpLL, Reg: 0})
	if steps, pid := m.MaxSteps(); steps != 2 || pid != 2 {
		t.Fatalf("MaxSteps = (%d, %d), want (2, 2)", steps, pid)
	}
	m.Apply(0, Op{Kind: OpLL, Reg: 0})
	m.Apply(0, Op{Kind: OpLL, Reg: 0})
	if steps, pid := m.MaxSteps(); steps != 2 || pid != 0 {
		t.Fatalf("MaxSteps after tie = (%d, %d), want (2, 0)", steps, pid)
	}
	// A higher pid overtaking takes the lead outright.
	m.Apply(2, Op{Kind: OpLL, Reg: 0})
	if steps, pid := m.MaxSteps(); steps != 3 || pid != 2 {
		t.Fatalf("MaxSteps after overtake = (%d, %d), want (3, 2)", steps, pid)
	}
	// RMW charges through the same accounting.
	m.RMW(5, 1, func(v Value) Value { return v })
	m.RMW(5, 1, func(v Value) Value { return v })
	m.RMW(5, 1, func(v Value) Value { return v })
	m.RMW(5, 1, func(v Value) Value { return v })
	if steps, pid := m.MaxSteps(); steps != 4 || pid != 5 {
		t.Fatalf("MaxSteps after RMW = (%d, %d), want (4, 5)", steps, pid)
	}
}

func TestValuesEqualScalarFastPath(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{nil, nil, true},
		{nil, 0, false},
		{0, nil, false},
		{1, 1, true},
		{1, 2, false},
		{int64(1), int64(1), true},
		{int64(1), int64(2), false},
		{1, int64(1), false}, // mismatched dynamic types, like DeepEqual
		{"a", "a", true},
		{"a", "b", false},
		{"1", 1, false},
		{true, true, true},
		{true, false, false},
		{true, 1, false},
		{[]int{1}, []int{1}, true},   // falls back to DeepEqual
		{[]int{1}, []int{2}, false},  // falls back to DeepEqual
		{1, []int{1}, false},         // scalar vs composite
		{[]int(nil), []int{}, false}, // DeepEqual semantics preserved
	}
	for _, tc := range cases {
		if got := ValuesEqual(tc.a, tc.b); got != tc.want {
			t.Errorf("ValuesEqual(%#v, %#v) = %t, want %t", tc.a, tc.b, got, tc.want)
		}
		if got := ValuesEqual(tc.b, tc.a); got != tc.want {
			t.Errorf("ValuesEqual(%#v, %#v) = %t, want %t (symmetry)", tc.b, tc.a, got, tc.want)
		}
	}
}
