package shmem

import (
	"reflect"
	"testing"
)

// fuzzValue materializes a register value of a fuzzer-chosen dynamic kind.
// The kinds cover both the scalar fast path of ValuesEqual (nil, int,
// int64, string, bool) and representatives of the reflect.DeepEqual
// fallback, including the nil-slice / empty-slice pair whose distinction
// DeepEqual (and therefore ValuesEqual) must preserve.
func fuzzValue(kind byte, x int64, s string) Value {
	switch kind % 9 {
	case 0:
		return nil
	case 1:
		return int(x)
	case 2:
		return x
	case 3:
		return s
	case 4:
		return x&1 == 1
	case 5:
		return []int{int(x)}
	case 6:
		return []int(nil)
	case 7:
		return []int{}
	default:
		return map[string]int64{s: x}
	}
}

// fuzzPset materializes a Pset snapshot from a bitmask, in the ascending
// order Snapshot produces. nilSlice selects the nil representation for the
// empty set (Snapshot itself always emits non-nil; RegState.Equal must
// treat the two the same, since they denote the same empty Pset).
func fuzzPset(mask uint64, nilSlice bool) []int {
	if mask == 0 && nilSlice {
		return nil
	}
	out := []int{}
	for p := 0; p < 64; p++ {
		if mask&(1<<p) != 0 {
			out = append(out, p)
		}
	}
	return out
}

// FuzzRegStateEqual cross-checks RegState.Equal (and the ValuesEqual fast
// path inside it) against a reference built on reflect.DeepEqual:
//
//   - values: ValuesEqual must agree with DeepEqual, except that two nil
//     interfaces are equal (DeepEqual calls two invalid values unequal;
//     an absent register value equals an absent register value here);
//   - Psets: elementwise equality with nil and empty denoting the same
//     (empty) Pset.
//
// The seeds pin the cases named by the PR-6 checklist: nil-vs-empty Psets
// and mixed value kinds; the committed corpus under testdata/fuzz extends
// them.
func FuzzRegStateEqual(f *testing.F) {
	// kindA, xA, sA, maskA, nilA, kindB, xB, sB, maskB, nilB
	f.Add(byte(0), int64(0), "", uint64(0), true, byte(0), int64(0), "", uint64(0), false)   // nil Pset vs empty Pset
	f.Add(byte(1), int64(1), "", uint64(5), false, byte(2), int64(1), "", uint64(5), false)  // int vs int64: mixed kinds
	f.Add(byte(3), int64(0), "1", uint64(2), false, byte(1), int64(1), "", uint64(2), false) // "1" vs 1
	f.Add(byte(4), int64(1), "", uint64(0), true, byte(1), int64(1), "", uint64(0), true)    // bool vs int
	f.Add(byte(6), int64(0), "", uint64(0), false, byte(7), int64(0), "", uint64(0), false)  // nil slice vs empty slice value
	f.Add(byte(8), int64(7), "k", uint64(9), false, byte(8), int64(7), "k", uint64(9), false)
	f.Add(byte(5), int64(3), "", uint64(1<<63), false, byte(5), int64(3), "", uint64(1), false)
	f.Fuzz(func(t *testing.T, kindA byte, xA int64, sA string, maskA uint64, nilA bool,
		kindB byte, xB int64, sB string, maskB uint64, nilB bool) {
		a := RegState{Val: fuzzValue(kindA, xA, sA), Pset: fuzzPset(maskA, nilA)}
		b := RegState{Val: fuzzValue(kindB, xB, sB), Pset: fuzzPset(maskB, nilB)}

		wantVals := reflect.DeepEqual(a.Val, b.Val)
		if a.Val == nil || b.Val == nil {
			wantVals = a.Val == nil && b.Val == nil
		}
		if got := ValuesEqual(a.Val, b.Val); got != wantVals {
			t.Errorf("ValuesEqual(%#v, %#v) = %t, want %t", a.Val, b.Val, got, wantVals)
		}

		want := wantVals && maskA == maskB
		if got := a.Equal(b); got != want {
			t.Errorf("RegState%+v.Equal(%+v) = %t, want %t", a, b, got, want)
		}
		if got, rev := a.Equal(b), b.Equal(a); got != rev {
			t.Errorf("Equal not symmetric: a.Equal(b)=%t b.Equal(a)=%t", got, rev)
		}
		if !a.Equal(a) || !b.Equal(b) {
			t.Errorf("Equal not reflexive on %+v / %+v", a, b)
		}
	})
}
