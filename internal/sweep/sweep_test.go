package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrdersResultsByIndex(t *testing.T) {
	n := 64
	got, err := Map(8, n, func(i int) (int, error) {
		// Stagger completion so out-of-order finishes would be visible.
		time.Sleep(time.Duration((n-i)%5) * time.Millisecond)
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("got %d results", len(got))
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("results[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapMatchesSerial(t *testing.T) {
	fn := func(i int) (string, error) { return fmt.Sprintf("item-%d", i), nil }
	serial, err := Map(1, 20, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16, 100} {
		par, err := Map(workers, 20, fn)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Join(par, ",") != strings.Join(serial, ",") {
			t.Fatalf("workers=%d: %v != serial %v", workers, par, serial)
		}
	}
}

func TestMapReturnsFirstErrorByIndex(t *testing.T) {
	err3 := errors.New("boom at 3")
	err7 := errors.New("boom at 7")
	got, err := Map(8, 10, func(i int) (int, error) {
		switch i {
		case 3:
			// Let the higher-indexed failure land first; the reported
			// error must still be the lowest-indexed one.
			time.Sleep(20 * time.Millisecond)
			return 0, err3
		case 7:
			return 0, err7
		}
		return i, nil
	})
	if !errors.Is(err, err3) {
		t.Fatalf("err = %v, want the index-3 error", err)
	}
	if len(got) != 3 {
		t.Fatalf("partial results = %v, want items 0..2", got)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("results[%d] = %d", i, v)
		}
	}
}

func TestMapSerialErrorSemantics(t *testing.T) {
	failAt2 := errors.New("fail")
	var calls atomic.Int64
	got, err := Map(1, 10, func(i int) (int, error) {
		calls.Add(1)
		if i == 2 {
			return 0, failAt2
		}
		return i, nil
	})
	if !errors.Is(err, failAt2) || len(got) != 2 {
		t.Fatalf("got %v, %v", got, err)
	}
	if calls.Load() != 3 {
		t.Fatalf("serial path ran %d items, want 3", calls.Load())
	}
}

func TestMapPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic did not propagate")
		}
		if !strings.Contains(fmt.Sprint(r), "kaboom") {
			t.Fatalf("panic value lost: %v", r)
		}
	}()
	_, _ = Map(4, 8, func(i int) (int, error) {
		if i == 5 {
			panic("kaboom")
		}
		return i, nil
	})
}

func TestMapZeroItems(t *testing.T) {
	got, err := Map(4, 0, func(i int) (int, error) { return 0, errors.New("never") })
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestWorkersResolution(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatal("explicit worker counts must pass through")
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-1); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-1) = %d", got)
	}
}

func TestSeedDeterministicAndDistinct(t *testing.T) {
	a := Seed("E2", "double-register", 16, 3)
	if b := Seed("E2", "double-register", 16, 3); a != b {
		t.Fatal("same coordinates must give the same seed")
	}
	if a < 0 {
		t.Fatalf("seed %d negative", a)
	}
	seen := map[int64]string{a: "base"}
	for _, c := range []struct {
		exp, alg  string
		n, sample int
	}{
		{"E1", "double-register", 16, 3},
		{"E2", "set-register", 16, 3},
		{"E2", "double-register", 32, 3},
		{"E2", "double-register", 16, 4},
	} {
		s := Seed(c.exp, c.alg, c.n, c.sample)
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision between %+v and %s", c, prev)
		}
		seen[s] = fmt.Sprintf("%+v", c)
	}
}

func TestDeriveStreamDistinct(t *testing.T) {
	base := Seed("E2", "double-register", 8, 0)
	seen := make(map[int64]int)
	for i := 0; i < 1000; i++ {
		s := Derive(base, i)
		if s < 0 {
			t.Fatalf("Derive(%d) = %d negative", i, s)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("Derive collision between samples %d and %d", prev, i)
		}
		seen[s] = i
	}
	if Derive(base, 0) != Derive(base, 0) {
		t.Fatal("Derive must be deterministic")
	}
}

// TestMapRaceClean hammers the engine with shared-nothing items under the
// race detector: each item owns RNG state derived from its index.
func TestMapRaceClean(t *testing.T) {
	sums, err := Map(8, 128, func(i int) (uint64, error) {
		var sum uint64
		s := uint64(Derive(1, i))
		for j := 0; j < 1000; j++ {
			s = mix64(s + uint64(j))
			sum += s
		}
		return sum, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	again, err := Map(3, 128, func(i int) (uint64, error) {
		var sum uint64
		s := uint64(Derive(1, i))
		for j := 0; j < 1000; j++ {
			s = mix64(s + uint64(j))
			sum += s
		}
		return sum, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range sums {
		if sums[i] != again[i] {
			t.Fatalf("item %d differed across parallelism levels", i)
		}
	}
}

// TestMapCtxUncancelledMatchesMap: with a live context, MapCtx is Map.
func TestMapCtxUncancelledMatchesMap(t *testing.T) {
	fn := func(i int) (int, error) { return i * 3, nil }
	want, err := Map(4, 32, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		got, err := MapCtx(context.Background(), workers, 32, fn)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: results[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

// TestMapCtxPreCancelled: a context that is already done dispatches nothing.
func TestMapCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var calls atomic.Int64
		got, err := MapCtx(ctx, workers, 16, func(i int) (int, error) {
			calls.Add(1)
			return i, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if len(got) != 0 || calls.Load() != 0 {
			t.Fatalf("workers=%d: pre-cancelled sweep ran %d items, returned %v", workers, calls.Load(), got)
		}
	}
}

// TestMapCtxMidRunCancellation: cancelling mid-sweep stops dispatch, returns
// ctx.Err(), and hands back a completed prefix of results.
func TestMapCtxMidRunCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var calls atomic.Int64
		got, err := MapCtx(ctx, workers, 1000, func(i int) (int, error) {
			if calls.Add(1) == 10 {
				cancel()
			}
			time.Sleep(time.Millisecond)
			return i + 1, nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if calls.Load() >= 1000 {
			t.Fatalf("workers=%d: cancellation did not stop dispatch (%d calls)", workers, calls.Load())
		}
		// The returned slice must be a completed prefix: values i+1 in order.
		for i, v := range got {
			if v != i+1 {
				t.Fatalf("workers=%d: results[%d] = %d, want %d (not a completed prefix)", workers, i, v, i+1)
			}
		}
	}
}

// TestMapCtxItemErrorBeatsCancellation: an item error at a lower index takes
// precedence over a later-observed cancellation, as in the serial loop.
func TestMapCtxItemErrorBeatsCancellation(t *testing.T) {
	boom := errors.New("boom at 0")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	got, err := MapCtx(ctx, 4, 8, func(i int) (int, error) {
		if i == 0 {
			time.Sleep(10 * time.Millisecond)
			cancel() // cancellation lands while higher items are in flight
			return 0, boom
		}
		time.Sleep(20 * time.Millisecond)
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the index-0 item error", err)
	}
	if len(got) != 0 {
		t.Fatalf("partial results = %v, want none before index 0", got)
	}
}

// TestMapCtxDeadline: a deadline context cancels the sweep with
// DeadlineExceeded.
func TestMapCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := MapCtx(ctx, 2, 10000, func(i int) (int, error) {
		time.Sleep(time.Millisecond)
		return i, nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}
