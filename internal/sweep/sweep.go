// Package sweep is the deterministic worker-pool engine behind the
// experiment sweeps: it fans a grid of independent work items out over a
// bounded number of goroutines while guaranteeing that the results — and
// the first error — are exactly those of the serial loop it replaces.
//
// Determinism contract:
//
//   - Results are collected into an index-ordered slice and handed back
//     only after every worker has finished (a barrier), so downstream
//     rendering depends only on the items, never on goroutine scheduling.
//   - Work items must share no mutable state; in particular no *rand.Rand
//     (see sched.Random) may be shared between items. Randomized items
//     derive a private seed from their grid coordinates with Seed, or from
//     a base seed and sample index with Derive, so the same item always
//     sees the same randomness at every parallelism level.
//   - Errors reproduce serial semantics: Map returns the error of the
//     lowest-indexed failing item together with the results of every item
//     before it, exactly as the serial loop would have.
//   - Cancellation (MapCtx) is the one sanctioned breach of determinism:
//     an uncancelled MapCtx is byte-identical to Map, but once ctx is done
//     the set of items that managed to complete depends on timing. Callers
//     must therefore never cache or render the partial results of a
//     cancelled sweep as if they were a full run — the jobs layer treats
//     ctx.Err() as "no result" for exactly this reason.
package sweep

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"jayanti98/internal/obs"
)

// Engine metrics, on the process Default registry: how many work items
// the pool has run, how long each took, and how many workers are busy
// right now (utilization = busy / configured workers). Observation is two
// atomic adds plus one time.Now pair per item — noise next to an
// adversary run, and entirely outside the determinism contract (metrics
// never feed back into results).
var (
	metricsOnce sync.Once
	tasksTotal  *obs.Counter
	taskSeconds *obs.Histogram
	workersBusy *obs.Gauge
)

func engineMetrics() (*obs.Counter, *obs.Histogram, *obs.Gauge) {
	metricsOnce.Do(func() {
		r := obs.Default()
		tasksTotal = r.Counter("sweep_tasks_total", "Work items completed by the sweep worker pool.", nil)
		taskSeconds = r.Histogram("sweep_task_duration_seconds", "Per-item wall clock in the sweep worker pool.", nil, nil)
		workersBusy = r.Gauge("sweep_workers_busy", "Sweep workers currently running an item.", nil)
	})
	return tasksTotal, taskSeconds, workersBusy
}

// Workers resolves a worker-count request: values ≥ 1 are returned as is,
// anything else (0, negative) means "one worker per available CPU",
// i.e. runtime.GOMAXPROCS(0).
func Workers(requested int) int {
	if requested >= 1 {
		return requested
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn(i) for every i in [0, n) on up to `workers` goroutines
// (Workers-resolved; clamped to n) and returns the results in index order.
//
// If any item fails, Map returns the error of the lowest-indexed failing
// item and the results of all items before it — the same (partial results,
// first error) a serial loop produces. Items after a known-failed index may
// be skipped. A panicking item re-panics on the caller's goroutine with the
// worker's stack attached, so a crash looks the same as in the serial loop.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	return MapCtx(context.Background(), workers, n, fn)
}

// MapCtx is Map under a context: once ctx is done, no further items are
// dispatched, and MapCtx returns ctx.Err() together with the results of
// the items that completed before the cancellation point — the same
// (partial results, first error) shape Map produces for a failing item,
// with the cancellation behaving like an error at the first undispatched
// index. An item error at a lower index still takes precedence, exactly
// as in the serial loop.
//
// Items already running when ctx is cancelled are not interrupted — fn
// must watch ctx itself if mid-item cancellation matters. Determinism
// caveat: which items complete before a cancellation depends on timing,
// so only the error value (ctx.Err()) is deterministic for a cancelled
// sweep; an uncancelled MapCtx is byte-identical to Map.
func MapCtx[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	tasks, latency, busy := engineMetrics()
	// runItem is fn(i) bracketed by the engine metrics; the deferred
	// close-out keeps the busy gauge balanced even when fn panics.
	runItem := func(i int) (T, error) {
		busy.Inc()
		start := time.Now()
		defer func() {
			latency.Observe(time.Since(start).Seconds())
			busy.Dec()
			tasks.Inc()
		}()
		return fn(i)
	}
	if workers <= 1 {
		// The serial path: exactly the loop the engine replaces, with a
		// cancellation check before each dispatch.
		out := make([]T, 0, n)
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			r, err := runItem(i)
			if err != nil {
				return out, err
			}
			out = append(out, r)
		}
		return out, nil
	}

	results := make([]T, n)
	errs := make([]error, n)
	var next atomic.Int64
	var firstErr atomic.Int64 // lowest index that returned an error; n = none
	firstErr.Store(int64(n))
	var (
		wg         sync.WaitGroup
		panicOnce  sync.Once
		panicVal   any
		panicStack []byte
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() {
						panicVal = r
						panicStack = debug.Stack()
					})
				}
			}()
			for {
				i := int(next.Add(1) - 1)
				// Indices are claimed in order, so by the time item i is
				// claimed every item below i is claimed too; skipping
				// indices past a failed one can never starve an item that
				// the serial loop would have run.
				if i >= n || int64(i) > firstErr.Load() {
					return
				}
				if err := ctx.Err(); err != nil {
					// Record the cancellation as this index's error so the
					// usual lowest-index-wins rule yields the completed
					// prefix below the first undispatched item.
					errs[i] = err
					for {
						cur := firstErr.Load()
						if int64(i) >= cur || firstErr.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
					return
				}
				r, err := runItem(i)
				if err != nil {
					errs[i] = err
					for {
						cur := firstErr.Load()
						if int64(i) >= cur || firstErr.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
					return
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	if panicVal != nil {
		panic(fmt.Sprintf("sweep: worker panicked: %v\n%s", panicVal, panicStack))
	}
	if fe := int(firstErr.Load()); fe < n {
		return results[:fe], errs[fe]
	}
	return results, nil
}

// Seed derives the RNG seed of one work item from its grid coordinates
// (experiment, algorithm, n, sample). The same coordinates always yield
// the same seed — at any parallelism level and in any execution order —
// and distinct coordinates yield independent-looking seeds. Seeds are
// non-negative.
func Seed(experiment, algorithm string, n, sample int) int64 {
	h := fnv.New64a()
	io.WriteString(h, experiment)
	h.Write([]byte{0})
	io.WriteString(h, algorithm)
	h.Write([]byte{0})
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(n))
	binary.LittleEndian.PutUint64(buf[8:], uint64(sample))
	h.Write(buf[:])
	return int64(mix64(h.Sum64()) >> 1)
}

// Derive expands a base seed into the i-th seed of its stream (a
// splitmix64 step), for sweeps that draw many samples from one seed.
// Seeds are non-negative.
func Derive(base int64, i int) int64 {
	z := uint64(base) + uint64(i+1)*0x9e3779b97f4a7c15
	return int64(mix64(z) >> 1)
}

// mix64 is the splitmix64 finalizer — a cheap bijective avalanche.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
