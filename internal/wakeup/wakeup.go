// Package wakeup implements algorithms for the n-process wakeup problem of
// Fischer, Moran, Rudich and Taubenfeld, as specified in Section 1.1 of the
// paper: (1) every process terminates in a finite number of its own steps,
// returning 0 or 1; (2) in every run in which all processes terminate, at
// least one process returns 1; and (3) no process returns 1 before every
// process has taken at least one step.
//
// The algorithms here communicate only through LL, SC, validate, swap, and
// move on shared memory — the operation set the lower bound is proved
// against — so the adversary of package core applies to all of them:
//
//   - SetRegister: correct; one unbounded register accumulating ids;
//     wait-free with O(n) worst-case steps (the adversary forces Θ(n)).
//   - DoubleRegister: correct and randomized; ids accumulate in one of two
//     registers chosen by coin toss; exercises the randomized form of
//     Theorem 6.1 (Lemma 3.1 with termination probability c = 1).
//   - Cheater: deliberately incorrect — it returns 1 after one operation.
//     CatchFastWakeup exhibits its spec violation via the (S,A)-run,
//     demonstrating the proof mechanics of Theorem 6.1.
//   - Reductions via shared objects (reduction.go): the Theorem 6.2
//     algorithms in which each process performs at most two operations on
//     one linearizable object (fetch&increment, fetch&and, fetch&or,
//     fetch&complement, fetch&multiply, queue, stack, read/increment).
package wakeup

import (
	"fmt"
	"strconv"
	"strings"

	"jayanti98/internal/machine"
	"jayanti98/internal/shmem"
)

// setReg is the single shared register used by SetRegister.
const setReg = 0

// EncodePids encodes a pid set as a canonical comma-separated string —
// the unbounded register contents of the set-accumulation algorithms.
func EncodePids(pids map[int]bool) string {
	var set shmem.PidBits
	for p, in := range pids {
		if in {
			set.Add(p)
		}
	}
	return EncodeBits(set)
}

// EncodeBits is EncodePids for a bitset: it renders set in the same
// canonical format (a bitset iterates in increasing order, so no sort is
// needed). The algorithm bodies use the bitset form on their LL/SC retry
// loops — profiling the adversary benchmarks showed the map+sort+join
// round-trip of the original encoding dominating every wakeup run.
func EncodeBits(set shmem.PidBits) string {
	buf := make([]byte, 0, 4*set.Count())
	set.Each(func(p int) {
		if len(buf) > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendInt(buf, int64(p), 10)
	})
	return string(buf)
}

// DecodePids decodes EncodePids output (nil and "" decode to the empty set).
func DecodePids(v shmem.Value) map[int]bool {
	out := make(map[int]bool)
	DecodeBits(v, nil).Each(func(p int) { out[p] = true })
	return out
}

// DecodeBits decodes EncodePids/EncodeBits output into dst (cleared
// first), reusing dst's backing array — the retry loops decode on every
// LL, so the register hot path stays allocation-light.
func DecodeBits(v shmem.Value, dst shmem.PidBits) shmem.PidBits {
	dst.Clear()
	s, _ := v.(string)
	for s != "" {
		part := s
		if i := strings.IndexByte(s, ','); i >= 0 {
			part, s = s[:i], s[i+1:]
		} else {
			s = ""
		}
		p, err := strconv.Atoi(part)
		if err != nil {
			panic(fmt.Sprintf("wakeup: corrupt pid set register %q", v))
		}
		dst.Add(p)
	}
	return dst
}

// SetRegister returns the set-accumulation wakeup algorithm: one unbounded
// register holds the set of processes known to be up; each process
// LL/SC-retries to insert its own id; the process whose successful SC
// completes the set returns 1 (there is exactly one such process, because
// the register's set grows monotonically).
//
// Wait-freedom: every failed SC is caused by another process's successful
// SC, and each process performs exactly one successful SC, so a process
// retries at most n−1 times — O(n) worst-case shared accesses. The
// adversary in fact forces Θ(n): in its lockstep rounds only the smallest
// linked pid succeeds each round.
func SetRegister() machine.Algorithm {
	return machine.NewCompiled("wakeup/set-register", func(e *machine.Env) shmem.Value {
		var set shmem.PidBits
		for {
			set = DecodeBits(e.LL(setReg), set)
			set.Add(e.ID())
			ok, _ := e.SC(setReg, EncodeBits(set))
			if ok {
				if set.Count() == e.N() {
					return 1
				}
				return 0
			}
		}
	}, setRegisterChunk)
}

// DoubleRegister returns the randomized variant: each process tosses a coin
// to pick one of two set registers, inserts its id there (LL/SC retry
// loop), and then reads both registers; it returns 1 iff their union covers
// all n processes. The process whose final reads happen last sees every
// insertion, so condition (2) holds in every terminating run; condition (3)
// holds because an id enters a register only by its owner's step. The
// algorithm terminates with probability 1 (indeed always), so the
// randomized bound of Theorem 6.1 applies with c = 1.
func DoubleRegister() machine.Algorithm {
	return machine.NewCompiled("wakeup/double-register", func(e *machine.Env) shmem.Value {
		reg := int(e.Toss()) & 1
		var set shmem.PidBits
		for {
			set = DecodeBits(e.LL(reg), set)
			set.Add(e.ID())
			if ok, _ := e.SC(reg, EncodeBits(set)); ok {
				break
			}
		}
		union := DecodeBits(e.Read(0), nil)
		DecodeBits(e.Read(1), nil).Each(union.Add)
		if union.Count() == e.N() {
			return 1
		}
		return 0
	}, doubleRegisterChunk)
}

// Cheater returns the deliberately incorrect algorithm: each process
// announces itself with one swap and immediately claims every process is
// up. For n > 4 this violates Theorem 6.1 (1 < log₄ n), and the violation
// is exhibited by core.CatchFastWakeup: in the ({p},A)-run the winner still
// returns 1 although no other process ever takes a step.
func Cheater() machine.Algorithm {
	return machine.NewCompiled("wakeup/cheater", func(e *machine.Env) shmem.Value {
		e.Swap(e.ID(), 1)
		return 1
	}, cheaterChunk)
}

// MoveCourier is a correct wakeup algorithm that exercises move and swap:
// each process publishes its knowledge with swap on its own register, uses
// move to copy its register into a shared relay slot, and accumulates
// knowledge by reading the relay and other processes' registers through an
// LL/SC set register. It is deliberately operation-diverse so that the
// adversary's move phase (and the secretive schedule) is exercised by a
// real algorithm; its step complexity is O(n).
func MoveCourier() machine.Algorithm {
	const (
		relay = 1 // moves land here
		acc   = 0 // LL/SC set register
	)
	ownReg := func(pid int) int { return 10 + pid }
	return machine.NewCompiled("wakeup/move-courier", func(e *machine.Env) shmem.Value {
		// Publish own id.
		var own shmem.PidBits
		own.Add(e.ID())
		e.Swap(ownReg(e.ID()), EncodeBits(own))
		// Copy own register into the relay: the move phase of each round
		// now has real work, scheduled secretively by the adversary.
		e.Move(ownReg(e.ID()), relay)
		// Accumulate: merge what the relay shows, then LL/SC-insert into
		// the shared set register until our insertion lands.
		var know shmem.PidBits
		know.Add(e.ID())
		DecodeBits(e.Read(relay), nil).Each(know.Add)
		var set shmem.PidBits
		for {
			set = DecodeBits(e.LL(acc), set)
			set.Each(know.Add)
			if ok, _ := e.SC(acc, EncodeBits(know)); ok {
				break
			}
		}
		if know.Count() == e.N() {
			return 1
		}
		// One last look: the set register may have completed meanwhile;
		// but only claim victory if we were the completing writer.
		return 0
	}, moveCourierChunk)
}
