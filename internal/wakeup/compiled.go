package wakeup

import (
	"jayanti98/internal/shmem"
	"jayanti98/internal/vmachine"
)

// This file holds the bytecode twins of the wakeup algorithms: each
// direct-style body in wakeup.go is re-expressed as a vmachine.Program and
// compiled once at package init. The constructors hand both forms to
// machine.NewCompiled, so a Machine can run either engine; package lockstep
// proves the two forms step-equivalent — identical actions, responses,
// digests and return values over every schedule it explores.
//
// The re-expression must preserve the yield sequence exactly, including
// evaluation order (Go arguments evaluate left to right) and the dynamic
// types of every value stored to shared memory or returned. Pid-set
// bookkeeping goes through natives that call the same EncodeBits/DecodeBits
// codecs as the bodies, so register contents — and panic messages on
// corrupt registers — are bit-identical across engines.

// registerPidsNatives installs the pid-set natives. It runs once, from the
// compiled-chunk initializer below.
func registerPidsNatives() {
	// pids.decode(dst, v): DecodeBits(v, dst) — clears dst (nil allowed)
	// and parses the register rendering v into it.
	vmachine.RegisterNative("pids.decode", func(_, _ int, args []vmachine.Value) vmachine.Value {
		return vmachine.Set(DecodeBits(args[1].Box(), setArg(args[0])))
	})
	// pids.encode(set): the canonical register rendering of set.
	vmachine.RegisterNative("pids.encode", func(_, _ int, args []vmachine.Value) vmachine.Value {
		return vmachine.Str(EncodeBits(setArg(args[0])))
	})
	// pids.add(set, pid): set ∪ {pid} in place (nil set allowed).
	vmachine.RegisterNative("pids.add", func(_, _ int, args []vmachine.Value) vmachine.Value {
		s := setArg(args[0])
		s.Add(args[1].AsInt())
		return vmachine.Set(s)
	})
	// pids.union(dst, src): dst ∪ src in place (nil dst allowed).
	vmachine.RegisterNative("pids.union", func(_, _ int, args []vmachine.Value) vmachine.Value {
		d := setArg(args[0])
		setArg(args[1]).Each(func(p int) { d.Add(p) })
		return vmachine.Set(d)
	})
	// pids.count(set): |set|.
	vmachine.RegisterNative("pids.count", func(_, _ int, args []vmachine.Value) vmachine.Value {
		return vmachine.Int(setArg(args[0]).Count())
	})
}

// setArg reads a set-valued native argument; a nil value is the empty set
// (mirroring `var set shmem.PidBits` in the direct-style bodies).
func setArg(v vmachine.Value) shmem.PidBits {
	if v.Kind == vmachine.KNil {
		return nil
	}
	return v.Set
}

// Expression shorthands for the programs below.
func vInt(v int) vmachine.Expr       { return vmachine.ConstE{V: vmachine.Int(v)} }
func vNil() vmachine.Expr            { return vmachine.ConstE{V: vmachine.Nil()} }
func vVar(name string) vmachine.Expr { return vmachine.VarE{Name: name} }

func setRegisterProgram() *vmachine.Program {
	// var set PidBits
	// for { set = decode(LL(0), set); set.Add(id)
	//       if ok, _ := SC(0, encode(set)); ok { return count==n ? 1 : 0 } }
	return &vmachine.Program{
		Name: "wakeup/set-register",
		Body: []vmachine.Stmt{
			vmachine.AssignS{Name: "set", E: vNil()},
			vmachine.LoopS{Body: []vmachine.Stmt{
				vmachine.AssignS{Name: "set", E: vmachine.CallE{Fn: "pids.decode", Args: []vmachine.Expr{vVar("set"), vmachine.LLE{Reg: vInt(setReg)}}}},
				vmachine.AssignS{Name: "set", E: vmachine.CallE{Fn: "pids.add", Args: []vmachine.Expr{vVar("set"), vmachine.SelfE{}}}},
				vmachine.SCS{Ok: "ok", Reg: vInt(setReg), Val: vmachine.CallE{Fn: "pids.encode", Args: []vmachine.Expr{vVar("set")}}},
				vmachine.IfS{Cond: vVar("ok"), Then: []vmachine.Stmt{
					vmachine.IfS{
						Cond: vmachine.EqE{A: vmachine.CallE{Fn: "pids.count", Args: []vmachine.Expr{vVar("set")}}, B: vmachine.NProcsE{}},
						Then: []vmachine.Stmt{vmachine.ReturnS{E: vInt(1)}},
					},
					vmachine.ReturnS{E: vInt(0)},
				}},
			}},
		},
	}
}

func doubleRegisterProgram() *vmachine.Program {
	// reg := toss & 1; insert id into register reg by LL/SC retry;
	// union := decode(read(0)) ∪ decode(read(1)); return |union|==n ? 1 : 0
	return &vmachine.Program{
		Name: "wakeup/double-register",
		Body: []vmachine.Stmt{
			vmachine.AssignS{Name: "reg", E: vmachine.BandE{A: vmachine.TossE{}, B: vmachine.ConstE{V: vmachine.I64(1)}}},
			vmachine.AssignS{Name: "set", E: vNil()},
			vmachine.LoopS{Body: []vmachine.Stmt{
				vmachine.AssignS{Name: "set", E: vmachine.CallE{Fn: "pids.decode", Args: []vmachine.Expr{vVar("set"), vmachine.LLE{Reg: vVar("reg")}}}},
				vmachine.AssignS{Name: "set", E: vmachine.CallE{Fn: "pids.add", Args: []vmachine.Expr{vVar("set"), vmachine.SelfE{}}}},
				vmachine.SCS{Ok: "ok", Reg: vVar("reg"), Val: vmachine.CallE{Fn: "pids.encode", Args: []vmachine.Expr{vVar("set")}}},
				vmachine.IfS{Cond: vVar("ok"), Then: []vmachine.Stmt{vmachine.BreakS{}}},
			}},
			vmachine.AssignS{Name: "union", E: vmachine.CallE{Fn: "pids.decode", Args: []vmachine.Expr{vNil(), vmachine.ReadE{Reg: vInt(0)}}}},
			vmachine.AssignS{Name: "other", E: vmachine.CallE{Fn: "pids.decode", Args: []vmachine.Expr{vNil(), vmachine.ReadE{Reg: vInt(1)}}}},
			vmachine.AssignS{Name: "union", E: vmachine.CallE{Fn: "pids.union", Args: []vmachine.Expr{vVar("union"), vVar("other")}}},
			vmachine.IfS{
				Cond: vmachine.EqE{A: vmachine.CallE{Fn: "pids.count", Args: []vmachine.Expr{vVar("union")}}, B: vmachine.NProcsE{}},
				Then: []vmachine.Stmt{vmachine.ReturnS{E: vInt(1)}},
			},
			vmachine.ReturnS{E: vInt(0)},
		},
	}
}

func cheaterProgram() *vmachine.Program {
	// swap(id, 1); return 1
	return &vmachine.Program{
		Name: "wakeup/cheater",
		Body: []vmachine.Stmt{
			vmachine.DoS{E: vmachine.SwapE{Reg: vmachine.SelfE{}, Val: vInt(1)}},
			vmachine.ReturnS{E: vInt(1)},
		},
	}
}

func moveCourierProgram() *vmachine.Program {
	// See MoveCourier in wakeup.go; own register is 10+id, relay is R1,
	// accumulator is R0.
	ownReg := vmachine.AddE{A: vInt(10), B: vmachine.SelfE{}}
	return &vmachine.Program{
		Name: "wakeup/move-courier",
		Body: []vmachine.Stmt{
			vmachine.AssignS{Name: "own", E: vmachine.CallE{Fn: "pids.add", Args: []vmachine.Expr{vNil(), vmachine.SelfE{}}}},
			vmachine.DoS{E: vmachine.SwapE{Reg: ownReg, Val: vmachine.CallE{Fn: "pids.encode", Args: []vmachine.Expr{vVar("own")}}}},
			vmachine.MoveS{Src: ownReg, Dst: vInt(1)},
			vmachine.AssignS{Name: "know", E: vmachine.CallE{Fn: "pids.add", Args: []vmachine.Expr{vNil(), vmachine.SelfE{}}}},
			vmachine.AssignS{Name: "relay", E: vmachine.CallE{Fn: "pids.decode", Args: []vmachine.Expr{vNil(), vmachine.ReadE{Reg: vInt(1)}}}},
			vmachine.AssignS{Name: "know", E: vmachine.CallE{Fn: "pids.union", Args: []vmachine.Expr{vVar("know"), vVar("relay")}}},
			vmachine.AssignS{Name: "set", E: vNil()},
			vmachine.LoopS{Body: []vmachine.Stmt{
				vmachine.AssignS{Name: "set", E: vmachine.CallE{Fn: "pids.decode", Args: []vmachine.Expr{vVar("set"), vmachine.LLE{Reg: vInt(0)}}}},
				vmachine.AssignS{Name: "know", E: vmachine.CallE{Fn: "pids.union", Args: []vmachine.Expr{vVar("know"), vVar("set")}}},
				vmachine.SCS{Ok: "ok", Reg: vInt(0), Val: vmachine.CallE{Fn: "pids.encode", Args: []vmachine.Expr{vVar("know")}}},
				vmachine.IfS{Cond: vVar("ok"), Then: []vmachine.Stmt{vmachine.BreakS{}}},
			}},
			vmachine.IfS{
				Cond: vmachine.EqE{A: vmachine.CallE{Fn: "pids.count", Args: []vmachine.Expr{vVar("know")}}, B: vmachine.NProcsE{}},
				Then: []vmachine.Stmt{vmachine.ReturnS{E: vInt(1)}},
			},
			vmachine.ReturnS{E: vInt(0)},
		},
	}
}

// compileChunks registers the natives and compiles every program; running
// it from the var initializer below guarantees registration precedes
// compilation regardless of file order.
func compileChunks() (setRegC, doubleRegC, cheaterC, courierC *vmachine.Chunk) {
	registerPidsNatives()
	return vmachine.MustCompile(setRegisterProgram()),
		vmachine.MustCompile(doubleRegisterProgram()),
		vmachine.MustCompile(cheaterProgram()),
		vmachine.MustCompile(moveCourierProgram())
}

var setRegisterChunk, doubleRegisterChunk, cheaterChunk, moveCourierChunk = compileChunks()
