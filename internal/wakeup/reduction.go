package wakeup

import (
	"fmt"
	"math/big"

	"jayanti98/internal/machine"
	"jayanti98/internal/objtype"
)

// ObjectClient is a shared object as seen by one process: Invoke performs
// one operation on the object on behalf of the process behind p. The
// lower-bound experiments pass a universal-construction-backed object
// (package universal), so every Invoke expands into LL/SC/validate steps
// that the adversary schedules; unit tests may pass a simpler client.
type ObjectClient interface {
	// Invoke applies op to the shared object and returns its response.
	Invoke(p machine.Port, op objtype.Op) objtype.Value
}

// The reductions below prove the premise of Corollary 6.1 for each type of
// Theorem 6.2: wakeup is solvable with at most two operations per process
// on a single linearizable object of the type. Combined with Theorem 6.1,
// any LL/SC/validate/swap/move implementation of such an object must cost
// Ω(log n) shared accesses per operation in the worst case.

// FetchIncrement returns the wakeup algorithm via a fetch&increment object
// (initially 0, k ≥ log₂ n bits): each process increments once; the process
// that receives n−1 — the last incrementer — returns 1.
func FetchIncrement(obj ObjectClient) machine.Algorithm {
	return machine.New("wakeup/fetch&increment", func(e *machine.Env) objtype.Value {
		resp := obj.Invoke(e, objtype.Op{Name: objtype.OpFetchIncrement})
		if resp == objtype.HexUint(uint64(e.N()-1)) {
			return 1
		}
		return 0
	})
}

// FetchAnd returns the wakeup algorithm via a k ≥ n bit fetch&and object
// (initially all ones): process i ANDs a mask with bit i cleared; the
// process whose response has, among the first n bits, zeroes everywhere
// except its own bit — the last ANDer — returns 1.
func FetchAnd(obj ObjectClient) machine.Algorithm {
	return machine.New("wakeup/fetch&and", func(e *machine.Env) objtype.Value {
		n := e.N()
		mask := objtype.AllOnes(n)
		mask.SetBit(mask, e.ID(), 0)
		resp := obj.Invoke(e, objtype.Op{Name: objtype.OpFetchAnd, Arg: objtype.Hex(mask)})
		got := lowBits(resp, n)
		want := new(big.Int).Lsh(big.NewInt(1), uint(e.ID()))
		if got.Cmp(want) == 0 {
			return 1
		}
		return 0
	})
}

// FetchOr returns the wakeup algorithm via a k ≥ n bit fetch&or object
// (initially 0): process i ORs in bit i; the process whose response already
// has every first-n bit set except its own returns 1.
func FetchOr(obj ObjectClient) machine.Algorithm {
	return machine.New("wakeup/fetch&or", func(e *machine.Env) objtype.Value {
		n := e.N()
		bit := new(big.Int).Lsh(big.NewInt(1), uint(e.ID()))
		resp := obj.Invoke(e, objtype.Op{Name: objtype.OpFetchOr, Arg: objtype.Hex(bit)})
		want := objtype.AllOnes(n)
		want.SetBit(want, e.ID(), 0)
		if lowBits(resp, n).Cmp(want) == 0 {
			return 1
		}
		return 0
	})
}

// FetchComplement returns the wakeup algorithm via a k ≥ n bit
// fetch&complement object (initially 0): process i flips bit i; the winner
// condition is the same as fetch&or's, since each bit flips exactly once.
func FetchComplement(obj ObjectClient) machine.Algorithm {
	return machine.New("wakeup/fetch&complement", func(e *machine.Env) objtype.Value {
		n := e.N()
		resp := obj.Invoke(e, objtype.Op{Name: objtype.OpFetchComplement, Arg: e.ID()})
		want := objtype.AllOnes(n)
		want.SetBit(want, e.ID(), 0)
		if lowBits(resp, n).Cmp(want) == 0 {
			return 1
		}
		return 0
	})
}

// FetchMultiply returns the wakeup algorithm via an n-bit fetch&multiply
// object (initially 1): each process multiplies by 2; the j-th multiplier's
// response is 2^(j−1) mod 2^n, so exactly the n-th (last) multiplier
// receives 2^(n−1) — the value whose doubling wraps to 0 — and returns 1.
// (The paper's preliminary version states the winner condition as
// "response = 0", which no process ever receives with k = n: the n-th
// response is 2^(n−1) and the state wraps to 0 only after it. We use the
// corrected, equivalent-in-spirit condition.)
func FetchMultiply(obj ObjectClient) machine.Algorithm {
	return machine.New("wakeup/fetch&multiply", func(e *machine.Env) objtype.Value {
		n := e.N()
		resp := obj.Invoke(e, objtype.Op{Name: objtype.OpFetchMultiply, Arg: objtype.HexUint(2)})
		want := new(big.Int).Lsh(big.NewInt(1), uint(n-1))
		if objtype.ParseHex(respHex(resp)).Cmp(want) == 0 {
			return 1
		}
		return 0
	})
}

// Queue returns the wakeup algorithm via a queue initially holding
// 1, 2, ..., n with n at the rear: each process dequeues once; the process
// that receives item n — necessarily the last dequeuer — returns 1.
func Queue(obj ObjectClient) machine.Algorithm {
	return machine.New("wakeup/queue", func(e *machine.Env) objtype.Value {
		resp := obj.Invoke(e, objtype.Op{Name: objtype.OpDequeue})
		if resp == e.N() {
			return 1
		}
		return 0
	})
}

// Stack returns the wakeup algorithm via a stack initially holding n items
// with item n at the bottom: each process pops once; the process that
// receives the bottom item — the last popper — returns 1.
func Stack(obj ObjectClient) machine.Algorithm {
	return machine.New("wakeup/stack", func(e *machine.Env) objtype.Value {
		resp := obj.Invoke(e, objtype.Op{Name: objtype.OpPop})
		if resp == e.N() {
			return 1
		}
		return 0
	})
}

// ReadIncrement returns the two-operation wakeup algorithm via a k ≥ log₂ n
// bit read/increment counter (initially 0): each process increments, then
// reads; a process that reads n returns 1. The last process to perform its
// read necessarily sees n, so condition (2) holds; a read of n implies all
// n increments happened, so condition (3) holds. Because the winner spends
// its ≥ log₄ n budget over two object operations, the per-operation lower
// bound from this reduction is (log₄ n)/2.
func ReadIncrement(obj ObjectClient) machine.Algorithm {
	return machine.New("wakeup/read-increment", func(e *machine.Env) objtype.Value {
		obj.Invoke(e, objtype.Op{Name: objtype.OpIncrement})
		resp := obj.Invoke(e, objtype.Op{Name: objtype.OpRead})
		if resp == objtype.HexUint(uint64(e.N())) {
			return 1
		}
		return 0
	})
}

// TAS returns the wakeup algorithm via a one-shot test&set object — the
// algorithm zoo's reduction (internal/algos, DESIGN §15). Each process
// performs test&set once and returns 1 iff it lost: a loser's response
// proves the winner's operation linearized before its own, so at n = 2 the
// loser knows *every* other process has taken a step and conditions (2)
// and (3) both hold. The reduction is sound ONLY at n ≤ 2 — a loser among
// n ≥ 3 processes knows one other process ran, not all of them — which is
// the operational face of test&set not being perturbable: Theorem 6.1 does
// not apply to TAS implementations beyond the trivial log₄ 2 bound, and
// TestTASReductionUnsoundBeyondTwo exhibits the condition-(3) violation at
// n = 3. (At n = 1 the lone process returns 1 unconditionally; its own
// operation is the step condition (3) asks for.)
func TAS(obj ObjectClient) machine.Algorithm {
	return machine.New("wakeup/test&set", func(e *machine.Env) objtype.Value {
		resp := obj.Invoke(e, objtype.Op{Name: objtype.OpTestAndSet})
		if e.N() == 1 {
			return 1
		}
		return resp
	})
}

// TASReduction is the ReductionSpec for the test&set reduction. It is
// deliberately NOT included in Reductions(): those are the Theorem 6.2
// reductions, valid at every n, and experiment sweeps iterate them at
// n ≫ 2. Callers of this spec (experiment E13, the wakeup tests) must
// respect its two-process horizon.
func TASReduction() ReductionSpec {
	return ReductionSpec{
		Name:          "test&set",
		Type:          func(n int) objtype.Type { return objtype.NewTAS() },
		Build:         TAS,
		OpsPerProcess: 1,
	}
}

// lowBits interprets a hex-string response and masks it to its low n bits.
func lowBits(resp objtype.Value, n int) *big.Int {
	v := objtype.ParseHex(respHex(resp))
	return v.And(v, objtype.AllOnes(n))
}

func respHex(resp objtype.Value) string {
	s, ok := resp.(string)
	if !ok {
		panic(fmt.Sprintf("wakeup: object response %v (%T) is not a hex string", resp, resp))
	}
	return s
}

// ReductionSpec names one Theorem 6.2 reduction and how to build it.
type ReductionSpec struct {
	// Name is the reduction's short name ("fetch&increment", "queue", ...).
	Name string
	// Type returns the object type instance for an n-process system.
	Type func(n int) objtype.Type
	// Build wraps an ObjectClient into the wakeup algorithm.
	Build func(obj ObjectClient) machine.Algorithm
	// OpsPerProcess is the number of object operations each process
	// performs (1, except 2 for read/increment).
	OpsPerProcess int
}

// Reductions lists all Theorem 6.2 reductions in the paper's order.
func Reductions() []ReductionSpec {
	return []ReductionSpec{
		{
			Name:          "fetch&increment",
			Type:          func(n int) objtype.Type { return objtype.NewFetchIncrement(bitsFor(n)) },
			Build:         FetchIncrement,
			OpsPerProcess: 1,
		},
		{
			Name:          "fetch&and",
			Type:          func(n int) objtype.Type { return objtype.NewFetchAnd(n) },
			Build:         FetchAnd,
			OpsPerProcess: 1,
		},
		{
			Name:          "fetch&or",
			Type:          func(n int) objtype.Type { return objtype.NewFetchOr(n) },
			Build:         FetchOr,
			OpsPerProcess: 1,
		},
		{
			Name:          "fetch&complement",
			Type:          func(n int) objtype.Type { return objtype.NewFetchComplement(n) },
			Build:         FetchComplement,
			OpsPerProcess: 1,
		},
		{
			Name:          "fetch&multiply",
			Type:          func(n int) objtype.Type { return objtype.NewFetchMultiply(n) },
			Build:         FetchMultiply,
			OpsPerProcess: 1,
		},
		{
			Name:          "queue",
			Type:          func(n int) objtype.Type { return objtype.NewWakeupQueue() },
			Build:         Queue,
			OpsPerProcess: 1,
		},
		{
			Name:          "stack",
			Type:          func(n int) objtype.Type { return objtype.NewWakeupStack() },
			Build:         Stack,
			OpsPerProcess: 1,
		},
		{
			Name:          "read-increment",
			Type:          func(n int) objtype.Type { return objtype.NewReadIncrement(bitsFor(n + 1)) },
			Build:         ReadIncrement,
			OpsPerProcess: 2,
		},
	}
}

// bitsFor returns the number of bits needed to represent values up to n−1,
// at least 1 (k ≥ log₂ n for the counter-based reductions).
func bitsFor(n int) int {
	bits := 1
	for (1 << bits) < n {
		bits++
	}
	return bits
}
