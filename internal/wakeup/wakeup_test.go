package wakeup

import (
	"sync"
	"testing"

	"jayanti98/internal/core"
	"jayanti98/internal/machine"
	"jayanti98/internal/objtype"
	"jayanti98/internal/sched"
	"jayanti98/internal/shmem"
)

// llscClient is a minimal lock-free linearizable object for testing the
// reductions: the whole object state lives in one unbounded register,
// updated with an LL/SC retry loop (each failure is caused by another
// process's success, so total work is bounded in finite workloads).
type llscClient struct {
	typ objtype.Type
	reg int
}

func (c llscClient) Invoke(p machine.Port, op objtype.Op) objtype.Value {
	for {
		v := p.LL(c.reg)
		if v == nil {
			v = c.typ.Init(p.N())
		}
		next, resp := c.typ.Apply(v, op)
		if ok, _ := p.SC(c.reg, next); ok {
			return resp
		}
	}
}

func adversaryRun(t *testing.T, alg machine.Algorithm, n int) *core.AllRun {
	t.Helper()
	run, err := core.RunAll(alg, n, machine.ZeroTosses, core.Config{})
	if err != nil {
		t.Fatalf("%s n=%d: %v", alg.Name(), n, err)
	}
	return run
}

// checkCorrectWakeup runs alg under the adversary and asserts the full
// battery: spec conditions, Theorem 6.1's bound, Lemma 5.1, and
// indistinguishability for every process's knowledge set.
func checkCorrectWakeup(t *testing.T, alg machine.Algorithm, n int) *core.AllRun {
	t.Helper()
	run := adversaryRun(t, alg, n)
	if err := core.CheckWakeupRun(run); err != nil {
		t.Fatalf("%s n=%d: spec: %v", alg.Name(), n, err)
	}
	if err := core.VerifyTheorem61(run); err != nil {
		t.Fatalf("%s n=%d: theorem 6.1: %v", alg.Name(), n, err)
	}
	if err := core.CheckLemma51(run); err != nil {
		t.Fatalf("%s n=%d: lemma 5.1: %v", alg.Name(), n, err)
	}
	catch, err := core.CatchFastWakeup(run)
	if err != nil {
		t.Fatalf("%s n=%d: catch: %v", alg.Name(), n, err)
	}
	if catch != nil {
		t.Fatalf("%s n=%d: correct algorithm caught: %v", alg.Name(), n, catch)
	}
	return run
}

func TestEncodeDecodePids(t *testing.T) {
	set := map[int]bool{3: true, 0: true, 11: true}
	enc := EncodePids(set)
	if enc != "0,3,11" {
		t.Fatalf("EncodePids = %q", enc)
	}
	dec := DecodePids(enc)
	if len(dec) != 3 || !dec[0] || !dec[3] || !dec[11] {
		t.Fatalf("DecodePids = %v", dec)
	}
	if len(DecodePids(nil)) != 0 || len(DecodePids("")) != 0 {
		t.Fatal("empty decode broken")
	}
}

func TestDecodePidsCorruptPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("corrupt register must panic")
		}
	}()
	DecodePids("1,x")
}

func TestSetRegisterUnderAdversary(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		checkCorrectWakeup(t, SetRegister(), n)
	}
}

func TestSetRegisterAdversaryForcesLinearSteps(t *testing.T) {
	// The adversary grants one successful SC per round, so the last
	// process needs ~n rounds: set-register pays Θ(n), far above log₄ n.
	run := adversaryRun(t, SetRegister(), 16)
	maxSteps, _ := run.MaxSteps()
	if maxSteps < 16 {
		t.Fatalf("adversary forced only %d steps on set-register with n=16", maxSteps)
	}
}

func TestSetRegisterExactlyOneWinner(t *testing.T) {
	run := adversaryRun(t, SetRegister(), 12)
	if w := core.WakeupWinners(run.Returns); len(w) != 1 {
		t.Fatalf("winners = %v, want exactly 1", w)
	}
}

func TestDoubleRegisterUnderAdversary(t *testing.T) {
	// Use a toss assignment that splits processes across both registers.
	ta := func(pid, j int) int64 { return int64(pid % 2) }
	for _, n := range []int{2, 4, 8, 16} {
		run, err := core.RunAll(DoubleRegister(), n, ta, core.Config{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := core.CheckWakeupRun(run); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := core.VerifyTheorem61(run); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := core.CheckLemma51(run); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestDoubleRegisterManyTossAssignments(t *testing.T) {
	// The randomized bound must hold for every toss assignment (Theorem
	// 6.1's expectation is over the algorithm's coins; the adversary may
	// not predict them but the bound holds pointwise here).
	for seed := 0; seed < 20; seed++ {
		seed := seed
		ta := func(pid, j int) int64 { return int64((pid*31 + j*17 + seed) % 2) }
		run, err := core.RunAll(DoubleRegister(), 8, ta, core.Config{})
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		if err := core.CheckWakeupRun(run); err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		if err := core.VerifyTheorem61(run); err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
	}
}

func TestMoveCourierUnderAdversary(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		run := checkCorrectWakeup(t, MoveCourier(), n)
		// The adversary's move phase must actually have been exercised.
		moved := false
		for _, round := range run.Rounds {
			if len(round.MovePlan) > 0 {
				moved = true
				break
			}
		}
		if !moved {
			t.Fatalf("n=%d: MoveCourier never reached the move phase", n)
		}
	}
}

func TestCheaterIsCaught(t *testing.T) {
	run := adversaryRun(t, Cheater(), 32)
	catch, err := core.CatchFastWakeup(run)
	if err != nil {
		t.Fatal(err)
	}
	if catch == nil {
		t.Fatal("cheater must be caught at n=32")
	}
	if got := catch.S.Len(); got > 4 {
		t.Fatalf("|UP| after 1 step = %d, want ≤ 4", got)
	}
	if len(catch.NeverStepped) < 32-4 {
		t.Fatalf("NeverStepped = %d processes, want ≥ 28", len(catch.NeverStepped))
	}
}

func TestCheaterPassesAtTinyN(t *testing.T) {
	// For n ≤ 4, one step satisfies 4^1 ≥ n: the bound has no bite and the
	// cheater cannot be caught by step counting.
	run := adversaryRun(t, Cheater(), 3)
	catch, err := core.CatchFastWakeup(run)
	if err != nil {
		t.Fatal(err)
	}
	if catch != nil {
		t.Fatalf("no catch expected at n=3, got %v", catch)
	}
}

func TestWakeupUnderRandomSchedules(t *testing.T) {
	// Conditions (1) and (2) must hold under arbitrary schedules, not just
	// the adversary's lockstep rounds.
	algs := []machine.Algorithm{SetRegister(), MoveCourier()}
	for _, alg := range algs {
		for seed := int64(0); seed < 10; seed++ {
			mem := shmem.New()
			res, err := sched.Execute(alg, 8, mem, sched.NewRandom(seed), machine.ZeroTosses, 100000)
			if err != nil {
				t.Fatalf("%s seed=%d: %v", alg.Name(), seed, err)
			}
			winners := 0
			for _, v := range res.Returns {
				if v == 1 {
					winners++
				}
			}
			if winners == 0 {
				t.Fatalf("%s seed=%d: no winner in a terminating run", alg.Name(), seed)
			}
		}
	}
}

func TestWakeupUnderSequentialSchedule(t *testing.T) {
	// Solo-ish schedule: processes run one after another to completion.
	// The last process must detect wakeup.
	mem := shmem.New()
	res, err := sched.Execute(SetRegister(), 6, mem, sched.Sequential{}, machine.ZeroTosses, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Returns[5] != 1 {
		t.Fatalf("last process returned %v, want 1", res.Returns[5])
	}
	for pid := 0; pid < 5; pid++ {
		if res.Returns[pid] != 0 {
			t.Fatalf("p%d returned %v, want 0", pid, res.Returns[pid])
		}
	}
}

func TestAllReductionsUnderAdversary(t *testing.T) {
	for _, spec := range Reductions() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			for _, n := range []int{1, 2, 4, 8, 16} {
				client := llscClient{typ: spec.Type(n), reg: 0}
				alg := spec.Build(client)
				run := adversaryRun(t, alg, n)
				if err := core.CheckWakeupRun(run); err != nil {
					t.Fatalf("n=%d: %v", n, err)
				}
				if err := core.VerifyTheorem61(run); err != nil {
					t.Fatalf("n=%d: %v", n, err)
				}
				if err := core.CheckLemma51(run); err != nil {
					t.Fatalf("n=%d: %v", n, err)
				}
			}
		})
	}
}

func TestReductionsExactlyOneWinnerSingleOpTypes(t *testing.T) {
	// For the single-operation reductions the winner is unique (the last
	// object operation in linearization order).
	for _, spec := range Reductions() {
		if spec.OpsPerProcess != 1 {
			continue
		}
		client := llscClient{typ: spec.Type(8), reg: 0}
		run := adversaryRun(t, spec.Build(client), 8)
		if w := core.WakeupWinners(run.Returns); len(w) != 1 {
			t.Fatalf("%s: winners = %v, want exactly 1", spec.Name, w)
		}
	}
}

func TestReductionsUnderRandomSchedules(t *testing.T) {
	for _, spec := range Reductions() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			for seed := int64(0); seed < 5; seed++ {
				client := llscClient{typ: spec.Type(6), reg: 0}
				mem := shmem.New()
				res, err := sched.Execute(spec.Build(client), 6, mem, sched.NewRandom(seed), machine.ZeroTosses, 100000)
				if err != nil {
					t.Fatal(err)
				}
				winners := 0
				for _, v := range res.Returns {
					if v == 1 {
						winners++
					}
				}
				if winners == 0 {
					t.Fatalf("seed=%d: no winner", seed)
				}
			}
		})
	}
}

func TestReductionOpsPerProcessBudget(t *testing.T) {
	// Corollary 6.1 requires each process to apply at most k (here ≤ 2)
	// operations on the object. Count object invocations by counting the
	// llscClient's LL steps: each Invoke performs ≥ 1 LL on the object
	// register and nothing else touches it.
	for _, spec := range Reductions() {
		client := countingClient{inner: llscClient{typ: spec.Type(8), reg: 0}, calls: make(map[int]int)}
		run := adversaryRun(t, spec.Build(&client), 8)
		if !run.Terminated() {
			t.Fatalf("%s did not terminate", spec.Name)
		}
		for pid, calls := range client.calls {
			if calls > spec.OpsPerProcess {
				t.Fatalf("%s: p%d performed %d object ops, budget %d", spec.Name, pid, calls, spec.OpsPerProcess)
			}
		}
	}
}

// countingClient wraps a client and counts Invoke calls per process.
// Machine goroutines may overlap between scheduler steps, so the counter
// map is mutex-guarded.
type countingClient struct {
	inner llscClient
	mu    sync.Mutex
	calls map[int]int
}

func (c *countingClient) Invoke(p machine.Port, op objtype.Op) objtype.Value {
	c.mu.Lock()
	c.calls[p.ID()]++
	c.mu.Unlock()
	return c.inner.Invoke(p, op)
}

func TestBitsFor(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10}
	for n, want := range cases {
		if got := bitsFor(n); got != want {
			t.Errorf("bitsFor(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestCountingNetworkWakeupUnderAdversary(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16, 32} {
		checkCorrectWakeup(t, CountingNetwork(n), n)
	}
}

func TestCountingNetworkWakeupUnderRandomSchedules(t *testing.T) {
	const n = 8
	for seed := int64(0); seed < 8; seed++ {
		mem := shmem.New()
		res, err := sched.Execute(CountingNetwork(n), n, mem, sched.NewRandom(seed), machine.ZeroTosses, 1_000_000)
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		winners := 0
		for _, v := range res.Returns {
			if v == 1 {
				winners++
			}
		}
		if winners != 1 {
			t.Fatalf("seed=%d: %d winners, want exactly 1 (values are distinct)", seed, winners)
		}
	}
}

// TestTASReductionWakeupAtTwo: within its horizon (n ≤ 2) the test&set
// reduction is a correct wakeup algorithm and satisfies Theorem 6.1's
// conclusion under the adversary.
func TestTASReductionWakeupAtTwo(t *testing.T) {
	spec := TASReduction()
	for _, n := range []int{1, 2} {
		client := llscClient{typ: spec.Type(n), reg: 0}
		run := adversaryRun(t, spec.Build(client), n)
		if err := core.CheckWakeupRun(run); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := core.VerifyTheorem61(run); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

// TestTASReductionUnsoundBeyondTwo exhibits why TASReduction stays out of
// Reductions(): at n = 3 a sequential schedule lets p1 lose to p0 and
// return 1 while p2 has taken no step at all — wakeup condition (3) is
// violated, so no Ω(log n) bound for n ≥ 3 follows from test&set via this
// route. This is the operational face of TAS not being perturbable (the
// object's responses stop carrying information once the state is set).
func TestTASReductionUnsoundBeyondTwo(t *testing.T) {
	spec := TASReduction()
	client := llscClient{typ: spec.Type(3), reg: 0}
	mem := shmem.New()
	res, err := sched.Execute(spec.Build(client), 3, mem, sched.Sequential{}, machine.ZeroTosses, 100000)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential runs p0 to completion, then p1, then p2: when p1 returns,
	// p2 is still stepless.
	if res.Returns[0] != 0 {
		t.Fatalf("p0 (winner) returned %v, want 0", res.Returns[0])
	}
	if res.Returns[1] != 1 {
		t.Fatalf("p1 (loser) returned %v, want 1 — the condition-(3) violation this test documents", res.Returns[1])
	}
}
