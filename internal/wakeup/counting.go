package wakeup

import (
	"jayanti98/internal/counting"
	"jayanti98/internal/machine"
	"jayanti98/internal/shmem"
)

// CountingNetwork returns a wakeup algorithm built on a bitonic counting
// network (package counting) of width ≥ n: every process draws one value
// from the network-backed counter; the values issued to n processes are
// exactly 0..n−1, so the process that draws n−1 — necessarily after every
// other token entered the network — returns 1.
//
// The interest of this algorithm is the trade it demonstrates against the
// Theorem 6.2 implementations: it exploits counter semantics instead of
// going through an oblivious universal construction, needs only O(log n)
// bit registers (balancer toggles and small counters) instead of
// unbounded log-carrying registers, and pays O(log² n) balancer steps per
// traversal — sitting strictly between the paper's Ω(log n) lower bound
// and the O(log² n) closed-object construction of Chandra, Jayanti and
// Tan cited in Section 2.
func CountingNetwork(n int) machine.Algorithm {
	nw := counting.New(n, 0)
	return machine.New("wakeup/counting-network", func(e *machine.Env) shmem.Value {
		if nw.Next(e) == e.N()-1 {
			return 1
		}
		return 0
	})
}
