package machine

import (
	"jayanti98/internal/shmem"
	"jayanti98/internal/vmachine"
)

// vmDriver is the bytecode engine: the process is a vmachine.Exec stepped
// in-line on the scheduler's goroutine. No goroutine, no channels — next()
// reads the yield the last resume produced, and resume calls run the chunk
// synchronously to its next yield point. The Machine above this driver does
// all recording, so a VM machine's digests, counts and terminal state are
// computed by exactly the same code as a goroutine machine's.
type vmDriver struct {
	x *vmachine.Exec
	// queued holds the yield produced by the last resume (or Start), not
	// yet consumed by next(). hasQueued is false both before the first
	// next() and while an action is pending with the scheduler.
	queued    vmachine.Yield
	hasQueued bool
}

func startVMDriver(chunk *vmachine.Chunk, id, n int) *vmDriver {
	return &vmDriver{x: vmachine.NewExec(chunk, id, n)}
}

func actionOf(y vmachine.Yield) Action {
	switch y.Kind {
	case vmachine.YToss:
		return Action{Kind: ActToss}
	case vmachine.YOp:
		return Action{Kind: ActOp, Op: y.Op}
	case vmachine.YReturn:
		return Action{Kind: ActReturn, Ret: y.Ret}
	default:
		return Action{Kind: ActCrash, Ret: y.Ret}
	}
}

func (d *vmDriver) next() Action {
	if d.hasQueued {
		d.hasQueued = false
		return actionOf(d.queued)
	}
	return actionOf(d.x.Start())
}

func (d *vmDriver) toss(outcome int64) {
	d.queued = d.x.ResumeToss(outcome)
	d.hasQueued = true
}

func (d *vmDriver) resp(r shmem.Response) {
	d.queued = d.x.ResumeOp(r)
	d.hasQueued = true
}

func (d *vmDriver) close() {}
