// Package machine implements the process model of Section 3 of the paper.
//
// A process is a state machine whose next step is either (1) a local coin
// toss, whose outcome is drawn from COIN-RANGE, or (2) an operation on
// shared memory, after which it receives a response and changes state; a
// process in a termination state has no next step.
//
// Algorithms are written in natural direct style as a function of an Env
// (see Body); the package turns each into a resumable Machine that a
// scheduler single-steps. The scheduler observes the machine's pending
// Action, executes it against whatever memory it manages, and delivers the
// outcome. This inversion gives schedulers — in particular the adversary of
// Section 5 — total control over interleaving while keeping algorithm code
// readable.
//
// Two engines can sit behind a Machine (see Engine): the goroutine engine
// parks the direct-style body on its own goroutine and shuttles actions and
// responses over channels, and the VM engine single-steps a compiled
// bytecode chunk in-line (package vmachine). Algorithms that carry a chunk
// (NewCompiled) run on either; schedulers cannot tell them apart — package
// lockstep proves that statement mechanically.
//
// A Machine also records the full history of inputs it consumed and actions
// it emitted. Two machines running the same algorithm that consumed
// identical histories are in identical states, so history equality is the
// operational form of the state equality used by the Indistinguishability
// Lemma (Lemma 5.2).
package machine

import (
	"fmt"

	"jayanti98/internal/shmem"
)

// ActionKind classifies a machine's pending step.
type ActionKind int

// The three kinds of pending actions, plus ActCrash reported when the
// algorithm body panics (a bug in the algorithm, surfaced loudly).
const (
	ActToss ActionKind = iota + 1
	ActOp
	ActReturn
	ActCrash
)

// String names the action kind.
func (k ActionKind) String() string {
	switch k {
	case ActToss:
		return "toss"
	case ActOp:
		return "op"
	case ActReturn:
		return "return"
	case ActCrash:
		return "crash"
	default:
		return fmt.Sprintf("ActionKind(%d)", int(k))
	}
}

// Action is a machine's pending step: a coin toss (Kind ActToss), a
// shared-memory operation (Kind ActOp, with Op set), or termination
// (Kind ActReturn, with Ret set to the process's return value).
type Action struct {
	Kind ActionKind
	Op   shmem.Op
	Ret  shmem.Value
}

// TossAssignment supplies coin-toss outcomes: A(p, j) is the outcome of the
// j-th toss (0-indexed) by process p, exactly the toss assignments of
// Section 5.2. Deterministic algorithms never consult it.
type TossAssignment func(pid, j int) int64

// ZeroTosses is the toss assignment that always returns 0; adequate for
// deterministic algorithms.
func ZeroTosses(int, int) int64 { return 0 }

// yielder is what an Env needs from its machine: a way to publish a pending
// action and block for its input. Only the goroutine engine runs bodies, so
// only goDriver implements it.
type yielder interface {
	yieldToss() int64
	yieldOp(op shmem.Op) shmem.Response
}

// Env is the interface an algorithm body uses to interact with the world.
// All shared-memory helpers block until the scheduler performs the op and
// delivers the response.
type Env struct {
	id int
	n  int
	m  yielder
}

// ID returns the executing process's identifier in [0, N).
func (e *Env) ID() int { return e.id }

// N returns the number of processes in the system.
func (e *Env) N() int { return e.n }

// Toss performs a local coin toss and returns its outcome.
func (e *Env) Toss() int64 { return e.m.yieldToss() }

// Do performs a raw shared-memory operation.
func (e *Env) Do(op shmem.Op) shmem.Response { return e.m.yieldOp(op) }

// LL performs LL(reg) and returns the register's value.
func (e *Env) LL(reg int) shmem.Value {
	return e.Do(shmem.Op{Kind: shmem.OpLL, Reg: reg}).Val
}

// SC performs SC(reg, v); it returns the success boolean and the register's
// previous value (the strengthened response of Section 3).
func (e *Env) SC(reg int, v shmem.Value) (bool, shmem.Value) {
	r := e.Do(shmem.Op{Kind: shmem.OpSC, Reg: reg, Arg: v})
	return r.OK, r.Val
}

// Validate performs validate(reg); it returns the link-validity boolean and
// the register's current value. Validate(reg) is also the model's read.
func (e *Env) Validate(reg int) (bool, shmem.Value) {
	r := e.Do(shmem.Op{Kind: shmem.OpValidate, Reg: reg})
	return r.OK, r.Val
}

// Read returns the current value of reg (a validate, discarding the boolean).
func (e *Env) Read(reg int) shmem.Value {
	_, v := e.Validate(reg)
	return v
}

// Swap performs swap(reg, v) and returns the register's previous value.
func (e *Env) Swap(reg int, v shmem.Value) shmem.Value {
	return e.Do(shmem.Op{Kind: shmem.OpSwap, Reg: reg, Arg: v}).Val
}

// Move performs move(src, dst): value(src) is copied into dst.
func (e *Env) Move(src, dst int) {
	e.Do(shmem.Op{Kind: shmem.OpMove, Src: src, Reg: dst})
}

// Port is the capability surface that reusable building blocks (universal
// constructions, shared-object clients) program against: the five
// shared-memory operations plus process identity. *Env implements Port on
// the simulated memory; llsc.Handle implements it on the concurrent memory,
// so the same construction code runs under the adversary and under real
// goroutines.
type Port interface {
	// ID returns the calling process's identifier in [0, N).
	ID() int
	// N returns the number of processes sharing the memory.
	N() int
	// LL performs LL(reg) and returns the register's value.
	LL(reg int) shmem.Value
	// SC performs SC(reg, v), returning success and the previous value.
	SC(reg int, v shmem.Value) (bool, shmem.Value)
	// Validate performs validate(reg), returning link validity and value.
	Validate(reg int) (bool, shmem.Value)
	// Read returns the current value of reg (a validate, boolean dropped).
	Read(reg int) shmem.Value
	// Swap performs swap(reg, v) and returns the previous value.
	Swap(reg int, v shmem.Value) shmem.Value
	// Move performs move(src, dst).
	Move(src, dst int)
}

var _ Port = (*Env)(nil)

// Body is an algorithm written in direct style. It runs as process e.ID()
// of e.N() and returns the process's return value. Bodies must interact
// with the outside world only through the Env and must not block on
// anything else.
type Body func(e *Env) shmem.Value

// Algorithm is a named distributed algorithm: a factory of process bodies.
type Algorithm interface {
	// Name identifies the algorithm in reports.
	Name() string
	// Run is the code of process id (captured inside the Env).
	Run(e *Env) shmem.Value
}

type funcAlgorithm struct {
	name string
	body Body
}

func (a *funcAlgorithm) Name() string           { return a.name }
func (a *funcAlgorithm) Run(e *Env) shmem.Value { return a.body(e) }

// New wraps a Body as a named Algorithm.
func New(name string, body Body) Algorithm {
	return &funcAlgorithm{name: name, body: body}
}

// driver is the engine behind a Machine: it produces the next pending
// action and accepts the scheduler's inputs. goDriver runs the direct-style
// body on a goroutine; vmDriver steps a compiled chunk in-line. All
// bookkeeping (pending-action caching, terminal state, step and toss
// counts, the history digest) lives in Machine itself, so the two engines
// cannot diverge in what they record.
type driver interface {
	// next blocks until the engine's next action is available.
	next() Action
	// toss delivers a coin-toss outcome for a pending ActToss.
	toss(outcome int64)
	// resp delivers a response for a pending ActOp.
	resp(r shmem.Response)
	// close abandons the engine, reclaiming any resources; idempotent.
	close()
}

// Machine is one resumable process. Create with Start (or StartEngine),
// drive with Peek/DeliverToss/DeliverOpResponse, and always Close when done
// with it (Close is idempotent and safe on terminated machines).
//
// Machine is not safe for concurrent use by multiple scheduler goroutines.
type Machine struct {
	id     int
	alg    Algorithm
	drv    driver
	engine string

	pending    Action
	hasPending bool
	done       bool
	ret        shmem.Value
	crash      error
	numTosses  int
	steps      int
	events     int
	dig        digest
	noHistory  bool
}

// Start launches process id of n running alg under the session's default
// engine (see SetDefaultEngine and the LB_ENGINE environment variable).
func Start(alg Algorithm, id, n int) *Machine {
	return StartEngine(alg, id, n, DefaultEngine())
}

// ID returns the process identifier.
func (m *Machine) ID() int { return m.id }

// EngineName reports which engine is driving this machine: "goroutine" or
// "vm".
func (m *Machine) EngineName() string { return m.engine }

// DisableHistory turns off history-key maintenance for this machine. Pure
// measurement runs (step-count sweeps over large n) use it to avoid paying
// for digesting every delivered value; runs that will be compared with
// CheckIndist must keep history enabled. Call before the first Peek.
func (m *Machine) DisableHistory() { m.noHistory = true }

// Peek blocks until the machine's next pending action is available and
// returns it without consuming it. After the machine terminates (or
// crashes), Peek keeps returning the final action.
func (m *Machine) Peek() Action {
	if m.hasPending {
		return m.pending
	}
	if m.done {
		if m.crash != nil {
			return Action{Kind: ActCrash, Ret: m.crash.Error()}
		}
		return Action{Kind: ActReturn, Ret: m.ret}
	}
	a := m.drv.next()
	switch a.Kind {
	case ActReturn:
		m.done = true
		m.ret = a.Ret
		m.recordReturn(a.Ret)
		return a
	case ActCrash:
		m.done = true
		m.crash = fmt.Errorf("%v", a.Ret)
		m.recordCrash(a.Ret)
		return a
	default:
		m.pending = a
		m.hasPending = true
		return a
	}
}

// DeliverToss consumes a pending ActToss with the given outcome.
// It panics if the pending action is not a toss — that is a scheduler bug.
func (m *Machine) DeliverToss(outcome int64) {
	a := m.Peek()
	if a.Kind != ActToss {
		panic(fmt.Sprintf("machine %d: DeliverToss but pending action is %v", m.id, a.Kind))
	}
	m.hasPending = false
	m.numTosses++
	m.recordToss(outcome)
	m.drv.toss(outcome)
}

// DeliverOpResponse consumes a pending ActOp with the given response.
// It panics if the pending action is not an op — that is a scheduler bug.
func (m *Machine) DeliverOpResponse(r shmem.Response) {
	a := m.Peek()
	if a.Kind != ActOp {
		panic(fmt.Sprintf("machine %d: DeliverOpResponse but pending action is %v", m.id, a.Kind))
	}
	m.hasPending = false
	m.steps++
	m.recordOp(a.Op, r)
	m.drv.resp(r)
}

// Terminated reports whether the process has reached a termination state.
func (m *Machine) Terminated() bool {
	return m.done && m.crash == nil
}

// Crashed returns the panic error if the algorithm body panicked, else nil.
func (m *Machine) Crashed() error { return m.crash }

// ReturnValue returns the process's return value; valid once Terminated.
func (m *Machine) ReturnValue() shmem.Value { return m.ret }

// NumTosses returns the number of coin tosses performed so far —
// numtosses(p, ·) of Section 5.5.
func (m *Machine) NumTosses() int { return m.numTosses }

// Steps returns the number of shared-memory operations completed so far.
func (m *Machine) Steps() int { return m.steps }

// HistoryKey returns a digest of everything the process has observed and
// emitted so far (event count plus a 64-bit FNV-1a hash of the injectively
// encoded event stream; see digest.go). Equal histories imply equal local
// states, so HistoryKey equality is the operational state equality of
// Lemma 5.2; the digest makes the comparison O(1) per round instead of
// quadratic in run length. It returns "disabled" after DisableHistory.
func (m *Machine) HistoryKey() string {
	if m.noHistory {
		return "disabled"
	}
	return fmt.Sprintf("ev%d:%016x", m.events, m.dig.sum)
}

// HistoryDigest returns the raw components of HistoryKey — the event count
// and the running FNV-1a sum — plus whether history tracking is enabled
// (false after DisableHistory). Callers that fold many digests into a
// compact binary key (the exploration harness's memoization state) use it
// to avoid the per-call string formatting of HistoryKey.
func (m *Machine) HistoryDigest() (events int, sum uint64, enabled bool) {
	if m.noHistory {
		return 0, 0, false
	}
	return m.events, m.dig.sum, true
}

// Close abandons the machine: any underlying goroutine is unwound and
// reclaimed. Close is idempotent and must be called (directly or via a
// runner) for every started machine.
func (m *Machine) Close() { m.drv.close() }

// StartAll starts machines for processes 0..n-1 of alg under the default
// engine.
func StartAll(alg Algorithm, n int) []*Machine {
	return StartAllEngine(alg, n, DefaultEngine())
}

// StartAllEngine starts machines for processes 0..n-1 of alg under eng.
func StartAllEngine(alg Algorithm, n int, eng Engine) []*Machine {
	ms := make([]*Machine, n)
	for i := 0; i < n; i++ {
		ms[i] = StartEngine(alg, i, n, eng)
	}
	return ms
}

// CloseAll closes every machine in ms.
func CloseAll(ms []*Machine) {
	for _, m := range ms {
		m.Close()
	}
}
