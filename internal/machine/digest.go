package machine

import (
	"fmt"

	"jayanti98/internal/shmem"
)

// History digests fold every event a machine observes into a running 64-bit
// FNV-1a sum over an injective binary encoding: each event and each value
// carries a type tag, and variable-length payloads are length-prefixed, so
// distinct histories encode to distinct byte streams. This replaces an
// earlier scheme that hashed fmt-rendered event strings — observably
// equivalent (equal histories still give equal digests, HistoryKey keeps
// its "ev%d:%016x" shape) but without a fmt round-trip per event, which
// matters on the exploration hot path where every delivered response is
// digested.
//
// Both engines share this encoder by construction: recording happens in
// Machine.Peek/Deliver*, above the driver seam, so a goroutine machine and
// a VM machine that consume identical inputs hold identical digests.

const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// digest is an inline FNV-1a accumulator.
type digest struct {
	sum uint64
}

func newDigest() digest { return digest{sum: fnvOffset64} }

func (d *digest) writeByte(b byte) {
	d.sum = (d.sum ^ uint64(b)) * fnvPrime64
}

func (d *digest) writeWord(v uint64) {
	for i := 0; i < 8; i++ {
		d.writeByte(byte(v))
		v >>= 8
	}
}

func (d *digest) writeString(s string) {
	d.writeWord(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		d.writeByte(s[i])
	}
}

// Event tags.
const (
	evToss byte = iota + 1
	evOp
	evReturn
	evCrash
)

// Value tags. The encoding distinguishes dynamic types exactly as
// shmem.ValuesEqual does: int(1), int64(1) and bool-true all encode
// differently.
const (
	valNil byte = iota
	valInt
	valInt64
	valBool
	valString
	valOther
)

func (d *digest) writeValue(v shmem.Value) {
	switch x := v.(type) {
	case nil:
		d.writeByte(valNil)
	case int:
		d.writeByte(valInt)
		d.writeWord(uint64(x))
	case int64:
		d.writeByte(valInt64)
		d.writeWord(uint64(x))
	case bool:
		d.writeByte(valBool)
		if x {
			d.writeByte(1)
		} else {
			d.writeByte(0)
		}
	case string:
		d.writeByte(valString)
		d.writeString(x)
	default:
		// Exotic values (slices installed by memory initializers, objtype
		// states) fall back to their type name and rendering; slower, but
		// off the hot path and still discriminating in practice.
		d.writeByte(valOther)
		d.writeString(fmt.Sprintf("%T", v))
		d.writeString(fmt.Sprintf("%v", v))
	}
}

func (m *Machine) recordToss(outcome int64) {
	if m.noHistory {
		return
	}
	m.events++
	m.dig.writeByte(evToss)
	m.dig.writeWord(uint64(outcome))
}

func (m *Machine) recordOp(op shmem.Op, r shmem.Response) {
	if m.noHistory {
		return
	}
	m.events++
	m.dig.writeByte(evOp)
	m.dig.writeByte(byte(op.Kind))
	m.dig.writeWord(uint64(op.Reg))
	m.dig.writeWord(uint64(op.Src))
	m.dig.writeValue(op.Arg)
	if r.OK {
		m.dig.writeByte(1)
	} else {
		m.dig.writeByte(0)
	}
	m.dig.writeValue(r.Val)
}

func (m *Machine) recordReturn(v shmem.Value) {
	if m.noHistory {
		return
	}
	m.events++
	m.dig.writeByte(evReturn)
	m.dig.writeValue(v)
}

func (m *Machine) recordCrash(v shmem.Value) {
	if m.noHistory {
		return
	}
	m.events++
	m.dig.writeByte(evCrash)
	m.dig.writeValue(v)
}
