package machine

import (
	"strings"
	"testing"

	"jayanti98/internal/shmem"
)

// drive runs a single machine to completion against mem, delivering tosses
// from ta, and returns its result.
func drive(t *testing.T, alg Algorithm, id, n int, mem *shmem.Memory, ta TossAssignment) shmem.Value {
	t.Helper()
	m := Start(alg, id, n)
	defer m.Close()
	for {
		switch a := m.Peek(); a.Kind {
		case ActToss:
			m.DeliverToss(ta(id, m.NumTosses()))
		case ActOp:
			m.DeliverOpResponse(mem.Apply(id, a.Op))
		case ActReturn:
			return a.Ret
		case ActCrash:
			t.Fatalf("machine crashed: %v", m.Crashed())
		}
	}
}

func TestSimpleAlgorithmRunsToCompletion(t *testing.T) {
	alg := New("write-read", func(e *Env) shmem.Value {
		e.Swap(0, e.ID()*100)
		return e.Read(0)
	})
	mem := shmem.New()
	got := drive(t, alg, 3, 4, mem, ZeroTosses)
	if got != 300 {
		t.Fatalf("return = %v, want 300", got)
	}
	if mem.Steps(3) != 2 {
		t.Fatalf("steps = %d, want 2", mem.Steps(3))
	}
}

func TestEnvHelpersMapToOps(t *testing.T) {
	alg := New("helpers", func(e *Env) shmem.Value {
		if v := e.LL(1); v != nil {
			return "bad-ll"
		}
		ok, prev := e.SC(1, "a")
		if !ok || prev != nil {
			return "bad-sc"
		}
		ok, cur := e.Validate(1)
		if ok { // SC cleared the link
			return "bad-validate-link"
		}
		if cur != "a" {
			return "bad-validate-val"
		}
		if old := e.Swap(1, "b"); old != "a" {
			return "bad-swap"
		}
		e.Move(1, 2)
		if v := e.Read(2); v != "b" {
			return "bad-move"
		}
		return "ok"
	})
	if got := drive(t, alg, 0, 1, shmem.New(), ZeroTosses); got != "ok" {
		t.Fatalf("helpers check failed: %v", got)
	}
}

func TestTossesAreDeliveredFromAssignment(t *testing.T) {
	alg := New("tosser", func(e *Env) shmem.Value {
		sum := int64(0)
		for i := 0; i < 5; i++ {
			sum += e.Toss()
		}
		return sum
	})
	ta := func(pid, j int) int64 { return int64(10*pid + j) }
	got := drive(t, New(alg.Name(), alg.Run), 2, 3, shmem.New(), ta)
	// tosses for pid 2: 20+21+22+23+24 = 110
	if got != int64(110) {
		t.Fatalf("toss sum = %v, want 110", got)
	}
}

func TestNumTossesAndSteps(t *testing.T) {
	alg := New("mixed", func(e *Env) shmem.Value {
		e.Toss()
		e.Read(0)
		e.Toss()
		e.Read(0)
		e.Read(0)
		return nil
	})
	m := Start(alg, 0, 1)
	defer m.Close()
	mem := shmem.New()
	for !m.Terminated() {
		switch a := m.Peek(); a.Kind {
		case ActToss:
			m.DeliverToss(0)
		case ActOp:
			m.DeliverOpResponse(mem.Apply(0, a.Op))
		case ActReturn:
		}
		if m.Peek().Kind == ActReturn {
			break
		}
	}
	if m.NumTosses() != 2 {
		t.Fatalf("NumTosses = %d, want 2", m.NumTosses())
	}
	if m.Steps() != 3 {
		t.Fatalf("Steps = %d, want 3", m.Steps())
	}
}

func TestHistoryKeyIdenticalForIdenticalInputs(t *testing.T) {
	alg := New("hist", func(e *Env) shmem.Value {
		x := e.Toss()
		e.Swap(0, x)
		return e.Read(0)
	})
	run := func() string {
		m := Start(alg, 1, 2)
		defer m.Close()
		mem := shmem.New()
		for {
			switch a := m.Peek(); a.Kind {
			case ActToss:
				m.DeliverToss(7)
			case ActOp:
				m.DeliverOpResponse(mem.Apply(1, a.Op))
			default:
				return m.HistoryKey()
			}
		}
	}
	k1, k2 := run(), run()
	if k1 != k2 {
		t.Fatalf("identical runs produced different history keys:\n%q\n%q", k1, k2)
	}
	if !strings.HasPrefix(k1, "ev4:") {
		t.Fatalf("history key should record 4 events (toss, swap, validate, return): %q", k1)
	}
}

func TestHistoryKeyDivergesOnDifferentTosses(t *testing.T) {
	alg := New("t", func(e *Env) shmem.Value { return e.Toss() })
	run := func(outcome int64) string {
		m := Start(alg, 0, 1)
		defer m.Close()
		if m.Peek().Kind == ActToss {
			m.DeliverToss(outcome)
		}
		m.Peek()
		return m.HistoryKey()
	}
	if run(7) == run(8) {
		t.Fatal("different toss outcomes must yield different history keys")
	}
}

func TestDisableHistory(t *testing.T) {
	alg := New("d", func(e *Env) shmem.Value { return e.Read(0) })
	m := Start(alg, 0, 1)
	defer m.Close()
	m.DisableHistory()
	m.Peek()
	m.DeliverOpResponse(shmem.Response{Val: 1})
	if m.HistoryKey() != "disabled" {
		t.Fatalf("HistoryKey = %q, want disabled", m.HistoryKey())
	}
}

func TestHistoryKeyDivergesOnDifferentResponses(t *testing.T) {
	alg := New("hist2", func(e *Env) shmem.Value { return e.Read(0) })
	run := func(val shmem.Value) string {
		m := Start(alg, 0, 1)
		defer m.Close()
		for m.Peek().Kind == ActOp {
			m.DeliverOpResponse(shmem.Response{OK: false, Val: val})
		}
		return m.HistoryKey()
	}
	if run(1) == run(2) {
		t.Fatal("different responses must yield different history keys")
	}
}

func TestPeekIsIdempotent(t *testing.T) {
	alg := New("peek", func(e *Env) shmem.Value { e.Read(9); return nil })
	m := Start(alg, 0, 1)
	defer m.Close()
	a1 := m.Peek()
	a2 := m.Peek()
	if a1 != a2 {
		t.Fatalf("Peek not idempotent: %v vs %v", a1, a2)
	}
	if a1.Kind != ActOp || a1.Op.Reg != 9 {
		t.Fatalf("unexpected action %v", a1)
	}
}

func TestPeekAfterReturnKeepsReturning(t *testing.T) {
	alg := New("ret", func(e *Env) shmem.Value { return 42 })
	m := Start(alg, 0, 1)
	defer m.Close()
	for i := 0; i < 3; i++ {
		a := m.Peek()
		if a.Kind != ActReturn || a.Ret != 42 {
			t.Fatalf("Peek #%d = %v, want return 42", i, a)
		}
	}
	if !m.Terminated() {
		t.Fatal("machine should be terminated")
	}
	if m.ReturnValue() != 42 {
		t.Fatalf("ReturnValue = %v", m.ReturnValue())
	}
}

func TestCrashIsReported(t *testing.T) {
	alg := New("boom", func(e *Env) shmem.Value { panic("kaboom") })
	m := Start(alg, 0, 1)
	defer m.Close()
	a := m.Peek()
	if a.Kind != ActCrash {
		t.Fatalf("expected crash action, got %v", a)
	}
	if m.Crashed() == nil || !strings.Contains(m.Crashed().Error(), "kaboom") {
		t.Fatalf("Crashed() = %v", m.Crashed())
	}
	if m.Terminated() {
		t.Fatal("crashed machine must not count as terminated")
	}
}

func TestCloseUnwindsBlockedMachine(t *testing.T) {
	alg := New("loop", func(e *Env) shmem.Value {
		for {
			e.Read(0)
		}
	})
	m := Start(alg, 0, 1)
	m.Peek()
	m.Close() // must not hang
	m.Close() // idempotent
}

func TestCloseBeforeFirstPeek(t *testing.T) {
	alg := New("fast", func(e *Env) shmem.Value { return nil })
	m := Start(alg, 0, 1)
	m.Close() // must not hang even if the goroutine already sent its action
}

func TestStartAllAndCloseAll(t *testing.T) {
	alg := New("id", func(e *Env) shmem.Value { return e.ID() })
	ms := StartAll(alg, 4)
	defer CloseAll(ms)
	for i, m := range ms {
		if m.ID() != i {
			t.Fatalf("machine %d has ID %d", i, m.ID())
		}
		if a := m.Peek(); a.Kind != ActReturn || a.Ret != i {
			t.Fatalf("machine %d action %v", i, a)
		}
	}
}

func TestDeliverTossOnOpPanics(t *testing.T) {
	alg := New("op", func(e *Env) shmem.Value { e.Read(0); return nil })
	m := Start(alg, 0, 1)
	defer m.Close()
	m.Peek()
	defer func() {
		if recover() == nil {
			t.Fatal("DeliverToss on a pending op must panic")
		}
	}()
	m.DeliverToss(0)
}

func TestDeliverResponseOnTossPanics(t *testing.T) {
	alg := New("toss", func(e *Env) shmem.Value { e.Toss(); return nil })
	m := Start(alg, 0, 1)
	defer m.Close()
	m.Peek()
	defer func() {
		if recover() == nil {
			t.Fatal("DeliverOpResponse on a pending toss must panic")
		}
	}()
	m.DeliverOpResponse(shmem.Response{})
}

func TestActionKindString(t *testing.T) {
	want := map[ActionKind]string{
		ActToss: "toss", ActOp: "op", ActReturn: "return", ActCrash: "crash",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
}
