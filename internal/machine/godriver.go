package machine

import (
	"fmt"
	"sync"

	"jayanti98/internal/shmem"
)

// goDriver is the goroutine engine: the algorithm body runs in direct style
// on its own goroutine and synchronizes with the scheduler over unbuffered
// channels. This is the reference implementation of the process model — the
// body is ordinary Go code, so it can express anything (closures over local
// state, universal constructions, helper types) at the cost of two channel
// handoffs per step.
type goDriver struct {
	actions   chan Action
	tossIn    chan int64
	respIn    chan shmem.Response
	quit      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// errKilled is the sentinel panic used to unwind an abandoned machine body.
type killedSentinel struct{}

func startGoDriver(alg Algorithm, id, n int) *goDriver {
	g := &goDriver{
		actions: make(chan Action),
		tossIn:  make(chan int64),
		respIn:  make(chan shmem.Response),
		quit:    make(chan struct{}),
	}
	env := &Env{id: id, n: n, m: g}
	g.wg.Add(1)
	go g.run(alg, env)
	return g
}

func (g *goDriver) run(alg Algorithm, env *Env) {
	defer g.wg.Done()
	var final Action
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, killed := r.(killedSentinel); killed {
					final = Action{} // swallowed; no final action published
					return
				}
				final = Action{Kind: ActCrash, Ret: fmt.Sprintf("panic: %v", r)}
			}
		}()
		ret := alg.Run(env)
		final = Action{Kind: ActReturn, Ret: ret}
	}()
	if final.Kind == 0 {
		return // killed
	}
	select {
	case g.actions <- final:
	case <-g.quit:
	}
}

// yieldToss publishes a pending toss and blocks for its outcome.
func (g *goDriver) yieldToss() int64 {
	select {
	case g.actions <- Action{Kind: ActToss}:
	case <-g.quit:
		panic(killedSentinel{})
	}
	select {
	case v := <-g.tossIn:
		return v
	case <-g.quit:
		panic(killedSentinel{})
	}
}

// yieldOp publishes a pending shared-memory op and blocks for its response.
func (g *goDriver) yieldOp(op shmem.Op) shmem.Response {
	select {
	case g.actions <- Action{Kind: ActOp, Op: op}:
	case <-g.quit:
		panic(killedSentinel{})
	}
	select {
	case r := <-g.respIn:
		return r
	case <-g.quit:
		panic(killedSentinel{})
	}
}

func (g *goDriver) next() Action { return <-g.actions }

func (g *goDriver) toss(outcome int64) { g.tossIn <- outcome }

func (g *goDriver) resp(r shmem.Response) { g.respIn <- r }

func (g *goDriver) close() {
	g.closeOnce.Do(func() {
		close(g.quit)
		// Drain a possibly in-flight action so the body's send completes.
		select {
		case <-g.actions:
		default:
		}
		g.wg.Wait()
	})
}
