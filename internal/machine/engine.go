package machine

import (
	"fmt"
	"os"
	"sync/atomic"

	"jayanti98/internal/vmachine"
)

// Engine selects how a Machine executes its algorithm.
type Engine int32

const (
	// EngineAuto picks the VM engine when the algorithm carries a compiled
	// chunk (see Compiled) and the goroutine engine otherwise. This is the
	// default: compiled algorithms are proven step-equivalent to their
	// direct-style bodies by package lockstep, so auto is safe everywhere.
	EngineAuto Engine = iota
	// EngineGoroutine forces the direct-style goroutine engine.
	EngineGoroutine
	// EngineVM requests the bytecode engine. Algorithms without a compiled
	// chunk still fall back to the goroutine engine — every scheduler runs
	// unchanged under every Engine value.
	EngineVM
)

// String names the engine (the same spellings ParseEngine accepts).
func (e Engine) String() string {
	switch e {
	case EngineAuto:
		return "auto"
	case EngineGoroutine:
		return "goroutine"
	case EngineVM:
		return "vm"
	default:
		return fmt.Sprintf("Engine(%d)", int32(e))
	}
}

// ParseEngine parses an engine name as used by the -engine flag of the
// cmd/ tools and the LB_ENGINE environment variable.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "auto":
		return EngineAuto, nil
	case "goroutine", "go", "interp":
		return EngineGoroutine, nil
	case "vm", "bytecode":
		return EngineVM, nil
	default:
		return EngineAuto, fmt.Errorf("machine: unknown engine %q (want auto, goroutine or vm)", s)
	}
}

// defaultEngine is the process-wide engine used by Start/StartAll, stored
// atomically so tests can flip it around sections without racing other
// goroutines' reads.
var defaultEngine atomic.Int32

func init() {
	if s := os.Getenv("LB_ENGINE"); s != "" {
		e, err := ParseEngine(s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "machine: ignoring LB_ENGINE: %v\n", err)
			return
		}
		defaultEngine.Store(int32(e))
	}
}

// DefaultEngine returns the process-wide default engine. It starts as
// EngineAuto, overridable by the LB_ENGINE environment variable (auto,
// goroutine, vm).
func DefaultEngine() Engine { return Engine(defaultEngine.Load()) }

// SetDefaultEngine sets the process-wide default engine and returns the
// previous value, for defer-restore in tests:
//
//	prev := machine.SetDefaultEngine(machine.EngineVM)
//	defer machine.SetDefaultEngine(prev)
func SetDefaultEngine(e Engine) (prev Engine) {
	return Engine(defaultEngine.Swap(int32(e)))
}

// Compiled is an Algorithm that also carries a bytecode chunk compiled from
// the same logic as its direct-style body. The two must be step-equivalent:
// identical action streams given identical inputs. Package lockstep holds
// every Compiled algorithm to that contract.
type Compiled interface {
	Algorithm
	// Chunk returns the compiled body; it must be non-nil and is shared
	// read-only across all process instances.
	Chunk() *vmachine.Chunk
}

type compiledAlgorithm struct {
	funcAlgorithm
	chunk *vmachine.Chunk
}

func (a *compiledAlgorithm) Chunk() *vmachine.Chunk { return a.chunk }

// NewCompiled wraps a direct-style Body together with its compiled twin.
// The goroutine engine runs body; the VM engine runs chunk; which one a
// Machine uses is an Engine decision invisible to schedulers.
func NewCompiled(name string, body Body, chunk *vmachine.Chunk) Algorithm {
	if chunk == nil {
		panic("machine: NewCompiled with nil chunk")
	}
	return &compiledAlgorithm{
		funcAlgorithm: funcAlgorithm{name: name, body: body},
		chunk:         chunk,
	}
}

// StartEngine launches process id of n running alg under an explicit
// engine, overriding the process-wide default for this machine only.
func StartEngine(alg Algorithm, id, n int, eng Engine) *Machine {
	m := &Machine{id: id, alg: alg, dig: newDigest()}
	var chunk *vmachine.Chunk
	if eng != EngineGoroutine {
		if c, ok := alg.(Compiled); ok {
			chunk = c.Chunk()
		}
	}
	if chunk != nil {
		m.drv = startVMDriver(chunk, id, n)
		m.engine = "vm"
	} else {
		m.drv = startGoDriver(alg, id, n)
		m.engine = "goroutine"
	}
	return m
}
