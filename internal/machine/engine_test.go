package machine

import (
	"testing"

	"jayanti98/internal/shmem"
	"jayanti98/internal/vmachine"
)

// testChunk compiles a trivial body: LL(0), return its value.
func testChunk(t *testing.T) *vmachine.Chunk {
	t.Helper()
	return vmachine.MustCompile(&vmachine.Program{
		Name: "engine-test",
		Body: []vmachine.Stmt{
			vmachine.AssignS{Name: "v", E: vmachine.LLE{Reg: vmachine.ConstE{V: vmachine.Int(0)}}},
			vmachine.ReturnS{E: vmachine.VarE{Name: "v"}},
		},
	})
}

func testBody(e *Env) shmem.Value { return e.LL(0) }

func TestParseEngine(t *testing.T) {
	valid := map[string]Engine{
		"":          EngineAuto,
		"auto":      EngineAuto,
		"goroutine": EngineGoroutine,
		"go":        EngineGoroutine,
		"interp":    EngineGoroutine,
		"vm":        EngineVM,
		"bytecode":  EngineVM,
	}
	for s, want := range valid {
		got, err := ParseEngine(s)
		if err != nil || got != want {
			t.Fatalf("ParseEngine(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseEngine("quantum"); err == nil {
		t.Fatal("ParseEngine accepted an unknown engine")
	}
}

// TestEngineSelection pins the engine resolution matrix: which engine a
// machine actually runs on, for compiled and uncompiled algorithms, under
// each Engine value.
func TestEngineSelection(t *testing.T) {
	compiled := NewCompiled("compiled", testBody, testChunk(t))
	plain := New("plain", testBody)
	cases := []struct {
		alg  Algorithm
		eng  Engine
		want string
	}{
		{compiled, EngineAuto, "vm"},
		{compiled, EngineVM, "vm"},
		{compiled, EngineGoroutine, "goroutine"},
		{plain, EngineAuto, "goroutine"},
		{plain, EngineVM, "goroutine"}, // no chunk: graceful fallback
		{plain, EngineGoroutine, "goroutine"},
	}
	for _, c := range cases {
		m := StartEngine(c.alg, 0, 1, c.eng)
		got := m.EngineName()
		m.Close()
		if got != c.want {
			t.Fatalf("StartEngine(%s, %v) ran on %q, want %q", c.alg.Name(), c.eng, got, c.want)
		}
	}
}

func TestSetDefaultEngineRoundTrip(t *testing.T) {
	prev := SetDefaultEngine(EngineGoroutine)
	defer SetDefaultEngine(prev)
	compiled := NewCompiled("compiled", testBody, testChunk(t))
	m := Start(compiled, 0, 1)
	defer m.Close()
	if got := m.EngineName(); got != "goroutine" {
		t.Fatalf("default engine override ignored: machine on %q", got)
	}
	if cur := SetDefaultEngine(EngineVM); cur != EngineGoroutine {
		t.Fatalf("SetDefaultEngine returned %v, want %v", cur, EngineGoroutine)
	}
	m2 := Start(compiled, 0, 1)
	defer m2.Close()
	if got := m2.EngineName(); got != "vm" {
		t.Fatalf("default engine vm ignored: machine on %q", got)
	}
	SetDefaultEngine(EngineGoroutine) // prev restored by the deferred call
}

// TestEnginesSameObservables runs the same compiled algorithm to completion
// on both engines and compares the machine-level observables directly —
// the machine package's own smoke version of the lockstep harness.
func TestEnginesSameObservables(t *testing.T) {
	alg := NewCompiled("obs", func(e *Env) shmem.Value {
		v := e.LL(0)
		ok, _ := e.SC(0, e.ID())
		_ = v
		if ok {
			return e.Swap(1, "w")
		}
		return nil
	}, vmachine.MustCompile(&vmachine.Program{
		Name: "obs",
		Body: []vmachine.Stmt{
			vmachine.AssignS{Name: "v", E: vmachine.LLE{Reg: vmachine.ConstE{V: vmachine.Int(0)}}},
			vmachine.SCS{Ok: "ok", Reg: vmachine.ConstE{V: vmachine.Int(0)}, Val: vmachine.SelfE{}},
			vmachine.IfS{Cond: vmachine.VarE{Name: "ok"}, Then: []vmachine.Stmt{
				vmachine.ReturnS{E: vmachine.SwapE{Reg: vmachine.ConstE{V: vmachine.Int(1)}, Val: vmachine.ConstE{V: vmachine.Str("w")}}},
			}},
			vmachine.ReturnS{E: vmachine.ConstE{V: vmachine.Nil()}},
		},
	}))
	run := func(eng Engine) (string, int, shmem.Value, string) {
		m := StartEngine(alg, 0, 1, eng)
		defer m.Close()
		mem := shmem.New()
		for {
			a := m.Peek()
			switch a.Kind {
			case ActOp:
				m.DeliverOpResponse(mem.Apply(0, a.Op))
			case ActReturn:
				return m.HistoryKey(), m.Steps(), m.ReturnValue(), m.EngineName()
			case ActCrash:
				t.Fatalf("crash: %v", m.Crashed())
			}
		}
	}
	gk, gs, gr, ge := run(EngineGoroutine)
	vk, vs, vr, ve := run(EngineVM)
	if ge != "goroutine" || ve != "vm" {
		t.Fatalf("engines = %q/%q", ge, ve)
	}
	if gk != vk {
		t.Fatalf("history keys diverge: %q vs %q", gk, vk)
	}
	if gs != vs {
		t.Fatalf("step counts diverge: %d vs %d", gs, vs)
	}
	if !shmem.ValuesEqual(gr, vr) {
		t.Fatalf("return values diverge: %v vs %v", gr, vr)
	}
}

// TestDigestTypeSensitivity: responses carrying int(1) and int64(1) must
// yield different history digests — the digest's value encoding is as
// type-sensitive as shmem.ValuesEqual.
func TestDigestTypeSensitivity(t *testing.T) {
	run := func(val shmem.Value) string {
		m := Start(New("t", func(e *Env) shmem.Value { return e.LL(0) }), 0, 1)
		defer m.Close()
		if a := m.Peek(); a.Kind != ActOp {
			t.Fatalf("pending %v", a.Kind)
		}
		m.DeliverOpResponse(shmem.Response{OK: true, Val: val})
		m.Peek()
		return m.HistoryKey()
	}
	if run(int(1)) == run(int64(1)) {
		t.Fatal("digest does not distinguish int(1) from int64(1)")
	}
	if run("1") == run(int(1)) {
		t.Fatal(`digest does not distinguish "1" from int(1)`)
	}
}
