package objtype

import "fmt"

// Operation names of the register-like types.
const (
	OpRead      = "read"
	OpIncrement = "increment"
	OpWrite     = "write"
	OpSwapVal   = "swap"
	OpCAS       = "compare&swap"
)

// readIncrement is the k-bit object of Theorem 6.2 item 4: increment adds 1
// to the state and returns only an acknowledgement (nil); read returns the
// state. Because detecting "everyone is up" through it takes two operations
// (increment then read), its lower bound is halved: (log₄ n)/2 per op.
type readIncrement struct {
	k int
}

func (t *readIncrement) Name() string { return fmt.Sprintf("read/increment(%d)", t.k) }
func (t *readIncrement) Init(int) Value {
	return HexUint(0)
}
func (t *readIncrement) Ops() []string { return []string{OpRead, OpIncrement} }

func (t *readIncrement) Apply(state Value, op Op) (Value, Value) {
	s, ok := state.(string)
	if !ok {
		panic(fmt.Sprintf("objtype: %s state must be a hex string, got %T", t.Name(), state))
	}
	switch op.Name {
	case OpRead:
		return s, s
	case OpIncrement:
		v := ParseHex(s)
		v.Add(v, one())
		v.Mod(v, pow2(t.k))
		return Hex(v), nil
	default:
		errUnknownOp(t, op)
		return nil, nil // unreachable
	}
}

// NewReadIncrement returns the k-bit read/increment counter of Theorem 6.2.
// Wakeup needs k ≥ log₂ n (the paper's statement of k ≥ n is a typo carried
// from the previous item; the counter only ever reaches n).
func NewReadIncrement(k int) Type { return &readIncrement{k: k} }

// casObject is a readable compare&swap object: compare&swap(old, new)
// installs new iff the state equals old and returns the previous state.
// Constant-time implementations of compare&swap from LL/SC exist (see the
// related-work discussion); the type is included to instantiate the
// universal constructions with a non-Theorem-6.2 type.
type casObject struct {
	initial Value
}

// CASArg is the argument of a compare&swap operation.
type CASArg struct {
	Old Value
	New Value
}

func (t *casObject) Name() string   { return "compare&swap" }
func (t *casObject) Init(int) Value { return t.initial }
func (t *casObject) Ops() []string  { return []string{OpRead, OpCAS, OpWrite} }

func (t *casObject) Apply(state Value, op Op) (Value, Value) {
	switch op.Name {
	case OpRead:
		return state, state
	case OpWrite:
		return op.Arg, nil
	case OpCAS:
		arg, ok := op.Arg.(CASArg)
		if !ok {
			panic(fmt.Sprintf("objtype: compare&swap argument must be CASArg, got %T", op.Arg))
		}
		if valuesEqual(state, arg.Old) {
			return arg.New, state
		}
		return state, state
	default:
		errUnknownOp(t, op)
		return nil, nil // unreachable
	}
}

// NewCAS returns a readable compare&swap object with the given initial value.
func NewCAS(initial Value) Type { return &casObject{initial: initial} }

// swapObject is a readable swap register: swap(v) stores v and returns the
// previous state. Cypher's lower bound (related work) shows it has no
// constant-time implementation from LL/SC.
type swapObject struct {
	initial Value
}

func (t *swapObject) Name() string   { return "swap-object" }
func (t *swapObject) Init(int) Value { return t.initial }
func (t *swapObject) Ops() []string  { return []string{OpRead, OpSwapVal} }

func (t *swapObject) Apply(state Value, op Op) (Value, Value) {
	switch op.Name {
	case OpRead:
		return state, state
	case OpSwapVal:
		return op.Arg, state
	default:
		errUnknownOp(t, op)
		return nil, nil // unreachable
	}
}

// NewSwapObject returns a readable swap object with the given initial value.
func NewSwapObject(initial Value) Type { return &swapObject{initial: initial} }
