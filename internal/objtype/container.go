package objtype

import "fmt"

// Operation names of the container types.
const (
	OpEnqueue = "enqueue"
	OpDequeue = "dequeue"
	OpPush    = "push"
	OpPop     = "pop"
)

// Empty is the response of a dequeue or pop on an empty container.
const Empty = "⊥empty"

// container state is a []Value treated as immutable: Apply copies on write.
type container struct {
	name string
	init func(n int) []Value
	lifo bool
}

func (t *container) Name() string { return t.name }

func (t *container) Init(n int) Value {
	items := t.init(n)
	// Copy: callers may retain the constructor slice.
	out := make([]Value, len(items))
	copy(out, items)
	return out
}

func (t *container) Ops() []string {
	if t.lifo {
		return []string{OpPush, OpPop}
	}
	return []string{OpEnqueue, OpDequeue}
}

func (t *container) Apply(state Value, op Op) (Value, Value) {
	items, ok := state.([]Value)
	if !ok {
		panic(fmt.Sprintf("objtype: %s state must be []Value, got %T", t.name, state))
	}
	insert, remove := OpEnqueue, OpDequeue
	if t.lifo {
		insert, remove = OpPush, OpPop
	}
	switch op.Name {
	case insert:
		next := make([]Value, len(items)+1)
		copy(next, items)
		next[len(items)] = op.Arg
		return next, nil
	case remove:
		if len(items) == 0 {
			return items, Empty
		}
		var head Value
		var next []Value
		if t.lifo {
			head = items[len(items)-1]
			next = append([]Value(nil), items[:len(items)-1]...)
		} else {
			head = items[0]
			next = append([]Value(nil), items[1:]...)
		}
		return next, head
	default:
		errUnknownOp(t, op)
		return nil, nil // unreachable
	}
}

// NewQueue returns a FIFO queue type whose initial state is produced by
// init (front of the queue first). Theorem 6.2 uses a queue initially
// holding items 1..n with n at the rear; see NewWakeupQueue.
func NewQueue(init func(n int) []Value) Type {
	return &container{name: "queue", init: init}
}

// NewStack returns a LIFO stack type whose initial state is produced by
// init (bottom of the stack first).
func NewStack(init func(n int) []Value) Type {
	return &container{name: "stack", init: init, lifo: true}
}

// NewEmptyQueue returns a queue that starts empty.
func NewEmptyQueue() Type {
	return NewQueue(func(int) []Value { return nil })
}

// NewEmptyStack returns a stack that starts empty.
func NewEmptyStack() Type {
	return NewStack(func(int) []Value { return nil })
}

// NewWakeupQueue returns the queue of Theorem 6.2's wakeup reduction:
// initially holding 1, 2, ..., n with n at the rear, so the process that
// dequeues n knows all n dequeues are underway.
func NewWakeupQueue() Type {
	return NewQueue(func(n int) []Value {
		items := make([]Value, n)
		for i := range items {
			items[i] = i + 1
		}
		return items
	})
}

// NewWakeupStack returns the stack analogue: initially holding n items with
// the distinguished item n at the bottom, so the process that pops the
// bottom item knows all n pops are underway.
func NewWakeupStack() Type {
	return NewStack(func(n int) []Value {
		items := make([]Value, n)
		items[0] = n // bottom
		for i := 1; i < n; i++ {
			items[i] = n - i
		}
		return items
	})
}
