package objtype

import (
	"math/big"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func apply(t *testing.T, typ Type, state Value, name string, arg Value) (Value, Value) {
	t.Helper()
	return typ.Apply(state, Op{Name: name, Arg: arg})
}

func TestHexRoundTrip(t *testing.T) {
	for _, v := range []int64{0, 1, 15, 16, 255, 1 << 40} {
		h := Hex(big.NewInt(v))
		if got := ParseHex(h).Int64(); got != v {
			t.Errorf("round trip %d -> %q -> %d", v, h, got)
		}
	}
	if HexUint(255) != "ff" {
		t.Errorf("HexUint(255) = %q, want ff", HexUint(255))
	}
}

func TestParseHexMalformedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ParseHex on garbage must panic")
		}
	}()
	ParseHex("zz")
}

func TestAllOnes(t *testing.T) {
	if got := AllOnes(4).Int64(); got != 15 {
		t.Fatalf("AllOnes(4) = %d, want 15", got)
	}
}

func TestFetchIncrementSequence(t *testing.T) {
	typ := NewFetchIncrement(8)
	state := typ.Init(4)
	if state != "0" {
		t.Fatalf("init state = %v, want 0", state)
	}
	for i := 0; i < 5; i++ {
		var resp Value
		state, resp = apply(t, typ, state, OpFetchIncrement, nil)
		if want := Hex(big.NewInt(int64(i))); resp != want {
			t.Fatalf("increment %d returned %v, want %v", i, resp, want)
		}
	}
	if state != "5" {
		t.Fatalf("state after 5 increments = %v, want 5", state)
	}
}

func TestFetchIncrementWrapsModulo2k(t *testing.T) {
	typ := NewFetchIncrement(2) // mod 4
	state := typ.Init(1)
	for i := 0; i < 4; i++ {
		state, _ = apply(t, typ, state, OpFetchIncrement, nil)
	}
	if state != "0" {
		t.Fatalf("state after 4 increments mod 4 = %v, want 0", state)
	}
}

func TestFetchAdd(t *testing.T) {
	typ := NewFetchAdd(8)
	state := typ.Init(1)
	state, resp := apply(t, typ, state, OpFetchAdd, HexUint(10))
	if resp != "0" || state != "a" {
		t.Fatalf("fetch&add(10): resp=%v state=%v", resp, state)
	}
	state, resp = apply(t, typ, state, OpFetchAdd, 250) // int arg allowed
	if resp != "a" || state != "4" {                    // (10+250) mod 256 = 4
		t.Fatalf("fetch&add(250): resp=%v state=%v", resp, state)
	}
}

func TestFetchAndWakeupPattern(t *testing.T) {
	// Theorem 6.2: init all ones; p_i ANDs a mask with bit i cleared. The
	// last process's response has exactly its own bit still set among the
	// first n bits.
	const n, k = 4, 8
	typ := NewFetchAnd(k)
	state := typ.Init(n)
	if state != Hex(AllOnes(k)) {
		t.Fatalf("fetch&and init = %v, want all ones", state)
	}
	var lastResp Value
	for i := 0; i < n; i++ {
		mask := new(big.Int).Set(AllOnes(k))
		mask.SetBit(mask, i, 0)
		state, lastResp = apply(t, typ, state, OpFetchAnd, Hex(mask))
	}
	// Response of p_3: bits 0..2 cleared, bit 3 set, high bits 4..7 set.
	want := new(big.Int).Set(AllOnes(k))
	for i := 0; i < n-1; i++ {
		want.SetBit(want, i, 0)
	}
	if lastResp != Hex(want) {
		t.Fatalf("last fetch&and response = %v, want %v", lastResp, Hex(want))
	}
}

func TestFetchOr(t *testing.T) {
	typ := NewFetchOr(8)
	state := typ.Init(2)
	state, resp := apply(t, typ, state, OpFetchOr, HexUint(0b0101))
	if resp != "0" || state != "5" {
		t.Fatalf("fetch&or: resp=%v state=%v", resp, state)
	}
	_, resp = apply(t, typ, state, OpFetchOr, HexUint(0b0010))
	if resp != "5" {
		t.Fatalf("second fetch&or resp = %v, want 5", resp)
	}
}

func TestFetchComplement(t *testing.T) {
	typ := NewFetchComplement(8)
	state := typ.Init(1)
	state, resp := apply(t, typ, state, OpFetchComplement, 3)
	if resp != "0" || state != "8" {
		t.Fatalf("complement bit 3: resp=%v state=%v", resp, state)
	}
	state, _ = apply(t, typ, state, OpFetchComplement, 3)
	if state != "0" {
		t.Fatalf("double complement must restore: state=%v", state)
	}
}

func TestFetchComplementOutOfRangePanics(t *testing.T) {
	typ := NewFetchComplement(4)
	defer func() {
		if recover() == nil {
			t.Fatal("bit index out of range must panic")
		}
	}()
	typ.Apply(typ.Init(1), Op{Name: OpFetchComplement, Arg: 4})
}

func TestFetchMultiplyWakeupPattern(t *testing.T) {
	// Theorem 6.2: k = n bits, init 1, each process multiplies by 2. The
	// j-th multiplier's response is 2^(j-1) mod 2^n; the n-th response is
	// 2^(n-1) (the top bit), and the state then wraps to 0.
	const n = 6
	typ := NewFetchMultiply(n)
	state := typ.Init(n)
	var resp Value
	for j := 1; j <= n; j++ {
		state, resp = apply(t, typ, state, OpFetchMultiply, HexUint(2))
		want := new(big.Int).Lsh(big.NewInt(1), uint(j-1))
		if resp != Hex(want) {
			t.Fatalf("multiplier %d response = %v, want %v", j, resp, Hex(want))
		}
	}
	if state != "0" {
		t.Fatalf("state after n multiplies = %v, want 0", state)
	}
}

func TestQueueFIFO(t *testing.T) {
	typ := NewEmptyQueue()
	state := typ.Init(3)
	state, _ = apply(t, typ, state, OpEnqueue, "a")
	state, _ = apply(t, typ, state, OpEnqueue, "b")
	state, resp := apply(t, typ, state, OpDequeue, nil)
	if resp != "a" {
		t.Fatalf("dequeue = %v, want a", resp)
	}
	state, resp = apply(t, typ, state, OpDequeue, nil)
	if resp != "b" {
		t.Fatalf("dequeue = %v, want b", resp)
	}
	_, resp = apply(t, typ, state, OpDequeue, nil)
	if resp != Empty {
		t.Fatalf("dequeue on empty = %v, want %v", resp, Empty)
	}
}

func TestStackLIFO(t *testing.T) {
	typ := NewEmptyStack()
	state := typ.Init(3)
	state, _ = apply(t, typ, state, OpPush, 1)
	state, _ = apply(t, typ, state, OpPush, 2)
	state, resp := apply(t, typ, state, OpPop, nil)
	if resp != 2 {
		t.Fatalf("pop = %v, want 2", resp)
	}
	state, resp = apply(t, typ, state, OpPop, nil)
	if resp != 1 {
		t.Fatalf("pop = %v, want 1", resp)
	}
	_, resp = apply(t, typ, state, OpPop, nil)
	if resp != Empty {
		t.Fatalf("pop on empty = %v, want %v", resp, Empty)
	}
}

func TestWakeupQueueInitialContents(t *testing.T) {
	typ := NewWakeupQueue()
	state := typ.Init(4)
	var got []Value
	for i := 0; i < 4; i++ {
		var resp Value
		state, resp = apply(t, typ, state, OpDequeue, nil)
		got = append(got, resp)
	}
	if !reflect.DeepEqual(got, []Value{1, 2, 3, 4}) {
		t.Fatalf("wakeup queue dequeues = %v, want [1 2 3 4]", got)
	}
}

func TestWakeupStackBottomIsN(t *testing.T) {
	typ := NewWakeupStack()
	state := typ.Init(4)
	var last Value
	for i := 0; i < 4; i++ {
		state, last = apply(t, typ, state, OpPop, nil)
	}
	if last != 4 {
		t.Fatalf("last popped item = %v, want 4 (the bottom)", last)
	}
}

func TestApplyDoesNotMutateContainerState(t *testing.T) {
	typ := NewEmptyQueue()
	state := typ.Init(1)
	s1, _ := typ.Apply(state, Op{Name: OpEnqueue, Arg: "x"})
	s2, _ := typ.Apply(s1, Op{Name: OpDequeue, Arg: nil})
	// s1 must be unaffected by the dequeue producing s2.
	items := s1.([]Value)
	if len(items) != 1 || items[0] != "x" {
		t.Fatalf("prior state mutated: %v", items)
	}
	if len(s2.([]Value)) != 0 {
		t.Fatalf("dequeue result state = %v, want empty", s2)
	}
}

func TestReadIncrement(t *testing.T) {
	typ := NewReadIncrement(8)
	state := typ.Init(3)
	state, resp := apply(t, typ, state, OpIncrement, nil)
	if resp != nil {
		t.Fatalf("increment must return only an ack (nil), got %v", resp)
	}
	state, resp = apply(t, typ, state, OpRead, nil)
	if resp != "1" {
		t.Fatalf("read = %v, want 1", resp)
	}
	_ = state
}

func TestCAS(t *testing.T) {
	typ := NewCAS("init")
	state := typ.Init(1)
	state, resp := apply(t, typ, state, OpCAS, CASArg{Old: "init", New: "a"})
	if resp != "init" || state != "a" {
		t.Fatalf("successful cas: resp=%v state=%v", resp, state)
	}
	state, resp = apply(t, typ, state, OpCAS, CASArg{Old: "init", New: "b"})
	if state != "a" || resp != "a" {
		t.Fatalf("failed cas must not change state: resp=%v state=%v", resp, state)
	}
	state, _ = apply(t, typ, state, OpWrite, "w")
	if state != "w" {
		t.Fatalf("write: state=%v", state)
	}
	_, resp = apply(t, typ, state, OpRead, nil)
	if resp != "w" {
		t.Fatalf("read = %v", resp)
	}
}

func TestSwapObject(t *testing.T) {
	typ := NewSwapObject(0)
	state := typ.Init(1)
	state, resp := apply(t, typ, state, OpSwapVal, 1)
	if resp != 0 || state != 1 {
		t.Fatalf("swap: resp=%v state=%v", resp, state)
	}
	_, resp = apply(t, typ, state, OpRead, nil)
	if resp != 1 {
		t.Fatalf("read = %v, want 1", resp)
	}
}

func TestReplayFetchIncrement(t *testing.T) {
	typ := NewFetchIncrement(8)
	log := make([]Op, 5)
	for i := range log {
		log[i] = Op{Name: OpFetchIncrement}
	}
	final, resps := Replay(typ, 5, log)
	if final != "5" {
		t.Fatalf("final state = %v, want 5", final)
	}
	for i, r := range resps {
		if r != Hex(big.NewInt(int64(i))) {
			t.Fatalf("response %d = %v", i, r)
		}
	}
}

func TestUnknownOpPanics(t *testing.T) {
	for _, typ := range []Type{
		NewFetchIncrement(4), NewEmptyQueue(), NewReadIncrement(4),
		NewCAS(nil), NewSwapObject(nil), NewTAS(),
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: unknown op must panic", typ.Name())
				}
			}()
			typ.Apply(typ.Init(1), Op{Name: "no-such-op"})
		}()
	}
}

func TestTypeNamesAndOps(t *testing.T) {
	cases := []struct {
		typ  Type
		name string
		ops  int
	}{
		{NewFetchIncrement(8), "fetch&increment(8)", 1},
		{NewFetchAnd(16), "fetch&and(16)", 1},
		{NewWakeupQueue(), "queue", 2},
		{NewEmptyStack(), "stack", 2},
		{NewReadIncrement(4), "read/increment(4)", 2},
		{NewCAS(nil), "compare&swap", 3},
		{NewSwapObject(nil), "swap-object", 2},
		{NewTAS(), "test&set", 2},
	}
	for _, c := range cases {
		if got := c.typ.Name(); got != c.name {
			t.Errorf("Name() = %q, want %q", got, c.name)
		}
		if got := len(c.typ.Ops()); got != c.ops {
			t.Errorf("%s: len(Ops()) = %d, want %d", c.name, got, c.ops)
		}
	}
}

func TestOpString(t *testing.T) {
	if got := (Op{Name: "dequeue"}).String(); got != "dequeue()" {
		t.Errorf("Op.String() = %q", got)
	}
	if got := (Op{Name: "enqueue", Arg: 7}).String(); got != "enqueue(7)" {
		t.Errorf("Op.String() = %q", got)
	}
}

// TestPropertyQueueMatchesSliceModel checks the queue type against a plain
// slice reference model on random op sequences.
func TestPropertyQueueMatchesSliceModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		typ := NewEmptyQueue()
		state := typ.Init(1)
		var model []Value
		for i := 0; i < 100; i++ {
			if rng.Intn(2) == 0 {
				v := rng.Intn(50)
				state, _ = typ.Apply(state, Op{Name: OpEnqueue, Arg: v})
				model = append(model, v)
			} else {
				var resp Value
				state, resp = typ.Apply(state, Op{Name: OpDequeue})
				if len(model) == 0 {
					if resp != Empty {
						return false
					}
				} else {
					if resp != model[0] {
						return false
					}
					model = model[1:]
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyStackMatchesSliceModel is the stack analogue.
func TestPropertyStackMatchesSliceModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		typ := NewEmptyStack()
		state := typ.Init(1)
		var model []Value
		for i := 0; i < 100; i++ {
			if rng.Intn(2) == 0 {
				v := rng.Intn(50)
				state, _ = typ.Apply(state, Op{Name: OpPush, Arg: v})
				model = append(model, v)
			} else {
				var resp Value
				state, resp = typ.Apply(state, Op{Name: OpPop})
				if len(model) == 0 {
					if resp != Empty {
						return false
					}
				} else {
					if resp != model[len(model)-1] {
						return false
					}
					model = model[:len(model)-1]
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyFetchOpsMatchBigIntModel cross-checks all numeric fetch&φ
// types against direct big.Int arithmetic on random op streams.
func TestPropertyFetchOpsMatchBigIntModel(t *testing.T) {
	const k = 12
	mod := pow2(k)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		types := []Type{NewFetchIncrement(k), NewFetchAdd(k), NewFetchAnd(k), NewFetchOr(k), NewFetchMultiply(k)}
		typ := types[rng.Intn(len(types))]
		state := typ.Init(4)
		model := ParseHex(state.(string))
		for i := 0; i < 60; i++ {
			arg := new(big.Int).SetInt64(int64(rng.Intn(1 << k)))
			var opName string
			next := new(big.Int)
			switch typ.Name() {
			case "fetch&increment(12)":
				opName, arg = OpFetchIncrement, nil
				next.Add(model, big.NewInt(1))
			case "fetch&add(12)":
				opName = OpFetchAdd
				next.Add(model, arg)
			case "fetch&and(12)":
				opName = OpFetchAnd
				next.And(model, arg)
			case "fetch&or(12)":
				opName = OpFetchOr
				next.Or(model, arg)
			case "fetch&multiply(12)":
				opName = OpFetchMultiply
				next.Mul(model, arg)
			}
			next.Mod(next, mod)
			var op Op
			if arg == nil {
				op = Op{Name: opName}
			} else {
				op = Op{Name: opName, Arg: Hex(arg)}
			}
			var resp Value
			state, resp = typ.Apply(state, op)
			if resp != Hex(model) {
				return false
			}
			if state != Hex(next) {
				return false
			}
			model = next
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
