// Package objtype defines sequential specifications of shared object types.
//
// A Type is a sequential state machine: an initial state plus a transition
// function Apply(state, op) → (state', response). Universal constructions
// (package universal) are instantiated with a Type to obtain a wait-free
// linearizable shared object of that type; they are *oblivious* — they use
// the Type only through this interface, never its semantics — which is
// exactly the class of constructions the paper's lower bound applies to.
//
// The package implements every type named in Theorem 6.2 — k-bit
// fetch&increment, fetch&and, fetch&or, fetch&complement, fetch&multiply,
// queue, stack, and the read/increment counter — plus fetch&add,
// compare&swap and swap objects used in the related-work discussion.
//
// States and responses are shmem.Values and must be immutable; numeric
// states are canonical lowercase-hex strings so that structural equality,
// formatting, and history keys are all stable.
package objtype

import (
	"fmt"

	"jayanti98/internal/shmem"
)

// Value aliases shmem.Value: object states, operation arguments and
// responses all travel through shared registers.
type Value = shmem.Value

// Op is one operation instance on an object: an operation name from the
// type's repertoire plus an optional argument.
type Op struct {
	Name string
	Arg  Value
}

// String renders the op invocation.
func (o Op) String() string {
	if o.Arg == nil {
		return o.Name + "()"
	}
	return fmt.Sprintf("%s(%v)", o.Name, o.Arg)
}

// Type is a sequential object specification.
type Type interface {
	// Name identifies the type, e.g. "fetch&increment(8)".
	Name() string
	// Init returns the initial state for an n-process system.
	Init(n int) Value
	// Apply performs op on state, returning the new state and the
	// operation's response. Apply must be pure: it must not modify state
	// and must return a fresh (or immutable) new state.
	Apply(state Value, op Op) (newState, response Value)
	// Ops lists the operation names the type supports.
	Ops() []string
}

// Replay applies a log of operations to the type's initial state and
// returns the final state and the per-operation responses. It is the
// linearization engine used by universal constructions and checkers.
func Replay(t Type, n int, log []Op) (final Value, responses []Value) {
	state := t.Init(n)
	responses = make([]Value, len(log))
	for i, op := range log {
		state, responses[i] = t.Apply(state, op)
	}
	return state, responses
}

// errUnknownOp panics with a uniform message; applying an operation a type
// does not support is a programming error, not a runtime condition.
func errUnknownOp(t Type, op Op) {
	panic(fmt.Sprintf("objtype: type %s does not support operation %q", t.Name(), op.Name))
}

func valuesEqual(a, b Value) bool { return shmem.ValuesEqual(a, b) }
