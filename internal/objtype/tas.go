package objtype

import "fmt"

// OpTestAndSet is the single operation of the test&set type.
const OpTestAndSet = "test&set"

// tasObject is the one-shot test&set object of the related-work algorithms
// (Tromp–Vitányi, Giakkoupis–Woelfel): the state is 0 (unset) or 1 (set);
// test&set sets it and returns the previous state. In any linearization the
// first operation returns 0 ("wins") and every later one returns 1
// ("loses"), so a concurrent history is linearizable exactly when it has at
// most one winner and no completed loser that precedes the winner in real
// time.
//
// TAS is *not* perturbable in the paper's sense — once the state is 1 no
// suffix of operations changes any future response — so Theorem 6.1 does
// not apply to it directly; the wakeup reduction (wakeup.TASReduction)
// only goes through at n = 2. See DESIGN §15.
type tasObject struct{}

func (tasObject) Name() string   { return "test&set" }
func (tasObject) Init(int) Value { return 0 }
func (tasObject) Ops() []string  { return []string{OpTestAndSet, OpRead} }

func (t tasObject) Apply(state Value, op Op) (Value, Value) {
	s, ok := state.(int)
	if !ok {
		panic(fmt.Sprintf("objtype: %s state must be an int, got %T", t.Name(), state))
	}
	switch op.Name {
	case OpTestAndSet:
		return 1, s
	case OpRead:
		return s, s
	default:
		errUnknownOp(t, op)
		return nil, nil // unreachable
	}
}

// NewTAS returns the one-shot test&set type.
func NewTAS() Type { return tasObject{} }
