package objtype

import "testing"

func TestTASApply(t *testing.T) {
	typ := NewTAS()
	state := typ.Init(3)
	if state != 0 {
		t.Fatalf("initial state = %v, want 0", state)
	}
	state, resp := typ.Apply(state, Op{Name: OpTestAndSet})
	if resp != 0 || state != 1 {
		t.Fatalf("first test&set: resp=%v state=%v, want 0 / 1", resp, state)
	}
	state, resp = typ.Apply(state, Op{Name: OpTestAndSet})
	if resp != 1 || state != 1 {
		t.Fatalf("second test&set: resp=%v state=%v, want 1 / 1", resp, state)
	}
	if _, resp = typ.Apply(state, Op{Name: OpRead}); resp != 1 {
		t.Fatalf("read = %v, want 1", resp)
	}
	if _, resp = typ.Apply(typ.Init(3), Op{Name: OpRead}); resp != 0 {
		t.Fatalf("read of fresh object = %v, want 0", resp)
	}
}

// TestReplayTAS: in any sequential execution exactly the first test&set
// wins — the defining property the linearizability checks of the zoo's
// randomized protocols reduce to.
func TestReplayTAS(t *testing.T) {
	typ := NewTAS()
	log := make([]Op, 6)
	for i := range log {
		log[i] = Op{Name: OpTestAndSet}
	}
	final, resps := Replay(typ, 6, log)
	if final != 1 {
		t.Fatalf("final state = %v, want 1", final)
	}
	for i, r := range resps {
		want := 1
		if i == 0 {
			want = 0
		}
		if r != want {
			t.Fatalf("response %d = %v, want %v", i, r, want)
		}
	}
}

func TestTASBadState(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-int state must panic")
		}
	}()
	NewTAS().Apply("1", Op{Name: OpTestAndSet})
}
