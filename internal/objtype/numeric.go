package objtype

import (
	"fmt"
	"math/big"
)

// Operation names of the numeric types.
const (
	OpFetchIncrement  = "fetch&increment"
	OpFetchAdd        = "fetch&add"
	OpFetchAnd        = "fetch&and"
	OpFetchOr         = "fetch&or"
	OpFetchComplement = "fetch&complement"
	OpFetchMultiply   = "fetch&multiply"
)

// Hex encodes a non-negative integer as the canonical lowercase-hex string
// used for numeric object states and arguments.
func Hex(v *big.Int) string { return v.Text(16) }

// HexUint encodes a uint64 in canonical hex.
func HexUint(v uint64) string { return new(big.Int).SetUint64(v).Text(16) }

// ParseHex decodes a canonical hex string. It panics on malformed input,
// which can only arise from a bug (states never leave this package's
// control other than as opaque immutable values).
func ParseHex(s string) *big.Int {
	v, ok := new(big.Int).SetString(s, 16)
	if !ok {
		panic(fmt.Sprintf("objtype: malformed hex state %q", s))
	}
	return v
}

// AllOnes returns the k-bit all-ones value 2^k − 1.
func AllOnes(k int) *big.Int {
	return new(big.Int).Sub(pow2(k), big.NewInt(1))
}

func one() *big.Int { return big.NewInt(1) }

func pow2(k int) *big.Int { return new(big.Int).Lsh(big.NewInt(1), uint(k)) }

// numeric is a k-bit register state with one or more fetch&φ operations.
// The state is value mod 2^k, encoded as canonical hex.
type numeric struct {
	name string
	k    int
	init func(n, k int) *big.Int
	ops  map[string]func(state, arg *big.Int, k int) *big.Int
}

func (t *numeric) Name() string { return fmt.Sprintf("%s(%d)", t.name, t.k) }

func (t *numeric) Init(n int) Value { return Hex(t.mask(t.init(n, t.k))) }

func (t *numeric) Ops() []string {
	names := make([]string, 0, len(t.ops))
	for name := range t.ops {
		names = append(names, name)
	}
	return names
}

func (t *numeric) mask(v *big.Int) *big.Int {
	m := new(big.Int).Lsh(big.NewInt(1), uint(t.k))
	return new(big.Int).Mod(v, m)
}

func (t *numeric) Apply(state Value, op Op) (Value, Value) {
	f, ok := t.ops[op.Name]
	if !ok {
		errUnknownOp(t, op)
	}
	s, ok := state.(string)
	if !ok {
		panic(fmt.Sprintf("objtype: %s state must be a hex string, got %T", t.Name(), state))
	}
	cur := ParseHex(s)
	var arg *big.Int
	if op.Arg != nil {
		switch a := op.Arg.(type) {
		case string:
			arg = ParseHex(a)
		case int:
			arg = big.NewInt(int64(a))
		default:
			panic(fmt.Sprintf("objtype: %s argument must be a hex string or int, got %T", t.Name(), op.Arg))
		}
	}
	next := t.mask(f(cur, arg, t.k))
	return Hex(next), Hex(cur) // fetch&φ returns the previous state
}

// NewFetchIncrement returns the k-bit fetch&increment type of Theorem 6.2:
// fetch&increment() adds 1 mod 2^k and returns the previous state. The
// initial state is 0. Wakeup needs k ≥ log₂ n.
func NewFetchIncrement(k int) Type {
	return &numeric{
		name: OpFetchIncrement,
		k:    k,
		init: func(_, _ int) *big.Int { return big.NewInt(0) },
		ops: map[string]func(s, a *big.Int, k int) *big.Int{
			OpFetchIncrement: func(s, _ *big.Int, _ int) *big.Int {
				return new(big.Int).Add(s, big.NewInt(1))
			},
		},
	}
}

// NewFetchAdd returns the k-bit fetch&add type: fetch&add(v) adds v mod 2^k
// and returns the previous state. Initial state 0. (Mentioned in Section 7;
// fetch&increment is its arity-0 special case.)
func NewFetchAdd(k int) Type {
	return &numeric{
		name: OpFetchAdd,
		k:    k,
		init: func(_, _ int) *big.Int { return big.NewInt(0) },
		ops: map[string]func(s, a *big.Int, k int) *big.Int{
			OpFetchAdd: func(s, a *big.Int, _ int) *big.Int {
				return new(big.Int).Add(s, a)
			},
		},
	}
}

// NewFetchAnd returns the k-bit fetch&and type of Theorem 6.2:
// fetch&and(v) sets the state to state AND v and returns the previous
// state. The initial state is all ones (every bit set), as the wakeup
// reduction requires. Wakeup needs k ≥ n.
func NewFetchAnd(k int) Type {
	return &numeric{
		name: OpFetchAnd,
		k:    k,
		init: func(_, k int) *big.Int { return AllOnes(k) },
		ops: map[string]func(s, a *big.Int, k int) *big.Int{
			OpFetchAnd: func(s, a *big.Int, _ int) *big.Int {
				return new(big.Int).And(s, a)
			},
		},
	}
}

// NewFetchOr returns the k-bit fetch&or type of Theorem 6.2: fetch&or(v)
// sets the state to state OR v and returns the previous state. Initial
// state 0. Wakeup needs k ≥ n.
func NewFetchOr(k int) Type {
	return &numeric{
		name: OpFetchOr,
		k:    k,
		init: func(_, _ int) *big.Int { return big.NewInt(0) },
		ops: map[string]func(s, a *big.Int, k int) *big.Int{
			OpFetchOr: func(s, a *big.Int, _ int) *big.Int {
				return new(big.Int).Or(s, a)
			},
		},
	}
}

// NewFetchComplement returns the k-bit fetch&complement type of Theorem
// 6.2: fetch&complement(i), for a 0-based bit index i < k, flips bit i and
// returns the previous state. Initial state 0. Wakeup needs k ≥ n.
func NewFetchComplement(k int) Type {
	return &numeric{
		name: OpFetchComplement,
		k:    k,
		init: func(_, _ int) *big.Int { return big.NewInt(0) },
		ops: map[string]func(s, a *big.Int, k int) *big.Int{
			OpFetchComplement: func(s, a *big.Int, k int) *big.Int {
				i := int(a.Int64())
				if i < 0 || i >= k {
					panic(fmt.Sprintf("objtype: fetch&complement bit %d out of range [0,%d)", i, k))
				}
				out := new(big.Int).Set(s)
				if out.Bit(i) == 0 {
					out.SetBit(out, i, 1)
				} else {
					out.SetBit(out, i, 0)
				}
				return out
			},
		},
	}
}

// NewFetchMultiply returns the k-bit fetch&multiply type of Theorem 6.2:
// fetch&multiply(v) sets the state to (state·v) mod 2^k and returns the
// previous state. Initial state 1. Wakeup needs k ≥ n.
func NewFetchMultiply(k int) Type {
	return &numeric{
		name: OpFetchMultiply,
		k:    k,
		init: func(_, _ int) *big.Int { return big.NewInt(1) },
		ops: map[string]func(s, a *big.Int, k int) *big.Int{
			OpFetchMultiply: func(s, a *big.Int, _ int) *big.Int {
				return new(big.Int).Mul(s, a)
			},
		},
	}
}
