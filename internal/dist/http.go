package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"jayanti98/internal/jobs"
)

// The shard pull protocol, mounted on lbserver next to the jobs API:
//
//	POST /v1/shards/lease          poll for work; 200 with a grant or 204
//	POST /v1/shards/{id}/result    upload a shard payload (content-hashed)
//	POST /v1/shards/{id}/heartbeat extend the lease
//	GET  /v1/shards                coordinator ledger snapshot
//
// Status codes carry the protocol's verdicts: 404 for a shard the
// coordinator no longer tracks (job finished or canceled — abandon), 409
// for a stale lease (the shard was re-leased — abandon), 400 for a
// corrupt upload (hash mismatch — retry the upload).

// LeaseRequest is the worker's poll.
type LeaseRequest struct {
	// Worker identifies the poller; liveness and lease ownership hang
	// off it. Workers must pick names unique within the fleet.
	Worker string `json:"worker"`
}

// LeaseResponse is a granted shard in wire form.
type LeaseResponse struct {
	ShardID   string     `json:"shardId"`
	Lease     int64      `json:"lease"`
	TTLMillis int64      `json:"ttlMillis"`
	Spec      *jobs.Spec `json:"spec"`
	Range     Range      `json:"range"`
}

// ResultRequest is a shard payload upload.
type ResultRequest struct {
	Worker string `json:"worker"`
	Lease  int64  `json:"lease"`
	// Hash is the lowercase hex SHA-256 of Payload; the coordinator
	// recomputes and verifies it before accepting, so a truncated or
	// corrupted body can never reach the merge.
	Hash    string          `json:"hash"`
	Payload json.RawMessage `json:"payload"`
}

// HeartbeatRequest extends a lease.
type HeartbeatRequest struct {
	Worker string `json:"worker"`
	Lease  int64  `json:"lease"`
}

// RegisterRoutes mounts the shard protocol on mux.
func (c *Coordinator) RegisterRoutes(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/shards/lease", func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if err := decodeBody(r, &req); err != nil {
			distError(w, http.StatusBadRequest, err)
			return
		}
		if req.Worker == "" {
			distError(w, http.StatusBadRequest, errors.New("dist: lease request without worker"))
			return
		}
		grant := c.Lease(req.Worker)
		if grant == nil {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		distJSON(w, http.StatusOK, LeaseResponse{
			ShardID:   grant.ShardID,
			Lease:     grant.Lease,
			TTLMillis: grant.TTL.Milliseconds(),
			Spec:      grant.Spec,
			Range:     grant.Range,
		})
	})

	mux.HandleFunc("POST /v1/shards/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		var req ResultRequest
		if err := decodeBody(r, &req); err != nil {
			distError(w, http.StatusBadRequest, err)
			return
		}
		err := c.Result(r.PathValue("id"), req.Lease, req.Hash, []byte(req.Payload))
		if err != nil {
			distError(w, statusFor(err), err)
			return
		}
		distJSON(w, http.StatusOK, map[string]string{"status": "accepted"})
	})

	mux.HandleFunc("POST /v1/shards/{id}/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		if err := decodeBody(r, &req); err != nil {
			distError(w, http.StatusBadRequest, err)
			return
		}
		if err := c.Heartbeat(r.PathValue("id"), req.Lease); err != nil {
			distError(w, statusFor(err), err)
			return
		}
		distJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})

	mux.HandleFunc("GET /v1/shards", func(w http.ResponseWriter, r *http.Request) {
		distJSON(w, http.StatusOK, c.Snapshot())
	})
}

// statusFor maps protocol verdicts to status codes.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrUnknownShard):
		return http.StatusNotFound
	case errors.Is(err, ErrLeaseLost):
		return http.StatusConflict
	case errors.Is(err, ErrHashMismatch):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("dist: decoding request: %w", err)
	}
	return nil
}

func distJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func distError(w http.ResponseWriter, code int, err error) {
	distJSON(w, code, map[string]string{"error": err.Error()})
}
