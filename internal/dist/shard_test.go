package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"jayanti98/internal/jobs"
)

func TestPartitionEdgeCases(t *testing.T) {
	cases := []struct {
		name      string
		n, shards int
		want      []Range
	}{
		{"empty", 0, 4, nil},
		{"negative", -3, 4, nil},
		{"one coordinate many shards", 1, 8, []Range{{0, 1}}},
		{"shards exceed coordinates", 3, 8, []Range{{0, 1}, {1, 2}, {2, 3}}},
		{"zero shards clamp to one", 5, 0, []Range{{0, 5}}},
		{"negative shards clamp to one", 5, -2, []Range{{0, 5}}},
		{"even split", 6, 3, []Range{{0, 2}, {2, 4}, {4, 6}}},
		{"remainder goes to the first ranges", 7, 3, []Range{{0, 3}, {3, 5}, {5, 7}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Partition(tc.n, tc.shards)
			if len(got) != len(tc.want) {
				t.Fatalf("Partition(%d, %d) = %v, want %v", tc.n, tc.shards, got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("Partition(%d, %d) = %v, want %v", tc.n, tc.shards, got, tc.want)
				}
			}
		})
	}
}

// TestPartitionCoversContiguously is the partition invariant over a grid
// of sizes: the ranges tile [0, n) in order, every range is nonempty, and
// no two range lengths differ by more than one.
func TestPartitionCoversContiguously(t *testing.T) {
	for n := 1; n <= 40; n++ {
		for shards := 1; shards <= 12; shards++ {
			ranges := Partition(n, shards)
			lo, minLen, maxLen := 0, n, 0
			for _, r := range ranges {
				if r.Lo != lo || r.Len() < 1 {
					t.Fatalf("Partition(%d, %d) = %v: not a contiguous tiling", n, shards, ranges)
				}
				if r.Len() < minLen {
					minLen = r.Len()
				}
				if r.Len() > maxLen {
					maxLen = r.Len()
				}
				lo = r.Hi
			}
			if lo != n {
				t.Fatalf("Partition(%d, %d) = %v: covers [0, %d), want [0, %d)", n, shards, ranges, lo, n)
			}
			if maxLen-minLen > 1 {
				t.Fatalf("Partition(%d, %d) = %v: lengths differ by %d", n, shards, ranges, maxLen-minLen)
			}
		}
	}
}

func TestCoordsShardability(t *testing.T) {
	norm := func(s *jobs.Spec) *jobs.Spec {
		t.Helper()
		s.Normalize()
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		return s
	}
	cases := []struct {
		name      string
		spec      *jobs.Spec
		coords    int
		shardable bool
	}{
		{"nil spec", nil, 0, false},
		{"report", norm(&jobs.Spec{Kind: jobs.KindReport}), 0, false},
		{"exhaustive explore", norm(&jobs.Spec{Kind: jobs.KindExplore,
			Explore: &jobs.ExploreSpec{Mode: "exhaustive"}}), 0, false},
		{"fuzz explore", norm(&jobs.Spec{Kind: jobs.KindExplore,
			Explore: &jobs.ExploreSpec{Mode: "fuzz", Samples: 17}}), 17, true},
		// 3 constructions × ns {2,4,8,16} = 12 grid points.
		{"sweep all constructions", norm(&jobs.Spec{Kind: jobs.KindSweep,
			Sweep: &jobs.SweepSpec{Type: "queue", MaxN: 16}}), 12, true},
		{"sweep one construction", norm(&jobs.Spec{Kind: jobs.KindSweep,
			Sweep: &jobs.SweepSpec{Type: "queue", Constructions: []string{"central"}, MaxN: 8}}), 3, true},
		{"sweep kind without sub-spec", &jobs.Spec{Kind: jobs.KindSweep}, 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			coords, ok := Coords(tc.spec)
			if coords != tc.coords || ok != tc.shardable {
				t.Fatalf("Coords = (%d, %v), want (%d, %v)", coords, ok, tc.coords, tc.shardable)
			}
		})
	}
}

// serialResult runs the spec through the in-process reference path.
func serialResult(t *testing.T, spec *jobs.Spec) []byte {
	t.Helper()
	out, err := jobs.Execute(context.Background(), spec, jobs.NewProgress(), 2)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// distributedResult executes every shard of the partition and merges.
func distributedResult(t *testing.T, spec *jobs.Spec, shards int) []byte {
	t.Helper()
	n, ok := Coords(spec)
	if !ok {
		t.Fatalf("spec kind %q not shardable", spec.Kind)
	}
	ranges := Partition(n, shards)
	payloads := make([][]byte, len(ranges))
	for i, r := range ranges {
		p, err := ExecuteShard(context.Background(), spec, r, 2)
		if err != nil {
			t.Fatalf("shard %d %+v: %v", i, r, err)
		}
		payloads[i] = p
	}
	merged, err := Merge(spec, ranges, payloads)
	if err != nil {
		t.Fatal(err)
	}
	return merged
}

// TestShardMergeMatchesSerialSweep is the acceptance property for sweep
// jobs: for every shard count, executing the shards independently and
// merging index-ordered reproduces the serial result byte-for-byte.
func TestShardMergeMatchesSerialSweep(t *testing.T) {
	spec := &jobs.Spec{Kind: jobs.KindSweep, Sweep: &jobs.SweepSpec{Type: "queue", MaxN: 16}}
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	serial := serialResult(t, spec)
	coords, _ := Coords(spec)
	for _, shards := range []int{1, 2, 3, 5, coords, coords + 7} {
		merged := distributedResult(t, spec, shards)
		if !bytes.Equal(merged, serial) {
			t.Errorf("%d shards: merged result differs from serial\nserial: %s\nmerged: %s",
				shards, serial, merged)
		}
	}
}

// TestShardMergeMatchesSerialFuzz is the same property for fuzz
// campaigns: shard boundaries never move a sample's derived seed, so the
// merged report is byte-identical — including the failure list.
func TestShardMergeMatchesSerialFuzz(t *testing.T) {
	spec := &jobs.Spec{Kind: jobs.KindExplore, Explore: &jobs.ExploreSpec{
		Mode: "fuzz", Alg: "central", Samples: 23, Seed: 5,
	}}
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	serial := serialResult(t, spec)
	for _, shards := range []int{1, 2, 4, 23} {
		merged := distributedResult(t, spec, shards)
		if !bytes.Equal(merged, serial) {
			t.Errorf("%d shards: merged fuzz result differs from serial\nserial: %s\nmerged: %s",
				shards, serial, merged)
		}
	}
}

func TestExecuteShardRejectsBadInput(t *testing.T) {
	sweepSpec := &jobs.Spec{Kind: jobs.KindSweep, Sweep: &jobs.SweepSpec{Type: "queue", MaxN: 4}}
	sweepSpec.Normalize()
	report := &jobs.Spec{Kind: jobs.KindReport}
	report.Normalize()
	cases := []struct {
		name string
		spec *jobs.Spec
		r    Range
	}{
		{"not shardable", report, Range{0, 1}},
		{"negative lo", sweepSpec, Range{-1, 2}},
		{"hi beyond grid", sweepSpec, Range{0, 1000}},
		{"empty range", sweepSpec, Range{2, 2}},
		{"inverted range", sweepSpec, Range{3, 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ExecuteShard(context.Background(), tc.spec, tc.r, 1); err == nil {
				t.Fatal("ExecuteShard accepted")
			}
		})
	}
}

func TestMergeRejectsInconsistentShards(t *testing.T) {
	spec := &jobs.Spec{Kind: jobs.KindSweep, Sweep: &jobs.SweepSpec{Type: "queue", MaxN: 4}}
	spec.Normalize()
	n, _ := Coords(spec)
	ranges := Partition(n, 2)

	if _, err := Merge(spec, ranges, [][]byte{[]byte(`{}`)}); err == nil {
		t.Fatal("Merge accepted a range/payload count mismatch")
	}
	short, err := json.Marshal(sweepShardPayload{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(spec, ranges, [][]byte{short, short}); err == nil {
		t.Fatal("Merge accepted a shard with too few results")
	}
	if _, err := Merge(spec, ranges, [][]byte{[]byte(`not json`), short}); err == nil {
		t.Fatal("Merge accepted a corrupt payload")
	}
	report := &jobs.Spec{Kind: jobs.KindReport}
	report.Normalize()
	if _, err := Merge(report, nil, nil); err == nil {
		t.Fatal("Merge accepted a non-shardable spec")
	}
}
