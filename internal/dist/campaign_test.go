package dist

import (
	"bytes"
	"testing"

	"jayanti98/internal/campaign"
	"jayanti98/internal/jobs"
)

func campaignRoundJobSpec(corpus [][]int) *jobs.Spec {
	spec := &jobs.Spec{Kind: jobs.KindCampaignRound, CampaignRound: &campaign.RoundSpec{
		Campaign: campaign.Spec{
			Alg: "group-update", Object: "fetch-increment", N: 2, BatchSize: 24, MaxCorpus: 8,
		},
		Round:  1,
		Corpus: corpus,
	}}
	spec.Normalize()
	return spec
}

func TestCoordsCampaignRound(t *testing.T) {
	spec := campaignRoundJobSpec(nil)
	coords, ok := Coords(spec)
	if !ok || coords != 24 {
		t.Fatalf("Coords = (%d, %v), want (24, true)", coords, ok)
	}
	if _, ok := Coords(&jobs.Spec{Kind: jobs.KindCampaignRound}); ok {
		t.Fatal("campaign-round spec without sub-spec counted as shardable")
	}
}

// TestShardMergeMatchesSerialCampaignRound is the merge property for
// campaign rounds: a round sharded over any worker partition — the
// shard-lease fan-out — reassembles to the exact bytes of the in-process
// round, corpus mutations included (every shard sees the same frozen
// corpus from the lease grant).
func TestShardMergeMatchesSerialCampaignRound(t *testing.T) {
	corpus := [][]int{{0, 1, 0, 1}, {1, 1, 0}, {0, 0, 1, 1, 0}}
	spec := campaignRoundJobSpec(corpus)
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	serial := serialResult(t, spec)
	coords, _ := Coords(spec)
	for _, shards := range []int{1, 2, 3, 7, coords} {
		merged := distributedResult(t, spec, shards)
		if !bytes.Equal(merged, serial) {
			t.Errorf("%d shards: merged campaign round differs from serial", shards)
		}
	}
}
