package dist

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"strconv"
	"sync"
	"time"

	"jayanti98/internal/jobs"
	"jayanti98/internal/obs"
)

// The coordinator's rejection reasons, surfaced to workers as HTTP
// status codes (http.go) so a worker can tell "retry the upload" from
// "abandon the shard".
var (
	// ErrUnknownShard means the shard ID names nothing the coordinator is
	// tracking — the job finished, was canceled, or never existed.
	ErrUnknownShard = errors.New("dist: unknown shard")
	// ErrLeaseLost means the caller's lease token is no longer the
	// shard's current lease: the lease expired and the shard was handed
	// to another worker (or the shard already completed).
	ErrLeaseLost = errors.New("dist: lease lost")
	// ErrHashMismatch means the uploaded payload does not hash to the
	// content hash the worker claimed — a corrupt upload, rejected so the
	// merge never sees it. The lease survives; the worker retries.
	ErrHashMismatch = errors.New("dist: payload hash mismatch")
)

// Options configures a Coordinator.
type Options struct {
	// LeaseTTL is how long a shard lease lives without a heartbeat
	// before the shard is re-leased to another worker (≤ 0: 15s).
	LeaseTTL time.Duration
	// MaxShards bounds the shards one job is split into (≤ 0: 8). A job
	// never gets more shards than coordinates.
	MaxShards int
	// ActiveWindow is how recently a worker must have talked to the
	// coordinator (lease poll, heartbeat, or upload) to count as part of
	// the fleet (≤ 0: 4 × LeaseTTL). With no active workers a new job is
	// declined up front — and a job whose whole fleet vanished mid-run is
	// abandoned — so the scheduler falls back to local execution.
	ActiveWindow time.Duration
	// Obs is the metrics registry (nil: the process obs.Default).
	Obs *obs.Registry
	// Logger receives shard-lifecycle lines (nil: discard).
	Logger *slog.Logger
}

// shardState is one shard's place in the lease protocol.
type shardState int

const (
	shardPending shardState = iota // waiting to be leased
	shardLeased                    // owned by a worker, deadline ticking
	shardDone                      // payload accepted
)

// shard is the coordinator's record of one work unit.
type shard struct {
	job   *distJob
	index int
	rng   Range

	state    shardState
	lease    int64 // current lease token; stale tokens are rejected
	worker   string
	deadline time.Time
	leasedAt time.Time
	releases int // times a lease expired and the shard went back in the queue
	payload  []byte
}

// id is the shard's wire identity: "<jobID>.<index>".
func (s *shard) id() string { return s.job.id + "." + strconv.Itoa(s.index) }

// distJob is one spec being executed across the fleet.
type distJob struct {
	id        string
	spec      *jobs.Spec
	shards    []*shard
	remaining int
	done      chan struct{} // closed when the last shard result is accepted
	progress  *jobs.Progress
}

// Grant is a lease offer: everything a worker needs to execute one shard
// and report back.
type Grant struct {
	ShardID string
	Lease   int64
	TTL     time.Duration
	Spec    *jobs.Spec
	Range   Range
}

// Coordinator owns the shard ledger: it partitions jobs handed over by
// the scheduler (it implements jobs.Runner), leases shards to polling
// workers, re-leases the shards of workers that stop heartbeating,
// verifies uploaded payloads by content hash, and merges accepted shards
// index-ordered into the job result.
type Coordinator struct {
	opts Options
	now  func() time.Time // test seam

	mu       sync.Mutex
	jobs     map[string]*distJob
	byID     map[string]*shard // shard wire ID → shard, for the HTTP layer
	pending  []*shard          // FIFO of leasable shards
	workers  map[string]time.Time
	leaseSeq int64

	logger *slog.Logger
	met    struct {
		distributed, fallback       *obs.Counter
		leased, completed, released *obs.Counter
		rejected                    *obs.Counter
		shardSeconds                *obs.Histogram
	}
}

// NewCoordinator builds a coordinator and registers its metrics.
func NewCoordinator(opts Options) *Coordinator {
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 15 * time.Second
	}
	if opts.MaxShards <= 0 {
		opts.MaxShards = 8
	}
	if opts.ActiveWindow <= 0 {
		opts.ActiveWindow = 4 * opts.LeaseTTL
	}
	c := &Coordinator{
		opts:    opts,
		now:     time.Now,
		jobs:    make(map[string]*distJob),
		byID:    make(map[string]*shard),
		workers: make(map[string]time.Time),
		logger:  opts.Logger,
	}
	if c.logger == nil {
		c.logger = obs.NopLogger()
	}
	r := opts.Obs
	if r == nil {
		r = obs.Default()
	}
	c.met.distributed = r.Counter("dist_jobs_distributed_total", "Jobs executed across the worker fleet.", nil)
	c.met.fallback = r.Counter("dist_jobs_fallback_total", "Jobs declined to local execution (not shardable, or no active workers).", nil)
	c.met.leased = r.Counter("dist_shards_leased_total", "Shard leases granted (re-leases included).", nil)
	c.met.completed = r.Counter("dist_shards_completed_total", "Shard results accepted after hash verification.", nil)
	c.met.released = r.Counter("dist_shards_released_total", "Leases expired and re-queued (worker crashed or stalled).", nil)
	c.met.rejected = r.Counter("dist_results_rejected_total", "Shard uploads rejected (stale lease or hash mismatch).", nil)
	c.met.shardSeconds = r.Histogram("dist_shard_duration_seconds", "Lease-to-accept wall clock of completed shards.", nil, nil)
	r.GaugeFunc("dist_workers_active", "Workers seen within the active window.", nil, func() float64 {
		return float64(c.ActiveWorkers())
	})
	r.GaugeFunc("dist_shards_pending", "Shards queued for lease.", nil, func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(len(c.pending))
	})
	return c
}

// ActiveWorkers counts workers that have talked to the coordinator
// within the active window.
func (c *Coordinator) ActiveWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.activeWorkersLocked()
}

func (c *Coordinator) activeWorkersLocked() int {
	cutoff := c.now().Add(-c.opts.ActiveWindow)
	n := 0
	for _, last := range c.workers {
		if last.After(cutoff) {
			n++
		}
	}
	return n
}

// Run implements jobs.Runner: partition, enqueue, wait for the fleet,
// merge. It declines (handled=false) when the spec is not shardable or
// no workers are active — including when every worker vanishes mid-run,
// in which case the partial shard results are discarded and the
// scheduler recomputes locally (determinism makes the recomputation
// byte-identical, so abandoning is always safe).
func (c *Coordinator) Run(ctx context.Context, id string, spec *jobs.Spec, p *jobs.Progress) ([]byte, bool, error) {
	n, ok := Coords(spec)
	if !ok || n == 0 {
		return nil, false, nil
	}
	ranges := Partition(n, c.opts.MaxShards)

	c.mu.Lock()
	if c.activeWorkersLocked() == 0 {
		c.mu.Unlock()
		c.met.fallback.Inc()
		c.logger.Debug("no active workers; declining job", "job_id", obs.ShortID(id))
		return nil, false, nil
	}
	if _, exists := c.jobs[id]; exists {
		// The scheduler singleflights per content hash, so a duplicate
		// means a caller bypassed it; decline rather than double-track.
		c.mu.Unlock()
		return nil, false, nil
	}
	j := &distJob{
		id:        id,
		spec:      spec,
		remaining: len(ranges),
		done:      make(chan struct{}),
		progress:  p,
	}
	for i, r := range ranges {
		s := &shard{job: j, index: i, rng: r}
		j.shards = append(j.shards, s)
		c.byID[s.id()] = s
		c.pending = append(c.pending, s)
	}
	c.jobs[id] = j
	c.mu.Unlock()

	ctx, span := obs.StartSpan(ctx, "dist "+spec.Kind)
	span.SetAttr("job_id", obs.ShortID(id))
	span.SetAttr("shards", strconv.Itoa(len(ranges)))
	defer span.End()
	p.Set("shards", 0, len(ranges))
	c.met.distributed.Inc()
	c.logger.Info("job distributed", "job_id", obs.ShortID(id), "shards", len(ranges), "coords", n)

	tick := c.opts.LeaseTTL / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	if tick > time.Second {
		tick = time.Second
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()

	for {
		select {
		case <-j.done:
			c.remove(j)
			payloads := make([][]byte, len(j.shards))
			for i, s := range j.shards {
				payloads[i] = s.payload
			}
			merged, err := Merge(spec, ranges, payloads)
			if err != nil {
				span.SetAttr("error", err.Error())
				return nil, true, err
			}
			return merged, true, nil
		case <-ctx.Done():
			c.remove(j)
			span.SetAttr("error", ctx.Err().Error())
			return nil, true, ctx.Err()
		case <-ticker.C:
			c.mu.Lock()
			c.expireLocked()
			fleetGone := c.activeWorkersLocked() == 0
			c.mu.Unlock()
			if fleetGone {
				c.remove(j)
				c.met.fallback.Inc()
				span.SetAttr("abandoned", "fleet lost")
				c.logger.Warn("fleet lost mid-run; abandoning distribution", "job_id", obs.ShortID(id))
				return nil, false, nil
			}
		}
	}
}

// remove deregisters a job: its shards stop being leasable and late
// results for them answer ErrUnknownShard. Idempotent.
func (c *Coordinator) remove(j *distJob) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.jobs[j.id]; !ok {
		return
	}
	delete(c.jobs, j.id)
	for _, s := range j.shards {
		delete(c.byID, s.id())
	}
	kept := c.pending[:0]
	for _, s := range c.pending {
		if s.job != j {
			kept = append(kept, s)
		}
	}
	c.pending = kept
}

// expireLocked re-queues every leased shard whose deadline has passed.
func (c *Coordinator) expireLocked() {
	now := c.now()
	for _, s := range c.byID {
		if s.state == shardLeased && s.deadline.Before(now) {
			s.state = shardPending
			s.releases++
			c.pending = append(c.pending, s)
			c.met.released.Inc()
			c.logger.Warn("lease expired; shard re-queued",
				"shard", s.id(), "worker", s.worker, "releases", s.releases)
		}
	}
}

// Lease hands the next pending shard to the worker, or returns nil when
// nothing is leasable. Every call — empty-handed or not — refreshes the
// worker's liveness, which is how a fleet "registers": polling.
func (c *Coordinator) Lease(worker string) *Grant {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	c.workers[worker] = now
	c.expireLocked()
	if len(c.pending) == 0 {
		return nil
	}
	s := c.pending[0]
	c.pending = c.pending[1:]
	c.leaseSeq++
	s.state = shardLeased
	s.lease = c.leaseSeq
	s.worker = worker
	s.leasedAt = now
	s.deadline = now.Add(c.opts.LeaseTTL)
	c.met.leased.Inc()
	c.logger.Info("shard leased", "shard", s.id(), "worker", worker, "lease", s.lease,
		"lo", s.rng.Lo, "hi", s.rng.Hi)
	return &Grant{
		ShardID: s.id(),
		Lease:   s.lease,
		TTL:     c.opts.LeaseTTL,
		Spec:    s.job.spec,
		Range:   s.rng,
	}
}

// Heartbeat extends the lease deadline. A heartbeat carrying a stale
// lease token gets ErrLeaseLost — the signal for the worker to abandon
// the shard, because it has been re-leased elsewhere.
func (c *Coordinator) Heartbeat(shardID string, lease int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.byID[shardID]
	if !ok {
		return ErrUnknownShard
	}
	if s.state != shardLeased || s.lease != lease {
		return ErrLeaseLost
	}
	c.workers[s.worker] = c.now()
	s.deadline = c.now().Add(c.opts.LeaseTTL)
	return nil
}

// HashPayload returns the content hash the result protocol uses:
// lowercase hex SHA-256 of the payload bytes.
func HashPayload(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}

// Result accepts one shard's payload: the lease must be current and the
// payload must hash to the claimed content hash. Accepting the last
// outstanding shard completes the job. A duplicate upload of a completed
// shard is acknowledged without effect (idempotent retries).
func (c *Coordinator) Result(shardID string, lease int64, hash string, payload []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.byID[shardID]
	if !ok {
		return ErrUnknownShard
	}
	if s.state == shardDone {
		return nil
	}
	if s.state != shardLeased || s.lease != lease {
		c.met.rejected.Inc()
		return ErrLeaseLost
	}
	c.workers[s.worker] = c.now()
	if HashPayload(payload) != hash {
		c.met.rejected.Inc()
		c.logger.Warn("shard payload rejected: hash mismatch", "shard", shardID, "worker", s.worker)
		return ErrHashMismatch
	}
	s.state = shardDone
	s.payload = payload
	j := s.job
	j.remaining--
	c.met.completed.Inc()
	c.met.shardSeconds.Observe(c.now().Sub(s.leasedAt).Seconds())
	j.progress.Set("shards", len(j.shards)-j.remaining, len(j.shards))
	c.logger.Info("shard completed", "shard", shardID, "worker", s.worker,
		"done", len(j.shards)-j.remaining, "total", len(j.shards))
	if j.remaining == 0 {
		close(j.done)
	}
	return nil
}

// JobStats is one distributed job's shard ledger in summary form.
type JobStats struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"`
	Shards int    `json:"shards"`
	Done   int    `json:"done"`
	Leased int    `json:"leased"`
}

// Stats is the coordinator snapshot GET /v1/shards serves.
type Stats struct {
	ActiveWorkers int        `json:"activeWorkers"`
	PendingShards int        `json:"pendingShards"`
	Jobs          []JobStats `json:"jobs"`
}

// Snapshot summarizes the ledger for the introspection endpoint.
func (c *Coordinator) Snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		ActiveWorkers: c.activeWorkersLocked(),
		PendingShards: len(c.pending),
		Jobs:          []JobStats{},
	}
	for _, j := range c.jobs {
		js := JobStats{ID: j.id, Kind: j.spec.Kind, Shards: len(j.shards)}
		for _, s := range j.shards {
			switch s.state {
			case shardDone:
				js.Done++
			case shardLeased:
				js.Leased++
			}
		}
		st.Jobs = append(st.Jobs, js)
	}
	sort.Slice(st.Jobs, func(i, k int) bool { return st.Jobs[i].ID < st.Jobs[k].ID })
	return st
}

var _ jobs.Runner = (*Coordinator)(nil)

// String identifies the coordinator in logs.
func (c *Coordinator) String() string {
	return fmt.Sprintf("dist.Coordinator(ttl=%s, maxShards=%d)", c.opts.LeaseTTL, c.opts.MaxShards)
}
