package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"jayanti98/internal/jobs"
	"jayanti98/internal/obs"
)

func newProtocolServer(t *testing.T, c *Coordinator) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	c.RegisterRoutes(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func startWorker(t *testing.T, ctx context.Context, opts WorkerOptions) *sync.WaitGroup {
	t.Helper()
	if opts.Obs == nil {
		opts.Obs = obs.NewRegistry()
	}
	if opts.BackoffBase == 0 {
		opts.BackoffBase = 2 * time.Millisecond
	}
	if opts.BackoffMax == 0 {
		opts.BackoffMax = 20 * time.Millisecond
	}
	w, err := NewWorker(opts)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := w.Run(ctx); err != nil {
			t.Errorf("worker %s: %v", w.ID(), err)
		}
	}()
	return &wg
}

// TestWorkerEndToEnd is the in-process version of the dist smoke test:
// a coordinator behind a real HTTP server, two polling workers, one
// distributed job — the merged result must equal the serial run.
func TestWorkerEndToEnd(t *testing.T) {
	c := newTestCoordinator(Options{LeaseTTL: 200 * time.Millisecond, MaxShards: 4})
	srv := newProtocolServer(t, c)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for _, id := range []string{"wA", "wB"} {
		wg := startWorker(t, ctx, WorkerOptions{Server: srv.URL, ID: id, Parallel: 1})
		defer wg.Wait()
	}
	deadline := time.Now().Add(10 * time.Second)
	for c.ActiveWorkers() < 2 {
		if !time.Now().Before(deadline) {
			t.Fatal("workers never polled")
		}
		time.Sleep(time.Millisecond)
	}

	spec := testSpec(t)
	serial := serialResult(t, spec)
	runCtx, runCancel := context.WithTimeout(ctx, 30*time.Second)
	defer runCancel()
	payload, handled, err := c.Run(runCtx, "job1", spec, jobs.NewProgress())
	if !handled || err != nil {
		t.Fatalf("Run = (handled=%v, err=%v)", handled, err)
	}
	if !bytes.Equal(payload, serial) {
		t.Fatalf("distributed result differs from serial\nserial: %s\ndist:   %s", serial, payload)
	}
	cancel()
}

// TestWorkerRetryBudget: a worker pointed at a dead coordinator gives up
// after MaxRetries consecutive poll failures instead of spinning forever.
func TestWorkerRetryBudget(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	url := srv.URL
	srv.Close() // now every poll fails at the transport

	w, err := NewWorker(WorkerOptions{
		Server: url, ID: "w1", MaxRetries: 2,
		BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond,
		Obs: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- w.Run(context.Background()) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("worker returned nil against a dead coordinator")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker never exhausted its retry budget")
	}
}

func TestWorkerCleanShutdown(t *testing.T) {
	c := newTestCoordinator(Options{LeaseTTL: time.Second})
	srv := newProtocolServer(t, c)
	ctx, cancel := context.WithCancel(context.Background())
	wg := startWorker(t, ctx, WorkerOptions{Server: srv.URL, ID: "w1"})
	deadline := time.Now().Add(10 * time.Second)
	for c.ActiveWorkers() < 1 {
		if !time.Now().Before(deadline) {
			t.Fatal("worker never polled")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	wg.Wait() // startWorker's goroutine t.Errorf's on a non-nil Run error
}

func TestWorkerValidation(t *testing.T) {
	if _, err := NewWorker(WorkerOptions{}); err == nil {
		t.Fatal("NewWorker accepted an empty server URL")
	}
	w, err := NewWorker(WorkerOptions{Server: "http://x", Obs: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if w.ID() == "" {
		t.Fatal("default worker ID empty")
	}
	if w.opts.MaxRetries != 8 || w.opts.BackoffBase != 100*time.Millisecond || w.opts.BackoffMax != 5*time.Second {
		t.Fatalf("defaults = %+v", w.opts)
	}
}

// TestProtocolHTTPStatusCodes exercises the wire layer directly: the
// verdict-to-status mapping workers key their retry/abandon decisions on.
func TestProtocolHTTPStatusCodes(t *testing.T) {
	c := newTestCoordinator(Options{LeaseTTL: time.Minute, MaxShards: 1})
	srv := newProtocolServer(t, c)
	client := srv.Client()

	post := func(path, body string) *http.Response {
		t.Helper()
		resp, err := client.Post(srv.URL+path, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	// No work: 204. Malformed body / missing worker: 400.
	if resp := post("/v1/shards/lease", `{"worker":"w1"}`); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("idle lease: %d, want 204", resp.StatusCode)
	}
	if resp := post("/v1/shards/lease", `{"worker":`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad json: %d, want 400", resp.StatusCode)
	}
	if resp := post("/v1/shards/lease", `{}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("nameless lease: %d, want 400", resp.StatusCode)
	}
	// Traffic for shards nobody tracks: 404 (result) and 404 (heartbeat).
	if resp := post("/v1/shards/nope.0/result", `{"worker":"w1","lease":1,"hash":"x","payload":{}}`); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown shard result: %d, want 404", resp.StatusCode)
	}
	if resp := post("/v1/shards/nope.0/heartbeat", `{"worker":"w1","lease":1}`); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown shard heartbeat: %d, want 404", resp.StatusCode)
	}

	// Register a job so a real lease flows, then drive the verdicts.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := runJob(c, ctx, "job1", testSpec(t))
	var grant LeaseResponse
	deadline := time.Now().Add(10 * time.Second)
	for grant.ShardID == "" {
		if !time.Now().Before(deadline) {
			t.Fatal("no grant over HTTP")
		}
		resp := post("/v1/shards/lease", `{"worker":"w1"}`)
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&grant); err != nil {
				t.Fatal(err)
			}
			break
		}
		time.Sleep(time.Millisecond)
	}

	payload, err := ExecuteShard(ctx, grant.Spec, grant.Range, 1)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(ResultRequest{Worker: "w1", Lease: grant.Lease, Hash: "bogus", Payload: payload})
	if err != nil {
		t.Fatal(err)
	}
	if resp := post("/v1/shards/"+grant.ShardID+"/result", string(raw)); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("hash mismatch: %d, want 400", resp.StatusCode)
	}
	raw, err = json.Marshal(ResultRequest{Worker: "w1", Lease: grant.Lease + 99, Hash: HashPayload(payload), Payload: payload})
	if err != nil {
		t.Fatal(err)
	}
	if resp := post("/v1/shards/"+grant.ShardID+"/result", string(raw)); resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale lease: %d, want 409", resp.StatusCode)
	}

	// The ledger snapshot shows the in-flight job.
	resp, err := client.Get(srv.URL + "/v1/shards")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Jobs) != 1 || st.Jobs[0].ID != "job1" || st.Jobs[0].Leased != 1 {
		t.Fatalf("snapshot = %+v", st)
	}
	cancel()
	<-done
}
