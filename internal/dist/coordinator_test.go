package dist

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"jayanti98/internal/jobs"
	"jayanti98/internal/obs"
)

// testSpec is a small normalized sweep spec (3 constructions × ns {2,4}
// = 6 coordinates).
func testSpec(t *testing.T) *jobs.Spec {
	t.Helper()
	spec := &jobs.Spec{Kind: jobs.KindSweep, Sweep: &jobs.SweepSpec{Type: "queue", MaxN: 4}}
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	return spec
}

func newTestCoordinator(opts Options) *Coordinator {
	if opts.Obs == nil {
		opts.Obs = obs.NewRegistry()
	}
	return NewCoordinator(opts)
}

// runJob calls c.Run on a goroutine and returns a channel with its
// outcome.
type runOutcome struct {
	payload []byte
	handled bool
	err     error
}

func runJob(c *Coordinator, ctx context.Context, id string, spec *jobs.Spec) <-chan runOutcome {
	out := make(chan runOutcome, 1)
	go func() {
		payload, handled, err := c.Run(ctx, id, spec, jobs.NewProgress())
		out <- runOutcome{payload, handled, err}
	}()
	return out
}

func TestCoordinatorDeclinesWithoutWorkers(t *testing.T) {
	c := newTestCoordinator(Options{LeaseTTL: time.Second})
	payload, handled, err := c.Run(context.Background(), "job1", testSpec(t), jobs.NewProgress())
	if handled || err != nil || payload != nil {
		t.Fatalf("Run with no workers = (%v, %v, %v), want declined", payload, handled, err)
	}
}

func TestCoordinatorDeclinesUnshardable(t *testing.T) {
	c := newTestCoordinator(Options{LeaseTTL: time.Second})
	c.Lease("w1") // register a worker so the decline is about the spec
	spec := &jobs.Spec{Kind: jobs.KindReport}
	spec.Normalize()
	if _, handled, err := c.Run(context.Background(), "job1", spec, jobs.NewProgress()); handled || err != nil {
		t.Fatalf("report job handled=%v err=%v, want declined", handled, err)
	}
}

// TestCoordinatorLeaseResultMerge drives the full protocol by hand: a
// "worker" leases every shard, executes it in-process, and uploads the
// hashed payload; Run's merged result must equal the serial run.
func TestCoordinatorLeaseResultMerge(t *testing.T) {
	c := newTestCoordinator(Options{LeaseTTL: time.Minute, MaxShards: 3})
	spec := testSpec(t)
	serial := serialResult(t, spec)

	if g := c.Lease("w1"); g != nil {
		t.Fatalf("empty coordinator granted %+v", g)
	}
	done := runJob(c, context.Background(), "job1", spec)

	seen := 0
	deadline := time.Now().Add(10 * time.Second)
	for seen < 3 && time.Now().Before(deadline) {
		g := c.Lease("w1")
		if g == nil {
			time.Sleep(time.Millisecond)
			continue
		}
		seen++
		payload, err := ExecuteShard(context.Background(), g.Spec, g.Range, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Heartbeat(g.ShardID, g.Lease); err != nil {
			t.Fatalf("heartbeat on live lease: %v", err)
		}
		if err := c.Result(g.ShardID, g.Lease, HashPayload(payload), payload); err != nil {
			t.Fatalf("upload shard %s: %v", g.ShardID, err)
		}
		// Duplicate upload of a done shard is acknowledged idempotently.
		if err := c.Result(g.ShardID, g.Lease, HashPayload(payload), payload); err != nil {
			t.Fatalf("duplicate upload: %v", err)
		}
	}
	if seen != 3 {
		t.Fatalf("leased %d shards, want 3", seen)
	}

	out := <-done
	if !out.handled || out.err != nil {
		t.Fatalf("Run = (handled=%v, err=%v), want handled", out.handled, out.err)
	}
	if !bytes.Equal(out.payload, serial) {
		t.Fatalf("distributed result differs from serial\nserial: %s\ndist:   %s", serial, out.payload)
	}
	// The ledger is clean afterwards: late traffic gets ErrUnknownShard.
	if err := c.Heartbeat("job1.0", 1); !errors.Is(err, ErrUnknownShard) {
		t.Fatalf("heartbeat after completion = %v, want ErrUnknownShard", err)
	}
	if st := c.Snapshot(); len(st.Jobs) != 0 || st.PendingShards != 0 {
		t.Fatalf("ledger not empty after completion: %+v", st)
	}
}

// TestCoordinatorReleasesExpiredLease: a crashed worker's shard goes back
// in the queue once its TTL passes, the new lease supersedes the old one,
// and the dead worker's late upload is rejected.
func TestCoordinatorReleasesExpiredLease(t *testing.T) {
	c := newTestCoordinator(Options{LeaseTTL: 20 * time.Millisecond, MaxShards: 1, ActiveWindow: time.Minute})
	spec := testSpec(t)
	c.Lease("w1")
	done := runJob(c, context.Background(), "job1", spec)

	var old *Grant
	deadline := time.Now().Add(10 * time.Second)
	for old == nil && time.Now().Before(deadline) {
		old = c.Lease("w1")
		time.Sleep(time.Millisecond)
	}
	if old == nil {
		t.Fatal("never got a lease")
	}
	// w1 "crashes": no heartbeat. After the TTL the shard is re-leasable.
	time.Sleep(3 * c.opts.LeaseTTL)
	var fresh *Grant
	for fresh == nil && time.Now().Before(deadline) {
		fresh = c.Lease("w2")
		time.Sleep(time.Millisecond)
	}
	if fresh == nil {
		t.Fatal("expired shard never re-leased")
	}
	if fresh.ShardID != old.ShardID || fresh.Lease == old.Lease {
		t.Fatalf("re-lease = %+v, old = %+v: want same shard, new token", fresh, old)
	}

	payload, err := ExecuteShard(context.Background(), fresh.Spec, fresh.Range, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The zombie's token is dead for heartbeats and uploads alike.
	if err := c.Heartbeat(old.ShardID, old.Lease); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("zombie heartbeat = %v, want ErrLeaseLost", err)
	}
	if err := c.Result(old.ShardID, old.Lease, HashPayload(payload), payload); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("zombie upload = %v, want ErrLeaseLost", err)
	}
	if err := c.Result(fresh.ShardID, fresh.Lease, HashPayload(payload), payload); err != nil {
		t.Fatalf("fresh upload: %v", err)
	}
	out := <-done
	if !out.handled || out.err != nil {
		t.Fatalf("Run = (handled=%v, err=%v)", out.handled, out.err)
	}
	if got := c.met.released.Value(); got < 1 {
		t.Fatalf("dist_shards_released_total = %d, want ≥ 1", got)
	}
}

func TestCoordinatorRejectsHashMismatch(t *testing.T) {
	c := newTestCoordinator(Options{LeaseTTL: time.Minute, MaxShards: 1})
	spec := testSpec(t)
	c.Lease("w1")
	done := runJob(c, context.Background(), "job1", spec)

	var g *Grant
	deadline := time.Now().Add(10 * time.Second)
	for g == nil && time.Now().Before(deadline) {
		g = c.Lease("w1")
		time.Sleep(time.Millisecond)
	}
	if g == nil {
		t.Fatal("never got a lease")
	}
	payload, err := ExecuteShard(context.Background(), g.Spec, g.Range, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Result(g.ShardID, g.Lease, "deadbeef", payload); !errors.Is(err, ErrHashMismatch) {
		t.Fatalf("corrupt upload = %v, want ErrHashMismatch", err)
	}
	// The lease survives a rejected upload: the retry with the right hash
	// needs no re-lease.
	if err := c.Result(g.ShardID, g.Lease, HashPayload(payload), payload); err != nil {
		t.Fatalf("retry upload: %v", err)
	}
	out := <-done
	if !out.handled || out.err != nil {
		t.Fatalf("Run = (handled=%v, err=%v)", out.handled, out.err)
	}
	if got := c.met.rejected.Value(); got != 1 {
		t.Fatalf("dist_results_rejected_total = %d, want 1", got)
	}
}

// TestCoordinatorAbandonsWhenFleetVanishes: the only worker stops
// polling; once it ages out of the active window Run declines so the
// scheduler recomputes locally.
func TestCoordinatorAbandonsWhenFleetVanishes(t *testing.T) {
	c := newTestCoordinator(Options{LeaseTTL: 20 * time.Millisecond, ActiveWindow: 60 * time.Millisecond})
	spec := testSpec(t)
	c.Lease("w1") // registers, then never polls again
	done := runJob(c, context.Background(), "job1", spec)

	select {
	case out := <-done:
		if out.handled || out.err != nil {
			t.Fatalf("Run = (handled=%v, err=%v), want abandoned decline", out.handled, out.err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run never abandoned the job")
	}
	if st := c.Snapshot(); len(st.Jobs) != 0 || st.PendingShards != 0 {
		t.Fatalf("abandoned job left ledger state: %+v", st)
	}
}

func TestCoordinatorRunHonorsContext(t *testing.T) {
	c := newTestCoordinator(Options{LeaseTTL: time.Minute})
	spec := testSpec(t)
	c.Lease("w1")
	ctx, cancel := context.WithCancel(context.Background())
	done := runJob(c, ctx, "job1", spec)
	cancel()
	select {
	case out := <-done:
		if !out.handled || !errors.Is(out.err, context.Canceled) {
			t.Fatalf("Run = (handled=%v, err=%v), want canceled", out.handled, out.err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run ignored context cancellation")
	}
}

func TestCoordinatorDuplicateJobDeclined(t *testing.T) {
	c := newTestCoordinator(Options{LeaseTTL: time.Minute})
	spec := testSpec(t)
	c.Lease("w1")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	first := runJob(c, ctx, "job1", spec)
	// Wait until the first registration is visible.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st := c.Snapshot(); len(st.Jobs) == 1 {
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatal("first job never registered")
		}
		time.Sleep(time.Millisecond)
	}
	if _, handled, err := c.Run(ctx, "job1", spec, jobs.NewProgress()); handled || err != nil {
		t.Fatalf("duplicate Run = (handled=%v, err=%v), want declined", handled, err)
	}
	cancel()
	<-first
}
