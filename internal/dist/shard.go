// Package dist is the distributed execution subsystem: it splits a
// shardable job spec into deterministic work units, leases them to a
// fleet of pull-based lbworker processes over HTTP, re-leases the units
// of crashed or stalled workers, and merges the uploaded shard results
// index-ordered into a payload byte-identical to the serial in-process
// run of the same spec.
//
// The determinism argument is the sweep engine's, lifted across process
// boundaries. Every shardable workload is a map over independent
// coordinates — (construction, n) grid points for a sweep job, sample
// indices for a fuzz campaign — and each coordinate derives everything
// it needs (in particular its RNG seed, via sweep.Seed/sweep.Derive)
// from the coordinate itself, never from which worker runs it, when, or
// alongside what. A shard is a contiguous coordinate range [Lo, Hi), so
// concatenating shard payloads in shard-index order reconstructs exactly
// the coordinate-ordered result slice of the serial loop, and the shared
// assembly helpers (jobs.BuildSweepResult, jobs.BuildFuzzResult) turn
// that slice into the job payload on both paths. Moving a shard
// boundary, re-leasing a shard after a worker crash, or running the
// whole job locally can therefore never change a byte of the result.
package dist

import (
	"context"
	"encoding/json"
	"fmt"

	"jayanti98/internal/campaign"
	"jayanti98/internal/explore"
	"jayanti98/internal/jobs"
	"jayanti98/internal/lowerbound"
	"jayanti98/internal/sweep"
	"jayanti98/internal/universal"
)

// Coords returns the number of independent coordinates of a normalized
// spec, and whether the spec is shardable at all. Report jobs (whole
// experiments with interleaved rendering) and exhaustive exploration
// (one shared DFS frontier) are not maps over independent coordinates,
// so they always execute locally. Campaign rounds shard over their input
// slots: the round spec carries the frozen round-start corpus, so every
// leased slice mutates from the same parents — the lease grant is the
// corpus-sync channel between lbworker replicas.
func Coords(spec *jobs.Spec) (int, bool) {
	if spec == nil {
		return 0, false
	}
	switch spec.Kind {
	case jobs.KindSweep:
		if spec.Sweep == nil {
			return 0, false
		}
		return len(spec.Sweep.ConstructionNames()) * len(spec.Sweep.Ns()), true
	case jobs.KindExplore:
		if spec.Explore == nil || spec.Explore.Mode != "fuzz" {
			return 0, false
		}
		return spec.Explore.Samples, true
	case jobs.KindCampaignRound:
		if spec.CampaignRound == nil {
			return 0, false
		}
		return spec.CampaignRound.Inputs(), true
	default:
		return 0, false
	}
}

// Range is a half-open interval [Lo, Hi) of coordinate indices — one
// shard's slice of the job.
type Range struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// Len returns the number of coordinates in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Partition splits n coordinates into at most `shards` contiguous,
// near-equal ranges that cover [0, n) in order. Fewer than `shards`
// ranges come back when there are fewer coordinates than shards (a
// shard always holds at least one coordinate); zero coordinates yield
// no ranges. The split is deterministic: the first n mod s ranges are
// one coordinate longer.
func Partition(n, shards int) []Range {
	if n <= 0 {
		return nil
	}
	if shards < 1 {
		shards = 1
	}
	if shards > n {
		shards = n
	}
	out := make([]Range, 0, shards)
	width, extra := n/shards, n%shards
	lo := 0
	for i := 0; i < shards; i++ {
		hi := lo + width
		if i < extra {
			hi++
		}
		out = append(out, Range{Lo: lo, Hi: hi})
		lo = hi
	}
	return out
}

// sweepShardPayload is the wire form of one sweep shard's output: the
// measurements of its coordinate range, in coordinate order.
type sweepShardPayload struct {
	Results []lowerbound.ConstructionResult `json:"results"`
}

// fuzzShardPayload is the wire form of one fuzz shard's output: the
// summed step count of its sample range and the failures it found, in
// sample order.
type fuzzShardPayload struct {
	TotalSteps int                   `json:"totalSteps"`
	Failures   []jobs.ExploreFailure `json:"failures"`
}

// campaignShardPayload is the wire form of one campaign-round shard's
// output: the input results of its slot range, in slot order.
type campaignShardPayload struct {
	Results []campaign.InputResult `json:"results"`
}

// ExecuteShard runs coordinates [r.Lo, r.Hi) of the spec and returns the
// shard payload. parallel bounds the worker goroutines inside the shard
// (sweep.Workers semantics); like every execution knob it cannot affect
// the payload bytes. Workers call this; the coordinator calls it for
// nothing — it only merges.
func ExecuteShard(ctx context.Context, spec *jobs.Spec, r Range, parallel int) ([]byte, error) {
	n, ok := Coords(spec)
	if !ok {
		return nil, fmt.Errorf("dist: spec kind %q is not shardable", spec.Kind)
	}
	if r.Lo < 0 || r.Hi > n || r.Lo >= r.Hi {
		return nil, fmt.Errorf("dist: shard range [%d, %d) outside the %d-coordinate grid", r.Lo, r.Hi, n)
	}
	switch spec.Kind {
	case jobs.KindSweep:
		return executeSweepShard(ctx, spec.Sweep, r, parallel)
	case jobs.KindCampaignRound:
		return executeCampaignShard(ctx, spec.CampaignRound, r, parallel)
	default:
		return executeFuzzShard(ctx, spec.Explore, r, parallel)
	}
}

// executeSweepShard measures the (construction, n) grid points of the
// range. Coordinate index ci maps to construction ci/len(ns) and process
// count ns[ci%len(ns)] — the same construction-major order runSweep and
// BuildSweepResult use.
func executeSweepShard(ctx context.Context, spec *jobs.SweepSpec, r Range, parallel int) ([]byte, error) {
	st, err := lowerbound.SweepTypeFor(spec.Type)
	if err != nil {
		return nil, err
	}
	ns := spec.Ns()
	names := spec.ConstructionNames()
	results, err := sweep.MapCtx(ctx, parallel, r.Len(), func(i int) (lowerbound.ConstructionResult, error) {
		ci := r.Lo + i
		name := names[ci/len(ns)]
		n := ns[ci%len(ns)]
		mk := func(n int) universal.Construction {
			return universal.Must(universal.New(name, st.New(n), n, 0))
		}
		return lowerbound.MeasureConstruction(mk, st.Op, n)
	})
	if err != nil {
		return nil, err
	}
	return json.Marshal(sweepShardPayload{Results: results})
}

// executeFuzzShard runs samples [r.Lo, r.Hi) of the campaign. The
// FuzzOptions offset keeps the global sample indices — and therefore the
// sweep.Derive seeds — identical to the unsplit campaign's.
func executeFuzzShard(ctx context.Context, spec *jobs.ExploreSpec, r Range, parallel int) ([]byte, error) {
	rep, err := explore.FuzzCtx(ctx, explore.Config{
		Alg:        spec.Alg,
		Object:     spec.Object,
		N:          spec.N,
		OpsPerProc: spec.OpsPerProc,
		Budget:     spec.Budget,
	}, explore.FuzzOptions{
		Samples: r.Len(),
		Offset:  r.Lo,
		Seed:    spec.Seed,
		Workers: parallel,
	})
	if err != nil {
		return nil, err
	}
	failures := make([]jobs.ExploreFailure, 0, len(rep.Failures))
	for _, f := range rep.Failures {
		failures = append(failures, jobs.NewExploreFailure(f))
	}
	return json.Marshal(fuzzShardPayload{TotalSteps: rep.TotalSteps, Failures: failures})
}

// executeCampaignShard runs input slots [r.Lo, r.Hi) of a campaign round.
// Every slot derives its seed from its global index and mutates from the
// corpus frozen in the round spec, so the slice is independent of which
// worker runs it — campaign.ExecuteRoundSlice's contract.
func executeCampaignShard(ctx context.Context, rs *campaign.RoundSpec, r Range, parallel int) ([]byte, error) {
	results, err := campaign.ExecuteRoundSlice(ctx, rs, r.Lo, r.Hi, parallel)
	if err != nil {
		return nil, err
	}
	return json.Marshal(campaignShardPayload{Results: results})
}

// Merge reassembles the shard payloads of a fully executed job — one per
// Partition range, in range order — into the job result. The output is
// byte-identical to jobs.Execute of the same spec: both paths feed the
// same coordinate-ordered inputs to the same assembly helpers.
func Merge(spec *jobs.Spec, ranges []Range, payloads [][]byte) ([]byte, error) {
	total, ok := Coords(spec)
	if !ok {
		return nil, fmt.Errorf("dist: spec kind %q is not shardable", spec.Kind)
	}
	if len(ranges) != len(payloads) {
		return nil, fmt.Errorf("dist: %d ranges but %d payloads", len(ranges), len(payloads))
	}
	switch spec.Kind {
	case jobs.KindSweep:
		flat := make([]lowerbound.ConstructionResult, 0, total)
		for i, raw := range payloads {
			var p sweepShardPayload
			if err := json.Unmarshal(raw, &p); err != nil {
				return nil, fmt.Errorf("dist: shard %d payload: %w", i, err)
			}
			if len(p.Results) != ranges[i].Len() {
				return nil, fmt.Errorf("dist: shard %d has %d results, want %d", i, len(p.Results), ranges[i].Len())
			}
			flat = append(flat, p.Results...)
		}
		res, err := jobs.BuildSweepResult(spec.Sweep, flat)
		if err != nil {
			return nil, err
		}
		return marshalPayload(res)
	case jobs.KindCampaignRound:
		results := make([]campaign.InputResult, 0, total)
		for i, raw := range payloads {
			var p campaignShardPayload
			if err := json.Unmarshal(raw, &p); err != nil {
				return nil, fmt.Errorf("dist: shard %d payload: %w", i, err)
			}
			if len(p.Results) != ranges[i].Len() {
				return nil, fmt.Errorf("dist: shard %d has %d results, want %d", i, len(p.Results), ranges[i].Len())
			}
			results = append(results, p.Results...)
		}
		return marshalPayload(&campaign.RoundResult{Round: spec.CampaignRound.Round, Results: results})
	default:
		totalSteps := 0
		failures := make([]jobs.ExploreFailure, 0)
		for i, raw := range payloads {
			var p fuzzShardPayload
			if err := json.Unmarshal(raw, &p); err != nil {
				return nil, fmt.Errorf("dist: shard %d payload: %w", i, err)
			}
			totalSteps += p.TotalSteps
			failures = append(failures, p.Failures...)
		}
		return marshalPayload(jobs.BuildFuzzResult(spec.Explore, totalSteps, failures))
	}
}

// marshalPayload mirrors the tail of jobs.Execute: the assembled result
// marshalled through the identical static type, so the merged bytes and
// the serial bytes can only differ if the values differ.
func marshalPayload(v any) ([]byte, error) {
	return json.Marshal(v)
}
