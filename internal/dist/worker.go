package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"time"

	"jayanti98/internal/obs"
	"jayanti98/internal/sweep"
)

// WorkerOptions configures a Worker.
type WorkerOptions struct {
	// Server is the coordinator's base URL (e.g. "http://127.0.0.1:8080").
	Server string
	// ID names the worker in leases and logs. Empty: "<hostname>-<pid>".
	ID string
	// APIKey authenticates the worker against a coordinator running with
	// tenant auth (-tenants); sent as "Authorization: Bearer <key>".
	// Empty: no credential (open coordinators).
	APIKey string
	// Parallel bounds the goroutines a shard runs on (sweep.Workers
	// semantics; ≤ 0: one per CPU).
	Parallel int
	// MaxRetries is the consecutive transport-failure budget: that many
	// failed polls or uploads in a row and Run gives up (≤ 0: 8). Any
	// successful exchange resets the count.
	MaxRetries int
	// BackoffBase is the first retry/idle delay (≤ 0: 100ms).
	BackoffBase time.Duration
	// BackoffMax caps the exponential backoff (≤ 0: 5s).
	BackoffMax time.Duration
	// Client is the HTTP client (nil: a client with a 30s timeout).
	Client *http.Client
	// Logger receives the worker's lifecycle lines (nil: discard).
	Logger *slog.Logger
	// Obs is the metrics registry (nil: the process obs.Default).
	Obs *obs.Registry
}

// Worker is the pull side of the shard protocol: poll the coordinator
// with jittered exponential backoff, execute granted shards through the
// in-process entry points, stream heartbeats while executing, and upload
// content-hashed payloads.
type Worker struct {
	opts   WorkerOptions
	client *http.Client
	logger *slog.Logger
	rng    *rand.Rand // backoff jitter; seeded from the worker ID
	rngMu  sync.Mutex

	met struct {
		polls, granted, executed, failed, uploads *obs.Counter
	}
}

// NewWorker validates the options and builds a worker.
func NewWorker(opts WorkerOptions) (*Worker, error) {
	if opts.Server == "" {
		return nil, errors.New("dist: worker needs a coordinator URL")
	}
	if opts.ID == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		opts.ID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if opts.MaxRetries <= 0 {
		opts.MaxRetries = 8
	}
	if opts.BackoffBase <= 0 {
		opts.BackoffBase = 100 * time.Millisecond
	}
	if opts.BackoffMax <= 0 {
		opts.BackoffMax = 5 * time.Second
	}
	w := &Worker{
		opts:   opts,
		client: opts.Client,
		logger: opts.Logger,
		// Jitter only decorrelates poll times across the fleet; seeding
		// it from the worker ID keeps the process free of wall-clock
		// seeded RNGs without correlating two workers' backoff.
		rng: rand.New(rand.NewSource(sweep.Seed("dist/worker", opts.ID, 0, 0))),
	}
	if w.client == nil {
		w.client = &http.Client{Timeout: 30 * time.Second}
	}
	if w.logger == nil {
		w.logger = obs.NopLogger()
	}
	w.logger = w.logger.With("worker", opts.ID)
	r := opts.Obs
	if r == nil {
		r = obs.Default()
	}
	w.met.polls = r.Counter("worker_polls_total", "Lease polls sent to the coordinator.", nil)
	w.met.granted = r.Counter("worker_shards_granted_total", "Leases granted to this worker.", nil)
	w.met.executed = r.Counter("worker_shards_executed_total", "Shards executed and uploaded.", nil)
	w.met.failed = r.Counter("worker_shards_failed_total", "Shards abandoned (lease lost, execution error, or upload failure).", nil)
	w.met.uploads = r.Counter("worker_upload_retries_total", "Result uploads retried after a transport failure.", nil)
	return w, nil
}

// ID returns the worker's fleet identity.
func (w *Worker) ID() string { return w.opts.ID }

// Run polls until ctx is done (returning nil — the clean shutdown) or
// the consecutive-failure budget is exhausted (returning the last
// transport error). Idle polls back off exponentially with jitter up to
// BackoffMax; any grant resets the backoff.
func (w *Worker) Run(ctx context.Context) error {
	delay := w.opts.BackoffBase
	failures := 0
	for {
		if ctx.Err() != nil {
			return nil
		}
		grant, err := w.lease(ctx)
		switch {
		case err != nil:
			if ctx.Err() != nil {
				return nil
			}
			failures++
			w.logger.Warn("lease poll failed", "error", err.Error(), "failures", failures)
			if failures > w.opts.MaxRetries {
				return fmt.Errorf("dist: worker %s: %d consecutive failures: %w", w.opts.ID, failures, err)
			}
			if !w.sleep(ctx, delay) {
				return nil
			}
			delay = w.nextDelay(delay)
		case grant == nil:
			failures = 0
			if !w.sleep(ctx, delay) {
				return nil
			}
			delay = w.nextDelay(delay)
		default:
			failures = 0
			delay = w.opts.BackoffBase
			w.met.granted.Inc()
			if err := w.execute(ctx, grant); err != nil {
				// Execution/upload problems abandon the shard — the lease
				// expires and another worker picks it up — but only a
				// transport-dead coordinator stops the worker, via the
				// poll failure budget above.
				w.met.failed.Inc()
				w.logger.Warn("shard abandoned", "shard", grant.ShardID, "error", err.Error())
			}
		}
	}
}

// nextDelay doubles the backoff up to the cap and jitters it into
// [d/2, d) so a fleet of idle workers spreads its polls.
func (w *Worker) nextDelay(d time.Duration) time.Duration {
	d *= 2
	if d > w.opts.BackoffMax {
		d = w.opts.BackoffMax
	}
	return d
}

func (w *Worker) jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	w.rngMu.Lock()
	defer w.rngMu.Unlock()
	return d/2 + time.Duration(w.rng.Int63n(int64(d/2)))
}

// sleep waits the jittered delay; false means ctx ended first.
func (w *Worker) sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(w.jitter(d))
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// lease polls the coordinator once. A nil grant with nil error means no
// work is available.
func (w *Worker) lease(ctx context.Context) (*LeaseResponse, error) {
	w.met.polls.Inc()
	var grant LeaseResponse
	status, err := w.post(ctx, "/v1/shards/lease", LeaseRequest{Worker: w.opts.ID}, &grant)
	if err != nil {
		return nil, err
	}
	switch status {
	case http.StatusOK:
		return &grant, nil
	case http.StatusNoContent:
		return nil, nil
	default:
		return nil, fmt.Errorf("dist: lease answered %d", status)
	}
}

// execute runs one granted shard: heartbeats stream at TTL/3 while the
// coordinates execute; the payload is uploaded with its content hash
// under the retry budget. A lost lease cancels the execution mid-shard.
func (w *Worker) execute(ctx context.Context, grant *LeaseResponse) error {
	log := w.logger.With("shard", grant.ShardID, "lease", grant.Lease)
	log.Info("shard leased", "lo", grant.Range.Lo, "hi", grant.Range.Hi)

	execCtx, cancelExec := context.WithCancel(ctx)
	defer cancelExec()
	ttl := time.Duration(grant.TTLMillis) * time.Millisecond
	hbEvery := ttl / 3
	if hbEvery < time.Millisecond {
		hbEvery = time.Millisecond
	}
	var hbWG sync.WaitGroup
	hbCtx, stopHB := context.WithCancel(ctx)
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		ticker := time.NewTicker(hbEvery)
		defer ticker.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-ticker.C:
				status, err := w.post(hbCtx, "/v1/shards/"+grant.ShardID+"/heartbeat",
					HeartbeatRequest{Worker: w.opts.ID, Lease: grant.Lease}, nil)
				switch {
				case err != nil:
					// Transient transport failure: keep executing; if the
					// coordinator is really gone the lease expires there
					// and the upload below is rejected.
					log.Debug("heartbeat failed", "error", err.Error())
				case status == http.StatusConflict || status == http.StatusNotFound:
					log.Warn("lease lost; cancelling shard execution", "status", status)
					cancelExec()
					return
				}
			}
		}
	}()

	payload, execErr := ExecuteShard(execCtx, grant.Spec, grant.Range, w.opts.Parallel)
	stopHB()
	hbWG.Wait()
	if execErr != nil {
		return fmt.Errorf("dist: executing shard %s: %w", grant.ShardID, execErr)
	}

	req := ResultRequest{
		Worker:  w.opts.ID,
		Lease:   grant.Lease,
		Hash:    HashPayload(payload),
		Payload: json.RawMessage(payload),
	}
	delay := w.opts.BackoffBase
	for attempt := 0; ; attempt++ {
		status, err := w.post(ctx, "/v1/shards/"+grant.ShardID+"/result", req, nil)
		switch {
		case err == nil && status == http.StatusOK:
			w.met.executed.Inc()
			log.Info("shard uploaded", "bytes", len(payload))
			return nil
		case err == nil && (status == http.StatusConflict || status == http.StatusNotFound):
			return fmt.Errorf("dist: shard %s upload rejected with %d (lease lost)", grant.ShardID, status)
		}
		if attempt >= w.opts.MaxRetries {
			if err == nil {
				err = fmt.Errorf("status %d", status)
			}
			return fmt.Errorf("dist: uploading shard %s: %w", grant.ShardID, err)
		}
		w.met.uploads.Inc()
		if !w.sleep(ctx, delay) {
			return ctx.Err()
		}
		delay = w.nextDelay(delay)
	}
}

// post sends one JSON request and decodes a JSON body into out (when out
// is non-nil and the response carries one).
func (w *Worker) post(ctx context.Context, path string, body, out any) (int, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.opts.Server+path, bytes.NewReader(raw))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if w.opts.APIKey != "" {
		req.Header.Set("Authorization", "Bearer "+w.opts.APIKey)
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("dist: decoding %s response: %w", path, err)
		}
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}
