package core

import (
	"fmt"

	"jayanti98/internal/moveplan"
	"jayanti98/internal/shmem"
)

// updateUP computes UP(X, r) for every process and register from the
// freshly executed round, applying the update rules of Section 5.3
// verbatim. It must be called after the round's Steps, MovePlan and Sigma
// are final, and before the round is appended to the run.
//
// Register rules (mutually exclusive by the phase structure: a move or swap
// on R clears R's Pset before Phase 5, so no SC on R succeeds in a round
// where R was moved into or swapped; likewise swaps overwrite moves):
//
//  1. Some process p performs a successful SC on R:
//     UP(R,r) = UP(p, r−1).
//  2. One or more processes swap R (p = the last of them):
//     UP(R,r) = UP(p, r−1).
//  3. No swap on R but some move into R:
//     UP(R,r) = UP(source(R,σ_r), r−1) ∪ ⋃_{q ∈ movers(R,σ_r)} UP(q, r−1).
//  4. Otherwise: UP(R,r) = UP(R, r−1).
//
// Process rules for p's (single) operation in round r:
//
//  1. LL or validate on R:        UP(p,r) = UP(p,r−1) ∪ UP(R,r−1).
//  2. move:                       UP(p,r) = UP(p,r−1).
//  3. first swap on R, no move into R:
//     UP(p,r) = UP(p,r−1) ∪ UP(R,r−1).
//  4. first swap on R, some move into R:
//     UP(p,r) = UP(p,r−1) ∪ UP(source(R,σ_r),r−1) ∪ ⋃_{q∈movers} UP(q,r−1).
//  5. swap on R immediately after q's swap:
//     UP(p,r) = UP(p,r−1) ∪ UP(q,r−1).
//  6. successful SC on R:         UP(p,r) = UP(p,r−1) ∪ UP(R,r−1).
//  7. unsuccessful SC on R:       UP(p,r) = UP(p,r−1) ∪ UP(R,r).
//  8. no shared-memory operation: UP(p,r) = UP(p,r−1).
func updateUP(run *AllRun, round *Round) {
	r := round.R
	if run.curUPProc == nil {
		run.curUPProc = make(map[int]PidSet, run.N)
		run.curUPReg = make(map[int]PidSet)
	}
	prevProc := func(pid int) PidSet {
		if s, ok := run.curUPProc[pid]; ok {
			return s
		}
		return NewPidSet(pid)
	}
	prevReg := func(reg int) PidSet {
		if s, ok := run.curUPReg[reg]; ok {
			return s
		}
		return NewPidSet()
	}

	tracker := moveplan.Eval(round.MovePlan, round.Sigma)
	// moveUP(R) is the union of rule 3's UP-of-source and UPs-of-movers.
	moveUP := func(reg int) PidSet {
		s := prevReg(tracker.Source(reg)).Clone()
		for _, q := range tracker.Movers(reg) {
			s.UnionWith(prevProc(q))
		}
		return s
	}

	// Registers. Copy the previous round's sets forward (rule 4; the
	// stored sets are immutable, so sharing is safe), then overwrite the
	// registers written this round.
	upReg := make(map[int]PidSet, len(run.curUPReg))
	for reg, s := range run.curUPReg {
		upReg[reg] = s
	}
	written := writtenRegisters(round)
	for _, reg := range written {
		switch p := round.successfulSC(reg); {
		case p >= 0: // rule 1
			upReg[reg] = prevProc(p).Clone()
		default:
			if sw := round.swappers(reg); len(sw) > 0 { // rule 2
				upReg[reg] = prevProc(sw[len(sw)-1]).Clone()
			} else if round.movedInto(reg) { // rule 3
				upReg[reg] = moveUP(reg)
			}
		}
	}
	if !run.NoHistory {
		round.UPReg = upReg
	}
	// NOTE: run.curUPReg is replaced only after the process rules below,
	// which still need UP(·, r−1) through prevReg.

	// curReg is UP(R, r), needed by process rule 7.
	curReg := func(reg int) PidSet {
		if s, ok := upReg[reg]; ok {
			return s
		}
		return NewPidSet()
	}

	// Processes.
	stepOf := make(map[int]StepRecord, len(round.Steps))
	for _, s := range round.Steps {
		stepOf[s.Pid] = s
	}
	upProc := make(map[int]PidSet, run.N)
	for pid := 0; pid < run.N; pid++ {
		up := prevProc(pid).Clone()
		step, acted := stepOf[pid]
		if !acted { // rule 8
			upProc[pid] = up
			continue
		}
		reg := step.Op.Reg
		switch step.Op.Kind {
		case shmem.OpLL, shmem.OpValidate: // rule 1
			up.UnionWith(prevReg(reg))
		case shmem.OpMove: // rule 2
		case shmem.OpSwap:
			sw := round.swappers(reg)
			switch {
			case sw[0] != pid: // rule 5
				up.UnionWith(prevProc(prevSwapper(sw, pid)))
			case round.movedInto(reg): // rule 4
				up.UnionWith(moveUP(reg))
			default: // rule 3
				up.UnionWith(prevReg(reg))
			}
		case shmem.OpSC:
			if step.Resp.OK { // rule 6
				up.UnionWith(prevReg(reg))
			} else { // rule 7
				up.UnionWith(curReg(reg))
			}
		}
		upProc[pid] = up
	}
	if !run.NoHistory {
		round.UPProc = upProc
	}
	run.curUPProc = upProc
	run.curUPReg = upReg

	// Incremental Lemma 5.1 check (so NoHistory runs can still report it).
	if run.lemma51Err == nil {
		run.lemma51Err = checkLemma51Round(run.N, r, upProc, upReg, written)
	}
}

// checkLemma51Round verifies |UP(X, r)| ≤ 4^r for the just-updated sets.
// Only registers written this round can have grown, so only they are
// checked (unwritten registers carry forward already-checked sets).
func checkLemma51Round(n, r int, upProc map[int]PidSet, upReg map[int]PidSet, written []int) error {
	bound := 1
	for i := 0; i < r && bound < n; i++ {
		bound *= 4
	}
	if bound >= n {
		return nil // vacuous: |UP| ≤ n always
	}
	for pid, up := range upProc {
		if up.Len() > bound {
			return fmt.Errorf("core: |UP(p%d, %d)| = %d exceeds 4^%d = %d", pid, r, up.Len(), r, bound)
		}
	}
	for _, reg := range written {
		if up, ok := upReg[reg]; ok && up.Len() > bound {
			return fmt.Errorf("core: |UP(R%d, %d)| = %d exceeds 4^%d = %d", reg, r, up.Len(), r, bound)
		}
	}
	return nil
}

// writtenRegisters returns the registers whose value may have changed this
// round: targets of successful SCs, swaps, and moves.
func writtenRegisters(round *Round) []int {
	seen := make(map[int]bool)
	var regs []int
	add := func(reg int) {
		if !seen[reg] {
			seen[reg] = true
			regs = append(regs, reg)
		}
	}
	for _, s := range round.Steps {
		switch s.Op.Kind {
		case shmem.OpSwap, shmem.OpMove:
			add(s.Op.Reg)
		case shmem.OpSC:
			if s.Resp.OK {
				add(s.Op.Reg)
			}
		}
	}
	return regs
}

// prevSwapper returns the swapper immediately before pid in the round's
// swap order on one register.
func prevSwapper(sw []int, pid int) int {
	for i, p := range sw {
		if p == pid {
			if i == 0 {
				panic(fmt.Sprintf("core: pid %d is the first swapper", pid))
			}
			return sw[i-1]
		}
	}
	panic(fmt.Sprintf("core: pid %d not among swappers %v", pid, sw))
}

// CheckLemma51 verifies Lemma 5.1 on a completed run: for every process or
// register X and every round r, |UP(X, r)| ≤ 4^r. It returns nil if the
// bound holds everywhere.
func CheckLemma51(run *AllRun) error {
	if run.NoHistory {
		// The bound was checked incrementally during the run.
		return run.lemma51Err
	}
	bound := 1 // 4^0
	for _, round := range run.Rounds {
		if bound >= run.N {
			break // 4^r ≥ n: the bound is vacuous (|UP| ≤ n always)
		}
		bound *= 4 // now 4^r for this round
		for pid, up := range round.UPProc {
			if up.Len() > bound {
				return fmt.Errorf("core: |UP(p%d, %d)| = %d exceeds 4^%d = %d", pid, round.R, up.Len(), round.R, bound)
			}
		}
		for reg, up := range round.UPReg {
			if up.Len() > bound {
				return fmt.Errorf("core: |UP(R%d, %d)| = %d exceeds 4^%d = %d", reg, round.R, up.Len(), round.R, bound)
			}
		}
	}
	return nil
}
