package core

import (
	"fmt"
	"math/bits"
	"strings"

	"jayanti98/internal/shmem"
)

// PidSet is a set of process identifiers, represented as a bitset. The UP
// sets of Section 5.3 and the subset S of the (S,A)-run are PidSets; the
// adversary clones and unions them for every process every round, so the
// representation is chosen for O(n/64) bulk operations.
//
// The zero value... is not useful; construct with NewPidSet. PidSet values
// stored in run records are treated as immutable — mutate only sets you
// created or cloned.
type PidSet struct {
	words []uint64
	count int
}

// NewPidSet builds a set from the given pids.
func NewPidSet(pids ...int) PidSet {
	var s PidSet
	for _, p := range pids {
		s.Add(p)
	}
	return s
}

// FullPidSet returns the set {0, ..., n-1} — the All of the (All,A)-run —
// built a word at a time via shmem.MaskUpTo.
func FullPidSet(n int) PidSet {
	if n <= 0 {
		return PidSet{}
	}
	words := make([]uint64, shmem.WordOf(n-1)+1)
	for i := range words {
		k := n - i*64
		if k > 64 {
			k = 64
		}
		words[i] = shmem.MaskUpTo(k)
	}
	return PidSet{words: words, count: n}
}

// Add inserts pid (non-negative).
func (s *PidSet) Add(pid int) {
	w := shmem.WordOf(pid)
	for len(s.words) <= w {
		s.words = append(s.words, 0)
	}
	bit := shmem.BitOf(pid)
	if s.words[w]&bit == 0 {
		s.words[w] |= bit
		s.count++
	}
}

// Contains reports membership.
func (s PidSet) Contains(pid int) bool {
	if pid < 0 {
		return false
	}
	w := shmem.WordOf(pid)
	return w < len(s.words) && s.words[w]&shmem.BitOf(pid) != 0
}

// Len returns the cardinality.
func (s PidSet) Len() int { return s.count }

// Clone returns an independent copy.
func (s PidSet) Clone() PidSet {
	return PidSet{words: append([]uint64(nil), s.words...), count: s.count}
}

// UnionWith adds every element of o to s (in place).
func (s *PidSet) UnionWith(o PidSet) {
	for len(s.words) < len(o.words) {
		s.words = append(s.words, 0)
	}
	count := 0
	for i := range s.words {
		if i < len(o.words) {
			s.words[i] |= o.words[i]
		}
		count += bits.OnesCount64(s.words[i])
	}
	s.count = count
}

// Union returns a fresh set containing the elements of all the given sets.
func Union(sets ...PidSet) PidSet {
	var out PidSet
	for _, s := range sets {
		out.UnionWith(s)
	}
	return out
}

// SubsetOf reports whether every element of s is in o.
func (s PidSet) SubsetOf(o PidSet) bool {
	for i, w := range s.words {
		if w == 0 {
			continue
		}
		if i >= len(o.words) || w&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether the two sets have the same elements.
func (s PidSet) Equal(o PidSet) bool {
	return s.count == o.count && s.SubsetOf(o)
}

// Each calls f for every element in increasing order.
func (s PidSet) Each(f func(pid int)) {
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			f(i<<6 + b)
			w &^= 1 << uint(b)
		}
	}
}

// Sorted returns the elements in increasing order.
func (s PidSet) Sorted() []int {
	out := make([]int, 0, s.count)
	s.Each(func(pid int) { out = append(out, pid) })
	return out
}

// String renders the set as {p0, p3, ...}.
func (s PidSet) String() string {
	parts := make([]string, 0, s.count)
	s.Each(func(p int) { parts = append(parts, fmt.Sprintf("p%d", p)) })
	return "{" + strings.Join(parts, ", ") + "}"
}
