package core

import (
	"fmt"

	"jayanti98/internal/machine"
	"jayanti98/internal/moveplan"
	"jayanti98/internal/shmem"
)

// SubRun is an (S,A)-run (Figure 3): a replay of the adversary schedule in
// which only processes that — in the (All,A)-run — never gathered evidence
// of a process outside S take steps. Round r schedules exactly
// S_r = { p | UP(p, r−1) ⊆ S }, partitions them into the same four groups,
// and orders the move group by the restriction of the all-run's σ_r
// (well defined by Claim A.3: S_{2,r} ⊆ G_{2,r}).
type SubRun struct {
	// All is the (All,A)-run this sub-run shadows.
	All *AllRun
	// S is the process subset.
	S PidSet
	// Rounds holds one record per round, aligned 1:1 with All.Rounds.
	// UPProc/UPReg are nil here — UP sets are defined on the all-run.
	Rounds []*Round
	// Returns maps each terminated pid to its return value.
	Returns map[int]shmem.Value
	// Steps maps each pid to its total shared-access step count.
	Steps map[int]int
}

// Participants returns S_r for 1 ≤ r ≤ len(All.Rounds): the processes
// scheduled in round r of the sub-run.
func (s *SubRun) Participants(r int) PidSet {
	out := NewPidSet()
	for pid := 0; pid < s.All.N; pid++ {
		if s.All.UPProcAt(pid, r-1).SubsetOf(s.S) {
			out.Add(pid)
		}
	}
	return out
}

// RunSub executes the (S,A)-run corresponding to all, for exactly as many
// rounds as the all-run executed. The same toss assignment A supplies coin
// outcomes, so the j-th toss of p matches across the two runs.
func RunSub(all *AllRun, s PidSet) (*SubRun, error) {
	if all.NoHistory {
		return nil, fmt.Errorf("core: (S,A)-run requires an (All,A)-run executed with history (Config.NoHistory unset)")
	}
	var opts []shmem.Option
	if all.MemInit != nil {
		opts = append(opts, shmem.WithInit(all.MemInit))
	}
	mem := shmem.New(opts...)
	ms := machine.StartAll(all.Alg, all.N)
	defer machine.CloseAll(ms)

	sub := &SubRun{
		All:     all,
		S:       s,
		Returns: make(map[int]shmem.Value, all.N),
		Steps:   make(map[int]int, all.N),
	}

	for r := 1; r <= len(all.Rounds); r++ {
		round := &Round{
			R:         r,
			Returned:  make(map[int]shmem.Value),
			MovePlan:  make(moveplan.Plan),
			StateKeys: make(map[int]string, all.N),
			NumTosses: make(map[int]int, all.N),
		}
		sr := sub.Participants(r)

		// Phase 1 over S_r only.
		live, err := phase1(ms, &sr, all.TA, round, sub.Returns)
		if err != nil {
			return sub, fmt.Errorf("(S,A)-run: %w", err)
		}
		if len(live) > 0 {
			partition(ms, live, round)
			// Claim A.3: every mover here also moved in the all-run, so the
			// all-run's σ_r restricted to this round's move group is a
			// complete schedule for it. A process moving here but not in
			// the all-run would witness a divergence — surface it.
			allSigma := all.Rounds[r-1].Sigma
			keep := make(map[int]bool, len(round.Groups[1]))
			for _, pid := range round.Groups[1] {
				if _, ok := all.Rounds[r-1].MovePlan[pid]; !ok {
					return sub, fmt.Errorf("(S,A)-run: process %d moves in round %d of the sub-run but not in the all-run (Claim A.3 violated)", pid, r)
				}
				keep[pid] = true
			}
			round.Sigma = allSigma.Restrict(keep)
			round.Groups[1] = []int(round.Sigma)
			execRound(mem, ms, round, sub.Steps)
		}

		round.MemSnap = mem.Snapshot()
		for _, m := range ms {
			round.StateKeys[m.ID()] = m.HistoryKey()
			round.NumTosses[m.ID()] = m.NumTosses()
		}
		sub.Rounds = append(sub.Rounds, round)
	}
	return sub, nil
}

// IndistError reports a violation of the Indistinguishability Lemma.
type IndistError struct {
	Round  int
	What   string // "process" or "register"
	Index  int    // pid or register index
	Detail string
}

// Error implements error.
func (e *IndistError) Error() string {
	return fmt.Sprintf("core: indistinguishability violated at round %d for %s %d: %s",
		e.Round, e.What, e.Index, e.Detail)
}

// CheckIndist verifies the Indistinguishability Lemma (Lemma 5.2) between
// all and sub at every recorded round r:
//
//   - for every process p with UP(p,r) ⊆ S: state(p,r) and numtosses(p,r)
//     agree across the two runs (state equality is checked operationally as
//     history-key equality, which is sufficient);
//   - for every register R with UP(R,r) ⊆ S: val(R,r) agrees, and for every
//     process p with UP(p,r) ⊆ S, p ∈ Pset(R,r) in the all-run iff it is in
//     the sub-run.
//
// It returns the first violation found, or nil.
func CheckIndist(all *AllRun, sub *SubRun) error {
	for i := range all.Rounds {
		r := i + 1
		aRound, sRound := all.Rounds[i], sub.Rounds[i]

		inS := NewPidSet()
		for pid := 0; pid < all.N; pid++ {
			if all.UPProcAt(pid, r).SubsetOf(sub.S) {
				inS.Add(pid)
			}
		}

		var procErr *IndistError
		inS.Each(func(pid int) {
			if procErr != nil {
				return
			}
			if aRound.StateKeys[pid] != sRound.StateKeys[pid] {
				procErr = &IndistError{Round: r, What: "process", Index: pid,
					Detail: fmt.Sprintf("state diverged:\n  all: %s\n  sub: %s",
						aRound.StateKeys[pid], sRound.StateKeys[pid])}
				return
			}
			if aRound.NumTosses[pid] != sRound.NumTosses[pid] {
				procErr = &IndistError{Round: r, What: "process", Index: pid,
					Detail: fmt.Sprintf("numtosses %d vs %d", aRound.NumTosses[pid], sRound.NumTosses[pid])}
			}
		})
		if procErr != nil {
			return procErr
		}

		for _, reg := range unionRegs(aRound.MemSnap, sRound.MemSnap) {
			if !all.UPRegAt(reg, r).SubsetOf(sub.S) {
				continue
			}
			av, aok := aRound.MemSnap[reg]
			sv, sok := sRound.MemSnap[reg]
			if !aok {
				av = shmem.RegState{Val: initVal(all, reg)}
			}
			if !sok {
				sv = shmem.RegState{Val: initVal(all, reg)}
			}
			if !shmem.ValuesEqual(av.Val, sv.Val) {
				return &IndistError{Round: r, What: "register", Index: reg,
					Detail: fmt.Sprintf("value %v vs %v", av.Val, sv.Val)}
			}
			aPset, sPset := NewPidSet(av.Pset...), NewPidSet(sv.Pset...)
			var psetErr *IndistError
			inS.Each(func(pid int) {
				if psetErr == nil && aPset.Contains(pid) != sPset.Contains(pid) {
					psetErr = &IndistError{Round: r, What: "register", Index: reg,
						Detail: fmt.Sprintf("Pset membership of p%d: %t vs %t",
							pid, aPset.Contains(pid), sPset.Contains(pid))}
				}
			})
			if psetErr != nil {
				return psetErr
			}
		}
	}
	return nil
}

func initVal(all *AllRun, reg int) shmem.Value {
	if all.MemInit == nil {
		return nil
	}
	return all.MemInit(reg)
}

func unionRegs(a, b map[int]shmem.RegState) []int {
	seen := make(map[int]bool, len(a)+len(b))
	var regs []int
	for reg := range a {
		if !seen[reg] {
			seen[reg] = true
			regs = append(regs, reg)
		}
	}
	for reg := range b {
		if !seen[reg] {
			seen[reg] = true
			regs = append(regs, reg)
		}
	}
	return regs
}
