package core

import (
	"fmt"
	"sort"

	"jayanti98/internal/shmem"
)

// The wakeup problem (Section 1.1): (1) every process terminates in a
// finite number of its steps, returning 0 or 1; (2) in every run in which
// all processes terminate, at least one process returns 1; (3) in every run
// in which one or more processes return 1, every process takes at least one
// step before any process returns 1. Intuitively, the process that wakes up
// last must detect that every other process is up.

// Pow4AtLeast reports whether 4^r ≥ n, i.e. r ≥ log₄ n — the bound of
// Theorem 6.1 on the winner's shared-access step count.
func Pow4AtLeast(r, n int) bool {
	v := 1
	for i := 0; i < r; i++ {
		v *= 4
		if v >= n {
			return true
		}
	}
	return v >= n
}

// Log4Ceil returns ⌈log₄ n⌉, the paper's lower bound on the winner's steps.
func Log4Ceil(n int) int {
	r, v := 0, 1
	for v < n {
		v *= 4
		r++
	}
	return r
}

// WakeupWinners returns, in increasing order, the pids that returned 1.
func WakeupWinners(returns map[int]shmem.Value) []int {
	var winners []int
	for pid, v := range returns {
		if v == 1 {
			winners = append(winners, pid)
		}
	}
	sort.Ints(winners)
	return winners
}

// CheckWakeupRun verifies that the given terminated (All,A)-run satisfies
// the wakeup specification: every process returned 0 or 1, at least one
// returned 1, and no process returned 1 before every process had taken at
// least one shared-memory step. (Condition 3 is checked against the round
// structure: a process returning 1 during Phase 1 of round r has seen only
// rounds ≤ r−1, so every process must have stepped by round r−1.)
func CheckWakeupRun(run *AllRun) error {
	if !run.Terminated() {
		return fmt.Errorf("core: wakeup run did not terminate (%d of %d processes returned)", len(run.Returns), run.N)
	}
	for pid, v := range run.Returns {
		if v != 0 && v != 1 {
			return fmt.Errorf("core: process %d returned %v, want 0 or 1", pid, v)
		}
	}
	winners := WakeupWinners(run.Returns)
	if len(winners) == 0 {
		return fmt.Errorf("core: no process returned 1 in a terminating run")
	}

	// Condition 3. Find the earliest round in which a 1 was returned; every
	// process's first shared-memory step must lie in an earlier round.
	firstOne := -1
	for _, round := range run.Rounds {
		for _, v := range round.Returned {
			if v == 1 && (firstOne == -1 || round.R < firstOne) {
				firstOne = round.R
			}
		}
	}
	for pid := 0; pid < run.N; pid++ {
		first, stepped := run.FirstStepRound[pid]
		if !stepped || first >= firstOne {
			return fmt.Errorf("core: process returned 1 in round %d before process %d took any step", firstOne, pid)
		}
	}
	return nil
}

// VerifyTheorem61 checks the conclusion of Theorem 6.1 on a terminated
// wakeup run: every process that returned 1 performed at least log₄ n
// shared-memory operations. For a correct wakeup algorithm this must hold
// in every adversary run; a violation means the algorithm is incorrect (and
// CatchFastWakeup can exhibit the violating (S,A)-run).
func VerifyTheorem61(run *AllRun) error {
	for _, pid := range WakeupWinners(run.Returns) {
		if !Pow4AtLeast(run.Steps[pid], run.N) {
			return fmt.Errorf("core: winner p%d performed %d < ⌈log₄ %d⌉ = %d steps",
				pid, run.Steps[pid], run.N, Log4Ceil(run.N))
		}
	}
	return nil
}

// Catch is the proof of Theorem 6.1 made executable: a winner that returned
// 1 after r < log₄ n steps, the set S = UP(winner, r), and the (S,A)-run in
// which the winner still returns 1 even though the processes outside S
// never take a single step — a violation of the wakeup specification.
type Catch struct {
	// Winner returned 1 after too few steps.
	Winner int
	// WinnerSteps is r, the winner's shared-access step count.
	WinnerSteps int
	// S = UP(winner, r); |S| ≤ 4^r < n.
	S PidSet
	// Sub is the violating (S,A)-run.
	Sub *SubRun
	// NeverStepped lists the processes that take no step in Sub.
	NeverStepped []int
}

// String summarizes the catch.
func (c *Catch) String() string {
	return fmt.Sprintf("winner p%d returned 1 after %d steps; UP = %s (|UP| = %d); in the (S,A)-run %d processes never step yet p%d still returns 1",
		c.Winner, c.WinnerSteps, c.S, c.S.Len(), len(c.NeverStepped), c.Winner)
}

// CatchFastWakeup inspects a terminated wakeup run for a winner whose step
// count r satisfies 4^r < n and, if found, executes the proof of Theorem
// 6.1: it builds S = UP(winner, r), runs the (S,A)-run, and verifies that
// the winner still returns 1 there while the processes outside S never take
// a step. It returns (nil, nil) when every winner is slow enough — the
// algorithm survived this toss assignment.
//
// The indistinguishability between the two runs is also checked, so a
// successful catch carries a machine-checked certificate of the violation.
func CatchFastWakeup(all *AllRun) (*Catch, error) {
	for _, winner := range WakeupWinners(all.Returns) {
		r := all.Steps[winner]
		if Pow4AtLeast(r, all.N) {
			continue
		}
		s := all.UPProcAt(winner, r).Clone()
		sub, err := RunSub(all, s)
		if err != nil {
			return nil, err
		}
		if err := CheckIndist(all, sub); err != nil {
			return nil, fmt.Errorf("core: catch attempted but runs distinguishable: %w", err)
		}
		if sub.Returns[winner] != 1 {
			return nil, fmt.Errorf("core: winner p%d returned %v in the (S,A)-run, want 1 (indistinguishability should force it)",
				winner, sub.Returns[winner])
		}
		var never []int
		for pid := 0; pid < all.N; pid++ {
			if sub.Steps[pid] == 0 {
				never = append(never, pid)
			}
		}
		if len(never) == 0 {
			return nil, fmt.Errorf("core: catch of p%d failed: every process stepped in the (S,A)-run", winner)
		}
		return &Catch{
			Winner:       winner,
			WinnerSteps:  r,
			S:            s,
			Sub:          sub,
			NeverStepped: never,
		}, nil
	}
	return nil, nil
}
