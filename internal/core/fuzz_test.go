package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"jayanti98/internal/machine"
	"jayanti98/internal/shmem"
)

// randomAlgorithm builds a deterministic but arbitrary-looking program:
// each process performs `steps` operations over a small register file,
// choosing the operation kind, registers and written values from a seeded
// PRNG *mixed with everything it has observed so far* (acc). The
// data-dependence is the point — if the (S,A)-run delivered even one
// different response to a process, its subsequent operations would diverge
// and the indistinguishability check would catch it.
func randomAlgorithm(seed int64, steps, nregs int) machine.Algorithm {
	name := fmt.Sprintf("fuzz(seed=%d,steps=%d,regs=%d)", seed, steps, nregs)
	return machine.New(name, func(e *machine.Env) shmem.Value {
		rng := rand.New(rand.NewSource(seed ^ int64(e.ID())*2654435761))
		acc := int64(e.ID() + 1)
		mix := func(v shmem.Value) {
			if x, ok := v.(int64); ok {
				acc = acc*1099511628211 + x
			} else {
				acc = acc*1099511628211 + 14695981039346656037>>1
			}
		}
		reg := func() int {
			r := int((rng.Int63() ^ acc) % int64(nregs))
			if r < 0 {
				r = -r
			}
			return r
		}
		for i := 0; i < steps; i++ {
			switch (rng.Int63() ^ acc) % 13 {
			case 0, 1, 2:
				mix(e.LL(reg()))
			case 3, 4:
				ok, v := e.SC(reg(), acc%1000)
				if ok {
					acc++
				}
				mix(v)
			case 5, 6:
				ok, v := e.Validate(reg())
				if ok {
					acc += 7
				}
				mix(v)
			case 7, 8:
				mix(e.Swap(reg(), acc%1000))
			case 9, 10:
				e.Move(reg(), reg())
			case 11:
				acc = acc*31 + e.Toss()
			default:
				mix(e.LL(reg()))
			}
			if acc < 0 {
				acc = -acc
			}
		}
		return acc % 1000
	})
}

// TestFuzzLemma51AndDeterminism runs random programs under the adversary
// and checks the 4^r UP bound plus run determinism.
func TestFuzzLemma51AndDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		alg := randomAlgorithm(seed, 3+rng.Intn(8), 1+rng.Intn(5))
		ta := func(pid, j int) int64 { return (int64(pid)*7 + int64(j)*13 + seed) % 5 }
		run1, err := RunAll(alg, n, ta, Config{})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if err := CheckLemma51(run1); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		run2, err := RunAll(alg, n, ta, Config{})
		if err != nil {
			return false
		}
		// Determinism: identical returns and step counts.
		for pid := 0; pid < n; pid++ {
			if !shmem.ValuesEqual(run1.Returns[pid], run2.Returns[pid]) {
				t.Logf("seed %d: p%d returns differ: %v vs %v", seed, pid, run1.Returns[pid], run2.Returns[pid])
				return false
			}
			if run1.Steps[pid] != run2.Steps[pid] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestFuzzIndistinguishability is the big one: for random programs, random
// toss assignments, and S = UP(p, final) for every process p, the
// (S,A)-run must be indistinguishable from the (All,A)-run. This exercises
// all twelve UP rules (the programs issue every op kind, including moves
// scheduled by secretive schedules) and both run constructions.
func TestFuzzIndistinguishability(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		alg := randomAlgorithm(seed, 3+rng.Intn(7), 1+rng.Intn(4))
		ta := func(pid, j int) int64 { return (int64(pid) + int64(j)*3 + seed) % 4 }
		run, err := RunAll(alg, n, ta, Config{})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for pid := 0; pid < n; pid++ {
			s := run.FinalUPProc(pid).Clone()
			sub, err := RunSub(run, s)
			if err != nil {
				t.Logf("seed %d p%d: %v", seed, pid, err)
				return false
			}
			if err := CheckIndist(run, sub); err != nil {
				t.Logf("seed %d p%d (S=%v): %v", seed, pid, s, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestFuzzSubsetsOfUnions checks indistinguishability for S built as the
// union of several processes' knowledge — larger, non-singleton-derived
// subsets exercise S_r transitions differently.
func TestFuzzSubsetsOfUnions(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(6)
		alg := randomAlgorithm(seed, 4+rng.Intn(5), 1+rng.Intn(3))
		run, err := RunAll(alg, n, machine.ZeroTosses, Config{})
		if err != nil {
			return false
		}
		a, b := rng.Intn(n), rng.Intn(n)
		s := Union(run.FinalUPProc(a), run.FinalUPProc(b))
		sub, err := RunSub(run, s)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if err := CheckIndist(run, sub); err != nil {
			t.Logf("seed %d (S=%v): %v", seed, s, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestFuzzUPMonotone: UP sets never shrink round over round.
func TestFuzzUPMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		alg := randomAlgorithm(seed, 3+rng.Intn(6), 1+rng.Intn(4))
		run, err := RunAll(alg, n, machine.ZeroTosses, Config{})
		if err != nil {
			return false
		}
		for pid := 0; pid < n; pid++ {
			prev := NewPidSet(pid)
			for r := 1; r <= len(run.Rounds); r++ {
				cur := run.UPProcAt(pid, r)
				if !prev.SubsetOf(cur) {
					t.Logf("seed %d: UP(p%d) shrank at round %d", seed, pid, r)
					return false
				}
				if !cur.Contains(pid) {
					return false
				}
				prev = cur
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
