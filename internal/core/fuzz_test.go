package core

import (
	"fmt"
	"math/rand"
	"testing"

	"jayanti98/internal/machine"
	"jayanti98/internal/shmem"
)

// The fuzz targets in this file are native Go fuzz tests over a single
// int64 seed: the seed drives randomAlgorithm below, so every mutated
// input is a new random program + toss assignment + system size. Under
// plain `go test` only the f.Add seeds and the committed corpus
// (testdata/fuzz/Fuzz*) run, as subtests; `make fuzz-short` runs each
// target's mutation engine for ~10s.

// randomAlgorithm builds a deterministic but arbitrary-looking program:
// each process performs `steps` operations over a small register file,
// choosing the operation kind, registers and written values from a seeded
// PRNG *mixed with everything it has observed so far* (acc). The
// data-dependence is the point — if the (S,A)-run delivered even one
// different response to a process, its subsequent operations would diverge
// and the indistinguishability check would catch it.
func randomAlgorithm(seed int64, steps, nregs int) machine.Algorithm {
	name := fmt.Sprintf("fuzz(seed=%d,steps=%d,regs=%d)", seed, steps, nregs)
	return machine.New(name, func(e *machine.Env) shmem.Value {
		rng := rand.New(rand.NewSource(seed ^ int64(e.ID())*2654435761))
		acc := int64(e.ID() + 1)
		mix := func(v shmem.Value) {
			if x, ok := v.(int64); ok {
				acc = acc*1099511628211 + x
			} else {
				acc = acc*1099511628211 + 14695981039346656037>>1
			}
		}
		reg := func() int {
			r := int((rng.Int63() ^ acc) % int64(nregs))
			if r < 0 {
				r = -r
			}
			return r
		}
		for i := 0; i < steps; i++ {
			switch (rng.Int63() ^ acc) % 13 {
			case 0, 1, 2:
				mix(e.LL(reg()))
			case 3, 4:
				ok, v := e.SC(reg(), acc%1000)
				if ok {
					acc++
				}
				mix(v)
			case 5, 6:
				ok, v := e.Validate(reg())
				if ok {
					acc += 7
				}
				mix(v)
			case 7, 8:
				mix(e.Swap(reg(), acc%1000))
			case 9, 10:
				e.Move(reg(), reg())
			case 11:
				acc = acc*31 + e.Toss()
			default:
				mix(e.LL(reg()))
			}
			if acc < 0 {
				acc = -acc
			}
		}
		return acc % 1000
	})
}

// addSeeds registers a spread of starting seeds; the committed corpus
// under testdata/fuzz extends it.
func addSeeds(f *testing.F) {
	for _, seed := range []int64{0, 1, 2, 3, 7, 13, 42, 1998, -5, 1 << 40} {
		f.Add(seed)
	}
}

// FuzzLemma51AndDeterminism runs random programs under the adversary and
// checks the 4^r UP bound plus run determinism.
func FuzzLemma51AndDeterminism(f *testing.F) {
	addSeeds(f)
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		alg := randomAlgorithm(seed, 3+rng.Intn(8), 1+rng.Intn(5))
		ta := func(pid, j int) int64 { return (int64(pid)*7 + int64(j)*13 + seed) % 5 }
		run1, err := RunAll(alg, n, ta, Config{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := CheckLemma51(run1); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		run2, err := RunAll(alg, n, ta, Config{})
		if err != nil {
			t.Fatalf("seed %d: rerun: %v", seed, err)
		}
		// Determinism: identical returns and step counts.
		for pid := 0; pid < n; pid++ {
			if !shmem.ValuesEqual(run1.Returns[pid], run2.Returns[pid]) {
				t.Fatalf("seed %d: p%d returns differ: %v vs %v", seed, pid, run1.Returns[pid], run2.Returns[pid])
			}
			if run1.Steps[pid] != run2.Steps[pid] {
				t.Fatalf("seed %d: p%d step counts differ: %d vs %d", seed, pid, run1.Steps[pid], run2.Steps[pid])
			}
		}
	})
}

// FuzzIndistinguishability is the big one: for random programs, random
// toss assignments, and S = UP(p, final) for every process p — plus one
// union of two processes' knowledge — the (S,A)-run must be
// indistinguishable from the (All,A)-run. This exercises all twelve UP
// rules (the programs issue every op kind, including moves scheduled by
// secretive schedules) and both run constructions.
func FuzzIndistinguishability(f *testing.F) {
	addSeeds(f)
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		alg := randomAlgorithm(seed, 3+rng.Intn(7), 1+rng.Intn(4))
		ta := func(pid, j int) int64 { return (int64(pid) + int64(j)*3 + seed) % 4 }
		run, err := RunAll(alg, n, ta, Config{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		check := func(label string, s PidSet) {
			sub, err := RunSub(run, s)
			if err != nil {
				t.Fatalf("seed %d %s (S=%v): %v", seed, label, s, err)
			}
			if err := CheckIndist(run, sub); err != nil {
				t.Fatalf("seed %d %s (S=%v): %v", seed, label, s, err)
			}
		}
		for pid := 0; pid < n; pid++ {
			check(fmt.Sprintf("p%d", pid), run.FinalUPProc(pid).Clone())
		}
		// A union of two processes' knowledge: larger, non-singleton-derived
		// subsets exercise S_r transitions differently.
		a, b := rng.Intn(n), rng.Intn(n)
		check(fmt.Sprintf("union(p%d,p%d)", a, b), Union(run.FinalUPProc(a), run.FinalUPProc(b)))
	})
}

// FuzzUPMonotone checks that UP sets never shrink round over round and
// always contain their own process.
func FuzzUPMonotone(f *testing.F) {
	addSeeds(f)
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		alg := randomAlgorithm(seed, 3+rng.Intn(6), 1+rng.Intn(4))
		run, err := RunAll(alg, n, machine.ZeroTosses, Config{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for pid := 0; pid < n; pid++ {
			prev := NewPidSet(pid)
			for r := 1; r <= len(run.Rounds); r++ {
				cur := run.UPProcAt(pid, r)
				if !prev.SubsetOf(cur) {
					t.Fatalf("seed %d: UP(p%d) shrank at round %d", seed, pid, r)
				}
				if !cur.Contains(pid) {
					t.Fatalf("seed %d: UP(p%d) lost p%d at round %d", seed, pid, pid, r)
				}
				prev = cur
			}
		}
	})
}
