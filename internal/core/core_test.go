package core

import (
	"strings"
	"testing"

	"jayanti98/internal/machine"
	"jayanti98/internal/shmem"
)

// setRegisterWakeup is a minimal correct wakeup algorithm used to exercise
// the adversary: one unbounded register holds the set of pids seen so far
// (as a sorted string encoding); each process LL/SC-retries to insert its
// id; whoever completes the set returns 1. (The production version with
// richer reporting lives in package wakeup.)
var setRegisterWakeup = machine.New("set-register", func(e *machine.Env) shmem.Value {
	for {
		v := e.LL(0)
		set := decodeSet(v)
		if set.Contains(e.ID()) {
			// Only we insert our id; seeing it means our SC succeeded.
			return 0
		}
		set.Add(e.ID())
		if ok, _ := e.SC(0, encodeSet(set)); ok {
			if set.Len() == e.N() {
				return 1
			}
			return 0
		}
	}
})

// cheaterWakeup is deliberately broken: it "detects" wakeup after a single
// shared-memory operation, which Theorem 6.1 proves impossible for n > 4.
var cheaterWakeup = machine.New("cheater", func(e *machine.Env) shmem.Value {
	e.Swap(e.ID(), 1) // announce
	return 1          // claim victory immediately (wrong!)
})

func encodeSet(s PidSet) string {
	var b strings.Builder
	for _, p := range s.Sorted() {
		b.WriteString(",")
		b.WriteString(pidString(p))
	}
	return b.String()
}

func pidString(p int) string {
	const digits = "0123456789"
	if p == 0 {
		return "0"
	}
	var out []byte
	for p > 0 {
		out = append([]byte{digits[p%10]}, out...)
		p /= 10
	}
	return string(out)
}

func decodeSet(v shmem.Value) PidSet {
	s := NewPidSet()
	str, _ := v.(string)
	for _, part := range strings.Split(str, ",") {
		if part == "" {
			continue
		}
		n := 0
		for _, c := range part {
			n = n*10 + int(c-'0')
		}
		s.Add(n)
	}
	return s
}

func mustRunAll(t *testing.T, alg machine.Algorithm, n int) *AllRun {
	t.Helper()
	run, err := RunAll(alg, n, machine.ZeroTosses, Config{})
	if err != nil {
		t.Fatalf("RunAll(%s, %d): %v", alg.Name(), n, err)
	}
	return run
}

func TestPidSetBasics(t *testing.T) {
	s := NewPidSet(3, 1)
	s.Add(2)
	if !s.Contains(1) || !s.Contains(2) || !s.Contains(3) || s.Contains(0) {
		t.Fatal("membership wrong")
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	o := s.Clone()
	o.Add(9)
	if s.Contains(9) {
		t.Fatal("Clone must be independent")
	}
	if !s.SubsetOf(o) || o.SubsetOf(s) {
		t.Fatal("SubsetOf wrong")
	}
	u := Union(NewPidSet(1), NewPidSet(2), NewPidSet(1, 5))
	if !u.Equal(NewPidSet(1, 2, 5)) {
		t.Fatalf("Union = %v", u)
	}
	if got := NewPidSet(2, 0).String(); got != "{p0, p2}" {
		t.Fatalf("String = %q", got)
	}
	if got := s.Sorted(); got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("Sorted = %v", got)
	}
}

func TestAdversaryRoundStructure(t *testing.T) {
	// Each process: LL(0), then SC(0, id), then return. Round 1 must be all
	// LLs (G1), round 2 all SCs (G4) with exactly one success (p0, lowest
	// id first), round 3 only returns.
	alg := machine.New("ll-then-sc", func(e *machine.Env) shmem.Value {
		e.LL(0)
		ok, _ := e.SC(0, e.ID())
		if ok {
			return 1
		}
		return 0
	})
	run := mustRunAll(t, alg, 4)
	if !run.Terminated() {
		t.Fatal("run did not terminate")
	}
	if len(run.Rounds) != 3 {
		t.Fatalf("rounds = %d, want 3 (LL, SC, returns)", len(run.Rounds))
	}
	r1, r2 := run.Rounds[0], run.Rounds[1]
	if len(r1.Groups[0]) != 4 || len(r1.Groups[3]) != 0 {
		t.Fatalf("round 1 groups = %v", r1.Groups)
	}
	if len(r2.Groups[3]) != 4 {
		t.Fatalf("round 2 SC group = %v", r2.Groups[3])
	}
	if got := r2.successfulSC(0); got != 0 {
		t.Fatalf("successful SC by p%d, want p0 (id order)", got)
	}
	// Exactly one success.
	succ := 0
	for _, s := range r2.Steps {
		if s.Op.Kind == shmem.OpSC && s.Resp.OK {
			succ++
		}
	}
	if succ != 1 {
		t.Fatalf("%d successful SCs in round 2, want 1", succ)
	}
	// Only p0 returns 1.
	if run.Returns[0] != 1 {
		t.Fatalf("p0 returned %v, want 1", run.Returns[0])
	}
	for pid := 1; pid < 4; pid++ {
		if run.Returns[pid] != 0 {
			t.Fatalf("p%d returned %v, want 0", pid, run.Returns[pid])
		}
	}
}

func TestUPRulesLLAndSC(t *testing.T) {
	alg := machine.New("ll-then-sc", func(e *machine.Env) shmem.Value {
		e.LL(0)
		e.SC(0, e.ID())
		return 0
	})
	run := mustRunAll(t, alg, 4)

	// Round 1: every p did LL(R0); UP(p,1) = {p} ∪ UP(R0,0) = {p}.
	for pid := 0; pid < 4; pid++ {
		if up := run.UPProcAt(pid, 1); !up.Equal(NewPidSet(pid)) {
			t.Fatalf("UP(p%d,1) = %v, want {p%d}", pid, up, pid)
		}
	}
	// Round 1: no writes; UP(R0,1) = ∅.
	if up := run.UPRegAt(0, 1); up.Len() != 0 {
		t.Fatalf("UP(R0,1) = %v, want empty", up)
	}
	// Round 2: p0's SC succeeds → UP(R0,2) = UP(p0,1) = {p0};
	if up := run.UPRegAt(0, 2); !up.Equal(NewPidSet(0)) {
		t.Fatalf("UP(R0,2) = %v, want {p0}", up)
	}
	// p0: successful SC → UP(p0,2) = UP(p0,1) ∪ UP(R0,1) = {p0}.
	if up := run.UPProcAt(0, 2); !up.Equal(NewPidSet(0)) {
		t.Fatalf("UP(p0,2) = %v, want {p0}", up)
	}
	// p1..p3: failed SC → UP(p,2) = UP(p,1) ∪ UP(R0,2) = {p, p0}.
	for pid := 1; pid < 4; pid++ {
		if up := run.UPProcAt(pid, 2); !up.Equal(NewPidSet(pid, 0)) {
			t.Fatalf("UP(p%d,2) = %v, want {p0, p%d}", pid, up, pid)
		}
	}
}

func TestUPRulesSwapChain(t *testing.T) {
	// All processes swap register 0 in the same round. Swap order is pid
	// order: p0 first (rule 3: sees UP(R,r−1) = ∅), p_i sees p_{i−1}
	// (rule 5); register ends with the last swapper's knowledge (rule 2).
	alg := machine.New("swap-once", func(e *machine.Env) shmem.Value {
		e.Swap(0, e.ID())
		return 0
	})
	run := mustRunAll(t, alg, 4)
	if up := run.UPProcAt(0, 1); !up.Equal(NewPidSet(0)) {
		t.Fatalf("UP(p0,1) = %v, want {p0}", up)
	}
	for pid := 1; pid < 4; pid++ {
		want := NewPidSet(pid, pid-1)
		if up := run.UPProcAt(pid, 1); !up.Equal(want) {
			t.Fatalf("UP(p%d,1) = %v, want %v", pid, up, want)
		}
	}
	// Register: last swapper is p3; UP(R0,1) = UP(p3,0) = {p3}.
	if up := run.UPRegAt(0, 1); !up.Equal(NewPidSet(3)) {
		t.Fatalf("UP(R0,1) = %v, want {p3}", up)
	}
}

func TestUPRulesMove(t *testing.T) {
	// p_i writes its id to register 10+i in round 1 (swap), then moves
	// register 10+i into register 20 in round 2. The last mover in σ_2
	// determines R20's source; UP(R20,2) = UP(source,1) ∪ movers' UP(·,1).
	alg := machine.New("swap-then-move", func(e *machine.Env) shmem.Value {
		e.Swap(10+e.ID(), e.ID())
		e.Move(10+e.ID(), 20)
		return 0
	})
	run := mustRunAll(t, alg, 3)
	r2 := run.Rounds[1]
	if len(r2.MovePlan) != 3 {
		t.Fatalf("move plan = %v", r2.MovePlan)
	}
	if len(r2.Sigma) != 3 {
		t.Fatalf("sigma = %v", r2.Sigma)
	}
	up := run.UPRegAt(20, 2)
	// All sources are fresh in round 2, so each register's movers chain has
	// exactly one process; UP(R20,2) = UP(R_{10+q},1) ∪ UP(q,1) where q is
	// the last process in σ_2 with destination 20 — every pid has dest 20,
	// so q is σ_2's last element.
	q := r2.Sigma[len(r2.Sigma)-1]
	// UP(R_{10+q},1): q swapped it alone in round 1 → {q}; UP(q,1) = {q}.
	if !up.Equal(NewPidSet(q)) {
		t.Fatalf("UP(R20,2) = %v, want {p%d}", up, q)
	}
	// Movers must reveal at most two processes (secretive schedule).
	if err := CheckLemma51(run); err != nil {
		t.Fatal(err)
	}
}

func TestUPRuleMoverGainsNothing(t *testing.T) {
	alg := machine.New("mover", func(e *machine.Env) shmem.Value {
		e.Move(5, 6)
		return 0
	})
	run := mustRunAll(t, alg, 2)
	for pid := 0; pid < 2; pid++ {
		if up := run.UPProcAt(pid, 1); !up.Equal(NewPidSet(pid)) {
			t.Fatalf("UP(p%d,1) = %v, want {p%d} (move returns only ack)", pid, up, pid)
		}
	}
}

func TestLemma51OnSetRegisterWakeup(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		run := mustRunAll(t, setRegisterWakeup, n)
		if err := CheckLemma51(run); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestSetRegisterWakeupSatisfiesSpec(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 16} {
		run := mustRunAll(t, setRegisterWakeup, n)
		if err := CheckWakeupRun(run); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := VerifyTheorem61(run); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestIndistinguishabilityOnSetRegister(t *testing.T) {
	// For every process p and its final-knowledge set S = UP(p, steps(p)),
	// the (S,A)-run must be indistinguishable from the (All,A)-run.
	run := mustRunAll(t, setRegisterWakeup, 8)
	for pid := 0; pid < 8; pid++ {
		s := run.UPProcAt(pid, run.Steps[pid]).Clone()
		sub, err := RunSub(run, s)
		if err != nil {
			t.Fatalf("p%d: %v", pid, err)
		}
		if err := CheckIndist(run, sub); err != nil {
			t.Fatalf("p%d (S=%v): %v", pid, s, err)
		}
	}
}

func TestIndistinguishabilityWithFullSet(t *testing.T) {
	// S = all processes: the (S,A)-run IS the (All,A)-run.
	run := mustRunAll(t, setRegisterWakeup, 6)
	all := FullPidSet(6)
	sub, err := RunSub(run, all)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckIndist(run, sub); err != nil {
		t.Fatal(err)
	}
	for pid := 0; pid < 6; pid++ {
		if sub.Steps[pid] != run.Steps[pid] {
			t.Fatalf("p%d steps %d vs %d", pid, sub.Steps[pid], run.Steps[pid])
		}
		if sub.Returns[pid] != run.Returns[pid] {
			t.Fatalf("p%d returns %v vs %v", pid, sub.Returns[pid], run.Returns[pid])
		}
	}
}

func TestCheaterViolatesTheorem61(t *testing.T) {
	run := mustRunAll(t, cheaterWakeup, 16)
	if err := VerifyTheorem61(run); err == nil {
		t.Fatal("cheater with 1 step must violate the log₄ n bound for n = 16")
	}
}

func TestCatchFastWakeup(t *testing.T) {
	run := mustRunAll(t, cheaterWakeup, 16)
	catch, err := CatchFastWakeup(run)
	if err != nil {
		t.Fatal(err)
	}
	if catch == nil {
		t.Fatal("cheater must be caught")
	}
	if catch.WinnerSteps != 1 {
		t.Fatalf("winner steps = %d, want 1", catch.WinnerSteps)
	}
	if catch.S.Len() >= 16 {
		t.Fatalf("|S| = %d, want < n", catch.S.Len())
	}
	if len(catch.NeverStepped) == 0 {
		t.Fatal("someone must never step in the violating run")
	}
	if catch.Sub.Returns[catch.Winner] != 1 {
		t.Fatal("winner must still return 1 in the (S,A)-run")
	}
	if !strings.Contains(catch.String(), "returned 1") {
		t.Fatalf("Catch.String() = %q", catch.String())
	}
}

func TestCatchReturnsNilForCorrectAlgorithm(t *testing.T) {
	run := mustRunAll(t, setRegisterWakeup, 8)
	catch, err := CatchFastWakeup(run)
	if err != nil {
		t.Fatal(err)
	}
	if catch != nil {
		t.Fatalf("correct algorithm must not be caught: %v", catch)
	}
}

func TestRandomizedTossesMatchAcrossRuns(t *testing.T) {
	// A randomized algorithm: toss a coin to pick one of two registers,
	// swap the id there, read the other, return 0/1 by parity. The sub-run
	// must consume identical toss outcomes (checked by CheckIndist through
	// numtosses and state keys).
	alg := machine.New("random-probe", func(e *machine.Env) shmem.Value {
		b := e.Toss() % 2
		e.Swap(int(b), e.ID())
		v := e.Read(int(1 - b))
		e.Toss() // a second toss after the last shared step
		if v == nil {
			return 0
		}
		return 1
	})
	ta := func(pid, j int) int64 { return int64((pid + j) % 2) }
	run, err := RunAll(alg, 6, ta, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for pid := 0; pid < 6; pid++ {
		s := run.UPProcAt(pid, run.Steps[pid]).Clone()
		sub, err := RunSub(run, s)
		if err != nil {
			t.Fatalf("p%d: %v", pid, err)
		}
		if err := CheckIndist(run, sub); err != nil {
			t.Fatalf("p%d: %v", pid, err)
		}
	}
}

func TestRunAllRoundBudget(t *testing.T) {
	spinner := machine.New("spin", func(e *machine.Env) shmem.Value {
		for {
			e.Read(0)
		}
	})
	_, err := RunAll(spinner, 2, machine.ZeroTosses, Config{MaxRounds: 10})
	if err == nil {
		t.Fatal("non-terminating algorithm must exhaust the round budget")
	}
}

func TestMemInitIsApplied(t *testing.T) {
	alg := machine.New("read-init", func(e *machine.Env) shmem.Value {
		return e.Read(7)
	})
	run, err := RunAll(alg, 2, machine.ZeroTosses, Config{
		MemInit: func(reg int) shmem.Value { return reg * 2 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.Returns[0] != 14 {
		t.Fatalf("Returns[0] = %v, want 14", run.Returns[0])
	}
	// Sub-run must see the same initialization.
	sub, err := RunSub(run, NewPidSet(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckIndist(run, sub); err != nil {
		t.Fatal(err)
	}
}

func TestPow4AndLog4(t *testing.T) {
	if !Pow4AtLeast(0, 1) || Pow4AtLeast(0, 2) {
		t.Fatal("Pow4AtLeast base cases wrong")
	}
	if !Pow4AtLeast(2, 16) || Pow4AtLeast(1, 16) {
		t.Fatal("Pow4AtLeast(·, 16) wrong")
	}
	cases := map[int]int{1: 0, 2: 1, 4: 1, 5: 2, 16: 2, 17: 3, 64: 3, 1024: 5}
	for n, want := range cases {
		if got := Log4Ceil(n); got != want {
			t.Errorf("Log4Ceil(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestMaxStepsAndUPAccessors(t *testing.T) {
	run := mustRunAll(t, setRegisterWakeup, 4)
	steps, pid := run.MaxSteps()
	if steps <= 0 || pid < 0 || pid >= 4 {
		t.Fatalf("MaxSteps = (%d, %d)", steps, pid)
	}
	if up := run.UPProcAt(2, 0); !up.Equal(NewPidSet(2)) {
		t.Fatalf("UP(p2,0) = %v", up)
	}
	if up := run.UPRegAt(99, 0); up.Len() != 0 {
		t.Fatalf("UP(R99,0) = %v", up)
	}
}
