// Package core implements the lower-bound machinery of Jayanti (PODC 1998):
// the round-based adversary scheduler of Figure 2, the UP-set update rules
// of Section 5.3, the (S,A)-run construction of Figure 3, the
// indistinguishability checker of Lemma 5.2, and the wakeup-problem
// specification checks behind Theorem 6.1.
//
// The adversary proceeds in rounds of five phases: (1) every live process
// performs local coin tosses until it terminates or is about to access
// shared memory; the rest are partitioned by their pending operation into
// the LL/validate group, the move group, the swap group, and the SC group;
// phases (2)–(5) then execute the groups in that order — LL/validate, swap
// and SC groups in pid order, the move group according to a secretive
// complete schedule (package moveplan). Executing a run this way yields,
// per round, everything Section 5 reasons about: who succeeded on which
// register, σ_r and f_r for the moves, end-of-round register and process
// states, and the UP sets.
package core

import (
	"errors"
	"fmt"

	"jayanti98/internal/machine"
	"jayanti98/internal/moveplan"
	"jayanti98/internal/shmem"
)

// tossGuard bounds coin tosses per process per round; a process exceeding
// it is assumed to be tossing forever (the run then has a non-terminating
// Phase 1, i.e. finitely many rounds, which the executor reports as an
// error because every algorithm we drive is supposed to be wait-free).
const tossGuard = 1 << 20

// ErrTooManyRounds reports that the run did not terminate within the round
// budget.
var ErrTooManyRounds = errors.New("core: round budget exhausted before all processes terminated")

// StepRecord is one shared-memory operation executed in a round.
type StepRecord struct {
	Pid  int
	Op   shmem.Op
	Resp shmem.Response
}

// String renders the step.
func (s StepRecord) String() string {
	return fmt.Sprintf("p%d: %v -> %v", s.Pid, s.Op, s.Resp)
}

// Round captures everything that happened in one round of a run, plus
// end-of-round snapshots.
type Round struct {
	// R is the 1-based round number.
	R int
	// Returned lists processes that entered a termination state during
	// Phase 1 of this round, with their return values.
	Returned map[int]shmem.Value
	// Groups holds the pids of G1 (LL/validate), G2 (move), G3 (swap) and
	// G4 (SC), each in scheduling order.
	Groups [4][]int
	// MovePlan is f_r: the move operation of each process in G2.
	MovePlan moveplan.Plan
	// Sigma is σ_r, the secretive complete schedule used for G2.
	Sigma moveplan.Schedule
	// Steps are the shared-memory operations of phases 2–5, in execution
	// order.
	Steps []StepRecord
	// MemSnap is the end-of-round register snapshot.
	MemSnap map[int]shmem.RegState
	// StateKeys maps each pid to its end-of-round machine history key
	// (the operational form of state(p, r, Σ)).
	StateKeys map[int]string
	// NumTosses maps each pid to numtosses(p, r, Σ).
	NumTosses map[int]int
	// UPProc and UPReg are the UP sets at the end of this round. They are
	// populated only for (All,A)-runs; (S,A)-runs reuse the all-run's sets.
	UPProc map[int]PidSet
	UPReg  map[int]PidSet
}

// successfulSC returns the pid that performed a successful SC on reg in
// this round, or -1. (At most one SC on a register succeeds per round: the
// first success clears the Pset and every move or swap on the register in
// earlier phases clears it too.)
func (r *Round) successfulSC(reg int) int {
	for _, s := range r.Steps {
		if s.Op.Kind == shmem.OpSC && s.Op.Reg == reg && s.Resp.OK {
			return s.Pid
		}
	}
	return -1
}

// swappers returns the pids that performed swap on reg this round, in
// execution order.
func (r *Round) swappers(reg int) []int {
	var out []int
	for _, s := range r.Steps {
		if s.Op.Kind == shmem.OpSwap && s.Op.Reg == reg {
			out = append(out, s.Pid)
		}
	}
	return out
}

// movedInto reports whether any process performed a move into reg this
// round.
func (r *Round) movedInto(reg int) bool {
	for _, mv := range r.MovePlan {
		if mv.Dst == reg {
			return true
		}
	}
	return false
}

// AllRun is a complete (All,A)-run: the unique unextendable run permitted
// by the adversary scheduler under toss assignment A.
type AllRun struct {
	// Alg is the algorithm that was run.
	Alg machine.Algorithm
	// N is the number of processes.
	N int
	// TA is the toss assignment A.
	TA machine.TossAssignment
	// MemInit is the register initialization (nil for all-nil registers).
	MemInit func(reg int) shmem.Value
	// Rounds holds one record per executed round.
	Rounds []*Round
	// Returns maps each terminated pid to its return value.
	Returns map[int]shmem.Value
	// Steps maps each pid to its total shared-access step count.
	Steps map[int]int
	// FirstStepRound maps each pid to the round of its first shared-memory
	// step (absent if it never stepped).
	FirstStepRound map[int]int
	// NoHistory records that the run was executed without history digests,
	// end-of-round snapshots, or per-round UP sets (pure measurement mode);
	// such a run cannot be compared with CheckIndist or used with RunSub.
	NoHistory bool

	// curUPProc and curUPReg are the latest UP sets; in history mode they
	// are also recorded per round.
	curUPProc map[int]PidSet
	curUPReg  map[int]PidSet
	// lemma51Err records the first incremental Lemma 5.1 violation.
	lemma51Err error
}

// Terminated reports whether every process terminated.
func (a *AllRun) Terminated() bool { return len(a.Returns) == a.N }

// MaxSteps returns t(R): the maximum shared-access step count over all
// processes, and the pid attaining it.
func (a *AllRun) MaxSteps() (steps, pid int) {
	pid = -1
	for p := 0; p < a.N; p++ {
		if s := a.Steps[p]; s > steps {
			steps, pid = s, p
		}
	}
	return steps, pid
}

// UPProcAt returns UP(p, r) for r ≥ 0 (r = 0 is the initial {p}).
// Per-round UP sets require history mode; in NoHistory mode only the final
// sets (FinalUPProc) exist.
func (a *AllRun) UPProcAt(pid, r int) PidSet {
	if r == 0 {
		return NewPidSet(pid)
	}
	return a.Rounds[r-1].UPProc[pid]
}

// UPRegAt returns UP(R, r) for r ≥ 0 (r = 0 is the empty set).
func (a *AllRun) UPRegAt(reg, r int) PidSet {
	if r == 0 {
		return NewPidSet()
	}
	if s, ok := a.Rounds[r-1].UPReg[reg]; ok {
		return s
	}
	return NewPidSet()
}

// FinalUPProc returns UP(p, r_final): p's knowledge set at the end of the
// run. Available in both history and NoHistory modes.
func (a *AllRun) FinalUPProc(pid int) PidSet {
	if s, ok := a.curUPProc[pid]; ok {
		return s
	}
	return NewPidSet(pid)
}

// Config tunes a run.
type Config struct {
	// MaxRounds bounds the number of rounds (default 8n + 64).
	MaxRounds int
	// MemInit initializes register values (default: all nil).
	MemInit func(reg int) shmem.Value
	// NoHistory disables per-process history digests and end-of-round
	// register snapshots. Measurement sweeps over large n use it: digesting
	// every delivered value costs as much as the run itself. Runs intended
	// for RunSub/CheckIndist must keep history on.
	NoHistory bool
}

func (c Config) maxRounds(n int) int {
	if c.MaxRounds > 0 {
		return c.MaxRounds
	}
	return 8*n + 64
}

// RunAll executes the (All,A)-run of alg for n processes under toss
// assignment ta, recording per-round history and UP sets. It returns an
// error if a process crashes or the round budget is exhausted (wait-free
// algorithms must terminate; see Config.MaxRounds).
func RunAll(alg machine.Algorithm, n int, ta machine.TossAssignment, cfg Config) (*AllRun, error) {
	var opts []shmem.Option
	if cfg.MemInit != nil {
		opts = append(opts, shmem.WithInit(cfg.MemInit))
	}
	mem := shmem.New(opts...)
	ms := machine.StartAll(alg, n)
	defer machine.CloseAll(ms)

	run := &AllRun{
		Alg:            alg,
		N:              n,
		TA:             ta,
		MemInit:        cfg.MemInit,
		Returns:        make(map[int]shmem.Value, n),
		Steps:          make(map[int]int, n),
		FirstStepRound: make(map[int]int, n),
		NoHistory:      cfg.NoHistory,
	}
	if cfg.NoHistory {
		for _, m := range ms {
			m.DisableHistory()
		}
	}

	for r := 1; ; r++ {
		if r > cfg.maxRounds(n) {
			return run, fmt.Errorf("%w: %s with n=%d after %d rounds", ErrTooManyRounds, alg.Name(), n, r-1)
		}
		round := &Round{
			R:         r,
			Returned:  make(map[int]shmem.Value),
			MovePlan:  make(moveplan.Plan),
			StateKeys: make(map[int]string, n),
			NumTosses: make(map[int]int, n),
		}

		// Phase 1: drain coin tosses; collect returns; partition the rest.
		live, err := phase1(ms, nil, ta, round, run.Returns)
		if err != nil {
			return run, err
		}
		if len(live) > 0 {
			partition(ms, live, round)
			execRound(mem, ms, round, run.Steps) // phases 2–5
			for _, pid := range live {
				if _, ok := run.FirstStepRound[pid]; !ok {
					run.FirstStepRound[pid] = r
				}
			}
		}

		// End-of-round snapshots and UP updates. A round with no live
		// processes is still recorded when Phase 1 produced returns, so
		// that per-round histories cover every return.
		if len(live) > 0 || len(round.Returned) > 0 {
			if !cfg.NoHistory {
				round.MemSnap = mem.Snapshot()
				for _, m := range ms {
					round.StateKeys[m.ID()] = m.HistoryKey()
					round.NumTosses[m.ID()] = m.NumTosses()
				}
			}
			updateUP(run, round)
			if cfg.NoHistory {
				// Measurement mode: drop the heavy per-round payloads once
				// the UP update has consumed them (memory would otherwise
				// grow as rounds × n × |UP|).
				round.Steps = nil
				round.Groups = [4][]int{}
				round.MovePlan = nil
				round.Sigma = nil
			}
			run.Rounds = append(run.Rounds, round)
		}
		if len(live) == 0 {
			// All processes terminated; rounds r+1, r+2, ... are empty.
			break
		}
	}
	return run, nil
}

// phase1 drains tosses for every machine whose pid passes the filter
// (nil filter = all machines), recording returns. It returns the pids that
// are live (not yet terminated), in increasing order.
func phase1(ms []*machine.Machine, only *PidSet, ta machine.TossAssignment, round *Round, returns map[int]shmem.Value) ([]int, error) {
	var live []int
	for _, m := range ms {
		pid := m.ID()
		if only != nil && !only.Contains(pid) {
			continue
		}
		if _, done := returns[pid]; done {
			continue
		}
		tosses := 0
	drain:
		for {
			switch a := m.Peek(); a.Kind {
			case machine.ActToss:
				if tosses++; tosses > tossGuard {
					return nil, fmt.Errorf("core: process %d exceeded %d coin tosses in round %d phase 1", pid, tossGuard, round.R)
				}
				m.DeliverToss(ta(pid, m.NumTosses()))
			case machine.ActCrash:
				return nil, fmt.Errorf("core: process %d crashed in round %d: %w", pid, round.R, m.Crashed())
			case machine.ActReturn:
				round.Returned[pid] = a.Ret
				returns[pid] = a.Ret
				break drain
			case machine.ActOp:
				live = append(live, pid)
				break drain
			}
		}
	}
	return live, nil
}

// partition splits the live pids into G1..G4 by pending operation kind and
// fills the round's move plan and secretive schedule.
func partition(ms []*machine.Machine, live []int, round *Round) {
	for _, pid := range live {
		op := ms[pid].Peek().Op
		switch op.Kind {
		case shmem.OpLL, shmem.OpValidate:
			round.Groups[0] = append(round.Groups[0], pid)
		case shmem.OpMove:
			round.Groups[1] = append(round.Groups[1], pid)
			round.MovePlan[pid] = moveplan.Move{Src: op.Src, Dst: op.Reg}
		case shmem.OpSwap:
			round.Groups[2] = append(round.Groups[2], pid)
		case shmem.OpSC:
			round.Groups[3] = append(round.Groups[3], pid)
		}
	}
	round.Sigma = moveplan.Secretive(round.MovePlan)
	// The move group executes in σ_r order.
	round.Groups[1] = []int(round.Sigma)
}

// execRound performs phases 2–5: each group's processes execute their one
// pending operation in the group's scheduling order.
func execRound(mem *shmem.Memory, ms []*machine.Machine, round *Round, steps map[int]int) {
	for _, group := range round.Groups {
		for _, pid := range group {
			m := ms[pid]
			op := m.Peek().Op
			resp := mem.Apply(pid, op)
			round.Steps = append(round.Steps, StepRecord{Pid: pid, Op: op, Resp: resp})
			steps[pid]++
			m.DeliverOpResponse(resp)
		}
	}
}
