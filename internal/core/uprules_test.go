package core

import (
	"testing"

	"jayanti98/internal/machine"
	"jayanti98/internal/shmem"
)

// Targeted scenarios for the less-travelled update rules of Section 5.3.
// Each test constructs an algorithm whose round structure is known exactly
// and asserts the resulting UP sets verbatim.

// pick builds an algorithm where each pid runs its own script.
func pick(scripts ...machine.Body) machine.Algorithm {
	return machine.New("scenario", func(e *machine.Env) shmem.Value {
		return scripts[e.ID()](e)
	})
}

func TestUPRule4FirstSwapperSeesMoversAndSource(t *testing.T) {
	// Round 1: p0 swaps R10 (announcing itself), p1 swaps R20.
	// Round 2: p0 moves R10 → R0 while p1 swaps R0.
	// The move phase precedes the swap phase, so p1 is the first swapper
	// on R0 with a move into it in the same round: process rule 4 gives
	// UP(p1,2) = {p1} ∪ UP(R10,1) ∪ UP(p0,1) = {p0, p1}.
	alg := pick(
		func(e *machine.Env) shmem.Value { // p0
			e.Swap(10, "a")
			e.Move(10, 0)
			return 0
		},
		func(e *machine.Env) shmem.Value { // p1
			e.Swap(20, "b")
			e.Swap(0, "c")
			return 0
		},
	)
	run := mustRunAll(t, alg, 2)
	if up := run.UPProcAt(1, 2); !up.Equal(NewPidSet(0, 1)) {
		t.Fatalf("UP(p1,2) = %v, want {p0, p1}", up)
	}
	// Register rule 2: the swap overwrites the move; UP(R0,2) = UP(p1,1).
	if up := run.UPRegAt(0, 2); !up.Equal(NewPidSet(1)) {
		t.Fatalf("UP(R0,2) = %v, want {p1}", up)
	}
}

func TestUPRule7FailedSCLearnsFromRoundRSwap(t *testing.T) {
	// Round 1: both processes LL R0. Round 2: p0 swaps R0 (phase 4)
	// invalidating p1's link, then p1's SC fails (phase 5). Rule 7:
	// UP(p1,2) = {p1} ∪ UP(R0,2) = {p1} ∪ UP(p0,1) = {p0, p1}.
	alg := pick(
		func(e *machine.Env) shmem.Value { // p0
			e.LL(0)
			e.Swap(0, "x")
			return 0
		},
		func(e *machine.Env) shmem.Value { // p1
			e.LL(0)
			ok, _ := e.SC(0, "y")
			if ok {
				return "unexpected-success"
			}
			return 0
		},
	)
	run := mustRunAll(t, alg, 2)
	if run.Returns[1] != 0 {
		t.Fatalf("p1 returned %v; its SC must fail after p0's swap", run.Returns[1])
	}
	if up := run.UPProcAt(1, 2); !up.Equal(NewPidSet(0, 1)) {
		t.Fatalf("UP(p1,2) = %v, want {p0, p1}", up)
	}
}

func TestUPRule7FailedSCLearnsFromRoundRMove(t *testing.T) {
	// Round 1: p0 swaps R5, p1 LLs R0. Round 2: p0 moves R5 → R0 (phase 3,
	// clearing R0's Pset), p1's SC on R0 fails (phase 5). Rule 7 via
	// register rule 3: UP(p1,2) = {p1} ∪ UP(R5,1) ∪ UP(p0,1) = {p0, p1}.
	alg := pick(
		func(e *machine.Env) shmem.Value { // p0
			e.Swap(5, "v")
			e.Move(5, 0)
			return 0
		},
		func(e *machine.Env) shmem.Value { // p1
			e.LL(0)
			ok, _ := e.SC(0, "y")
			if ok {
				return "unexpected-success"
			}
			return 0
		},
	)
	run := mustRunAll(t, alg, 2)
	if run.Returns[1] != 0 {
		t.Fatalf("p1 returned %v; its SC must fail after the move into R0", run.Returns[1])
	}
	if up := run.UPProcAt(1, 2); !up.Equal(NewPidSet(0, 1)) {
		t.Fatalf("UP(p1,2) = %v, want {p0, p1}", up)
	}
	if up := run.UPRegAt(0, 2); !up.Equal(NewPidSet(0)) {
		t.Fatalf("UP(R0,2) = %v, want {p0} (source was p0's register)", up)
	}
}

func TestUPRuleValidateReadsRegisterKnowledge(t *testing.T) {
	// Round 1: p0 swaps R0 (so UP(R0,1) = {p0}); p1 idles on a private
	// register. Round 2: p1 validates R0 — rule 1 applies to validate just
	// as to LL: UP(p1,2) = {p1} ∪ UP(R0,1) = {p0, p1}.
	alg := pick(
		func(e *machine.Env) shmem.Value { // p0
			e.Swap(0, "x")
			return 0
		},
		func(e *machine.Env) shmem.Value { // p1
			e.Swap(9, "w") // keep round alignment: one op in round 1
			e.Validate(0)
			return 0
		},
	)
	run := mustRunAll(t, alg, 2)
	if up := run.UPProcAt(1, 2); !up.Equal(NewPidSet(0, 1)) {
		t.Fatalf("UP(p1,2) = %v, want {p0, p1}", up)
	}
}

func TestUPTwoHopMoveChainRevealsTwoMovers(t *testing.T) {
	// Round 1: p0 swaps R10; p1 and p2 swap private registers.
	// Round 2: p0 moves R10 → R11 while p1 idles (validate); p2 idles.
	// Round 3: p1 moves R11 → R12 — its source's movers chain is (p0), so
	// after round 3, movers(R12) = (p0, p1) and
	// UP(R12,3) = UP(R10,1... source) ∪ UP(p0,2) ∪ UP(p1,2) ⊇ {p0, p1}.
	alg := pick(
		func(e *machine.Env) shmem.Value { // p0
			e.Swap(10, "v")
			e.Move(10, 11)
			return 0
		},
		func(e *machine.Env) shmem.Value { // p1
			e.Swap(21, "a")
			e.Validate(21)
			e.Move(11, 12)
			return 0
		},
		func(e *machine.Env) shmem.Value { // p2
			e.Swap(22, "b")
			return 0
		},
	)
	run := mustRunAll(t, alg, 3)
	up := run.UPRegAt(12, 3)
	want := NewPidSet(0, 1)
	if !want.SubsetOf(up) {
		t.Fatalf("UP(R12,3) = %v, want ⊇ {p0, p1}", up)
	}
	if up.Contains(2) {
		t.Fatalf("UP(R12,3) = %v must not contain the uninvolved p2", up)
	}
	// The value moved two hops: R12 now holds R10's original value.
	last := run.Rounds[len(run.Rounds)-1]
	if got := last.MemSnap[12].Val; got != "v" {
		t.Fatalf("R12 = %v, want v", got)
	}
}

func TestFinalUPProcMatchesLastRound(t *testing.T) {
	run := mustRunAll(t, setRegisterWakeup, 5)
	for pid := 0; pid < 5; pid++ {
		if !run.FinalUPProc(pid).Equal(run.UPProcAt(pid, len(run.Rounds))) {
			t.Fatalf("FinalUPProc(p%d) disagrees with last round", pid)
		}
	}
}

func TestNoHistoryRunsRejectSubRunsButKeepChecks(t *testing.T) {
	run, err := RunAll(setRegisterWakeup, 6, machine.ZeroTosses, Config{NoHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSub(run, NewPidSet(0)); err == nil {
		t.Fatal("RunSub must reject NoHistory runs")
	}
	if err := CheckLemma51(run); err != nil {
		t.Fatalf("incremental Lemma 5.1 must still work: %v", err)
	}
	if err := CheckWakeupRun(run); err != nil {
		t.Fatalf("spec check must still work: %v", err)
	}
	if err := VerifyTheorem61(run); err != nil {
		t.Fatalf("theorem check must still work: %v", err)
	}
	// Per-round payloads must have been dropped.
	for _, round := range run.Rounds {
		if round.Steps != nil || round.UPProc != nil {
			t.Fatal("NoHistory round kept heavy payloads")
		}
	}
}
