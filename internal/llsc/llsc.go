// Package llsc provides a concurrent, linearizable implementation of the
// paper's shared memory (LL, SC, validate, swap, move on an unbounded
// register file) that real goroutines can share.
//
// Package shmem is the single-threaded simulator that the lower-bound
// machinery drives step by step; this package is its concurrent twin. Each
// process obtains a Handle bound to its process id; Handle implements
// machine.Port, so the universal constructions of package universal run
// unchanged on either backend — the "mimic the construction with
// goroutines" side of the reproduction.
//
// Every operation takes a single short critical section guarded by one
// mutex, which makes each operation atomic (trivially linearizable, with
// the critical section as the linearization point). Per-process step
// counters are maintained so concurrent experiments can report
// shared-access costs the same way the simulator does.
package llsc

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync"

	"jayanti98/internal/machine"
	"jayanti98/internal/shmem"
)

type register struct {
	val  shmem.Value
	pset shmem.PidBits
}

// Memory is a concurrent shared memory for n processes. All methods are
// safe for concurrent use.
type Memory struct {
	n  int
	mu sync.Mutex
	// regs is the lazily allocated unbounded register file.
	regs map[int]*register
	// touched holds the allocated register indices in increasing order,
	// maintained on first touch so fingerprinting never sorts.
	touched []int
	// steps counts shared accesses per pid.
	steps map[int]int64
	// initVal optionally initializes registers on first touch.
	initVal func(reg int) shmem.Value
	// fpScratch is the reused value-rendering buffer of AppendFingerprint,
	// guarded by mu like everything else.
	fpScratch []byte
}

// Option configures a Memory.
type Option func(*Memory)

// WithInit sets the initial value of every register as a pure function of
// its index (default: nil).
func WithInit(f func(reg int) shmem.Value) Option {
	return func(m *Memory) { m.initVal = f }
}

// New creates a concurrent shared memory for n processes.
func New(n int, opts ...Option) *Memory {
	m := &Memory{
		n:     n,
		regs:  make(map[int]*register),
		steps: make(map[int]int64),
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

// N returns the number of processes the memory was created for.
func (m *Memory) N() int { return m.n }

func (m *Memory) reg(i int) *register {
	r, ok := m.regs[i]
	if !ok {
		r = &register{}
		if m.initVal != nil {
			r.val = m.initVal(i)
		}
		m.regs[i] = r
		at := sort.SearchInts(m.touched, i)
		m.touched = append(m.touched, 0)
		copy(m.touched[at+1:], m.touched[at:])
		m.touched[at] = i
	}
	return r
}

// Handle returns the port of process pid. Handles are lightweight; any
// number may be created. A handle must only be used by one goroutine at a
// time (per the model, a process is sequential), but distinct handles may
// be used concurrently.
func (m *Memory) Handle(pid int) *Handle {
	if pid < 0 || pid >= m.n {
		panic(fmt.Sprintf("llsc: pid %d out of range [0,%d)", pid, m.n))
	}
	return &Handle{mem: m, pid: pid}
}

// Steps returns pid's shared-access step count.
func (m *Memory) Steps(pid int) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.steps[pid]
}

// TotalSteps returns the total shared-access step count.
func (m *Memory) TotalSteps() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total int64
	for _, s := range m.steps {
		total += s
	}
	return total
}

// Apply performs op on behalf of pid and returns the response, with the
// exact semantics of shmem.Memory.Apply (including the self-move no-op).
// It makes *Memory implement sched.Memory, so the step-driven executors —
// sched.Execute and the schedule-exploration engine of package explore —
// can drive machines against the concurrent backend.
func (m *Memory) Apply(pid int, op shmem.Op) shmem.Response {
	h := Handle{mem: m, pid: pid}
	switch op.Kind {
	case shmem.OpLL:
		return shmem.Response{OK: true, Val: h.LL(op.Reg)}
	case shmem.OpSC:
		ok, prev := h.SC(op.Reg, op.Arg)
		return shmem.Response{OK: ok, Val: prev}
	case shmem.OpValidate:
		ok, v := h.Validate(op.Reg)
		return shmem.Response{OK: ok, Val: v}
	case shmem.OpSwap:
		return shmem.Response{OK: true, Val: h.Swap(op.Reg, op.Arg)}
	case shmem.OpMove:
		h.Move(op.Src, op.Reg)
		return shmem.Response{OK: true}
	default:
		panic(fmt.Sprintf("llsc: unknown op kind %v", op.Kind))
	}
}

// Fingerprint renders the full memory state — every touched register's
// value and Pset, in register order — as a deterministic string. Two
// memories with equal fingerprints are in identical states (up to
// registers that were touched and restored to their initial state, which
// only ever makes the comparison stricter). The exploration harness folds
// fingerprints into its memoization keys.
func (m *Memory) Fingerprint() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder
	for _, i := range m.touched {
		r := m.regs[i]
		fmt.Fprintf(&b, "R%d=%v pset=%v;", i, r.val, r.pset.Sorted())
	}
	return b.String()
}

// AppendFingerprint appends a compact binary rendering of the same state
// Fingerprint describes: a uvarint register count, then per touched
// register (in increasing order) a uvarint index, the length-prefixed %v
// rendering of the value, and the canonical Pset bitset words
// (shmem.PidBits.AppendBinary). The register count prefix makes the block
// self-delimiting, so callers can concatenate it with other key material
// without separators. The exploration harness builds its memoization keys
// this way (DESIGN §11); it replaced the sort-per-call string Fingerprint
// on that path.
func (m *Memory) AppendFingerprint(dst []byte) []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	dst = binary.AppendUvarint(dst, uint64(len(m.touched)))
	for _, i := range m.touched {
		r := m.regs[i]
		dst = binary.AppendUvarint(dst, uint64(i))
		m.fpScratch = fmt.Appendf(m.fpScratch[:0], "%v", r.val)
		dst = binary.AppendUvarint(dst, uint64(len(m.fpScratch)))
		dst = append(dst, m.fpScratch...)
		dst = r.pset.AppendBinary(dst)
	}
	return dst
}

// ReadQuiesced returns the value of register i without charging a step.
// It is intended for inspection after the concurrent workload has
// quiesced; it still takes the lock, so it is safe at any time. Reading
// an untouched register returns its initial value without allocating it,
// so the fingerprint is unchanged (until PR 6 this routed through the
// lazily-allocating register lookup and perturbed it).
func (m *Memory) ReadQuiesced(i int) shmem.Value {
	m.mu.Lock()
	defer m.mu.Unlock()
	if r, ok := m.regs[i]; ok {
		return r.val
	}
	if m.initVal != nil {
		return m.initVal(i)
	}
	return nil
}

// Handle is one process's port to the memory. It implements machine.Port.
type Handle struct {
	mem *Memory
	pid int
}

var _ machine.Port = (*Handle)(nil)

// ID implements machine.Port.
func (h *Handle) ID() int { return h.pid }

// N implements machine.Port.
func (h *Handle) N() int { return h.mem.n }

// LL implements machine.Port.
func (h *Handle) LL(reg int) shmem.Value {
	m := h.mem
	m.mu.Lock()
	defer m.mu.Unlock()
	m.steps[h.pid]++
	r := m.reg(reg)
	r.pset.Add(h.pid)
	return r.val
}

// SC implements machine.Port.
func (h *Handle) SC(reg int, v shmem.Value) (bool, shmem.Value) {
	m := h.mem
	m.mu.Lock()
	defer m.mu.Unlock()
	m.steps[h.pid]++
	r := m.reg(reg)
	prev := r.val
	if r.pset.Contains(h.pid) {
		r.val = v
		r.pset.Clear()
		return true, prev
	}
	return false, prev
}

// Validate implements machine.Port.
func (h *Handle) Validate(reg int) (bool, shmem.Value) {
	m := h.mem
	m.mu.Lock()
	defer m.mu.Unlock()
	m.steps[h.pid]++
	r := m.reg(reg)
	return r.pset.Contains(h.pid), r.val
}

// Read implements machine.Port (a validate with the boolean dropped).
func (h *Handle) Read(reg int) shmem.Value {
	_, v := h.Validate(reg)
	return v
}

// Swap implements machine.Port.
func (h *Handle) Swap(reg int, v shmem.Value) shmem.Value {
	m := h.mem
	m.mu.Lock()
	defer m.mu.Unlock()
	m.steps[h.pid]++
	r := m.reg(reg)
	prev := r.val
	r.val = v
	r.pset.Clear()
	return prev
}

// Move implements machine.Port. A self-move is a complete no-op (see
// shmem.Memory.Apply).
func (h *Handle) Move(src, dst int) {
	m := h.mem
	m.mu.Lock()
	defer m.mu.Unlock()
	m.steps[h.pid]++
	if src == dst {
		return
	}
	s := m.reg(src)
	d := m.reg(dst)
	d.val = s.val
	d.pset.Clear()
}
