package llsc

import (
	"sync"
	"testing"

	"jayanti98/internal/objtype"
	"jayanti98/internal/shmem"
	"jayanti98/internal/universal"
)

func TestBasicSemanticsMatchSimulator(t *testing.T) {
	m := New(2)
	h0, h1 := m.Handle(0), m.Handle(1)

	if v := h0.LL(0); v != nil {
		t.Fatalf("LL fresh = %v", v)
	}
	if ok, prev := h0.SC(0, "a"); !ok || prev != nil {
		t.Fatalf("SC after LL = (%t, %v)", ok, prev)
	}
	if ok, prev := h1.SC(0, "b"); ok || prev != "a" {
		t.Fatalf("SC without LL = (%t, %v)", ok, prev)
	}
	h1.LL(0)
	h0.Swap(0, "c")
	if ok, _ := h1.SC(0, "d"); ok {
		t.Fatal("swap must invalidate links")
	}
	if ok, v := h1.Validate(0); ok || v != "c" {
		t.Fatalf("validate = (%t, %v)", ok, v)
	}
	h0.Swap(5, "src")
	h1.Move(5, 6)
	if v := h0.Read(6); v != "src" {
		t.Fatalf("move: R6 = %v", v)
	}
	if v := h0.Read(5); v != "src" {
		t.Fatalf("move must leave source: R5 = %v", v)
	}
}

func TestWithInit(t *testing.T) {
	m := New(1, WithInit(func(reg int) shmem.Value { return reg }))
	if v := m.Handle(0).Read(42); v != 42 {
		t.Fatalf("init value = %v", v)
	}
}

func TestStepsCounted(t *testing.T) {
	m := New(2)
	h := m.Handle(1)
	h.LL(0)
	h.SC(0, 1)
	h.Read(0)
	if got := m.Steps(1); got != 3 {
		t.Fatalf("Steps(1) = %d, want 3", got)
	}
	if got := m.TotalSteps(); got != 3 {
		t.Fatalf("TotalSteps = %d, want 3", got)
	}
	if m.ReadQuiesced(0) != 1 {
		t.Fatal("ReadQuiesced wrong")
	}
	if got := m.TotalSteps(); got != 3 {
		t.Fatal("ReadQuiesced must not charge steps")
	}
}

func TestHandleOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range pid must panic")
		}
	}()
	New(2).Handle(2)
}

func TestConcurrentSCAtMostOneWinnerPerLink(t *testing.T) {
	// All goroutines LL the same register, then all attempt SC: exactly
	// one must win (they all hold links from before any write).
	const n = 16
	m := New(n)
	var ready, done sync.WaitGroup
	start := make(chan struct{})
	wins := make(chan int, n)
	ready.Add(n)
	done.Add(n)
	for pid := 0; pid < n; pid++ {
		go func(pid int) {
			defer done.Done()
			h := m.Handle(pid)
			h.LL(0)
			ready.Done()
			<-start
			if ok, _ := h.SC(0, pid); ok {
				wins <- pid
			}
		}(pid)
	}
	ready.Wait()
	close(start)
	done.Wait()
	close(wins)
	count := 0
	for range wins {
		count++
	}
	if count != 1 {
		t.Fatalf("%d successful SCs, want exactly 1", count)
	}
}

// TestConcurrentFetchIncrementAllConstructions is the concurrency
// flagship: G real goroutines share a fetch&increment object through each
// universal construction; the responses must be a permutation of 0..G−1
// (linearizability) under -race.
func TestConcurrentFetchIncrementAllConstructions(t *testing.T) {
	const n = 12
	typ := objtype.NewFetchIncrement(16)
	for _, mk := range []func() universal.Construction{
		func() universal.Construction { return universal.NewGroupUpdate(typ, n, 0) },
		func() universal.Construction { return universal.NewHerlihy(typ, n, 0) },
		func() universal.Construction { return universal.NewCentral(typ, n, 0) },
	} {
		obj := mk()
		m := New(n)
		results := make([]objtype.Value, n)
		var wg sync.WaitGroup
		wg.Add(n)
		for pid := 0; pid < n; pid++ {
			go func(pid int) {
				defer wg.Done()
				results[pid] = obj.Invoke(m.Handle(pid), objtype.Op{Name: objtype.OpFetchIncrement})
			}(pid)
		}
		wg.Wait()
		seen := make(map[objtype.Value]bool, n)
		for pid, v := range results {
			if seen[v] {
				t.Fatalf("%s: duplicate response %v (p%d)", obj.Name(), v, pid)
			}
			seen[v] = true
		}
		for i := 0; i < n; i++ {
			if !seen[objtype.HexUint(uint64(i))] {
				t.Fatalf("%s: missing response %d", obj.Name(), i)
			}
		}
	}
}

func TestConcurrentQueueNoLossNoDuplication(t *testing.T) {
	const n = 10
	obj := universal.NewGroupUpdate(objtype.NewEmptyQueue(), n, 0)
	m := New(n)
	popped := make([]objtype.Value, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for pid := 0; pid < n; pid++ {
		go func(pid int) {
			defer wg.Done()
			h := m.Handle(pid)
			obj.Invoke(h, objtype.Op{Name: objtype.OpEnqueue, Arg: pid})
			popped[pid] = obj.Invoke(h, objtype.Op{Name: objtype.OpDequeue})
		}(pid)
	}
	wg.Wait()
	seen := make(map[objtype.Value]bool)
	for pid, v := range popped {
		if v == objtype.Empty {
			continue
		}
		if seen[v] {
			t.Fatalf("item %v dequeued twice (p%d)", v, pid)
		}
		seen[v] = true
	}
}

func TestConcurrentStepBoundHolds(t *testing.T) {
	// Wait-freedom is per-operation: even under real concurrency no
	// invocation may exceed the documented bound.
	const n = 8
	typ := objtype.NewFetchIncrement(16)
	obj := universal.NewGroupUpdate(typ, n, 0)
	m := New(n)
	var wg sync.WaitGroup
	wg.Add(n)
	excess := make(chan int64, n)
	for pid := 0; pid < n; pid++ {
		go func(pid int) {
			defer wg.Done()
			before := m.Steps(pid)
			obj.Invoke(m.Handle(pid), objtype.Op{Name: objtype.OpFetchIncrement})
			if used := m.Steps(pid) - before; used > int64(obj.StepBound()) {
				excess <- used
			}
		}(pid)
	}
	wg.Wait()
	close(excess)
	for e := range excess {
		t.Fatalf("an invocation used %d steps, above the bound %d", e, obj.StepBound())
	}
}

// TestReadQuiescedDoesNotPerturb is the llsc half of the PR 6 headline
// regression test: a quiesced read of an untouched register must return
// its initial value without allocating it, leaving the fingerprint — and
// therefore the explorer's memo keys — unchanged.
func TestReadQuiescedDoesNotPerturb(t *testing.T) {
	m := New(2, WithInit(func(reg int) shmem.Value { return reg + 100 }))
	if got := m.ReadQuiesced(9); got != 109 {
		t.Fatalf("ReadQuiesced(9) = %v, want 109 (the initial value)", got)
	}
	if fp := m.Fingerprint(); fp != "" {
		t.Fatalf("ReadQuiesced perturbed the fingerprint: %q", fp)
	}
	bare := New(2)
	if got := bare.ReadQuiesced(9); got != nil {
		t.Fatalf("ReadQuiesced(9) with no init = %v, want nil", got)
	}
	if key := string(bare.AppendFingerprint(nil)); key != string(New(2).AppendFingerprint(nil)) {
		t.Fatal("ReadQuiesced perturbed the binary fingerprint")
	}
	// A real operation still shows up afterwards.
	m.Handle(0).LL(9)
	if fp := m.Fingerprint(); fp == "" {
		t.Fatal("LL must perturb the fingerprint")
	}
}

// TestAppendFingerprintDiscriminates pins the binary fingerprint's
// properties: deterministic, value-sensitive, Pset-sensitive,
// register-index-sensitive, and self-delimiting under concatenation.
func TestAppendFingerprintDiscriminates(t *testing.T) {
	build := func(f func(m *Memory)) string {
		m := New(2)
		f(m)
		return string(m.AppendFingerprint(nil))
	}
	base := build(func(m *Memory) { m.Handle(0).LL(0) })
	if base != build(func(m *Memory) { m.Handle(0).LL(0) }) {
		t.Fatal("fingerprint not deterministic")
	}
	if base == build(func(m *Memory) { m.Handle(1).LL(0) }) {
		t.Fatal("fingerprint insensitive to Pset membership")
	}
	if base == build(func(m *Memory) { m.Handle(0).LL(1) }) {
		t.Fatal("fingerprint insensitive to register index")
	}
	if base == build(func(m *Memory) { m.Handle(0).Swap(0, "x") }) {
		t.Fatal("fingerprint insensitive to value")
	}
	// A successful SC clears the Pset: state differs from post-LL.
	afterSC := build(func(m *Memory) {
		h := m.Handle(0)
		h.LL(0)
		h.SC(0, nil)
	})
	if base == afterSC {
		t.Fatal("fingerprint insensitive to SC clearing the Pset")
	}
	// Appending reuses dst and preserves the prefix.
	m := New(2)
	m.Handle(0).LL(0)
	out := m.AppendFingerprint([]byte("pre"))
	if string(out[:3]) != "pre" {
		t.Fatalf("AppendFingerprint clobbered dst: %q", out)
	}
}

// TestFingerprintAgreesWithString checks the two fingerprint forms induce
// the same equivalence on a family of small states: binary keys are equal
// exactly when the string fingerprints are.
func TestFingerprintAgreesWithString(t *testing.T) {
	states := []func(m *Memory){
		func(m *Memory) {},
		func(m *Memory) { m.Handle(0).LL(0) },
		func(m *Memory) { m.Handle(1).LL(0) },
		func(m *Memory) { m.Handle(0).LL(1) },
		func(m *Memory) { m.Handle(0).Swap(0, 7) },
		func(m *Memory) { m.Handle(0).Swap(0, "7") },
		func(m *Memory) { h := m.Handle(0); h.LL(0); h.SC(0, 7) },
		func(m *Memory) { h := m.Handle(0); h.LL(2); m.Handle(1).LL(2) },
		func(m *Memory) { m.Handle(0).Move(0, 1) },
	}
	type pair struct{ str, bin string }
	pairs := make([]pair, len(states))
	for i, f := range states {
		m := New(2)
		f(m)
		pairs[i] = pair{m.Fingerprint(), string(m.AppendFingerprint(nil))}
	}
	for i := range pairs {
		for j := range pairs {
			if (pairs[i].str == pairs[j].str) != (pairs[i].bin == pairs[j].bin) {
				t.Errorf("fingerprint forms disagree on states %d vs %d: str %q/%q bin %x/%x",
					i, j, pairs[i].str, pairs[j].str, pairs[i].bin, pairs[j].bin)
			}
		}
	}
}
