package llsc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"jayanti98/internal/shmem"
)

// TestDifferentialAgainstSimulator cross-checks the two memory backends:
// identical single-threaded operation sequences must produce identical
// responses on shmem.Memory and on a Memory from this package. The two
// implementations were written independently, so agreement on random op
// streams (including multi-process link interactions and self-moves) is a
// strong check of both.
func TestDifferentialAgainstSimulator(t *testing.T) {
	const npids, nregs = 4, 5
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sim := shmem.New()
		con := New(npids)
		handles := make([]*Handle, npids)
		for pid := range handles {
			handles[pid] = con.Handle(pid)
		}
		for step := 0; step < 400; step++ {
			pid := rng.Intn(npids)
			reg := rng.Intn(nregs)
			arg := rng.Intn(100)
			switch rng.Intn(5) {
			case 0:
				a := sim.Apply(pid, shmem.Op{Kind: shmem.OpLL, Reg: reg})
				b := handles[pid].LL(reg)
				if !shmem.ValuesEqual(a.Val, b) {
					return false
				}
			case 1:
				a := sim.Apply(pid, shmem.Op{Kind: shmem.OpSC, Reg: reg, Arg: arg})
				ok, prev := handles[pid].SC(reg, arg)
				if a.OK != ok || !shmem.ValuesEqual(a.Val, prev) {
					return false
				}
			case 2:
				a := sim.Apply(pid, shmem.Op{Kind: shmem.OpValidate, Reg: reg})
				ok, cur := handles[pid].Validate(reg)
				if a.OK != ok || !shmem.ValuesEqual(a.Val, cur) {
					return false
				}
			case 3:
				a := sim.Apply(pid, shmem.Op{Kind: shmem.OpSwap, Reg: reg, Arg: arg})
				prev := handles[pid].Swap(reg, arg)
				if !shmem.ValuesEqual(a.Val, prev) {
					return false
				}
			case 4:
				src := rng.Intn(nregs)
				sim.Apply(pid, shmem.Op{Kind: shmem.OpMove, Src: src, Reg: reg})
				handles[pid].Move(src, reg)
			}
		}
		// Final sweep: all registers and all links must agree.
		for reg := 0; reg < nregs; reg++ {
			if !shmem.ValuesEqual(sim.Read(reg), con.ReadQuiesced(reg)) {
				return false
			}
			for pid := 0; pid < npids; pid++ {
				simOK := sim.Apply(pid, shmem.Op{Kind: shmem.OpValidate, Reg: reg}).OK
				conOK, _ := handles[pid].Validate(reg)
				if simOK != conOK {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
