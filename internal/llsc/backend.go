package llsc

import (
	"fmt"
	"os"
	"sync/atomic"

	"jayanti98/internal/shmem"
)

// Backend is the concurrent shared-memory surface the step-driven harnesses
// (sched.Execute, package explore) and the experiment suite need. The
// native *Memory of this package implements it; so does the Blelloch–Wei
// LL/SC-from-CAS construction (package algos/bwllsc), which package
// explore can be pointed at with Config.LLSC and the cmd/ tools with
// -llsc=native|bw — the same selection pattern as machine engines
// (LB_ENGINE / -engine). The two backends are held byte-identical —
// responses, step counts and AppendFingerprint renderings — by the
// differential harness in algos/bwllsc.
type Backend interface {
	// N returns the number of processes the memory was created for.
	N() int
	// Apply performs op on behalf of pid (sched.Memory).
	Apply(pid int, op shmem.Op) shmem.Response
	// Steps returns pid's shared-access step count.
	Steps(pid int) int64
	// TotalSteps returns the total shared-access step count.
	TotalSteps() int64
	// Fingerprint renders the full memory state deterministically.
	Fingerprint() string
	// AppendFingerprint appends the compact binary rendering of the same
	// state (see Memory.AppendFingerprint for the exact format, which both
	// backends must produce byte-for-byte).
	AppendFingerprint(dst []byte) []byte
	// ReadQuiesced returns register i's value without charging a step or
	// perturbing the fingerprint.
	ReadQuiesced(reg int) shmem.Value
}

var _ Backend = (*Memory)(nil)

// BackendKind names an LL/SC backend implementation.
type BackendKind int32

const (
	// BackendNative is the mutex-guarded register file of this package.
	BackendNative BackendKind = iota
	// BackendBW is the Blelloch–Wei LL/SC-from-CAS construction
	// (package algos/bwllsc).
	BackendBW
)

// String names the backend (the same spellings ParseBackend accepts).
func (k BackendKind) String() string {
	switch k {
	case BackendNative:
		return "native"
	case BackendBW:
		return "bw"
	default:
		return fmt.Sprintf("BackendKind(%d)", int32(k))
	}
}

// ParseBackend parses a backend name as used by the -llsc flag of the
// cmd/ tools and the LB_LLSC environment variable. The empty string is the
// process-wide default.
func ParseBackend(s string) (BackendKind, error) {
	switch s {
	case "":
		return DefaultBackend(), nil
	case "native":
		return BackendNative, nil
	case "bw", "blelloch-wei":
		return BackendBW, nil
	default:
		return BackendNative, fmt.Errorf("llsc: unknown backend %q (want native or bw)", s)
	}
}

// defaultBackend is the process-wide backend, stored atomically so tests
// can flip it around sections without racing other goroutines' reads.
var defaultBackend atomic.Int32

func init() {
	if s := os.Getenv("LB_LLSC"); s != "" {
		k, err := ParseBackend(s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "llsc: ignoring LB_LLSC: %v\n", err)
			return
		}
		defaultBackend.Store(int32(k))
	}
}

// DefaultBackend returns the process-wide default backend. It starts as
// BackendNative, overridable by the LB_LLSC environment variable
// (native, bw).
func DefaultBackend() BackendKind { return BackendKind(defaultBackend.Load()) }

// SetDefaultBackend sets the process-wide default backend and returns the
// previous value, for defer-restore in tests:
//
//	prev := llsc.SetDefaultBackend(llsc.BackendBW)
//	defer llsc.SetDefaultBackend(prev)
func SetDefaultBackend(k BackendKind) (prev BackendKind) {
	return BackendKind(defaultBackend.Swap(int32(k)))
}
