// Package stats provides the small statistical toolkit the experiment
// harness uses: summary statistics, least-squares fits, and a growth-shape
// classifier that distinguishes logarithmic from linear step-complexity
// curves (the shapes Theorem 6.1 and the Group-Update/Herlihy comparison
// predict).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the usual summary statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	// Median and P95 are nearest-rank percentiles (see Percentile): the
	// value at rank ⌈p/100·N⌉ of the sorted sample, always an observed
	// sample point, never an interpolation.
	Median float64
	P95    float64
}

// Summarize computes summary statistics; it returns a zero Summary for an
// empty sample. The input is never mutated.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = nearestRank(sorted, 50)
	s.P95 = nearestRank(sorted, 95)
	return s
}

// Percentile returns the nearest-rank p-th percentile of xs: the element
// at rank ⌈p/100·N⌉ (1-based) of a sorted copy. xs is not mutated. It
// panics on an empty sample or p outside (0, 100] — harness bugs, not
// runtime conditions.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 || p <= 0 || p > 100 {
		panic(fmt.Sprintf("stats: bad percentile input (N=%d, p=%v)", len(xs), p))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return nearestRank(sorted, p)
}

// nearestRank indexes an already-sorted sample at rank ⌈p/100·N⌉.
func nearestRank(sorted []float64, p float64) float64 {
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// Fit is a least-squares line y ≈ Intercept + Slope·f(x) with its
// coefficient of determination.
type Fit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// String renders the fit.
func (f Fit) String() string {
	return fmt.Sprintf("y = %.3f + %.3f·x (R² = %.4f)", f.Intercept, f.Slope, f.R2)
}

// LeastSquares fits y ≈ a + b·x. It panics if the slices differ in length
// or have fewer than two points — a harness bug, not a runtime condition.
func LeastSquares(xs, ys []float64) Fit {
	if len(xs) != len(ys) || len(xs) < 2 {
		panic(fmt.Sprintf("stats: bad fit input (%d xs, %d ys)", len(xs), len(ys)))
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return Fit{Intercept: sy / n, R2: 0}
	}
	b := (n*sxy - sx*sy) / den
	a := (sy - b*sx) / n
	// R².
	meanY := sy / n
	var ssRes, ssTot float64
	for i := range xs {
		pred := a + b*xs[i]
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return Fit{Slope: b, Intercept: a, R2: r2}
}

// Log2 returns log₂ x.
func Log2(x float64) float64 { return math.Log2(x) }

// Growth labels the shape of a complexity curve.
type Growth string

// The growth shapes the harness distinguishes.
const (
	GrowthConstant    Growth = "constant"
	GrowthLogarithmic Growth = "logarithmic"
	GrowthLinear      Growth = "linear"
)

// ClassifyGrowth decides whether ys grows constantly, logarithmically, or
// linearly in ns by comparing least-squares fits of y against log₂ n and
// against n. ns must be increasing with at least three points spanning a
// factor ≥ 4.
func ClassifyGrowth(ns []int, ys []float64) (Growth, Fit, Fit) {
	if len(ns) < 3 {
		panic("stats: ClassifyGrowth needs at least 3 points")
	}
	logxs := make([]float64, len(ns))
	xs := make([]float64, len(ns))
	for i, n := range ns {
		logxs[i] = math.Log2(float64(n))
		xs[i] = float64(n)
	}
	logFit := LeastSquares(logxs, ys)
	linFit := LeastSquares(xs, ys)

	// Constant: the whole range moves by less than one step or by < 10%.
	s := Summarize(ys)
	if s.Max-s.Min < 1 || (s.Min > 0 && s.Max/s.Min < 1.1) {
		return GrowthConstant, logFit, linFit
	}
	// Otherwise pick the better-explaining model. A logarithmic curve fit
	// against n has visibly concave residuals (lower R²), and vice versa.
	if logFit.R2 >= linFit.R2 {
		return GrowthLogarithmic, logFit, linFit
	}
	return GrowthLinear, logFit, linFit
}
