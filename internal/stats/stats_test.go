package stats

import (
	"math"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("Summarize = %+v", s)
	}
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.StdDev-want) > 1e-12 {
		t.Fatalf("StdDev = %v, want %v", s.StdDev, want)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatal("empty sample must yield zero Summary")
	}
	one := Summarize([]float64{7})
	if one.StdDev != 0 || one.Mean != 7 {
		t.Fatalf("single sample: %+v", one)
	}
}

func TestLeastSquaresPerfectLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 3 + 2x
	f := LeastSquares(xs, ys)
	if math.Abs(f.Slope-2) > 1e-9 || math.Abs(f.Intercept-3) > 1e-9 {
		t.Fatalf("fit = %v", f)
	}
	if math.Abs(f.R2-1) > 1e-9 {
		t.Fatalf("R² = %v, want 1", f.R2)
	}
	if f.String() == "" {
		t.Fatal("String must render")
	}
}

func TestLeastSquaresDegenerateX(t *testing.T) {
	f := LeastSquares([]float64{2, 2, 2}, []float64{1, 2, 3})
	if f.Slope != 0 || f.Intercept != 2 {
		t.Fatalf("degenerate fit = %v", f)
	}
}

func TestLeastSquaresPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("must panic on mismatched input")
		}
	}()
	LeastSquares([]float64{1}, []float64{1, 2})
}

func TestClassifyGrowthLogarithmic(t *testing.T) {
	ns := []int{2, 4, 8, 16, 32, 64, 128}
	ys := make([]float64, len(ns))
	for i, n := range ns {
		ys[i] = 3 + 8*math.Log2(float64(n)) // like group-update
	}
	g, logFit, _ := ClassifyGrowth(ns, ys)
	if g != GrowthLogarithmic {
		t.Fatalf("growth = %v, want logarithmic", g)
	}
	if math.Abs(logFit.Slope-8) > 1e-6 {
		t.Fatalf("log slope = %v", logFit.Slope)
	}
}

func TestClassifyGrowthLinear(t *testing.T) {
	ns := []int{2, 4, 8, 16, 32, 64, 128}
	ys := make([]float64, len(ns))
	for i, n := range ns {
		ys[i] = 7 + 2*float64(n) // like herlihy
	}
	g, _, linFit := ClassifyGrowth(ns, ys)
	if g != GrowthLinear {
		t.Fatalf("growth = %v, want linear", g)
	}
	if math.Abs(linFit.Slope-2) > 1e-6 {
		t.Fatalf("lin slope = %v", linFit.Slope)
	}
}

func TestClassifyGrowthConstant(t *testing.T) {
	ns := []int{2, 4, 8, 16}
	ys := []float64{5, 5, 5, 5}
	g, _, _ := ClassifyGrowth(ns, ys)
	if g != GrowthConstant {
		t.Fatalf("growth = %v, want constant", g)
	}
}

func TestClassifyGrowthNoisyLog(t *testing.T) {
	// Small integer noise (step counts are integers) must not flip the
	// verdict.
	ns := []int{4, 8, 16, 32, 64, 128, 256}
	ys := []float64{19, 27, 34, 44, 51, 60, 67}
	g, _, _ := ClassifyGrowth(ns, ys)
	if g != GrowthLogarithmic {
		t.Fatalf("growth = %v, want logarithmic", g)
	}
}

func TestClassifyGrowthPanicsOnFewPoints(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("must panic on < 3 points")
		}
	}()
	ClassifyGrowth([]int{1, 2}, []float64{1, 2})
}

func TestLog2(t *testing.T) {
	if Log2(8) != 3 {
		t.Fatal("Log2(8) != 3")
	}
}

// TestSummarizePercentiles pins the nearest-rank Median/P95 definition:
// rank ⌈p/100·N⌉ of the sorted sample, always an observed value.
func TestSummarizePercentiles(t *testing.T) {
	cases := []struct {
		name        string
		xs          []float64
		median, p95 float64
	}{
		{"N=1", []float64{42}, 42, 42},
		{"N=2 even", []float64{10, 20}, 10, 20},
		{"N=3 odd", []float64{30, 10, 20}, 20, 30},
		{"N=4 even", []float64{4, 1, 3, 2}, 2, 4},
		{"N=5 odd", []float64{5, 1, 4, 2, 3}, 3, 5},
		{"N=20", func() []float64 {
			xs := make([]float64, 20)
			for i := range xs {
				xs[i] = float64(20 - i) // 20..1, unsorted
			}
			return xs
		}(), 10, 19},
		{"N=100", func() []float64 {
			xs := make([]float64, 100)
			for i := range xs {
				xs[i] = float64(i + 1)
			}
			return xs
		}(), 50, 95},
		{"ties", []float64{7, 7, 7, 7}, 7, 7},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			in := append([]float64(nil), c.xs...)
			s := Summarize(in)
			if s.Median != c.median || s.P95 != c.p95 {
				t.Fatalf("Summarize(%v): median=%v p95=%v, want %v/%v", c.xs, s.Median, s.P95, c.median, c.p95)
			}
			if got := Percentile(in, 50); got != c.median {
				t.Fatalf("Percentile(%v, 50) = %v, want %v", c.xs, got, c.median)
			}
			if got := Percentile(in, 95); got != c.p95 {
				t.Fatalf("Percentile(%v, 95) = %v, want %v", c.xs, got, c.p95)
			}
			for i := range in {
				if in[i] != c.xs[i] {
					t.Fatalf("input mutated at %d: %v != %v", i, in, c.xs)
				}
			}
		})
	}
}

func TestPercentileBadInputPanics(t *testing.T) {
	for _, c := range []struct {
		name string
		fn   func()
	}{
		{"empty", func() { Percentile(nil, 50) }},
		{"p=0", func() { Percentile([]float64{1}, 0) }},
		{"p>100", func() { Percentile([]float64{1}, 101) }},
	} {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			c.fn()
		})
	}
}
