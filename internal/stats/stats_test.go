package stats

import (
	"math"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("Summarize = %+v", s)
	}
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.StdDev-want) > 1e-12 {
		t.Fatalf("StdDev = %v, want %v", s.StdDev, want)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatal("empty sample must yield zero Summary")
	}
	one := Summarize([]float64{7})
	if one.StdDev != 0 || one.Mean != 7 {
		t.Fatalf("single sample: %+v", one)
	}
}

func TestLeastSquaresPerfectLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 3 + 2x
	f := LeastSquares(xs, ys)
	if math.Abs(f.Slope-2) > 1e-9 || math.Abs(f.Intercept-3) > 1e-9 {
		t.Fatalf("fit = %v", f)
	}
	if math.Abs(f.R2-1) > 1e-9 {
		t.Fatalf("R² = %v, want 1", f.R2)
	}
	if f.String() == "" {
		t.Fatal("String must render")
	}
}

func TestLeastSquaresDegenerateX(t *testing.T) {
	f := LeastSquares([]float64{2, 2, 2}, []float64{1, 2, 3})
	if f.Slope != 0 || f.Intercept != 2 {
		t.Fatalf("degenerate fit = %v", f)
	}
}

func TestLeastSquaresPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("must panic on mismatched input")
		}
	}()
	LeastSquares([]float64{1}, []float64{1, 2})
}

func TestClassifyGrowthLogarithmic(t *testing.T) {
	ns := []int{2, 4, 8, 16, 32, 64, 128}
	ys := make([]float64, len(ns))
	for i, n := range ns {
		ys[i] = 3 + 8*math.Log2(float64(n)) // like group-update
	}
	g, logFit, _ := ClassifyGrowth(ns, ys)
	if g != GrowthLogarithmic {
		t.Fatalf("growth = %v, want logarithmic", g)
	}
	if math.Abs(logFit.Slope-8) > 1e-6 {
		t.Fatalf("log slope = %v", logFit.Slope)
	}
}

func TestClassifyGrowthLinear(t *testing.T) {
	ns := []int{2, 4, 8, 16, 32, 64, 128}
	ys := make([]float64, len(ns))
	for i, n := range ns {
		ys[i] = 7 + 2*float64(n) // like herlihy
	}
	g, _, linFit := ClassifyGrowth(ns, ys)
	if g != GrowthLinear {
		t.Fatalf("growth = %v, want linear", g)
	}
	if math.Abs(linFit.Slope-2) > 1e-6 {
		t.Fatalf("lin slope = %v", linFit.Slope)
	}
}

func TestClassifyGrowthConstant(t *testing.T) {
	ns := []int{2, 4, 8, 16}
	ys := []float64{5, 5, 5, 5}
	g, _, _ := ClassifyGrowth(ns, ys)
	if g != GrowthConstant {
		t.Fatalf("growth = %v, want constant", g)
	}
}

func TestClassifyGrowthNoisyLog(t *testing.T) {
	// Small integer noise (step counts are integers) must not flip the
	// verdict.
	ns := []int{4, 8, 16, 32, 64, 128, 256}
	ys := []float64{19, 27, 34, 44, 51, 60, 67}
	g, _, _ := ClassifyGrowth(ns, ys)
	if g != GrowthLogarithmic {
		t.Fatalf("growth = %v, want logarithmic", g)
	}
}

func TestClassifyGrowthPanicsOnFewPoints(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("must panic on < 3 points")
		}
	}()
	ClassifyGrowth([]int{1, 2}, []float64{1, 2})
}

func TestLog2(t *testing.T) {
	if Log2(8) != 3 {
		t.Fatal("Log2(8) != 3")
	}
}
