// Package sched provides schedulers and a generic executor for running
// algorithms (package machine) against a simulated shared memory
// (package shmem).
//
// A Scheduler decides which process takes the next step; the executor
// drains each chosen process's local coin tosses (local steps are free in
// the shared-access cost model of the paper), performs its next
// shared-memory operation, and delivers the response. The package supplies
// round-robin, sequential, and seeded-random schedulers; the paper's
// adversary scheduler (Figure 2) lives in package core because it needs the
// round/phase structure and UP-set bookkeeping.
//
// Schedulers are stateful and owned by one execution: never share a
// Scheduler instance (in particular Random, which wraps an unlocked
// *rand.Rand) between concurrently running Executes — build one per
// execution with a derived seed instead.
package sched

import (
	"errors"
	"fmt"
	"math/rand"

	"jayanti98/internal/machine"
	"jayanti98/internal/shmem"
)

// Scheduler picks which live process performs the next shared-memory step.
type Scheduler interface {
	// Name identifies the scheduler in reports.
	Name() string
	// Next returns an element of live, which is non-empty and sorted by
	// pid. step counts shared-memory steps executed so far.
	Next(step int, live []int) int
}

// RoundRobin cycles through live processes in pid order, one shared-memory
// step each. Against the executor this produces the lockstep "rounds" that
// maximize contention.
type RoundRobin struct {
	idx int
}

// Name implements Scheduler.
func (*RoundRobin) Name() string { return "round-robin" }

// Next implements Scheduler.
func (s *RoundRobin) Next(_ int, live []int) int {
	s.idx++
	return live[(s.idx-1)%len(live)]
}

// Sequential runs each process to completion before starting the next, in
// pid order. It yields solo (contention-free) executions.
type Sequential struct{}

// Name implements Scheduler.
func (Sequential) Name() string { return "sequential" }

// Next implements Scheduler.
func (Sequential) Next(_ int, live []int) int { return live[0] }

// Random picks a uniformly random live process using a seeded source, so
// runs are reproducible.
//
// NOT safe for concurrent use: it wraps an unlocked *rand.Rand, so sharing
// one Random across goroutines — e.g. across the workers of a parallel
// sweep — is a data race and destroys reproducibility even where the race
// is benign. Give every worker its own Random, built with a seed derived
// from the work item's coordinates (see sweep.Seed / sweep.Derive).
type Random struct {
	rng *rand.Rand
}

// NewRandom returns a Random scheduler with the given seed. Two Randoms
// with the same seed produce the same pick sequence; concurrent executions
// must each build their own.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Scheduler.
func (*Random) Name() string { return "random" }

// Next implements Scheduler.
func (s *Random) Next(_ int, live []int) int {
	return live[s.rng.Intn(len(live))]
}

// Memory is the backend an execution applies shared-memory operations to.
// *shmem.Memory (the single-threaded simulator) implements it natively;
// *llsc.Memory (the concurrent memory) implements it too, so the same
// executor — and the schedule-exploration harness of package explore —
// can drive machines against either backend.
type Memory interface {
	// Apply performs op on behalf of pid and returns the response.
	Apply(pid int, op shmem.Op) shmem.Response
}

// Result summarizes an execution.
type Result struct {
	// Returns maps each pid to its return value.
	Returns map[int]shmem.Value
	// Steps maps each pid to its shared-access step count t(p, R).
	Steps map[int]int
	// MaxSteps is max over pids of Steps — t(R).
	MaxSteps int
	// TotalSteps is the total number of shared-memory operations.
	TotalSteps int
}

// ErrBudgetExhausted reports that an execution hit its step budget before
// all processes terminated — for a wait-free algorithm, a bug.
var ErrBudgetExhausted = errors.New("sched: step budget exhausted before all processes terminated")

// Execute runs n processes of alg against mem under s, supplying coin
// tosses from ta, until every process terminates or budget shared-memory
// steps have been executed. A crashing machine aborts the run with its
// panic as the error.
func Execute(alg machine.Algorithm, n int, mem Memory, s Scheduler, ta machine.TossAssignment, budget int) (*Result, error) {
	ms := machine.StartAll(alg, n)
	defer machine.CloseAll(ms)

	res := &Result{
		Returns: make(map[int]shmem.Value, n),
		Steps:   make(map[int]int, n),
	}
	live := make([]int, 0, n)

	// advance drains pid's coin tosses and returns its next non-toss action.
	advance := func(m *machine.Machine) (machine.Action, error) {
		for {
			a := m.Peek()
			switch a.Kind {
			case machine.ActToss:
				m.DeliverToss(ta(m.ID(), m.NumTosses()))
			case machine.ActCrash:
				return a, fmt.Errorf("sched: process %d crashed: %w", m.ID(), m.Crashed())
			default:
				return a, nil
			}
		}
	}

	// Initial triage: some processes may return without any shared step.
	for _, m := range ms {
		a, err := advance(m)
		if err != nil {
			return nil, err
		}
		if a.Kind == machine.ActReturn {
			res.Returns[m.ID()] = a.Ret
			continue
		}
		live = append(live, m.ID())
	}

	for len(live) > 0 {
		if res.TotalSteps >= budget {
			return res, fmt.Errorf("%w (budget %d, %d processes live)", ErrBudgetExhausted, budget, len(live))
		}
		pid := s.Next(res.TotalSteps, live)
		m := ms[pid]
		a := m.Peek()
		if a.Kind != machine.ActOp {
			return nil, fmt.Errorf("sched: scheduler %s picked pid %d whose pending action is %v", s.Name(), pid, a.Kind)
		}
		m.DeliverOpResponse(mem.Apply(pid, a.Op))
		res.TotalSteps++
		res.Steps[pid]++
		if res.Steps[pid] > res.MaxSteps {
			res.MaxSteps = res.Steps[pid]
		}

		a, err := advance(m)
		if err != nil {
			return nil, err
		}
		if a.Kind == machine.ActReturn {
			res.Returns[pid] = a.Ret
			live = remove(live, pid)
		}
	}
	return res, nil
}

func remove(live []int, pid int) []int {
	out := live[:0]
	for _, p := range live {
		if p != pid {
			out = append(out, p)
		}
	}
	return out
}
