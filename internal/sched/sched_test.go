package sched

import (
	"errors"
	"sync"
	"testing"

	"jayanti98/internal/machine"
	"jayanti98/internal/shmem"
)

// incrementAlg: each process LL/SC-retries to add 1 to register 0 until it
// succeeds, then returns the value it installed.
var incrementAlg = machine.New("increment", func(e *machine.Env) shmem.Value {
	for {
		v := e.LL(0)
		cur := 0
		if v != nil {
			cur = v.(int)
		}
		if ok, _ := e.SC(0, cur+1); ok {
			return cur + 1
		}
	}
})

func TestSequentialRunsSolo(t *testing.T) {
	mem := shmem.New()
	res, err := Execute(incrementAlg, 4, mem, Sequential{}, machine.ZeroTosses, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if got := mem.Read(0); got != 4 {
		t.Fatalf("final counter = %v, want 4", got)
	}
	// Solo: every process succeeds on first LL/SC, i.e. exactly 2 steps.
	for pid, s := range res.Steps {
		if s != 2 {
			t.Errorf("pid %d steps = %d, want 2", pid, s)
		}
	}
	if res.MaxSteps != 2 || res.TotalSteps != 8 {
		t.Fatalf("MaxSteps=%d TotalSteps=%d, want 2, 8", res.MaxSteps, res.TotalSteps)
	}
}

func TestRoundRobinContention(t *testing.T) {
	mem := shmem.New()
	res, err := Execute(incrementAlg, 4, mem, &RoundRobin{}, machine.ZeroTosses, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if got := mem.Read(0); got != 4 {
		t.Fatalf("final counter = %v, want 4", got)
	}
	// Under lockstep the returns must be a permutation of 1..4.
	seen := make(map[int]bool)
	for _, v := range res.Returns {
		seen[v.(int)] = true
	}
	for want := 1; want <= 4; want++ {
		if !seen[want] {
			t.Fatalf("missing return value %d in %v", want, res.Returns)
		}
	}
	// Contention forces retries: someone needs more than 2 steps.
	if res.MaxSteps <= 2 {
		t.Fatalf("MaxSteps = %d; expected contention-induced retries", res.MaxSteps)
	}
}

func TestRandomSchedulerIsReproducible(t *testing.T) {
	run := func() *Result {
		mem := shmem.New()
		res, err := Execute(incrementAlg, 5, mem, NewRandom(42), machine.ZeroTosses, 10000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2 := run(), run()
	if r1.TotalSteps != r2.TotalSteps {
		t.Fatalf("same seed, different executions: %d vs %d total steps", r1.TotalSteps, r2.TotalSteps)
	}
	for pid := range r1.Returns {
		if r1.Returns[pid] != r2.Returns[pid] {
			t.Fatalf("pid %d returns differ: %v vs %v", pid, r1.Returns[pid], r2.Returns[pid])
		}
	}
}

func TestBudgetExhaustion(t *testing.T) {
	spinner := machine.New("spinner", func(e *machine.Env) shmem.Value {
		for {
			e.Read(0)
		}
	})
	_, err := Execute(spinner, 2, shmem.New(), &RoundRobin{}, machine.ZeroTosses, 50)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
}

func TestCrashPropagates(t *testing.T) {
	crasher := machine.New("crasher", func(e *machine.Env) shmem.Value {
		e.Read(0)
		panic("bug")
	})
	_, err := Execute(crasher, 1, shmem.New(), Sequential{}, machine.ZeroTosses, 100)
	if err == nil {
		t.Fatal("crash must surface as an error")
	}
}

func TestImmediateReturnWithoutSharedSteps(t *testing.T) {
	noop := machine.New("noop", func(e *machine.Env) shmem.Value { return e.ID() })
	res, err := Execute(noop, 3, shmem.New(), &RoundRobin{}, machine.ZeroTosses, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSteps != 0 {
		t.Fatalf("TotalSteps = %d, want 0", res.TotalSteps)
	}
	for pid := 0; pid < 3; pid++ {
		if res.Returns[pid] != pid {
			t.Fatalf("Returns[%d] = %v", pid, res.Returns[pid])
		}
	}
}

func TestTossesDrainedBetweenOps(t *testing.T) {
	alg := machine.New("tossy", func(e *machine.Env) shmem.Value {
		a := e.Toss()
		e.Swap(0, a)
		b := e.Toss()
		c := e.Toss()
		return a + b + c
	})
	ta := func(pid, j int) int64 { return int64(j + 1) } // 1, 2, 3, ...
	res, err := Execute(alg, 1, shmem.New(), Sequential{}, ta, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Returns[0] != int64(6) {
		t.Fatalf("return = %v, want 6", res.Returns[0])
	}
}

func TestSchedulerNames(t *testing.T) {
	if (&RoundRobin{}).Name() != "round-robin" ||
		(Sequential{}).Name() != "sequential" ||
		NewRandom(1).Name() != "random" {
		t.Fatal("scheduler names changed")
	}
}

// TestRandomSchedulerSeedDeterminism: equal seeds give equal pick
// sequences, distinct seeds diverge — the property the parallel sweeps'
// derived-seed scheme relies on.
func TestRandomSchedulerSeedDeterminism(t *testing.T) {
	live := []int{0, 1, 2, 3, 4, 5, 6, 7}
	a, b, c := NewRandom(7), NewRandom(7), NewRandom(8)
	same, diff := true, false
	for i := 0; i < 100; i++ {
		x, y, z := a.Next(i, live), b.Next(i, live), c.Next(i, live)
		if x != y {
			same = false
		}
		if x != z {
			diff = true
		}
	}
	if !same {
		t.Fatal("same seed must give the same schedule")
	}
	if !diff {
		t.Fatal("different seeds should give different schedules")
	}
}

// TestRandomSchedulerPerWorkerInstances is the regression test for the
// shared-RNG race: each worker owning its own derived-seed Random (never
// one shared instance) must be race-free and reproduce the serial
// schedule exactly. Run under -race this fails loudly if an execution path
// ever shares the unlocked *rand.Rand.
func TestRandomSchedulerPerWorkerInstances(t *testing.T) {
	const workers = 4
	serial := make([][]int, workers)
	live := []int{0, 1, 2, 3, 4, 5}
	for w := 0; w < workers; w++ {
		s := NewRandom(int64(100 + w))
		for i := 0; i < 200; i++ {
			serial[w] = append(serial[w], s.Next(i, live))
		}
	}
	got := make([][]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := NewRandom(int64(100 + w)) // per-worker instance, derived seed
			for i := 0; i < 200; i++ {
				got[w] = append(got[w], s.Next(i, live))
			}
		}(w)
	}
	wg.Wait()
	for w := range serial {
		for i := range serial[w] {
			if serial[w][i] != got[w][i] {
				t.Fatalf("worker %d pick %d: %d != serial %d", w, i, got[w][i], serial[w][i])
			}
		}
	}
}
