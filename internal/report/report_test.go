package report

import (
	"errors"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tbl := NewTable("n", "steps")
	tbl.AddRow(8, 12)
	tbl.AddRow(1024, 3)
	got := tbl.String()
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), got)
	}
	if !strings.Contains(lines[0], "n") || !strings.Contains(lines[0], "steps") {
		t.Fatalf("header wrong: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "|--") {
		t.Fatalf("separator wrong: %q", lines[1])
	}
	if !strings.Contains(lines[3], "1024") {
		t.Fatalf("row wrong: %q", lines[3])
	}
	// All rows must have equal width (aligned).
	if len(lines[2]) != len(lines[3]) {
		t.Fatalf("rows not aligned:\n%s", got)
	}
}

func TestTableShortRow(t *testing.T) {
	tbl := NewTable("a", "b")
	tbl.AddRow(1) // fewer cells than headers
	if !strings.Contains(tbl.String(), "1") {
		t.Fatal("short row dropped")
	}
}

func TestCheckAndBool(t *testing.T) {
	if Check(nil) != "ok" {
		t.Fatal("Check(nil)")
	}
	if got := Check(errors.New("boom")); got != "FAIL: boom" {
		t.Fatalf("Check(err) = %q", got)
	}
	if Bool(true) != "ok" || Bool(false) != "FAIL" {
		t.Fatal("Bool wrong")
	}
}

func TestSection(t *testing.T) {
	var b strings.Builder
	Section(&b, 2, "E%d %s", 1, "wakeup")
	if !strings.Contains(b.String(), "## E1 wakeup") {
		t.Fatalf("Section = %q", b.String())
	}
}
