package report

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"
)

func TestTableRendering(t *testing.T) {
	tbl := NewTable("n", "steps")
	tbl.AddRow(8, 12)
	tbl.AddRow(1024, 3)
	got := tbl.String()
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), got)
	}
	if !strings.Contains(lines[0], "n") || !strings.Contains(lines[0], "steps") {
		t.Fatalf("header wrong: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "|--") {
		t.Fatalf("separator wrong: %q", lines[1])
	}
	if !strings.Contains(lines[3], "1024") {
		t.Fatalf("row wrong: %q", lines[3])
	}
	// All rows must have equal width (aligned).
	if len(lines[2]) != len(lines[3]) {
		t.Fatalf("rows not aligned:\n%s", got)
	}
}

func TestTableShortRow(t *testing.T) {
	tbl := NewTable("a", "b")
	tbl.AddRow(1) // fewer cells than headers
	if !strings.Contains(tbl.String(), "1") {
		t.Fatal("short row dropped")
	}
}

func TestCheckAndBool(t *testing.T) {
	if Check(nil) != "ok" {
		t.Fatal("Check(nil)")
	}
	if got := Check(errors.New("boom")); got != "FAIL: boom" {
		t.Fatalf("Check(err) = %q", got)
	}
	if Bool(true) != "ok" || Bool(false) != "FAIL" {
		t.Fatal("Bool wrong")
	}
}

func TestSection(t *testing.T) {
	var b strings.Builder
	Section(&b, 2, "E%d %s", 1, "wakeup")
	if !strings.Contains(b.String(), "## E1 wakeup") {
		t.Fatalf("Section = %q", b.String())
	}
}

func TestTimingRoundTripsThroughStrip(t *testing.T) {
	var with, without strings.Builder
	for _, w := range []*strings.Builder{&with, &without} {
		Section(w, 2, "E1 — wakeup")
		tbl := NewTable("n", "steps")
		tbl.AddRow(8, 12)
		if _, err := tbl.WriteTo(w); err != nil {
			t.Fatal(err)
		}
	}
	Timing(&with, "E1", 1234567*time.Microsecond)
	if !strings.Contains(with.String(), "_E1 wall-clock: 1.235s_") {
		t.Fatalf("timing line missing or misrendered:\n%s", with.String())
	}
	if got := StripTimings(with.String()); got != without.String() {
		t.Fatalf("StripTimings did not recover the timing-free report:\ngot  %q\nwant %q", got, without.String())
	}
	// Reports without timing lines pass through untouched.
	if got := StripTimings(without.String()); got != without.String() {
		t.Fatalf("StripTimings mangled a timing-free report: %q", got)
	}
}

func TestStripTimingsMiddleOfReport(t *testing.T) {
	var b strings.Builder
	Section(&b, 2, "E1")
	Timing(&b, "E1", 5*time.Millisecond)
	Section(&b, 2, "E2")
	Timing(&b, "E2", 7*time.Millisecond)
	got := StripTimings(b.String())
	if strings.Contains(got, "wall-clock") {
		t.Fatalf("timing lines survived: %q", got)
	}
	if !strings.Contains(got, "## E1") || !strings.Contains(got, "## E2") {
		t.Fatalf("section content lost: %q", got)
	}
}

// TestTableJSONRoundTrip: marshal → unmarshal must preserve the table, and
// the rendered markdown must be identical on both sides.
func TestTableJSONRoundTrip(t *testing.T) {
	tbl := NewTable("n", "steps", "check")
	tbl.AddRow(2, 1, "ok")
	tbl.AddRow(1024, 5, "FAIL: boom")
	data, err := json.Marshal(tbl)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"headers":["n","steps","check"],"rows":[["2","1","ok"],["1024","5","FAIL: boom"]]}`
	if string(data) != want {
		t.Fatalf("json = %s, want %s", data, want)
	}
	var back Table
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.String() != tbl.String() {
		t.Fatalf("round-trip changed the table:\n%s\nvs\n%s", back.String(), tbl.String())
	}
	again, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(data) {
		t.Fatalf("re-marshal differs: %s vs %s", again, data)
	}
}

// TestTableJSONEmpty: an empty table encodes with [] (never null) and
// round-trips to an empty table.
func TestTableJSONEmpty(t *testing.T) {
	data, err := json.Marshal(&Table{})
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"headers":[],"rows":[]}` {
		t.Fatalf("empty table json = %s", data)
	}
	var back Table
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Headers()) != 0 || len(back.Rows()) != 0 {
		t.Fatalf("empty table round-trip: %+v", back)
	}

	headersOnly := NewTable("a", "b")
	data, err = json.Marshal(headersOnly)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"headers":["a","b"],"rows":[]}` {
		t.Fatalf("headers-only json = %s", data)
	}
}

// TestDocCapturesTablesAndMarkdown: a Doc renders byte-identically to a
// plain writer while recording the tables passed through it.
func TestDocCapturesTablesAndMarkdown(t *testing.T) {
	render := func(w io.Writer, table func(*Table) error) {
		Section(w, 2, "E%d — demo", 1)
		fmt.Fprintln(w, "preamble")
		tbl := NewTable("x")
		tbl.AddRow(7)
		if err := table(tbl); err != nil {
			t.Fatal(err)
		}
	}
	var plain strings.Builder
	render(&plain, func(tb *Table) error { _, err := tb.WriteTo(&plain); return err })
	var doc Doc
	render(&doc, doc.Table)
	if doc.Markdown() != plain.String() {
		t.Fatalf("Doc markdown diverges:\n%q\nvs\n%q", doc.Markdown(), plain.String())
	}
	tables := doc.Tables()
	if len(tables) != 1 || tables[0].Rows()[0][0] != "7" {
		t.Fatalf("Doc recorded tables = %+v", tables)
	}
}
