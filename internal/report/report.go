// Package report renders experiment results as aligned markdown tables —
// the format cmd/lbreport writes and EXPERIMENTS.md records.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"strings"
	"time"
)

// Table is a simple markdown table builder.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends a row; cells are rendered with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.rows = append(t.rows, row)
}

// WriteTo renders the table as aligned markdown.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		b.WriteString("|")
		for i, w := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&b, " %-*s |", w, c)
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	b.WriteString("|")
	for _, w := range widths {
		b.WriteString(strings.Repeat("-", w+2))
		b.WriteString("|")
	}
	b.WriteString("\n")
	for _, row := range t.rows {
		writeRow(row)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if _, err := t.WriteTo(&b); err != nil {
		return ""
	}
	return b.String()
}

// tableJSON is the wire form of a Table: headers plus rows of rendered
// cells. Cells are strings — exactly what the markdown renderer prints —
// so the JSON and markdown forms of a report carry identical content.
type tableJSON struct {
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// MarshalJSON encodes the table as {"headers": [...], "rows": [[...]]}.
// Empty headers and rows encode as [] rather than null, so an empty table
// round-trips to an empty table.
func (t *Table) MarshalJSON() ([]byte, error) {
	j := tableJSON{Headers: t.headers, Rows: t.rows}
	if j.Headers == nil {
		j.Headers = []string{}
	}
	if j.Rows == nil {
		j.Rows = [][]string{}
	}
	return json.Marshal(j)
}

// UnmarshalJSON decodes the MarshalJSON form.
func (t *Table) UnmarshalJSON(data []byte) error {
	var j tableJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	t.headers = j.Headers
	t.rows = j.Rows
	return nil
}

// Headers returns a copy of the column headers.
func (t *Table) Headers() []string {
	return append([]string(nil), t.headers...)
}

// Rows returns a copy of the rendered rows.
func (t *Table) Rows() [][]string {
	rows := make([][]string, len(t.rows))
	for i, r := range t.rows {
		rows[i] = append([]string(nil), r...)
	}
	return rows
}

// Doc is an experiment-section sink that renders markdown exactly like a
// plain io.Writer would while also recording every table added through
// Table, so one experiment run can serve both the markdown report
// (cmd/lbreport) and the structured JSON result (internal/jobs) from a
// single execution. Doc implements io.Writer: existing Section/Fprintln
// call sites work unchanged.
type Doc struct {
	b      strings.Builder
	tables []*Table
}

// Write implements io.Writer over the markdown buffer.
func (d *Doc) Write(p []byte) (int, error) { return d.b.Write(p) }

// Table renders t into the markdown buffer and records it.
func (d *Doc) Table(t *Table) error {
	d.tables = append(d.tables, t)
	_, err := t.WriteTo(&d.b)
	return err
}

// Markdown returns everything rendered so far.
func (d *Doc) Markdown() string { return d.b.String() }

// Tables returns the recorded tables in render order.
func (d *Doc) Tables() []*Table { return append([]*Table(nil), d.tables...) }

// Check renders a pass/fail cell from an error.
func Check(err error) string {
	if err == nil {
		return "ok"
	}
	return "FAIL: " + err.Error()
}

// Bool renders a boolean as ok/FAIL.
func Bool(ok bool) string {
	if ok {
		return "ok"
	}
	return "FAIL"
}

// Section writes a markdown heading.
func Section(w io.Writer, level int, format string, args ...any) {
	fmt.Fprintf(w, "\n%s %s\n\n", strings.Repeat("#", level), fmt.Sprintf(format, args...))
}

// Timing writes the per-experiment wall-clock line cmd/lbreport appends
// after each section. The line is the report's only nondeterministic
// content; StripTimings removes it for byte-for-byte comparisons.
func Timing(w io.Writer, label string, d time.Duration) {
	fmt.Fprintf(w, "\n_%s wall-clock: %s_\n", label, d.Round(time.Millisecond))
}

var timingLine = regexp.MustCompile(`(?m)^\n?_[^_\n]* wall-clock: [^_\n]*_\n`)

// StripTimings removes every Timing line from a rendered report, so
// reports produced at different parallelism levels (or on different
// machines) can be compared byte for byte.
func StripTimings(s string) string {
	return timingLine.ReplaceAllString(s, "")
}
