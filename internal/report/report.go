// Package report renders experiment results as aligned markdown tables —
// the format cmd/lbreport writes and EXPERIMENTS.md records.
package report

import (
	"fmt"
	"io"
	"regexp"
	"strings"
	"time"
)

// Table is a simple markdown table builder.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends a row; cells are rendered with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.rows = append(t.rows, row)
}

// WriteTo renders the table as aligned markdown.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		b.WriteString("|")
		for i, w := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&b, " %-*s |", w, c)
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	b.WriteString("|")
	for _, w := range widths {
		b.WriteString(strings.Repeat("-", w+2))
		b.WriteString("|")
	}
	b.WriteString("\n")
	for _, row := range t.rows {
		writeRow(row)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if _, err := t.WriteTo(&b); err != nil {
		return ""
	}
	return b.String()
}

// Check renders a pass/fail cell from an error.
func Check(err error) string {
	if err == nil {
		return "ok"
	}
	return "FAIL: " + err.Error()
}

// Bool renders a boolean as ok/FAIL.
func Bool(ok bool) string {
	if ok {
		return "ok"
	}
	return "FAIL"
}

// Section writes a markdown heading.
func Section(w io.Writer, level int, format string, args ...any) {
	fmt.Fprintf(w, "\n%s %s\n\n", strings.Repeat("#", level), fmt.Sprintf(format, args...))
}

// Timing writes the per-experiment wall-clock line cmd/lbreport appends
// after each section. The line is the report's only nondeterministic
// content; StripTimings removes it for byte-for-byte comparisons.
func Timing(w io.Writer, label string, d time.Duration) {
	fmt.Fprintf(w, "\n_%s wall-clock: %s_\n", label, d.Round(time.Millisecond))
}

var timingLine = regexp.MustCompile(`(?m)^\n?_[^_\n]* wall-clock: [^_\n]*_\n`)

// StripTimings removes every Timing line from a rendered report, so
// reports produced at different parallelism levels (or on different
// machines) can be compared byte for byte.
func StripTimings(s string) string {
	return timingLine.ReplaceAllString(s, "")
}
