package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMiddlewareMetricsSpansLogs(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(16)
	var logBuf bytes.Buffer
	logger := NewLogger(&logBuf, slog.LevelInfo)

	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		// Downstream code joins the request's trace and log stream.
		_, span := StartSpan(r.Context(), "inner")
		span.End()
		if RequestID(r.Context()) == "" {
			t.Error("request id missing from context")
		}
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprint(w, "nope")
	})
	h := Middleware(mux, MiddlewareOptions{
		Registry: reg, Tracer: tr, Logger: logger, Route: RouteFromMux(mux),
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/jobs/abc123")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d", resp.StatusCode)
	}

	// Counter labeled with the mux pattern and the real status code.
	c := reg.Counter("http_requests_total", "", Labels{"route": "GET /v1/jobs/{id}", "code": "404"})
	if c.Value() != 1 {
		var sb strings.Builder
		reg.WritePrometheus(&sb)
		t.Fatalf("request counter = %d; exposition:\n%s", c.Value(), sb.String())
	}
	h2 := reg.Histogram("http_request_duration_seconds", "", nil, Labels{"route": "GET /v1/jobs/{id}"})
	if h2.Count() != 1 {
		t.Fatalf("latency histogram count = %d", h2.Count())
	}
	if reg.Gauge("http_requests_in_flight", "", nil).Value() != 0 {
		t.Fatal("in-flight gauge not decremented")
	}

	// One request span with the inner span as its child.
	trees := tr.Trees()
	if len(trees) != 1 || trees[0].Name != "GET /v1/jobs/{id}" {
		t.Fatalf("trees = %+v", trees)
	}
	if trees[0].Attrs["status"] != "404" || trees[0].Attrs["request_id"] == "" {
		t.Fatalf("span attrs = %v", trees[0].Attrs)
	}
	if len(trees[0].Children) != 1 || trees[0].Children[0].Name != "inner" {
		t.Fatalf("children = %+v", trees[0].Children)
	}

	// One structured log line carrying the same correlation ID.
	var line map[string]any
	if err := json.Unmarshal(logBuf.Bytes(), &line); err != nil {
		t.Fatalf("log line: %v (%q)", err, logBuf.String())
	}
	if line["route"] != "GET /v1/jobs/{id}" || line["status"] != float64(404) {
		t.Fatalf("log line = %v", line)
	}
	if line["request_id"] != trees[0].Attrs["request_id"] {
		t.Fatalf("log request_id %v != span %v", line["request_id"], trees[0].Attrs["request_id"])
	}
}

func TestMiddlewareFlushPassthrough(t *testing.T) {
	flushed := false
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f, ok := w.(http.Flusher)
		if !ok {
			t.Error("middleware hid the flusher")
			return
		}
		fmt.Fprint(w, "chunk")
		f.Flush()
		flushed = true
	})
	h := Middleware(inner, MiddlewareOptions{Registry: NewRegistry(), Tracer: NewTracer(4), Logger: NopLogger()})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/stream", nil))
	if !flushed || !rec.Flushed {
		t.Fatalf("flush did not reach the recorder (handler flushed=%v, recorder=%v)", flushed, rec.Flushed)
	}
}

func TestMiddlewareImplicit200AndUnmatchedRoute(t *testing.T) {
	reg := NewRegistry()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /known", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok") // no explicit WriteHeader: implicit 200
	})
	h := Middleware(mux, MiddlewareOptions{Registry: reg, Tracer: NewTracer(4), Logger: NopLogger(), Route: RouteFromMux(mux)})
	srv := httptest.NewServer(h)
	defer srv.Close()
	for _, path := range []string{"/known", "/nope"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if got := reg.Counter("http_requests_total", "", Labels{"route": "GET /known", "code": "200"}).Value(); got != 1 {
		t.Fatalf("implicit 200 not counted: %d", got)
	}
	if got := reg.Counter("http_requests_total", "", Labels{"route": "unmatched", "code": "404"}).Value(); got != 1 {
		t.Fatalf("unmatched route not labeled: %d", got)
	}
}

func TestMetricsHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("alpha_total", "Things.", nil).Add(2)
	rec := httptest.NewRecorder()
	MetricsHandler(reg).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.HasPrefix(rec.Header().Get("Content-Type"), "text/plain") {
		t.Fatalf("content type = %q", rec.Header().Get("Content-Type"))
	}
	if !strings.Contains(rec.Body.String(), "alpha_total 2") {
		t.Fatalf("body = %q", rec.Body.String())
	}
}

func TestTracesHandler(t *testing.T) {
	tr := NewTracer(8)
	ctx, root := tr.Start(context.Background(), "req")
	_, child := StartSpan(ctx, "child")
	child.End()
	root.End()

	rec := httptest.NewRecorder()
	TracesHandler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	var trees []SpanTree
	if err := json.Unmarshal(rec.Body.Bytes(), &trees); err != nil {
		t.Fatalf("traces JSON: %v (%q)", err, rec.Body.String())
	}
	if len(trees) != 1 || trees[0].Name != "req" || len(trees[0].Children) != 1 {
		t.Fatalf("trees = %+v", trees)
	}

	rec = httptest.NewRecorder()
	TracesHandler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?flat=1", nil))
	var flat []SpanData
	if err := json.Unmarshal(rec.Body.Bytes(), &flat); err != nil {
		t.Fatal(err)
	}
	if len(flat) != 2 {
		t.Fatalf("flat spans = %d, want 2", len(flat))
	}
}
