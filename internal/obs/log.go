package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"sync/atomic"
)

// NewLogger builds the service's structured logger: JSON lines to w at
// the given level. One line per event, machine-parseable, with the
// correlation IDs Logger(ctx) appends — the shape every lbserver log line
// has.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level}))
}

// NopLogger returns a logger that discards everything — the default for
// library components (the scheduler in tests) not handed a real one.
func NopLogger() *slog.Logger {
	return slog.New(slog.NewJSONHandler(io.Discard, nil))
}

type loggerKey struct{}
type requestIDKey struct{}
type jobIDKey struct{}
type campaignIDKey struct{}

// WithLogger returns a context carrying l as the base logger for
// Logger(ctx).
func WithLogger(ctx context.Context, l *slog.Logger) context.Context {
	return context.WithValue(ctx, loggerKey{}, l)
}

// requestSeq numbers requests process-wide; IDs only need to be unique
// within one server's log stream, so a counter beats randomness (and
// keeps tests deterministic).
var requestSeq atomic.Uint64

// NewRequestID mints the next request correlation ID ("r000001", ...).
func NewRequestID() string {
	return fmt.Sprintf("r%06d", requestSeq.Add(1))
}

// WithRequestID returns a context carrying the request correlation ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestID returns the request correlation ID in ctx, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// WithJobID returns a context carrying the job correlation ID (the
// content hash of the job's spec).
func WithJobID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, jobIDKey{}, id)
}

// JobID returns the job correlation ID in ctx, or "".
func JobID(ctx context.Context) string {
	id, _ := ctx.Value(jobIDKey{}).(string)
	return id
}

// WithCampaignID returns a context carrying the campaign correlation ID
// (the content hash of the campaign's spec). Campaign rounds submitted as
// jobs carry both IDs: campaign_id ties a server's round jobs back to the
// long-lived campaign that spawned them.
func WithCampaignID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, campaignIDKey{}, id)
}

// CampaignID returns the campaign correlation ID in ctx, or "".
func CampaignID(ctx context.Context) string {
	id, _ := ctx.Value(campaignIDKey{}).(string)
	return id
}

// ShortID abbreviates a 64-hex content hash for log lines and span
// attributes (12 hex chars is plenty against collision in one process's
// stream); shorter IDs pass through unchanged.
func ShortID(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}

// Logger returns the base logger carried by ctx (or slog.Default) with
// the context's correlation IDs appended as request_id / job_id attrs, so
// every line of one request or job carries the same keys.
func Logger(ctx context.Context) *slog.Logger {
	l, _ := ctx.Value(loggerKey{}).(*slog.Logger)
	if l == nil {
		l = slog.Default()
	}
	if id := RequestID(ctx); id != "" {
		l = l.With("request_id", id)
	}
	if id := JobID(ctx); id != "" {
		l = l.With("job_id", ShortID(id))
	}
	if id := CampaignID(ctx); id != "" {
		l = l.With("campaign_id", ShortID(id))
	}
	return l
}
