// Package obs is the repo's zero-dependency observability substrate:
//
//   - a metrics registry of atomic counters, gauges, and fixed-bucket
//     histograms with a JSON snapshot and Prometheus-style text
//     exposition (metrics.go);
//   - lightweight tracing — context-propagated spans with parent/child
//     links and per-span attributes, exported into an in-memory ring
//     buffer queryable as JSON span trees (trace.go);
//   - structured logging over log/slog with per-request and per-job
//     correlation IDs carried in the context (log.go);
//   - net/http middleware and the /metrics and /debug/traces handlers
//     that expose all of the above (http.go).
//
// Everything is safe for concurrent use and cheap enough for hot paths:
// a counter increment is one atomic add, a histogram observation is two
// atomic adds plus a branch-free bucket search, and a span outside any
// tracer context is a no-op.
//
// The package deliberately speaks the Prometheus text format without
// importing any client library, the same way internal/jobs speaks HTTP
// without a framework: the format is tiny, and the repo's determinism
// contracts make hand-rolled exposition easy to golden-test.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels is an immutable-by-convention label set attached to a metric at
// creation. Identity of a metric is (name, sorted labels): asking the
// registry for the same (name, labels) pair always returns the same
// instance, which is what lets several schedulers in one test process
// share a registry the way expvar shares its process-global names.
type Labels map[string]string

// MetricType enumerates the exposition types.
type MetricType string

// The metric types of the exposition format.
const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// DefBuckets are the default histogram bucket upper bounds, in seconds —
// the conventional latency ladder from 5ms to 10s.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// Counter is a monotonically increasing metric. The zero value is unusable;
// obtain counters from a Registry.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative n is a programming error and is ignored — counters
// never go down).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down. The zero value is unusable;
// obtain gauges from a Registry.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds 1.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution. Buckets are cumulative at
// exposition time (Prometheus `le` semantics) but stored per-interval, so
// Observe touches exactly one bucket counter plus the sum and count.
type Histogram struct {
	// upper[i] is the inclusive upper bound of bucket i; the final
	// +Inf bucket is implicit (counts has one more slot than upper).
	upper   []float64
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(buckets []float64) *Histogram {
	ups := append([]float64(nil), buckets...)
	sort.Float64s(ups)
	// Drop duplicates and any +Inf the caller passed; +Inf is implicit.
	dst := ups[:0]
	for i, b := range ups {
		if math.IsInf(b, +1) || (i > 0 && b == ups[i-1]) {
			continue
		}
		dst = append(dst, b)
	}
	ups = dst
	return &Histogram{upper: ups, counts: make([]atomic.Uint64, len(ups)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v) // first bucket with upper ≥ v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// BucketCount is one cumulative histogram bucket in a snapshot.
type BucketCount struct {
	// Upper is the bucket's inclusive upper bound; +Inf for the last.
	Upper float64 `json:"upper"`
	// Count is the cumulative number of observations ≤ Upper.
	Count uint64 `json:"count"`
}

// cumulative snapshots the buckets with Prometheus cumulative semantics.
func (h *Histogram) cumulative() []BucketCount {
	out := make([]BucketCount, len(h.counts))
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		up := math.Inf(+1)
		if i < len(h.upper) {
			up = h.upper[i]
		}
		out[i] = BucketCount{Upper: up, Count: cum}
	}
	return out
}

// Sample is one metric instance in a registry snapshot, JSON-friendly.
type Sample struct {
	Name   string            `json:"name"`
	Type   MetricType        `json:"type"`
	Labels map[string]string `json:"labels,omitempty"`
	Help   string            `json:"help,omitempty"`
	// Value is the counter or gauge reading (unused for histograms).
	Value float64 `json:"value"`
	// Count, Sum, and Buckets are the histogram reading.
	Count   uint64        `json:"count,omitempty"`
	Sum     float64       `json:"sum,omitempty"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// metric is one registered instance.
type metric struct {
	name   string
	labels Labels
	key    string // name + rendered labels; registry map key

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64 // Func metrics; read at snapshot time
}

// family is the per-name metadata shared by all label variants.
type family struct {
	typ  MetricType
	help string
}

// Registry is a set of named metrics. The zero value is not usable; use
// NewRegistry or the process Default registry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	metrics  map[string]*metric
	order    []*metric // registration order; exposition sorts anyway
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family), metrics: make(map[string]*metric)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry, the one cmd/lbserver exposes
// on /metrics and the instrumented packages (jobs, sweep, lowerbound) use
// unless given their own.
func Default() *Registry { return defaultRegistry }

// renderLabels produces the canonical `{k="v",...}` suffix (sorted keys,
// escaped values), or "" for no labels. Doubles as the identity key suffix.
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// lookup finds or creates the metric for (name, labels), enforcing one
// type and help per name. Type mismatch on a live name is a programming
// error and panics, as the Prometheus client does.
func (r *Registry) lookup(name, help string, typ MetricType, labels Labels, mk func() *metric) *metric {
	key := name + renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ {
			panic(fmt.Sprintf("obs: metric %q redeclared as %s (was %s)", name, typ, f.typ))
		}
		if f.help == "" {
			f.help = help
		}
	} else {
		r.families[name] = &family{typ: typ, help: help}
	}
	if m, ok := r.metrics[key]; ok {
		return m
	}
	m := mk()
	m.name, m.key = name, key
	if len(labels) > 0 {
		m.labels = make(Labels, len(labels))
		for k, v := range labels {
			m.labels[k] = v
		}
	}
	r.metrics[key] = m
	r.order = append(r.order, m)
	return m
}

// Counter returns the counter for (name, labels), creating it on first use.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	m := r.lookup(name, help, TypeCounter, labels, func() *metric { return &metric{counter: &Counter{}} })
	if m.counter == nil {
		panic(fmt.Sprintf("obs: metric %q is not a settable counter", name))
	}
	return m.counter
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	m := r.lookup(name, help, TypeGauge, labels, func() *metric { return &metric{gauge: &Gauge{}} })
	if m.gauge == nil {
		panic(fmt.Sprintf("obs: metric %q is not a settable gauge", name))
	}
	return m.gauge
}

// Histogram returns the histogram for (name, labels), creating it with the
// given bucket upper bounds (nil: DefBuckets) on first use. The +Inf
// bucket is implicit. Buckets are fixed at creation; a later call with
// different buckets returns the existing instance unchanged.
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	m := r.lookup(name, help, TypeHistogram, labels, func() *metric { return &metric{hist: newHistogram(buckets)} })
	return m.hist
}

// CounterFunc registers (or replaces) a counter whose value is read from
// fn at snapshot time — for mirroring counters owned elsewhere, like the
// result cache's hit/miss totals. fn must be safe for concurrent use.
// Replacement semantics mirror cmd/lbserver's expvar indirection: the most
// recently registered fn wins, so tests that build several schedulers over
// one registry read the live one.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() float64) {
	m := r.lookup(name, help, TypeCounter, labels, func() *metric { return &metric{} })
	r.mu.Lock()
	m.fn = fn
	r.mu.Unlock()
}

// GaugeFunc is CounterFunc for gauge-typed readings (queue depth, jobs
// running) owned by the instrumented component.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	m := r.lookup(name, help, TypeGauge, labels, func() *metric { return &metric{} })
	r.mu.Lock()
	m.fn = fn
	r.mu.Unlock()
}

// snapshotLocked copies the metric list so sampling can run unlocked.
func (r *Registry) metricList() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*metric(nil), r.order...)
}

func (r *Registry) familyOf(name string) family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		return *f
	}
	return family{}
}

func (m *metric) sample(f family) Sample {
	s := Sample{Name: m.name, Type: f.typ, Help: f.help, Labels: m.labels}
	switch {
	case m.hist != nil:
		s.Count = m.hist.Count()
		s.Sum = m.hist.Sum()
		s.Buckets = m.hist.cumulative()
	case m.fn != nil:
		s.Value = m.fn()
	case m.counter != nil:
		s.Value = float64(m.counter.Value())
	case m.gauge != nil:
		s.Value = float64(m.gauge.Value())
	}
	return s
}

// sortMetrics orders by name first (keeping each family contiguous — a
// name can be a prefix of another, so the raw key is not enough), then by
// the rendered label string.
func sortMetrics(ms []*metric) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].name != ms[j].name {
			return ms[i].name < ms[j].name
		}
		return ms[i].key < ms[j].key
	})
}

// Snapshot returns every metric's current reading, sorted by name then
// label string — the JSON counterpart of WritePrometheus.
func (r *Registry) Snapshot() []Sample {
	ms := r.metricList()
	sortMetrics(ms)
	out := make([]Sample, 0, len(ms))
	for _, m := range ms {
		out = append(out, m.sample(r.familyOf(m.name)))
	}
	return out
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, one # HELP and # TYPE
// line each, histograms expanded into cumulative _bucket/_sum/_count
// series. The output is deterministic for a fixed set of readings, which
// the exposition golden test relies on.
func (r *Registry) WritePrometheus(w io.Writer) error {
	ms := r.metricList()
	sortMetrics(ms)
	var lastName string
	for _, m := range ms {
		f := r.familyOf(m.name)
		if m.name != lastName {
			if f.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, f.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, f.typ); err != nil {
				return err
			}
			lastName = m.name
		}
		if err := writeSample(w, m, f); err != nil {
			return err
		}
	}
	return nil
}

func writeSample(w io.Writer, m *metric, f family) error {
	labelStr := renderLabels(m.labels)
	if m.hist != nil {
		for _, b := range m.hist.cumulative() {
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				m.name, renderLabels(withLE(m.labels, b.Upper)), b.Count); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", m.name, labelStr, formatFloat(m.hist.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", m.name, labelStr, m.hist.Count())
		return err
	}
	_, err := fmt.Fprintf(w, "%s%s %s\n", m.name, labelStr, formatFloat(m.sample(f).Value))
	return err
}

// withLE extends labels with the histogram bucket bound.
func withLE(labels Labels, upper float64) Labels {
	out := make(Labels, len(labels)+1)
	for k, v := range labels {
		out[k] = v
	}
	out["le"] = formatFloat(upper)
	return out
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
