package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestLoggerCorrelationIDs(t *testing.T) {
	var buf bytes.Buffer
	base := NewLogger(&buf, slog.LevelInfo)
	ctx := WithLogger(context.Background(), base)
	ctx = WithRequestID(ctx, "r000042")
	ctx = WithJobID(ctx, strings.Repeat("ab", 32))

	Logger(ctx).Info("hello", "k", "v")

	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("log line is not JSON: %v (%q)", err, buf.String())
	}
	if line["msg"] != "hello" || line["k"] != "v" {
		t.Fatalf("line = %v", line)
	}
	if line["request_id"] != "r000042" {
		t.Fatalf("request_id = %v", line["request_id"])
	}
	if line["job_id"] != strings.Repeat("ab", 6) {
		t.Fatalf("job_id = %v, want the 12-char abbreviation", line["job_id"])
	}
	if line["level"] != "INFO" {
		t.Fatalf("level = %v", line["level"])
	}
}

func TestLoggerLevelFilter(t *testing.T) {
	var buf bytes.Buffer
	ctx := WithLogger(context.Background(), NewLogger(&buf, slog.LevelWarn))
	Logger(ctx).Info("dropped")
	if buf.Len() != 0 {
		t.Fatalf("info line emitted below level: %q", buf.String())
	}
	Logger(ctx).Warn("kept")
	if !strings.Contains(buf.String(), "kept") {
		t.Fatalf("warn line missing: %q", buf.String())
	}
}

func TestNewRequestIDUnique(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if a == b || !strings.HasPrefix(a, "r") {
		t.Fatalf("ids %q, %q", a, b)
	}
}

func TestShortID(t *testing.T) {
	if got := ShortID("abc"); got != "abc" {
		t.Fatalf("short input changed: %q", got)
	}
	long := strings.Repeat("0123456789abcdef", 4)
	if got := ShortID(long); got != long[:12] {
		t.Fatalf("ShortID = %q", got)
	}
}

func TestNopLoggerDiscards(t *testing.T) {
	// Must not panic and must not write anywhere observable.
	NopLogger().Error("into the void", "err", "x")
}
