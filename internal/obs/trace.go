package obs

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SpanData is the immutable record of a finished span, the unit the ring
// buffer stores and /debug/traces serves.
type SpanData struct {
	// TraceID groups every span of one root operation (an HTTP request,
	// a job run); it equals the root span's SpanID.
	TraceID uint64 `json:"traceId"`
	SpanID  uint64 `json:"spanId"`
	// ParentID is 0 for a root span.
	ParentID uint64    `json:"parentId,omitempty"`
	Name     string    `json:"name"`
	Start    time.Time `json:"start"`
	End      time.Time `json:"end"`
	// DurationMS is End−Start in milliseconds, precomputed for readers.
	DurationMS float64           `json:"durationMs"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// SpanTree is a span with its children nested, the shape /debug/traces
// returns: one tree per root span, children ordered by start time (span
// ID breaks ties, and IDs are allocation-ordered, so the order is stable).
type SpanTree struct {
	SpanData
	Children []*SpanTree `json:"children,omitempty"`
}

// Span is a live span. Spans are created by Tracer.Start or StartSpan and
// finished with End, which exports the record to the tracer's ring
// buffer. A nil *Span (from StartSpan with no tracer in the context) is a
// valid no-op: all methods tolerate it, so instrumented code never
// branches on whether tracing is on.
type Span struct {
	tracer *Tracer

	mu    sync.Mutex
	data  SpanData
	ended bool
}

// SetAttr attaches a key=value attribute to the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	if s.data.Attrs == nil {
		s.data.Attrs = make(map[string]string)
	}
	s.data.Attrs[key] = value
}

// End finishes the span and exports it. Idempotent; only the first End
// exports.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.data.End = s.tracer.now()
	s.data.DurationMS = float64(s.data.End.Sub(s.data.Start)) / float64(time.Millisecond)
	data := s.data
	if len(s.data.Attrs) > 0 {
		data.Attrs = make(map[string]string, len(s.data.Attrs))
		for k, v := range s.data.Attrs {
			data.Attrs[k] = v
		}
	}
	s.mu.Unlock()
	s.tracer.export(data)
}

// Tracer creates spans and keeps the most recent finished ones in a
// fixed-capacity ring buffer. Span and trace IDs are allocation-ordered
// per tracer, which keeps tests deterministic and sorts children by
// creation when start times collide.
type Tracer struct {
	nextID atomic.Uint64
	now    func() time.Time // test seam

	mu   sync.Mutex
	buf  []SpanData // ring storage, len == cap once full
	cap  int
	pos  int // next write index
	full bool
}

// DefaultTraceCapacity is the ring size NewTracer uses for capacity ≤ 0.
const DefaultTraceCapacity = 256

// NewTracer returns a tracer retaining the last `capacity` finished spans
// (≤ 0: DefaultTraceCapacity).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{cap: capacity, now: time.Now}
}

var defaultTracer = NewTracer(0)

// DefaultTracer returns the process-wide tracer, the one cmd/lbserver
// exposes on /debug/traces.
func DefaultTracer() *Tracer { return defaultTracer }

type tracerKey struct{}
type spanKey struct{}

// WithTracer returns a context from which StartSpan creates real spans on t.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFrom returns the tracer carried by ctx, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// SpanFrom returns the span carried by ctx, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// Start begins a span on t, parented to the span in ctx if any, and
// returns a context carrying both the tracer and the new span (so nested
// StartSpan calls build the tree without touching the tracer again).
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	id := t.nextID.Add(1)
	data := SpanData{SpanID: id, TraceID: id, Name: name, Start: t.now()}
	if parent := SpanFrom(ctx); parent != nil && parent.tracer == t {
		parent.mu.Lock()
		data.ParentID = parent.data.SpanID
		data.TraceID = parent.data.TraceID
		parent.mu.Unlock()
	}
	s := &Span{tracer: t, data: data}
	ctx = context.WithValue(WithTracer(ctx, t), spanKey{}, s)
	return ctx, s
}

// StartSpan begins a child span on the tracer carried by ctx. With no
// tracer in the context it returns ctx unchanged and a nil (no-op) span —
// instrumented library code pays nothing when tracing is not wired up,
// e.g. the experiments registry running under plain cmd/lbreport.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	t := TracerFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	return t.Start(ctx, name)
}

// export appends a finished span to the ring, overwriting the oldest once
// full.
func (t *Tracer) export(data SpanData) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.buf) < t.cap {
		t.buf = append(t.buf, data)
		return
	}
	t.buf[t.pos] = data
	t.pos = (t.pos + 1) % t.cap
	t.full = true
}

// Spans returns the retained finished spans, oldest first.
func (t *Tracer) Spans() []SpanData {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanData, 0, len(t.buf))
	if t.full {
		out = append(out, t.buf[t.pos:]...)
		out = append(out, t.buf[:t.pos]...)
	} else {
		out = append(out, t.buf...)
	}
	return out
}

// Trees assembles the retained spans into forests: one SpanTree per span
// whose parent is absent from the buffer (roots, or orphans whose parent
// was overwritten or is still running), ordered oldest root first, with
// children sorted by (start, span ID).
func (t *Tracer) Trees() []*SpanTree {
	spans := t.Spans()
	nodes := make(map[uint64]*SpanTree, len(spans))
	for _, s := range spans {
		nodes[s.SpanID] = &SpanTree{SpanData: s}
	}
	var roots []*SpanTree
	for _, s := range spans { // buffer order keeps roots oldest-first
		n := nodes[s.SpanID]
		if parent, ok := nodes[s.ParentID]; ok && s.ParentID != 0 {
			parent.Children = append(parent.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	var sortChildren func(n *SpanTree)
	sortChildren = func(n *SpanTree) {
		sort.Slice(n.Children, func(i, j int) bool {
			a, b := n.Children[i], n.Children[j]
			if !a.Start.Equal(b.Start) {
				return a.Start.Before(b.Start)
			}
			return a.SpanID < b.SpanID
		})
		for _, c := range n.Children {
			sortChildren(c)
		}
	}
	for _, r := range roots {
		sortChildren(r)
	}
	return roots
}
