package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter", nil)
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters never go down
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "a gauge", nil)
	g.Set(10)
	g.Dec()
	g.Add(-4)
	g.Inc()
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge = %d, want 6", got)
	}
}

func TestRegistryIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", Labels{"k": "v", "a": "b"})
	b := r.Counter("x_total", "", Labels{"a": "b", "k": "v"}) // same set, any order
	if a != b {
		t.Fatal("same (name, labels) did not return the same counter")
	}
	other := r.Counter("x_total", "", Labels{"a": "b", "k": "w"})
	if a == other {
		t.Fatal("distinct labels returned the same counter")
	}
	h1 := r.Histogram("h", "", []float64{1, 2}, nil)
	h2 := r.Histogram("h", "", []float64{5}, nil) // buckets fixed at creation
	if h1 != h2 {
		t.Fatal("same histogram name did not return the same instance")
	}
	if len(h1.upper) != 2 {
		t.Fatalf("buckets = %v, want the first registration's", h1.upper)
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("redeclaring a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m", "", nil)
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []float64{math.Inf(1), 1, 0.1, 1, 0.01}, nil)
	// Duplicates and +Inf are dropped; bounds sorted.
	for _, v := range []float64{0.005, 0.05, 0.5, 5, 0.1} { // 0.1 lands on its bound (inclusive)
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.005+0.05+0.5+5+0.1; math.Abs(got-want) > 1e-12 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	buckets := h.cumulative()
	wantUpper := []float64{0.01, 0.1, 1, math.Inf(1)}
	wantCount := []uint64{1, 3, 4, 5}
	if len(buckets) != len(wantUpper) {
		t.Fatalf("buckets = %+v", buckets)
	}
	for i, b := range buckets {
		if b.Upper != wantUpper[i] || b.Count != wantCount[i] {
			t.Fatalf("bucket %d = %+v, want upper %v count %d", i, b, wantUpper[i], wantCount[i])
		}
	}
}

func TestFuncMetrics(t *testing.T) {
	r := NewRegistry()
	v := 3.0
	r.GaugeFunc("depth", "", nil, func() float64 { return v })
	r.CounterFunc("served_total", "", nil, func() float64 { return 7 })
	snap := r.Snapshot()
	byName := map[string]Sample{}
	for _, s := range snap {
		byName[s.Name] = s
	}
	if byName["depth"].Value != 3 || byName["depth"].Type != TypeGauge {
		t.Fatalf("depth = %+v", byName["depth"])
	}
	if byName["served_total"].Value != 7 || byName["served_total"].Type != TypeCounter {
		t.Fatalf("served_total = %+v", byName["served_total"])
	}
	// Re-registration replaces the reader (the expvar-style indirection).
	r.GaugeFunc("depth", "", nil, func() float64 { return 42 })
	for _, s := range r.Snapshot() {
		if s.Name == "depth" && s.Value != 42 {
			t.Fatalf("replaced func not used: %+v", s)
		}
	}
}

// TestConcurrentUpdates hammers one counter, gauge, and histogram from
// many goroutines — the -race suite's coverage of every atomic path,
// including snapshotting concurrent with writes.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hammer_total", "", nil)
	g := r.Gauge("hammer_gauge", "", nil)
	h := r.Histogram("hammer_hist", "", []float64{0.25, 0.5, 0.75}, nil)
	const goroutines, perG = 16, 2000
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i%4) / 4.0)
				if i%256 == 0 {
					// Concurrent readers: exposition and snapshot.
					_ = r.Snapshot()
					var sb strings.Builder
					_ = r.WritePrometheus(&sb)
				}
				// Concurrent get-or-create of a shared labeled metric.
				r.Counter("hammer_labeled_total", "", Labels{"w": "shared"}).Inc()
			}
		}(w)
	}
	wg.Wait()
	const total = goroutines * perG
	if c.Value() != total {
		t.Fatalf("counter = %d, want %d", c.Value(), total)
	}
	if g.Value() != 0 {
		t.Fatalf("gauge = %d, want 0", g.Value())
	}
	if h.Count() != total {
		t.Fatalf("histogram count = %d, want %d", h.Count(), total)
	}
	if got := r.Counter("hammer_labeled_total", "", Labels{"w": "shared"}).Value(); got != total {
		t.Fatalf("labeled counter = %d, want %d", got, total)
	}
	buckets := h.cumulative()
	if last := buckets[len(buckets)-1].Count; last != total {
		t.Fatalf("+Inf bucket = %d, want %d", last, total)
	}
	wantSum := float64(total) * (0 + 0.25 + 0.5 + 0.75) / 4
	if math.Abs(h.Sum()-wantSum) > 1e-6 {
		t.Fatalf("sum = %v, want %v", h.Sum(), wantSum)
	}
}

// TestWritePrometheusGolden pins the exact exposition bytes for a small
// registry: family ordering, HELP/TYPE lines, label rendering and
// escaping, histogram bucket/sum/count expansion, and float formatting.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_completed_total", "Jobs that finished successfully.", nil).Add(3)
	r.Gauge("jobs_queue_depth", "Queued jobs.", nil).Set(2)
	h := r.Histogram("job_duration_seconds", "Job wall-clock.", []float64{0.1, 1}, Labels{"kind": "report"})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2.5)
	r.Counter("http_requests_total", "Requests.", Labels{"route": `GET /v1/jobs/{id}`, "code": "200"}).Inc()
	r.Counter("esc_total", "", Labels{"v": "a\"b\\c\nd"}).Inc()

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`# TYPE esc_total counter`,
		`esc_total{v="a\"b\\c\nd"} 1`,
		`# HELP http_requests_total Requests.`,
		`# TYPE http_requests_total counter`,
		`http_requests_total{code="200",route="GET /v1/jobs/{id}"} 1`,
		`# HELP job_duration_seconds Job wall-clock.`,
		`# TYPE job_duration_seconds histogram`,
		`job_duration_seconds_bucket{kind="report",le="0.1"} 1`,
		`job_duration_seconds_bucket{kind="report",le="1"} 2`,
		`job_duration_seconds_bucket{kind="report",le="+Inf"} 3`,
		`job_duration_seconds_sum{kind="report"} 3.05`,
		`job_duration_seconds_count{kind="report"} 3`,
		`# HELP jobs_completed_total Jobs that finished successfully.`,
		`# TYPE jobs_completed_total counter`,
		`jobs_completed_total 3`,
		`# HELP jobs_queue_depth Queued jobs.`,
		`# TYPE jobs_queue_depth gauge`,
		`jobs_queue_depth 2`,
	}, "\n") + "\n"
	if sb.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", sb.String(), want)
	}
}

func TestSnapshotSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "", nil)
	r.Counter("a_total", "", Labels{"x": "2"})
	r.Counter("a_total", "", Labels{"x": "1"})
	snap := r.Snapshot()
	var keys []string
	for _, s := range snap {
		keys = append(keys, s.Name+renderLabels(s.Labels))
	}
	want := []string{`a_total{x="1"}`, `a_total{x="2"}`, "b_total"}
	if strings.Join(keys, ",") != strings.Join(want, ",") {
		t.Fatalf("snapshot order = %v, want %v", keys, want)
	}
}
