package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSpanParentChildOrdering(t *testing.T) {
	tr := NewTracer(16)
	ctx, root := tr.Start(context.Background(), "job")
	root.SetAttr("kind", "report")

	// Children created in order; the second starts after the first ends.
	c1ctx, c1 := StartSpan(ctx, "E1")
	if SpanFrom(c1ctx) != c1 {
		t.Fatal("child span not carried in its context")
	}
	_, g1 := StartSpan(c1ctx, "sweep")
	g1.End()
	c1.End()
	_, c2 := StartSpan(ctx, "E2")
	c2.End()
	root.End()

	trees := tr.Trees()
	if len(trees) != 1 {
		t.Fatalf("trees = %d, want 1", len(trees))
	}
	r := trees[0]
	if r.Name != "job" || r.ParentID != 0 || r.Attrs["kind"] != "report" {
		t.Fatalf("root = %+v", r.SpanData)
	}
	if len(r.Children) != 2 || r.Children[0].Name != "E1" || r.Children[1].Name != "E2" {
		t.Fatalf("children = %+v", r.Children)
	}
	for _, c := range r.Children {
		if c.ParentID != r.SpanID || c.TraceID != r.TraceID {
			t.Fatalf("child %s: parent %d trace %d, want %d/%d", c.Name, c.ParentID, c.TraceID, r.SpanID, r.TraceID)
		}
	}
	e1 := r.Children[0]
	if len(e1.Children) != 1 || e1.Children[0].Name != "sweep" {
		t.Fatalf("grandchildren = %+v", e1.Children)
	}
	if e1.Children[0].TraceID != r.TraceID {
		t.Fatal("grandchild escaped the trace")
	}
	// Children start at or after their parent and end at or before query.
	if e1.Start.Before(r.Start) || e1.End.After(time.Now()) {
		t.Fatalf("child timing outside parent: %+v vs %+v", e1.SpanData, r.SpanData)
	}
}

func TestStartSpanWithoutTracerIsNoop(t *testing.T) {
	ctx, span := StartSpan(context.Background(), "orphan")
	if span != nil {
		t.Fatal("expected nil span without a tracer in context")
	}
	// All methods must tolerate the nil span.
	span.SetAttr("k", "v")
	span.End()
	if SpanFrom(ctx) != nil {
		t.Fatal("no-op span leaked into the context")
	}
}

func TestTracerRingBufferOverwrite(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		_, s := tr.Start(context.Background(), fmt.Sprintf("s%d", i))
		s.End()
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	for i, s := range spans {
		if want := fmt.Sprintf("s%d", 6+i); s.Name != want {
			t.Fatalf("span %d = %s, want %s (oldest first)", i, s.Name, want)
		}
	}
}

func TestTreesOrphanedChildIsRoot(t *testing.T) {
	tr := NewTracer(2)
	ctx, root := tr.Start(context.Background(), "root")
	root.End() // exported first, so it is the oldest entry
	_, a := StartSpan(ctx, "a")
	a.End()
	_, b := StartSpan(ctx, "b")
	b.End() // evicts the root: buffer holds {a, b}, both orphans now
	trees := tr.Trees()
	if len(trees) != 2 {
		t.Fatalf("trees = %d, want the 2 orphans promoted to roots", len(trees))
	}
	names := map[string]bool{}
	for _, n := range trees {
		if len(n.Children) != 0 {
			t.Fatalf("orphan %s acquired children: %+v", n.Name, n.Children)
		}
		names[n.Name] = true
	}
	if !names["a"] || !names["b"] {
		t.Fatalf("orphans not promoted to roots: %v", names)
	}
}

func TestEndIdempotent(t *testing.T) {
	tr := NewTracer(8)
	_, s := tr.Start(context.Background(), "once")
	s.End()
	s.End()
	s.SetAttr("late", "ignored")
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("exported %d times, want 1", len(spans))
	}
	if _, ok := spans[0].Attrs["late"]; ok {
		t.Fatal("attribute set after End was exported")
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := NewTracer(64)
	ctx, root := tr.Start(context.Background(), "root")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				cctx, s := StartSpan(ctx, fmt.Sprintf("w%d", w))
				s.SetAttr("i", fmt.Sprint(i))
				_, g := StartSpan(cctx, "leaf")
				g.End()
				s.End()
				_ = tr.Trees() // concurrent readers
			}
		}(w)
	}
	wg.Wait()
	root.End()
	if got := len(tr.Spans()); got != 64 {
		t.Fatalf("retained %d spans, want the full ring (64)", got)
	}
}
