package obs

import (
	"encoding/json"
	"log/slog"
	"net/http"
	"strconv"
	"time"
)

// MiddlewareOptions wires a Middleware to its sinks. Zero-value fields
// fall back to the process defaults (Default registry, DefaultTracer,
// slog.Default), so Middleware(next, MiddlewareOptions{}) is usable as is.
type MiddlewareOptions struct {
	Registry *Registry
	Tracer   *Tracer
	Logger   *slog.Logger
	// Route maps a request to its bounded-cardinality route label. nil
	// falls back to the request method — pass RouteFromMux to label with
	// the mux pattern that will serve the request.
	Route func(*http.Request) string
}

// RouteFromMux labels requests with the ServeMux pattern that will handle
// them ("POST /v1/jobs", "GET /v1/jobs/{id}", ...), the bounded label set
// per-route histograms need; unmatched requests are labeled "unmatched".
// With several muxes (an outer mux delegating "/" to a mounted API mux,
// as cmd/lbserver does), the first specific pattern wins: a bare "/"
// match is only the answer when no listed mux knows anything finer.
func RouteFromMux(muxes ...*http.ServeMux) func(*http.Request) string {
	return func(r *http.Request) string {
		sawCatchAll := false
		for _, mux := range muxes {
			switch _, pattern := mux.Handler(r); pattern {
			case "":
			case "/":
				sawCatchAll = true
			default:
				return pattern
			}
		}
		if sawCatchAll {
			return "/"
		}
		return "unmatched"
	}
}

// Middleware instruments an HTTP handler: per-route request counters and
// latency histograms, an in-flight gauge, one span per request, a request
// correlation ID, and one structured log line per request. The context
// handed to next carries the tracer, span, request ID, and logger, so
// everything downstream (the job scheduler, the experiment sweeps) joins
// the same trace and log stream.
func Middleware(next http.Handler, opts MiddlewareOptions) http.Handler {
	reg := opts.Registry
	if reg == nil {
		reg = Default()
	}
	tracer := opts.Tracer
	if tracer == nil {
		tracer = DefaultTracer()
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.Default()
	}
	route := opts.Route
	if route == nil {
		route = func(r *http.Request) string { return r.Method }
	}
	inFlight := reg.Gauge("http_requests_in_flight", "Requests currently being served.", nil)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rt := route(r)
		labels := Labels{"route": rt}
		inFlight.Inc()
		defer inFlight.Dec()

		reqID := NewRequestID()
		ctx := WithLogger(WithRequestID(r.Context(), reqID), logger)
		ctx, span := tracer.Start(ctx, rt)
		span.SetAttr("request_id", reqID)

		rw := &respWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(rw, r.WithContext(ctx))
		elapsed := time.Since(start)

		code := rw.status()
		span.SetAttr("status", strconv.Itoa(code))
		span.End()
		reg.Counter("http_requests_total", "Requests served, by route and status code.",
			Labels{"route": rt, "code": strconv.Itoa(code)}).Inc()
		reg.Histogram("http_request_duration_seconds", "Request latency, by route.",
			nil, labels).Observe(elapsed.Seconds())
		Logger(ctx).Info("request",
			"route", rt, "path", r.URL.Path, "status", code,
			"bytes", rw.bytes, "duration_ms", float64(elapsed)/float64(time.Millisecond))
	})
}

// respWriter captures the status code and byte count while passing
// Flush through — the NDJSON event stream depends on flushing.
type respWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (w *respWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *respWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer so streamed responses keep
// streaming through the middleware.
func (w *respWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap supports http.ResponseController.
func (w *respWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

func (w *respWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// MetricsHandler serves the registry in the Prometheus text exposition
// format — the /metrics endpoint.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// TracesHandler serves the tracer's retained spans as JSON span trees —
// the /debug/traces endpoint. ?flat=1 returns the raw span list instead.
func TracesHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if r.URL.Query().Get("flat") != "" {
			_ = enc.Encode(t.Spans())
			return
		}
		_ = enc.Encode(t.Trees())
	})
}
