//go:build mutation

package explore

import (
	"strings"
	"testing"

	"jayanti98/internal/algos"
	"jayanti98/internal/universal"
)

// The mutation-tagged tests prove the harness detects real bugs: the
// deliberately broken group-update variant (merge-order bug, see
// universal.NewBrokenGroupUpdate) must be caught by both search modes,
// shrink to a short counterexample, and reproduce from its replay file.
// Run with: go test -tags mutation ./internal/explore/

func TestMutantGuard(t *testing.T) {
	if !universal.MutantAvailable {
		t.Fatal("mutation build tag set but MutantAvailable is false")
	}
}

func TestMutantCaughtByExhaustive(t *testing.T) {
	rep, err := Exhaustive(Config{Alg: BrokenGroupUpdate, Object: "fetch-increment", N: 2, OpsPerProc: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failure == nil {
		t.Fatalf("exhaustive search missed the seeded bug (%d states, %d complete runs)", rep.States, rep.Complete)
	}
	if rep.Failure.Kind != FailNonLinearizable {
		t.Fatalf("want %s, got %v", FailNonLinearizable, rep.Failure)
	}
	t.Logf("caught: %v\nschedule: %v", rep.Failure, rep.Record.Schedule)
}

func TestMutantFuzzShrinkAndReplay(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Alg: BrokenGroupUpdate, Object: "fetch-increment", N: 2, OpsPerProc: 1}
	rep, err := Fuzz(cfg, FuzzOptions{Samples: 200, Seed: 1, OutDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures) == 0 {
		t.Fatal("200 random schedules missed the seeded bug")
	}
	t.Logf("%d/%d samples failed", len(rep.Failures), rep.Samples)
	rp0 := rep.Failures[0]
	if rp0.Kind != FailNonLinearizable {
		t.Fatalf("want %s, got %s (%s)", FailNonLinearizable, rp0.Kind, rp0.Detail)
	}
	if len(rp0.Schedule) > 20 {
		t.Fatalf("shrunk schedule still has %d steps (want <= 20): %v", len(rp0.Schedule), rp0.Schedule)
	}
	if rp0.OriginalLen < len(rp0.Schedule) {
		t.Fatalf("original length %d shorter than shrunk %d", rp0.OriginalLen, len(rp0.Schedule))
	}
	// Reproduce from the persisted file, bit-for-bit.
	rp, err := ReadReplay(rep.Paths[0])
	if err != nil {
		t.Fatal(err)
	}
	rec, diff, err := Verify(rp)
	if err != nil {
		t.Fatal(err)
	}
	if diff != "" {
		t.Fatalf("replay file does not reproduce bit-for-bit: %s", diff)
	}
	if rec.Failure == nil || rec.Failure.Kind != FailNonLinearizable {
		t.Fatalf("replay failure: %+v", rec.Failure)
	}
}

// TestTASMutantCaughtByExhaustive holds the zoo checking to the same
// standard: the broken Tromp–Vitányi variant (winner returns "lost", see
// tas.BrokenTV) must be flagged non-linearizable by the raw-mode harness —
// no linearization of one-shot test&set lets every operation return 1.
// Both engines must catch it; the mutant ships a patched bytecode twin
// precisely so this test covers the VM path too.
func TestTASMutantCaughtByExhaustive(t *testing.T) {
	if !algosHasBrokenTV() {
		t.Fatal("mutation build tag set but the broken TV variant is not registered")
	}
	rep, err := Exhaustive(Config{Alg: algos.BrokenTV, Object: "tas", N: 2, OpsPerProc: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failure == nil {
		t.Fatalf("exhaustive search missed the seeded TAS bug (%d states, %d complete runs)", rep.States, rep.Complete)
	}
	if rep.Failure.Kind != FailNonLinearizable {
		t.Fatalf("want %s, got %v", FailNonLinearizable, rep.Failure)
	}
	t.Logf("caught: %v\nschedule: %v", rep.Failure, rep.Record.Schedule)
}

func algosHasBrokenTV() bool {
	for _, name := range algos.Names() {
		if name == algos.BrokenTV {
			return true
		}
	}
	return false
}

// TestTASMutantFuzzShrinkAndReplay: fuzzing finds the TAS mutant too, and
// the shrunk replay reproduces bit-for-bit from its file — the same
// find/shrink/persist/verify loop the construction mutant exercises, but
// through the raw-mode runner with its synthesized events.
func TestTASMutantFuzzShrinkAndReplay(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Alg: algos.BrokenTV, Object: "tas", N: 2, OpsPerProc: 1}
	rep, err := Fuzz(cfg, FuzzOptions{Samples: 200, Seed: 1, OutDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures) == 0 {
		t.Fatal("200 random schedules missed the seeded TAS bug")
	}
	t.Logf("%d/%d samples failed", len(rep.Failures), rep.Samples)
	rp0 := rep.Failures[0]
	if rp0.Kind != FailNonLinearizable {
		t.Fatalf("want %s, got %s (%s)", FailNonLinearizable, rp0.Kind, rp0.Detail)
	}
	rp, err := ReadReplay(rep.Paths[0])
	if err != nil {
		t.Fatal(err)
	}
	rec, diff, err := Verify(rp)
	if err != nil {
		t.Fatal(err)
	}
	if diff != "" {
		t.Fatalf("replay file does not reproduce bit-for-bit: %s", diff)
	}
	if rec.Failure == nil || rec.Failure.Kind != FailNonLinearizable {
		t.Fatalf("replay failure: %+v", rec.Failure)
	}
	for _, ev := range rec.Events {
		if strings.HasSuffix(ev, "-> 0") {
			t.Fatalf("mutant produced a winner, the seeded bug is gone: %v", rec.Events)
		}
	}
}

// TestMutantPassesNaiveSchedules documents why the seeded bug needs
// schedule exploration at all: solo (sequential) and lockstep round-robin
// runs — the schedules ordinary unit tests exercise — both linearize.
func TestMutantPassesNaiveSchedules(t *testing.T) {
	cfg := Config{Alg: BrokenGroupUpdate, Object: "fetch-increment", N: 2, OpsPerProc: 1}
	var sequential, roundRobin []int
	for i := 0; i < 16; i++ {
		sequential = append(sequential, 0)
		roundRobin = append(roundRobin, 0, 1)
	}
	for i := 0; i < 16; i++ {
		sequential = append(sequential, 1)
	}
	for name, sched := range map[string][]int{"sequential": sequential, "round-robin": roundRobin} {
		rec, err := RunSchedule(cfg, sched)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Failure != nil {
			t.Fatalf("%s schedule unexpectedly catches the mutant: %v", name, rec.Failure)
		}
		if !rec.Completed {
			t.Fatalf("%s schedule did not complete: %+v", name, rec)
		}
	}
}
