package explore

import (
	"context"
	"fmt"

	"jayanti98/internal/sweep"
)

// Report summarizes an exhaustive exploration.
type Report struct {
	// Cfg echoes the explored configuration (with Budget resolved).
	Cfg Config
	// States counts distinct memoized states. Parallel branches keep
	// independent visited sets, so states reachable from several first
	// steps are counted once per branch; the count is nevertheless
	// deterministic at every worker count.
	States int
	// Runs counts prefix executions (every DFS node re-executes its prefix
	// from scratch).
	Runs int
	// Complete counts runs in which every process terminated.
	Complete int
	// Truncated counts leaf runs cut off by the step budget with processes
	// still live. Always 0 for constructions (their budget exhaustion is a
	// Failure); for zoo algorithms (package algos) it measures how much of
	// the schedule space the budget leaves unexplored — randomized TAS
	// livelocks under symmetric schedules, so some truncation is inherent.
	Truncated int
	// Failure is the first failure in branch order, nil if the whole
	// schedule space is clean.
	Failure *Failure
	// Record is the failing run, nil if Failure is nil.
	Record *RunRecord
}

// exhaustiveWorker explores the subtree under one first step with its own
// visited set.
type exhaustiveWorker struct {
	ctx       context.Context
	cfg       Config
	visited   map[string]bool
	keyBuf    []byte // reused memo-key scratch (appendMemoKey)
	runs      int
	complete  int
	truncated int
}

// Exhaustive enumerates every schedule of cfg by depth-first search over
// interleavings, pruning prefixes whose product state (machine histories,
// memory fingerprint, online-checker configs) was already visited. The
// subtrees under the n possible first steps are explored in parallel on up
// to `workers` goroutines (sweep.Workers semantics); the result — including
// which failure is reported — is deterministic at every worker count,
// because branches are independent and the lowest branch's failure wins.
//
// Exhaustive requires a deterministic toss assignment (it explores
// schedules, not coin flips): cfg.Tosses must be nil or pure.
func Exhaustive(cfg Config, workers int) (*Report, error) {
	return ExhaustiveCtx(context.Background(), cfg, workers)
}

// ExhaustiveCtx is Exhaustive under a context: cancellation aborts the
// search — both across branches (no new branch is dispatched) and inside a
// branch (the DFS checks ctx before every prefix re-execution) — and
// returns ctx.Err(). A cancelled search yields no report.
func ExhaustiveCtx(ctx context.Context, cfg Config, workers int) (*Report, error) {
	root, err := newRunner(cfg)
	if err != nil {
		return nil, err
	}
	cfg.Budget = root.budget // resolve for the report
	rep := &Report{Cfg: cfg, Runs: 1}
	if root.fail != nil {
		rep.Failure = root.fail
		rep.Record = root.record()
		root.close()
		return rep, nil
	}
	if root.done() {
		if err := root.finalCheck(); err != nil {
			root.close()
			return nil, err
		}
		rep.Complete = 1
		rep.Failure = root.fail
		if root.fail != nil {
			rep.Record = root.record()
		}
		root.close()
		return rep, nil
	}
	branches := root.enabled()
	root.close()

	type branchResult struct {
		states, runs, complete, truncated int
		failure                           *Failure
		record                            *RunRecord
	}
	results, err := sweep.MapCtx(ctx, workers, len(branches), func(i int) (branchResult, error) {
		w := &exhaustiveWorker{ctx: ctx, cfg: cfg, visited: make(map[string]bool)}
		f, rec, err := w.dfs([]int{branches[i]})
		if err != nil {
			return branchResult{}, err
		}
		return branchResult{states: len(w.visited), runs: w.runs, complete: w.complete, truncated: w.truncated, failure: f, record: rec}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, br := range results {
		rep.States += br.states
		rep.Runs += br.runs
		rep.Complete += br.complete
		rep.Truncated += br.truncated
		if rep.Failure == nil && br.failure != nil {
			rep.Failure = br.failure
			rep.Record = br.record
		}
	}
	return rep, nil
}

// dfs executes prefix from scratch and recurses on every enabled process.
// It returns the first failure found in its subtree (with the failing
// run's record), or nil if the subtree is clean.
func (e *exhaustiveWorker) dfs(prefix []int) (*Failure, *RunRecord, error) {
	if err := e.ctx.Err(); err != nil {
		return nil, nil, err
	}
	r, err := newRunner(e.cfg)
	if err != nil {
		return nil, nil, err
	}
	defer r.close()
	e.runs++
	for _, pid := range prefix {
		if r.fail != nil {
			break
		}
		if !r.step(pid) && r.fail == nil {
			return nil, nil, fmt.Errorf("explore: internal: prefix pid %d not enabled during re-execution", pid)
		}
	}
	if r.fail != nil {
		return r.fail, r.record(), nil
	}
	if r.done() {
		e.complete++
		if err := r.finalCheck(); err != nil {
			return nil, nil, err
		}
		if r.fail != nil {
			return r.fail, r.record(), nil
		}
		return nil, nil, nil
	}
	if r.truncated() {
		// A zoo algorithm out of budget: nothing is enabled below this
		// prefix, so it is a leaf — count it, don't memoize it.
		e.truncated++
		return nil, nil, nil
	}
	e.keyBuf = r.appendMemoKey(e.keyBuf[:0])
	key := string(e.keyBuf)
	if e.visited[key] {
		return nil, nil, nil
	}
	e.visited[key] = true
	next := r.enabled()
	// Free the run's goroutines before recursing: the DFS is as deep as
	// the budget, and each live runner holds cfg.N goroutines.
	r.close()
	for _, pid := range next {
		f, rec, err := e.dfs(append(prefix[:len(prefix):len(prefix)], pid))
		if f != nil || err != nil {
			return f, rec, err
		}
	}
	return nil, nil, nil
}
