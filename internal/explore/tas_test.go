package explore

import (
	"reflect"
	"strings"
	"testing"

	"jayanti98/internal/algos"
)

// countWinners scans a rendered event log for completed test&set operations
// that returned 0 (won the object).
func countWinners(t *testing.T, events []string) (winners, returns int) {
	t.Helper()
	for _, ev := range events {
		if !strings.Contains(ev, "return") {
			continue
		}
		returns++
		if strings.HasSuffix(ev, "-> 0") {
			winners++
		}
	}
	return winners, returns
}

// TestTASRawModeComplete runs each zoo algorithm over a round-robin
// schedule with asymmetric tosses (process 0 retreats, process 1 holds) and
// checks the basic shape of a raw-mode record: the run completes, exactly
// one process wins, and every process invoked exactly once.
func TestTASRawModeComplete(t *testing.T) {
	for _, alg := range algos.Names() {
		if alg == algos.BrokenTV {
			// The -tags mutation build registers the seeded bug; it is
			// *supposed* to fail linearizability (mutant_test.go owns that).
			continue
		}
		alg := alg
		t.Run(alg, func(t *testing.T) {
			t.Parallel()
			cfg := Config{
				Alg: alg, Object: "tas", N: 2, OpsPerProc: 1,
				Tosses: func(pid int, i int) int64 { return int64(pid) }, // p0 tosses 0 (retreats), p1 tosses 1
			}
			sched := make([]int, 0, 64)
			for i := 0; i < 32; i++ {
				sched = append(sched, 0, 1)
			}
			rec, err := RunSchedule(cfg, sched)
			if err != nil {
				t.Fatal(err)
			}
			if rec.Failure != nil {
				t.Fatalf("unexpected failure: %v\nevents:\n%s", rec.Failure, strings.Join(rec.Events, "\n"))
			}
			if !rec.Completed || rec.Truncated {
				t.Fatalf("run did not complete: completed=%v truncated=%v steps=%d", rec.Completed, rec.Truncated, rec.Steps)
			}
			winners, returns := countWinners(t, rec.Events)
			if returns != 2 || winners != 1 {
				t.Fatalf("want 2 returns with exactly 1 winner, got %d returns / %d winners:\n%s",
					returns, winners, strings.Join(rec.Events, "\n"))
			}
		})
	}
}

// TestTASSoloWins pins the solo path: a process running alone must win —
// for TV in 3 shared steps (two swaps and a read: it retreats once on toss
// 0, re-reads nil, and decides), for the tournament in ⌈log₂ 2⌉ + 2 = 3
// steps (door read, leaf swap, sibling read) before climbing to the root.
func TestTASSoloWins(t *testing.T) {
	for _, alg := range []string{"tas-tv", "tas-tournament"} {
		alg := alg
		t.Run(alg, func(t *testing.T) {
			t.Parallel()
			cfg := Config{Alg: alg, Object: "tas", N: 2, OpsPerProc: 1,
				Tosses: func(int, int) int64 { return 1 }} // never retreat
			sched := []int{0, 0, 0, 0, 0, 0, 0, 0}
			rec, err := RunSchedule(cfg, sched)
			if err != nil {
				t.Fatal(err)
			}
			if rec.Failure != nil {
				t.Fatalf("unexpected failure: %v", rec.Failure)
			}
			winners, returns := countWinners(t, rec.Events)
			if returns != 1 || winners != 1 {
				t.Fatalf("solo run: want 1 winning return, got %d returns / %d winners:\n%s",
					returns, winners, strings.Join(rec.Events, "\n"))
			}
		})
	}
}

// TestTASTruncation: under a symmetric schedule with symmetric tosses the
// TV protocol livelocks (both processes retreat and re-raise in lockstep
// forever), so the budget cuts the run off — which must surface as
// Truncated, not as a Failure: randomized algorithms are only expected to
// terminate with probability 1, not under every adversary.
func TestTASTruncation(t *testing.T) {
	cfg := Config{Alg: "tas-tv", Object: "tas", N: 2, OpsPerProc: 1,
		Tosses: func(int, int) int64 { return 0 }} // everyone always retreats
	sched := make([]int, 0, 64)
	for i := 0; i < 32; i++ {
		sched = append(sched, 0, 1)
	}
	rec, err := RunSchedule(cfg, sched)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Failure != nil {
		t.Fatalf("budget exhaustion of a zoo algorithm must truncate, not fail: %v", rec.Failure)
	}
	if rec.Completed || !rec.Truncated {
		t.Fatalf("want a truncated run, got completed=%v truncated=%v steps=%d", rec.Completed, rec.Truncated, rec.Steps)
	}
	if rec.Steps != 14 { // the tas-tv default budget
		t.Fatalf("truncated run executed %d steps, want the full budget 14", rec.Steps)
	}
}

// TestTASRawConfigValidation pins the raw-runner's configuration checks:
// zoo algorithms are one-shot, bound to their workload, and (for TV)
// inherently two-process.
func TestTASRawConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"wrong object", Config{Alg: "tas-tv", Object: "fetch-increment", N: 2, OpsPerProc: 1}, "implements workload"},
		{"multi-shot", Config{Alg: "tas-tv", Object: "tas", N: 2, OpsPerProc: 2}, "one-shot"},
		{"tv beyond two", Config{Alg: "tas-tv", Object: "tas", N: 3, OpsPerProc: 1}, "at most"},
		{"bad backend", Config{Alg: "tas-tv", Object: "tas", N: 2, OpsPerProc: 1, LLSC: "bogus"}, "backend"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			_, err := Exhaustive(tc.cfg, 1)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

// TestExhaustiveBackendsEqual is the Blelloch–Wei acceptance criterion: the
// BW backend must be indistinguishable from the native LL/SC memory under
// exhaustive exploration at n ∈ {2, 3}. Equal States counts are the strong
// claim — the memo key embeds the memory fingerprint, so the two backends
// visit byte-identical fingerprints at every node of the schedule tree, for
// both a universal construction and the raw TAS protocols.
func TestExhaustiveBackendsEqual(t *testing.T) {
	cases := []struct {
		alg, object string
		n           int
	}{
		{"tas-tv", "tas", 2},
		{"tas-tournament", "tas", 2},
		{"tas-tournament", "tas", 3},
		{"central", "fetch-increment", 2},
		{"central", "fetch-increment", 3},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.alg+"/"+tc.object, func(t *testing.T) {
			if tc.n == 3 && tc.alg == "tas-tournament" && testing.Short() {
				t.Skip("long backend comparison skipped in -short mode")
			}
			t.Parallel()
			cfg := Config{Alg: tc.alg, Object: tc.object, N: tc.n, OpsPerProc: 1}
			cfg.LLSC = "native"
			native, err := Exhaustive(cfg, 4)
			if err != nil {
				t.Fatal(err)
			}
			cfg.LLSC = "bw"
			bw, err := Exhaustive(cfg, 4)
			if err != nil {
				t.Fatal(err)
			}
			native.Cfg, bw.Cfg = Config{}, Config{} // only the LLSC field differs
			if !reflect.DeepEqual(native, bw) {
				t.Fatalf("backends diverge:\nnative: %+v\nbw:     %+v", native, bw)
			}
			if native.States == 0 || native.Complete == 0 {
				t.Fatalf("empty exploration: %+v", native)
			}
		})
	}
}

// TestTASFuzzClean: random schedules and tosses over both TAS protocols on
// both backends must produce no failures (the exhaustive golden covers
// small n; fuzz adds schedule shapes the DFS order never emphasizes and,
// for the tournament, n above the exhaustive horizon).
func TestTASFuzzClean(t *testing.T) {
	cases := []Config{
		{Alg: "tas-tv", Object: "tas", N: 2, OpsPerProc: 1},
		{Alg: "tas-tournament", Object: "tas", N: 5, OpsPerProc: 1, LLSC: "bw"},
	}
	for _, cfg := range cases {
		cfg := cfg
		t.Run(cfg.Alg, func(t *testing.T) {
			t.Parallel()
			rep, err := Fuzz(cfg, FuzzOptions{Samples: 200, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Failures) != 0 {
				t.Fatalf("fuzz found failures: %s (%s)", rep.Failures[0].Kind, rep.Failures[0].Detail)
			}
		})
	}
}

// TestReplayThreadsLLSC: the replay file format records the LL/SC backend
// and Config() restores it, so a failure found on the BW backend replays on
// the BW backend.
func TestReplayThreadsLLSC(t *testing.T) {
	rp := &Replay{Alg: "tas-tv", Object: "tas", N: 2, OpsPerProc: 1, LLSC: "bw"}
	if got := rp.Config().LLSC; got != "bw" {
		t.Fatalf("Replay.Config().LLSC = %q, want \"bw\"", got)
	}
}
