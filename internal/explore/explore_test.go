package explore

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"jayanti98/internal/universal"
)

func TestExhaustiveAllConstructionsN2(t *testing.T) {
	for _, alg := range universal.Names() {
		alg := alg
		t.Run(alg, func(t *testing.T) {
			t.Parallel()
			rep, err := Exhaustive(Config{Alg: alg, Object: "fetch-increment", N: 2, OpsPerProc: 1}, 0)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Failure != nil {
				t.Fatalf("%s: unexpected failure: %v\nevents:\n%v", alg, rep.Failure, rep.Record.Events)
			}
			if rep.Complete == 0 || rep.States == 0 {
				t.Fatalf("%s: empty exploration: %+v", alg, rep)
			}
			t.Logf("%s n=2: %d states, %d runs, %d complete", alg, rep.States, rep.Runs, rep.Complete)
		})
	}
}

func TestExhaustiveCentralN3(t *testing.T) {
	rep, err := Exhaustive(Config{Alg: "central", Object: "fetch-increment", N: 3, OpsPerProc: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failure != nil {
		t.Fatalf("unexpected failure: %v", rep.Failure)
	}
	if rep.Complete == 0 {
		t.Fatalf("no complete runs: %+v", rep)
	}
	t.Logf("central n=3: %d states, %d runs, %d complete", rep.States, rep.Runs, rep.Complete)
}

func TestExhaustiveQueueWorkload(t *testing.T) {
	rep, err := Exhaustive(Config{Alg: "group-update", Object: "queue", N: 2, OpsPerProc: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failure != nil {
		t.Fatalf("unexpected failure: %v", rep.Failure)
	}
}

// TestExhaustiveDeterministicAcrossWorkers: the report — including the
// per-branch state counts folded into States — must not depend on the
// worker count.
func TestExhaustiveDeterministicAcrossWorkers(t *testing.T) {
	cfg := Config{Alg: "group-update", Object: "fetch-increment", N: 2, OpsPerProc: 1}
	serial, err := Exhaustive(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Exhaustive(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if serial.States != parallel.States || serial.Runs != parallel.Runs || serial.Complete != parallel.Complete {
		t.Fatalf("worker count changed the exploration: serial %+v vs parallel %+v", serial, parallel)
	}
}

func TestRunScheduleRecordsAndSkips(t *testing.T) {
	cfg := Config{Alg: "central", Object: "fetch-increment", N: 2, OpsPerProc: 1}
	// 99 entries for a terminated/absent process must be skipped silently.
	rec, err := RunSchedule(cfg, []int{0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Failure != nil {
		t.Fatalf("unexpected failure: %v", rec.Failure)
	}
	if !rec.Completed {
		t.Fatalf("run did not complete: %+v", rec)
	}
	if len(rec.Schedule) != rec.Steps {
		t.Fatalf("executed schedule has %d entries but %d steps", len(rec.Schedule), rec.Steps)
	}
	if len(rec.Events) != 2*cfg.N*cfg.OpsPerProc {
		t.Fatalf("want %d events, got %v", 2*cfg.N*cfg.OpsPerProc, rec.Events)
	}
	for pid := 0; pid < cfg.N; pid++ {
		if len(rec.Tosses[pid]) == 0 {
			t.Fatalf("p%d consumed no tosses (marker toss missing): %+v", pid, rec.Tosses)
		}
	}
}

func TestBudgetExhaustionIsAFailure(t *testing.T) {
	cfg := Config{Alg: "central", Object: "fetch-increment", N: 2, OpsPerProc: 1, Budget: 2}
	rec, err := RunSchedule(cfg, []int{0, 1, 0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Failure == nil || rec.Failure.Kind != FailBudgetExhausted {
		t.Fatalf("want %s, got %v", FailBudgetExhausted, rec.Failure)
	}
	if rec.Steps != 2 {
		t.Fatalf("budget 2 but %d steps executed", rec.Steps)
	}
}

func TestShrinkMinimizesBudgetFailure(t *testing.T) {
	cfg := Config{Alg: "central", Object: "fetch-increment", N: 2, OpsPerProc: 1, Budget: 2}
	long := []int{1, 0, 1, 0, 1, 0, 1, 0, 1, 0}
	shrunk := Shrink(cfg, long, FailBudgetExhausted)
	// The failure fires on the first step attempted past the budget, so
	// the minimal schedule has budget+1 = 3 entries.
	if len(shrunk) != 3 {
		t.Fatalf("want 3-step minimum, got %v", shrunk)
	}
	rec, err := RunSchedule(cfg, shrunk)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Failure == nil || rec.Failure.Kind != FailBudgetExhausted {
		t.Fatalf("shrunk schedule does not fail: %+v", rec)
	}
	// The canonicalizing pass must have sorted the surviving entries.
	for i := 0; i+1 < len(shrunk); i++ {
		if shrunk[i] > shrunk[i+1] {
			t.Fatalf("shrunk schedule not canonical: %v", shrunk)
		}
	}
}

func TestShrinkReturnsInputWhenNotReproducible(t *testing.T) {
	cfg := Config{Alg: "central", Object: "fetch-increment", N: 2, OpsPerProc: 1}
	in := []int{0, 1, 0, 1}
	if got := Shrink(cfg, in, FailNonLinearizable); !reflect.DeepEqual(got, in) {
		t.Fatalf("want input back, got %v", got)
	}
}

func TestFuzzCleanOnCorrectConstruction(t *testing.T) {
	rep, err := Fuzz(Config{Alg: "central", Object: "fetch-increment", N: 4, OpsPerProc: 2},
		FuzzOptions{Samples: 30, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures) != 0 {
		t.Fatalf("false positives on a correct construction: %+v", rep.Failures[0])
	}
	if rep.TotalSteps == 0 {
		t.Fatal("fuzz executed no steps")
	}
}

// TestFuzzDeterministicAcrossWorkers: per-sample seeds derive from the
// sample index, so the campaign fingerprint must not depend on worker
// count or scheduling.
func TestFuzzDeterministicAcrossWorkers(t *testing.T) {
	cfg := Config{Alg: "group-update", Object: "queue", N: 3, OpsPerProc: 2}
	a, err := Fuzz(cfg, FuzzOptions{Samples: 20, Seed: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fuzz(cfg, FuzzOptions{Samples: 20, Seed: 7, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalSteps != b.TotalSteps || len(a.Failures) != len(b.Failures) {
		t.Fatalf("worker count changed the campaign: %d/%d steps, %d/%d failures",
			a.TotalSteps, b.TotalSteps, len(a.Failures), len(b.Failures))
	}
}

func TestReplayRoundTripAndVerify(t *testing.T) {
	// Manufacture a real failure via an artificially tiny budget, then
	// check the whole persistence pipeline: fuzz -> shrink -> write ->
	// read -> bit-for-bit verify.
	cfg := Config{Alg: "central", Object: "fetch-increment", N: 2, OpsPerProc: 1, Budget: 2}
	dir := t.TempDir()
	rep, err := Fuzz(cfg, FuzzOptions{Samples: 1, Seed: 5, OutDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures) != 1 {
		t.Fatalf("want 1 failure, got %d", len(rep.Failures))
	}
	path := rep.Paths[0]
	if filepath.Dir(path) != dir {
		t.Fatalf("replay written to %s, want under %s", path, dir)
	}
	rp, err := ReadReplay(path)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Kind != FailBudgetExhausted || rp.N != 2 || rp.Alg != "central" {
		t.Fatalf("replay lost metadata: %+v", rp)
	}
	rec, diff, err := Verify(rp)
	if err != nil {
		t.Fatal(err)
	}
	if diff != "" {
		t.Fatalf("replay does not reproduce bit-for-bit: %s", diff)
	}
	if rec.Failure.Kind != FailBudgetExhausted {
		t.Fatalf("replay failure kind %v", rec.Failure.Kind)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Exhaustive(Config{Alg: "central", Object: "fetch-increment", N: 0, OpsPerProc: 1}, 1); err == nil {
		t.Fatal("n=0 must be rejected")
	}
	if _, err := RunSchedule(Config{Alg: "central", Object: "no-such-workload", N: 2, OpsPerProc: 1}, nil); err == nil {
		t.Fatal("unknown workload must be rejected")
	}
	if _, err := RunSchedule(Config{Alg: "no-such-alg", Object: "queue", N: 2, OpsPerProc: 1}, nil); err == nil {
		t.Fatal("unknown construction must be rejected")
	}
}

// TestFuzzCtxCancellation: a cancelled campaign stops dispatching samples
// and surfaces ctx.Err() instead of a report.
func TestFuzzCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := FuzzCtx(ctx, Config{Alg: "group-update", Object: "fetch-increment", N: 2, OpsPerProc: 1},
		FuzzOptions{Samples: 50, Seed: 1, Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep != nil {
		t.Fatalf("cancelled campaign produced a report: %+v", rep)
	}
}

// TestExhaustiveCtxCancellation: a cancelled exhaustive search aborts
// mid-DFS with ctx.Err().
func TestExhaustiveCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := ExhaustiveCtx(ctx, Config{Alg: "central", Object: "fetch-increment", N: 3, OpsPerProc: 1}, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep != nil {
		t.Fatalf("cancelled search produced a report: %+v", rep)
	}
}
