package explore

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"jayanti98/internal/sweep"
)

// FuzzOptions configures a fuzzing campaign.
type FuzzOptions struct {
	// Samples is the number of random schedules to run.
	Samples int
	// Seed is the campaign's base seed; sample i derives its private seed
	// with sweep.Derive(Seed, i), so each sample reproduces in isolation
	// at every worker count.
	Seed int64
	// Offset shifts the campaign's sample indices: the run covers samples
	// Offset … Offset+Samples-1 of the Seed's stream. A campaign split
	// into contiguous [offset, offset+count) slices therefore runs
	// exactly the samples — and derives exactly the seeds — of the
	// unsplit campaign, which is what lets internal/dist shard a fuzz job
	// across processes without perturbing a single coin toss.
	Offset int
	// Workers bounds the worker goroutines (sweep.Workers semantics).
	Workers int
	// OutDir, when non-empty, receives one JSON replay file per failing
	// sample (written after the campaign, in sample order).
	OutDir string
	// NoShrink skips counterexample minimization (useful when a failure's
	// raw schedule is itself of interest).
	NoShrink bool
	// TossRange is the exclusive upper bound on random coin-toss outcomes
	// (0 means 2: coin flips).
	TossRange int64
}

// FuzzReport summarizes a fuzzing campaign.
type FuzzReport struct {
	Cfg     Config
	Samples int
	// TotalSteps sums executed steps over all samples (a cheap determinism
	// fingerprint for the whole campaign).
	TotalSteps int
	// Failures holds one replay per failing sample, in sample order, with
	// schedules already shrunk unless NoShrink was set.
	Failures []*Replay
	// Paths holds the file each failure was persisted to, aligned with
	// Failures (empty when OutDir was "").
	Paths []string
}

// Fuzz runs random schedules of cfg: at every step an enabled process is
// picked uniformly, and coin tosses are drawn uniformly from
// [0, TossRange). Every failing sample is minimized with Shrink and
// converted into a self-contained Replay; with OutDir set, replays are
// also persisted as JSON files (see ReadReplay / Verify).
func Fuzz(cfg Config, opt FuzzOptions) (*FuzzReport, error) {
	return FuzzCtx(context.Background(), cfg, opt)
}

// FuzzCtx is Fuzz under a context: once ctx is done no further samples are
// dispatched and the campaign returns ctx.Err() (sweep.MapCtx semantics);
// no report — and in particular no replay file — is produced for a
// cancelled campaign.
func FuzzCtx(ctx context.Context, cfg Config, opt FuzzOptions) (*FuzzReport, error) {
	if opt.Samples < 1 {
		return nil, fmt.Errorf("explore: fuzz needs at least 1 sample, got %d", opt.Samples)
	}
	tossRange := opt.TossRange
	if tossRange <= 0 {
		tossRange = 2
	}
	if opt.OutDir != "" {
		if err := os.MkdirAll(opt.OutDir, 0o755); err != nil {
			return nil, fmt.Errorf("explore: fuzz: %w", err)
		}
	}
	type sampleResult struct {
		steps  int
		replay *Replay
	}
	if opt.Offset < 0 {
		return nil, fmt.Errorf("explore: fuzz sample offset %d negative", opt.Offset)
	}
	results, err := sweep.MapCtx(ctx, opt.Workers, opt.Samples, func(item int) (sampleResult, error) {
		i := opt.Offset + item // global sample index in the Seed's stream
		seed := sweep.Derive(opt.Seed, i)
		rec, err := fuzzOne(cfg, seed, tossRange)
		if err != nil {
			return sampleResult{}, fmt.Errorf("explore: sample %d (seed %d): %w", i, seed, err)
		}
		res := sampleResult{steps: rec.Steps}
		if rec.Failure == nil {
			return res, nil
		}
		// Reproduce with the recorded tosses, minimizing the schedule
		// unless asked not to. The budget stays as configured so a
		// budget-exhaustion failure reproduces under the same bound.
		// Shrinking runs under the campaign context: a cancelled ctx cuts
		// minimization short but still yields a failing schedule.
		rcfg := cfg
		rcfg.Tosses = replayTosses(rec.Tosses)
		schedule := rec.Schedule
		if !opt.NoShrink {
			schedule = ShrinkCtx(ctx, rcfg, rec.Schedule, rec.Failure.Kind)
		}
		final, err := RunSchedule(rcfg, schedule)
		if err != nil {
			return sampleResult{}, fmt.Errorf("explore: sample %d (seed %d): rerun: %w", i, seed, err)
		}
		if final.Failure == nil {
			return sampleResult{}, fmt.Errorf("explore: sample %d (seed %d): failure %v did not reproduce from its own schedule", i, seed, rec.Failure)
		}
		res.replay = &Replay{
			Alg:         cfg.Alg,
			Object:      cfg.Object,
			N:           cfg.N,
			OpsPerProc:  cfg.OpsPerProc,
			Budget:      cfg.Budget,
			LLSC:        cfg.LLSC,
			Seed:        seed,
			Kind:        final.Failure.Kind,
			Detail:      final.Failure.Detail,
			Schedule:    final.Schedule,
			Tosses:      final.Tosses,
			Events:      final.Events,
			OriginalLen: len(rec.Schedule),
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	rep := &FuzzReport{Cfg: cfg, Samples: opt.Samples}
	for i, sr := range results {
		rep.TotalSteps += sr.steps
		if sr.replay == nil {
			continue
		}
		rep.Failures = append(rep.Failures, sr.replay)
		path := ""
		if opt.OutDir != "" {
			path = filepath.Join(opt.OutDir, fmt.Sprintf("fail-%s-%s-n%d-sample%d.json", cfg.Alg, cfg.Object, cfg.N, opt.Offset+i))
			if err := WriteReplay(path, sr.replay); err != nil {
				return nil, err
			}
		}
		rep.Paths = append(rep.Paths, path)
	}
	return rep, nil
}

// fuzzOne runs a single random schedule to completion, failure, or budget.
func fuzzOne(cfg Config, seed int64, tossRange int64) (*RunRecord, error) {
	rng := rand.New(rand.NewSource(seed))
	tossRng := rand.New(rand.NewSource(sweep.Derive(seed, 1)))
	cfg.Tosses = func(int, int) int64 { return tossRng.Int63n(tossRange) }
	r, err := newRunner(cfg)
	if err != nil {
		return nil, err
	}
	defer r.close()
	for r.fail == nil && !r.done() {
		en := r.enabled()
		if len(en) == 0 {
			break
		}
		r.step(en[rng.Intn(len(en))])
	}
	if r.done() {
		if err := r.finalCheck(); err != nil {
			return nil, err
		}
	}
	return r.record(), nil
}
