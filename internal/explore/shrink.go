package explore

// Shrink minimizes a failing schedule: it returns a (usually much shorter)
// schedule that still produces a failure of the same kind under cfg. Two
// passes alternate until a fixpoint:
//
//   - chunk deletion (ddmin-style): contiguous chunks of halving sizes are
//     deleted greedily as long as the failure survives;
//   - canonicalizing adjacent swaps: out-of-pid-order neighbours are
//     swapped when the failure survives, which both normalizes the
//     counterexample and can merge a process's steps into runs that the
//     next deletion pass removes wholesale.
//
// The swap pass only ever sorts toward ascending pid order, so it cannot
// oscillate; every other accepted edit strictly shortens the schedule, so
// the whole loop terminates. cfg must make the run deterministic (replay
// tosses, not random ones); RunSchedule's skip-disabled semantics keep
// every candidate well-formed.
func Shrink(cfg Config, schedule []int, kind FailureKind) []int {
	fails := func(cand []int) bool {
		rec, err := RunSchedule(cfg, cand)
		if err != nil {
			return false
		}
		return rec.Failure != nil && rec.Failure.Kind == kind
	}
	cur := append([]int(nil), schedule...)
	if !fails(cur) {
		// Not reproducible under cfg (e.g. nondeterministic tosses);
		// return the input untouched rather than "minimize" noise.
		return cur
	}
	for changed := true; changed; {
		changed = false
		for size := len(cur) / 2; size >= 1; size /= 2 {
			for start := 0; start+size <= len(cur); {
				cand := make([]int, 0, len(cur)-size)
				cand = append(cand, cur[:start]...)
				cand = append(cand, cur[start+size:]...)
				if fails(cand) {
					cur = cand
					changed = true
				} else {
					start++
				}
			}
		}
		for i := 0; i+1 < len(cur); i++ {
			if cur[i] <= cur[i+1] {
				continue
			}
			cand := append([]int(nil), cur...)
			cand[i], cand[i+1] = cand[i+1], cand[i]
			if fails(cand) {
				cur = cand
				changed = true
			}
		}
	}
	return cur
}
