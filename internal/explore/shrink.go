package explore

import "context"

// Shrink minimizes a failing schedule: it returns a (usually much shorter)
// schedule that still produces a failure of the same kind under cfg. Two
// passes alternate until a fixpoint:
//
//   - chunk deletion (ddmin-style): contiguous chunks of halving sizes are
//     deleted greedily as long as the failure survives;
//   - canonicalizing adjacent swaps: out-of-pid-order neighbours are
//     swapped when the failure survives, which both normalizes the
//     counterexample and can merge a process's steps into runs that the
//     next deletion pass removes wholesale.
//
// The swap pass only ever sorts toward ascending pid order, so it cannot
// oscillate; every other accepted edit strictly shortens the schedule, so
// the whole loop terminates. cfg must make the run deterministic (replay
// tosses, not random ones); RunSchedule's skip-disabled semantics keep
// every candidate well-formed.
func Shrink(cfg Config, schedule []int, kind FailureKind) []int {
	return ShrinkCtx(context.Background(), cfg, schedule, kind)
}

// ShrinkCtx is Shrink under a context: cancellation is checked between
// candidate runs, and on ctx done the best schedule found so far is
// returned immediately. Every returned schedule — cancelled or not — still
// fails with the requested kind (or is the untouched input when the input
// itself does not reproduce), so callers under a deadline always hold a
// valid counterexample, just possibly a longer one.
func ShrinkCtx(ctx context.Context, cfg Config, schedule []int, kind FailureKind) []int {
	cancelled := func() bool {
		select {
		case <-ctx.Done():
			return true
		default:
			return false
		}
	}
	fails := func(cand []int) bool {
		rec, err := RunSchedule(cfg, cand)
		if err != nil {
			return false
		}
		return rec.Failure != nil && rec.Failure.Kind == kind
	}
	cur := append([]int(nil), schedule...)
	if cancelled() || !fails(cur) {
		// Not reproducible under cfg (e.g. nondeterministic tosses);
		// return the input untouched rather than "minimize" noise.
		return cur
	}
	for changed := true; changed; {
		changed = false
		for size := len(cur) / 2; size >= 1; size /= 2 {
			for start := 0; start+size <= len(cur); {
				if cancelled() {
					return cur
				}
				cand := make([]int, 0, len(cur)-size)
				cand = append(cand, cur[:start]...)
				cand = append(cand, cur[start+size:]...)
				if fails(cand) {
					cur = cand
					changed = true
				} else {
					start++
				}
			}
		}
		for i := 0; i+1 < len(cur); i++ {
			if cur[i] <= cur[i+1] {
				continue
			}
			if cancelled() {
				return cur
			}
			cand := append([]int(nil), cur...)
			cand[i], cand[i+1] = cand[i+1], cand[i]
			if fails(cand) {
				cur = cand
				changed = true
			}
		}
	}
	return cur
}
