package explore

import (
	"fmt"
	"testing"
)

// TestExhaustiveGolden pins the exhaustive-search Report counters
// (States/Runs/Complete) for every construction at n ∈ {2, 3}. The counts
// were captured before the binary memo-key change (PR 6) and act as the
// correctness oracle for the memoization key: any representation change
// that alters the key's discriminating power — collapsing distinct states
// or splitting equal ones — shifts these counts and fails here, so memo
// semantics cannot silently drift.
//
// The herlihy n = 3 space (~124k runs, seconds of wall clock) is skipped
// in -short mode; group-update at n = 3 (~985k runs, minutes) stays out of
// the unit-test budget entirely — its pre-change counts were
// states=473542 runs=984578 complete=37314, recorded here for anyone
// re-validating by hand.
func TestExhaustiveGolden(t *testing.T) {
	cases := []struct {
		alg                    string
		n                      int
		states, runs, complete int
		long                   bool
	}{
		{alg: "central", n: 2, states: 20, runs: 27, complete: 6},
		{alg: "central", n: 3, states: 507, runs: 700, complete: 126},
		{alg: "group-update", n: 2, states: 384, runs: 607, complete: 48},
		{alg: "herlihy", n: 2, states: 312, runs: 499, complete: 48},
		{alg: "herlihy", n: 3, states: 59280, runs: 123631, complete: 6417, long: true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%s/n=%d", tc.alg, tc.n), func(t *testing.T) {
			if tc.long && testing.Short() {
				t.Skip("long exhaustive case skipped in -short mode")
			}
			t.Parallel()
			workers := 1
			if tc.long {
				workers = 4
			}
			rep, err := Exhaustive(Config{Alg: tc.alg, Object: "fetch-increment", N: tc.n, OpsPerProc: 1}, workers)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Failure != nil {
				t.Fatalf("unexpected failure: %v", rep.Failure)
			}
			t.Logf("%s n=%d: states=%d runs=%d complete=%d", tc.alg, tc.n, rep.States, rep.Runs, rep.Complete)
			if rep.States != tc.states || rep.Runs != tc.runs || rep.Complete != tc.complete {
				t.Errorf("got (states=%d runs=%d complete=%d), want (states=%d runs=%d complete=%d)",
					rep.States, rep.Runs, rep.Complete, tc.states, tc.runs, tc.complete)
			}
		})
	}
}
