package explore

import (
	"fmt"
	"testing"
)

// TestExhaustiveGolden pins the exhaustive-search Report counters
// (States/Runs/Complete/Truncated) for every construction at n ∈ {2, 3}
// and for the algorithm zoo's randomized TAS protocols. The construction
// counts were captured before the binary memo-key change (PR 6) and act as
// the correctness oracle for the memoization key: any representation change
// that alters the key's discriminating power — collapsing distinct states
// or splitting equal ones — shifts these counts and fails here, so memo
// semantics cannot silently drift. The TAS counts were captured when the
// zoo landed and additionally pin the raw-mode budget-truncation frontier:
// the randomized protocols livelock under symmetric schedules, so the
// schedule space is only finite because the budget cuts it off, and
// Truncated counts exactly the cut leaves.
//
// The herlihy n = 3 space (~124k runs, seconds of wall clock) and the
// tournament-TAS n = 3 space (~485k runs) are skipped in -short mode;
// group-update at n = 3 (~985k runs, minutes) stays out of the unit-test
// budget entirely — its pre-change counts were
// states=473542 runs=984578 complete=37314, recorded here for anyone
// re-validating by hand.
func TestExhaustiveGolden(t *testing.T) {
	cases := []struct {
		alg                               string
		object                            string
		n                                 int
		states, runs, complete, truncated int
		long                              bool
	}{
		{alg: "central", object: "fetch-increment", n: 2, states: 20, runs: 27, complete: 6},
		{alg: "central", object: "fetch-increment", n: 3, states: 507, runs: 700, complete: 126},
		{alg: "group-update", object: "fetch-increment", n: 2, states: 384, runs: 607, complete: 48},
		{alg: "herlihy", object: "fetch-increment", n: 2, states: 312, runs: 499, complete: 48},
		{alg: "herlihy", object: "fetch-increment", n: 3, states: 59280, runs: 123631, complete: 6417, long: true},
		{alg: "tas-tv", object: "tas", n: 2, states: 532, runs: 957, complete: 50, truncated: 218},
		{alg: "tas-tournament", object: "tas", n: 2, states: 1594, runs: 2741, complete: 140, truncated: 536},
		{alg: "tas-tournament", object: "tas", n: 3, states: 186358, runs: 485372, complete: 3752, truncated: 108590, long: true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%s/n=%d", tc.alg, tc.n), func(t *testing.T) {
			if tc.long && testing.Short() {
				t.Skip("long exhaustive case skipped in -short mode")
			}
			t.Parallel()
			workers := 1
			if tc.long {
				workers = 4
			}
			rep, err := Exhaustive(Config{Alg: tc.alg, Object: tc.object, N: tc.n, OpsPerProc: 1}, workers)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Failure != nil {
				t.Fatalf("unexpected failure: %v", rep.Failure)
			}
			t.Logf("%s n=%d: states=%d runs=%d complete=%d truncated=%d", tc.alg, tc.n, rep.States, rep.Runs, rep.Complete, rep.Truncated)
			if rep.States != tc.states || rep.Runs != tc.runs || rep.Complete != tc.complete || rep.Truncated != tc.truncated {
				t.Errorf("got (states=%d runs=%d complete=%d truncated=%d), want (states=%d runs=%d complete=%d truncated=%d)",
					rep.States, rep.Runs, rep.Complete, rep.Truncated, tc.states, tc.runs, tc.complete, tc.truncated)
			}
		})
	}
}
