package explore

import (
	"encoding/json"
	"fmt"
	"os"

	"jayanti98/internal/trace"
)

// Replay is a self-contained, serializable reproduction of a failing run:
// the configuration, the (shrunk) schedule, the exact coin tosses each
// process consumed, and the event log the failure produced. Re-running it
// with Verify must reproduce the failure bit-for-bit.
type Replay struct {
	Alg        string `json:"alg"`
	Object     string `json:"object"`
	N          int    `json:"n"`
	OpsPerProc int    `json:"ops_per_proc"`
	// Budget is the configured step budget (0: automatic). It matters for
	// reproducing budget-exhaustion failures.
	Budget int `json:"budget,omitempty"`
	// LLSC is the LL/SC backend the failure was found on ("" = native; see
	// llsc.ParseBackend). The backends are proven equivalent, but a replay
	// must reproduce on the backend that produced it.
	LLSC string `json:"llsc,omitempty"`
	// Seed is the fuzz sample seed the failure was found with (provenance
	// only; the schedule and tosses below are what reproduce it).
	Seed int64       `json:"seed,omitempty"`
	Kind FailureKind `json:"kind"`
	// Detail is the failure diagnosis of the recorded run.
	Detail string `json:"detail"`
	// Schedule is the failing schedule (pids, in step order).
	Schedule []int `json:"schedule"`
	// Tosses holds the coin tosses each process consumed, in toss order.
	Tosses [][]int64 `json:"tosses"`
	// Events is the recorded event log, for bit-for-bit comparison.
	Events []string `json:"events"`
	// OriginalLen is the schedule length before shrinking.
	OriginalLen int `json:"original_len,omitempty"`
}

// Config reconstructs the run configuration of the replay.
func (rp *Replay) Config() Config {
	return Config{
		Alg:        rp.Alg,
		Object:     rp.Object,
		N:          rp.N,
		OpsPerProc: rp.OpsPerProc,
		Budget:     rp.Budget,
		LLSC:       rp.LLSC,
		Tosses:     replayTosses(rp.Tosses),
	}
}

// WriteReplay persists a replay as indented JSON.
func WriteReplay(path string, rp *Replay) error {
	data, err := json.MarshalIndent(rp, "", "  ")
	if err != nil {
		return fmt.Errorf("explore: replay: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("explore: replay: %w", err)
	}
	return nil
}

// ReadReplay loads a replay written by WriteReplay.
func ReadReplay(path string) (*Replay, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("explore: replay: %w", err)
	}
	var rp Replay
	if err := json.Unmarshal(data, &rp); err != nil {
		return nil, fmt.Errorf("explore: replay %s: %w", path, err)
	}
	return &rp, nil
}

// Verify re-executes the replay and checks that it reproduces bit-for-bit:
// same failure kind, same executed schedule, and an event-for-event
// identical log. It returns the failing run's record and "" on success, or
// a description of the first divergence.
func Verify(rp *Replay) (*RunRecord, string, error) {
	rec, err := RunSchedule(rp.Config(), rp.Schedule)
	if err != nil {
		return nil, "", err
	}
	if rec.Failure == nil {
		return rec, fmt.Sprintf("recorded failure %q did not reproduce (clean run of %d steps)", rp.Kind, rec.Steps), nil
	}
	if rec.Failure.Kind != rp.Kind {
		return rec, fmt.Sprintf("failure kind: recorded %q, got %q", rp.Kind, rec.Failure.Kind), nil
	}
	if d := trace.DiffLines("schedule", renderPids(rp.Schedule), renderPids(rec.Schedule)); d != "" {
		return rec, d, nil
	}
	if d := trace.DiffLines("events", rp.Events, rec.Events); d != "" {
		return rec, d, nil
	}
	return rec, "", nil
}

func renderPids(pids []int) []string {
	out := make([]string, len(pids))
	for i, p := range pids {
		out[i] = fmt.Sprintf("p%d", p)
	}
	return out
}
