package explore

import "math/rand"

// MutateSchedule derives a new schedule prefix from a corpus parent by
// applying 1–3 random structural edits:
//
//   - truncate: drop a random suffix (coverage often lives in prefixes, and
//     RunGuided extends every prefix with a fresh random walk anyway);
//   - splice: duplicate a contiguous chunk at another position, modelling
//     "replay this contention window again";
//   - pid swap: rewrite every occurrence of one pid inside a window to
//     another pid, moving a contention pattern onto a different process
//     pair;
//   - insert: add a single random step at a random position.
//
// The result is never empty, every entry is a pid in [0, n), and the parent
// is not modified. The caller owns rng, so mutation streams are exactly as
// deterministic as their seeds — which is what keeps campaign corpus
// evolution reproducible.
func MutateSchedule(rng *rand.Rand, parent []int, n int) []int {
	if n < 1 {
		n = 1
	}
	cur := append([]int(nil), parent...)
	if len(cur) == 0 {
		cur = append(cur, rng.Intn(n))
	}
	edits := 1 + rng.Intn(3)
	for e := 0; e < edits; e++ {
		switch rng.Intn(4) {
		case 0: // truncate a suffix, keeping at least one step
			if len(cur) > 1 {
				cur = cur[:1+rng.Intn(len(cur)-1)]
			}
		case 1: // splice: duplicate a chunk at another position
			chunk := 1 + rng.Intn(minInt(4, len(cur)))
			src := rng.Intn(len(cur) - chunk + 1)
			dst := rng.Intn(len(cur) + 1)
			dup := append([]int(nil), cur[src:src+chunk]...)
			out := make([]int, 0, len(cur)+chunk)
			out = append(out, cur[:dst]...)
			out = append(out, dup...)
			out = append(out, cur[dst:]...)
			cur = out
		case 2: // pid swap within a window
			if n > 1 {
				win := 1 + rng.Intn(minInt(8, len(cur)))
				start := rng.Intn(len(cur) - win + 1)
				from := rng.Intn(n)
				to := rng.Intn(n)
				for i := start; i < start+win; i++ {
					if cur[i] == from {
						cur[i] = to
					}
				}
			}
		case 3: // point insert
			pos := rng.Intn(len(cur) + 1)
			out := make([]int, 0, len(cur)+1)
			out = append(out, cur[:pos]...)
			out = append(out, rng.Intn(n))
			out = append(out, cur[pos:]...)
			cur = out
		}
	}
	for i, pid := range cur {
		if pid < 0 || pid >= n {
			cur[i] = ((pid % n) + n) % n
		}
	}
	return cur
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
