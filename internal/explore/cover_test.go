package explore

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"jayanti98/internal/machine"
)

func guidedConfig() Config {
	return Config{Alg: "group-update", Object: "fetch-increment", N: 2, OpsPerProc: 1}
}

func TestRunGuidedDeterministic(t *testing.T) {
	cfg := guidedConfig()
	for _, prefix := range [][]int{nil, {0, 0, 1, 1, 0}} {
		a, err := RunGuided(cfg, prefix, 42, 2)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunGuided(cfg, prefix, 42, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Schedule, b.Schedule) {
			t.Fatalf("schedules differ: %v vs %v", a.Schedule, b.Schedule)
		}
		if !reflect.DeepEqual(a.Trace, b.Trace) {
			t.Fatalf("traces differ for prefix %v", prefix)
		}
		if len(a.Trace) == 0 {
			t.Fatal("empty trace — the initial state must always be marked")
		}
		if !a.Completed {
			t.Fatalf("run did not complete: %+v", a.RunRecord)
		}
	}
}

func TestRunGuidedSeedsDiverge(t *testing.T) {
	cfg := guidedConfig()
	a, err := RunGuided(cfg, nil, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	diverged := false
	for seed := int64(2); seed < 12 && !diverged; seed++ {
		b, err := RunGuided(cfg, nil, seed, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Schedule, b.Schedule) {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("10 different seeds all produced the same schedule")
	}
}

// TestRunGuidedReplaysPrefix checks the prefix semantics: replaying a
// completed run's full schedule as the prefix reproduces the run exactly
// (the random tail never engages because the run is already done).
func TestRunGuidedReplaysPrefix(t *testing.T) {
	cfg := guidedConfig()
	orig, err := RunGuided(cfg, nil, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := RunGuided(cfg, orig.Schedule, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig.Schedule, replay.Schedule) {
		t.Fatalf("prefix replay diverged: %v vs %v", orig.Schedule, replay.Schedule)
	}
	if !reflect.DeepEqual(orig.Trace, replay.Trace) {
		t.Fatal("prefix replay reached a different trace")
	}
}

// TestRunGuidedTraceEngineIndependent is the coverage layer's load-bearing
// property: the state digests are computed from machine history digests and
// memory fingerprints that the lockstep harness proves equal across
// engines, so a corpus built on one engine is valid for the other.
func TestRunGuidedTraceEngineIndependent(t *testing.T) {
	cfg := guidedConfig()
	traces := make(map[machine.Engine][][]uint64)
	for _, eng := range []machine.Engine{machine.EngineGoroutine, machine.EngineVM} {
		prev := machine.SetDefaultEngine(eng)
		for seed := int64(0); seed < 8; seed++ {
			rec, err := RunGuided(cfg, nil, seed, 2)
			if err != nil {
				machine.SetDefaultEngine(prev)
				t.Fatal(err)
			}
			traces[eng] = append(traces[eng], rec.Trace)
		}
		machine.SetDefaultEngine(prev)
	}
	if !reflect.DeepEqual(traces[machine.EngineGoroutine], traces[machine.EngineVM]) {
		t.Fatal("state-digest traces differ between engines")
	}
}

func TestCoverageAddTraceAndMerge(t *testing.T) {
	c := NewCoverage()
	fresh := c.AddTrace([]uint64{1, 2, 3, 2})
	if !reflect.DeepEqual(fresh, []uint64{1, 2, 3}) {
		t.Fatalf("fresh = %v", fresh)
	}
	if fresh = c.AddTrace([]uint64{3, 4}); !reflect.DeepEqual(fresh, []uint64{4}) {
		t.Fatalf("second AddTrace fresh = %v", fresh)
	}
	if c.Len() != 4 || !c.Has(4) || c.Has(9) {
		t.Fatalf("coverage state wrong: len=%d", c.Len())
	}

	other := NewCoverageFrom([]uint64{4, 5})
	if added := c.Merge(other); added != 1 {
		t.Fatalf("Merge added %d, want 1", added)
	}
	if got := c.Snapshot(); !reflect.DeepEqual(got, []uint64{1, 2, 3, 4, 5}) {
		t.Fatalf("Snapshot = %v", got)
	}

	// Digest is order-independent: building the same set in a different
	// insertion order yields the same digest.
	d1 := NewCoverageFrom([]uint64{5, 1, 3, 2, 4}).Digest()
	if d1 != c.Digest() {
		t.Fatal("digest depends on insertion order")
	}
	if NewCoverage().Digest() == d1 {
		t.Fatal("empty and non-empty coverage share a digest")
	}
}

func TestMutateScheduleValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	parent := []int{0, 1, 0, 1, 1, 0}
	for i := 0; i < 500; i++ {
		n := 2 + rng.Intn(3)
		child := MutateSchedule(rng, parent, n)
		if len(child) == 0 {
			t.Fatal("empty child")
		}
		for _, pid := range child {
			if pid < 0 || pid >= n {
				t.Fatalf("pid %d out of [0, %d)", pid, n)
			}
		}
	}
	if !reflect.DeepEqual(parent, []int{0, 1, 0, 1, 1, 0}) {
		t.Fatalf("parent mutated in place: %v", parent)
	}
	// Even an empty parent yields a usable child.
	if child := MutateSchedule(rng, nil, 2); len(child) == 0 {
		t.Fatal("empty child from empty parent")
	}
}

func TestMutateScheduleDeterministic(t *testing.T) {
	parent := []int{0, 1, 1, 0, 1}
	a := MutateSchedule(rand.New(rand.NewSource(99)), parent, 2)
	b := MutateSchedule(rand.New(rand.NewSource(99)), parent, 2)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different children: %v vs %v", a, b)
	}
}

// TestShrinkCtxCancelled checks the satellite contract: a cancelled
// context stops shrinking early but still returns a failing schedule (the
// best found so far), never a broken or empty one.
func TestShrinkCtxCancelled(t *testing.T) {
	cfg := Config{Alg: "central", Object: "fetch-increment", N: 3, OpsPerProc: 2}
	rec, err := RunSchedule(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// An already-cancelled context must return the input schedule
	// unchanged — no shrink pass may start after cancellation.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	got := ShrinkCtx(ctx, cfg, rec.Schedule, "")
	if !reflect.DeepEqual(got, rec.Schedule) {
		t.Fatalf("cancelled shrink altered the schedule: %v vs %v", got, rec.Schedule)
	}
}
