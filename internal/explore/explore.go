// Package explore is a schedule-exploration harness for the universal
// constructions (package universal): a bounded model checker over process
// interleavings.
//
// A *schedule* is a sequence of process ids; step i of a run delivers the
// pending shared-memory operation of process schedule[i] to the concurrent
// memory (package llsc) and resumes that process, exactly the step
// granularity of sched.Execute. The harness runs a fixed workload — every
// process performs OpsPerProc operations on the construction under test —
// and checks the resulting concurrent history for linearizability two ways:
// incrementally after every event with a linz.Online checker (so violations
// are flagged at the precise event that causes them), and post-hoc with
// linz.Check on completed runs (cross-validating the two checkers against
// each other).
//
// Three entry points:
//
//   - Exhaustive enumerates every schedule up to the step budget by
//     depth-first search, re-executing each prefix from scratch (machine
//     goroutines cannot be forked) and pruning prefixes that reach an
//     already-visited state. The memoization key is the product of the
//     machine history digests (operational local state, Lemma 5.2), the
//     memory fingerprint, and the online checker's configuration-set key —
//     the last component is what makes pruning sound for linearizability:
//     two prefixes that agree on machines and memory can still admit
//     different real-time orders, and the config set captures exactly that
//     residue.
//   - Fuzz samples random schedules (and coin tosses) for sizes where
//     exhaustive search is infeasible, with per-sample seeds derived via
//     sweep.Derive so every sample is reproducible in isolation.
//   - RunSchedule replays one explicit schedule; Replay files (replay.go)
//     persist a failing schedule plus its toss assignment so a failure
//     reproduces bit-for-bit later.
//
// Failures are minimized by Shrink (shrink.go) before being persisted.
package explore

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"jayanti98/internal/algos"
	"jayanti98/internal/algos/bwllsc"
	"jayanti98/internal/linz"
	"jayanti98/internal/llsc"
	"jayanti98/internal/machine"
	"jayanti98/internal/objtype"
	"jayanti98/internal/shmem"
	"jayanti98/internal/universal"
)

// BrokenGroupUpdate names the deliberately broken construction variant
// (universal.NewBrokenGroupUpdate, behind the "mutation" build tag) that
// the harness's own tests use to prove the search actually detects bugs.
const BrokenGroupUpdate = "group-update-broken"

// Config describes one system under exploration.
type Config struct {
	// Alg is the system under test: a construction name (universal.Names(),
	// or BrokenGroupUpdate with -tags mutation), or a direct algorithm from
	// the zoo registry (algos.Names()). A construction runs the Object
	// workload through universal.Construction.Invoke; a zoo algorithm IS
	// the object — each process performs its one operation by running the
	// protocol, and Object must name the workload the algorithm implements
	// (algos.Spec.Object).
	Alg string
	// Object is the workload name (see Workloads).
	Object string
	// N is the number of processes.
	N int
	// OpsPerProc is how many operations each process performs. Zoo
	// algorithms are one-shot: OpsPerProc must be 1.
	OpsPerProc int
	// Budget bounds total shared-memory steps; 0 picks a default (see
	// AutoBudget). For a construction, exhausting it indicates a liveness
	// bug and fails the run; for a zoo algorithm — randomized, so not
	// wait-free against a symmetric adversary — it truncates the run
	// instead (RunRecord.Truncated).
	Budget int
	// Tosses supplies coin-toss outcomes (nil: machine.ZeroTosses).
	// Exhaustive exploration requires a deterministic assignment.
	Tosses machine.TossAssignment
	// LLSC selects the shared-memory backend: "" (process default, see
	// llsc.DefaultBackend), "native", or "bw" (the Blelloch–Wei
	// LL/SC-from-CAS construction, package algos/bwllsc). The two backends
	// are fingerprint-identical, so exhaustive counts do not depend on the
	// choice — which is exactly what the differential harness pins.
	LLSC string
}

// workload pairs a sequential type with a pure choice of the i-th
// operation of process pid. Op functions must be deterministic: replay
// depends on a (pid, i) pair always denoting the same operation.
type workload struct {
	typ func() objtype.Type
	op  func(pid, i int) objtype.Op
}

var workloads = map[string]workload{
	// Every process performs one test&set; exactly one winner (response 0)
	// may exist, and no completed loser may precede the winner in real
	// time. This is both a construction workload and the object the zoo's
	// TAS algorithms implement directly.
	"tas": {
		typ: func() objtype.Type { return objtype.NewTAS() },
		op:  func(int, int) objtype.Op { return objtype.Op{Name: objtype.OpTestAndSet} },
	},
	// Every process fetch&increments; duplicate or skipped tickets are the
	// classic symptom of a broken linearization order.
	"fetch-increment": {
		typ: func() objtype.Type { return objtype.NewFetchIncrement(16) },
		op:  func(int, int) objtype.Op { return objtype.Op{Name: objtype.OpFetchIncrement} },
	},
	// Even pids enqueue unique values, odd pids dequeue; exercises a
	// container type where responses depend on the full order.
	"queue": {
		typ: func() objtype.Type { return objtype.NewEmptyQueue() },
		op: func(pid, i int) objtype.Op {
			if pid%2 == 0 {
				return objtype.Op{Name: objtype.OpEnqueue, Arg: fmt.Sprintf("p%d#%d", pid, i)}
			}
			return objtype.Op{Name: objtype.OpDequeue}
		},
	},
}

// Workloads lists the available workload names, sorted.
func Workloads() []string {
	names := make([]string, 0, len(workloads))
	for name := range workloads {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func workloadFor(name string) (workload, error) {
	w, ok := workloads[name]
	if !ok {
		return workload{}, fmt.Errorf("explore: unknown workload %q (want %s)", name, strings.Join(Workloads(), ", "))
	}
	return w, nil
}

// newConstruction resolves cfg.Alg, including the mutation-tagged broken
// variant.
func newConstruction(name string, typ objtype.Type, n int) (universal.Construction, error) {
	if name == BrokenGroupUpdate {
		return universal.NewBrokenGroupUpdate(typ, n, 0)
	}
	return universal.New(name, typ, n, 0)
}

// AutoBudget returns the step budget used when Config.Budget is 0: for a
// wait-free construction, the worst-case cost of the whole workload plus
// slack; for a lock-free one (StepBound 0), a bound derived from the fact
// that with a finite workload every failed SC is charged to some other
// process's success, so runs still terminate.
func AutoBudget(c universal.Construction, n, opsPerProc int) int {
	total := n * opsPerProc
	if b := c.StepBound(); b > 0 {
		return total*b + n + 4
	}
	return 2*total*(total+1) + total + n + 8
}

func (cfg Config) tosses() machine.TossAssignment {
	if cfg.Tosses == nil {
		return machine.ZeroTosses
	}
	return cfg.Tosses
}

func (cfg Config) validate() error {
	if cfg.N < 1 {
		return fmt.Errorf("explore: n must be >= 1, got %d", cfg.N)
	}
	if cfg.OpsPerProc < 1 {
		return fmt.Errorf("explore: ops per process must be >= 1, got %d", cfg.OpsPerProc)
	}
	if _, err := llsc.ParseBackend(cfg.LLSC); err != nil {
		return err
	}
	return nil
}

// newBackend builds the configured shared-memory backend.
func (cfg Config) newBackend() (llsc.Backend, error) {
	kind, err := llsc.ParseBackend(cfg.LLSC)
	if err != nil {
		return nil, err
	}
	if kind == llsc.BackendBW {
		return bwllsc.New(cfg.N), nil
	}
	return llsc.New(cfg.N), nil
}

// FailureKind classifies what went wrong in a run.
type FailureKind string

// The failure kinds. FailInternal marks a harness self-check failure — the
// online and post-hoc checkers disagreeing — and is always a bug in this
// package, never in the construction.
const (
	FailCrash           FailureKind = "crash"
	FailNonLinearizable FailureKind = "non-linearizable"
	FailBudgetExhausted FailureKind = "budget-exhausted"
	FailInternal        FailureKind = "internal"
)

// Failure describes one detected property violation.
type Failure struct {
	Kind FailureKind `json:"kind"`
	// Detail is a human-readable diagnosis (e.g. the online checker's
	// violation message).
	Detail string `json:"detail"`
	// Step is the number of shared-memory steps executed when the failure
	// was detected.
	Step int `json:"step"`
}

func (f *Failure) String() string {
	return fmt.Sprintf("%s at step %d: %s", f.Kind, f.Step, f.Detail)
}

// eventKind distinguishes the two history events.
type eventKind int

const (
	evInvoke eventKind = iota + 1
	evReturn
)

// event is one history event recorded by a workload body. The global event
// order is the real-time order of the run; an event's index is its
// timestamp.
type event struct {
	proc int
	kind eventKind
	op   objtype.Op
	resp objtype.Value
}

func (e event) String() string {
	if e.kind == evInvoke {
		return fmt.Sprintf("p%d invoke %v", e.proc, e.op)
	}
	return fmt.Sprintf("p%d return %v -> %v", e.proc, e.op, e.resp)
}

// eventLog is the shared history log. Appends happen on workload-body
// goroutines and reads on the engine goroutine, but never concurrently:
// a body appends only between two yields to the engine, and the engine
// reads only after receiving the body's next action, so every append
// happens-before every subsequent read (the machine's channels carry the
// ordering). The one exception — machine startup, when all bodies run
// concurrently until their first yield — is closed by the leading marker
// toss in the body (see runner's body closure).
type eventLog struct {
	events []event
}

// pendingOp is a recorded invocation awaiting its return event.
type pendingOp struct {
	op     objtype.Op
	invoke int64
}

// RunRecord is the observable outcome of one run.
type RunRecord struct {
	// Schedule is the executed schedule: the pid of every step actually
	// delivered (scheduled pids that were not enabled are skipped and do
	// not appear).
	Schedule []int
	// Events is the rendered event log, in real-time order.
	Events []string
	// Tosses holds the coin-toss outcomes each process consumed.
	Tosses [][]int64
	// Failure is the detected violation, nil for a clean run.
	Failure *Failure
	// Completed reports whether every process terminated.
	Completed bool
	// Truncated reports that a zoo-algorithm run hit its step budget with
	// processes still live — expected for randomized algorithms under
	// adversarial schedules, so not a Failure. Always false for
	// constructions (their budget exhaustion is FailBudgetExhausted).
	Truncated bool
	// Steps is the number of shared-memory steps executed.
	Steps int
}

// runner drives one run step by step. It is the single-goroutine engine
// that Exhaustive, Fuzz, RunSchedule and Shrink all share.
type runner struct {
	cfg    Config
	budget int
	// Exactly one of cons/raw describes the system: cons invokes workload
	// ops through a universal construction; raw runs a zoo algorithm whose
	// whole per-process run is one operation (events are synthesized by the
	// engine — invoke at a process's first delivered step, return at its
	// termination).
	cons    universal.Construction
	raw     bool
	spec    algos.Spec
	typ     objtype.Type // the sequential spec the checkers run against
	invoked []bool       // raw mode: pids whose invoke event was emitted
	mem     llsc.Backend
	ms      []*machine.Machine
	log     *eventLog
	ta      machine.TossAssignment

	online   *linz.Online
	consumed int // prefix of log already fed to the checker
	pending  map[int]pendingOp
	hist     []linz.Op // completed ops, in return order

	tossLog  [][]int64
	executed []int
	steps    int
	fail     *Failure
	closed   bool
}

// newRunner builds the system and advances every process to its first
// shared-memory operation (or termination). The returned runner must be
// closed.
func newRunner(cfg Config) (*runner, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if spec, ok := algos.For(cfg.Alg); ok {
		return newRawRunner(cfg, spec)
	}
	w, err := workloadFor(cfg.Object)
	if err != nil {
		return nil, err
	}
	typ := w.typ()
	cons, err := newConstruction(cfg.Alg, typ, cfg.N)
	if err != nil {
		return nil, err
	}
	budget := cfg.Budget
	if budget == 0 {
		budget = AutoBudget(cons, cfg.N, cfg.OpsPerProc)
	}
	mem, err := cfg.newBackend()
	if err != nil {
		return nil, err
	}
	r := &runner{
		cfg:     cfg,
		budget:  budget,
		cons:    cons,
		typ:     typ,
		mem:     mem,
		log:     &eventLog{},
		ta:      cfg.tosses(),
		online:  linz.NewOnline(typ, cfg.N),
		pending: make(map[int]pendingOp),
		tossLog: make([][]int64, cfg.N),
	}
	// The body's one leading Toss is a start barrier: machines all run
	// concurrently until their first yield, so nothing may touch the shared
	// event log before it. Everything after is serialized by the engine.
	alg := machine.New(cfg.Alg+"+"+cfg.Object, func(e *machine.Env) shmem.Value {
		e.Toss()
		pid := e.ID()
		for i := 0; i < cfg.OpsPerProc; i++ {
			op := w.op(pid, i)
			r.log.events = append(r.log.events, event{proc: pid, kind: evInvoke, op: op})
			resp := cons.Invoke(e, op)
			r.log.events = append(r.log.events, event{proc: pid, kind: evReturn, op: op, resp: resp})
		}
		return nil
	})
	r.ms = machine.StartAll(alg, cfg.N)
	for pid := 0; pid < cfg.N && r.fail == nil; pid++ {
		r.advance(pid)
	}
	return r, nil
}

// newRawRunner builds a runner for a zoo algorithm (see Config.Alg). The
// algorithm's machines run the protocol directly — no construction wrapper,
// no event-appending body closure, so compiled algorithms run on either
// engine. History events are synthesized by the engine instead: the invoke
// of a process's one operation at its first delivered shared step, the
// return at its termination. A process scheduled for no steps has therefore
// not invoked, which is what lets the checker hold zoo algorithms to the
// real-time order (a completed loser before the winner's first step is a
// genuine test&set violation, and the doorway-less tournament mutant would
// produce exactly that).
func newRawRunner(cfg Config, spec algos.Spec) (*runner, error) {
	if cfg.Object != spec.Object {
		return nil, fmt.Errorf("explore: algorithm %s implements workload %q, got %q", spec.Name, spec.Object, cfg.Object)
	}
	if cfg.OpsPerProc != 1 {
		return nil, fmt.Errorf("explore: algorithm %s is one-shot: ops per process must be 1, got %d", spec.Name, cfg.OpsPerProc)
	}
	alg, err := algos.New(cfg.Alg, cfg.N)
	if err != nil {
		return nil, err
	}
	typ := spec.Type(cfg.N)
	budget := cfg.Budget
	if budget == 0 {
		budget = spec.Budget(cfg.N)
	}
	mem, err := cfg.newBackend()
	if err != nil {
		return nil, err
	}
	r := &runner{
		cfg:     cfg,
		budget:  budget,
		raw:     true,
		spec:    spec,
		typ:     typ,
		invoked: make([]bool, cfg.N),
		mem:     mem,
		log:     &eventLog{},
		ta:      cfg.tosses(),
		online:  linz.NewOnline(typ, cfg.N),
		pending: make(map[int]pendingOp),
		tossLog: make([][]int64, cfg.N),
	}
	r.ms = machine.StartAll(alg, cfg.N)
	for pid := 0; pid < cfg.N && r.fail == nil; pid++ {
		r.advance(pid)
	}
	return r, nil
}

func (r *runner) close() {
	if r.closed {
		return
	}
	r.closed = true
	machine.CloseAll(r.ms)
}

// advance drains pid's coin tosses until its next shared-memory operation,
// return, or crash, feeding freshly recorded history events to the online
// checker along the way.
func (r *runner) advance(pid int) {
	m := r.ms[pid]
	for {
		a := m.Peek()
		// Receiving the action synchronizes with everything the body did
		// before yielding, including its event-log appends.
		r.drainEvents()
		if r.fail != nil {
			return
		}
		switch a.Kind {
		case machine.ActToss:
			v := r.ta(pid, m.NumTosses())
			r.tossLog[pid] = append(r.tossLog[pid], v)
			m.DeliverToss(v)
		case machine.ActCrash:
			r.setFailure(FailCrash, fmt.Sprintf("process %d: %v", pid, m.Crashed()))
			return
		default: // ActOp or ActReturn
			return
		}
	}
}

// drainEvents feeds new event-log entries to the online checker and the
// accumulating history.
func (r *runner) drainEvents() {
	for ; r.consumed < len(r.log.events); r.consumed++ {
		ev := r.log.events[r.consumed]
		ts := int64(r.consumed + 1)
		var err error
		if ev.kind == evInvoke {
			r.pending[ev.proc] = pendingOp{op: ev.op, invoke: ts}
			err = r.online.Invoke(ev.proc, ev.op)
		} else {
			po := r.pending[ev.proc]
			delete(r.pending, ev.proc)
			r.hist = append(r.hist, linz.Op{Proc: ev.proc, Op: ev.op, Response: ev.resp, Invoke: po.invoke, Return: ts})
			err = r.online.Return(ev.proc, ev.resp)
		}
		if err != nil {
			r.setFailure(FailInternal, err.Error())
			return
		}
		if !r.online.Ok() {
			r.consumed++
			r.setFailure(FailNonLinearizable, r.online.Violation())
			return
		}
	}
}

func (r *runner) setFailure(kind FailureKind, detail string) {
	if r.fail == nil {
		r.fail = &Failure{Kind: kind, Detail: detail, Step: r.steps}
	}
}

// enabled returns the pids with a pending shared-memory operation, sorted.
func (r *runner) enabled() []int {
	var out []int
	for pid := range r.ms {
		if r.isEnabled(pid) {
			out = append(out, pid)
		}
	}
	return out
}

func (r *runner) isEnabled(pid int) bool {
	if r.fail != nil {
		return false
	}
	if r.truncated() {
		// A zoo algorithm out of budget is out of schedule space: nothing
		// is enabled, and the run records as truncated rather than failed.
		return false
	}
	m := r.ms[pid]
	if m.Terminated() || m.Crashed() != nil {
		return false
	}
	return m.Peek().Kind == machine.ActOp
}

// truncated reports whether a zoo-algorithm run has exhausted its budget
// with processes still live.
func (r *runner) truncated() bool {
	return r.raw && r.steps >= r.budget && !r.done()
}

// done reports whether every process terminated.
func (r *runner) done() bool {
	for _, m := range r.ms {
		if !m.Terminated() {
			return false
		}
	}
	return true
}

// step delivers pid's pending operation to the memory and advances pid to
// its next yield. It reports whether a step was executed; a disabled pid
// (terminated, or the run already failed) is skipped.
func (r *runner) step(pid int) bool {
	if pid < 0 || pid >= r.cfg.N || !r.isEnabled(pid) {
		return false
	}
	if r.steps >= r.budget {
		// Unreachable in raw mode: isEnabled already gates on the budget
		// there, so only constructions — where exhaustion is a liveness
		// bug — reach this branch. The attempted step is recorded in the
		// schedule even though it was never delivered: replaying the
		// schedule must re-attempt it so the failure reproduces at the
		// same point.
		r.executed = append(r.executed, pid)
		r.setFailure(FailBudgetExhausted, fmt.Sprintf("budget %d exhausted with %d processes live", r.budget, len(r.enabled())))
		return false
	}
	m := r.ms[pid]
	if r.raw && !r.invoked[pid] {
		r.invoked[pid] = true
		r.log.events = append(r.log.events, event{proc: pid, kind: evInvoke, op: r.spec.Op})
	}
	a := m.Peek()
	m.DeliverOpResponse(r.mem.Apply(pid, a.Op))
	r.steps++
	r.executed = append(r.executed, pid)
	r.advance(pid)
	if r.raw && m.Terminated() {
		r.log.events = append(r.log.events, event{proc: pid, kind: evReturn, op: r.spec.Op, resp: m.ReturnValue()})
		r.drainEvents()
	}
	return true
}

// appendMemoKey appends the product state for exhaustive pruning to dst:
// machine history digests (operational local state, Lemma 5.2), the memory
// fingerprint, and the online checker's config-set key (the real-time
// linearization residue). Two prefixes with equal keys have identical
// futures under identical schedule suffixes.
//
// The key is compact binary, not a rendered string (DESIGN §11): per
// machine a one-byte enabled flag, a uvarint event count and the 8-byte
// FNV-1a history sum; then the memory's self-delimiting binary fingerprint
// (llsc.Memory.AppendFingerprint); then the length-prefixed checker key.
// Every component is either fixed-size or length-prefixed, so the
// concatenation is injective given cfg.N — no separators needed. Callers
// reuse dst across DFS nodes and convert to string only for the map lookup.
func (r *runner) appendMemoKey(dst []byte) []byte {
	for _, m := range r.ms {
		ev, sum, enabled := m.HistoryDigest()
		if !enabled {
			dst = append(dst, 0)
			continue
		}
		dst = append(dst, 1)
		dst = binary.AppendUvarint(dst, uint64(ev))
		dst = binary.LittleEndian.AppendUint64(dst, sum)
	}
	dst = r.mem.AppendFingerprint(dst)
	key := r.online.Key()
	dst = binary.AppendUvarint(dst, uint64(len(key)))
	return append(dst, key...)
}

// history assembles the linz history observed so far; incomplete
// invocations become pending ops.
func (r *runner) history() *linz.History {
	h := linz.NewHistory(r.cfg.N)
	for _, op := range r.hist {
		h.Add(op.Proc, op.Op, op.Response, op.Invoke, op.Return)
	}
	for pid := 0; pid < r.cfg.N; pid++ {
		if po, ok := r.pending[pid]; ok {
			h.AddPending(pid, po.op, po.invoke)
		}
	}
	return h
}

// finalCheck cross-validates the online checker with a post-hoc
// linz.Check on the history so far. The online checker has already
// accepted every prefix, so a post-hoc rejection means the two checkers
// disagree — a harness bug, reported as FailInternal.
func (r *runner) finalCheck() error {
	if r.fail != nil {
		return nil
	}
	res, err := linz.Check(r.typ, r.history())
	if err != nil {
		return fmt.Errorf("explore: final history check: %w", err)
	}
	if !res.Linearizable {
		r.setFailure(FailInternal, "post-hoc linz.Check rejects a history the online checker accepted")
	}
	return nil
}

// record snapshots the run.
func (r *runner) record() *RunRecord {
	rec := &RunRecord{
		Schedule:  append([]int(nil), r.executed...),
		Tosses:    make([][]int64, r.cfg.N),
		Failure:   r.fail,
		Completed: r.done(),
		Truncated: r.truncated(),
		Steps:     r.steps,
	}
	for pid := range r.tossLog {
		rec.Tosses[pid] = append([]int64(nil), r.tossLog[pid]...)
	}
	for _, ev := range r.log.events[:r.consumed] {
		rec.Events = append(rec.Events, ev.String())
	}
	return rec
}

// RunSchedule replays an explicit schedule: step i delivers the pending
// operation of process schedule[i], skipping entries whose process is not
// enabled (so shrunk schedules remain valid). The run stops at the end of
// the schedule, on the first failure, or when all processes terminate; a
// completed run is post-hoc checked with linz.Check.
func RunSchedule(cfg Config, schedule []int) (*RunRecord, error) {
	r, err := newRunner(cfg)
	if err != nil {
		return nil, err
	}
	defer r.close()
	for _, pid := range schedule {
		if r.fail != nil || r.done() {
			break
		}
		r.step(pid)
	}
	if r.done() {
		if err := r.finalCheck(); err != nil {
			return nil, err
		}
	}
	return r.record(), nil
}

// replayTosses turns a recorded per-process toss log back into a toss
// assignment (unrecorded tosses default to 0).
func replayTosses(tosses [][]int64) machine.TossAssignment {
	return func(pid, j int) int64 {
		if pid < len(tosses) && j < len(tosses[pid]) {
			return tosses[pid][j]
		}
		return 0
	}
}
