package explore

import (
	"math/rand"

	"jayanti98/internal/sweep"
)

// This file is the coverage layer of the exploration harness: state-digest
// traces of individual runs, the Coverage set campaigns (internal/campaign)
// accumulate them into, and the guided runner that replays a schedule
// prefix and finishes it with a seeded random walk.
//
// A run's coverage trace is the sequence of *product-state digests* it
// reaches — the same product state exhaustive search memoizes on
// (appendMemoKey: machine history digests, memory fingerprint, online
// checker configuration key), folded to 64 bits with FNV-1a. Two runs that
// reach the same digest reached observationally identical states, so a
// schedule is "interesting" exactly when its trace contains a digest no
// earlier input produced. The digest is engine-independent: the lockstep
// harness (internal/lockstep) proves machine digests and memory
// fingerprints agree between the goroutine interpreter and the bytecode
// VM, so a coverage map built on one engine is valid for the other.

// CoverRecord is a RunRecord plus the run's coverage trace.
type CoverRecord struct {
	*RunRecord
	// Trace holds the distinct product-state digests the run reached, in
	// first-reached order (the initial state's digest included). Repeat
	// visits within the run are not repeated in the trace.
	Trace []uint64
}

// FNV-1a 64-bit parameters (the same folding machine digests use).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvSum64 folds b with FNV-1a.
func fnvSum64(b []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// stateDigest folds the runner's current product state (appendMemoKey)
// into a 64-bit digest, reusing buf as scratch.
func (r *runner) stateDigest(buf *[]byte) uint64 {
	*buf = r.appendMemoKey((*buf)[:0])
	return fnvSum64(*buf)
}

// RunGuided executes one coverage-traced run: the schedule prefix is
// replayed first (entries whose process is not enabled are skipped, the
// RunSchedule contract), then enabled processes are stepped uniformly at
// random until every process terminates, the run fails, or the budget is
// exhausted. A nil or empty prefix is a pure random walk — exactly the
// runs Fuzz samples.
//
// Coin tosses are drawn uniformly from [0, tossRange) (tossRange <= 0
// means 2) from an RNG derived from seed, and the schedule RNG is seeded
// with seed itself — so the whole run, tosses included, is a pure function
// of (cfg, prefix, seed, tossRange) and reproduces bit-for-bit from the
// returned record's Schedule and Tosses.
func RunGuided(cfg Config, prefix []int, seed int64, tossRange int64) (*CoverRecord, error) {
	if tossRange <= 0 {
		tossRange = 2
	}
	rng := rand.New(rand.NewSource(seed))
	tossRng := rand.New(rand.NewSource(sweep.Derive(seed, 1)))
	cfg.Tosses = func(int, int) int64 { return tossRng.Int63n(tossRange) }
	r, err := newRunner(cfg)
	if err != nil {
		return nil, err
	}
	defer r.close()

	var keyBuf []byte
	seen := make(map[uint64]struct{}, 64)
	rec := &CoverRecord{}
	mark := func() {
		d := r.stateDigest(&keyBuf)
		if _, ok := seen[d]; ok {
			return
		}
		seen[d] = struct{}{}
		rec.Trace = append(rec.Trace, d)
	}
	mark() // the initial product state

	for _, pid := range prefix {
		if r.fail != nil || r.done() {
			break
		}
		if r.step(pid) {
			mark()
		}
	}
	for r.fail == nil && !r.done() {
		en := r.enabled()
		if len(en) == 0 {
			break
		}
		if r.step(en[rng.Intn(len(en))]) {
			mark()
		}
	}
	if r.done() {
		if err := r.finalCheck(); err != nil {
			return nil, err
		}
	}
	rec.RunRecord = r.record()
	return rec, nil
}

// ReplayTosses turns a recorded per-process toss log back into a toss
// assignment (unrecorded tosses default to 0) — the inverse of
// RunRecord.Tosses, exported for campaign finding reproduction.
func ReplayTosses(tosses [][]int64) func(pid, j int) int64 {
	return replayTosses(tosses)
}

// Coverage is a set of product-state digests — the novelty map a campaign
// accumulates across runs. It is not safe for concurrent use; campaigns
// merge traces single-threaded in input order, which is what makes corpus
// evolution deterministic.
type Coverage struct {
	set map[uint64]struct{}
}

// NewCoverage returns an empty coverage map.
func NewCoverage() *Coverage {
	return &Coverage{set: make(map[uint64]struct{})}
}

// NewCoverageFrom builds a coverage map holding the given digests
// (checkpoint restore).
func NewCoverageFrom(digests []uint64) *Coverage {
	c := &Coverage{set: make(map[uint64]struct{}, len(digests))}
	for _, d := range digests {
		c.set[d] = struct{}{}
	}
	return c
}

// Len returns the number of distinct digests covered.
func (c *Coverage) Len() int { return len(c.set) }

// Has reports whether d is already covered.
func (c *Coverage) Has(d uint64) bool {
	_, ok := c.set[d]
	return ok
}

// AddTrace inserts a run's trace and returns the digests that were new, in
// trace order. An empty return means the run reached nothing novel.
func (c *Coverage) AddTrace(trace []uint64) []uint64 {
	var fresh []uint64
	for _, d := range trace {
		if _, ok := c.set[d]; ok {
			continue
		}
		c.set[d] = struct{}{}
		fresh = append(fresh, d)
	}
	return fresh
}

// Merge inserts every digest of other, returning how many were new.
func (c *Coverage) Merge(other *Coverage) int {
	added := 0
	for d := range other.set {
		if _, ok := c.set[d]; !ok {
			c.set[d] = struct{}{}
			added++
		}
	}
	return added
}

// Snapshot returns the covered digests in ascending order — the canonical
// wire/checkpoint form (two equal maps snapshot to equal slices).
func (c *Coverage) Snapshot() []uint64 {
	out := make([]uint64, 0, len(c.set))
	for d := range c.set {
		out = append(out, d)
	}
	// Insertion-order independence: sort ascending.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// Digest folds the coverage set to one order-independent 64-bit value
// (each member is mixed through FNV and XOR-combined), so two maps can be
// compared cheaply in tests and stats lines.
func (c *Coverage) Digest() uint64 {
	var acc uint64
	var buf [8]byte
	for d := range c.set {
		for i := 0; i < 8; i++ {
			buf[i] = byte(d >> (8 * i))
		}
		acc ^= fnvSum64(buf[:])
	}
	return acc
}
