package explore

import (
	"testing"

	"jayanti98/internal/machine"
)

// TestExhaustiveGoldenEngines re-runs the quick exhaustive-golden cases
// under each forced execution engine and asserts the Report counters are
// identical to the pinned values. The explorer's construction closures
// carry no compiled chunk, so EngineVM exercises the documented fallback
// path to the goroutine driver; the zoo's TAS algorithms are NewCompiled
// pairs, so for them EngineVM genuinely runs the bytecode twin — the same
// counts on both engines prove the twins' yield sequences, register values
// and history digests coincide action for action. This pins that flipping
// the process-level default engine (as cmd -engine flags and LB_ENGINE do)
// cannot perturb state enumeration, memoization, or completion counting.
//
// Deliberately NOT parallel: SetDefaultEngine is process-global state.
func TestExhaustiveGoldenEngines(t *testing.T) {
	cases := []struct {
		alg                               string
		object                            string
		n                                 int
		states, runs, complete, truncated int
	}{
		{alg: "central", object: "fetch-increment", n: 2, states: 20, runs: 27, complete: 6},
		{alg: "group-update", object: "fetch-increment", n: 2, states: 384, runs: 607, complete: 48},
		{alg: "herlihy", object: "fetch-increment", n: 2, states: 312, runs: 499, complete: 48},
		{alg: "tas-tv", object: "tas", n: 2, states: 532, runs: 957, complete: 50, truncated: 218},
		{alg: "tas-tournament", object: "tas", n: 2, states: 1594, runs: 2741, complete: 140, truncated: 536},
	}
	engines := []machine.Engine{machine.EngineGoroutine, machine.EngineVM}
	for _, eng := range engines {
		eng := eng
		t.Run(eng.String(), func(t *testing.T) {
			prev := machine.SetDefaultEngine(eng)
			defer machine.SetDefaultEngine(prev)
			for _, tc := range cases {
				rep, err := Exhaustive(Config{Alg: tc.alg, Object: tc.object, N: tc.n, OpsPerProc: 1}, 1)
				if err != nil {
					t.Fatal(err)
				}
				if rep.Failure != nil {
					t.Fatalf("%s n=%d [%s]: unexpected failure: %v", tc.alg, tc.n, eng, rep.Failure)
				}
				if rep.States != tc.states || rep.Runs != tc.runs || rep.Complete != tc.complete || rep.Truncated != tc.truncated {
					t.Errorf("%s n=%d [%s]: got (states=%d runs=%d complete=%d truncated=%d), want (states=%d runs=%d complete=%d truncated=%d)",
						tc.alg, tc.n, eng, rep.States, rep.Runs, rep.Complete, rep.Truncated, tc.states, tc.runs, tc.complete, tc.truncated)
				}
			}
		})
	}
}
