package explore

import (
	"testing"

	"jayanti98/internal/machine"
)

// TestExhaustiveGoldenEngines re-runs the quick exhaustive-golden cases
// under each forced execution engine and asserts the Report counters are
// identical to the pinned values. The explorer's algorithm closures carry
// no compiled chunk, so EngineVM exercises the documented fallback path to
// the goroutine driver — this test pins that flipping the process-level
// default engine (as cmd -engine flags and LB_ENGINE do) cannot perturb
// state enumeration, memoization, or completion counting.
//
// Deliberately NOT parallel: SetDefaultEngine is process-global state.
func TestExhaustiveGoldenEngines(t *testing.T) {
	cases := []struct {
		alg                    string
		n                      int
		states, runs, complete int
	}{
		{alg: "central", n: 2, states: 20, runs: 27, complete: 6},
		{alg: "group-update", n: 2, states: 384, runs: 607, complete: 48},
		{alg: "herlihy", n: 2, states: 312, runs: 499, complete: 48},
	}
	engines := []machine.Engine{machine.EngineGoroutine, machine.EngineVM}
	for _, eng := range engines {
		eng := eng
		t.Run(eng.String(), func(t *testing.T) {
			prev := machine.SetDefaultEngine(eng)
			defer machine.SetDefaultEngine(prev)
			for _, tc := range cases {
				rep, err := Exhaustive(Config{Alg: tc.alg, Object: "fetch-increment", N: tc.n, OpsPerProc: 1}, 1)
				if err != nil {
					t.Fatal(err)
				}
				if rep.Failure != nil {
					t.Fatalf("%s n=%d [%s]: unexpected failure: %v", tc.alg, tc.n, eng, rep.Failure)
				}
				if rep.States != tc.states || rep.Runs != tc.runs || rep.Complete != tc.complete {
					t.Errorf("%s n=%d [%s]: got (states=%d runs=%d complete=%d), want (states=%d runs=%d complete=%d)",
						tc.alg, tc.n, eng, rep.States, rep.Runs, rep.Complete, tc.states, tc.runs, tc.complete)
				}
			}
		})
	}
}
