package counting

import (
	"fmt"
	"sync"
	"testing"

	"jayanti98/internal/core"
	"jayanti98/internal/llsc"
	"jayanti98/internal/machine"
	"jayanti98/internal/sched"
	"jayanti98/internal/shmem"
)

func TestWidthRoundsUpToPowerOfTwo(t *testing.T) {
	cases := map[int]int{1: 2, 2: 2, 3: 4, 5: 8, 8: 8, 9: 16}
	for in, want := range cases {
		if got := New(in, 0).Width(); got != want {
			t.Errorf("New(%d).Width() = %d, want %d", in, got, want)
		}
	}
}

func TestDepthAndRegisters(t *testing.T) {
	// Bitonic[w] has log w (log w + 1)/2 layers and w/2 balancers per
	// layer, so w·log w·(log w+1)/4 balancers total.
	for _, w := range []int{2, 4, 8, 16, 32} {
		nw := New(w, 0)
		lg := 0
		for v := w; v > 1; v /= 2 {
			lg++
		}
		wantDepth := lg * (lg + 1) / 2
		if nw.Depth() != wantDepth {
			t.Errorf("w=%d: Depth = %d, want %d", w, nw.Depth(), wantDepth)
		}
		wantBalancers := w * wantDepth / 2
		if nw.Balancers() != wantBalancers {
			t.Errorf("w=%d: Balancers = %d, want %d", w, nw.Balancers(), wantBalancers)
		}
		if nw.Registers() != wantBalancers+w {
			t.Errorf("w=%d: Registers = %d", w, nw.Registers())
		}
	}
}

// drainSequential pushes m tokens one at a time and returns their values.
func drainSequential(t *testing.T, w, m int) []int {
	t.Helper()
	mem := llsc.New(1)
	nw := New(w, 0)
	h := mem.Handle(0)
	out := make([]int, m)
	for i := range out {
		out[i] = nw.Next(h)
	}
	return out
}

func TestSequentialTokensCountPerfectly(t *testing.T) {
	// With tokens entering one at a time the network is a perfect counter:
	// the i-th token must draw exactly i.
	for _, w := range []int{2, 4, 8, 16} {
		for _, m := range []int{1, w, 3*w + 1} {
			got := drainSequential(t, w, m)
			for i, v := range got {
				if v != i {
					t.Fatalf("w=%d m=%d: token %d drew %d (sequence %v)", w, m, i, v, got)
				}
			}
		}
	}
}

func TestStepPropertyAtQuiescence(t *testing.T) {
	// After m concurrent tokens complete, the issued values must be
	// exactly {0..m−1} — the counting property — for every m, including
	// m not a multiple of the width.
	for _, w := range []int{2, 4, 8} {
		for _, m := range []int{1, 3, w, 2*w + 1, 4 * w} {
			mem := llsc.New(m)
			nw := New(w, 0)
			values := make([]int, m)
			var wg sync.WaitGroup
			wg.Add(m)
			for pid := 0; pid < m; pid++ {
				go func(pid int) {
					defer wg.Done()
					values[pid] = nw.Next(mem.Handle(pid))
				}(pid)
			}
			wg.Wait()
			seen := make(map[int]bool, m)
			for pid, v := range values {
				if v < 0 || v >= m || seen[v] {
					t.Fatalf("w=%d m=%d: p%d drew %d (all %v)", w, m, pid, v, values)
				}
				seen[v] = true
			}
		}
	}
}

func TestAdversaryScheduleCountsExactly(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16, 32} {
		nw := New(n, 0)
		alg := machine.New("counting", func(e *machine.Env) shmem.Value {
			return nw.Next(e)
		})
		run, err := core.RunAll(alg, n, machine.ZeroTosses, core.Config{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		seen := make(map[shmem.Value]bool)
		for pid, v := range run.Returns {
			if seen[v] {
				t.Fatalf("n=%d: duplicate value %v (p%d)", n, v, pid)
			}
			seen[v] = true
		}
		for i := 0; i < n; i++ {
			if !seen[i] {
				t.Fatalf("n=%d: missing value %d in %v", n, i, run.Returns)
			}
		}
		if err := core.CheckLemma51(run); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestRandomSchedulesCountExactly(t *testing.T) {
	const n = 6
	for seed := int64(0); seed < 8; seed++ {
		nw := New(n, 0)
		alg := machine.New("counting", func(e *machine.Env) shmem.Value {
			return nw.Next(e)
		})
		mem := shmem.New()
		res, err := sched.Execute(alg, n, mem, sched.NewRandom(seed), machine.ZeroTosses, 1_000_000)
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		seen := make(map[shmem.Value]bool)
		for _, v := range res.Returns {
			seen[v] = true
		}
		for i := 0; i < n; i++ {
			if !seen[i] {
				t.Fatalf("seed=%d: missing value %d in %v", seed, i, res.Returns)
			}
		}
	}
}

func TestSmallRegistersOnly(t *testing.T) {
	// The whole point: balancers and counters stay O(log n) bits, in
	// contrast to the unbounded log registers of the universal
	// constructions.
	const n = 16
	nw := New(n, 0)
	alg := machine.New("counting", func(e *machine.Env) shmem.Value {
		return nw.Next(e)
	})
	mem := shmem.New(shmem.WithBitTracking())
	if _, err := sched.Execute(alg, n, mem, &sched.RoundRobin{}, machine.ZeroTosses, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if bits := mem.MaxRegisterBits(); bits > 64 {
		t.Fatalf("counting network used a %d-bit register value", bits)
	}
}

func TestTraverseWrapsEntryWire(t *testing.T) {
	mem := llsc.New(1)
	nw := New(4, 0)
	h := mem.Handle(0)
	if out := nw.Traverse(h, 7); out < 0 || out >= 4 {
		t.Fatalf("Traverse out of range: %d", out)
	}
	if out := nw.Traverse(h, -3); out < 0 || out >= 4 {
		t.Fatalf("negative entry mishandled: %d", out)
	}
}

func TestBalancerAlternates(t *testing.T) {
	mem := llsc.New(1)
	nw := New(2, 0) // a single balancer plus two counters
	h := mem.Handle(0)
	var outs []int
	for i := 0; i < 6; i++ {
		outs = append(outs, nw.Traverse(h, 0))
	}
	want := []int{0, 1, 0, 1, 0, 1}
	if fmt.Sprint(outs) != fmt.Sprint(want) {
		t.Fatalf("balancer outputs %v, want %v", outs, want)
	}
}
