// Package counting implements the bitonic counting network of Aspnes,
// Herlihy and Shavit on the paper's LL/SC shared memory.
//
// Why it belongs in this reproduction: the paper closes by observing that
// sublogarithmic — indeed, any good — implementations must exploit the
// semantics of the implemented type, and that the O(log n) tightness of
// its bound leans on unbounded registers (Section 7; the Group-Update
// registers hold whole operation logs). A counting network is the classic
// semantics-exploiting counterpoint: it distributes tokens over w output
// wires using only single-bit balancer registers and w small counters —
// register width O(log n) rather than Θ(n·w) — at the price of
// O(log² w) shared accesses per traversal and a weaker consistency
// guarantee (quiescent consistency rather than linearizability). It also
// solves the wakeup problem: initialize the per-wire counters so values
// 0..n−1 are handed out; the process that draws n−1 knows all n tokens
// entered. Its measured cost lands, as it must, between the paper's
// Ω(log n) lower bound and the O(log² n) of the Chandra–Jayanti–Tan
// closed-object construction cited in Section 2.
//
// The network is Batcher's bitonic structure: Bitonic[w] is two
// Bitonic[w/2] in parallel followed by Merger[w]; Merger[w] splits its
// inputs between two Merger[w/2] (evens of the first half with odds of the
// second, and vice versa) and finishes with a layer of balancers. A
// balancer is a one-bit toggle updated with an LL/SC retry loop: tokens
// alternate between its two outputs. Traversals are lock-free but not
// wait-free — a balancer SC can fail only because another token's SC
// succeeded.
package counting

import (
	"fmt"

	"jayanti98/internal/machine"
)

// Network is a bitonic counting network of a fixed power-of-two width,
// occupying a contiguous block of registers. The descriptor is stateless:
// all balancer toggles and output counters live in shared registers, so a
// single Network value may be used by any number of processes on either
// memory backend.
type Network struct {
	width int
	base  int
	// balancerReg maps a balancer's structural key to its register.
	balancerReg map[string]int
	nBalancers  int
}

// New builds the descriptor of a bitonic network with the given width
// (rounded up to a power of two, minimum 2), with registers allocated from
// base: first one register per balancer, then one counter per output wire.
func New(width, base int) *Network {
	w := 2
	for w < width {
		w *= 2
	}
	nw := &Network{width: w, base: base, balancerReg: make(map[string]int)}
	nw.enumBitonic(w, "")
	return nw
}

// Depth returns the balancer depth of a bitonic network of the given
// width (rounded up to a power of two, minimum 2) without building the
// descriptor — d(w) = log₂w·(log₂w+1)/2. Report code uses it to quote the
// lockstep traversal cost of a width-n network without allocating one per
// table row.
func Depth(width int) int {
	w := 2
	for w < width {
		w *= 2
	}
	lg := 0
	for v := w; v > 1; v /= 2 {
		lg++
	}
	return lg * (lg + 1) / 2
}

// Width returns the (power-of-two) network width.
func (nw *Network) Width() int { return nw.width }

// Registers returns the number of registers the network occupies.
func (nw *Network) Registers() int { return nw.nBalancers + nw.width }

// Depth returns the number of balancers on every input-to-output path:
// d(w) = log₂w·(log₂w+1)/2.
func (nw *Network) Depth() int { return Depth(nw.width) }

// Balancers returns the total number of balancers in the network.
func (nw *Network) Balancers() int { return nw.nBalancers }

// enumBitonic pre-allocates balancer registers by walking the network
// structure exactly as traversals do, so every traversal-time lookup hits.
func (nw *Network) enumBitonic(w int, id string) {
	if w <= 1 {
		return
	}
	nw.enumBitonic(w/2, id+"T")
	nw.enumBitonic(w/2, id+"B")
	nw.enumMerger(w, id+"M")
}

func (nw *Network) enumMerger(w int, id string) {
	if w == 2 {
		nw.alloc(key(id, 0))
		return
	}
	nw.enumMerger(w/2, id+"A")
	nw.enumMerger(w/2, id+"B")
	for j := 0; j < w/2; j++ {
		nw.alloc(key(id+"F", j))
	}
}

func (nw *Network) alloc(k string) {
	if _, dup := nw.balancerReg[k]; dup {
		panic(fmt.Sprintf("counting: duplicate balancer key %q", k))
	}
	nw.balancerReg[k] = nw.base + nw.nBalancers
	nw.nBalancers++
}

func key(id string, idx int) string { return fmt.Sprintf("%s#%d", id, idx) }

// counterReg returns the register of output wire j's counter.
func (nw *Network) counterReg(j int) int { return nw.base + nw.nBalancers + j }

// balance sends the token through the balancer identified by (id, idx) and
// returns 0 or 1. The toggle is flipped with an LL/SC retry loop; each
// failed SC is caused by another token's success, so traversals are
// lock-free.
func (nw *Network) balance(p machine.Port, id string, idx int) int {
	reg, ok := nw.balancerReg[key(id, idx)]
	if !ok {
		panic(fmt.Sprintf("counting: unknown balancer %q (width %d)", key(id, idx), nw.width))
	}
	for {
		v := 0
		if raw := p.LL(reg); raw != nil {
			v = raw.(int)
		}
		if ok, _ := p.SC(reg, 1-v); ok {
			return v
		}
	}
}

// bitonic routes a token entering Bitonic[w] on wire i and returns its
// output wire.
func (nw *Network) bitonic(p machine.Port, w, i int, id string) int {
	if w == 1 {
		return 0
	}
	half := w / 2
	var j int
	if i < half {
		j = nw.bitonic(p, half, i, id+"T")
	} else {
		j = half + nw.bitonic(p, half, i-half, id+"B")
	}
	return nw.merger(p, w, j, id+"M")
}

// merger routes a token entering Merger[w] on wire i and returns its
// output wire.
func (nw *Network) merger(p machine.Port, w, i int, id string) int {
	if w == 2 {
		return nw.balance(p, id, 0)
	}
	half := w / 2
	var sub string
	var pos int
	switch {
	case i < half && i%2 == 0: // even of first half → A
		sub, pos = "A", i/2
	case i < half: // odd of first half → B
		sub, pos = "B", i/2
	case (i-half)%2 == 1: // odd of second half → A
		sub, pos = "A", half/2+(i-half)/2
	default: // even of second half → B
		sub, pos = "B", half/2+(i-half)/2
	}
	j := nw.merger(p, half, pos, id+sub)
	if sub == "A" {
		return 2*j + nw.balance(p, id+"F", j)
	}
	// Tokens from sub-merger B enter the final balancer j on its second
	// input; the balancer still alternates outputs 2j and 2j+1.
	return 2*j + nw.balance(p, id+"F", j)
}

// Traverse sends one token into the network on wire `enter mod width` and
// returns its output wire.
func (nw *Network) Traverse(p machine.Port, enter int) int {
	i := enter % nw.width
	if i < 0 {
		i += nw.width
	}
	return nw.bitonic(p, nw.width, i, "")
}

// Next draws the next counter value: the token traverses the network to an
// output wire and atomically fetches that wire's counter, which advances
// by the network width. Wire j hands out j, j+w, j+2w, ... so values are
// globally distinct, and at quiescence the issued values are exactly
// 0..m−1 for m tokens.
func (nw *Network) Next(p machine.Port) int {
	j := nw.Traverse(p, p.ID())
	reg := nw.counterReg(j)
	for {
		v := j
		if raw := p.LL(reg); raw != nil {
			v = raw.(int)
		}
		if ok, _ := p.SC(reg, v+nw.width); ok {
			return v
		}
	}
}
