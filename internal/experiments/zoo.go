// Experiments E13–E15: the related-work algorithm zoo (DESIGN.md §15).
// E13 measures the zoo's randomized test&set protocols against the
// ⌈log₄ n⌉ bound and runs the n = 2 wakeup-via-TAS reduction; E14 estimates
// expected step counts over seeded random schedules; E15 differentially
// checks the Blelloch–Wei LL/SC backend against the native one on whole
// executions.
package experiments

import (
	"bytes"
	"context"
	"errors"
	"fmt"

	"jayanti98/internal/algos"
	"jayanti98/internal/algos/bwllsc"
	"jayanti98/internal/core"
	"jayanti98/internal/llsc"
	"jayanti98/internal/lowerbound"
	"jayanti98/internal/machine"
	"jayanti98/internal/report"
	"jayanti98/internal/sched"
	"jayanti98/internal/shmem"
	"jayanti98/internal/stats"
	"jayanti98/internal/sweep"
	"jayanti98/internal/wakeup"
)

// tasNs is the process-count grid for the zoo experiments. The acceptance
// bar for E13 is n ≤ 64; Quick stops at 8.
func tasNs(opts Options) []int {
	if opts.Quick {
		return []int{2, 4, 8}
	}
	return []int{2, 4, 8, 16, 32, 64}
}

// zooNames lists the registry minus the mutation-build-only broken variant:
// the experiments must render identically with and without -tags mutation.
func zooNames() []string {
	var out []string
	for _, name := range algos.Names() {
		if name != algos.BrokenTV {
			out = append(out, name)
		}
	}
	return out
}

// tasBudget is the step budget for whole-execution zoo runs. It is far above
// any complete run's cost (the tournament needs O(log n) expected steps per
// process); randomized protocols can still livelock under an unlucky
// schedule/toss pairing, so callers retry with the next derived seed.
func tasBudget(n int) int { return 256 * n }

// runTAS executes one n-process run of the named zoo algorithm against mem,
// with hashed tosses derived from seed. A budget exhaustion comes back as
// sched.ErrBudgetExhausted with a partial result.
func runTAS(name string, n int, mem sched.Memory, s sched.Scheduler, seed int64) (*sched.Result, error) {
	alg, err := algos.New(name, n)
	if err != nil {
		return nil, err
	}
	return sched.Execute(alg, n, mem, s, lowerbound.HashTosses(seed), tasBudget(n))
}

// tasWinner returns the pid whose test&set returned 0 and whether exactly
// one process did so (the linearizability invariant for a complete run).
func tasWinner(res *sched.Result) (int, bool) {
	winner, count := -1, 0
	for pid, v := range res.Returns {
		if shmem.ValuesEqual(v, 0) {
			winner, count = pid, count+1
		}
	}
	return winner, count == 1
}

// firstCompleteTAS retries deterministically derived seeds until the run
// completes within budget, returning the result and the number of attempts.
// The retry sequence depends only on (experiment, name, n), so the report
// stays deterministic.
func firstCompleteTAS(experiment, name string, n int, s func() sched.Scheduler) (*sched.Result, int, error) {
	const maxAttempts = 50
	for attempt := 0; attempt < maxAttempts; attempt++ {
		res, err := runTAS(name, n, llsc.New(n), s(), sweep.Seed(experiment, name, n, attempt))
		if errors.Is(err, sched.ErrBudgetExhausted) {
			continue
		}
		if err != nil {
			return nil, attempt + 1, err
		}
		return res, attempt + 1, nil
	}
	return nil, maxAttempts, fmt.Errorf("%s/%s n=%d: no complete run in %d attempts", experiment, name, n, maxAttempts)
}

func e13(ctx context.Context, d *report.Doc, opts Options) error {
	report.Section(d, 2, "E13 — algorithm zoo: randomized test&set vs the ⌈log₄ n⌉ bound")
	fmt.Fprintln(d, "Test&set is *not* perturbable, so Theorem 6.1 does not bound it directly;")
	fmt.Fprintln(d, "the wakeup reduction (second table) is sound only at n = 2, where the")
	fmt.Fprintln(d, "loser's response proves the winner stepped. The first table measures the")
	fmt.Fprintln(d, "winner's shared accesses under a round-robin schedule with hashed tosses")
	fmt.Fprintln(d, "(first completing derived seed), next to the bound the reduction cannot")
	fmt.Fprintln(d, "extend past two processes.")
	fmt.Fprintln(d)

	type item struct {
		name string
		n    int
	}
	var items []item
	for _, name := range zooNames() {
		spec, _ := algos.For(name)
		for _, n := range tasNs(opts) {
			if spec.MaxN > 0 && n > spec.MaxN {
				continue
			}
			items = append(items, item{name, n})
		}
	}
	type row struct {
		item
		winner    int
		oneWinner bool
		steps     int
		max       int
		total     int
		attempts  int
	}
	rows, err := sweep.MapCtx(ctx, opts.Parallel, len(items), func(i int) (row, error) {
		it := items[i]
		res, attempts, err := firstCompleteTAS("E13", it.name, it.n, func() sched.Scheduler { return &sched.RoundRobin{} })
		if err != nil {
			return row{}, err
		}
		winner, one := tasWinner(res)
		return row{it, winner, one, res.Steps[winner], res.MaxSteps, res.TotalSteps, attempts}, nil
	})
	if err != nil {
		return err
	}
	tbl := report.NewTable("algorithm", "n", "winner", "winner steps", "t(R)", "total steps", "⌈log₄ n⌉", "one winner", "attempts")
	for _, r := range rows {
		tbl.AddRow(r.name, r.n, fmt.Sprintf("p%d", r.winner), r.steps, r.max, r.total,
			core.Log4Ceil(r.n), report.Bool(r.oneWinner), r.attempts)
	}
	if err := d.Table(tbl); err != nil {
		return err
	}
	fmt.Fprintln(d)

	fmt.Fprintln(d, "Wakeup via one test&set per process (group-update-backed object), n = 2 —")
	fmt.Fprintln(d, "the only n where the reduction's conditions hold:")
	fmt.Fprintln(d)
	results, err := lowerbound.SweepReductionCtx(ctx, wakeup.TASReduction(), "group-update", []int{2}, machine.ZeroTosses, opts.Parallel)
	if err != nil {
		return err
	}
	red := report.NewTable("type", "n", "k (ops/proc)", "winner steps", "per-op bound", "t(R)", "spec", "thm 6.1")
	for _, r := range results {
		red.AddRow(r.Type, r.N, r.OpsPerProcess, r.WinnerSteps, r.PerOpBound, r.MaxSteps,
			report.Check(r.SpecErr), report.Check(r.Theorem61Err))
	}
	return d.Table(red)
}

func e14(ctx context.Context, d *report.Doc, opts Options) error {
	n := samples(opts)
	report.Section(d, 2, "E14 — randomized TAS: step counts over %d seeded random schedules", n)
	fmt.Fprintln(d, "Each sample runs under an independently seeded uniform scheduler with")
	fmt.Fprintln(d, "hashed tosses. Runs that exhaust the step budget (a livelocked schedule/")
	fmt.Fprintln(d, "toss pairing — the protocols are randomized, not wait-free) are counted,")
	fmt.Fprintln(d, "not summarized; every complete run must have exactly one winner.")
	fmt.Fprintln(d)

	type item struct {
		name string
		n    int
	}
	var items []item
	for _, name := range zooNames() {
		spec, _ := algos.For(name)
		for _, nn := range tasNs(opts) {
			if spec.MaxN > 0 && nn > spec.MaxN {
				continue
			}
			items = append(items, item{name, nn})
		}
	}
	type row struct {
		item
		winner     stats.Summary
		max        stats.Summary
		unfinished int
		oneWinner  bool
	}
	rows, err := sweep.MapCtx(ctx, opts.Parallel, len(items), func(i int) (row, error) {
		it := items[i]
		var winnerSteps, maxSteps []float64
		unfinished, oneWinner := 0, true
		for j := 0; j < n; j++ {
			seed := sweep.Seed("E14", it.name, it.n, j)
			res, err := runTAS(it.name, it.n, llsc.New(it.n), sched.NewRandom(seed), seed+1)
			if errors.Is(err, sched.ErrBudgetExhausted) {
				unfinished++
				continue
			}
			if err != nil {
				return row{}, err
			}
			winner, one := tasWinner(res)
			if !one {
				oneWinner = false
			}
			winnerSteps = append(winnerSteps, float64(res.Steps[winner]))
			maxSteps = append(maxSteps, float64(res.MaxSteps))
		}
		return row{it, stats.Summarize(winnerSteps), stats.Summarize(maxSteps), unfinished, oneWinner}, nil
	})
	if err != nil {
		return err
	}
	tbl := report.NewTable("algorithm", "n", "complete", "E[winner steps]", "max", "E[t(R)]", "p95 t(R)", "unfinished", "one winner")
	for _, r := range rows {
		tbl.AddRow(r.name, r.n, r.winner.N, fmt.Sprintf("%.2f", r.winner.Mean), int(r.winner.Max),
			fmt.Sprintf("%.2f", r.max.Mean), fmt.Sprintf("%.1f", r.max.P95), r.unfinished,
			report.Bool(r.oneWinner))
	}
	return d.Table(tbl)
}

// fpMemory is the slice of the backend surface E15 needs: an executable
// memory whose final state can be fingerprinted. Both llsc.Memory and
// bwllsc.Memory satisfy it.
type fpMemory interface {
	sched.Memory
	AppendFingerprint([]byte) []byte
}

// e15Items lists the whole executions the backend differential covers: the
// deterministic E1 wakeup algorithms and the zoo's randomized TAS protocols
// (first completing derived seed, like E13 — each attempt on a fresh
// memory, so an exhausted run never leaks state into the next). run returns
// the memory it completed on so the caller can compare fingerprints.
func e15Items(opts Options) []struct {
	label string
	n     int
	run   func(newMem func(n int) fpMemory) (*sched.Result, fpMemory, error)
} {
	type entry = struct {
		label string
		n     int
		run   func(newMem func(n int) fpMemory) (*sched.Result, fpMemory, error)
	}
	var items []entry
	for _, w := range []struct {
		name string
		mk   func() machine.Algorithm
	}{
		{"wakeup/set-register", wakeup.SetRegister},
		{"wakeup/move-courier", wakeup.MoveCourier},
	} {
		for _, n := range tasNs(opts) {
			w, n := w, n
			items = append(items, entry{w.name, n, func(newMem func(n int) fpMemory) (*sched.Result, fpMemory, error) {
				mem := newMem(n)
				res, err := sched.Execute(w.mk(), n, mem, &sched.RoundRobin{}, machine.ZeroTosses, tasBudget(n))
				return res, mem, err
			}})
		}
	}
	for _, name := range zooNames() {
		spec, _ := algos.For(name)
		for _, n := range tasNs(opts) {
			if spec.MaxN > 0 && n > spec.MaxN {
				continue
			}
			name, n := name, n
			items = append(items, entry{name, n, func(newMem func(n int) fpMemory) (*sched.Result, fpMemory, error) {
				const maxAttempts = 50
				for attempt := 0; attempt < maxAttempts; attempt++ {
					mem := newMem(n)
					res, err := runTAS(name, n, mem, &sched.RoundRobin{}, sweep.Seed("E15", name, n, attempt))
					if errors.Is(err, sched.ErrBudgetExhausted) {
						continue
					}
					return res, mem, err
				}
				return nil, nil, fmt.Errorf("E15/%s n=%d: no complete run in %d attempts", name, n, maxAttempts)
			}})
		}
	}
	return items
}

func e15(ctx context.Context, d *report.Doc, opts Options) error {
	report.Section(d, 2, "E15 — Blelloch–Wei LL/SC backend vs native (whole-execution differential)")
	fmt.Fprintln(d, "The same algorithm, schedule and tosses run once against the native")
	fmt.Fprintln(d, "pset-based memory (internal/llsc) and once against the pointer-based")
	fmt.Fprintln(d, "Blelloch–Wei backend (internal/algos/bwllsc); returns, per-process step")
	fmt.Fprintln(d, "counts and the final memory fingerprint must agree byte for byte.")
	fmt.Fprintln(d, "(Exhaustive all-schedules equivalence is TestExhaustiveBackendsEqual;")
	fmt.Fprintln(d, "per-op overhead is BenchmarkBWLLSC.)")
	fmt.Fprintln(d)

	items := e15Items(opts)
	type row struct {
		label                   string
		n, total                int
		returns, steps, fprints bool
		err                     error
	}
	rows, err := sweep.MapCtx(ctx, opts.Parallel, len(items), func(i int) (row, error) {
		it := items[i]
		resA, memA, err := it.run(func(n int) fpMemory { return llsc.New(n) })
		if err != nil {
			return row{label: it.label, n: it.n, err: err}, nil
		}
		resB, memB, err := it.run(func(n int) fpMemory { return bwllsc.New(n) })
		if err != nil {
			return row{label: it.label, n: it.n, err: err}, nil
		}
		r := row{label: it.label, n: it.n, total: resA.TotalSteps, returns: true, steps: resA.TotalSteps == resB.TotalSteps}
		for pid := 0; pid < it.n; pid++ {
			if !shmem.ValuesEqual(resA.Returns[pid], resB.Returns[pid]) {
				r.returns = false
			}
			if resA.Steps[pid] != resB.Steps[pid] {
				r.steps = false
			}
		}
		r.fprints = bytes.Equal(memA.AppendFingerprint(nil), memB.AppendFingerprint(nil))
		return r, nil
	})
	if err != nil {
		return err
	}
	tbl := report.NewTable("algorithm", "n", "total steps", "returns equal", "steps equal", "fingerprints equal")
	for _, r := range rows {
		if r.err != nil {
			tbl.AddRow(r.label, r.n, "-", report.Check(r.err), "-", "-")
			continue
		}
		tbl.AddRow(r.label, r.n, r.total, report.Bool(r.returns), report.Bool(r.steps), report.Bool(r.fprints))
	}
	return d.Table(tbl)
}
