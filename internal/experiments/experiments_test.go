package experiments

import (
	"context"
	"errors"
	"strings"
	"testing"

	"jayanti98/internal/report"
)

func TestForSelection(t *testing.T) {
	all, err := For(nil)
	if err != nil || len(all) != 13 {
		t.Fatalf("For(nil) = %d experiments, %v", len(all), err)
	}
	// Subsets come back in report order regardless of request order.
	sub, err := For([]string{"E6", "E1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 2 || sub[0].Name != "E1" || sub[1].Name != "E6" {
		t.Fatalf("For(E6,E1) = %v", sub)
	}
	if _, err := For([]string{"E1", "E99"}); err == nil || !strings.Contains(err.Error(), "E99") {
		t.Fatalf("unknown name: err = %v", err)
	}
	if _, err := For([]string{"E1", "E1"}); err == nil {
		t.Fatal("duplicate names must error")
	}
}

// TestRunQuickCapturesTables: every experiment renders markdown and records
// at least one table through the Doc.
func TestRunQuickCapturesTables(t *testing.T) {
	opts := Options{Quick: true, Parallel: 4}
	for _, e := range []string{"E1", "E6", "E9", "E10", "E13", "E14", "E15"} {
		sel, err := For([]string{e})
		if err != nil {
			t.Fatal(err)
		}
		var d report.Doc
		if err := sel[0].Run(context.Background(), &d, opts); err != nil {
			t.Fatalf("%s: %v", e, err)
		}
		if !strings.Contains(d.Markdown(), e+" —") {
			t.Errorf("%s: markdown missing section heading", e)
		}
		if len(d.Tables()) == 0 {
			t.Errorf("%s: no tables captured", e)
		}
		if strings.Contains(d.Markdown(), "FAIL") {
			t.Errorf("%s: failing check in output", e)
		}
	}
}

// TestWriteReportSubsetAndCancellation: WriteReport renders only the
// selected experiments, and a cancelled context aborts with ctx.Err().
func TestWriteReportSubsetAndCancellation(t *testing.T) {
	var b strings.Builder
	if err := WriteReport(context.Background(), &b, []string{"E6"}, Options{Quick: true, Parallel: 2}, false); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "E6 —") || strings.Contains(out, "E1 —") {
		t.Fatalf("subset report wrong: %q", out)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := WriteReport(ctx, &strings.Builder{}, []string{"E1"}, Options{Quick: true, Parallel: 2}, false)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled report: err = %v, want context.Canceled", err)
	}
}

// TestWriteReportAllQuick runs the entire E1–E15 registry at quick sizes —
// the same pipeline cmd/lbreport -quick drives — and checks every section
// renders without a failing lemma check.
func TestWriteReportAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick report is too slow for -short")
	}
	var b strings.Builder
	if err := WriteReport(context.Background(), &b, nil, Options{Quick: true, Parallel: 4}, true); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, name := range Names() {
		if !strings.Contains(out, name+" —") {
			t.Errorf("report missing section %s", name)
		}
	}
	if strings.Contains(out, "FAIL") {
		t.Error("failing check in full quick report")
	}
	// The timing flag appends a wall-clock line per experiment.
	if !strings.Contains(out, "_wall-clock:") && !strings.Contains(out, "wall-clock") {
		t.Errorf("timing lines missing from report")
	}
}
