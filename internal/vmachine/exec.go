package vmachine

import (
	"fmt"

	"jayanti98/internal/shmem"
)

// YieldKind classifies why an Exec suspended.
type YieldKind uint8

const (
	// YToss: the machine wants a coin-toss outcome; resume with ResumeToss.
	YToss YieldKind = iota + 1
	// YOp: the machine issued a shared-memory operation (Yield.Op); resume
	// with ResumeOp once the memory has applied it.
	YOp
	// YReturn: the machine terminated normally; Yield.Ret is the value.
	YReturn
	// YCrash: the body (or a native) panicked; Yield.Ret is the rendered
	// "panic: ..." message, exactly as the interpreter renders it.
	YCrash
)

// String names the yield kind.
func (k YieldKind) String() string {
	switch k {
	case YToss:
		return "toss"
	case YOp:
		return "op"
	case YReturn:
		return "return"
	case YCrash:
		return "crash"
	default:
		return fmt.Sprintf("YieldKind(%d)", uint8(k))
	}
}

// Yield is what an Exec hands the scheduler each time it suspends.
type Yield struct {
	Kind YieldKind
	Op   shmem.Op    // valid when Kind == YOp
	Ret  shmem.Value // valid when Kind == YReturn or YCrash
}

// Exec is one process instance executing a compiled chunk. Its entire
// mutable state is the program counter, a flat locals array, and a few words
// of resume bookkeeping — all copyable, which is what makes VM snapshots
// cheap compared to forking a goroutine-based machine.
//
// The lifecycle is a strict alternation: Start (or a Resume*) runs the
// bytecode until it yields; the caller services the yield and resumes with
// the matching Resume* call. YReturn and YCrash are terminal. Calling the
// wrong Resume* for the pending yield panics: that is a scheduler bug, not
// an algorithm crash.
type Exec struct {
	chunk  *Chunk
	id, n  int
	pc     int32
	locals []Value

	// Resume bookkeeping: wait is the pending yield kind (0 before Start),
	// waitOp the suspended instruction's opcode, wa/wb its result slots.
	wait   YieldKind
	waitOp Opcode
	wa, wb int32
}

// NewExec creates a process instance for chunk. The chunk is only read;
// any number of Execs may share it across goroutines.
func NewExec(chunk *Chunk, id, n int) *Exec {
	return &Exec{
		chunk:  chunk,
		id:     id,
		n:      n,
		locals: make([]Value, chunk.NumLocals),
	}
}

// ID returns the executing process's identifier.
func (x *Exec) ID() int { return x.id }

// Chunk returns the compiled code this Exec runs.
func (x *Exec) Chunk() *Chunk { return x.chunk }

// Start runs the chunk from the beginning until its first yield. It must be
// the first call on a fresh Exec and must not be repeated.
func (x *Exec) Start() Yield {
	if x.wait != 0 {
		panic("vmachine: Start on an already-started Exec")
	}
	return x.run()
}

// ResumeToss delivers a coin-toss outcome to an Exec suspended at YToss.
func (x *Exec) ResumeToss(outcome int64) Yield {
	if x.wait != YToss {
		panic(fmt.Sprintf("vmachine: ResumeToss while waiting on %v", x.wait))
	}
	x.locals[x.wa] = I64(outcome)
	x.wait = 0
	return x.run()
}

// ResumeOp delivers a shared-memory response to an Exec suspended at YOp.
func (x *Exec) ResumeOp(resp shmem.Response) Yield {
	if x.wait != YOp {
		panic(fmt.Sprintf("vmachine: ResumeOp while waiting on %v", x.wait))
	}
	switch x.waitOp {
	case OpLL, OpRead, OpSwap:
		x.locals[x.wa] = Unbox(resp.Val)
	case OpSC, OpValidate:
		x.locals[x.wa] = Bool(resp.OK)
		x.locals[x.wb] = Unbox(resp.Val)
	case OpMove:
		// Move returns only an acknowledgement.
	default:
		panic(fmt.Sprintf("vmachine: pending %v is not a memory operation", x.waitOp))
	}
	x.wait = 0
	return x.run()
}

// Terminal reports whether the Exec has returned or crashed.
func (x *Exec) Terminal() bool { return x.wait == YReturn || x.wait == YCrash }

// run executes instructions until the next yield. A panic anywhere inside —
// a native function, a type-confused operand, a corrupt-register decode —
// crashes the machine with the same "panic: %v" rendering the interpreter
// applies when an algorithm body panics.
func (x *Exec) run() (y Yield) {
	defer func() {
		if r := recover(); r != nil {
			x.wait = YCrash
			y = Yield{Kind: YCrash, Ret: fmt.Sprintf("panic: %v", r)}
		}
	}()
	code := x.chunk.Code
	locals := x.locals
	for {
		in := code[x.pc]
		switch in.Op {
		case OpConst:
			locals[in.A] = x.chunk.Consts[in.B]
		case OpMov:
			locals[in.A] = locals[in.B]
		case OpSelf:
			locals[in.A] = Int(x.id)
		case OpNProcs:
			locals[in.A] = Int(x.n)
		case OpEq:
			locals[in.A] = Bool(locals[in.B].Equal(locals[in.C]))
		case OpAdd:
			locals[in.A] = intArith(locals[in.B], locals[in.C], locals[in.B].I+locals[in.C].I)
		case OpBand:
			locals[in.A] = intArith(locals[in.B], locals[in.C], locals[in.B].I&locals[in.C].I)
		case OpJump:
			x.pc = in.A
			continue
		case OpJumpIfNot:
			if !locals[in.A].Truthy() {
				x.pc = in.B
				continue
			}
		case OpCall:
			fn := x.chunk.Natives[in.B]
			locals[in.A] = fn(x.id, x.n, locals[in.C:in.C+in.D])
		case OpToss:
			x.suspend(YToss, in)
			x.pc++
			return Yield{Kind: YToss}
		case OpLL:
			return x.yieldOp(in, shmem.Op{Kind: shmem.OpLL, Reg: locals[in.B].AsInt()})
		case OpSC:
			return x.yieldOp(in, shmem.Op{Kind: shmem.OpSC, Reg: locals[in.C].AsInt(), Arg: locals[in.D].Box()})
		case OpValidate:
			return x.yieldOp(in, shmem.Op{Kind: shmem.OpValidate, Reg: locals[in.C].AsInt()})
		case OpRead:
			return x.yieldOp(in, shmem.Op{Kind: shmem.OpValidate, Reg: locals[in.B].AsInt()})
		case OpSwap:
			return x.yieldOp(in, shmem.Op{Kind: shmem.OpSwap, Reg: locals[in.B].AsInt(), Arg: locals[in.C].Box()})
		case OpMove:
			return x.yieldOp(in, shmem.Op{Kind: shmem.OpMove, Src: locals[in.A].AsInt(), Reg: locals[in.B].AsInt()})
		case OpReturn:
			x.wait = YReturn
			return Yield{Kind: YReturn, Ret: locals[in.A].Box()}
		default:
			panic(fmt.Sprintf("vmachine: %s: pc %d: unknown opcode %d", x.chunk.Name, x.pc, in.Op))
		}
		x.pc++
	}
}

func (x *Exec) suspend(kind YieldKind, in Instr) {
	x.wait = kind
	x.waitOp = in.Op
	x.wa = in.A
	x.wb = in.B
}

func (x *Exec) yieldOp(in Instr, op shmem.Op) Yield {
	x.suspend(YOp, in)
	x.pc++
	return Yield{Kind: YOp, Op: op}
}

// State is a complete, self-contained snapshot of an Exec's resumable state:
// flat arrays, no goroutine, no channels. Snapshots deep-copy set-kind
// locals (the only mutable payload a Value can carry), so a restored Exec
// and its origin never alias working state.
type State struct {
	PC     int32
	Wait   YieldKind
	WaitOp Opcode
	WA, WB int32
	Locals []Value
}

// Snapshot captures the Exec's state.
func (x *Exec) Snapshot() State {
	return State{
		PC:     x.pc,
		Wait:   x.wait,
		WaitOp: x.waitOp,
		WA:     x.wa,
		WB:     x.wb,
		Locals: copyLocals(x.locals),
	}
}

// Restore overwrites the Exec's state with a snapshot taken from an Exec of
// the same chunk. The snapshot remains valid and may be restored again.
func (x *Exec) Restore(s State) {
	if len(s.Locals) != len(x.locals) {
		panic(fmt.Sprintf("vmachine: restore of %d-local state into %d-local exec", len(s.Locals), len(x.locals)))
	}
	x.pc = s.PC
	x.wait = s.Wait
	x.waitOp = s.WaitOp
	x.wa = s.WA
	x.wb = s.WB
	copy(x.locals, s.Locals)
	for i, v := range x.locals {
		if v.Kind == KSet {
			x.locals[i].Set = append(shmem.PidBits(nil), v.Set...)
		}
	}
}

// Clone returns an independent copy of the Exec, sharing only the immutable
// chunk. Exploration uses this to fork a machine at a branch point.
func (x *Exec) Clone() *Exec {
	c := *x
	c.locals = copyLocals(x.locals)
	return &c
}

func copyLocals(src []Value) []Value {
	out := make([]Value, len(src))
	copy(out, src)
	for i, v := range out {
		if v.Kind == KSet {
			out[i].Set = append(shmem.PidBits(nil), v.Set...)
		}
	}
	return out
}

// intArith types an arithmetic result: the result adopts the left operand's
// integer kind (matching Go's typed arithmetic, where a re-expressed
// `x + 1` converts the literal to x's type). Non-integer operands panic,
// which surfaces as a machine crash — the same way the direct-style twin
// would fail on a type-confused value.
func intArith(a, b Value, result int64) Value {
	if (a.Kind != KInt && a.Kind != KI64) || (b.Kind != KInt && b.Kind != KI64) {
		panic(fmt.Sprintf("vmachine: arithmetic on %v and %v values", a.Kind, b.Kind))
	}
	return Value{Kind: a.Kind, I: result}
}
