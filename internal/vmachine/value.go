// Package vmachine is a bytecode virtual machine for the process model of
// package machine: a one-time compiler from structured algorithm programs
// (prog.go) to compact chunks of toss/LL/SC/validate/read/swap/move/return
// opcodes (chunk.go), executed on a tagged-value register machine (exec.go)
// with no interface{} boxing of coin outcomes or local values.
//
// The package exists for raw speed on the adversary and exploration hot
// paths: the direct-style interpreter of package machine parks a goroutine
// per process and pays two channel handoffs per shared-memory step
// (~1.4µs on the committed baseline), while an Exec steps in-line in a few
// tens of nanoseconds and its whole state is a flat locals array that can
// be snapshotted by copying.
//
// Chunks are immutable after Compile and safely shared read-only by any
// number of Execs on any number of goroutines. Algorithm-specific helpers
// (pid-set codecs, arithmetic beyond the built-in operators) enter
// compiled code through a native-function registry (native.go), the
// bridge-to-Go-builtins design of the exemplar VMs.
//
// Equivalence with the interpreter is not assumed, it is tested: package
// lockstep runs the two engines in lockstep over identical schedules —
// exhaustively at small n and under fuzzing — asserting identical actions,
// responses, register files, history digests, step counts, and return
// values at every step.
package vmachine

import (
	"fmt"

	"jayanti98/internal/shmem"
)

// Kind tags a VM value.
type Kind uint8

// The value kinds. KInt and KI64 are deliberately distinct: shared-register
// values are compared with structural equality (shmem.ValuesEqual), under
// which int(1) and int64(1) differ, so the VM must preserve the exact
// dynamic type an algorithm body would have produced.
const (
	KNil  Kind = iota
	KInt       // Go int, payload in I
	KI64       // Go int64 (coin-toss outcomes), payload in I
	KBool      // payload in I (0 or 1)
	KStr       // payload in S
	KSet       // payload in Set; never escapes to shared memory unencoded
	KAny       // fallback for exotic shared-register values, payload in Any
)

// Value is a tagged VM value: one word of kind plus unboxed payloads for
// every scalar the hot paths touch. KSet holds a pid bitset (the working
// state of the wakeup algorithms); KAny carries an arbitrary shared-memory
// value read from a register whose content no unboxed kind covers (e.g. a
// slice installed by a memory initializer).
type Value struct {
	Kind Kind
	I    int64
	S    string
	Set  shmem.PidBits
	Any  shmem.Value
}

// Convenience constructors.
func Nil() Value                { return Value{} }
func Int(v int) Value           { return Value{Kind: KInt, I: int64(v)} }
func I64(v int64) Value         { return Value{Kind: KI64, I: v} }
func Bool(v bool) Value         { return Value{Kind: KBool, I: b2i(v)} }
func Str(s string) Value        { return Value{Kind: KStr, S: s} }
func Set(s shmem.PidBits) Value { return Value{Kind: KSet, Set: s} }

func b2i(v bool) int64 {
	if v {
		return 1
	}
	return 0
}

// Box converts a VM value to the interface form shared memory stores. The
// conversion restores the exact dynamic type the interpreter would have
// used, so register contents — and therefore history digests and golden
// traces — are bit-identical across engines. Boxing a KSet panics: sets
// are VM working state and must be encoded (pids.encode) before they touch
// a register.
func (v Value) Box() shmem.Value {
	switch v.Kind {
	case KNil:
		return nil
	case KInt:
		return int(v.I)
	case KI64:
		return v.I
	case KBool:
		return v.I != 0
	case KStr:
		return v.S
	case KAny:
		return v.Any
	default:
		panic(fmt.Sprintf("vmachine: cannot box %v value into shared memory", v.Kind))
	}
}

// Unbox converts a shared-memory value to tagged form. Scalars unbox to
// their dedicated kinds; anything else is carried opaquely as KAny (and
// boxes back to the identical interface value).
func Unbox(v shmem.Value) Value {
	switch x := v.(type) {
	case nil:
		return Value{}
	case int:
		return Value{Kind: KInt, I: int64(x)}
	case int64:
		return Value{Kind: KI64, I: x}
	case bool:
		return Value{Kind: KBool, I: b2i(x)}
	case string:
		return Value{Kind: KStr, S: x}
	default:
		return Value{Kind: KAny, Any: v}
	}
}

// AsInt returns the value as a Go int (register indices, set members).
// It accepts KInt, KI64 and KBool.
func (v Value) AsInt() int {
	switch v.Kind {
	case KInt, KI64, KBool:
		return int(v.I)
	default:
		panic(fmt.Sprintf("vmachine: %v value used as integer", v.Kind))
	}
}

// Truthy returns the boolean reading of a KBool (or integer) value.
func (v Value) Truthy() bool {
	switch v.Kind {
	case KBool, KInt, KI64:
		return v.I != 0
	default:
		panic(fmt.Sprintf("vmachine: %v value used as condition", v.Kind))
	}
}

// Equal reports equality as the interpreter's structural comparison would:
// identical kinds and payloads, with KAny falling back to shmem.ValuesEqual.
func (v Value) Equal(o Value) bool {
	if v.Kind == KAny || o.Kind == KAny {
		return shmem.ValuesEqual(v.Box(), o.Box())
	}
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KNil:
		return true
	case KStr:
		return v.S == o.S
	case KSet:
		panic("vmachine: sets are not comparable")
	default:
		return v.I == o.I
	}
}

// String renders the value for disassembly and test failure messages.
func (v Value) String() string {
	switch v.Kind {
	case KNil:
		return "nil"
	case KInt:
		return fmt.Sprintf("int(%d)", v.I)
	case KI64:
		return fmt.Sprintf("int64(%d)", v.I)
	case KBool:
		return fmt.Sprintf("bool(%t)", v.I != 0)
	case KStr:
		return fmt.Sprintf("%q", v.S)
	case KSet:
		return fmt.Sprintf("set%v", v.Set.Sorted())
	case KAny:
		return fmt.Sprintf("any(%v)", v.Any)
	default:
		return fmt.Sprintf("Kind(%d)", v.Kind)
	}
}

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KNil:
		return "nil"
	case KInt:
		return "int"
	case KI64:
		return "int64"
	case KBool:
		return "bool"
	case KStr:
		return "string"
	case KSet:
		return "set"
	case KAny:
		return "any"
	default:
		return fmt.Sprintf("Kind(%d)", k)
	}
}
