package vmachine

import "fmt"

// Compile lowers a Program into a verified Chunk: named variables become
// fixed local slots, expressions are flattened into three-address
// instructions over a stack-disciplined temporary region, constants are
// pooled and deduplicated, native calls are resolved against the registry,
// and structured control flow (if/loop/break) becomes patched jumps.
//
// Compilation happens once per algorithm (package-level in practice); the
// resulting chunk is immutable and shared by every process instance.
func Compile(p *Program) (*Chunk, error) {
	c := &compiler{
		name:      p.Name,
		vars:      make(map[string]int32),
		constIdx:  make(map[constKey]int32),
		nativeIdx: make(map[string]int32),
	}
	if err := c.collectVars(p.Body); err != nil {
		return nil, fmt.Errorf("vmachine: compile %s: %w", p.Name, err)
	}
	c.tempBase = c.nvars
	if err := c.stmts(p.Body); err != nil {
		return nil, fmt.Errorf("vmachine: compile %s: %w", p.Name, err)
	}
	chunk := &Chunk{
		Name:        p.Name,
		Code:        c.code,
		Consts:      c.consts,
		Natives:     c.natives,
		NativeNames: c.nativeNames,
		NumLocals:   int(c.nvars + c.maxTemp),
	}
	if err := chunk.Verify(); err != nil {
		return nil, fmt.Errorf("vmachine: compile %s: generated invalid code: %w", p.Name, err)
	}
	return chunk, nil
}

// MustCompile is Compile, panicking on error. Algorithm packages use it at
// package init, where a compile error is a programming bug.
func MustCompile(p *Program) *Chunk {
	chunk, err := Compile(p)
	if err != nil {
		panic(err)
	}
	return chunk
}

// constKey is the comparable identity of a poolable constant.
type constKey struct {
	kind Kind
	i    int64
	s    string
}

type compiler struct {
	name string
	code []Instr

	consts   []Value
	constIdx map[constKey]int32

	natives     []NativeFunc
	nativeNames []string
	nativeIdx   map[string]int32

	vars  map[string]int32
	nvars int32

	// Temporaries live above the named variables with stack discipline:
	// mark/release brackets expression evaluation, maxTemp sizes the frame.
	tempBase int32
	temp     int32
	maxTemp  int32

	// loops holds, per open loop, the pc of every break jump to patch.
	loops [][]int
}

// --- variable collection -------------------------------------------------

// collectVars assigns a slot to every variable the program ever writes.
// Allocation is a separate pass so reads of never-written variables are
// compile errors rather than silently-nil locals.
func (c *compiler) collectVars(body []Stmt) error {
	var walk func(ss []Stmt) error
	declare := func(name string) {
		if name == "" {
			return
		}
		if _, ok := c.vars[name]; !ok {
			c.vars[name] = c.nvars
			c.nvars++
		}
	}
	walk = func(ss []Stmt) error {
		for _, s := range ss {
			switch s := s.(type) {
			case AssignS:
				if s.Name == "" {
					return fmt.Errorf("assignment with empty variable name")
				}
				declare(s.Name)
			case SCS:
				declare(s.Ok)
				declare(s.Prev)
			case ValidateS:
				declare(s.Ok)
				declare(s.Val)
			case IfS:
				if err := walk(s.Then); err != nil {
					return err
				}
				if err := walk(s.Else); err != nil {
					return err
				}
			case LoopS:
				if err := walk(s.Body); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return walk(body)
}

// --- slot helpers --------------------------------------------------------

func (c *compiler) mark() int32 { return c.temp }

func (c *compiler) release(m int32) { c.temp = m }

func (c *compiler) allocTemp() int32 {
	slot := c.tempBase + c.temp
	c.temp++
	if c.temp > c.maxTemp {
		c.maxTemp = c.temp
	}
	return slot
}

// varSlot resolves a variable read.
func (c *compiler) varSlot(name string) (int32, error) {
	slot, ok := c.vars[name]
	if !ok {
		return 0, fmt.Errorf("read of undefined variable %q", name)
	}
	return slot, nil
}

// resultSlot returns the destination slot for an operation result variable;
// "" (discard) gets a temporary.
func (c *compiler) resultSlot(name string) (int32, error) {
	if name == "" {
		return c.allocTemp(), nil
	}
	return c.varSlot(name)
}

func (c *compiler) emit(in Instr) int {
	c.code = append(c.code, in)
	return len(c.code) - 1
}

func (c *compiler) constant(v Value) (int32, error) {
	switch v.Kind {
	case KNil, KInt, KI64, KBool, KStr:
	default:
		return 0, fmt.Errorf("constant of kind %v not poolable", v.Kind)
	}
	key := constKey{kind: v.Kind, i: v.I, s: v.S}
	if idx, ok := c.constIdx[key]; ok {
		return idx, nil
	}
	idx := int32(len(c.consts))
	c.consts = append(c.consts, v)
	c.constIdx[key] = idx
	return idx, nil
}

func (c *compiler) native(name string) (int32, error) {
	if idx, ok := c.nativeIdx[name]; ok {
		return idx, nil
	}
	fn, err := lookupNative(name)
	if err != nil {
		return 0, err
	}
	idx := int32(len(c.natives))
	c.natives = append(c.natives, fn)
	c.nativeNames = append(c.nativeNames, name)
	c.nativeIdx[name] = idx
	return idx, nil
}

// --- expressions ---------------------------------------------------------

// operand compiles e and returns the slot holding its value. A plain
// variable read is passed through without a copy; everything else lands in
// a temporary inside the caller's mark/release bracket.
func (c *compiler) operand(e Expr) (int32, error) {
	if v, ok := e.(VarE); ok {
		return c.varSlot(v.Name)
	}
	dst := c.allocTemp()
	if err := c.exprTo(e, dst); err != nil {
		return 0, err
	}
	return dst, nil
}

// exprTo compiles e, leaving its value in dst.
func (c *compiler) exprTo(e Expr, dst int32) error {
	switch e := e.(type) {
	case ConstE:
		idx, err := c.constant(e.V)
		if err != nil {
			return err
		}
		c.emit(Instr{Op: OpConst, A: dst, B: idx})
	case SelfE:
		c.emit(Instr{Op: OpSelf, A: dst})
	case NProcsE:
		c.emit(Instr{Op: OpNProcs, A: dst})
	case VarE:
		slot, err := c.varSlot(e.Name)
		if err != nil {
			return err
		}
		if slot != dst {
			c.emit(Instr{Op: OpMov, A: dst, B: slot})
		}
	case TossE:
		c.emit(Instr{Op: OpToss, A: dst})
	case LLE:
		m := c.mark()
		reg, err := c.operand(e.Reg)
		if err != nil {
			return err
		}
		c.emit(Instr{Op: OpLL, A: dst, B: reg})
		c.release(m)
	case ReadE:
		m := c.mark()
		reg, err := c.operand(e.Reg)
		if err != nil {
			return err
		}
		c.emit(Instr{Op: OpRead, A: dst, B: reg})
		c.release(m)
	case SwapE:
		m := c.mark()
		reg, err := c.operand(e.Reg)
		if err != nil {
			return err
		}
		val, err := c.operand(e.Val)
		if err != nil {
			return err
		}
		c.emit(Instr{Op: OpSwap, A: dst, B: reg, C: val})
		c.release(m)
	case CallE:
		idx, err := c.native(e.Fn)
		if err != nil {
			return err
		}
		m := c.mark()
		// Arguments must occupy a contiguous window: reserve it first,
		// then fill left to right (Go evaluation order).
		base := c.tempBase + c.temp
		for range e.Args {
			c.allocTemp()
		}
		for i, arg := range e.Args {
			if err := c.exprTo(arg, base+int32(i)); err != nil {
				return err
			}
		}
		c.emit(Instr{Op: OpCall, A: dst, B: idx, C: base, D: int32(len(e.Args))})
		c.release(m)
	case EqE:
		return c.binop(OpEq, e.A, e.B, dst)
	case AddE:
		return c.binop(OpAdd, e.A, e.B, dst)
	case BandE:
		return c.binop(OpBand, e.A, e.B, dst)
	default:
		return fmt.Errorf("unknown expression %T", e)
	}
	return nil
}

func (c *compiler) binop(op Opcode, a, b Expr, dst int32) error {
	m := c.mark()
	x, err := c.operand(a)
	if err != nil {
		return err
	}
	y, err := c.operand(b)
	if err != nil {
		return err
	}
	c.emit(Instr{Op: op, A: dst, B: x, C: y})
	c.release(m)
	return nil
}

// --- statements ----------------------------------------------------------

func (c *compiler) stmts(ss []Stmt) error {
	for _, s := range ss {
		if err := c.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *compiler) stmt(s Stmt) error {
	switch s := s.(type) {
	case AssignS:
		slot, err := c.varSlot(s.Name) // declared by collectVars
		if err != nil {
			return err
		}
		return c.exprTo(s.E, slot)
	case SCS:
		m := c.mark()
		reg, err := c.operand(s.Reg)
		if err != nil {
			return err
		}
		val, err := c.operand(s.Val)
		if err != nil {
			return err
		}
		ok, err := c.resultSlot(s.Ok)
		if err != nil {
			return err
		}
		prev, err := c.resultSlot(s.Prev)
		if err != nil {
			return err
		}
		c.emit(Instr{Op: OpSC, A: ok, B: prev, C: reg, D: val})
		c.release(m)
		return nil
	case ValidateS:
		m := c.mark()
		reg, err := c.operand(s.Reg)
		if err != nil {
			return err
		}
		ok, err := c.resultSlot(s.Ok)
		if err != nil {
			return err
		}
		val, err := c.resultSlot(s.Val)
		if err != nil {
			return err
		}
		c.emit(Instr{Op: OpValidate, A: ok, B: val, C: reg})
		c.release(m)
		return nil
	case MoveS:
		m := c.mark()
		src, err := c.operand(s.Src)
		if err != nil {
			return err
		}
		dst, err := c.operand(s.Dst)
		if err != nil {
			return err
		}
		c.emit(Instr{Op: OpMove, A: src, B: dst})
		c.release(m)
		return nil
	case DoS:
		m := c.mark()
		if _, err := c.operand(s.E); err != nil {
			return err
		}
		c.release(m)
		return nil
	case IfS:
		m := c.mark()
		cond, err := c.operand(s.Cond)
		if err != nil {
			return err
		}
		jnot := c.emit(Instr{Op: OpJumpIfNot, A: cond})
		c.release(m)
		if err := c.stmts(s.Then); err != nil {
			return err
		}
		if len(s.Else) == 0 {
			c.code[jnot].B = int32(len(c.code))
			return nil
		}
		jend := c.emit(Instr{Op: OpJump})
		c.code[jnot].B = int32(len(c.code))
		if err := c.stmts(s.Else); err != nil {
			return err
		}
		c.code[jend].A = int32(len(c.code))
		return nil
	case LoopS:
		start := int32(len(c.code))
		c.loops = append(c.loops, nil)
		if err := c.stmts(s.Body); err != nil {
			return err
		}
		c.emit(Instr{Op: OpJump, A: start})
		breaks := c.loops[len(c.loops)-1]
		c.loops = c.loops[:len(c.loops)-1]
		for _, pc := range breaks {
			c.code[pc].A = int32(len(c.code))
		}
		return nil
	case BreakS:
		if len(c.loops) == 0 {
			return fmt.Errorf("break outside loop")
		}
		pc := c.emit(Instr{Op: OpJump})
		c.loops[len(c.loops)-1] = append(c.loops[len(c.loops)-1], pc)
		return nil
	case ReturnS:
		m := c.mark()
		src, err := c.operand(s.E)
		if err != nil {
			return err
		}
		c.emit(Instr{Op: OpReturn, A: src})
		c.release(m)
		return nil
	default:
		return fmt.Errorf("unknown statement %T", s)
	}
}
