package vmachine

import (
	"strings"
	"testing"

	"jayanti98/internal/shmem"
)

func init() {
	RegisterNative("test.sum", func(_, _ int, args []Value) Value {
		total := 0
		for _, a := range args {
			total += a.AsInt()
		}
		return Int(total)
	})
	RegisterNative("test.panics", func(_, _ int, args []Value) Value {
		panic("native exploded")
	})
}

func mustYield(t *testing.T, y Yield, want YieldKind) Yield {
	t.Helper()
	if y.Kind != want {
		t.Fatalf("yield = %v (%+v), want %v", y.Kind, y, want)
	}
	return y
}

// TestReturnWithoutStepping: a body that returns immediately must yield
// YReturn from Start, with zero memory operations and zero tosses — the
// compiler edge case where the entire chunk is one instruction.
func TestReturnWithoutStepping(t *testing.T) {
	chunk := MustCompile(&Program{
		Name: "const-return",
		Body: []Stmt{ReturnS{E: ConstE{V: Int(42)}}},
	})
	x := NewExec(chunk, 0, 1)
	y := mustYield(t, x.Start(), YReturn)
	if y.Ret != 42 {
		t.Fatalf("Ret = %T(%v), want int(42)", y.Ret, y.Ret)
	}
	if !x.Terminal() {
		t.Fatal("Exec not terminal after return")
	}
}

// TestTossAtChunkBoundaries: tosses as the very first and very last
// activity of a chunk — resume bookkeeping at both edges, and the int64
// dynamic type of outcomes must survive into the return value.
func TestTossAtChunkBoundaries(t *testing.T) {
	chunk := MustCompile(&Program{
		Name: "toss-edges",
		Body: []Stmt{
			AssignS{Name: "a", E: TossE{}},
			AssignS{Name: "b", E: TossE{}},
			ReturnS{E: AddE{A: VarE{Name: "a"}, B: VarE{Name: "b"}}},
		},
	})
	x := NewExec(chunk, 0, 1)
	mustYield(t, x.Start(), YToss)
	mustYield(t, x.ResumeToss(5), YToss)
	y := mustYield(t, x.ResumeToss(7), YReturn)
	if v, ok := y.Ret.(int64); !ok || v != 12 {
		t.Fatalf("Ret = %T(%v), want int64(12)", y.Ret, y.Ret)
	}
}

// TestOpSequenceAndTypes drives every memory opcode once and checks the
// ops the VM emits and the exact dynamic types it stores.
func TestOpSequenceAndTypes(t *testing.T) {
	chunk := MustCompile(&Program{
		Name: "all-ops",
		Body: []Stmt{
			AssignS{Name: "v", E: LLE{Reg: ConstE{V: Int(3)}}},
			SCS{Ok: "ok", Prev: "prev", Reg: ConstE{V: Int(3)}, Val: ConstE{V: Str("x")}},
			ValidateS{Ok: "vok", Val: "vv", Reg: ConstE{V: Int(3)}},
			AssignS{Name: "r", E: ReadE{Reg: ConstE{V: Int(3)}}},
			AssignS{Name: "old", E: SwapE{Reg: ConstE{V: Int(4)}, Val: ConstE{V: Int(9)}}},
			MoveS{Src: ConstE{V: Int(4)}, Dst: ConstE{V: Int(5)}},
			ReturnS{E: VarE{Name: "ok"}},
		},
	})
	x := NewExec(chunk, 2, 8)
	mem := shmem.New()
	y := x.Start()
	var ops []string
	for y.Kind == YOp {
		ops = append(ops, y.Op.String())
		y = x.ResumeOp(mem.Apply(2, y.Op))
	}
	want := []string{"LL(R3)", "SC(R3, x)", "validate(R3)", "validate(R3)", "swap(R4, 9)", "move(R4, R5)"}
	if strings.Join(ops, ";") != strings.Join(want, ";") {
		t.Fatalf("op sequence = %v, want %v", ops, want)
	}
	y = mustYield(t, y, YReturn)
	if v, ok := y.Ret.(bool); !ok || !v {
		t.Fatalf("Ret = %T(%v), want bool(true)", y.Ret, y.Ret)
	}
}

// TestNativePanicCrashes: a panicking native must surface as YCrash with
// the interpreter's "panic: ..." rendering.
func TestNativePanicCrashes(t *testing.T) {
	chunk := MustCompile(&Program{
		Name: "native-crash",
		Body: []Stmt{
			DoS{E: CallE{Fn: "test.panics"}},
			ReturnS{E: ConstE{V: Int(0)}},
		},
	})
	x := NewExec(chunk, 0, 1)
	y := mustYield(t, x.Start(), YCrash)
	if y.Ret != "panic: native exploded" {
		t.Fatalf("crash message = %q", y.Ret)
	}
	if !x.Terminal() {
		t.Fatal("Exec not terminal after crash")
	}
}

// TestSnapshotRestoreRoundTrip: snapshotting mid-run, advancing, restoring
// and re-advancing with the same inputs must reproduce identical yields —
// the flat-array snapshot is equivalent to the deep machine fork it
// replaces.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	chunk := MustCompile(&Program{
		Name: "snap",
		Body: []Stmt{
			AssignS{Name: "t", E: TossE{}},
			AssignS{Name: "v", E: LLE{Reg: ConstE{V: Int(0)}}},
			SCS{Ok: "ok", Reg: ConstE{V: Int(0)}, Val: AddE{A: VarE{Name: "t"}, B: ConstE{V: I64(1)}}},
			ReturnS{E: VarE{Name: "t"}},
		},
	})
	x := NewExec(chunk, 0, 2)
	mustYield(t, x.Start(), YToss)
	mustYield(t, x.ResumeToss(3), YOp) // suspended at LL
	snap := x.Snapshot()

	run := func(x *Exec) []Yield {
		var ys []Yield
		y := x.ResumeOp(shmem.Response{OK: true, Val: nil})
		ys = append(ys, y)
		y = x.ResumeOp(shmem.Response{OK: true, Val: int64(3)})
		ys = append(ys, y)
		return ys
	}
	first := run(x)
	x.Restore(snap)
	second := run(x)
	for i := range first {
		if first[i].Kind != second[i].Kind || first[i].Op.String() != second[i].Op.String() || !shmem.ValuesEqual(first[i].Ret, second[i].Ret) {
			t.Fatalf("replay diverged at yield %d: %+v vs %+v", i, first[i], second[i])
		}
	}
	if v, ok := second[1].Ret.(int64); !ok || v != 3 {
		t.Fatalf("Ret = %T(%v), want int64(3)", second[1].Ret, second[1].Ret)
	}
}

// TestCloneIndependence: a cloned Exec must not share mutable set state
// with its origin.
func TestCloneIndependence(t *testing.T) {
	x := NewExec(MustCompile(&Program{
		Name: "clone",
		Body: []Stmt{
			AssignS{Name: "v", E: LLE{Reg: ConstE{V: Int(0)}}},
			ReturnS{E: VarE{Name: "v"}},
		},
	}), 0, 1)
	mustYield(t, x.Start(), YOp)
	x.locals[0] = Set(shmem.PidBits{0b101})
	c := x.Clone()
	c.locals[0].Set.Add(1)
	if x.locals[0].Set.Contains(1) {
		t.Fatal("clone shares set backing with origin")
	}
	y := mustYield(t, x.ResumeOp(shmem.Response{OK: true, Val: "a"}), YReturn)
	if y.Ret != "a" {
		t.Fatalf("origin Ret = %v", y.Ret)
	}
	y = mustYield(t, c.ResumeOp(shmem.Response{OK: true, Val: "b"}), YReturn)
	if y.Ret != "b" {
		t.Fatalf("clone Ret = %v", y.Ret)
	}
}

// TestCompileErrors pins the compiler's rejection of malformed programs.
func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name string
		prog *Program
		want string
	}{
		{"undefined-variable", &Program{Name: "p", Body: []Stmt{ReturnS{E: VarE{Name: "ghost"}}}}, "undefined variable"},
		{"unknown-native", &Program{Name: "p", Body: []Stmt{ReturnS{E: CallE{Fn: "no.such"}}}}, "unknown native"},
		{"break-outside-loop", &Program{Name: "p", Body: []Stmt{BreakS{}, ReturnS{E: ConstE{V: Int(0)}}}}, "break outside loop"},
		{"fall-off-end", &Program{Name: "p", Body: []Stmt{AssignS{Name: "x", E: ConstE{V: Int(1)}}}}, "fall off the end"},
		{"empty-body", &Program{Name: "p"}, "empty chunk"},
		{"set-constant", &Program{Name: "p", Body: []Stmt{ReturnS{E: ConstE{V: Set(shmem.PidBits{1})}}}}, "not poolable"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Compile(c.prog)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("Compile error = %v, want substring %q", err, c.want)
			}
		})
	}
}

// TestVerifyRejectsHandAssembled pins Verify's range checking on chunks the
// compiler never produces.
func TestVerifyRejectsHandAssembled(t *testing.T) {
	cases := []struct {
		name  string
		chunk *Chunk
		want  string
	}{
		{"jump-out-of-range", &Chunk{Name: "c", Code: []Instr{{Op: OpJump, A: 7}}, NumLocals: 1}, "jump target"},
		{"slot-out-of-range", &Chunk{Name: "c", Code: []Instr{{Op: OpSelf, A: 3}, {Op: OpReturn}}, NumLocals: 1}, "local 3 out of range"},
		{"const-out-of-range", &Chunk{Name: "c", Code: []Instr{{Op: OpConst, B: 0}, {Op: OpReturn}}, NumLocals: 1}, "const 0 out of range"},
		{"native-out-of-range", &Chunk{Name: "c", Code: []Instr{{Op: OpCall}, {Op: OpReturn}}, NumLocals: 1}, "native 0 out of range"},
		{"unknown-opcode", &Chunk{Name: "c", Code: []Instr{{Op: Opcode(200)}, {Op: OpReturn}}, NumLocals: 1}, "unknown opcode"},
		{"fall-off-end", &Chunk{Name: "c", Code: []Instr{{Op: OpSelf}}, NumLocals: 1}, "fall off the end"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.chunk.Verify()
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("Verify = %v, want substring %q", err, c.want)
			}
		})
	}
}

// TestControlFlow compiles nested loops/ifs with breaks and natives and
// checks the computed result: sum of 0..4 via a loop with a conditional
// break.
func TestControlFlow(t *testing.T) {
	chunk := MustCompile(&Program{
		Name: "sum-loop",
		Body: []Stmt{
			AssignS{Name: "i", E: ConstE{V: Int(0)}},
			AssignS{Name: "sum", E: ConstE{V: Int(0)}},
			LoopS{Body: []Stmt{
				IfS{
					Cond: EqE{A: VarE{Name: "i"}, B: ConstE{V: Int(5)}},
					Then: []Stmt{BreakS{}},
				},
				AssignS{Name: "sum", E: CallE{Fn: "test.sum", Args: []Expr{VarE{Name: "sum"}, VarE{Name: "i"}}}},
				AssignS{Name: "i", E: AddE{A: VarE{Name: "i"}, B: ConstE{V: Int(1)}}},
			}},
			ReturnS{E: VarE{Name: "sum"}},
		},
	})
	x := NewExec(chunk, 0, 1)
	y := mustYield(t, x.Start(), YReturn)
	if y.Ret != 10 {
		t.Fatalf("Ret = %T(%v), want int(10)", y.Ret, y.Ret)
	}
}

// TestResumeMisuse: delivering the wrong resume kind is a scheduler bug and
// must panic loudly rather than crash the machine.
func TestResumeMisuse(t *testing.T) {
	chunk := MustCompile(&Program{
		Name: "misuse",
		Body: []Stmt{
			AssignS{Name: "t", E: TossE{}},
			ReturnS{E: VarE{Name: "t"}},
		},
	})
	x := NewExec(chunk, 0, 1)
	mustYield(t, x.Start(), YToss)
	defer func() {
		if recover() == nil {
			t.Fatal("ResumeOp on pending toss did not panic")
		}
	}()
	x.ResumeOp(shmem.Response{})
}

// TestValueBoxRoundTrip: Box∘Unbox must restore the exact dynamic type for
// every scalar kind, and KSet must refuse to box.
func TestValueBoxRoundTrip(t *testing.T) {
	for _, v := range []shmem.Value{nil, int(7), int64(7), true, false, "s", []int{1}} {
		got := Unbox(v).Box()
		if !shmem.ValuesEqual(v, got) {
			t.Fatalf("round trip %T(%v) -> %T(%v)", v, v, got, got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("boxing a KSet did not panic")
		}
	}()
	Set(shmem.PidBits{1}).Box()
}

// TestDisassembleSmoke: the disassembler must render every opcode it is
// given without panicking and name the chunk.
func TestDisassembleSmoke(t *testing.T) {
	chunk := MustCompile(&Program{
		Name: "disasm",
		Body: []Stmt{
			AssignS{Name: "s", E: CallE{Fn: "test.sum", Args: []Expr{SelfE{}, NProcsE{}}}},
			IfS{Cond: EqE{A: VarE{Name: "s"}, B: ConstE{V: Int(0)}}, Then: []Stmt{ReturnS{E: ConstE{V: Int(1)}}}},
			ReturnS{E: VarE{Name: "s"}},
		},
	})
	out := chunk.Disassemble()
	for _, want := range []string{"chunk disasm", "CALL", "test.sum", "JNOT", "RET"} {
		if !strings.Contains(out, want) {
			t.Fatalf("disassembly missing %q:\n%s", want, out)
		}
	}
}
