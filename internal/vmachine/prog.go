package vmachine

// This file defines the compiler's source form: a small structured program
// representation in which algorithm bodies are (re-)expressed so they can
// be compiled once into a Chunk. The representation deliberately mirrors
// the machine.Env surface — every shared-memory expression corresponds to
// exactly one yield point — so a program and its direct-style twin emit
// identical action streams; package lockstep proves that equivalence
// mechanically.

// Program is a named algorithm body in source form.
type Program struct {
	// Name labels the compiled chunk (normally the algorithm name).
	Name string
	// Body is the statement sequence; it must end every control path in a
	// Return (the compiler appends nothing).
	Body []Stmt
}

// Expr is an expression node. Every shared-memory expression (TossE, LLE,
// ReadE, SwapE) is a yield point evaluated exactly once, in Go evaluation
// order (arguments before the operation, left to right).
type Expr interface{ isExpr() }

type (
	// ConstE is a literal value.
	ConstE struct{ V Value }
	// SelfE is the executing process id (Env.ID).
	SelfE struct{}
	// NProcsE is the process count (Env.N).
	NProcsE struct{}
	// VarE reads a program variable.
	VarE struct{ Name string }
	// TossE is a coin toss (Env.Toss), yielding an int64 outcome.
	TossE struct{}
	// LLE is LL(Reg) (Env.LL).
	LLE struct{ Reg Expr }
	// ReadE is Read(Reg): a validate whose boolean is discarded (Env.Read).
	ReadE struct{ Reg Expr }
	// SwapE is swap(Reg, Val), evaluating to the previous value (Env.Swap).
	SwapE struct{ Reg, Val Expr }
	// CallE invokes a registered native function.
	CallE struct {
		Fn   string
		Args []Expr
	}
	// EqE is structural equality, evaluating to a bool.
	EqE struct{ A, B Expr }
	// AddE is integer addition.
	AddE struct{ A, B Expr }
	// BandE is integer bitwise AND (coin-toss parity picks).
	BandE struct{ A, B Expr }
)

func (ConstE) isExpr()  {}
func (SelfE) isExpr()   {}
func (NProcsE) isExpr() {}
func (VarE) isExpr()    {}
func (TossE) isExpr()   {}
func (LLE) isExpr()     {}
func (ReadE) isExpr()   {}
func (SwapE) isExpr()   {}
func (CallE) isExpr()   {}
func (EqE) isExpr()     {}
func (AddE) isExpr()    {}
func (BandE) isExpr()   {}

// Stmt is a statement node.
type Stmt interface{ isStmt() }

type (
	// AssignS evaluates E into variable Name (declaring it on first use).
	AssignS struct {
		Name string
		E    Expr
	}
	// SCS is SC(Reg, Val) with its two results (Env.SC): Ok and Prev name
	// the destination variables; either may be "" to discard that result.
	SCS struct {
		Ok, Prev string
		Reg, Val Expr
	}
	// ValidateS is validate(Reg) with its two results (Env.Validate).
	ValidateS struct {
		Ok, Val string
		Reg     Expr
	}
	// MoveS is move(Src, Dst) (Env.Move).
	MoveS struct{ Src, Dst Expr }
	// DoS evaluates E for its effect and discards the result.
	DoS struct{ E Expr }
	// IfS branches on a boolean condition.
	IfS struct {
		Cond       Expr
		Then, Else []Stmt
	}
	// LoopS repeats Body forever; exit via BreakS or ReturnS.
	LoopS struct{ Body []Stmt }
	// BreakS exits the innermost LoopS.
	BreakS struct{}
	// ReturnS terminates the process with E as its return value.
	ReturnS struct{ E Expr }
)

func (AssignS) isStmt()   {}
func (SCS) isStmt()       {}
func (ValidateS) isStmt() {}
func (MoveS) isStmt()     {}
func (DoS) isStmt()       {}
func (IfS) isStmt()       {}
func (LoopS) isStmt()     {}
func (BreakS) isStmt()    {}
func (ReturnS) isStmt()   {}
