package vmachine

import (
	"fmt"
	"sort"
	"sync"
)

// NativeFunc is a Go function callable from compiled code: it receives the
// executing process's identity and a window of argument values, and
// returns the result value. Natives are the bridge between bytecode and
// domain helpers (pid-set codecs, object-type operations) — the
// native-function-registry design of the exemplar VMs.
//
// Natives run on the scheduler's goroutine inside a single VM step; they
// must not block, and they may mutate set-kind arguments in place only
// when the compiled program passes ownership (the pids.* codecs do: the
// destination set is threaded through the call explicitly).
//
// A native that panics crashes the machine, exactly as a panicking
// algorithm body crashes the interpreter: the panic value is captured and
// surfaced as an ActCrash with the same rendered message.
type NativeFunc func(id, n int, args []Value) Value

// registry is the process-wide native table. Registration happens in
// package init functions (the wakeup package registers its pid-set
// codecs); lookups happen at compile time, so a running Exec never takes
// the lock.
var registry = struct {
	sync.RWMutex
	fns map[string]NativeFunc
}{fns: make(map[string]NativeFunc)}

// RegisterNative installs fn under name. Registering a name twice panics:
// native semantics are part of compiled-chunk meaning, and silently
// replacing one would change the meaning of already-compiled chunks.
func RegisterNative(name string, fn NativeFunc) {
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.fns[name]; dup {
		panic(fmt.Sprintf("vmachine: native %q registered twice", name))
	}
	registry.fns[name] = fn
}

// lookupNative resolves name, or returns an error naming the known set.
func lookupNative(name string) (NativeFunc, error) {
	registry.RLock()
	defer registry.RUnlock()
	fn, ok := registry.fns[name]
	if !ok {
		return nil, fmt.Errorf("unknown native %q (registered: %v)", name, nativeNamesLocked())
	}
	return fn, nil
}

func nativeNamesLocked() []string {
	names := make([]string, 0, len(registry.fns))
	for name := range registry.fns {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
