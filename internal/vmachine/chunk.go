package vmachine

import (
	"fmt"
	"strings"
)

// Opcode identifies one VM instruction.
type Opcode uint8

// The instruction set. Operand columns refer to Instr fields A/B/C/D;
// "yield" marks instructions that suspend the machine and publish a
// pending action to the scheduler (exactly the yield points of the
// direct-style interpreter).
//
//	OpConst    A=dst, B=const index          locals[A] = consts[B]
//	OpMov      A=dst, B=src                  locals[A] = locals[B]
//	OpSelf     A=dst                         locals[A] = Int(id)
//	OpNProcs   A=dst                         locals[A] = Int(n)
//	OpEq       A=dst, B=x, C=y               locals[A] = Bool(x == y)
//	OpAdd      A=dst, B=x, C=y               locals[A] = Int(x + y)
//	OpBand     A=dst, B=x, C=y               locals[A] = Int(x & y)
//	OpJump     A=target                      pc = A
//	OpJumpIfNot A=cond, B=target             if !locals[A] { pc = B }
//	OpCall     A=dst, B=native, C=base, D=n  locals[A] = native(locals[C:C+n])
//	OpToss     A=dst                         yield toss; locals[A] = I64(outcome)
//	OpLL       A=dst, B=reg                  yield LL(reg); locals[A] = value
//	OpSC       A=ok, B=prev, C=reg, D=val    yield SC(reg, val); locals[A], locals[B]
//	OpValidate A=ok, B=val, C=reg            yield validate(reg); locals[A], locals[B]
//	OpRead     A=dst, B=reg                  yield validate(reg); locals[A] = value
//	OpSwap     A=prev, B=reg, C=val          yield swap(reg, val); locals[A]
//	OpMove     A=src, B=dst                  yield move(src, dst)
//	OpReturn   A=src                         yield return locals[A]; terminal
const (
	OpConst Opcode = iota + 1
	OpMov
	OpSelf
	OpNProcs
	OpEq
	OpAdd
	OpBand
	OpJump
	OpJumpIfNot
	OpCall
	OpToss
	OpLL
	OpSC
	OpValidate
	OpRead
	OpSwap
	OpMove
	OpReturn
)

// String names the opcode in disassembly.
func (op Opcode) String() string {
	names := [...]string{
		OpConst: "CONST", OpMov: "MOV", OpSelf: "SELF", OpNProcs: "NPROCS",
		OpEq: "EQ", OpAdd: "ADD", OpBand: "BAND",
		OpJump: "JMP", OpJumpIfNot: "JNOT", OpCall: "CALL",
		OpToss: "TOSS", OpLL: "LL", OpSC: "SC", OpValidate: "VALIDATE",
		OpRead: "READ", OpSwap: "SWAP", OpMove: "MOVE", OpReturn: "RET",
	}
	if int(op) < len(names) && names[op] != "" {
		return names[op]
	}
	return fmt.Sprintf("Opcode(%d)", uint8(op))
}

// Instr is one fixed-width instruction. Operand meaning depends on Op (see
// the opcode table); unused operands are zero.
type Instr struct {
	Op         Opcode
	A, B, C, D int32
}

// Chunk is a compiled algorithm body: the instruction stream, the constant
// pool, and the resolved native functions its OpCall sites invoke. Chunks
// are immutable after Compile and may be shared read-only by any number of
// concurrently stepping Execs.
type Chunk struct {
	// Name labels the chunk (normally the algorithm name).
	Name string
	// Code is the instruction stream; execution starts at Code[0].
	Code []Instr
	// Consts is the constant pool, deduplicated by the compiler.
	Consts []Value
	// Natives are the resolved native functions, indexed by OpCall.B.
	Natives []NativeFunc
	// NativeNames parallels Natives (for disassembly and errors).
	NativeNames []string
	// NumLocals is the size of the locals array an Exec allocates.
	NumLocals int
}

// Verify checks chunk invariants independently of the compiler: every jump
// lands inside the code, every register/constant/native index is in range,
// and the final instruction cannot fall off the end. Compile always
// returns verified chunks; Verify exists so hand-assembled chunks (tests,
// future frontends) get the same guarantees.
func (c *Chunk) Verify() error {
	if len(c.Code) == 0 {
		return fmt.Errorf("vmachine: %s: empty chunk", c.Name)
	}
	slot := func(i int32) error {
		if i < 0 || int(i) >= c.NumLocals {
			return fmt.Errorf("local %d out of range [0,%d)", i, c.NumLocals)
		}
		return nil
	}
	target := func(i int32) error {
		if i < 0 || int(i) >= len(c.Code) {
			return fmt.Errorf("jump target %d out of range [0,%d)", i, len(c.Code))
		}
		return nil
	}
	for pc, in := range c.Code {
		var err error
		switch in.Op {
		case OpConst:
			if in.B < 0 || int(in.B) >= len(c.Consts) {
				err = fmt.Errorf("const %d out of range [0,%d)", in.B, len(c.Consts))
			} else {
				err = slot(in.A)
			}
		case OpMov:
			err = firstErr(slot(in.A), slot(in.B))
		case OpSelf, OpNProcs, OpToss:
			err = slot(in.A)
		case OpEq, OpAdd, OpBand:
			err = firstErr(slot(in.A), slot(in.B), slot(in.C))
		case OpJump:
			err = target(in.A)
		case OpJumpIfNot:
			err = firstErr(slot(in.A), target(in.B))
		case OpCall:
			if in.B < 0 || int(in.B) >= len(c.Natives) {
				err = fmt.Errorf("native %d out of range [0,%d)", in.B, len(c.Natives))
			} else if in.D < 0 || in.C < 0 || int(in.C)+int(in.D) > c.NumLocals {
				err = fmt.Errorf("arg window [%d,%d) out of range", in.C, in.C+in.D)
			} else {
				err = slot(in.A)
			}
		case OpLL, OpRead:
			err = firstErr(slot(in.A), slot(in.B))
		case OpSC:
			err = firstErr(slot(in.A), slot(in.B), slot(in.C), slot(in.D))
		case OpValidate, OpSwap:
			err = firstErr(slot(in.A), slot(in.B), slot(in.C))
		case OpMove:
			err = firstErr(slot(in.A), slot(in.B))
		case OpReturn:
			err = slot(in.A)
		default:
			err = fmt.Errorf("unknown opcode %d", in.Op)
		}
		if err != nil {
			return fmt.Errorf("vmachine: %s: pc %d (%v): %w", c.Name, pc, in.Op, err)
		}
	}
	// Execution must never run off the end: the last instruction has to be
	// a return or an unconditional jump backwards into the chunk.
	last := c.Code[len(c.Code)-1]
	if last.Op != OpReturn && last.Op != OpJump {
		return fmt.Errorf("vmachine: %s: last instruction %v can fall off the end", c.Name, last.Op)
	}
	return nil
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Disassemble renders the chunk for debugging and documentation.
func (c *Chunk) Disassemble() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chunk %s: %d instrs, %d consts, %d locals\n", c.Name, len(c.Code), len(c.Consts), c.NumLocals)
	for pc, in := range c.Code {
		fmt.Fprintf(&b, "%4d  %-9s", pc, in.Op)
		switch in.Op {
		case OpConst:
			fmt.Fprintf(&b, "r%d <- %v", in.A, c.Consts[in.B])
		case OpCall:
			fmt.Fprintf(&b, "r%d <- %s(r%d..r%d)", in.A, c.NativeNames[in.B], in.C, in.C+in.D-1)
		case OpJump:
			fmt.Fprintf(&b, "-> %d", in.A)
		case OpJumpIfNot:
			fmt.Fprintf(&b, "if !r%d -> %d", in.A, in.B)
		default:
			fmt.Fprintf(&b, "%d %d %d %d", in.A, in.B, in.C, in.D)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
