package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"jayanti98/internal/stats"
)

// Status is a job's lifecycle state.
type Status string

// The job states. A job moves queued → running → {done, failed,
// canceled}; a cache hit is born done.
const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusCanceled Status = "canceled"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

// ErrQueueFull is returned by Submit when the queue has no room; callers
// (the HTTP layer) translate it to 503.
var ErrQueueFull = errors.New("jobs: queue full")

// ErrShuttingDown is returned by Submit after Shutdown has begun.
var ErrShuttingDown = errors.New("jobs: scheduler shutting down")

// Options configures a Scheduler.
type Options struct {
	// Workers is the number of jobs run concurrently (≤ 0: 2).
	Workers int
	// QueueDepth bounds the number of queued-but-not-running jobs
	// (≤ 0: 64). Submit fails with ErrQueueFull beyond it.
	QueueDepth int
	// JobTimeout is the per-job deadline (0: none).
	JobTimeout time.Duration
	// SweepParallel is the sweep worker count each job runs beneath it
	// (≤ 0: one per CPU). It is an execution knob, not part of job
	// identity: results are parallelism-independent by the determinism
	// contract.
	SweepParallel int
	// Cache is the result cache (nil: a fresh memory-only cache).
	Cache *Cache
}

// job is the scheduler's mutable record of one submission.
type job struct {
	id   string
	spec *Spec

	mu       sync.Mutex
	status   Status
	cached   bool
	result   []byte
	errMsg   string
	created  time.Time
	started  time.Time
	finished time.Time

	progress *Progress
	cancel   context.CancelFunc
	done     chan struct{} // closed on terminal status
}

// JobView is an immutable snapshot of a job, the unit the HTTP layer
// serves.
type JobView struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"`
	Spec   *Spec  `json:"spec"`
	Status Status `json:"status"`
	// Cached reports that the result was served from the result cache
	// rather than computed by this job.
	Cached   bool   `json:"cached"`
	Progress Event  `json:"progress"`
	Error    string `json:"error,omitempty"`
	// Result is the job's payload (present only when Status is done).
	Result json.RawMessage `json:"result,omitempty"`

	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
}

// Counters is a snapshot of the scheduler's expvar-able counters.
type Counters struct {
	Submitted   int64 `json:"submitted"`
	Completed   int64 `json:"completed"`
	Failed      int64 `json:"failed"`
	Canceled    int64 `json:"canceled"`
	CacheServed int64 `json:"cacheServed"`
	QueueDepth  int64 `json:"queueDepth"`
	Running     int64 `json:"running"`
}

// Scheduler runs jobs over a bounded worker pool with per-job
// cancellation, deadline, and panic isolation, de-duplicating identical
// specs in flight (two submissions of one hash share one job — the
// singleflight the content hash makes trivial) and serving repeated specs
// from the content-addressed cache.
type Scheduler struct {
	opts  Options
	cache *Cache

	baseCtx    context.Context
	baseCancel context.CancelFunc
	queue      chan *job
	wg         sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*job
	draining bool

	counters struct {
		submitted, completed, failed, canceled, cacheServed int64
	}
	running int64

	phaseMu   sync.Mutex
	phaseMS   map[string][]float64 // per-phase latency samples, milliseconds
	nowForDur func() time.Time
}

// NewScheduler starts a scheduler and its worker pool.
func NewScheduler(opts Options) (*Scheduler, error) {
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	cache := opts.Cache
	if cache == nil {
		var err error
		if cache, err = NewCache(0, ""); err != nil {
			return nil, err
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Scheduler{
		opts:       opts,
		cache:      cache,
		baseCtx:    ctx,
		baseCancel: cancel,
		queue:      make(chan *job, opts.QueueDepth),
		jobs:       make(map[string]*job),
		phaseMS:    make(map[string][]float64),
	}
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Cache returns the scheduler's result cache.
func (s *Scheduler) Cache() *Cache { return s.cache }

// Submit normalizes, validates, and hashes spec, then returns the job for
// that hash: the already-tracked job if one is queued, running, or done
// (idempotent submission, singleflight de-duplication); a synthetic done
// job if the cache holds the result; otherwise a freshly enqueued job. A
// previously failed or canceled hash is resubmitted fresh — a canceled
// run never poisons the cache or blocks a retry.
//
// The returned bool reports whether this call enqueued new work. In the
// returned view, Cached is true whenever the submission was answered with
// an existing result (from the cache or from an already-completed job)
// rather than by computing anything.
func (s *Scheduler) Submit(spec *Spec) (JobView, bool, error) {
	id, err := spec.ID()
	if err != nil {
		return JobView{}, false, err
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return JobView{}, false, ErrShuttingDown
	}
	if j, ok := s.jobs[id]; ok {
		view := j.snapshot()
		if !(view.Status == StatusFailed || view.Status == StatusCanceled) {
			if view.Status == StatusDone {
				view.Cached = true
				s.counters.cacheServed++
			}
			s.mu.Unlock()
			return view, false, nil
		}
		// fall through: replace the failed/canceled record
	}

	j := &job{
		id:       id,
		spec:     spec,
		status:   StatusQueued,
		created:  time.Now(),
		progress: NewProgress(),
		done:     make(chan struct{}),
	}

	if result, ok := s.cache.Get(id); ok {
		now := time.Now()
		j.status = StatusDone
		j.cached = true
		j.result = result
		j.started, j.finished = now, now
		j.progress.Set("cached", 1, 1)
		j.progress.Close()
		close(j.done)
		s.jobs[id] = j
		s.counters.submitted++
		s.counters.cacheServed++
		s.mu.Unlock()
		return j.snapshot(), false, nil
	}

	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		return JobView{}, false, ErrQueueFull
	}
	s.jobs[id] = j
	s.counters.submitted++
	s.mu.Unlock()
	return j.snapshot(), true, nil
}

// Get returns a snapshot of the job with the given ID.
func (s *Scheduler) Get(id string) (JobView, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobView{}, false
	}
	return j.snapshot(), true
}

// Subscribe attaches to a job's progress stream. The returned snapshot is
// the state as of subscription; the channel delivers subsequent events
// and closes when the job reaches a terminal state.
func (s *Scheduler) Subscribe(id string) (JobView, <-chan Event, func(), bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobView{}, nil, nil, false
	}
	ch, cancel := j.progress.Subscribe()
	return j.snapshot(), ch, cancel, true
}

// Cancel requests cancellation of a queued or running job. Cancelling a
// queued job is immediate; a running job's context is cancelled and the
// job reports canceled once its workload unwinds. Cancel returns false
// for unknown IDs and does nothing to terminal jobs.
func (s *Scheduler) Cancel(id string) bool {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return false
	}
	j.mu.Lock()
	switch j.status {
	case StatusQueued:
		j.status = StatusCanceled
		j.finished = time.Now()
		cancelFn := j.cancel
		j.mu.Unlock()
		if cancelFn != nil {
			cancelFn()
		}
		j.progress.Set("canceled", 0, 0)
		j.progress.Close()
		close(j.done)
		s.mu.Lock()
		s.counters.canceled++
		s.mu.Unlock()
		return true
	case StatusRunning:
		cancelFn := j.cancel
		j.mu.Unlock()
		if cancelFn != nil {
			cancelFn()
		}
		return true
	default:
		j.mu.Unlock()
		return true
	}
}

// Wait blocks until the job reaches a terminal state or ctx is done, and
// returns the final snapshot.
func (s *Scheduler) Wait(ctx context.Context, id string) (JobView, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobView{}, fmt.Errorf("jobs: unknown job %q", id)
	}
	select {
	case <-j.done:
		return j.snapshot(), nil
	case <-ctx.Done():
		return j.snapshot(), ctx.Err()
	}
}

// Counters snapshots the scheduler counters.
func (s *Scheduler) Counters() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Counters{
		Submitted:   s.counters.submitted,
		Completed:   s.counters.completed,
		Failed:      s.counters.failed,
		Canceled:    s.counters.canceled,
		CacheServed: s.counters.cacheServed,
		QueueDepth:  int64(len(s.queue)),
		Running:     s.running,
	}
}

// PhaseLatencies summarizes the recorded per-phase wall-clock samples
// (milliseconds) of completed jobs; the Median and P95 fields are the
// server's latency lines.
func (s *Scheduler) PhaseLatencies() map[string]stats.Summary {
	s.phaseMu.Lock()
	defer s.phaseMu.Unlock()
	out := make(map[string]stats.Summary, len(s.phaseMS))
	for phase, ms := range s.phaseMS {
		out[phase] = stats.Summarize(ms)
	}
	return out
}

// Shutdown stops accepting submissions, cancels every queued and running
// job, and waits for the workers to drain — at most until ctx is done.
func (s *Scheduler) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	s.baseCancel() // cancels the context under every running job
	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("jobs: shutdown: %w", ctx.Err())
	}
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
	// Drain path: the queue is closed; any job still queued was either
	// cancelled explicitly or is abandoned by shutdown — runJob marks
	// those canceled immediately because the base context is done.
}

// runJob executes one job with cancellation, deadline, and panic
// isolation, then records the outcome.
func (s *Scheduler) runJob(j *job) {
	var ctx context.Context
	var cancel context.CancelFunc
	if s.opts.JobTimeout > 0 {
		ctx, cancel = context.WithTimeout(s.baseCtx, s.opts.JobTimeout)
	} else {
		ctx, cancel = context.WithCancel(s.baseCtx)
	}
	defer cancel()

	j.mu.Lock()
	if j.status != StatusQueued {
		// Cancelled while queued; nothing to run.
		j.mu.Unlock()
		return
	}
	j.status = StatusRunning
	j.started = time.Now()
	j.cancel = cancel
	j.mu.Unlock()
	s.mu.Lock()
	s.running++
	s.mu.Unlock()

	result, err := s.runIsolated(ctx, j)

	j.mu.Lock()
	j.finished = time.Now()
	switch {
	case err == nil:
		j.status = StatusDone
		j.result = result
	case ctx.Err() != nil && errors.Is(err, ctx.Err()):
		// The job unwound because its context ended — cancellation or
		// deadline, never a result. Nothing is cached.
		j.status = StatusCanceled
		j.errMsg = err.Error()
	default:
		j.status = StatusFailed
		j.errMsg = err.Error()
	}
	status := j.status
	j.mu.Unlock()

	if status == StatusDone {
		// Populate the content-addressed cache; a failed persist demotes
		// the job to failed rather than caching silently-volatile state.
		if cerr := s.cache.Put(j.id, result); cerr != nil {
			j.mu.Lock()
			j.status = StatusFailed
			j.errMsg = cerr.Error()
			j.result = nil
			status = StatusFailed
			j.mu.Unlock()
		}
	}

	j.progress.Set(string(status), 0, 0)
	j.progress.Close()
	close(j.done)

	s.mu.Lock()
	s.running--
	switch status {
	case StatusDone:
		s.counters.completed++
	case StatusCanceled:
		s.counters.canceled++
	default:
		s.counters.failed++
	}
	s.mu.Unlock()

	if status == StatusDone {
		s.recordPhases(j)
	}
}

// runSpecFn is the spec executor; tests swap it to exercise panic
// isolation and failure paths without crafting a crashing workload.
var runSpecFn = runSpec

// runIsolated runs the spec with panics converted to errors, so one
// crashing job cannot take down the worker pool.
func (s *Scheduler) runIsolated(ctx context.Context, j *job) (result []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("jobs: job panicked: %v\n%s", r, debug.Stack())
		}
	}()
	return runSpecFn(ctx, j.spec, j.progress, s.opts.SweepParallel)
}

// recordPhases folds a completed job's phase durations into the latency
// samples, keyed kind/phase.
func (s *Scheduler) recordPhases(j *job) {
	s.phaseMu.Lock()
	defer s.phaseMu.Unlock()
	for _, pd := range j.progress.Durations() {
		if pd.Phase == "queued" || Status(pd.Phase).Terminal() {
			continue
		}
		key := j.spec.Kind + "/" + pd.Phase
		s.phaseMS[key] = append(s.phaseMS[key], float64(pd.Duration)/float64(time.Millisecond))
	}
}

// snapshot builds the immutable view.
func (j *job) snapshot() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:       j.id,
		Kind:     j.spec.Kind,
		Spec:     j.spec,
		Status:   j.status,
		Cached:   j.cached,
		Progress: j.progress.Snapshot(),
		Error:    j.errMsg,
		Created:  j.created,
	}
	if j.status == StatusDone {
		v.Result = json.RawMessage(j.result)
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	return v
}
