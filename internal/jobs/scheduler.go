package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"jayanti98/internal/obs"
	"jayanti98/internal/stats"
)

// Status is a job's lifecycle state.
type Status string

// The job states. A job moves queued → running → {done, failed,
// canceled}; a cache hit is born done.
const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusCanceled Status = "canceled"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

// ErrQueueFull is returned by Submit when the queue has no room; callers
// (the HTTP layer) translate it to 503.
var ErrQueueFull = errors.New("jobs: queue full")

// ErrShuttingDown is returned by Submit after Shutdown has begun.
var ErrShuttingDown = errors.New("jobs: scheduler shutting down")

// Runner executes a spec somewhere other than the local worker pool —
// internal/dist's coordinator implements it to fan a shardable spec out
// over a fleet of lbworker processes. Run returns handled=false to
// decline the spec (not shardable, or no workers registered); the
// scheduler then executes it locally, so a missing or idle fleet never
// changes a result, only where it is computed. When handled is true the
// returned bytes (or error) are the job's outcome, and the determinism
// contract requires them to be byte-identical to the local execution of
// the same spec.
type Runner interface {
	Run(ctx context.Context, id string, spec *Spec, p *Progress) (result []byte, handled bool, err error)
}

// Options configures a Scheduler.
type Options struct {
	// Workers is the number of jobs run concurrently (≤ 0: 2).
	Workers int
	// QueueDepth bounds the number of queued-but-not-running jobs
	// (≤ 0: 64). Submit fails with ErrQueueFull beyond it.
	QueueDepth int
	// JobTimeout is the per-job deadline (0: none).
	JobTimeout time.Duration
	// SweepParallel is the sweep worker count each job runs beneath it
	// (≤ 0: one per CPU). It is an execution knob, not part of job
	// identity: results are parallelism-independent by the determinism
	// contract.
	SweepParallel int
	// Cache is the result cache (nil: a fresh memory-only cache).
	Cache *Cache
	// Dist, when non-nil, is offered every job before local execution
	// (see Runner). Like SweepParallel it is an execution knob, not part
	// of job identity: distribution may move the computation, never
	// change its bytes.
	Dist Runner
	// Obs is the metrics registry the scheduler instruments itself on
	// (nil: the process obs.Default registry). Counters are cumulative
	// across schedulers sharing a registry; the queue/running/cache
	// readings follow the most recently built scheduler, mirroring
	// cmd/lbserver's expvar indirection.
	Obs *obs.Registry
	// Tracer receives one span per executed job, with the experiment
	// and sweep spans beneath it (nil: obs.DefaultTracer).
	Tracer *obs.Tracer
	// Logger receives the scheduler's structured job-lifecycle lines,
	// each correlated by job_id (nil: discard).
	Logger *slog.Logger
}

// job is the scheduler's mutable record of one submission.
type job struct {
	id   string
	spec *Spec

	mu       sync.Mutex
	status   Status
	cached   bool
	result   []byte
	errMsg   string
	created  time.Time
	started  time.Time
	finished time.Time

	progress *Progress
	cancel   context.CancelFunc
	done     chan struct{} // closed on terminal status
}

// JobView is an immutable snapshot of a job, the unit the HTTP layer
// serves.
type JobView struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"`
	Spec   *Spec  `json:"spec"`
	Status Status `json:"status"`
	// Cached reports that the result was served from the result cache
	// rather than computed by this job.
	Cached   bool   `json:"cached"`
	Progress Event  `json:"progress"`
	Error    string `json:"error,omitempty"`
	// Result is the job's payload (present only when Status is done).
	Result json.RawMessage `json:"result,omitempty"`

	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
}

// Counters is a snapshot of the scheduler's expvar-able counters.
type Counters struct {
	Submitted   int64 `json:"submitted"`
	Completed   int64 `json:"completed"`
	Failed      int64 `json:"failed"`
	Canceled    int64 `json:"canceled"`
	CacheServed int64 `json:"cacheServed"`
	QueueDepth  int64 `json:"queueDepth"`
	Running     int64 `json:"running"`
}

// Scheduler runs jobs over a bounded worker pool with per-job
// cancellation, deadline, and panic isolation, de-duplicating identical
// specs in flight (two submissions of one hash share one job — the
// singleflight the content hash makes trivial) and serving repeated specs
// from the content-addressed cache.
type Scheduler struct {
	opts  Options
	cache *Cache

	baseCtx    context.Context
	baseCancel context.CancelFunc
	queue      chan *job
	wg         sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*job
	draining bool

	counters struct {
		submitted, completed, failed, canceled, cacheServed int64
	}
	running int64

	phaseMu   sync.Mutex
	phaseMS   map[string][]float64 // per-phase latency samples, milliseconds
	nowForDur func() time.Time

	// Observability sinks (see Options.Obs/Tracer/Logger) and the
	// counter handles hot paths increment without registry lookups.
	reg    *obs.Registry
	tracer *obs.Tracer
	logger *slog.Logger
	met    struct {
		submitted, completed, failed, canceled *obs.Counter
		cacheServed, deduped                   *obs.Counter
	}
}

// NewScheduler starts a scheduler and its worker pool.
func NewScheduler(opts Options) (*Scheduler, error) {
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	cache := opts.Cache
	if cache == nil {
		var err error
		if cache, err = NewCache(0, ""); err != nil {
			return nil, err
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Scheduler{
		opts:       opts,
		cache:      cache,
		baseCtx:    ctx,
		baseCancel: cancel,
		queue:      make(chan *job, opts.QueueDepth),
		jobs:       make(map[string]*job),
		phaseMS:    make(map[string][]float64),
	}
	s.reg = opts.Obs
	if s.reg == nil {
		s.reg = obs.Default()
	}
	s.tracer = opts.Tracer
	if s.tracer == nil {
		s.tracer = obs.DefaultTracer()
	}
	s.logger = opts.Logger
	if s.logger == nil {
		s.logger = obs.NopLogger()
	}
	s.registerMetrics()
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// registerMetrics creates the scheduler's counter handles and points the
// registry's live readings (queue depth, running jobs, cache counters) at
// this scheduler.
func (s *Scheduler) registerMetrics() {
	r := s.reg
	s.met.submitted = r.Counter("jobs_submitted_total", "Job submissions accepted (deduplicated and cache-served included).", nil)
	s.met.completed = r.Counter("jobs_completed_total", "Jobs that finished successfully.", nil)
	s.met.failed = r.Counter("jobs_failed_total", "Jobs that ended in failure.", nil)
	s.met.canceled = r.Counter("jobs_canceled_total", "Jobs canceled while queued or running.", nil)
	s.met.cacheServed = r.Counter("jobs_cache_served_total", "Submissions answered with an existing result instead of new work.", nil)
	s.met.deduped = r.Counter("jobs_dedup_inflight_total", "Submissions that joined an already-tracked job for the same content hash (singleflight).", nil)
	r.GaugeFunc("jobs_queue_depth", "Jobs queued but not yet running.", nil, func() float64 {
		return float64(len(s.queue))
	})
	r.GaugeFunc("jobs_running", "Jobs currently executing.", nil, func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.running)
	})
	cacheReading := func(read func(CacheStats) float64) func() float64 {
		return func() float64 { return read(s.cache.Stats()) }
	}
	r.CounterFunc("jobs_cache_hits_total", "Result-cache lookups served from memory.", nil,
		cacheReading(func(st CacheStats) float64 { return float64(st.Hits) }))
	r.CounterFunc("jobs_cache_disk_hits_total", "Result-cache lookups revived from the cache directory.", nil,
		cacheReading(func(st CacheStats) float64 { return float64(st.DiskHits) }))
	r.CounterFunc("jobs_cache_misses_total", "Result-cache lookups that found nothing.", nil,
		cacheReading(func(st CacheStats) float64 { return float64(st.Misses) }))
	r.CounterFunc("jobs_cache_evictions_total", "In-memory LRU evictions (disk copies survive).", nil,
		cacheReading(func(st CacheStats) float64 { return float64(st.Evictions) }))
	r.GaugeFunc("jobs_cache_entries", "Results currently held in memory.", nil,
		cacheReading(func(st CacheStats) float64 { return float64(st.Entries) }))
}

// Cache returns the scheduler's result cache.
func (s *Scheduler) Cache() *Cache { return s.cache }

// Submit normalizes, validates, and hashes spec, then returns the job for
// that hash: the already-tracked job if one is queued, running, or done
// (idempotent submission, singleflight de-duplication); a synthetic done
// job if the cache holds the result; otherwise a freshly enqueued job. A
// previously failed or canceled hash is resubmitted fresh — a canceled
// run never poisons the cache or blocks a retry.
//
// The returned bool reports whether this call enqueued new work. In the
// returned view, Cached is true whenever the submission was answered with
// an existing result (from the cache or from an already-completed job)
// rather than by computing anything.
func (s *Scheduler) Submit(spec *Spec) (JobView, bool, error) {
	id, err := spec.ID()
	if err != nil {
		return JobView{}, false, err
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return JobView{}, false, ErrShuttingDown
	}
	if j, ok := s.jobs[id]; ok {
		view := j.snapshot()
		if !(view.Status == StatusFailed || view.Status == StatusCanceled) {
			if view.Status == StatusDone {
				view.Cached = true
				s.counters.cacheServed++
				s.met.cacheServed.Inc()
			}
			s.mu.Unlock()
			s.met.deduped.Inc()
			s.jobLogger(id, spec.Kind).Debug("submission joined tracked job", "status", string(view.Status))
			return view, false, nil
		}
		// fall through: replace the failed/canceled record
	}

	j := &job{
		id:       id,
		spec:     spec,
		status:   StatusQueued,
		created:  time.Now(),
		progress: NewProgress(),
		done:     make(chan struct{}),
	}

	if result, ok := s.cache.Get(id); ok {
		now := time.Now()
		j.status = StatusDone
		j.cached = true
		j.result = result
		j.started, j.finished = now, now
		j.progress.Set("cached", 1, 1)
		j.progress.Close()
		close(j.done)
		s.jobs[id] = j
		s.counters.submitted++
		s.counters.cacheServed++
		s.pruneLocked()
		s.mu.Unlock()
		s.met.submitted.Inc()
		s.met.cacheServed.Inc()
		s.jobLogger(id, spec.Kind).Debug("submission served from result cache")
		return j.snapshot(), false, nil
	}

	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		s.jobLogger(id, spec.Kind).Warn("submission rejected: queue full")
		return JobView{}, false, ErrQueueFull
	}
	s.jobs[id] = j
	s.counters.submitted++
	s.pruneLocked()
	s.mu.Unlock()
	s.met.submitted.Inc()
	s.jobLogger(id, spec.Kind).Info("job queued")
	return j.snapshot(), true, nil
}

// maxTrackedJobs bounds the scheduler's job map. The map used to grow
// forever, which was invisible for one-shot experiment servers but is a
// real leak under campaigns, which submit one round job every few seconds
// indefinitely. Beyond the bound the oldest terminal jobs are forgotten —
// their results stay in the content-addressed cache, so a forgotten ID
// resubmitted later is still served byte-identically.
const maxTrackedJobs = 1024

// pruneLocked drops the oldest terminal jobs beyond maxTrackedJobs.
// Callers hold s.mu. Queued and running jobs are never pruned.
func (s *Scheduler) pruneLocked() {
	if len(s.jobs) <= maxTrackedJobs {
		return
	}
	type aged struct {
		id      string
		created time.Time
	}
	var terminal []aged
	for id, j := range s.jobs {
		j.mu.Lock()
		if j.status.Terminal() {
			terminal = append(terminal, aged{id: id, created: j.created})
		}
		j.mu.Unlock()
	}
	sort.Slice(terminal, func(i, k int) bool {
		if !terminal[i].created.Equal(terminal[k].created) {
			return terminal[i].created.Before(terminal[k].created)
		}
		return terminal[i].id < terminal[k].id
	})
	for _, t := range terminal {
		if len(s.jobs) <= maxTrackedJobs {
			break
		}
		delete(s.jobs, t.id)
	}
}

// jobLogger is the scheduler's logger with the job correlation attrs
// every lifecycle line carries.
func (s *Scheduler) jobLogger(id, kind string) *slog.Logger {
	return s.logger.With("job_id", obs.ShortID(id), "kind", kind)
}

// List snapshots every tracked job, oldest submission first (ties broken
// by ID so the order is deterministic).
func (s *Scheduler) List() []JobView {
	s.mu.Lock()
	tracked := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		tracked = append(tracked, j)
	}
	s.mu.Unlock()
	views := make([]JobView, 0, len(tracked))
	for _, j := range tracked {
		views = append(views, j.snapshot())
	}
	sort.Slice(views, func(i, k int) bool {
		if !views[i].Created.Equal(views[k].Created) {
			return views[i].Created.Before(views[k].Created)
		}
		return views[i].ID < views[k].ID
	})
	return views
}

// Get returns a snapshot of the job with the given ID.
func (s *Scheduler) Get(id string) (JobView, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobView{}, false
	}
	return j.snapshot(), true
}

// Subscribe attaches to a job's progress stream. The returned snapshot is
// the state as of subscription; the channel delivers subsequent events
// and closes when the job reaches a terminal state.
func (s *Scheduler) Subscribe(id string) (JobView, <-chan Event, func(), bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobView{}, nil, nil, false
	}
	ch, cancel := j.progress.Subscribe()
	return j.snapshot(), ch, cancel, true
}

// Cancel requests cancellation of a queued or running job. Cancelling a
// queued job is immediate; a running job's context is cancelled and the
// job reports canceled once its workload unwinds. Cancel returns false
// for unknown IDs and does nothing to terminal jobs.
func (s *Scheduler) Cancel(id string) bool {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return false
	}
	j.mu.Lock()
	switch j.status {
	case StatusQueued:
		j.status = StatusCanceled
		j.finished = time.Now()
		cancelFn := j.cancel
		j.mu.Unlock()
		if cancelFn != nil {
			cancelFn()
		}
		j.progress.Set("canceled", 0, 0)
		j.progress.Close()
		close(j.done)
		s.mu.Lock()
		s.counters.canceled++
		s.mu.Unlock()
		s.met.canceled.Inc()
		s.jobLogger(j.id, j.spec.Kind).Info("job canceled while queued")
		return true
	case StatusRunning:
		cancelFn := j.cancel
		j.mu.Unlock()
		if cancelFn != nil {
			cancelFn()
		}
		return true
	default:
		j.mu.Unlock()
		return true
	}
}

// Wait blocks until the job reaches a terminal state or ctx is done, and
// returns the final snapshot.
func (s *Scheduler) Wait(ctx context.Context, id string) (JobView, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobView{}, fmt.Errorf("jobs: unknown job %q", id)
	}
	select {
	case <-j.done:
		return j.snapshot(), nil
	case <-ctx.Done():
		return j.snapshot(), ctx.Err()
	}
}

// Counters snapshots the scheduler counters.
func (s *Scheduler) Counters() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Counters{
		Submitted:   s.counters.submitted,
		Completed:   s.counters.completed,
		Failed:      s.counters.failed,
		Canceled:    s.counters.canceled,
		CacheServed: s.counters.cacheServed,
		QueueDepth:  int64(len(s.queue)),
		Running:     s.running,
	}
}

// PhaseLatencies summarizes the recorded per-phase wall-clock samples
// (milliseconds) of completed jobs; the Median and P95 fields are the
// server's latency lines.
func (s *Scheduler) PhaseLatencies() map[string]stats.Summary {
	s.phaseMu.Lock()
	defer s.phaseMu.Unlock()
	out := make(map[string]stats.Summary, len(s.phaseMS))
	for phase, ms := range s.phaseMS {
		out[phase] = stats.Summarize(ms)
	}
	return out
}

// Shutdown stops accepting submissions, cancels every queued and running
// job, and waits for the workers to drain — at most until ctx is done.
func (s *Scheduler) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	s.baseCancel() // cancels the context under every running job
	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("jobs: shutdown: %w", ctx.Err())
	}
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
	// Drain path: the queue is closed; any job still queued was either
	// cancelled explicitly or is abandoned by shutdown — runJob marks
	// those canceled immediately because the base context is done.
}

// runJob executes one job with cancellation, deadline, and panic
// isolation, then records the outcome.
func (s *Scheduler) runJob(j *job) {
	var ctx context.Context
	var cancel context.CancelFunc
	if s.opts.JobTimeout > 0 {
		ctx, cancel = context.WithTimeout(s.baseCtx, s.opts.JobTimeout)
	} else {
		ctx, cancel = context.WithCancel(s.baseCtx)
	}
	defer cancel()

	j.mu.Lock()
	if j.status != StatusQueued {
		// Cancelled while queued; nothing to run.
		j.mu.Unlock()
		return
	}
	j.status = StatusRunning
	j.started = time.Now()
	j.cancel = cancel
	j.mu.Unlock()
	s.mu.Lock()
	s.running++
	s.mu.Unlock()

	// The job's context carries the correlation ID, logger, and a root
	// span; the spec runners and the experiments registry hang their
	// phase spans beneath it, which is what /debug/traces renders as a
	// scheduler → experiment tree.
	ctx = obs.WithLogger(obs.WithJobID(ctx, j.id), s.logger)
	ctx, span := s.tracer.Start(ctx, "job "+j.spec.Kind)
	span.SetAttr("job_id", obs.ShortID(j.id))
	span.SetAttr("kind", j.spec.Kind)
	obs.Logger(ctx).Info("job started")

	result, err := s.runIsolated(ctx, j)

	j.mu.Lock()
	j.finished = time.Now()
	switch {
	case err == nil:
		j.status = StatusDone
		j.result = result
	case ctx.Err() != nil && errors.Is(err, ctx.Err()):
		// The job unwound because its context ended — cancellation or
		// deadline, never a result. Nothing is cached.
		j.status = StatusCanceled
		j.errMsg = err.Error()
	default:
		j.status = StatusFailed
		j.errMsg = err.Error()
	}
	status := j.status
	j.mu.Unlock()

	if status == StatusDone {
		// Populate the content-addressed cache; a failed persist demotes
		// the job to failed rather than caching silently-volatile state.
		if cerr := s.cache.Put(j.id, result); cerr != nil {
			j.mu.Lock()
			j.status = StatusFailed
			j.errMsg = cerr.Error()
			j.result = nil
			status = StatusFailed
			j.mu.Unlock()
		}
	}

	j.progress.Set(string(status), 0, 0)
	j.progress.Close()
	close(j.done)

	s.mu.Lock()
	s.running--
	switch status {
	case StatusDone:
		s.counters.completed++
	case StatusCanceled:
		s.counters.canceled++
	default:
		s.counters.failed++
	}
	s.mu.Unlock()

	j.mu.Lock()
	elapsed := j.finished.Sub(j.started)
	errMsg := j.errMsg
	j.mu.Unlock()
	switch status {
	case StatusDone:
		s.met.completed.Inc()
	case StatusCanceled:
		s.met.canceled.Inc()
	default:
		s.met.failed.Inc()
	}
	s.reg.Histogram("job_duration_seconds", "Job wall clock from start to terminal status, by kind and outcome.",
		nil, obs.Labels{"kind": j.spec.Kind, "status": string(status)}).Observe(elapsed.Seconds())
	span.SetAttr("status", string(status))
	if errMsg != "" {
		span.SetAttr("error", errMsg)
	}
	span.End()
	logLine := obs.Logger(ctx).With("status", string(status), "duration_ms", float64(elapsed)/float64(time.Millisecond))
	if status == StatusFailed {
		logLine.Error("job finished", "error", errMsg)
	} else {
		logLine.Info("job finished")
	}

	if status == StatusDone {
		s.recordPhases(j)
	}
}

// runSpecFn is the spec executor; tests swap it to exercise panic
// isolation and failure paths without crafting a crashing workload.
var runSpecFn = runSpec

// runIsolated runs the spec with panics converted to errors, so one
// crashing job cannot take down the worker pool. A distributed runner,
// when configured, gets first refusal; a declined spec falls through to
// the local path.
func (s *Scheduler) runIsolated(ctx context.Context, j *job) (result []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("jobs: job panicked: %v\n%s", r, debug.Stack())
		}
	}()
	if s.opts.Dist != nil {
		result, handled, err := s.opts.Dist.Run(ctx, j.id, j.spec, j.progress)
		if handled {
			return result, err
		}
		obs.Logger(ctx).Debug("distributed runner declined; executing locally")
	}
	return runSpecFn(ctx, j.spec, j.progress, s.opts.SweepParallel)
}

// recordPhases folds a completed job's phase durations into the latency
// samples, keyed kind/phase, and into the per-phase histogram on the
// metrics registry.
func (s *Scheduler) recordPhases(j *job) {
	durations := j.progress.Durations()
	s.phaseMu.Lock()
	for _, pd := range durations {
		if pd.Phase == "queued" || Status(pd.Phase).Terminal() {
			continue
		}
		key := j.spec.Kind + "/" + pd.Phase
		s.phaseMS[key] = append(s.phaseMS[key], float64(pd.Duration)/float64(time.Millisecond))
	}
	s.phaseMu.Unlock()
	for _, pd := range durations {
		if pd.Phase == "queued" || Status(pd.Phase).Terminal() {
			continue
		}
		s.reg.Histogram("job_phase_duration_seconds", "Per-phase wall clock of completed jobs, by kind and phase.",
			nil, obs.Labels{"kind": j.spec.Kind, "phase": pd.Phase}).Observe(pd.Duration.Seconds())
	}
}

// snapshot builds the immutable view.
func (j *job) snapshot() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:       j.id,
		Kind:     j.spec.Kind,
		Spec:     j.spec,
		Status:   j.status,
		Cached:   j.cached,
		Progress: j.progress.Snapshot(),
		Error:    j.errMsg,
		Created:  j.created,
	}
	if j.status == StatusDone {
		v.Result = json.RawMessage(j.result)
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	return v
}
