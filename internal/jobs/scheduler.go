package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"jayanti98/internal/obs"
	"jayanti98/internal/stats"
	"jayanti98/internal/tenant"
)

// Status is a job's lifecycle state.
type Status string

// The job states. A job moves queued → running → {done, failed,
// canceled}; a cache hit is born done.
const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusCanceled Status = "canceled"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

// ErrQueueFull is returned by Submit when the global queue has no room;
// callers (the HTTP layer) translate it to 503.
var ErrQueueFull = errors.New("jobs: queue full")

// ErrShuttingDown is returned by Submit after Shutdown has begun.
var ErrShuttingDown = errors.New("jobs: scheduler shutting down")

// TenantBusyError is returned by SubmitAs when the tenant is at its
// queued-jobs cap. The HTTP layer translates it to 429 with a
// Retry-After header — unlike ErrQueueFull this is the tenant's own
// backlog, not server overload.
type TenantBusyError struct {
	Tenant string
	// RetryAfter is the suggested wait before retrying.
	RetryAfter time.Duration
}

func (e *TenantBusyError) Error() string {
	return fmt.Sprintf("jobs: tenant %q is at its queued-jobs cap", e.Tenant)
}

// Runner executes a spec somewhere other than the local worker pool —
// internal/dist's coordinator implements it to fan a shardable spec out
// over a fleet of lbworker processes. Run returns handled=false to
// decline the spec (not shardable, or no workers registered); the
// scheduler then executes it locally, so a missing or idle fleet never
// changes a result, only where it is computed. When handled is true the
// returned bytes (or error) are the job's outcome, and the determinism
// contract requires them to be byte-identical to the local execution of
// the same spec.
type Runner interface {
	Run(ctx context.Context, id string, spec *Spec, p *Progress) (result []byte, handled bool, err error)
}

// Options configures a Scheduler.
type Options struct {
	// Workers is the number of jobs run concurrently (≤ 0: 2).
	Workers int
	// QueueDepth bounds the number of queued-but-not-running jobs across
	// all tenants (≤ 0: 64). Submit fails with ErrQueueFull beyond it.
	QueueDepth int
	// JobTimeout is the per-job deadline (0: none).
	JobTimeout time.Duration
	// SweepParallel is the sweep worker count each job runs beneath it
	// (≤ 0: one per CPU). It is an execution knob, not part of job
	// identity: results are parallelism-independent by the determinism
	// contract.
	SweepParallel int
	// Cache is the result cache and journal store (nil: a fresh
	// memory-only cache). With a cache directory the scheduler journals
	// every job as <id>.job.json and replays the journal on construction,
	// so accepted work survives a process restart.
	Cache *Cache
	// Tenants supplies per-tenant fair-share weights and caps (nil: the
	// open single-tenant registry — every job runs as "default" with no
	// caps, the pre-tenancy behavior).
	Tenants *tenant.Registry
	// Dist, when non-nil, is offered every job before local execution
	// (see Runner). Like SweepParallel it is an execution knob, not part
	// of job identity: distribution may move the computation, never
	// change its bytes.
	Dist Runner
	// Obs is the metrics registry the scheduler instruments itself on
	// (nil: the process obs.Default registry). Counters are cumulative
	// across schedulers sharing a registry; the queue/running/cache
	// readings follow the most recently built scheduler, mirroring
	// cmd/lbserver's expvar indirection.
	Obs *obs.Registry
	// Tracer receives one span per executed job, with the experiment
	// and sweep spans beneath it (nil: obs.DefaultTracer).
	Tracer *obs.Tracer
	// Logger receives the scheduler's structured job-lifecycle lines,
	// each correlated by job_id (nil: discard).
	Logger *slog.Logger
}

// job is the scheduler's mutable record of one submission.
type job struct {
	id     string
	spec   *Spec
	tenant string

	mu         sync.Mutex
	status     Status
	cached     bool
	tombstoned bool // canceled explicitly; replay must keep it canceled
	dispatched bool // popped from its tenant queue (queue counts moved)
	result     []byte
	errMsg     string
	created    time.Time
	started    time.Time
	finished   time.Time

	progress *Progress
	cancel   context.CancelFunc
	done     chan struct{} // closed on terminal status
}

// JobView is an immutable snapshot of a job, the unit the HTTP layer
// serves.
type JobView struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"`
	Tenant string `json:"tenant,omitempty"`
	Spec   *Spec  `json:"spec"`
	Status Status `json:"status"`
	// Cached reports that the result was served from the result cache
	// rather than computed by this job.
	Cached   bool   `json:"cached"`
	Progress Event  `json:"progress"`
	Error    string `json:"error,omitempty"`
	// Result is the job's payload (present only when Status is done).
	Result json.RawMessage `json:"result,omitempty"`

	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
}

// Counters is a snapshot of the scheduler's expvar-able counters.
type Counters struct {
	Submitted   int64 `json:"submitted"`
	Completed   int64 `json:"completed"`
	Failed      int64 `json:"failed"`
	Canceled    int64 `json:"canceled"`
	CacheServed int64 `json:"cacheServed"`
	QueueDepth  int64 `json:"queueDepth"`
	Running     int64 `json:"running"`
}

// tenantQueue is one tenant's pending backlog plus its live scheduling
// state. All fields are guarded by the scheduler's mu.
type tenantQueue struct {
	name   string
	limits tenant.Limits

	pending []*job // FIFO; canceled entries are skipped lazily at dispatch
	queued  int    // non-canceled entries in pending
	running int

	// credit is the smooth-weighted-round-robin accumulator: each
	// dispatch round every eligible tenant gains its weight, the largest
	// credit wins the slot and pays the total weight back. The scheme
	// guarantees a tenant with weight w gets at least one slot in any
	// window of ceil(totalWeight/w) dispatches — the starvation-freedom
	// bound the fair-share property test pins.
	credit int

	queuedGauge, runningGauge *obs.Gauge
}

// Scheduler runs jobs over a bounded worker pool with per-job
// cancellation, deadline, and panic isolation, de-duplicating identical
// specs in flight (two submissions of one hash share one job — the
// singleflight the content hash makes trivial) and serving repeated specs
// from the content-addressed cache.
//
// Dispatch is fair-share across tenants: each tenant has its own FIFO of
// pending jobs, and free workers pick the next job by smooth weighted
// round-robin over the tenants that have work and are under their
// running cap. Every accepted job is journaled through the cache's
// atomic-file layer (journal.go) and replayed on construction, so a
// restart re-enqueues pending work and serves finished work
// byte-identically from the result cache.
type Scheduler struct {
	opts    Options
	cache   *Cache
	tenants *tenant.Registry

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	mu          sync.Mutex
	cond        *sync.Cond // signaled on enqueue, job end, and drain
	jobs        map[string]*job
	tq          map[string]*tenantQueue
	queuedTotal int
	draining    bool

	counters struct {
		submitted, completed, failed, canceled, cacheServed int64
	}
	running int64

	phaseMu   sync.Mutex
	phaseMS   map[string][]float64 // per-phase latency samples, milliseconds
	nowForDur func() time.Time

	// Observability sinks (see Options.Obs/Tracer/Logger) and the
	// counter handles hot paths increment without registry lookups.
	reg    *obs.Registry
	tracer *obs.Tracer
	logger *slog.Logger
	met    struct {
		submitted, completed, failed, canceled *obs.Counter
		cacheServed, deduped, tenantBusy       *obs.Counter

		journalWrites, journalErrors    *obs.Counter
		journalReplayed, journalSkipped *obs.Counter
		journalTombstones               *obs.Counter
	}
}

// NewScheduler starts a scheduler: it replays the cache's job journal
// (re-enqueueing work a previous process life accepted but did not
// finish) and then starts the worker pool.
func NewScheduler(opts Options) (*Scheduler, error) {
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	cache := opts.Cache
	if cache == nil {
		var err error
		if cache, err = NewCache(0, ""); err != nil {
			return nil, err
		}
	}
	tenants := opts.Tenants
	if tenants == nil {
		tenants = tenant.Open()
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Scheduler{
		opts:       opts,
		cache:      cache,
		tenants:    tenants,
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*job),
		tq:         make(map[string]*tenantQueue),
		phaseMS:    make(map[string][]float64),
	}
	s.cond = sync.NewCond(&s.mu)
	s.reg = opts.Obs
	if s.reg == nil {
		s.reg = obs.Default()
	}
	s.tracer = opts.Tracer
	if s.tracer == nil {
		s.tracer = obs.DefaultTracer()
	}
	s.logger = opts.Logger
	if s.logger == nil {
		s.logger = obs.NopLogger()
	}
	s.registerMetrics()
	s.replayJournal()
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// registerMetrics creates the scheduler's counter handles and points the
// registry's live readings (queue depth, running jobs, cache counters) at
// this scheduler.
func (s *Scheduler) registerMetrics() {
	r := s.reg
	s.met.submitted = r.Counter("jobs_submitted_total", "Job submissions accepted (deduplicated and cache-served included).", nil)
	s.met.completed = r.Counter("jobs_completed_total", "Jobs that finished successfully.", nil)
	s.met.failed = r.Counter("jobs_failed_total", "Jobs that ended in failure.", nil)
	s.met.canceled = r.Counter("jobs_canceled_total", "Jobs canceled while queued or running.", nil)
	s.met.cacheServed = r.Counter("jobs_cache_served_total", "Submissions answered with an existing result instead of new work.", nil)
	s.met.deduped = r.Counter("jobs_dedup_inflight_total", "Submissions that joined an already-tracked job for the same content hash (singleflight).", nil)
	s.met.tenantBusy = r.Counter("tenant_queue_rejections_total", "Submissions rejected 429 because the tenant was at its queued-jobs cap.", nil)
	s.met.journalWrites = r.Counter("store_journal_writes_total", "Job-journal records written through the cache's atomic-file layer.", nil)
	s.met.journalErrors = r.Counter("store_journal_errors_total", "Job-journal writes that failed (job continues in memory; durability degraded).", nil)
	s.met.journalReplayed = r.Counter("store_journal_replayed_total", "Journal records rebuilt at boot (terminal jobs restored, pending jobs re-enqueued).", nil)
	s.met.journalSkipped = r.Counter("store_journal_skipped_total", "Journal records that no longer decode and were skipped at boot.", nil)
	s.met.journalTombstones = r.Counter("store_journal_tombstones_total", "Journal records tombstoned by an explicit cancel (stay canceled across restarts).", nil)
	r.GaugeFunc("jobs_queue_depth", "Jobs queued but not yet running, across all tenants.", nil, func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.queuedTotal)
	})
	r.GaugeFunc("jobs_running", "Jobs currently executing.", nil, func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.running)
	})
	r.GaugeFunc("store_journal_records", "Job-journal records currently held (memory and cache directory).", nil, func() float64 {
		return float64(len(s.cache.JobRecords()))
	})
	cacheReading := func(read func(CacheStats) float64) func() float64 {
		return func() float64 { return read(s.cache.Stats()) }
	}
	r.CounterFunc("jobs_cache_hits_total", "Result-cache lookups served from memory.", nil,
		cacheReading(func(st CacheStats) float64 { return float64(st.Hits) }))
	r.CounterFunc("jobs_cache_disk_hits_total", "Result-cache lookups revived from the cache directory.", nil,
		cacheReading(func(st CacheStats) float64 { return float64(st.DiskHits) }))
	r.CounterFunc("jobs_cache_misses_total", "Result-cache lookups that found nothing.", nil,
		cacheReading(func(st CacheStats) float64 { return float64(st.Misses) }))
	r.CounterFunc("jobs_cache_evictions_total", "In-memory LRU evictions (disk copies survive).", nil,
		cacheReading(func(st CacheStats) float64 { return float64(st.Evictions) }))
	r.GaugeFunc("jobs_cache_entries", "Results currently held in memory.", nil,
		cacheReading(func(st CacheStats) float64 { return float64(st.Entries) }))
}

// Cache returns the scheduler's result cache.
func (s *Scheduler) Cache() *Cache { return s.cache }

// tenantOrDefault maps the empty tenant name (pre-tenancy journal
// records, internal submitters) to the default tenant.
func tenantOrDefault(name string) string {
	if name == "" {
		return tenant.DefaultName
	}
	return name
}

// tenantQueueLocked returns (creating on first use) the tenant's queue.
// Callers hold s.mu.
func (s *Scheduler) tenantQueueLocked(name string) *tenantQueue {
	if tq, ok := s.tq[name]; ok {
		return tq
	}
	tq := &tenantQueue{
		name:   name,
		limits: s.tenants.LimitsFor(name),
		queuedGauge: s.reg.Gauge("tenant_jobs_queued", "Jobs queued but not yet running, by tenant.",
			obs.Labels{"tenant": name}),
		runningGauge: s.reg.Gauge("tenant_jobs_running", "Jobs currently executing, by tenant.",
			obs.Labels{"tenant": name}),
	}
	s.tq[name] = tq
	return tq
}

// enqueueLocked appends j to its tenant's pending queue and wakes one
// worker. Callers hold s.mu and have already enforced the caps (journal
// replay deliberately bypasses them).
func (s *Scheduler) enqueueLocked(j *job) {
	tq := s.tenantQueueLocked(j.tenant)
	tq.pending = append(tq.pending, j)
	tq.queued++
	s.queuedTotal++
	tq.queuedGauge.Set(int64(tq.queued))
	s.cond.Signal()
}

// Submit runs the spec as the default tenant — the single-tenant entry
// point internal submitters (campaign rounds) and tests use. See
// SubmitAs.
func (s *Scheduler) Submit(spec *Spec) (JobView, bool, error) {
	return s.SubmitAs(tenant.DefaultName, spec)
}

// SubmitAs normalizes, validates, and hashes spec, then returns the job
// for that hash: the already-tracked job if one is queued, running, or
// done (idempotent submission, singleflight de-duplication); a synthetic
// done job if the cache holds the result; otherwise a freshly enqueued
// job owned by tenantName. A previously failed or canceled hash is
// resubmitted fresh — a canceled run never poisons the cache or blocks a
// retry.
//
// Tenancy never fragments the cache: the job ID is the content hash of
// the spec alone, so two tenants submitting one spec share one job and
// one result. The first submitter's tenant owns the job for fair-share
// accounting.
//
// The returned bool reports whether this call enqueued new work. In the
// returned view, Cached is true whenever the submission was answered with
// an existing result (from the cache or from an already-completed job)
// rather than by computing anything.
func (s *Scheduler) SubmitAs(tenantName string, spec *Spec) (JobView, bool, error) {
	id, err := spec.ID()
	if err != nil {
		return JobView{}, false, err
	}
	tenantName = tenantOrDefault(tenantName)

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return JobView{}, false, ErrShuttingDown
	}
	if j, ok := s.jobs[id]; ok {
		view := j.snapshot()
		if !(view.Status == StatusFailed || view.Status == StatusCanceled) {
			if view.Status == StatusDone {
				view.Cached = true
				s.counters.cacheServed++
				s.met.cacheServed.Inc()
			}
			s.mu.Unlock()
			s.met.deduped.Inc()
			s.jobLogger(id, spec.Kind).Debug("submission joined tracked job", "status", string(view.Status))
			return view, false, nil
		}
		// fall through: replace the failed/canceled record
	}

	j := &job{
		id:       id,
		spec:     spec,
		tenant:   tenantName,
		status:   StatusQueued,
		created:  time.Now(),
		progress: NewProgress(),
		done:     make(chan struct{}),
	}

	if result, ok := s.cache.Get(id); ok {
		now := time.Now()
		j.status = StatusDone
		j.cached = true
		j.result = result
		j.started, j.finished = now, now
		j.progress.Set("cached", 1, 1)
		j.progress.Close()
		close(j.done)
		s.jobs[id] = j
		s.counters.submitted++
		s.counters.cacheServed++
		s.pruneLocked()
		s.mu.Unlock()
		s.met.submitted.Inc()
		s.met.cacheServed.Inc()
		s.journal(j)
		s.jobLogger(id, spec.Kind).Debug("submission served from result cache")
		return j.snapshot(), false, nil
	}

	if s.queuedTotal >= s.opts.QueueDepth {
		s.mu.Unlock()
		s.jobLogger(id, spec.Kind).Warn("submission rejected: queue full")
		return JobView{}, false, ErrQueueFull
	}
	tq := s.tenantQueueLocked(tenantName)
	if tq.limits.MaxQueued > 0 && tq.queued >= tq.limits.MaxQueued {
		s.mu.Unlock()
		s.met.tenantBusy.Inc()
		s.jobLogger(id, spec.Kind).Warn("submission rejected: tenant queued cap", "tenant", tenantName)
		return JobView{}, false, &TenantBusyError{Tenant: tenantName, RetryAfter: time.Second}
	}
	s.enqueueLocked(j)
	s.jobs[id] = j
	s.counters.submitted++
	s.pruneLocked()
	s.mu.Unlock()
	s.met.submitted.Inc()
	s.reg.Counter("tenant_jobs_submitted_total", "Jobs enqueued, by owning tenant.",
		obs.Labels{"tenant": tenantName}).Inc()
	s.journal(j)
	s.jobLogger(id, spec.Kind).Info("job queued", "tenant", tenantName)
	return j.snapshot(), true, nil
}

// maxTrackedJobs bounds the scheduler's job map. The map used to grow
// forever, which was invisible for one-shot experiment servers but is a
// real leak under campaigns, which submit one round job every few seconds
// indefinitely. Beyond the bound the oldest terminal jobs are forgotten —
// their results stay in the content-addressed cache, so a forgotten ID
// resubmitted later is still served byte-identically.
const maxTrackedJobs = 1024

// pruneLocked drops the oldest terminal jobs (and their journal records)
// beyond maxTrackedJobs. Callers hold s.mu. Queued and running jobs are
// never pruned.
func (s *Scheduler) pruneLocked() {
	if len(s.jobs) <= maxTrackedJobs {
		return
	}
	type aged struct {
		id      string
		created time.Time
	}
	var terminal []aged
	for id, j := range s.jobs {
		j.mu.Lock()
		if j.status.Terminal() {
			terminal = append(terminal, aged{id: id, created: j.created})
		}
		j.mu.Unlock()
	}
	sort.Slice(terminal, func(i, k int) bool {
		if !terminal[i].created.Equal(terminal[k].created) {
			return terminal[i].created.Before(terminal[k].created)
		}
		return terminal[i].id < terminal[k].id
	})
	for _, t := range terminal {
		if len(s.jobs) <= maxTrackedJobs {
			break
		}
		delete(s.jobs, t.id)
		s.cache.DeleteJobRecord(t.id)
	}
}

// jobLogger is the scheduler's logger with the job correlation attrs
// every lifecycle line carries.
func (s *Scheduler) jobLogger(id, kind string) *slog.Logger {
	return s.logger.With("job_id", obs.ShortID(id), "kind", kind)
}

// List snapshots every tracked job, oldest submission first (ties broken
// by ID so the order is deterministic).
func (s *Scheduler) List() []JobView {
	s.mu.Lock()
	tracked := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		tracked = append(tracked, j)
	}
	s.mu.Unlock()
	views := make([]JobView, 0, len(tracked))
	for _, j := range tracked {
		views = append(views, j.snapshot())
	}
	sort.Slice(views, func(i, k int) bool {
		if !views[i].Created.Equal(views[k].Created) {
			return views[i].Created.Before(views[k].Created)
		}
		return views[i].ID < views[k].ID
	})
	return views
}

// Get returns a snapshot of the job with the given ID.
func (s *Scheduler) Get(id string) (JobView, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobView{}, false
	}
	return j.snapshot(), true
}

// Subscribe attaches to a job's progress stream. The returned snapshot is
// the state as of subscription; the channel delivers subsequent events
// and closes when the job reaches a terminal state.
func (s *Scheduler) Subscribe(id string) (JobView, <-chan Event, func(), bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobView{}, nil, nil, false
	}
	ch, cancel := j.progress.Subscribe()
	return j.snapshot(), ch, cancel, true
}

// Cancel requests cancellation of a queued or running job. Cancelling a
// queued job is immediate; a running job's context is cancelled and the
// job reports canceled once its workload unwinds. Either way the job is
// tombstoned in the journal, so an explicit cancel survives a restart —
// replay keeps the job canceled instead of re-enqueueing it. Cancel
// returns false for unknown IDs and does nothing to terminal jobs.
func (s *Scheduler) Cancel(id string) bool {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return false
	}
	j.mu.Lock()
	switch j.status {
	case StatusQueued:
		j.status = StatusCanceled
		j.tombstoned = true
		j.finished = time.Now()
		wasDispatched := j.dispatched
		cancelFn := j.cancel
		j.mu.Unlock()
		if cancelFn != nil {
			cancelFn()
		}
		j.progress.Set("canceled", 0, 0)
		j.progress.Close()
		close(j.done)
		s.mu.Lock()
		s.counters.canceled++
		// The entry stays in its tenant's pending slice (dispatch skips
		// it); only the live counts move. A job already handed to a
		// worker had its counts moved by dispatch — runJob will observe
		// the canceled status and return the slot.
		if tq, ok := s.tq[j.tenant]; ok && !wasDispatched {
			tq.queued--
			s.queuedTotal--
			tq.queuedGauge.Set(int64(tq.queued))
		}
		s.mu.Unlock()
		s.met.canceled.Inc()
		s.met.journalTombstones.Inc()
		s.journal(j)
		s.jobLogger(j.id, j.spec.Kind).Info("job canceled while queued")
		return true
	case StatusRunning:
		j.tombstoned = true
		cancelFn := j.cancel
		j.mu.Unlock()
		if cancelFn != nil {
			cancelFn()
		}
		// Journal the tombstone now, not when the job unwinds: a SIGKILL
		// between this cancel and the unwind must not resurrect the job.
		s.met.journalTombstones.Inc()
		s.journal(j)
		return true
	default:
		j.mu.Unlock()
		return true
	}
}

// Wait blocks until the job reaches a terminal state or ctx is done, and
// returns the final snapshot.
func (s *Scheduler) Wait(ctx context.Context, id string) (JobView, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobView{}, fmt.Errorf("jobs: unknown job %q", id)
	}
	select {
	case <-j.done:
		return j.snapshot(), nil
	case <-ctx.Done():
		return j.snapshot(), ctx.Err()
	}
}

// Counters snapshots the scheduler counters.
func (s *Scheduler) Counters() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Counters{
		Submitted:   s.counters.submitted,
		Completed:   s.counters.completed,
		Failed:      s.counters.failed,
		Canceled:    s.counters.canceled,
		CacheServed: s.counters.cacheServed,
		QueueDepth:  int64(s.queuedTotal),
		Running:     s.running,
	}
}

// PhaseLatencies summarizes the recorded per-phase wall-clock samples
// (milliseconds) of completed jobs; the Median and P95 fields are the
// server's latency lines.
func (s *Scheduler) PhaseLatencies() map[string]stats.Summary {
	s.phaseMu.Lock()
	defer s.phaseMu.Unlock()
	out := make(map[string]stats.Summary, len(s.phaseMS))
	for phase, ms := range s.phaseMS {
		out[phase] = stats.Summarize(ms)
	}
	return out
}

// Shutdown stops accepting submissions, cancels every queued and running
// job, and waits for the workers to drain — at most until ctx is done.
// Jobs canceled purely by the drain keep queued journal records, so the
// next process life resumes them; explicitly canceled jobs stay
// canceled (tombstones).
func (s *Scheduler) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.baseCancel() // cancels the context under every running job
	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("jobs: shutdown: %w", ctx.Err())
	}
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		j := s.next()
		if j == nil {
			return
		}
		s.runJob(j)
	}
	// Drain path: next keeps handing out the remaining queued jobs after
	// Shutdown (the base context is already done, so runJob unwinds each
	// immediately as canceled) and returns nil once the backlog is empty.
}

// next blocks until a job is dispatchable and returns it, or returns nil
// when the scheduler is draining and the backlog is empty. Dispatch
// increments the running counts; runJob's completion path decrements
// them.
func (s *Scheduler) next() *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if j := s.dispatchLocked(); j != nil {
			return j
		}
		if s.draining {
			return nil
		}
		s.cond.Wait()
	}
}

// dispatchLocked picks the next job by smooth weighted round-robin over
// the tenants that have pending work and are under their running cap
// (caps are ignored while draining — every queued job must still pass
// through a worker to be canceled and journaled). Callers hold s.mu.
func (s *Scheduler) dispatchLocked() *job {
	var eligible []*tenantQueue
	for _, tq := range s.tq {
		if tq.queued == 0 {
			continue
		}
		if !s.draining && tq.limits.MaxRunning > 0 && tq.running >= tq.limits.MaxRunning {
			continue
		}
		eligible = append(eligible, tq)
	}
	if len(eligible) == 0 {
		return nil
	}
	// Deterministic credit accounting: tenants gain credit in name order
	// and the largest credit wins (ties to the lexicographically first).
	sort.Slice(eligible, func(i, k int) bool { return eligible[i].name < eligible[k].name })
	total := 0
	for _, tq := range eligible {
		total += tq.limits.NormWeight()
	}
	var pick *tenantQueue
	for _, tq := range eligible {
		tq.credit += tq.limits.NormWeight()
		if pick == nil || tq.credit > pick.credit {
			pick = tq
		}
	}
	pick.credit -= total

	for len(pick.pending) > 0 {
		j := pick.pending[0]
		pick.pending = pick.pending[1:]
		j.mu.Lock()
		st := j.status
		if st == StatusQueued {
			j.dispatched = true
		}
		j.mu.Unlock()
		if st != StatusQueued {
			// Canceled while queued; Cancel already moved the counts.
			continue
		}
		pick.queued--
		s.queuedTotal--
		pick.running++
		s.running++
		pick.queuedGauge.Set(int64(pick.queued))
		pick.runningGauge.Set(int64(pick.running))
		return j
	}
	return nil
}

// jobEnded returns a dispatched job's slot: the worker is free and a
// capped tenant may have become eligible again.
func (s *Scheduler) jobEnded(j *job) {
	s.mu.Lock()
	s.running--
	if tq, ok := s.tq[j.tenant]; ok {
		tq.running--
		tq.runningGauge.Set(int64(tq.running))
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// runJob executes one job with cancellation, deadline, and panic
// isolation, then records the outcome (in memory and in the journal).
func (s *Scheduler) runJob(j *job) {
	defer s.jobEnded(j)
	var ctx context.Context
	var cancel context.CancelFunc
	if s.opts.JobTimeout > 0 {
		ctx, cancel = context.WithTimeout(s.baseCtx, s.opts.JobTimeout)
	} else {
		ctx, cancel = context.WithCancel(s.baseCtx)
	}
	defer cancel()

	j.mu.Lock()
	if j.status != StatusQueued {
		// Cancelled while queued; nothing to run.
		j.mu.Unlock()
		return
	}
	j.status = StatusRunning
	j.started = time.Now()
	j.cancel = cancel
	j.mu.Unlock()
	s.journal(j)

	// The job's context carries the correlation ID, logger, and a root
	// span; the spec runners and the experiments registry hang their
	// phase spans beneath it, which is what /debug/traces renders as a
	// scheduler → experiment tree.
	ctx = obs.WithLogger(obs.WithJobID(ctx, j.id), s.logger)
	ctx, span := s.tracer.Start(ctx, "job "+j.spec.Kind)
	span.SetAttr("job_id", obs.ShortID(j.id))
	span.SetAttr("kind", j.spec.Kind)
	span.SetAttr("tenant", j.tenant)
	obs.Logger(ctx).Info("job started")

	result, err := s.runIsolated(ctx, j)

	j.mu.Lock()
	j.finished = time.Now()
	switch {
	case err == nil:
		j.status = StatusDone
		j.result = result
	case ctx.Err() != nil && errors.Is(err, ctx.Err()):
		// The job unwound because its context ended — cancellation or
		// deadline, never a result. Nothing is cached.
		j.status = StatusCanceled
		j.errMsg = err.Error()
	default:
		j.status = StatusFailed
		j.errMsg = err.Error()
	}
	status := j.status
	j.mu.Unlock()

	if status == StatusDone {
		// Populate the content-addressed cache; a failed persist demotes
		// the job to failed rather than caching silently-volatile state.
		// The cache write precedes the journal's "done" record, so a
		// crash between the two replays as a pending job that hits the
		// cache — never a "done" record without its bytes.
		if cerr := s.cache.Put(j.id, result); cerr != nil {
			j.mu.Lock()
			j.status = StatusFailed
			j.errMsg = cerr.Error()
			j.result = nil
			status = StatusFailed
			j.mu.Unlock()
		}
	}
	s.journalTerminal(j, status)

	j.progress.Set(string(status), 0, 0)
	j.progress.Close()
	close(j.done)

	s.mu.Lock()
	switch status {
	case StatusDone:
		s.counters.completed++
	case StatusCanceled:
		s.counters.canceled++
	default:
		s.counters.failed++
	}
	s.mu.Unlock()

	j.mu.Lock()
	elapsed := j.finished.Sub(j.started)
	errMsg := j.errMsg
	j.mu.Unlock()
	switch status {
	case StatusDone:
		s.met.completed.Inc()
	case StatusCanceled:
		s.met.canceled.Inc()
	default:
		s.met.failed.Inc()
	}
	s.reg.Histogram("job_duration_seconds", "Job wall clock from start to terminal status, by kind and outcome.",
		nil, obs.Labels{"kind": j.spec.Kind, "status": string(status)}).Observe(elapsed.Seconds())
	span.SetAttr("status", string(status))
	if errMsg != "" {
		span.SetAttr("error", errMsg)
	}
	span.End()
	logLine := obs.Logger(ctx).With("status", string(status), "duration_ms", float64(elapsed)/float64(time.Millisecond))
	if status == StatusFailed {
		logLine.Error("job finished", "error", errMsg)
	} else {
		logLine.Info("job finished")
	}

	if status == StatusDone {
		s.recordPhases(j)
	}
}

// journalTerminal writes a finished job's journal record. One special
// case: a job canceled only because the scheduler is draining (graceful
// shutdown) is journaled back as queued — the cancel was the process
// stopping, not the user changing their mind, so the next life resumes
// it. Explicit cancels are tombstoned by Cancel and stay canceled.
func (s *Scheduler) journalTerminal(j *job, status Status) {
	j.mu.Lock()
	tombstoned := j.tombstoned
	j.mu.Unlock()
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if status == StatusCanceled && !tombstoned && draining {
		j.mu.Lock()
		rec := j.journalRecordLocked()
		j.mu.Unlock()
		rec.Status = StatusQueued
		rec.Error = ""
		rec.Started, rec.Finished = nil, nil
		data, err := json.Marshal(rec)
		if err == nil {
			err = s.cache.PutJobRecord(rec.ID, data)
		}
		if err != nil {
			s.met.journalErrors.Inc()
			return
		}
		s.met.journalWrites.Inc()
		s.jobLogger(j.id, j.spec.Kind).Info("drained job journaled as queued for resume")
		return
	}
	s.journal(j)
}

// runSpecFn is the spec executor; tests swap it to exercise panic
// isolation and failure paths without crafting a crashing workload.
var runSpecFn = runSpec

// runIsolated runs the spec with panics converted to errors, so one
// crashing job cannot take down the worker pool. A distributed runner,
// when configured, gets first refusal; a declined spec falls through to
// the local path.
func (s *Scheduler) runIsolated(ctx context.Context, j *job) (result []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("jobs: job panicked: %v\n%s", r, debug.Stack())
		}
	}()
	if s.opts.Dist != nil {
		result, handled, err := s.opts.Dist.Run(ctx, j.id, j.spec, j.progress)
		if handled {
			return result, err
		}
		obs.Logger(ctx).Debug("distributed runner declined; executing locally")
	}
	return runSpecFn(ctx, j.spec, j.progress, s.opts.SweepParallel)
}

// recordPhases folds a completed job's phase durations into the latency
// samples, keyed kind/phase, and into the per-phase histogram on the
// metrics registry.
func (s *Scheduler) recordPhases(j *job) {
	durations := j.progress.Durations()
	s.phaseMu.Lock()
	for _, pd := range durations {
		if pd.Phase == "queued" || Status(pd.Phase).Terminal() {
			continue
		}
		key := j.spec.Kind + "/" + pd.Phase
		s.phaseMS[key] = append(s.phaseMS[key], float64(pd.Duration)/float64(time.Millisecond))
	}
	s.phaseMu.Unlock()
	for _, pd := range durations {
		if pd.Phase == "queued" || Status(pd.Phase).Terminal() {
			continue
		}
		s.reg.Histogram("job_phase_duration_seconds", "Per-phase wall clock of completed jobs, by kind and phase.",
			nil, obs.Labels{"kind": j.spec.Kind, "phase": pd.Phase}).Observe(pd.Duration.Seconds())
	}
}

// snapshot builds the immutable view.
func (j *job) snapshot() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:       j.id,
		Kind:     j.spec.Kind,
		Tenant:   j.tenant,
		Spec:     j.spec,
		Status:   j.status,
		Cached:   j.cached,
		Progress: j.progress.Snapshot(),
		Error:    j.errMsg,
		Created:  j.created,
	}
	if j.status == StatusDone {
		v.Result = json.RawMessage(j.result)
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	return v
}
