package jobs

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
)

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	// Entries is the number of results currently held in memory.
	Entries int `json:"entries"`
	// MaxEntries is the in-memory LRU capacity.
	MaxEntries int `json:"maxEntries"`
	// Hits counts Gets served from memory, DiskHits those revived from the
	// cache directory after an LRU eviction or a restart.
	Hits     int64 `json:"hits"`
	DiskHits int64 `json:"diskHits"`
	// Misses counts Gets that found nothing anywhere.
	Misses int64 `json:"misses"`
	// Evictions counts in-memory LRU evictions (the disk copy survives).
	Evictions int64 `json:"evictions"`
	// Dir is the persistence directory ("" = memory only).
	Dir string `json:"dir,omitempty"`
}

// Cache is the content-addressed result store: job ID (the SHA-256 of the
// canonical spec) → result bytes. In memory it is a bounded LRU; with a
// cache dir every stored result is also persisted as <id>.json via an
// atomic temp+rename write, so results survive both LRU eviction and
// process restarts, and a repeated spec is always served byte-identically.
//
// Alongside the immutable results the cache also stores *checkpoints*:
// mutable progress records for non-terminating work (campaign state,
// internal/campaign), keyed by the owning spec's content hash and
// persisted as <id>.ckpt.json. Checkpoints are overwritten in place — a
// deliberate departure from the write-once result contract — and are
// exempt from the LRU: there is at most one per long-lived campaign, and
// evicting one would silently rewind a restart to an older snapshot when
// the disk copy is absent (memory-only caches).
//
// The third record class is *job records* (<id>.job.json): the
// scheduler's write-ahead journal of every job's spec, tenant, and
// lifecycle (journal.go). Like checkpoints they are mutable and
// LRU-exempt; unlike checkpoints they are deleted when the scheduler
// prunes old terminal jobs.
type Cache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
	dir   string

	checkpoints map[string][]byte
	jobRecords  map[string][]byte

	hits, diskHits, misses, evictions int64
}

type cacheEntry struct {
	id     string
	result []byte
}

// NewCache builds a cache holding up to maxEntries results in memory
// (≤ 0 means 128). A non-empty dir enables disk persistence; it is
// created if missing.
func NewCache(maxEntries int, dir string) (*Cache, error) {
	if maxEntries <= 0 {
		maxEntries = 128
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("jobs: cache dir: %w", err)
		}
	}
	return &Cache{
		max:         maxEntries,
		ll:          list.New(),
		items:       make(map[string]*list.Element),
		dir:         dir,
		checkpoints: make(map[string][]byte),
		jobRecords:  make(map[string][]byte),
	}, nil
}

var cacheIDPattern = regexp.MustCompile(`^[0-9a-f]{64}$`)

// Get returns the cached result for id, checking memory first and then
// the cache directory (a disk hit is promoted back into memory).
func (c *Cache) Get(id string) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.items[id]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		result := el.Value.(*cacheEntry).result
		c.mu.Unlock()
		return result, true
	}
	c.mu.Unlock()

	if c.dir == "" || !cacheIDPattern.MatchString(id) {
		c.mu.Lock()
		c.misses++
		c.mu.Unlock()
		return nil, false
	}
	data, err := os.ReadFile(filepath.Join(c.dir, id+".json"))
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		c.misses++
		return nil, false
	}
	c.diskHits++
	c.insertLocked(id, data)
	return data, true
}

// Put stores a result under id, evicting the least recently used entry
// beyond capacity and persisting to disk when a cache dir is configured.
func (c *Cache) Put(id string, result []byte) error {
	if c.dir != "" {
		if !cacheIDPattern.MatchString(id) {
			return fmt.Errorf("jobs: cache id %q is not a sha256 hex digest", id)
		}
		if err := writeFileAtomic(filepath.Join(c.dir, id+".json"), result); err != nil {
			return fmt.Errorf("jobs: cache persist: %w", err)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.insertLocked(id, result)
	return nil
}

func (c *Cache) insertLocked(id string, result []byte) {
	if el, ok := c.items[id]; ok {
		el.Value.(*cacheEntry).result = result
		c.ll.MoveToFront(el)
		return
	}
	c.items[id] = c.ll.PushFront(&cacheEntry{id: id, result: result})
	for c.ll.Len() > c.max {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*cacheEntry).id)
		c.evictions++
	}
}

// PutCheckpoint stores (or overwrites) the checkpoint record for id,
// persisting <id>.ckpt.json atomically when a cache dir is configured. The
// write is atomic, so a server killed mid-checkpoint leaves the previous
// complete snapshot — a resume never sees a torn record.
func (c *Cache) PutCheckpoint(id string, data []byte) error {
	if !cacheIDPattern.MatchString(id) {
		return fmt.Errorf("jobs: checkpoint id %q is not a sha256 hex digest", id)
	}
	if c.dir != "" {
		if err := writeFileAtomic(filepath.Join(c.dir, id+".ckpt.json"), data); err != nil {
			return fmt.Errorf("jobs: checkpoint persist: %w", err)
		}
	}
	c.mu.Lock()
	c.checkpoints[id] = append([]byte(nil), data...)
	c.mu.Unlock()
	return nil
}

// GetCheckpoint returns the checkpoint record for id, checking memory
// first and then the cache directory.
func (c *Cache) GetCheckpoint(id string) ([]byte, bool) {
	c.mu.Lock()
	if data, ok := c.checkpoints[id]; ok {
		c.mu.Unlock()
		return append([]byte(nil), data...), true
	}
	c.mu.Unlock()
	if c.dir == "" || !cacheIDPattern.MatchString(id) {
		return nil, false
	}
	data, err := os.ReadFile(filepath.Join(c.dir, id+".ckpt.json"))
	if err != nil {
		return nil, false
	}
	c.mu.Lock()
	c.checkpoints[id] = append([]byte(nil), data...)
	c.mu.Unlock()
	return data, true
}

// PutJobRecord stores (or overwrites) the journal record for id,
// persisting <id>.job.json atomically when a cache dir is configured.
// Job records are the scheduler's write-ahead journal (journal.go): like
// checkpoints they are mutable, LRU-exempt, and overwritten in place on
// every status transition, so the newest complete record always survives
// a SIGKILL (the atomic rename never leaves a torn file).
func (c *Cache) PutJobRecord(id string, data []byte) error {
	if !cacheIDPattern.MatchString(id) {
		return fmt.Errorf("jobs: job record id %q is not a sha256 hex digest", id)
	}
	if c.dir != "" {
		if err := writeFileAtomic(filepath.Join(c.dir, id+".job.json"), data); err != nil {
			return fmt.Errorf("jobs: job record persist: %w", err)
		}
	}
	c.mu.Lock()
	c.jobRecords[id] = append([]byte(nil), data...)
	c.mu.Unlock()
	return nil
}

// GetJobRecord returns the journal record for id, checking memory first
// and then the cache directory.
func (c *Cache) GetJobRecord(id string) ([]byte, bool) {
	c.mu.Lock()
	if data, ok := c.jobRecords[id]; ok {
		c.mu.Unlock()
		return append([]byte(nil), data...), true
	}
	c.mu.Unlock()
	if c.dir == "" || !cacheIDPattern.MatchString(id) {
		return nil, false
	}
	data, err := os.ReadFile(filepath.Join(c.dir, id+".job.json"))
	if err != nil {
		return nil, false
	}
	c.mu.Lock()
	c.jobRecords[id] = append([]byte(nil), data...)
	c.mu.Unlock()
	return data, true
}

// DeleteJobRecord forgets the journal record for id (memory and disk).
// The scheduler calls it when pruning old terminal jobs: the result
// stays in the content-addressed cache, only the lifecycle record goes.
func (c *Cache) DeleteJobRecord(id string) {
	c.mu.Lock()
	delete(c.jobRecords, id)
	c.mu.Unlock()
	if c.dir != "" && cacheIDPattern.MatchString(id) {
		_ = os.Remove(filepath.Join(c.dir, id+".job.json"))
	}
}

// JobRecords lists the IDs with a journal record, sorted — memory and
// (when persistent) the cache directory combined. A restarted scheduler
// iterates this to replay every job the previous life journaled.
func (c *Cache) JobRecords() []string {
	seen := make(map[string]struct{})
	c.mu.Lock()
	for id := range c.jobRecords {
		seen[id] = struct{}{}
	}
	c.mu.Unlock()
	if c.dir != "" {
		if matches, err := filepath.Glob(filepath.Join(c.dir, "*.job.json")); err == nil {
			for _, path := range matches {
				id := strings.TrimSuffix(filepath.Base(path), ".job.json")
				if cacheIDPattern.MatchString(id) {
					seen[id] = struct{}{}
				}
			}
		}
	}
	out := make([]string, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Checkpoints lists the IDs with a checkpoint record, sorted — memory and
// (when persistent) the cache directory combined. A restarted server
// iterates this to resume every campaign the previous life checkpointed.
func (c *Cache) Checkpoints() []string {
	seen := make(map[string]struct{})
	c.mu.Lock()
	for id := range c.checkpoints {
		seen[id] = struct{}{}
	}
	c.mu.Unlock()
	if c.dir != "" {
		if matches, err := filepath.Glob(filepath.Join(c.dir, "*.ckpt.json")); err == nil {
			for _, path := range matches {
				id := strings.TrimSuffix(filepath.Base(path), ".ckpt.json")
				if cacheIDPattern.MatchString(id) {
					seen[id] = struct{}{}
				}
			}
		}
	}
	out := make([]string, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:    c.ll.Len(),
		MaxEntries: c.max,
		Hits:       c.hits,
		DiskHits:   c.diskHits,
		Misses:     c.misses,
		Evictions:  c.evictions,
		Dir:        c.dir,
	}
}

// writeFileAtomic writes data to a temp file in path's directory and
// renames it into place, so readers never observe a partial result.
func writeFileAtomic(path string, data []byte) (err error) {
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err = tmp.Write(data); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
