package jobs

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fakeID returns a syntactically valid job ID (sha256 hex) that encodes b.
func fakeID(b byte) string {
	return strings.Repeat(string([]byte{'a' + b%6, '0' + b%10}), 32)
}

func TestCacheLRUEviction(t *testing.T) {
	c, err := NewCache(2, "")
	if err != nil {
		t.Fatal(err)
	}
	a, b, d := fakeID(0), fakeID(1), fakeID(2)
	for _, id := range []string{a, b} {
		if err := c.Put(id, []byte(id[:8])); err != nil {
			t.Fatal(err)
		}
	}
	// Touch a so b becomes the LRU victim.
	if _, ok := c.Get(a); !ok {
		t.Fatal("a missing before eviction")
	}
	if err := c.Put(d, []byte("d")); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(b); ok {
		t.Fatal("b should have been evicted (LRU)")
	}
	if _, ok := c.Get(a); !ok {
		t.Fatal("a should have survived (recently used)")
	}
	if _, ok := c.Get(d); !ok {
		t.Fatal("d should be present")
	}
	st := c.Stats()
	if st.Entries != 2 || st.MaxEntries != 2 {
		t.Fatalf("entries = %d/%d, want 2/2", st.Entries, st.MaxEntries)
	}
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.Hits != 3 || st.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 3/1", st.Hits, st.Misses)
	}
}

func TestCachePutOverwriteKeepsOneEntry(t *testing.T) {
	c, err := NewCache(4, "")
	if err != nil {
		t.Fatal(err)
	}
	id := fakeID(3)
	if err := c.Put(id, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(id, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(id)
	if !ok || string(got) != "v2" {
		t.Fatalf("Get = %q, %v; want v2", got, ok)
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("entries = %d, want 1", st.Entries)
	}
}

func TestCacheDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	id := fakeID(4)
	want := []byte(`{"answer":42}`)

	c1, err := NewCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Put(id, want); err != nil {
		t.Fatal(err)
	}
	if data, err := os.ReadFile(filepath.Join(dir, id+".json")); err != nil {
		t.Fatalf("persisted file: %v", err)
	} else if !bytes.Equal(data, want) {
		t.Fatalf("disk bytes = %q, want %q", data, want)
	}

	// A fresh cache over the same directory — the restart case — serves the
	// result from disk and promotes it into memory.
	c2, err := NewCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get(id)
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("disk Get = %q, %v; want %q", got, ok, want)
	}
	st := c2.Stats()
	if st.DiskHits != 1 || st.Hits != 0 {
		t.Fatalf("diskHits/hits = %d/%d, want 1/0", st.DiskHits, st.Hits)
	}
	// Promoted: the second Get is a memory hit.
	if _, ok := c2.Get(id); !ok {
		t.Fatal("promoted entry missing")
	}
	if st := c2.Stats(); st.Hits != 1 {
		t.Fatalf("hits after promotion = %d, want 1", st.Hits)
	}
}

func TestCacheDiskSurvivesEviction(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	a, b := fakeID(5), fakeID(6)
	if err := c.Put(a, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(b, []byte("b")); err != nil { // evicts a from memory
		t.Fatal(err)
	}
	got, ok := c.Get(a)
	if !ok || string(got) != "a" {
		t.Fatalf("evicted entry not revived from disk: %q, %v", got, ok)
	}
	st := c.Stats()
	if st.Evictions < 1 || st.DiskHits != 1 {
		t.Fatalf("evictions/diskHits = %d/%d, want ≥1/1", st.Evictions, st.DiskHits)
	}
}

func TestCacheRejectsBadIDs(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	// A non-hash ID must never become a disk path (path traversal guard).
	if err := c.Put("../escape", []byte("x")); err == nil {
		t.Fatal("Put accepted a non-hash ID with a cache dir")
	}
	if _, ok := c.Get("../escape"); ok {
		t.Fatal("Get found a non-hash ID")
	}
	if st := c.Stats(); st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}
}

func TestCacheMemoryOnlyMiss(t *testing.T) {
	c, err := NewCache(0, "") // 0 → default capacity
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(fakeID(7)); ok {
		t.Fatal("empty cache returned a hit")
	}
	st := c.Stats()
	if st.MaxEntries != 128 {
		t.Fatalf("default maxEntries = %d, want 128", st.MaxEntries)
	}
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}
}
