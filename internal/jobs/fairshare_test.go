package jobs

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"jayanti98/internal/tenant"
)

// fuzzSpec builds a cheap valid spec whose content hash varies with seed,
// so tests can enqueue many distinct jobs (the fake executor never
// actually fuzzes anything).
func fuzzSpec(seed int64) *Spec {
	return &Spec{Kind: KindExplore, Explore: &ExploreSpec{Mode: "fuzz", Seed: seed}}
}

func tenantsRegistry(t *testing.T, cfg tenant.Config) *tenant.Registry {
	t.Helper()
	reg, err := tenant.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// TestFairShareStarvationFreedom is the acceptance-criteria property: a
// tenant with a saturated backlog never delays another tenant's single
// job by more than one scheduling quantum. With weights heavy=3 and
// light=1 the quantum is ceil(totalWeight/lightWeight) = 4 dispatches, so
// at most 3 heavy jobs may start between the light job becoming eligible
// and it running.
func TestFairShareStarvationFreedom(t *testing.T) {
	reg := tenantsRegistry(t, tenant.Config{Tenants: []tenant.Tenant{
		{Name: "heavy", Key: "kh", Limits: tenant.Limits{Weight: 3}},
		{Name: "light", Key: "kl", Limits: tenant.Limits{Weight: 1}},
	}})
	started := make(chan int64, 64)
	release := make(chan struct{})
	swapRunSpec(t, func(ctx context.Context, spec *Spec, p *Progress, parallel int) ([]byte, error) {
		started <- spec.Explore.Seed
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return []byte(fmt.Sprintf(`{"seed":%d}`, spec.Explore.Seed)), nil
	})
	s := newTestScheduler(t, Options{Workers: 1, Tenants: reg})

	// One heavy job occupies the single worker...
	if _, _, err := s.SubmitAs("heavy", fuzzSpec(1)); err != nil {
		t.Fatal(err)
	}
	if seed := <-started; seed != 1 {
		t.Fatalf("first start = seed %d, want 1", seed)
	}
	// ...seven more pile up behind it, and then the light tenant asks for
	// one job.
	for seed := int64(2); seed <= 8; seed++ {
		if _, _, err := s.SubmitAs("heavy", fuzzSpec(seed)); err != nil {
			t.Fatal(err)
		}
	}
	lightView, _, err := s.SubmitAs("light", fuzzSpec(100))
	if err != nil {
		t.Fatal(err)
	}
	if lightView.Tenant != "light" {
		t.Fatalf("light job owned by %q, want light", lightView.Tenant)
	}

	// Step the worker: each release finishes the running job and lets the
	// scheduler dispatch the next one.
	var order []int64
	for i := 0; i < 8; i++ {
		release <- struct{}{}
		select {
		case seed := <-started:
			order = append(order, seed)
		case <-time.After(30 * time.Second):
			t.Fatalf("dispatch %d never started; order so far %v", i, order)
		}
	}
	release <- struct{}{} // finish the last job

	lightPos := -1
	for i, seed := range order {
		if seed == 100 {
			lightPos = i
		}
	}
	if lightPos == -1 {
		t.Fatalf("light job never started: %v", order)
	}
	// Positions 0..lightPos-1 are heavy dispatches that jumped ahead; the
	// smooth-WRR bound says strictly fewer than one quantum of them.
	if lightPos >= 4 {
		t.Fatalf("light job delayed by %d heavy dispatches, want < 4 (one quantum): %v", lightPos, order)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if final, err := s.Wait(ctx, lightView.ID); err != nil || final.Status != StatusDone {
		t.Fatalf("light job ended %+v, %v", final, err)
	}
}

// TestFairShareWeightedSplit pins the steady-state share: with weights
// 3:1 and both backlogs saturated, 8 consecutive dispatches split 6:2.
func TestFairShareWeightedSplit(t *testing.T) {
	reg := tenantsRegistry(t, tenant.Config{Tenants: []tenant.Tenant{
		{Name: "heavy", Key: "kh", Limits: tenant.Limits{Weight: 3}},
		{Name: "light", Key: "kl", Limits: tenant.Limits{Weight: 1}},
	}})
	started := make(chan int64, 64)
	release := make(chan struct{})
	swapRunSpec(t, func(ctx context.Context, spec *Spec, p *Progress, parallel int) ([]byte, error) {
		started <- spec.Explore.Seed
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return []byte(`{}`), nil
	})
	s := newTestScheduler(t, Options{Workers: 1, Tenants: reg})

	// Heavy seeds are 1..9, light seeds 101..104. The first submission
	// starts immediately (the worker is idle); everything after queues.
	if _, _, err := s.SubmitAs("heavy", fuzzSpec(1)); err != nil {
		t.Fatal(err)
	}
	if seed := <-started; seed != 1 {
		t.Fatalf("first start = seed %d, want 1", seed)
	}
	for seed := int64(2); seed <= 9; seed++ {
		if _, _, err := s.SubmitAs("heavy", fuzzSpec(seed)); err != nil {
			t.Fatal(err)
		}
	}
	for seed := int64(101); seed <= 104; seed++ {
		if _, _, err := s.SubmitAs("light", fuzzSpec(seed)); err != nil {
			t.Fatal(err)
		}
	}

	var heavy, light int
	for i := 0; i < 8; i++ {
		release <- struct{}{}
		select {
		case seed := <-started:
			if seed > 100 {
				light++
			} else {
				heavy++
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("dispatch %d never started", i)
		}
	}
	if heavy != 6 || light != 2 {
		t.Fatalf("8 dispatches split heavy=%d light=%d, want 6:2 for weights 3:1", heavy, light)
	}
	// Drain the rest so Shutdown does not wait on blocked jobs.
	for i := 0; i < 5; i++ {
		release <- struct{}{}
	}
}

// TestTenantMaxRunningCap: a tenant at its running cap leaves its backlog
// queued while other tenants' work flows through the free workers.
func TestTenantMaxRunningCap(t *testing.T) {
	reg := tenantsRegistry(t, tenant.Config{Tenants: []tenant.Tenant{
		{Name: "capped", Key: "kc", Limits: tenant.Limits{MaxRunning: 1}},
		{Name: "free", Key: "kf"},
	}})
	started := make(chan int64, 8)
	gates := map[int64]chan struct{}{1: make(chan struct{}), 2: make(chan struct{}), 100: make(chan struct{})}
	swapRunSpec(t, func(ctx context.Context, spec *Spec, p *Progress, parallel int) ([]byte, error) {
		started <- spec.Explore.Seed
		select {
		case <-gates[spec.Explore.Seed]:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return []byte(`{}`), nil
	})
	s := newTestScheduler(t, Options{Workers: 2, Tenants: reg})

	if _, _, err := s.SubmitAs("capped", fuzzSpec(1)); err != nil {
		t.Fatal(err)
	}
	if seed := <-started; seed != 1 {
		t.Fatalf("first start = seed %d, want 1", seed)
	}
	// The second capped job must NOT start (cap 1), even with a worker
	// idle...
	if _, _, err := s.SubmitAs("capped", fuzzSpec(2)); err != nil {
		t.Fatal(err)
	}
	select {
	case seed := <-started:
		t.Fatalf("capped tenant started a second job (seed %d) past MaxRunning=1", seed)
	case <-time.After(50 * time.Millisecond):
	}
	// ...but the free tenant's job flows straight through that worker.
	if _, _, err := s.SubmitAs("free", fuzzSpec(100)); err != nil {
		t.Fatal(err)
	}
	if seed := <-started; seed != 100 {
		t.Fatalf("free tenant start = seed %d, want 100", seed)
	}
	close(gates[100])

	// Releasing the first capped job frees the cap; the second runs.
	close(gates[1])
	if seed := <-started; seed != 2 {
		t.Fatalf("after cap release, start = seed %d, want 2", seed)
	}
	close(gates[2])
}

// TestSubmitAsTenantQueueCap: submissions beyond MaxQueued fail with
// TenantBusyError (the scheduler-level 429).
func TestSubmitAsTenantQueueCap(t *testing.T) {
	reg := tenantsRegistry(t, tenant.Config{Tenants: []tenant.Tenant{
		{Name: "t", Key: "kt", Limits: tenant.Limits{MaxQueued: 1}},
	}})
	started := make(chan int64, 8)
	release := make(chan struct{})
	swapRunSpec(t, func(ctx context.Context, spec *Spec, p *Progress, parallel int) ([]byte, error) {
		started <- spec.Explore.Seed
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return []byte(`{}`), nil
	})
	s := newTestScheduler(t, Options{Workers: 1, Tenants: reg})

	if _, _, err := s.SubmitAs("t", fuzzSpec(1)); err != nil {
		t.Fatal(err)
	}
	<-started // seed 1 is running, not queued
	if _, _, err := s.SubmitAs("t", fuzzSpec(2)); err != nil {
		t.Fatal(err) // queued = 1, at the cap
	}
	_, _, err := s.SubmitAs("t", fuzzSpec(3))
	var busy *TenantBusyError
	if !errors.As(err, &busy) {
		t.Fatalf("over-cap submission error = %v, want TenantBusyError", err)
	}
	if busy.Tenant != "t" || busy.RetryAfter <= 0 {
		t.Fatalf("busy = %+v", busy)
	}
	// The global queue-full error is untouched by tenancy and reads
	// differently.
	if errors.Is(err, ErrQueueFull) {
		t.Fatal("TenantBusyError must not alias ErrQueueFull")
	}
	close(release)
}
