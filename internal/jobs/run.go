package jobs

import (
	"context"
	"encoding/json"
	"fmt"

	"jayanti98/internal/campaign"
	"jayanti98/internal/experiments"
	"jayanti98/internal/explore"
	"jayanti98/internal/lowerbound"
	"jayanti98/internal/obs"
	"jayanti98/internal/report"
	"jayanti98/internal/universal"
)

// ExperimentResult is one report section: the markdown cmd/lbreport
// renders plus its tables in structured form (report.Table JSON).
type ExperimentResult struct {
	Name     string          `json:"name"`
	Markdown string          `json:"markdown"`
	Tables   []*report.Table `json:"tables"`
}

// ReportResult is the payload of a KindReport job.
type ReportResult struct {
	Quick       bool               `json:"quick"`
	Experiments []ExperimentResult `json:"experiments"`
}

// ConstructionSweep is one construction's slice of a KindSweep job.
type ConstructionSweep struct {
	Construction string                          `json:"construction"`
	Growth       string                          `json:"growth"`
	Results      []lowerbound.ConstructionResult `json:"results"`
	// Table is the same rendering cmd/unisweep prints.
	Table *report.Table `json:"table"`
}

// SweepResult is the payload of a KindSweep job.
type SweepResult struct {
	Type          string              `json:"type"`
	Ns            []int               `json:"ns"`
	Constructions []ConstructionSweep `json:"constructions"`
}

// ExploreFailure is a schedule-search counterexample in wire form.
type ExploreFailure struct {
	Kind        string `json:"kind"`
	Detail      string `json:"detail"`
	Schedule    []int  `json:"schedule"`
	OriginalLen int    `json:"originalLen,omitempty"`
	Seed        int64  `json:"seed,omitempty"`
}

// ExploreResult is the payload of a KindExplore job.
type ExploreResult struct {
	Mode   string `json:"mode"`
	Budget int    `json:"budget"`
	// Exhaustive counters (zero for fuzz).
	States   int `json:"states,omitempty"`
	Runs     int `json:"runs,omitempty"`
	Complete int `json:"complete,omitempty"`
	// Fuzz counters (zero for exhaustive).
	Samples    int `json:"samples,omitempty"`
	TotalSteps int `json:"totalSteps,omitempty"`

	Failures []ExploreFailure `json:"failures"`
}

// Execute normalizes and validates spec, then runs it in-process and
// returns its result bytes — the same bytes the scheduler would compute
// and cache for the spec. It is the reference implementation the
// distributed path (internal/dist) must be byte-identical to: the
// shard-merge property tests compare against it.
func Execute(ctx context.Context, spec *Spec, p *Progress, parallel int) ([]byte, error) {
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return runSpec(ctx, spec, p, parallel)
}

// runSpec executes a normalized, validated spec and returns its result as
// canonical JSON bytes. The bytes are a pure function of the spec — the
// caching contract — so nothing time-, host-, or parallelism-dependent
// may enter the payload. parallel is the sweep worker count to run
// beneath this job (≤ 0: one per CPU).
func runSpec(ctx context.Context, spec *Spec, p *Progress, parallel int) ([]byte, error) {
	var payload any
	var err error
	switch spec.Kind {
	case KindReport:
		payload, err = runReport(ctx, spec.Report, p, parallel)
	case KindSweep:
		payload, err = runSweep(ctx, spec.Sweep, p, parallel)
	case KindExplore:
		payload, err = runExplore(ctx, spec.Explore, p, parallel)
	case KindCampaignRound:
		payload, err = runCampaignRound(ctx, spec.CampaignRound, p, parallel)
	default:
		err = fmt.Errorf("jobs: unknown kind %q", spec.Kind)
	}
	if err != nil {
		return nil, err
	}
	return json.Marshal(payload)
}

func runReport(ctx context.Context, spec *ReportSpec, p *Progress, parallel int) (*ReportResult, error) {
	selected, err := experiments.For(spec.Experiments)
	if err != nil {
		return nil, err
	}
	res := &ReportResult{Quick: spec.Quick, Experiments: make([]ExperimentResult, 0, len(selected))}
	opts := experiments.Options{Quick: spec.Quick, Parallel: parallel}
	for i, e := range selected {
		p.Set(e.Name, i, len(selected))
		var d report.Doc
		if err := e.Run(ctx, &d, opts); err != nil {
			return nil, fmt.Errorf("%s: %w", e.Name, err)
		}
		res.Experiments = append(res.Experiments, ExperimentResult{
			Name:     e.Name,
			Markdown: d.Markdown(),
			Tables:   d.Tables(),
		})
		p.Set(e.Name, i+1, len(selected))
	}
	return res, nil
}

func runSweep(ctx context.Context, spec *SweepSpec, p *Progress, parallel int) (*SweepResult, error) {
	st, err := lowerbound.SweepTypeFor(spec.Type)
	if err != nil {
		return nil, err
	}
	ns := spec.Ns()
	constructions := spec.ConstructionNames()
	flat := make([]lowerbound.ConstructionResult, 0, len(constructions)*len(ns))
	for i, name := range constructions {
		name := name
		p.Set(name, i, len(constructions))
		sctx, span := obs.StartSpan(ctx, "sweep "+name)
		span.SetAttr("construction", name)
		span.SetAttr("type", spec.Type)
		mk := func(n int) universal.Construction {
			return universal.Must(universal.New(name, st.New(n), n, 0))
		}
		results, _, err := lowerbound.SweepConstructionCtx(sctx, mk, st.Op, ns, parallel)
		span.End()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		flat = append(flat, results...)
		p.Set(name, i+1, len(constructions))
	}
	return BuildSweepResult(spec, flat)
}

// BuildSweepResult assembles the KindSweep payload from the flat,
// coordinate-ordered measurement slice (construction-major, n-minor —
// the order runSweep produces and internal/dist's index-ordered shard
// merge reconstructs). Each measurement is a pure function of its
// (construction, n) coordinate, so any partition of the grid feeds this
// function identical inputs and the payload is byte-identical no matter
// where the shard boundaries fell.
func BuildSweepResult(spec *SweepSpec, flat []lowerbound.ConstructionResult) (*SweepResult, error) {
	ns := spec.Ns()
	constructions := spec.ConstructionNames()
	if want := len(constructions) * len(ns); len(flat) != want {
		return nil, fmt.Errorf("jobs: sweep has %d results, want %d (%d constructions × %d ns)",
			len(flat), want, len(constructions), len(ns))
	}
	res := &SweepResult{Type: spec.Type, Ns: ns}
	for i, name := range constructions {
		results := flat[i*len(ns) : (i+1)*len(ns)]
		tbl := report.NewTable("n", "forced steps/op", "documented bound", "Ω ⌈log₄ n⌉")
		for _, r := range results {
			if r.Construction != name {
				return nil, fmt.Errorf("jobs: sweep result %q at coordinates of %q", r.Construction, name)
			}
			bound := "not wait-free"
			if r.StepBound > 0 {
				bound = fmt.Sprintf("%d", r.StepBound)
			}
			tbl.AddRow(r.N, r.MaxSteps, bound, r.LowerBound)
		}
		res.Constructions = append(res.Constructions, ConstructionSweep{
			Construction: name,
			Growth:       string(lowerbound.ConstructionGrowth(ns, results)),
			Results:      results,
			Table:        tbl,
		})
	}
	return res, nil
}

func runExplore(ctx context.Context, spec *ExploreSpec, p *Progress, parallel int) (*ExploreResult, error) {
	cfg := explore.Config{
		Alg:        spec.Alg,
		Object:     spec.Object,
		N:          spec.N,
		OpsPerProc: spec.OpsPerProc,
		Budget:     spec.Budget,
		// An empty spec field means native, never the process default: the
		// job's result must not depend on the server's LB_LLSC environment.
		LLSC: spec.LLSC,
	}
	if cfg.LLSC == "" {
		cfg.LLSC = "native"
	}
	res := &ExploreResult{Mode: spec.Mode, Failures: []ExploreFailure{}}
	ctx, span := obs.StartSpan(ctx, "explore "+spec.Mode)
	defer span.End()
	span.SetAttr("alg", spec.Alg)
	span.SetAttr("mode", spec.Mode)
	switch spec.Mode {
	case "exhaustive":
		p.Set("exhaustive", 0, 1)
		rep, err := explore.ExhaustiveCtx(ctx, cfg, parallel)
		if err != nil {
			return nil, err
		}
		res.Budget = rep.Cfg.Budget
		res.States = rep.States
		res.Runs = rep.Runs
		res.Complete = rep.Complete
		if rep.Failure != nil {
			res.Failures = append(res.Failures, ExploreFailure{
				Kind:     string(rep.Failure.Kind),
				Detail:   rep.Failure.Detail,
				Schedule: rep.Record.Schedule,
			})
		}
		p.Set("exhaustive", 1, 1)
	case "fuzz":
		p.Set("fuzz", 0, 1)
		rep, err := explore.FuzzCtx(ctx, cfg, explore.FuzzOptions{
			Samples: spec.Samples,
			Seed:    spec.Seed,
			Workers: parallel,
		})
		if err != nil {
			return nil, err
		}
		failures := make([]ExploreFailure, 0, len(rep.Failures))
		for _, f := range rep.Failures {
			failures = append(failures, NewExploreFailure(f))
		}
		res = BuildFuzzResult(spec, rep.TotalSteps, failures)
		p.Set("fuzz", 1, 1)
	default:
		return nil, fmt.Errorf("jobs: explore mode %q", spec.Mode)
	}
	return res, nil
}

// runCampaignRound executes one coverage-guided campaign round in-process
// — the local reference implementation the distributed shard path
// (internal/dist) must be byte-identical to.
func runCampaignRound(ctx context.Context, rs *campaign.RoundSpec, p *Progress, parallel int) (*campaign.RoundResult, error) {
	ctx, span := obs.StartSpan(ctx, "campaign round batch")
	defer span.End()
	span.SetAttr("alg", rs.Campaign.Alg)
	span.SetAttr("round", fmt.Sprintf("%d", rs.Round))
	p.Set("campaign-round", 0, 1)
	rr, err := campaign.ExecuteRound(ctx, rs, parallel)
	if err != nil {
		return nil, err
	}
	p.Set("campaign-round", 1, 1)
	return rr, nil
}

// NewExploreFailure converts a schedule-search counterexample to its wire
// form (the replay's events are dropped; the schedule plus seed suffice to
// reproduce it).
func NewExploreFailure(f *explore.Replay) ExploreFailure {
	return ExploreFailure{
		Kind:        string(f.Kind),
		Detail:      f.Detail,
		Schedule:    f.Schedule,
		OriginalLen: f.OriginalLen,
		Seed:        f.Seed,
	}
}

// BuildFuzzResult assembles the KindExplore payload of a fuzz campaign
// from its sample-ordered failures and summed step count. Sample i always
// derives its private seed with sweep.Derive(Seed, i) regardless of which
// process ran it, so concatenating per-shard failures in sample order
// (internal/dist) reproduces the serial payload byte-for-byte.
func BuildFuzzResult(spec *ExploreSpec, totalSteps int, failures []ExploreFailure) *ExploreResult {
	if failures == nil {
		failures = []ExploreFailure{}
	}
	return &ExploreResult{
		Mode:       spec.Mode,
		Budget:     spec.Budget,
		Samples:    spec.Samples,
		TotalSteps: totalSteps,
		Failures:   failures,
	}
}
