package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"jayanti98/internal/tenant"
)

// echoRunSpec is a deterministic fake executor: the result is a pure
// function of the spec, mirroring the real determinism contract the
// journal's replay-and-recompute path relies on.
func echoRunSpec(ctx context.Context, spec *Spec, p *Progress, parallel int) ([]byte, error) {
	seed := int64(0)
	if spec.Explore != nil {
		seed = spec.Explore.Seed
	}
	return []byte(fmt.Sprintf(`{"kind":%q,"seed":%d}`, spec.Kind, seed)), nil
}

func newDirScheduler(t *testing.T, dir string, opts Options) *Scheduler {
	t.Helper()
	cache, err := NewCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	opts.Cache = cache
	return newTestScheduler(t, opts)
}

// TestJournalTerminalJobSurvivesRestart: a finished job is tracked by a
// restarted scheduler without resubmission, served byte-identically from
// the result cache.
func TestJournalTerminalJobSurvivesRestart(t *testing.T) {
	swapRunSpec(t, echoRunSpec)
	dir := t.TempDir()
	spec := fuzzSpec(7)

	cache1, err := NewCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := NewScheduler(Options{Workers: 1, Cache: cache1})
	if err != nil {
		t.Fatal(err)
	}
	view, _, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	final, err := s1.Wait(ctx, view.ID)
	if err != nil || final.Status != StatusDone {
		t.Fatalf("first life: %+v, %v", final, err)
	}
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// The journal record is on disk alongside the result.
	if _, err := os.Stat(filepath.Join(dir, view.ID+".job.json")); err != nil {
		t.Fatalf("journal record missing: %v", err)
	}

	s2 := newDirScheduler(t, dir, Options{Workers: 1})
	// No resubmission: GET alone finds the job.
	revived, ok := s2.Get(view.ID)
	if !ok {
		t.Fatal("restarted scheduler does not track the journaled job")
	}
	if revived.Status != StatusDone || !revived.Cached {
		t.Fatalf("revived = status %s cached %v, want done/cached", revived.Status, revived.Cached)
	}
	if !bytes.Equal(revived.Result, final.Result) {
		t.Fatalf("replayed result differs:\n  was %s\n  now %s", final.Result, revived.Result)
	}
}

// TestJournalReplayReenqueuesEveryKind: queued and running records of
// every job kind — report, sweep, explore, and an in-flight campaign
// round — are re-enqueued at boot and run to completion.
func TestJournalReplayReenqueuesEveryKind(t *testing.T) {
	swapRunSpec(t, echoRunSpec)
	dir := t.TempDir()
	cache, err := NewCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}

	specs := []*Spec{
		{Kind: KindReport, Report: &ReportSpec{Quick: true, Experiments: []string{"E1"}}},
		{Kind: KindSweep, Sweep: &SweepSpec{Type: "queue", MaxN: 4}},
		fuzzSpec(11),
		campaignRoundSpec(), // the in-flight campaign round
	}
	statuses := []Status{StatusQueued, StatusRunning, StatusQueued, StatusRunning}
	created := time.Now().Add(-time.Minute)
	var ids []string
	for i, spec := range specs {
		id, err := spec.ID()
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		ids = append(ids, id)
		rec := JobRecord{
			ID:      id,
			Spec:    spec,
			Status:  statuses[i],
			Created: created.Add(time.Duration(i) * time.Second),
		}
		data, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		if err := cache.PutJobRecord(id, data); err != nil {
			t.Fatal(err)
		}
	}

	// Replay must bypass tenant caps: work the previous life accepted is
	// never rejected, even by a registry that would cap new submissions
	// below the replayed backlog.
	reg, err := tenant.New(tenant.Config{
		Tenants:        []tenant.Tenant{{Name: tenant.DefaultName, Key: "kd", Limits: tenant.Limits{MaxQueued: 1}}},
		AllowAnonymous: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := newTestScheduler(t, Options{Workers: 2, Cache: cache, Tenants: reg})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i, id := range ids {
		final, err := s.Wait(ctx, id)
		if err != nil || final.Status != StatusDone {
			t.Fatalf("replayed %s job %d ended %+v, %v", specs[i].Kind, i, final, err)
		}
		want, _ := echoRunSpec(ctx, specs[i], nil, 0)
		if !bytes.Equal(final.Result, want) {
			t.Fatalf("replayed %s result = %s, want %s", specs[i].Kind, final.Result, want)
		}
	}
}

// TestJournalTombstoneSurvivesRestart: DELETE /v1/jobs is durable — an
// explicitly canceled job stays canceled after a restart instead of being
// re-enqueued, whether it was queued or running when canceled.
func TestJournalTombstoneSurvivesRestart(t *testing.T) {
	runningStarted := make(chan struct{})
	release := make(chan struct{})
	swapRunSpec(t, func(ctx context.Context, spec *Spec, p *Progress, parallel int) ([]byte, error) {
		close(runningStarted)
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, ctx.Err()
	})
	dir := t.TempDir()
	cache1, err := NewCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := NewScheduler(Options{Workers: 1, Cache: cache1})
	if err != nil {
		t.Fatal(err)
	}
	runningView, _, err := s1.Submit(fuzzSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	<-runningStarted
	queuedView, _, err := s1.Submit(fuzzSpec(2))
	if err != nil {
		t.Fatal(err)
	}

	// Cancel both: one mid-run, one while queued.
	if !s1.Cancel(runningView.ID) || !s1.Cancel(queuedView.ID) {
		t.Fatal("cancel failed")
	}
	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if final, err := s1.Wait(ctx, runningView.ID); err != nil || final.Status != StatusCanceled {
		t.Fatalf("running job after cancel: %+v, %v", final, err)
	}
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// The restarted scheduler would happily run these specs (the executor
	// below completes instantly) — but the tombstones must keep them
	// canceled.
	swapRunSpec(t, echoRunSpec)
	s2 := newDirScheduler(t, dir, Options{Workers: 1})
	for _, id := range []string{runningView.ID, queuedView.ID} {
		view, ok := s2.Get(id)
		if !ok {
			t.Fatalf("job %s not tracked after restart", id)
		}
		if view.Status != StatusCanceled {
			t.Fatalf("tombstoned job %s replayed as %s, want canceled", id, view.Status)
		}
	}
	// And they stay canceled: nothing runs them later.
	time.Sleep(20 * time.Millisecond)
	if view, _ := s2.Get(runningView.ID); view.Status != StatusCanceled {
		t.Fatalf("tombstoned job was resurrected as %s", view.Status)
	}
}

// TestJournalDrainCancelResumesAfterRestart: a job canceled only by
// graceful shutdown (not by the user) is journaled back as queued and
// completes in the next life.
func TestJournalDrainCancelResumesAfterRestart(t *testing.T) {
	started := make(chan struct{})
	swapRunSpec(t, func(ctx context.Context, spec *Spec, p *Progress, parallel int) ([]byte, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	dir := t.TempDir()
	cache1, err := NewCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := NewScheduler(Options{Workers: 1, Cache: cache1})
	if err != nil {
		t.Fatal(err)
	}
	view, _, err := s1.Submit(fuzzSpec(42))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	swapRunSpec(t, echoRunSpec)
	s2 := newDirScheduler(t, dir, Options{Workers: 1})
	final, err := s2.Wait(ctx, view.ID)
	if err != nil || final.Status != StatusDone {
		t.Fatalf("drained job did not resume: %+v, %v", final, err)
	}
	want, _ := echoRunSpec(ctx, fuzzSpec(42), nil, 0)
	if !bytes.Equal(final.Result, want) {
		t.Fatalf("resumed result = %s, want %s", final.Result, want)
	}
}

// TestJournalDoneRecordWithMissingResultRecomputes: a "done" record whose
// result bytes were wiped by hand is re-enqueued, and determinism yields
// the identical bytes again.
func TestJournalDoneRecordWithMissingResultRecomputes(t *testing.T) {
	swapRunSpec(t, echoRunSpec)
	dir := t.TempDir()
	cache, err := NewCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := fuzzSpec(5)
	id, err := spec.ID()
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	rec := JobRecord{ID: id, Spec: spec, Status: StatusDone, Created: now, Started: &now, Finished: &now}
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := cache.PutJobRecord(id, data); err != nil {
		t.Fatal(err)
	}
	// No cache.Put(id, ...): the result bytes are "gone".

	s := newTestScheduler(t, Options{Workers: 1, Cache: cache})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	final, err := s.Wait(ctx, id)
	if err != nil || final.Status != StatusDone {
		t.Fatalf("recompute: %+v, %v", final, err)
	}
	want, _ := echoRunSpec(ctx, spec, nil, 0)
	if !bytes.Equal(final.Result, want) {
		t.Fatalf("recomputed result = %s, want %s", final.Result, want)
	}
}

// TestJournalCorruptRecordSkipped: one undecodable journal file must not
// keep the scheduler from booting or from replaying its valid neighbors.
func TestJournalCorruptRecordSkipped(t *testing.T) {
	swapRunSpec(t, echoRunSpec)
	dir := t.TempDir()
	cache, err := NewCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	// A valid queued record...
	spec := fuzzSpec(9)
	id, err := spec.ID()
	if err != nil {
		t.Fatal(err)
	}
	rec := JobRecord{ID: id, Spec: spec, Status: StatusQueued, Created: time.Now()}
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := cache.PutJobRecord(id, data); err != nil {
		t.Fatal(err)
	}
	// ...next to garbage under a plausible ID, and a record whose ID field
	// disagrees with its filename.
	garbageID := strings.Repeat("ab", 32)
	if err := os.WriteFile(filepath.Join(dir, garbageID+".job.json"), []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	mismatchID := strings.Repeat("cd", 32)
	if err := os.WriteFile(filepath.Join(dir, mismatchID+".job.json"),
		[]byte(`{"id":"other","spec":{"kind":"explore","explore":{"mode":"fuzz"}},"status":"queued","created":"2026-01-01T00:00:00Z"}`), 0o644); err != nil {
		t.Fatal(err)
	}

	s := newDirScheduler(t, dir, Options{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	final, err := s.Wait(ctx, id)
	if err != nil || final.Status != StatusDone {
		t.Fatalf("valid record did not replay: %+v, %v", final, err)
	}
	if _, ok := s.Get(garbageID); ok {
		t.Fatal("garbage record produced a job")
	}
	if _, ok := s.Get(mismatchID); ok {
		t.Fatal("ID-mismatched record produced a job")
	}
}

// TestJournalRecordPrunedWithJob: pruning an old terminal job also
// deletes its journal record, so the journal does not grow forever under
// campaign churn.
func TestJournalRecordPrunedWithJob(t *testing.T) {
	swapRunSpec(t, echoRunSpec)
	dir := t.TempDir()
	s := newDirScheduler(t, dir, Options{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Overflow maxTrackedJobs so the oldest terminal jobs get pruned.
	var firstID string
	for seed := int64(0); seed < maxTrackedJobs+8; seed++ {
		view, _, err := s.Submit(fuzzSpec(seed))
		if err != nil {
			t.Fatal(err)
		}
		if seed == 0 {
			firstID = view.ID
		}
		if _, err := s.Wait(ctx, view.ID); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.Get(firstID); ok {
		t.Fatal("oldest job was not pruned")
	}
	if _, ok := s.Cache().GetJobRecord(firstID); ok {
		t.Fatal("pruned job's journal record survived")
	}
	// Its result is still content-addressed-cached, though.
	if _, ok := s.Cache().Get(firstID); !ok {
		t.Fatal("pruning removed the cached result, not just the record")
	}
}
