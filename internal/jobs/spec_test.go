package jobs

import (
	"encoding/json"
	"strings"
	"testing"
)

// mustID hashes the spec or fails the test.
func mustID(t *testing.T, s *Spec) string {
	t.Helper()
	id, err := s.ID()
	if err != nil {
		t.Fatalf("ID(%+v): %v", s, err)
	}
	return id
}

func TestSpecIDDeterministic(t *testing.T) {
	mk := func() *Spec {
		return &Spec{Kind: KindExplore, Explore: &ExploreSpec{Mode: "fuzz", Samples: 50}}
	}
	a, b := mustID(t, mk()), mustID(t, mk())
	if a != b {
		t.Fatalf("same spec hashed differently: %s vs %s", a, b)
	}
	if len(a) != 64 || strings.ToLower(a) != a {
		t.Fatalf("ID %q is not lowercase sha256 hex", a)
	}
}

func TestSpecIDDefaultsInvariant(t *testing.T) {
	cases := []struct {
		name           string
		sparse, filled *Spec
	}{
		{
			"explore fuzz defaults",
			&Spec{Kind: KindExplore, Explore: &ExploreSpec{}},
			&Spec{Kind: KindExplore, Explore: &ExploreSpec{
				Alg: "group-update", Object: "fetch-increment",
				N: 2, OpsPerProc: 1, Mode: "fuzz", Samples: 200, Seed: 1,
			}},
		},
		{
			"explore nil sub-spec",
			&Spec{Kind: KindExplore},
			&Spec{Kind: KindExplore, Explore: &ExploreSpec{}},
		},
		{
			// Exhaustive search ignores sampling knobs entirely.
			"explore exhaustive zeroes sampling",
			&Spec{Kind: KindExplore, Explore: &ExploreSpec{Mode: "exhaustive"}},
			&Spec{Kind: KindExplore, Explore: &ExploreSpec{Mode: "exhaustive", Samples: 999, Seed: 7}},
		},
		{
			"report all experiments == none",
			&Spec{Kind: KindReport, Report: &ReportSpec{}},
			&Spec{Kind: KindReport, Report: &ReportSpec{
				Experiments: []string{"E1", "E2", "E3", "E4/E5", "E6", "E7/E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15"},
			}},
		},
		{
			"report subset order-insensitive",
			&Spec{Kind: KindReport, Report: &ReportSpec{Experiments: []string{"E9", "E1"}}},
			&Spec{Kind: KindReport, Report: &ReportSpec{Experiments: []string{"E1", "E9"}}},
		},
		{
			"sweep default maxN",
			&Spec{Kind: KindSweep, Sweep: &SweepSpec{Type: "queue"}},
			&Spec{Kind: KindSweep, Sweep: &SweepSpec{Type: "queue", MaxN: 64}},
		},
		{
			"sweep full construction set == none",
			&Spec{Kind: KindSweep, Sweep: &SweepSpec{Type: "stack"}},
			&Spec{Kind: KindSweep, Sweep: &SweepSpec{
				Type: "stack", Constructions: []string{"central", "group-update", "herlihy"},
			}},
		},
		{
			"sweep construction order-insensitive",
			&Spec{Kind: KindSweep, Sweep: &SweepSpec{Type: "queue", Constructions: []string{"central", "herlihy"}}},
			&Spec{Kind: KindSweep, Sweep: &SweepSpec{Type: "queue", Constructions: []string{"herlihy", "central"}}},
		},
		{
			// Zoo algorithms default Object to their own workload, and the
			// backend's alias spellings collapse to one ID ("" == native).
			"explore zoo defaults and backend aliases",
			&Spec{Kind: KindExplore, Explore: &ExploreSpec{Alg: "tas-tournament", N: 3, LLSC: "blelloch-wei"}},
			&Spec{Kind: KindExplore, Explore: &ExploreSpec{
				Alg: "tas-tournament", Object: "tas",
				N: 3, OpsPerProc: 1, Mode: "fuzz", Samples: 200, Seed: 1, LLSC: "bw",
			}},
		},
		{
			"explore native backend == empty",
			&Spec{Kind: KindExplore, Explore: &ExploreSpec{Alg: "tas-tv", LLSC: "native"}},
			&Spec{Kind: KindExplore, Explore: &ExploreSpec{Alg: "tas-tv"}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, b := mustID(t, tc.sparse), mustID(t, tc.filled)
			if a != b {
				t.Fatalf("equivalent specs hashed differently:\n  sparse: %s\n  filled: %s", a, b)
			}
		})
	}
}

func TestSpecIDNormalizeIdempotent(t *testing.T) {
	s := &Spec{Kind: KindExplore, Explore: &ExploreSpec{Mode: "fuzz"}}
	first := mustID(t, s)
	// Hashing again after normalization must not drift.
	second := mustID(t, s)
	if first != second {
		t.Fatalf("ID not idempotent: %s vs %s", first, second)
	}
}

func TestSpecIDDistinguishes(t *testing.T) {
	specs := []*Spec{
		{Kind: KindReport},
		{Kind: KindReport, Report: &ReportSpec{Quick: true}},
		{Kind: KindReport, Report: &ReportSpec{Experiments: []string{"E1"}}},
		{Kind: KindSweep, Sweep: &SweepSpec{Type: "queue"}},
		{Kind: KindSweep, Sweep: &SweepSpec{Type: "stack"}},
		{Kind: KindSweep, Sweep: &SweepSpec{Type: "queue", MaxN: 8}},
		{Kind: KindSweep, Sweep: &SweepSpec{Type: "queue", Constructions: []string{"central"}}},
		{Kind: KindExplore},
		{Kind: KindExplore, Explore: &ExploreSpec{Mode: "exhaustive"}},
		{Kind: KindExplore, Explore: &ExploreSpec{N: 3}},
		{Kind: KindExplore, Explore: &ExploreSpec{Samples: 500}},
		{Kind: KindExplore, Explore: &ExploreSpec{Seed: 2}},
	}
	seen := make(map[string]int)
	for i, s := range specs {
		id := mustID(t, s)
		if prev, dup := seen[id]; dup {
			t.Fatalf("specs %d and %d collided on %s", prev, i, id)
		}
		seen[id] = i
	}
}

func TestSpecIDJSONFieldOrderInvariant(t *testing.T) {
	// Two wire encodings of one spec, keys in different orders.
	a := `{"kind":"explore","explore":{"n":3,"alg":"central","mode":"fuzz"}}`
	b := `{"explore":{"mode":"fuzz","alg":"central","n":3},"kind":"explore"}`
	var sa, sb Spec
	if err := json.Unmarshal([]byte(a), &sa); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(b), &sb); err != nil {
		t.Fatal(err)
	}
	if ia, ib := mustID(t, &sa), mustID(t, &sb); ia != ib {
		t.Fatalf("field order changed the hash: %s vs %s", ia, ib)
	}
}

func TestSpecValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		spec *Spec
		want string
	}{
		{"missing kind", &Spec{}, "missing kind"},
		{"unknown kind", &Spec{Kind: "bogus"}, "unknown kind"},
		{"two sub-specs", &Spec{Kind: KindReport, Report: &ReportSpec{}, Sweep: &SweepSpec{Type: "queue"}}, "exactly"},
		{"wrong sub-spec", &Spec{Kind: KindSweep, Report: &ReportSpec{}}, "exactly"},
		{"unknown experiment", &Spec{Kind: KindReport, Report: &ReportSpec{Experiments: []string{"E99"}}}, "unknown name"},
		{"duplicate experiment", &Spec{Kind: KindReport, Report: &ReportSpec{Experiments: []string{"E1", "E1"}}}, "duplicate"},
		{"unknown sweep type", &Spec{Kind: KindSweep, Sweep: &SweepSpec{Type: "tree"}}, "tree"},
		{"missing sweep type", &Spec{Kind: KindSweep}, ""},
		{"unknown construction", &Spec{Kind: KindSweep, Sweep: &SweepSpec{Type: "queue", Constructions: []string{"magic"}}}, "magic"},
		{"sweep maxN too small", &Spec{Kind: KindSweep, Sweep: &SweepSpec{Type: "queue", MaxN: 1}}, "out of range"},
		{"sweep maxN too large", &Spec{Kind: KindSweep, Sweep: &SweepSpec{Type: "queue", MaxN: 1 << 21}}, "out of range"},
		{"explore unknown alg", &Spec{Kind: KindExplore, Explore: &ExploreSpec{Alg: "nope"}}, "nope"},
		{"explore unknown object", &Spec{Kind: KindExplore, Explore: &ExploreSpec{Object: "nope"}}, "nope"},
		{"explore n too large", &Spec{Kind: KindExplore, Explore: &ExploreSpec{N: 9}}, "out of range"},
		{"explore bad mode", &Spec{Kind: KindExplore, Explore: &ExploreSpec{Mode: "guess"}}, "mode"},
		{"explore samples too large", &Spec{Kind: KindExplore, Explore: &ExploreSpec{Samples: 2_000_000}}, "out of range"},
		{"explore negative budget", &Spec{Kind: KindExplore, Explore: &ExploreSpec{Budget: -1}}, "negative"},
		{"explore zoo wrong workload", &Spec{Kind: KindExplore, Explore: &ExploreSpec{Alg: "tas-tournament", Object: "fetch-increment"}}, "implements workload"},
		{"explore zoo multi-op", &Spec{Kind: KindExplore, Explore: &ExploreSpec{Alg: "tas-tournament", OpsPerProc: 2}}, "one-shot"},
		{"explore zoo beyond maxN", &Spec{Kind: KindExplore, Explore: &ExploreSpec{Alg: "tas-tv", N: 3}}, "at most"},
		{"explore bad backend", &Spec{Kind: KindExplore, Explore: &ExploreSpec{LLSC: "bogus"}}, "backend"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.spec.ID(); err == nil {
				t.Fatalf("ID accepted invalid spec %+v", tc.spec)
			} else if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
