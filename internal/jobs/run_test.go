package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// runNormalized normalizes, validates, and executes a spec directly.
func runNormalized(t *testing.T, spec *Spec, parallel int) []byte {
	t.Helper()
	if _, err := spec.ID(); err != nil {
		t.Fatal(err)
	}
	out, err := runSpec(context.Background(), spec, NewProgress(), parallel)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestRunSpecSweepParallelismIndependent(t *testing.T) {
	mk := func() *Spec {
		return &Spec{Kind: KindSweep, Sweep: &SweepSpec{
			Type: "queue", Constructions: []string{"central"}, MaxN: 8,
		}}
	}
	// The caching contract: the payload is a pure function of the spec, so
	// serial and parallel execution must serialize byte-identically.
	serial := runNormalized(t, mk(), 1)
	parallel := runNormalized(t, mk(), 4)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("sweep payload depends on parallelism:\n  serial:   %s\n  parallel: %s", serial, parallel)
	}

	var res SweepResult
	if err := json.Unmarshal(serial, &res); err != nil {
		t.Fatal(err)
	}
	if res.Type != "queue" {
		t.Fatalf("type = %q", res.Type)
	}
	if want := []int{2, 4, 8}; len(res.Ns) != len(want) {
		t.Fatalf("ns = %v, want %v", res.Ns, want)
	}
	if len(res.Constructions) != 1 || res.Constructions[0].Construction != "central" {
		t.Fatalf("constructions = %+v", res.Constructions)
	}
	cs := res.Constructions[0]
	if cs.Table == nil || len(cs.Table.Rows()) != 3 {
		t.Fatalf("table rows = %+v, want 3", cs.Table)
	}
	if len(cs.Results) != 3 {
		t.Fatalf("results = %+v, want 3 entries", cs.Results)
	}
}

func TestRunSpecReportSection(t *testing.T) {
	spec := &Spec{Kind: KindReport, Report: &ReportSpec{Experiments: []string{"E9"}, Quick: true}}
	out := runNormalized(t, spec, 2)
	var res ReportResult
	if err := json.Unmarshal(out, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Quick || len(res.Experiments) != 1 {
		t.Fatalf("result = %+v", res)
	}
	sec := res.Experiments[0]
	if sec.Name != "E9" {
		t.Fatalf("section name = %q", sec.Name)
	}
	if !strings.Contains(sec.Markdown, "E9") {
		t.Fatalf("markdown lacks the section heading:\n%s", sec.Markdown)
	}
	if len(sec.Tables) == 0 {
		t.Fatal("section captured no tables")
	}
}

func TestRunSpecExploreFuzz(t *testing.T) {
	mk := func() *Spec {
		return &Spec{Kind: KindExplore, Explore: &ExploreSpec{
			Mode: "fuzz", Samples: 50, Seed: 1,
		}}
	}
	a := runNormalized(t, mk(), 1)
	b := runNormalized(t, mk(), 4)
	if !bytes.Equal(a, b) {
		t.Fatalf("fuzz payload depends on parallelism:\n  a: %s\n  b: %s", a, b)
	}
	var res ExploreResult
	if err := json.Unmarshal(a, &res); err != nil {
		t.Fatal(err)
	}
	if res.Mode != "fuzz" || res.Samples != 50 {
		t.Fatalf("result = %+v", res)
	}
	if res.Failures == nil {
		t.Fatal("failures must serialize as [], not null")
	}
	if !bytes.Contains(a, []byte(`"failures":[]`)) {
		t.Fatalf("payload lacks an explicit empty failures array: %s", a)
	}
}

func TestRunSpecProgressPhases(t *testing.T) {
	spec := &Spec{Kind: KindSweep, Sweep: &SweepSpec{Type: "queue", MaxN: 4}}
	if _, err := spec.ID(); err != nil {
		t.Fatal(err)
	}
	p := NewProgress()
	if _, err := runSpec(context.Background(), spec, p, 2); err != nil {
		t.Fatal(err)
	}
	p.Close()
	// One phase per construction, plus the initial "queued".
	var phases []string
	for _, d := range p.Durations() {
		phases = append(phases, d.Phase)
	}
	want := append([]string{"queued"}, "group-update", "herlihy", "central")
	if strings.Join(phases, ",") != strings.Join(want, ",") {
		t.Fatalf("phases = %v, want %v", phases, want)
	}
}
