package jobs

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"jayanti98/internal/campaign"
)

func campaignRoundSpec() *Spec {
	return &Spec{Kind: KindCampaignRound, CampaignRound: &campaign.RoundSpec{
		Campaign: campaign.Spec{
			Alg: "group-update", Object: "fetch-increment", N: 2, BatchSize: 8, MaxCorpus: 8,
		},
	}}
}

func TestCampaignRoundSpecIDAndValidate(t *testing.T) {
	a := campaignRoundSpec()
	idA, err := a.ID()
	if err != nil {
		t.Fatal(err)
	}
	b := campaignRoundSpec()
	idB, err := b.ID()
	if err != nil {
		t.Fatal(err)
	}
	if idA != idB {
		t.Fatal("identical round specs hash differently")
	}
	c := campaignRoundSpec()
	c.CampaignRound.Round = 1
	idC, err := c.ID()
	if err != nil {
		t.Fatal(err)
	}
	if idC == idA {
		t.Fatal("different rounds share a job ID — round caching would alias")
	}
	d := campaignRoundSpec()
	d.CampaignRound.Corpus = [][]int{{0, 1}}
	idD, err := d.ID()
	if err != nil {
		t.Fatal(err)
	}
	if idD == idA {
		t.Fatal("different corpora share a job ID")
	}

	bad := campaignRoundSpec()
	bad.CampaignRound.Corpus = [][]int{{0, 7}} // pid 7 outside [0, 2)
	if _, err := bad.ID(); err == nil {
		t.Fatal("corpus with out-of-range pid validated")
	}
	neg := campaignRoundSpec()
	neg.CampaignRound.Round = -1
	if _, err := neg.ID(); err == nil {
		t.Fatal("negative round validated")
	}
	empty := &Spec{Kind: KindCampaignRound}
	empty.Normalize()
	if empty.CampaignRound == nil {
		t.Fatal("Normalize did not default the round spec")
	}
}

// TestCampaignRoundJobMatchesDirectExecution: running a round as a job
// yields the same result bytes as campaign.ExecuteRound — which is what
// makes round jobs cacheable and distributable.
func TestCampaignRoundJobMatchesDirectExecution(t *testing.T) {
	s := newTestScheduler(t, Options{Workers: 1})
	spec := campaignRoundSpec()
	view, created, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Fatal("fresh round spec deduped")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	final, err := s.Wait(ctx, view.ID)
	if err != nil || final.Status != StatusDone {
		t.Fatalf("job: %v %+v", err, final)
	}
	var viaJob campaign.RoundResult
	if err := json.Unmarshal(final.Result, &viaJob); err != nil {
		t.Fatal(err)
	}
	directSpec := campaignRoundSpec()
	directSpec.Normalize()
	direct, err := campaign.ExecuteRound(context.Background(), directSpec.CampaignRound, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&viaJob, direct) {
		t.Fatal("job-run round differs from direct execution")
	}
}

func TestRoundExecutorRunsAndDecodes(t *testing.T) {
	s := newTestScheduler(t, Options{Workers: 1})
	ex := NewRoundExecutor(s)
	rs := campaignRoundSpec().CampaignRound
	rs.Campaign.Normalize()
	rr, err := ex.ExecuteRound(context.Background(), rs)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Round != 0 || len(rr.Results) != rs.Campaign.BatchSize {
		t.Fatalf("round result: round=%d results=%d", rr.Round, len(rr.Results))
	}
	// A second execution is served from the result cache, byte-identically.
	rr2, err := ex.ExecuteRound(context.Background(), rs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rr, rr2) {
		t.Fatal("cached round differs from first execution")
	}
}

func TestRoundExecutorCancellation(t *testing.T) {
	s := newTestScheduler(t, Options{Workers: 1})
	ex := NewRoundExecutor(s)
	rs := campaignRoundSpec().CampaignRound
	rs.Campaign.Normalize()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ex.ExecuteRound(ctx, rs); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled round: %v, want context.Canceled", err)
	}
}

func checkpointID(seed byte) string {
	sum := sha256.Sum256([]byte{seed})
	return hex.EncodeToString(sum[:])
}

func TestCacheCheckpoints(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	id := checkpointID(1)
	if _, ok := c.GetCheckpoint(id); ok {
		t.Fatal("phantom checkpoint")
	}
	if err := c.PutCheckpoint(id, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// Overwrite in place — the deliberate departure from write-once results.
	if err := c.PutCheckpoint(id, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, ok := c.GetCheckpoint(id); !ok || string(got) != "v2" {
		t.Fatalf("checkpoint = %q, %v", got, ok)
	}
	if err := c.PutCheckpoint("not-a-hash", []byte("x")); err == nil {
		t.Fatal("bad checkpoint id accepted")
	}

	// Checkpoints survive a "restart": a fresh cache over the same dir.
	id2 := checkpointID(2)
	if err := c.PutCheckpoint(id2, []byte("other")); err != nil {
		t.Fatal(err)
	}
	reborn, err := NewCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := reborn.GetCheckpoint(id); !ok || string(got) != "v2" {
		t.Fatalf("restarted checkpoint = %q, %v", got, ok)
	}
	want := []string{id, id2}
	if id2 < id {
		want = []string{id2, id}
	}
	if got := reborn.Checkpoints(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Checkpoints() = %v, want %v", got, want)
	}

	// Checkpoints are exempt from the LRU: filling the result cache far
	// beyond capacity must not evict them from a memory-only cache.
	mem, err := NewCache(2, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.PutCheckpoint(id, []byte("mem")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := mem.Put(checkpointID(byte(100+i)), []byte("r")); err != nil {
			t.Fatal(err)
		}
	}
	if got, ok := mem.GetCheckpoint(id); !ok || string(got) != "mem" {
		t.Fatal("LRU pressure evicted a checkpoint")
	}
	if got := mem.Checkpoints(); !reflect.DeepEqual(got, []string{id}) {
		t.Fatalf("memory-only Checkpoints() = %v", got)
	}
}

// TestSchedulerPrunesTerminalJobs: the job map stays bounded under a
// long-lived campaign's endless stream of round jobs; results stay served
// from the cache after the tracking entry is pruned.
func TestSchedulerPrunesTerminalJobs(t *testing.T) {
	// The cache must outlive the job map here: the point is that pruning a
	// tracked job loses nothing because the result survives in the cache.
	bigCache, err := NewCache(maxTrackedJobs+128, "")
	if err != nil {
		t.Fatal(err)
	}
	s := newTestScheduler(t, Options{Workers: 1, Cache: bigCache})
	swapRunSpec(t, func(ctx context.Context, spec *Spec, p *Progress, parallel int) ([]byte, error) {
		return []byte(`{"ok":true}`), nil
	})
	var firstID string
	for i := 0; i < maxTrackedJobs+50; i++ {
		spec := quickExploreSpec()
		spec.Explore.Budget = 100 + i // distinct content hash per job
		view, _, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			firstID = view.ID
		}
		if _, err := s.Wait(context.Background(), view.ID); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(s.List()); n > maxTrackedJobs {
		t.Fatalf("job map grew to %d, bound is %d", n, maxTrackedJobs)
	}
	if _, ok := s.Get(firstID); ok {
		t.Fatal("oldest terminal job still tracked after overflow")
	}
	// The pruned job's result still serves from the cache: resubmitting the
	// same spec answers done immediately with the cached bytes.
	spec := quickExploreSpec()
	spec.Explore.Budget = 100
	view, created, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if created {
		t.Fatal("resubmission of a cached spec created a fresh run")
	}
	if view.Status != StatusDone || !strings.Contains(string(view.Result), `"ok":true`) {
		t.Fatalf("cached view = %+v", view)
	}
}
