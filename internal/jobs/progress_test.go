package jobs

import (
	"testing"
	"time"
)

func TestProgressMonotonicSeqAndClampedDone(t *testing.T) {
	p := NewProgress()
	if got := p.Snapshot(); got.Phase != "queued" || got.Seq != 1 {
		t.Fatalf("initial snapshot = %+v, want phase queued seq 1", got)
	}
	p.Set("work", 3, 10)
	p.Set("work", 1, 10) // regression: clamped, not emitted as-is
	if got := p.Snapshot(); got.Done != 3 {
		t.Fatalf("done after regression = %d, want clamped 3", got.Done)
	}
	p.Set("work", 7, 10)
	p.Set("verify", 0, 4) // phase change resets the counter
	got := p.Snapshot()
	if got.Phase != "verify" || got.Done != 0 || got.Total != 4 {
		t.Fatalf("after phase change: %+v", got)
	}
	if got.Seq != 5 {
		t.Fatalf("seq = %d, want 5 (strictly increasing per Set)", got.Seq)
	}
}

func TestProgressSubscribeAndClose(t *testing.T) {
	p := NewProgress()
	ch, cancel := p.Subscribe()
	defer cancel()
	p.Set("work", 1, 2)
	p.Set("work", 2, 2)
	ev := <-ch
	if ev.Phase != "work" || ev.Done != 1 {
		t.Fatalf("first event = %+v", ev)
	}
	ev = <-ch
	if ev.Done != 2 {
		t.Fatalf("second event = %+v", ev)
	}
	p.Close()
	if _, open := <-ch; open {
		t.Fatal("channel not closed on Close")
	}
	// Set after Close is a no-op; Close is idempotent.
	p.Set("late", 1, 1)
	p.Close()
	if got := p.Snapshot(); got.Phase != "work" {
		t.Fatalf("Set after Close mutated state: %+v", got)
	}
}

func TestProgressSubscribeAfterClose(t *testing.T) {
	p := NewProgress()
	p.Close()
	ch, cancel := p.Subscribe()
	defer cancel()
	if _, open := <-ch; open {
		t.Fatal("subscription to a closed progress should be born closed")
	}
}

func TestProgressSubscriberBackpressureDrops(t *testing.T) {
	p := NewProgress()
	_, cancel := p.Subscribe()
	defer cancel()
	// Overflow the 64-slot buffer without draining; Set must never block.
	done := make(chan struct{})
	go func() {
		for i := 0; i < 200; i++ {
			p.Set("work", i, 200)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Set blocked on a slow subscriber")
	}
	// The final state is still available via Snapshot.
	if got := p.Snapshot(); got.Done != 199 {
		t.Fatalf("snapshot done = %d, want 199", got.Done)
	}
}

func TestProgressDurations(t *testing.T) {
	p := NewProgress()
	// Drive the clock by hand through the test seam.
	now := time.Unix(0, 0)
	p.now = func() time.Time { return now }
	p.phaseStart = now

	now = now.Add(5 * time.Millisecond)
	p.Set("build", 0, 1) // closes "queued" after 5ms
	now = now.Add(20 * time.Millisecond)
	p.Set("verify", 0, 1) // closes "build" after 20ms
	now = now.Add(7 * time.Millisecond)
	p.Close() // closes "verify" after 7ms

	got := p.Durations()
	want := []PhaseDuration{
		{"queued", 5 * time.Millisecond},
		{"build", 20 * time.Millisecond},
		{"verify", 7 * time.Millisecond},
	}
	if len(got) != len(want) {
		t.Fatalf("durations = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("duration[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}
