package jobs

import (
	"bytes"
	"context"
	"errors"
	"testing"
)

// fakeRunner scripts the distributed runner's answer.
type fakeRunner struct {
	result  []byte
	handled bool
	err     error
	calls   int
}

func (f *fakeRunner) Run(ctx context.Context, id string, spec *Spec, p *Progress) ([]byte, bool, error) {
	f.calls++
	return f.result, f.handled, f.err
}

// TestSchedulerOffersJobsToDistRunner: a handling runner's bytes are the
// job result; the local executor never runs.
func TestSchedulerOffersJobsToDistRunner(t *testing.T) {
	swapRunSpec(t, func(ctx context.Context, spec *Spec, p *Progress, parallel int) ([]byte, error) {
		t.Error("local executor ran despite the dist runner handling the job")
		return nil, errors.New("unreachable")
	})
	distributed := []byte(`{"from":"fleet"}`)
	fr := &fakeRunner{result: distributed, handled: true}
	s := newTestScheduler(t, Options{Workers: 1, Dist: fr})

	view, _, err := s.Submit(&Spec{Kind: KindExplore, Explore: &ExploreSpec{Mode: "fuzz"}})
	if err != nil {
		t.Fatal(err)
	}
	final := waitStatus(t, s, view.ID, StatusDone)
	if !bytes.Equal(final.Result, distributed) {
		t.Fatalf("result = %s, want the dist runner's payload", final.Result)
	}
	if fr.calls != 1 {
		t.Fatalf("dist runner consulted %d times, want 1", fr.calls)
	}
}

// TestSchedulerFallsBackWhenDistDeclines: handled=false routes the job to
// the local executor.
func TestSchedulerFallsBackWhenDistDeclines(t *testing.T) {
	local := []byte(`{"from":"local"}`)
	swapRunSpec(t, func(ctx context.Context, spec *Spec, p *Progress, parallel int) ([]byte, error) {
		return local, nil
	})
	fr := &fakeRunner{handled: false}
	s := newTestScheduler(t, Options{Workers: 1, Dist: fr})

	view, _, err := s.Submit(&Spec{Kind: KindExplore, Explore: &ExploreSpec{Mode: "fuzz"}})
	if err != nil {
		t.Fatal(err)
	}
	final := waitStatus(t, s, view.ID, StatusDone)
	if !bytes.Equal(final.Result, local) {
		t.Fatalf("result = %s, want the local payload", final.Result)
	}
	if fr.calls != 1 {
		t.Fatalf("dist runner consulted %d times, want 1", fr.calls)
	}
}

// TestSchedulerPropagatesDistError: a handling runner's error fails the
// job like a local error would.
func TestSchedulerPropagatesDistError(t *testing.T) {
	swapRunSpec(t, func(ctx context.Context, spec *Spec, p *Progress, parallel int) ([]byte, error) {
		t.Error("local executor ran for a handled-with-error job")
		return nil, nil
	})
	fr := &fakeRunner{handled: true, err: errors.New("fleet exploded")}
	s := newTestScheduler(t, Options{Workers: 1, Dist: fr})

	view, _, err := s.Submit(&Spec{Kind: KindExplore, Explore: &ExploreSpec{Mode: "fuzz"}})
	if err != nil {
		t.Fatal(err)
	}
	final := waitStatus(t, s, view.ID, StatusFailed)
	if final.Error == "" {
		t.Fatal("failed job carries no error")
	}
}
