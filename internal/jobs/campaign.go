package jobs

import (
	"context"
	"encoding/json"
	"fmt"

	"jayanti98/internal/campaign"
)

// roundExecutor adapts the scheduler into a campaign.Executor: each round
// becomes one KindCampaignRound job, which gets the whole job pipeline for
// free — singleflight dedup, the content-addressed result cache (a
// re-executed round is served byte-identically without re-running
// anything), and, when the scheduler has a dist runner, fan-out over the
// lbworker fleet via the shard-lease protocol.
type roundExecutor struct {
	s *Scheduler
}

// NewRoundExecutor builds the scheduler-backed campaign executor.
func NewRoundExecutor(s *Scheduler) campaign.Executor {
	return &roundExecutor{s: s}
}

// ExecuteRound implements campaign.Executor: submit, wait, decode. A ctx
// cancellation cancels the underlying job (a round abandoned by its
// campaign must not keep burning the worker pool) and surfaces ctx's
// error, which the campaign manager reads as "stopped", not "failed".
func (re *roundExecutor) ExecuteRound(ctx context.Context, rs *campaign.RoundSpec) (*campaign.RoundResult, error) {
	spec := &Spec{Kind: KindCampaignRound, CampaignRound: rs}
	view, _, err := re.s.Submit(spec)
	if err != nil {
		return nil, fmt.Errorf("jobs: campaign round submit: %w", err)
	}
	final, err := re.s.Wait(ctx, view.ID)
	if err != nil {
		re.s.Cancel(view.ID)
		return nil, err
	}
	switch final.Status {
	case StatusDone:
		var rr campaign.RoundResult
		if err := json.Unmarshal(final.Result, &rr); err != nil {
			return nil, fmt.Errorf("jobs: campaign round result: %w", err)
		}
		return &rr, nil
	case StatusCanceled:
		// The job unwound under a cancelled context (scheduler shutdown,
		// deadline). Report it as a cancellation so the campaign loop
		// stops instead of marking the campaign failed.
		return nil, fmt.Errorf("jobs: campaign round job: %w", context.Canceled)
	default:
		return nil, fmt.Errorf("jobs: campaign round job failed: %s", final.Error)
	}
}
