// Package jobs is the experiment job service: typed, content-addressed
// job specs for the repository's workloads (lbreport experiments,
// universal-construction sweeps, schedule exploration), a
// bounded-concurrency scheduler that runs them over the deterministic
// sweep engine, and a content-addressed result cache.
//
// Identity and caching rest on one invariant inherited from the sweep
// engine's determinism contract: a job's result depends only on its
// normalized Spec — never on worker counts, goroutine scheduling, or wall
// clock. The job ID is therefore the SHA-256 of the Spec's canonical
// encoding, and a repeated Spec can be served from cache byte-identically.
// Execution knobs (sweep parallelism, deadlines) deliberately live in the
// scheduler, not the Spec: they cannot change a result, so they must not
// fragment the cache.
package jobs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"slices"
	"sort"

	"jayanti98/internal/algos"
	"jayanti98/internal/campaign"
	"jayanti98/internal/experiments"
	"jayanti98/internal/explore"
	"jayanti98/internal/llsc"
	"jayanti98/internal/lowerbound"
	"jayanti98/internal/universal"
)

// Spec is the envelope submitted to the service: a kind plus exactly one
// kind-specific spec. The zero fields of the active sub-spec are filled
// with defaults by Normalize before hashing, so semantically identical
// submissions share one job ID.
type Spec struct {
	// Kind selects the workload: "report", "sweep", "explore", or
	// "campaign-round".
	Kind string `json:"kind"`

	Report  *ReportSpec  `json:"report,omitempty"`
	Sweep   *SweepSpec   `json:"sweep,omitempty"`
	Explore *ExploreSpec `json:"explore,omitempty"`
	// CampaignRound is one round of a coverage-guided campaign
	// (internal/campaign): the campaign manager submits these — one job
	// per round — so rounds ride the scheduler, the dist shard-lease
	// protocol, and the content-addressed cache like any other job. The
	// round spec carries the round-start corpus, so cached round results
	// and leased shards are both self-contained.
	CampaignRound *campaign.RoundSpec `json:"campaignRound,omitempty"`
}

// The job kinds.
const (
	KindReport        = "report"
	KindSweep         = "sweep"
	KindExplore       = "explore"
	KindCampaignRound = "campaign-round"
)

// ReportSpec runs a subset of the E1–E12 experiment report
// (internal/experiments) and returns each section's markdown plus its
// tables in structured form.
type ReportSpec struct {
	// Experiments selects a subset by name, in any order (empty: all).
	// Normalization sorts them into report order.
	Experiments []string `json:"experiments,omitempty"`
	// Quick shrinks the sweeps to smoke-run sizes.
	Quick bool `json:"quick,omitempty"`
}

// SweepSpec sweeps universal constructions over doubling process counts
// on one object workload (cmd/unisweep as a job).
type SweepSpec struct {
	// Type is the object workload: one of lowerbound.SweepTypes().
	Type string `json:"type"`
	// Constructions selects constructions by name (empty: all, in
	// universal.Names() order).
	Constructions []string `json:"constructions,omitempty"`
	// MaxN is the largest process count; the sweep doubles from 2.
	// Defaults to 64.
	MaxN int `json:"maxN,omitempty"`
}

// Ns returns the sweep's process counts: doubling from 2 up to MaxN.
// The slice is the coordinate axis shared by serial execution
// (runSweep), the distributed shard partitioner (internal/dist), and
// result assembly (BuildSweepResult); all three must agree on it.
func (s *SweepSpec) Ns() []int {
	var ns []int
	for n := 2; n <= s.MaxN; n *= 2 {
		ns = append(ns, n)
	}
	return ns
}

// ConstructionNames resolves the construction axis of the sweep: the
// selected names, or every registered construction (universal.Names()
// order) when the selection is empty. The spec must be normalized.
func (s *SweepSpec) ConstructionNames() []string {
	if len(s.Constructions) > 0 {
		return s.Constructions
	}
	return universal.Names()
}

// ExploreSpec searches the schedule space of one construction or zoo
// algorithm (cmd/explore as a job).
type ExploreSpec struct {
	// Alg is the system under test: a construction (universal.Names()) or
	// a zoo algorithm (algos.Names()). Defaults to "group-update".
	Alg string `json:"alg,omitempty"`
	// Object is the workload (explore.Workloads()). Defaults to
	// "fetch-increment" for constructions and to the algorithm's own
	// workload for zoo entries.
	Object string `json:"object,omitempty"`
	// N is the number of processes (default 2).
	N int `json:"n,omitempty"`
	// OpsPerProc is operations per process (default 1).
	OpsPerProc int `json:"opsPerProc,omitempty"`
	// Mode is "exhaustive" or "fuzz" (default "fuzz").
	Mode string `json:"mode,omitempty"`
	// Samples is the fuzz sample count (default 200; ignored for
	// exhaustive).
	Samples int `json:"samples,omitempty"`
	// Seed is the fuzz campaign base seed (default 1; ignored for
	// exhaustive).
	Seed int64 `json:"seed,omitempty"`
	// Budget bounds total steps (0: automatic).
	Budget int `json:"budget,omitempty"`
	// LLSC selects the shared-memory backend: "" or "native" (the
	// pset-based internal/llsc memory) or "bw" (the Blelloch–Wei backend,
	// internal/algos/bwllsc). Unlike explore.Config, "" here always means
	// native — a job's result must not depend on the server's LB_LLSC
	// environment.
	LLSC string `json:"llsc,omitempty"`
}

// Normalize fills defaults in place so that semantically identical specs
// produce identical canonical encodings. It is idempotent.
func (s *Spec) Normalize() {
	switch s.Kind {
	case KindReport:
		if s.Report == nil {
			s.Report = &ReportSpec{}
		}
		if sel, err := experiments.For(s.Report.Experiments); err == nil {
			if len(sel) == len(experiments.Names()) {
				// Selecting everything is the same job as selecting nothing.
				s.Report.Experiments = nil
			} else {
				// Store in report order, the order they will run in.
				names := make([]string, len(sel))
				for i, e := range sel {
					names[i] = e.Name
				}
				s.Report.Experiments = names
			}
		}
	case KindSweep:
		if s.Sweep == nil {
			s.Sweep = &SweepSpec{}
		}
		if s.Sweep.MaxN == 0 {
			s.Sweep.MaxN = 64
		}
		if len(s.Sweep.Constructions) > 0 {
			all := universal.Names()
			if len(s.Sweep.Constructions) == len(all) && containsAll(s.Sweep.Constructions, all) {
				s.Sweep.Constructions = nil
			} else {
				ordered := make([]string, 0, len(s.Sweep.Constructions))
				for _, name := range all {
					if slices.Contains(s.Sweep.Constructions, name) {
						ordered = append(ordered, name)
					}
				}
				// Unknown names survive normalization (unordered, sorted)
				// so Validate can reject them deterministically.
				var unknown []string
				for _, name := range s.Sweep.Constructions {
					if !slices.Contains(all, name) {
						unknown = append(unknown, name)
					}
				}
				sort.Strings(unknown)
				s.Sweep.Constructions = append(ordered, unknown...)
			}
		}
	case KindExplore:
		if s.Explore == nil {
			s.Explore = &ExploreSpec{}
		}
		e := s.Explore
		if e.Alg == "" {
			e.Alg = "group-update"
		}
		if e.Object == "" {
			if zs, ok := algos.For(e.Alg); ok {
				e.Object = zs.Object
			} else {
				e.Object = "fetch-increment"
			}
		}
		if e.LLSC != "" {
			// Canonicalize backend aliases ("blelloch-wei" → "bw"); the
			// native backend's canonical spelling is the empty field, so
			// pre-backend job IDs stay valid cache keys.
			if kind, err := llsc.ParseBackend(e.LLSC); err == nil {
				if kind == llsc.BackendNative {
					e.LLSC = ""
				} else {
					e.LLSC = "bw"
				}
			}
		}
		if e.N == 0 {
			e.N = 2
		}
		if e.OpsPerProc == 0 {
			e.OpsPerProc = 1
		}
		if e.Mode == "" {
			e.Mode = "fuzz"
		}
		if e.Mode == "fuzz" {
			if e.Samples == 0 {
				e.Samples = 200
			}
			if e.Seed == 0 {
				e.Seed = 1
			}
		} else {
			// Exhaustive search ignores sampling knobs; zero them so the
			// cache does not split on irrelevant fields.
			e.Samples = 0
			e.Seed = 0
		}
	case KindCampaignRound:
		if s.CampaignRound == nil {
			s.CampaignRound = &campaign.RoundSpec{}
		}
		s.CampaignRound.Campaign.Normalize()
	}
}

// Validate reports the first problem with the (normalized) spec.
func (s *Spec) Validate() error {
	set := 0
	for _, sub := range []bool{s.Report != nil, s.Sweep != nil, s.Explore != nil, s.CampaignRound != nil} {
		if sub {
			set++
		}
	}
	switch s.Kind {
	case KindReport:
		if s.Report == nil || set != 1 {
			return fmt.Errorf("jobs: kind %q needs exactly the %q sub-spec", s.Kind, s.Kind)
		}
		_, err := experiments.For(s.Report.Experiments)
		return err
	case KindSweep:
		if s.Sweep == nil || set != 1 {
			return fmt.Errorf("jobs: kind %q needs exactly the %q sub-spec", s.Kind, s.Kind)
		}
		if _, err := lowerbound.SweepTypeFor(s.Sweep.Type); err != nil {
			return err
		}
		for _, name := range s.Sweep.Constructions {
			if !slices.Contains(universal.Names(), name) {
				return fmt.Errorf("jobs: unknown construction %q", name)
			}
		}
		if s.Sweep.MaxN < 2 || s.Sweep.MaxN > 1<<20 {
			return fmt.Errorf("jobs: sweep maxN %d out of range [2, 2^20]", s.Sweep.MaxN)
		}
		return nil
	case KindExplore:
		if s.Explore == nil || set != 1 {
			return fmt.Errorf("jobs: kind %q needs exactly the %q sub-spec", s.Kind, s.Kind)
		}
		e := s.Explore
		zs, isZoo := algos.For(e.Alg)
		if !isZoo && !slices.Contains(universal.Names(), e.Alg) {
			return fmt.Errorf("jobs: unknown construction or algorithm %q", e.Alg)
		}
		if !slices.Contains(explore.Workloads(), e.Object) {
			return fmt.Errorf("jobs: unknown explore workload %q", e.Object)
		}
		if e.N < 2 || e.N > 8 {
			return fmt.Errorf("jobs: explore n %d out of range [2, 8]", e.N)
		}
		if e.OpsPerProc < 1 || e.OpsPerProc > 8 {
			return fmt.Errorf("jobs: explore opsPerProc %d out of range [1, 8]", e.OpsPerProc)
		}
		if isZoo {
			// Mirror explore.newRawRunner's constraints at submit time so a
			// bad spec fails before it is scheduled.
			if e.Object != zs.Object {
				return fmt.Errorf("jobs: algorithm %s implements workload %q, got %q", e.Alg, zs.Object, e.Object)
			}
			if e.OpsPerProc != 1 {
				return fmt.Errorf("jobs: algorithm %s is one-shot (opsPerProc must be 1, got %d)", e.Alg, e.OpsPerProc)
			}
			if zs.MaxN > 0 && e.N > zs.MaxN {
				return fmt.Errorf("jobs: algorithm %s supports at most n = %d, got %d", e.Alg, zs.MaxN, e.N)
			}
		}
		if e.LLSC != "" {
			if _, err := llsc.ParseBackend(e.LLSC); err != nil {
				return fmt.Errorf("jobs: %w", err)
			}
		}
		switch e.Mode {
		case "exhaustive":
		case "fuzz":
			if e.Samples < 1 || e.Samples > 1_000_000 {
				return fmt.Errorf("jobs: explore samples %d out of range [1, 1e6]", e.Samples)
			}
		default:
			return fmt.Errorf("jobs: explore mode %q (want exhaustive or fuzz)", e.Mode)
		}
		if e.Budget < 0 {
			return fmt.Errorf("jobs: explore budget %d negative", e.Budget)
		}
		return nil
	case KindCampaignRound:
		if s.CampaignRound == nil || set != 1 {
			return fmt.Errorf("jobs: kind %q needs exactly the campaignRound sub-spec", s.Kind)
		}
		cr := s.CampaignRound
		if err := cr.Campaign.Validate(); err != nil {
			return err
		}
		if cr.Round < 0 {
			return fmt.Errorf("jobs: campaign round %d negative", cr.Round)
		}
		for i, sched := range cr.Corpus {
			for _, pid := range sched {
				if pid < 0 || pid >= cr.Campaign.N {
					return fmt.Errorf("jobs: campaign corpus entry %d has pid %d outside [0, %d)", i, pid, cr.Campaign.N)
				}
			}
		}
		return nil
	case "":
		return fmt.Errorf("jobs: missing kind (want %s, %s, %s, or %s)", KindReport, KindSweep, KindExplore, KindCampaignRound)
	default:
		return fmt.Errorf("jobs: unknown kind %q (want %s, %s, %s, or %s)", s.Kind, KindReport, KindSweep, KindExplore, KindCampaignRound)
	}
}

// Canonical returns the spec's canonical encoding: the normalized spec
// marshalled to JSON and re-serialized through a generic value, so object
// keys are sorted and the bytes are independent of struct field order.
// The spec must already be normalized (ID and the scheduler do this).
func (s *Spec) Canonical() ([]byte, error) {
	raw, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("jobs: canonical encoding: %w", err)
	}
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		return nil, fmt.Errorf("jobs: canonical encoding: %w", err)
	}
	out, err := json.Marshal(v) // map keys sort
	if err != nil {
		return nil, fmt.Errorf("jobs: canonical encoding: %w", err)
	}
	return out, nil
}

// ID normalizes and validates the spec and returns its content hash — the
// lowercase hex SHA-256 of the canonical encoding — which is the job ID
// and the cache key.
func (s *Spec) ID() (string, error) {
	s.Normalize()
	if err := s.Validate(); err != nil {
		return "", err
	}
	canon, err := s.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(canon)
	return hex.EncodeToString(sum[:]), nil
}

func containsAll(have, want []string) bool {
	for _, w := range want {
		if !slices.Contains(have, w) {
			return false
		}
	}
	return true
}
