package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// NewHandler builds the service's HTTP API over a scheduler:
//
//	POST   /v1/jobs             submit a Spec; idempotent on the content hash
//	GET    /v1/jobs             list tracked jobs; ?status= filters by state
//	GET    /v1/jobs/{id}        status, progress, and (when done) the result
//	DELETE /v1/jobs/{id}        cancel a queued or running job (409 when already terminal)
//	GET    /v1/jobs/{id}/events NDJSON progress stream until terminal
//	GET    /v1/cache/stats      result-cache counters
//	GET    /healthz             liveness
//
// Everything is JSON; errors are {"error": "..."} with a matching status
// code. The result field of a done job is the cached bytes embedded
// verbatim (json.RawMessage), so two fetches of one job ID are
// byte-identical.
//
// The concrete *http.ServeMux return lets callers that mount the API
// behind another mux still label requests with the granular API pattern
// (obs.RouteFromMux consults it as a fallback).
func NewHandler(s *Scheduler) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec Spec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("decoding spec: %w", err))
			return
		}
		view, created, err := s.Submit(&spec)
		switch {
		case errors.Is(err, ErrQueueFull) || errors.Is(err, ErrShuttingDown):
			httpError(w, http.StatusServiceUnavailable, err)
			return
		case err != nil:
			httpError(w, http.StatusBadRequest, err)
			return
		}
		// A brand-new job answers 201; a deduplicated or cache-served
		// submission answers 200 — the idempotency signal.
		code := http.StatusOK
		if created {
			code = http.StatusCreated
		}
		writeJSON(w, code, view)
	})

	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		views := s.List()
		if q := r.URL.Query().Get("status"); q != "" {
			want := Status(q)
			switch want {
			case StatusQueued, StatusRunning, StatusDone, StatusFailed, StatusCanceled:
			default:
				httpError(w, http.StatusBadRequest, fmt.Errorf("unknown status %q", q))
				return
			}
			kept := views[:0]
			for _, v := range views {
				if v.Status == want {
					kept = append(kept, v)
				}
			}
			views = kept
		}
		// The result payloads stay out of the listing — a few sweep jobs
		// would otherwise make it megabytes; fetch a job by ID for its
		// result.
		for i := range views {
			views[i].Result = nil
		}
		writeJSON(w, http.StatusOK, struct {
			Jobs []JobView `json:"jobs"`
		}{views})
	})

	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		view, ok := s.Get(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, view)
	})

	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		view, ok := s.Get(id)
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
			return
		}
		// Cancelling a finished job is a conflict, not a not-found: the
		// caller's mental model ("this job is still running") is stale, so
		// answer 409 and include the final view to correct it.
		if view.Status.Terminal() {
			writeJSON(w, http.StatusConflict, view)
			return
		}
		s.Cancel(id)
		view, _ = s.Get(id)
		writeJSON(w, http.StatusOK, view)
	})

	mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		view, events, cancel, ok := s.Subscribe(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
			return
		}
		defer cancel()
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		emit := func(v any) bool {
			if err := enc.Encode(v); err != nil {
				return false
			}
			if flusher != nil {
				flusher.Flush()
			}
			return true
		}
		// Snapshot first, then the live feed, then the terminal state
		// (which also covers events dropped under backpressure).
		if !emit(view.Progress) {
			return
		}
		for {
			select {
			case ev, open := <-events:
				if !open {
					final, _ := s.Get(view.ID)
					emit(struct {
						Status Status `json:"status"`
						Event
					}{final.Status, final.Progress})
					return
				}
				if !emit(ev) {
					return
				}
			case <-r.Context().Done():
				return
			}
		}
	})

	mux.HandleFunc("GET /v1/cache/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Cache().Stats())
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})

	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
