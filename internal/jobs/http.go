package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"jayanti98/internal/tenant"
)

// SSEHeartbeat is the interval between comment heartbeats on the
// /v1/jobs/{id}/events stream; proxies and load balancers drop idle
// connections, and a long-running sweep can legitimately emit no
// progress for a while. Tests shorten it.
var SSEHeartbeat = 15 * time.Second

// NewHandler builds the service's HTTP API over a scheduler:
//
//	POST   /v1/jobs             submit a Spec; idempotent on the content hash
//	GET    /v1/jobs             list tracked jobs; ?status= filters by state
//	GET    /v1/jobs/{id}        status, progress, and (when done) the result
//	DELETE /v1/jobs/{id}        cancel a queued or running job (409 when already terminal)
//	GET    /v1/jobs/{id}/events live progress as Server-Sent Events until terminal
//	GET    /v1/cache/stats      result-cache counters
//	GET    /healthz             liveness
//
// Submissions run as the tenant stamped on the request context by the
// tenant middleware (the default tenant when the API runs open). A
// tenant at its queued-jobs cap gets 429 with Retry-After.
//
// Everything except the event stream is JSON; errors are
// {"error": "..."} with a matching status code. The result field of a
// done job is the cached bytes embedded verbatim (json.RawMessage), so
// two fetches of one job ID are byte-identical.
//
// The event stream is text/event-stream: one "progress" event per
// tracker update (the SSE id field carries the monotonic sequence
// number), comment heartbeats every SSEHeartbeat, and a final "status"
// event when the job reaches a terminal state. Progress events are
// self-contained snapshots, so resume-after-disconnect needs no server
// buffering: a client reconnecting with Last-Event-ID is served only
// events newer than that sequence number.
//
// The concrete *http.ServeMux return lets callers that mount the API
// behind another mux still label requests with the granular API pattern
// (obs.RouteFromMux consults it as a fallback).
func NewHandler(s *Scheduler) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec Spec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("decoding spec: %w", err))
			return
		}
		view, created, err := s.SubmitAs(tenant.FromContext(r.Context()), &spec)
		var busy *TenantBusyError
		switch {
		case errors.As(err, &busy):
			w.Header().Set("Retry-After", strconv.Itoa(int((busy.RetryAfter+time.Second-1)/time.Second)))
			httpError(w, http.StatusTooManyRequests, err)
			return
		case errors.Is(err, ErrQueueFull) || errors.Is(err, ErrShuttingDown):
			httpError(w, http.StatusServiceUnavailable, err)
			return
		case err != nil:
			httpError(w, http.StatusBadRequest, err)
			return
		}
		// A brand-new job answers 201; a deduplicated or cache-served
		// submission answers 200 — the idempotency signal.
		code := http.StatusOK
		if created {
			code = http.StatusCreated
		}
		writeJSON(w, code, view)
	})

	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		views := s.List()
		if q := r.URL.Query().Get("status"); q != "" {
			want := Status(q)
			switch want {
			case StatusQueued, StatusRunning, StatusDone, StatusFailed, StatusCanceled:
			default:
				httpError(w, http.StatusBadRequest, fmt.Errorf("unknown status %q", q))
				return
			}
			kept := views[:0]
			for _, v := range views {
				if v.Status == want {
					kept = append(kept, v)
				}
			}
			views = kept
		}
		// The result payloads stay out of the listing — a few sweep jobs
		// would otherwise make it megabytes; fetch a job by ID for its
		// result.
		for i := range views {
			views[i].Result = nil
		}
		writeJSON(w, http.StatusOK, struct {
			Jobs []JobView `json:"jobs"`
		}{views})
	})

	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		view, ok := s.Get(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, view)
	})

	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		view, ok := s.Get(id)
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
			return
		}
		// Cancelling a finished job is a conflict, not a not-found: the
		// caller's mental model ("this job is still running") is stale, so
		// answer 409 and include the final view to correct it.
		if view.Status.Terminal() {
			writeJSON(w, http.StatusConflict, view)
			return
		}
		// Cancel tombstones the journal record, so the cancellation is as
		// durable as the submission was: a restarted server replays the
		// job as canceled instead of re-enqueueing it.
		s.Cancel(id)
		view, _ = s.Get(id)
		writeJSON(w, http.StatusOK, view)
	})

	mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		serveEvents(s, w, r)
	})

	mux.HandleFunc("GET /v1/cache/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Cache().Stats())
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})

	return mux
}

// statusEvent is the payload of the final SSE "status" event.
type statusEvent struct {
	Status Status `json:"status"`
	Event
}

// serveEvents streams a job's progress as Server-Sent Events:
//
//	id: <seq>
//	event: progress
//	data: {"seq":…,"phase":…,"done":…,"total":…}
//
// finishing with an "event: status" frame carrying the terminal state.
// Comment heartbeats (": hb") flow every SSEHeartbeat so idle
// connections stay alive through proxies. A reconnecting client sends
// Last-Event-ID (or ?lastEventId=) and is only served events with a
// larger sequence number — progress events are snapshots, not deltas,
// so skipping the replayed prefix loses nothing.
func serveEvents(s *Scheduler, w http.ResponseWriter, r *http.Request) {
	view, events, cancel, ok := s.Subscribe(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	defer cancel()

	lastID := 0
	if raw := r.Header.Get("Last-Event-ID"); raw != "" {
		lastID, _ = strconv.Atoi(raw)
	} else if raw := r.URL.Query().Get("lastEventId"); raw != "" {
		lastID, _ = strconv.Atoi(raw)
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	emit := func(event string, id int, v any) bool {
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", id, event, data); err != nil {
			return false
		}
		flush()
		return true
	}
	final := func() {
		fv, _ := s.Get(view.ID)
		emit("status", fv.Progress.Seq+1, statusEvent{fv.Status, fv.Progress})
	}

	// Snapshot first — unless the client has already seen it (resume).
	if view.Progress.Seq > lastID {
		if !emit("progress", view.Progress.Seq, view.Progress) {
			return
		}
	}
	if view.Status.Terminal() {
		final()
		return
	}

	heartbeat := time.NewTicker(SSEHeartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case ev, open := <-events:
			if !open {
				// Terminal: the status event also covers any progress
				// events dropped under backpressure.
				final()
				return
			}
			if ev.Seq <= lastID {
				continue
			}
			if !emit("progress", ev.Seq, ev) {
				return
			}
		case <-heartbeat.C:
			if _, err := fmt.Fprint(w, ": hb\n\n"); err != nil {
				return
			}
			flush()
		case <-r.Context().Done():
			return
		}
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
