package jobs

import (
	"sync"
	"time"
)

// Event is one progress observation of a running job. Events are
// monotonic: Seq strictly increases per job, and within one phase Done
// never decreases (the tracker clamps regressions rather than emitting
// them).
type Event struct {
	Seq   int    `json:"seq"`
	Phase string `json:"phase"`
	Done  int    `json:"done"`
	Total int    `json:"total"`
}

// PhaseDuration records how long one phase of a job ran.
type PhaseDuration struct {
	Phase    string
	Duration time.Duration
}

// Progress tracks a job's {done, total, phase} state and fans events out
// to subscribers (the NDJSON event stream). It also times each phase for
// the scheduler's per-phase latency metrics.
type Progress struct {
	mu     sync.Mutex
	cur    Event
	closed bool
	subs   map[chan Event]struct{}

	phaseStart time.Time
	durations  []PhaseDuration
	now        func() time.Time // test seam
}

// NewProgress returns a tracker in phase "queued".
func NewProgress() *Progress {
	p := &Progress{subs: make(map[chan Event]struct{}), now: time.Now}
	p.cur = Event{Seq: 1, Phase: "queued"}
	p.phaseStart = p.now()
	return p
}

// Set advances the tracker to (phase, done, total) and broadcasts the
// event. Within an unchanged phase, done is clamped to be non-decreasing;
// a phase change restarts the done counter and closes the previous
// phase's duration. Set after Close is a no-op.
func (p *Progress) Set(phase string, done, total int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	if phase == p.cur.Phase {
		if done < p.cur.Done {
			done = p.cur.Done
		}
	} else {
		p.durations = append(p.durations, PhaseDuration{p.cur.Phase, p.now().Sub(p.phaseStart)})
		p.phaseStart = p.now()
	}
	p.cur = Event{Seq: p.cur.Seq + 1, Phase: phase, Done: done, Total: total}
	for ch := range p.subs {
		select {
		case ch <- p.cur:
		default:
			// A slow subscriber misses intermediate events; it still gets
			// the final state from Snapshot after the stream closes.
		}
	}
}

// Snapshot returns the current event.
func (p *Progress) Snapshot() Event {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cur
}

// Subscribe registers a live event feed. The returned channel first
// receives every future event (buffered; intermediate events may be
// dropped under backpressure, never the ordering) and is closed when the
// job reaches a terminal state. The cancel func unsubscribes early.
func (p *Progress) Subscribe() (<-chan Event, func()) {
	ch := make(chan Event, 64)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	p.subs[ch] = struct{}{}
	p.mu.Unlock()
	cancel := func() {
		p.mu.Lock()
		if _, ok := p.subs[ch]; ok {
			delete(p.subs, ch)
			close(ch)
		}
		p.mu.Unlock()
	}
	return ch, cancel
}

// Close finishes the last phase's timer and closes every subscriber
// channel. Idempotent.
func (p *Progress) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	p.durations = append(p.durations, PhaseDuration{p.cur.Phase, p.now().Sub(p.phaseStart)})
	for ch := range p.subs {
		delete(p.subs, ch)
		close(ch)
	}
}

// Durations returns the recorded per-phase durations (complete only after
// Close).
func (p *Progress) Durations() []PhaseDuration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]PhaseDuration(nil), p.durations...)
}
