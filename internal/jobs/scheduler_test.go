package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

// quickExploreSpec is a real workload small enough for unit tests: the
// exhaustive schedule search over two processes, one op each.
func quickExploreSpec() *Spec {
	return &Spec{Kind: KindExplore, Explore: &ExploreSpec{
		Alg: "central", Object: "fetch-increment", N: 2, OpsPerProc: 1, Mode: "exhaustive",
	}}
}

func newTestScheduler(t *testing.T, opts Options) *Scheduler {
	t.Helper()
	s, err := NewScheduler(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s
}

// swapRunSpec installs a fake spec executor for the duration of the test.
func swapRunSpec(t *testing.T, fn func(ctx context.Context, spec *Spec, p *Progress, parallel int) ([]byte, error)) {
	t.Helper()
	orig := runSpecFn
	runSpecFn = fn
	t.Cleanup(func() { runSpecFn = orig })
}

func waitStatus(t *testing.T, s *Scheduler, id string, want Status) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		view, ok := s.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if view.Status == want {
			return view
		}
		if view.Status.Terminal() {
			t.Fatalf("job %s ended %s (err %q), want %s", id, view.Status, view.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return JobView{}
}

func TestSchedulerRunsJobAndDedupes(t *testing.T) {
	s := newTestScheduler(t, Options{Workers: 2})

	view, created, err := s.Submit(quickExploreSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Fatal("first submission should create a job")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	final, err := s.Wait(ctx, view.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusDone {
		t.Fatalf("status = %s (err %q), want done", final.Status, final.Error)
	}
	if len(final.Result) == 0 {
		t.Fatal("done job has no result")
	}
	var res ExploreResult
	if err := json.Unmarshal(final.Result, &res); err != nil {
		t.Fatalf("result is not an ExploreResult: %v", err)
	}
	if res.Mode != "exhaustive" || res.Runs == 0 {
		t.Fatalf("unexpected result %+v", res)
	}

	// Second submission of the same spec: same ID, served as cached,
	// byte-identical result, no new work.
	again, created, err := s.Submit(quickExploreSpec())
	if err != nil {
		t.Fatal(err)
	}
	if created {
		t.Fatal("resubmission enqueued new work")
	}
	if again.ID != view.ID {
		t.Fatalf("resubmission got ID %s, want %s", again.ID, view.ID)
	}
	if !again.Cached {
		t.Fatal("resubmission of a done job should report cached")
	}
	if !bytes.Equal(again.Result, final.Result) {
		t.Fatal("cached result is not byte-identical")
	}

	c := s.Counters()
	if c.Submitted != 1 || c.Completed != 1 || c.CacheServed != 1 {
		t.Fatalf("counters = %+v", c)
	}
	// The completed explore job recorded a phase latency sample.
	lats := s.PhaseLatencies()
	if sum, ok := lats["explore/exhaustive"]; !ok || sum.N != 1 {
		t.Fatalf("explore/exhaustive latency = %+v, want one sample", lats)
	}
}

func TestSchedulerServesFromDiskCacheAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	spec := quickExploreSpec()

	cache1, err := NewCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := NewScheduler(Options{Workers: 1, Cache: cache1})
	if err != nil {
		t.Fatal(err)
	}
	view, _, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	final, err := s1.Wait(ctx, view.ID)
	if err != nil || final.Status != StatusDone {
		t.Fatalf("first run: %v, %+v", err, final)
	}
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// A brand-new scheduler over the same cache dir — the restart — serves
	// the spec without running anything.
	cache2, err := NewCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := newTestScheduler(t, Options{Workers: 1, Cache: cache2})
	revived, created, err := s2.Submit(quickExploreSpec())
	if err != nil {
		t.Fatal(err)
	}
	if created {
		t.Fatal("restart resubmission enqueued work despite the disk cache")
	}
	if revived.Status != StatusDone || !revived.Cached {
		t.Fatalf("revived job = status %s cached %v, want done/cached", revived.Status, revived.Cached)
	}
	if revived.ID != view.ID {
		t.Fatalf("restart changed the job ID: %s vs %s", revived.ID, view.ID)
	}
	if !bytes.Equal(revived.Result, final.Result) {
		t.Fatal("disk-cached result is not byte-identical")
	}
	if st := cache2.Stats(); st.DiskHits != 1 {
		t.Fatalf("diskHits = %d, want 1", st.DiskHits)
	}
}

func TestSchedulerCancelRunningJob(t *testing.T) {
	running := make(chan struct{})
	var resumed bool
	swapRunSpec(t, func(ctx context.Context, spec *Spec, p *Progress, parallel int) ([]byte, error) {
		if resumed {
			return []byte(`{"ok":true}`), nil
		}
		close(running)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	s := newTestScheduler(t, Options{Workers: 1})

	view, _, err := s.Submit(quickExploreSpec())
	if err != nil {
		t.Fatal(err)
	}
	<-running
	waitStatus(t, s, view.ID, StatusRunning)
	if !s.Cancel(view.ID) {
		t.Fatal("Cancel returned false for a running job")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	final, err := s.Wait(ctx, view.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusCanceled {
		t.Fatalf("status = %s, want canceled", final.Status)
	}
	if len(final.Result) != 0 {
		t.Fatal("canceled job carries a result")
	}
	// The cancellation must not poison the cache.
	if _, ok := s.Cache().Get(view.ID); ok {
		t.Fatal("canceled job left an entry in the result cache")
	}
	if c := s.Counters(); c.Canceled != 1 || c.Completed != 0 {
		t.Fatalf("counters = %+v", c)
	}

	// Resubmitting the same spec after cancellation runs fresh.
	resumed = true
	re, created, err := s.Submit(quickExploreSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Fatal("resubmission after cancel did not enqueue fresh work")
	}
	if re.ID != view.ID {
		t.Fatalf("resubmission changed the ID: %s vs %s", re.ID, view.ID)
	}
	final, err = s.Wait(ctx, re.ID)
	if err != nil || final.Status != StatusDone {
		t.Fatalf("fresh run after cancel: %v, status %s (err %q)", err, final.Status, final.Error)
	}
}

func TestSchedulerCancelQueuedJob(t *testing.T) {
	running := make(chan struct{})
	release := make(chan struct{})
	swapRunSpec(t, func(ctx context.Context, spec *Spec, p *Progress, parallel int) ([]byte, error) {
		select {
		case <-running:
		default:
			close(running)
		}
		select {
		case <-release:
			return []byte(`{"ok":true}`), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	s := newTestScheduler(t, Options{Workers: 1})

	first, _, err := s.Submit(quickExploreSpec())
	if err != nil {
		t.Fatal(err)
	}
	<-running

	// The single worker is busy, so this one stays queued.
	queuedSpec := &Spec{Kind: KindExplore, Explore: &ExploreSpec{N: 3, Mode: "exhaustive"}}
	queued, _, err := s.Submit(queuedSpec)
	if err != nil {
		t.Fatal(err)
	}
	if queued.Status != StatusQueued {
		t.Fatalf("second job status = %s, want queued", queued.Status)
	}
	if !s.Cancel(queued.ID) {
		t.Fatal("Cancel returned false for a queued job")
	}
	view, _ := s.Get(queued.ID)
	if view.Status != StatusCanceled {
		t.Fatalf("queued job after cancel = %s, want canceled", view.Status)
	}

	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if final, err := s.Wait(ctx, first.ID); err != nil || final.Status != StatusDone {
		t.Fatalf("first job: %v, %s", err, final.Status)
	}
	// The worker skipped the cancelled record without running it.
	if c := s.Counters(); c.Canceled != 1 || c.Completed != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestSchedulerCancelUnknownAndTerminal(t *testing.T) {
	s := newTestScheduler(t, Options{Workers: 1})
	if s.Cancel("nope") {
		t.Fatal("Cancel of an unknown ID returned true")
	}
	view, _, err := s.Submit(quickExploreSpec())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := s.Wait(ctx, view.ID); err != nil {
		t.Fatal(err)
	}
	// Cancelling a done job is a harmless no-op that still returns true.
	if !s.Cancel(view.ID) {
		t.Fatal("Cancel of a known terminal job returned false")
	}
	if got, _ := s.Get(view.ID); got.Status != StatusDone {
		t.Fatalf("terminal job mutated by Cancel: %s", got.Status)
	}
}

func TestSchedulerPanicIsolation(t *testing.T) {
	calls := 0
	swapRunSpec(t, func(ctx context.Context, spec *Spec, p *Progress, parallel int) ([]byte, error) {
		calls++
		if calls == 1 {
			panic("kaboom")
		}
		return []byte(`{"ok":true}`), nil
	})
	s := newTestScheduler(t, Options{Workers: 1})

	view, _, err := s.Submit(quickExploreSpec())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	final, err := s.Wait(ctx, view.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusFailed || !strings.Contains(final.Error, "panicked") {
		t.Fatalf("panicking job = %s (%q), want failed/panicked", final.Status, final.Error)
	}
	if _, ok := s.Cache().Get(view.ID); ok {
		t.Fatal("failed job left a cache entry")
	}

	// The worker survived; the same spec resubmits fresh and succeeds.
	re, created, err := s.Submit(quickExploreSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Fatal("resubmission after failure did not enqueue fresh work")
	}
	if final, err = s.Wait(ctx, re.ID); err != nil || final.Status != StatusDone {
		t.Fatalf("after panic: %v, %s", err, final.Status)
	}
	if c := s.Counters(); c.Failed != 1 || c.Completed != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestSchedulerJobTimeout(t *testing.T) {
	swapRunSpec(t, func(ctx context.Context, spec *Spec, p *Progress, parallel int) ([]byte, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	s := newTestScheduler(t, Options{Workers: 1, JobTimeout: 20 * time.Millisecond})

	view, _, err := s.Submit(quickExploreSpec())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	final, err := s.Wait(ctx, view.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusCanceled {
		t.Fatalf("timed-out job = %s, want canceled", final.Status)
	}
	if _, ok := s.Cache().Get(view.ID); ok {
		t.Fatal("timed-out job left a cache entry")
	}
}

func TestSchedulerQueueFull(t *testing.T) {
	release := make(chan struct{})
	running := make(chan struct{})
	var once bool
	swapRunSpec(t, func(ctx context.Context, spec *Spec, p *Progress, parallel int) ([]byte, error) {
		if !once {
			once = true
			close(running)
		}
		select {
		case <-release:
			return []byte(`{"ok":true}`), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	s := newTestScheduler(t, Options{Workers: 1, QueueDepth: 1})

	if _, _, err := s.Submit(&Spec{Kind: KindExplore, Explore: &ExploreSpec{N: 2, Mode: "exhaustive"}}); err != nil {
		t.Fatal(err)
	}
	<-running // worker busy
	if _, _, err := s.Submit(&Spec{Kind: KindExplore, Explore: &ExploreSpec{N: 3, Mode: "exhaustive"}}); err != nil {
		t.Fatal(err) // fills the one queue slot
	}
	_, _, err := s.Submit(&Spec{Kind: KindExplore, Explore: &ExploreSpec{N: 4, Mode: "exhaustive"}})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit: %v, want ErrQueueFull", err)
	}
	close(release)
}

func TestSchedulerShutdownRejectsAndCancels(t *testing.T) {
	started := make(chan struct{})
	swapRunSpec(t, func(ctx context.Context, spec *Spec, p *Progress, parallel int) ([]byte, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	s, err := NewScheduler(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	view, _, err := s.Submit(quickExploreSpec())
	if err != nil {
		t.Fatal(err)
	}
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown did not drain: %v", err)
	}
	if final, _ := s.Get(view.ID); final.Status != StatusCanceled {
		t.Fatalf("job after shutdown = %s, want canceled", final.Status)
	}
	if _, _, err := s.Submit(quickExploreSpec()); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("submit after shutdown: %v, want ErrShuttingDown", err)
	}
	// Shutdown is idempotent.
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestSchedulerRejectsInvalidSpec(t *testing.T) {
	s := newTestScheduler(t, Options{Workers: 1})
	if _, _, err := s.Submit(&Spec{Kind: "bogus"}); err == nil {
		t.Fatal("Submit accepted an invalid spec")
	}
	if c := s.Counters(); c.Submitted != 0 {
		t.Fatalf("invalid spec counted as submitted: %+v", c)
	}
}
