package jobs

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"jayanti98/internal/obs"
)

// JobRecord is one entry of the scheduler's write-ahead job journal: the
// durable form of a job's spec, tenant, and lifecycle, persisted as
// <id>.job.json behind the cache's atomic-file layer on every status
// transition. The record never carries the result — results live in the
// content-addressed cache under the same ID — so the journal stays small
// and a replayed terminal job is served byte-identically from the cache.
//
// Replay semantics (see (*Scheduler).replayJournal): a tombstoned record
// is terminal-canceled forever; a terminal record is rebuilt as a served
// job; a queued or running record is re-enqueued from scratch, which is
// safe — and byte-identical — because every workload is a deterministic
// function of its spec.
type JobRecord struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant,omitempty"`
	Spec   *Spec  `json:"spec"`
	Status Status `json:"status"`
	Error  string `json:"error,omitempty"`
	// Tombstone marks a job canceled by DELETE /v1/jobs: replay must
	// keep it canceled even when the recorded status is still queued or
	// running (the server may have been killed between the cancel and
	// the job unwinding).
	Tombstone bool `json:"tombstone,omitempty"`

	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
}

// journalRecord snapshots j into its durable form. Callers hold j.mu or
// own j exclusively.
func (j *job) journalRecordLocked() JobRecord {
	rec := JobRecord{
		ID:        j.id,
		Tenant:    j.tenant,
		Spec:      j.spec,
		Status:    j.status,
		Error:     j.errMsg,
		Tombstone: j.tombstoned,
		Created:   j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		rec.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		rec.Finished = &t
	}
	return rec
}

// journal persists j's current state. A journal write failure is logged
// and counted, never fatal: the in-memory scheduler stays authoritative
// for this life, and the worst a lost write costs after a crash is
// re-running one deterministic job.
func (s *Scheduler) journal(j *job) {
	j.mu.Lock()
	rec := j.journalRecordLocked()
	j.mu.Unlock()
	data, err := json.Marshal(rec)
	if err == nil {
		err = s.cache.PutJobRecord(rec.ID, data)
	}
	if err != nil {
		s.met.journalErrors.Inc()
		s.jobLogger(rec.ID, kindOf(rec.Spec)).Warn("journal write failed", "error", err.Error())
		return
	}
	s.met.journalWrites.Inc()
}

// kindOf tolerates the nil specs malformed journal records can carry.
func kindOf(spec *Spec) string {
	if spec == nil {
		return ""
	}
	return spec.Kind
}

// replayJournal rebuilds the previous server life's jobs from the
// journal, called once from NewScheduler before the workers start:
//
//   - tombstoned records become terminal canceled jobs (a DELETE
//     outlives the process — the satellite contract);
//   - done records are rebuilt as completed jobs backed by the result
//     cache; a record whose result bytes are gone (cache dir wiped by
//     hand) is re-enqueued instead, which re-derives the identical
//     bytes;
//   - failed/canceled records are rebuilt terminal as-is;
//   - queued and running records are re-enqueued, oldest first — the
//     write-ahead property: accepted work survives the process.
//
// A record that no longer decodes is logged and skipped; one corrupt
// file must not keep the server from booting.
func (s *Scheduler) replayJournal() {
	ids := s.cache.JobRecords()
	if len(ids) == 0 {
		return
	}
	_, span := s.tracer.Start(obs.WithLogger(s.baseCtx, s.logger), "journal replay")
	defer span.End()
	var recs []JobRecord
	for _, id := range ids {
		data, ok := s.cache.GetJobRecord(id)
		if !ok {
			continue
		}
		var rec JobRecord
		if err := json.Unmarshal(data, &rec); err != nil || rec.Spec == nil || rec.ID != id {
			s.met.journalSkipped.Inc()
			s.logger.Warn("journal record skipped", "job_id", obs.ShortID(id), "error", replayErr(err))
			continue
		}
		recs = append(recs, rec)
	}
	// Oldest first so re-enqueued jobs keep their original arrival order
	// (ties broken by ID for determinism).
	sort.Slice(recs, func(i, k int) bool {
		if !recs[i].Created.Equal(recs[k].Created) {
			return recs[i].Created.Before(recs[k].Created)
		}
		return recs[i].ID < recs[k].ID
	})
	var replayed, reenqueued int
	for i := range recs {
		rec := recs[i]
		if s.replayRecord(rec) {
			reenqueued++
		}
		replayed++
		s.met.journalReplayed.Inc()
	}
	span.SetAttr("records", fmt.Sprintf("%d", replayed))
	span.SetAttr("reenqueued", fmt.Sprintf("%d", reenqueued))
	s.logger.Info("journal replayed", "records", replayed, "reenqueued", reenqueued)
}

// replayRecord rebuilds one journal record; reports whether it
// re-enqueued work.
func (s *Scheduler) replayRecord(rec JobRecord) bool {
	j := &job{
		id:       rec.ID,
		spec:     rec.Spec,
		tenant:   tenantOrDefault(rec.Tenant),
		status:   rec.Status,
		errMsg:   rec.Error,
		created:  rec.Created,
		progress: NewProgress(),
		done:     make(chan struct{}),
	}
	if rec.Started != nil {
		j.started = *rec.Started
	}
	if rec.Finished != nil {
		j.finished = *rec.Finished
	}

	switch {
	case rec.Tombstone || rec.Status == StatusFailed || rec.Status == StatusCanceled:
		if rec.Tombstone {
			j.status = StatusCanceled
			j.tombstoned = true
		}
		if j.finished.IsZero() {
			j.finished = j.created
		}
		j.progress.Set(string(j.status), 0, 0)
		j.progress.Close()
		close(j.done)
		s.mu.Lock()
		s.jobs[j.id] = j
		s.mu.Unlock()
		s.journal(j) // normalize the durable form (tombstone → canceled)
		return false

	case rec.Status == StatusDone:
		result, ok := s.cache.Get(rec.ID)
		if ok {
			j.status = StatusDone
			j.cached = true
			j.result = result
			j.progress.Set("cached", 1, 1)
			j.progress.Close()
			close(j.done)
			s.mu.Lock()
			s.jobs[j.id] = j
			s.mu.Unlock()
			return false
		}
		// The journal says done but the result bytes are gone: fall
		// through and recompute — determinism yields the same bytes.
		fallthrough

	default: // queued, running, or done-with-missing-result
		j.status = StatusQueued
		j.started, j.finished = time.Time{}, time.Time{}
		s.mu.Lock()
		// Replay bypasses queue-depth and tenant caps: this work was
		// already accepted by the previous life, and rejecting it now
		// would turn a restart into data loss.
		s.enqueueLocked(j)
		s.jobs[j.id] = j
		s.mu.Unlock()
		s.journal(j)
		s.jobLogger(j.id, j.spec.Kind).Info("job re-enqueued from journal")
		return true
	}
}

func replayErr(err error) string {
	if err != nil {
		return err.Error()
	}
	return "record is incomplete"
}
