package jobs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"jayanti98/internal/tenant"
)

func newTestServer(t *testing.T, opts Options) (*Scheduler, *httptest.Server) {
	t.Helper()
	s := newTestScheduler(t, opts)
	srv := httptest.NewServer(NewHandler(s))
	t.Cleanup(srv.Close)
	return s, srv
}

func doJSON(t *testing.T, method, url string, body string) (*http.Response, []byte) {
	t.Helper()
	var rd *bytes.Reader
	if body != "" {
		rd = bytes.NewReader([]byte(body))
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func pollDone(t *testing.T, base, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, body := doJSON(t, http.MethodGet, base+"/v1/jobs/"+id, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET job: %d %s", resp.StatusCode, body)
		}
		var view JobView
		if err := json.Unmarshal(body, &view); err != nil {
			t.Fatalf("decoding view: %v (%s)", err, body)
		}
		if view.Status.Terminal() {
			return view
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return JobView{}
}

// TestHTTPIdempotentSubmitAndCachedResult is the acceptance-criteria test:
// submitting the same job spec twice returns the same job ID and a
// byte-identical cached result.
func TestHTTPIdempotentSubmitAndCachedResult(t *testing.T) {
	_, srv := newTestServer(t, Options{Workers: 2})
	spec := `{"kind":"explore","explore":{"alg":"central","mode":"exhaustive"}}`

	resp, body := doJSON(t, http.MethodPost, srv.URL+"/v1/jobs", spec)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("first POST: %d %s", resp.StatusCode, body)
	}
	var first JobView
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if len(first.ID) != 64 {
		t.Fatalf("job ID %q is not a sha256 digest", first.ID)
	}
	done := pollDone(t, srv.URL, first.ID)
	if done.Status != StatusDone {
		t.Fatalf("job ended %s (%s)", done.Status, done.Error)
	}
	if len(done.Result) == 0 {
		t.Fatal("done view has no result")
	}

	// Same spec, spelled with defaults explicit and fields reordered.
	equivalent := `{"explore":{"mode":"exhaustive","alg":"central","object":"fetch-increment","n":2,"opsPerProc":1},"kind":"explore"}`
	resp, body = doJSON(t, http.MethodPost, srv.URL+"/v1/jobs", equivalent)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second POST: %d %s (want 200 — idempotent resubmission)", resp.StatusCode, body)
	}
	var second JobView
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if second.ID != first.ID {
		t.Fatalf("equivalent specs got different IDs: %s vs %s", second.ID, first.ID)
	}
	if !second.Cached {
		t.Fatal("resubmission should be served as cached")
	}
	if !bytes.Equal(second.Result, done.Result) {
		t.Fatalf("cached result differs:\n  first:  %s\n  second: %s", done.Result, second.Result)
	}

	// Cache stats are exposed.
	resp, body = doJSON(t, http.MethodGet, srv.URL+"/v1/cache/stats", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cache stats: %d", resp.StatusCode)
	}
	var st CacheStats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Entries != 1 {
		t.Fatalf("cache entries = %d, want 1", st.Entries)
	}
}

// sseFrame is one parsed Server-Sent Events frame.
type sseFrame struct {
	ID    int
	Event string
	Data  string
}

// readSSE consumes the stream until EOF, returning the parsed frames
// (comment heartbeats are dropped).
func readSSE(t *testing.T, body *bufio.Scanner) []sseFrame {
	t.Helper()
	var frames []sseFrame
	cur := sseFrame{ID: -1}
	flushFrame := func() {
		if cur.Event != "" || cur.Data != "" {
			frames = append(frames, cur)
		}
		cur = sseFrame{ID: -1}
	}
	for body.Scan() {
		line := body.Text()
		switch {
		case line == "":
			flushFrame()
		case strings.HasPrefix(line, ":"):
			// comment / heartbeat
		case strings.HasPrefix(line, "id: "):
			id, err := strconv.Atoi(strings.TrimPrefix(line, "id: "))
			if err != nil {
				t.Fatalf("bad id line %q: %v", line, err)
			}
			cur.ID = id
		case strings.HasPrefix(line, "event: "):
			cur.Event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.Data = strings.TrimPrefix(line, "data: ")
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	if err := body.Err(); err != nil {
		t.Fatal(err)
	}
	flushFrame()
	return frames
}

func TestHTTPEventsStream(t *testing.T) {
	_, srv := newTestServer(t, Options{Workers: 1})
	spec := `{"kind":"explore","explore":{"alg":"central","mode":"exhaustive"}}`
	resp, body := doJSON(t, http.MethodPost, srv.URL+"/v1/jobs", spec)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST: %d %s", resp.StatusCode, body)
	}
	var view JobView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}

	// Subscribe immediately; the stream must end with the terminal
	// "status" event regardless of how many progress frames we catch.
	eresp, err := http.Get(srv.URL + "/v1/jobs/" + view.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	if ct := eresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type = %q", ct)
	}
	frames := readSSE(t, bufio.NewScanner(eresp.Body))
	if len(frames) == 0 {
		t.Fatal("stream had no frames, want at least the terminal status event")
	}
	// Every frame carries JSON data; IDs never decrease.
	lastID := -1
	for i, fr := range frames {
		if !json.Valid([]byte(fr.Data)) {
			t.Fatalf("frame %d data %q is not JSON", i, fr.Data)
		}
		if fr.ID < lastID {
			t.Fatalf("event id regressed at frame %d: %+v", i, frames)
		}
		lastID = fr.ID
		if i < len(frames)-1 && fr.Event != "progress" {
			t.Fatalf("frame %d event = %q, want progress", i, fr.Event)
		}
	}
	last := frames[len(frames)-1]
	if last.Event != "status" {
		t.Fatalf("final frame event = %q, want status: %+v", last.Event, frames)
	}
	var terminal struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal([]byte(last.Data), &terminal); err != nil {
		t.Fatal(err)
	}
	if terminal.Status != string(StatusDone) {
		t.Fatalf("terminal status = %q, want done: %+v", terminal.Status, frames)
	}
}

func TestHTTPCancelJob(t *testing.T) {
	started := make(chan struct{})
	swapRunSpec(t, func(ctx context.Context, spec *Spec, p *Progress, parallel int) ([]byte, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	s, srv := newTestServer(t, Options{Workers: 1})

	spec := `{"kind":"explore","explore":{"mode":"exhaustive"}}`
	resp, body := doJSON(t, http.MethodPost, srv.URL+"/v1/jobs", spec)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST: %d %s", resp.StatusCode, body)
	}
	var view JobView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	<-started

	resp, body = doJSON(t, http.MethodDelete, srv.URL+"/v1/jobs/"+view.ID, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: %d %s", resp.StatusCode, body)
	}
	final := pollDone(t, srv.URL, view.ID)
	if final.Status != StatusCanceled {
		t.Fatalf("cancelled job = %s, want canceled", final.Status)
	}
	if len(final.Result) != 0 {
		t.Fatal("cancelled job carries a result")
	}
	if _, ok := s.Cache().Get(view.ID); ok {
		t.Fatal("cancelled job poisoned the cache")
	}
}

func TestHTTPListJobs(t *testing.T) {
	_, srv := newTestServer(t, Options{Workers: 2})

	// Before any submission the listing is present but empty.
	resp, body := doJSON(t, http.MethodGet, srv.URL+"/v1/jobs", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/jobs: %d %s", resp.StatusCode, body)
	}
	var listing struct {
		Jobs []JobView `json:"jobs"`
	}
	if err := json.Unmarshal(body, &listing); err != nil {
		t.Fatalf("decoding listing: %v (%s)", err, body)
	}
	if listing.Jobs == nil || len(listing.Jobs) != 0 {
		t.Fatalf("empty listing = %s, want {\"jobs\":[]}", body)
	}

	// Two distinct jobs; wait until both are terminal.
	ids := make([]string, 0, 2)
	for _, alg := range []string{"central", "herlihy"} {
		spec := fmt.Sprintf(`{"kind":"explore","explore":{"alg":%q,"mode":"exhaustive"}}`, alg)
		resp, body := doJSON(t, http.MethodPost, srv.URL+"/v1/jobs", spec)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("POST: %d %s", resp.StatusCode, body)
		}
		var view JobView
		if err := json.Unmarshal(body, &view); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, view.ID)
	}
	for _, id := range ids {
		if done := pollDone(t, srv.URL, id); done.Status != StatusDone {
			t.Fatalf("job %s ended %s", id, done.Status)
		}
	}

	resp, body = doJSON(t, http.MethodGet, srv.URL+"/v1/jobs", "")
	if err := json.Unmarshal(body, &listing); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || len(listing.Jobs) != 2 {
		t.Fatalf("listing after 2 jobs: %d %s", resp.StatusCode, body)
	}
	// Oldest submission first, results elided.
	if listing.Jobs[0].ID != ids[0] && listing.Jobs[0].Created.After(listing.Jobs[1].Created) {
		t.Fatalf("listing out of order: %s", body)
	}
	for _, v := range listing.Jobs {
		if len(v.Result) != 0 {
			t.Fatalf("listing embeds a result payload: %s", body)
		}
		if v.Status != StatusDone {
			t.Fatalf("job %s listed as %s, want done", v.ID, v.Status)
		}
	}

	// Status filtering: done matches both, queued matches none.
	resp, body = doJSON(t, http.MethodGet, srv.URL+"/v1/jobs?status=done", "")
	if err := json.Unmarshal(body, &listing); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || len(listing.Jobs) != 2 {
		t.Fatalf("?status=done: %d %s", resp.StatusCode, body)
	}
	resp, body = doJSON(t, http.MethodGet, srv.URL+"/v1/jobs?status=queued", "")
	if err := json.Unmarshal(body, &listing); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || len(listing.Jobs) != 0 {
		t.Fatalf("?status=queued: %d %s", resp.StatusCode, body)
	}

	// An unknown status value is a client error, not an empty result.
	resp, body = doJSON(t, http.MethodGet, srv.URL+"/v1/jobs?status=exploded", "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("?status=exploded: %d %s, want 400", resp.StatusCode, body)
	}
}

func TestHTTPDeleteTerminalJobConflicts(t *testing.T) {
	_, srv := newTestServer(t, Options{Workers: 1})

	spec := `{"kind":"explore","explore":{"alg":"central","mode":"exhaustive"}}`
	resp, body := doJSON(t, http.MethodPost, srv.URL+"/v1/jobs", spec)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST: %d %s", resp.StatusCode, body)
	}
	var view JobView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	done := pollDone(t, srv.URL, view.ID)
	if done.Status != StatusDone {
		t.Fatalf("job ended %s", done.Status)
	}

	// DELETE on the finished job: 409, and the body is the final view so
	// the caller learns the true state in one round trip.
	resp, body = doJSON(t, http.MethodDelete, srv.URL+"/v1/jobs/"+view.ID, "")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("DELETE terminal: %d %s, want 409", resp.StatusCode, body)
	}
	var final JobView
	if err := json.Unmarshal(body, &final); err != nil {
		t.Fatalf("409 body is not a job view: %v (%s)", err, body)
	}
	if final.ID != view.ID || final.Status != StatusDone || len(final.Result) == 0 {
		t.Fatalf("409 view = %s", body)
	}

	// The conflict must not have disturbed the job.
	if again := pollDone(t, srv.URL, view.ID); again.Status != StatusDone {
		t.Fatalf("job flipped to %s after conflicting DELETE", again.Status)
	}
}

func TestHTTPErrorPaths(t *testing.T) {
	_, srv := newTestServer(t, Options{Workers: 1})

	cases := []struct {
		name, method, path, body string
		want                     int
	}{
		{"bad json", http.MethodPost, "/v1/jobs", `{"kind":`, http.StatusBadRequest},
		{"unknown field", http.MethodPost, "/v1/jobs", `{"kind":"report","frobnicate":1}`, http.StatusBadRequest},
		{"invalid spec", http.MethodPost, "/v1/jobs", `{"kind":"bogus"}`, http.StatusBadRequest},
		{"unknown job", http.MethodGet, "/v1/jobs/deadbeef", "", http.StatusNotFound},
		{"unknown job events", http.MethodGet, "/v1/jobs/deadbeef/events", "", http.StatusNotFound},
		{"unknown job cancel", http.MethodDelete, "/v1/jobs/deadbeef", "", http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := doJSON(t, tc.method, srv.URL+tc.path, tc.body)
			if resp.StatusCode != tc.want {
				t.Fatalf("%s %s: %d %s, want %d", tc.method, tc.path, resp.StatusCode, body, tc.want)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
				t.Fatalf("error body %q is not {\"error\": ...}", body)
			}
		})
	}
}

func TestHTTPHealthz(t *testing.T) {
	_, srv := newTestServer(t, Options{Workers: 1})
	resp, body := doJSON(t, http.MethodGet, srv.URL+"/healthz", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("healthz body = %s", body)
	}
}

func TestHTTPQueueFullMaps503(t *testing.T) {
	release := make(chan struct{})
	running := make(chan struct{})
	var once bool
	swapRunSpec(t, func(ctx context.Context, spec *Spec, p *Progress, parallel int) ([]byte, error) {
		if !once {
			once = true
			close(running)
		}
		select {
		case <-release:
			return []byte(`{"ok":true}`), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	_, srv := newTestServer(t, Options{Workers: 1, QueueDepth: 1})
	defer close(release)

	for i := 2; i <= 3; i++ {
		spec := fmt.Sprintf(`{"kind":"explore","explore":{"n":%d,"mode":"exhaustive"}}`, i)
		resp, body := doJSON(t, http.MethodPost, srv.URL+"/v1/jobs", spec)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("POST %d: %d %s", i, resp.StatusCode, body)
		}
		if i == 2 {
			<-running
		}
	}
	resp, body := doJSON(t, http.MethodPost, srv.URL+"/v1/jobs", `{"kind":"explore","explore":{"n":4,"mode":"exhaustive"}}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow POST: %d %s, want 503", resp.StatusCode, body)
	}
}

// TestHTTPEventsResumeLastEventID: a client reconnecting with
// Last-Event-ID is served only events newer than that sequence number —
// no duplicated frames, same terminal status event.
func TestHTTPEventsResumeLastEventID(t *testing.T) {
	emitted := make(chan struct{})
	release := make(chan struct{})
	swapRunSpec(t, func(ctx context.Context, spec *Spec, p *Progress, parallel int) ([]byte, error) {
		p.Set("phase-a", 1, 3) // seq 2 (seq 1 is "queued")
		close(emitted)
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		p.Set("phase-b", 2, 3) // seq 3
		return []byte(`{"ok":true}`), nil
	})
	_, srv := newTestServer(t, Options{Workers: 1})

	resp, body := doJSON(t, http.MethodPost, srv.URL+"/v1/jobs", `{"kind":"explore","explore":{"mode":"fuzz"}}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST: %d %s", resp.StatusCode, body)
	}
	var view JobView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	<-emitted

	// First connection: catch the snapshot (seq ≥ 2), then "disconnect".
	eresp, err := http.Get(srv.URL + "/v1/jobs/" + view.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(eresp.Body)
	lastSeen := -1
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "id: ") {
			lastSeen, err = strconv.Atoi(strings.TrimPrefix(line, "id: "))
			if err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	eresp.Body.Close()
	if lastSeen < 2 {
		t.Fatalf("first connection saw id %d, want the phase-a snapshot (≥ 2)", lastSeen)
	}

	close(release)
	pollDone(t, srv.URL, view.ID)

	// Reconnect with Last-Event-ID: every frame must be strictly newer.
	req, err := http.NewRequest(http.MethodGet, srv.URL+"/v1/jobs/"+view.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", strconv.Itoa(lastSeen))
	eresp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer eresp2.Body.Close()
	frames := readSSE(t, bufio.NewScanner(eresp2.Body))
	if len(frames) == 0 {
		t.Fatal("resumed stream had no frames")
	}
	for i, fr := range frames {
		if fr.ID <= lastSeen {
			t.Fatalf("resumed frame %d has id %d ≤ Last-Event-ID %d: %+v", i, fr.ID, lastSeen, frames)
		}
	}
	if last := frames[len(frames)-1]; last.Event != "status" {
		t.Fatalf("resumed stream final event = %q, want status", last.Event)
	}

	// The ?lastEventId= query spelling behaves identically (for clients
	// that cannot set headers).
	eresp3, err := http.Get(srv.URL + "/v1/jobs/" + view.ID + "/events?lastEventId=" + strconv.Itoa(lastSeen))
	if err != nil {
		t.Fatal(err)
	}
	defer eresp3.Body.Close()
	for i, fr := range readSSE(t, bufio.NewScanner(eresp3.Body)) {
		if fr.ID <= lastSeen {
			t.Fatalf("query-resumed frame %d has id %d ≤ %d", i, fr.ID, lastSeen)
		}
	}
}

// TestHTTPEventsHeartbeat: an idle stream carries comment heartbeats so
// proxies do not reap the connection.
func TestHTTPEventsHeartbeat(t *testing.T) {
	orig := SSEHeartbeat
	SSEHeartbeat = 20 * time.Millisecond
	t.Cleanup(func() { SSEHeartbeat = orig })

	release := make(chan struct{})
	swapRunSpec(t, func(ctx context.Context, spec *Spec, p *Progress, parallel int) ([]byte, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return []byte(`{}`), nil
	})
	_, srv := newTestServer(t, Options{Workers: 1})
	defer close(release)

	resp, body := doJSON(t, http.MethodPost, srv.URL+"/v1/jobs", `{"kind":"explore","explore":{"mode":"fuzz"}}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST: %d %s", resp.StatusCode, body)
	}
	var view JobView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	eresp, err := http.Get(srv.URL + "/v1/jobs/" + view.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	sc := bufio.NewScanner(eresp.Body)
	deadline := time.Now().Add(10 * time.Second)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), ":") {
			return // heartbeat observed
		}
		if time.Now().After(deadline) {
			break
		}
	}
	t.Fatalf("no heartbeat on an idle stream: %v", sc.Err())
}

// TestHTTPTenantSubmitAndQueueCap429 exercises the full tenant path over
// HTTP: the middleware authenticates the key, the handler submits as
// that tenant, and a submission past the tenant's queued cap answers 429
// with Retry-After.
func TestHTTPTenantSubmitAndQueueCap429(t *testing.T) {
	reg, err := tenant.New(tenant.Config{Tenants: []tenant.Tenant{
		{Name: "acme", Key: "k-acme", Limits: tenant.Limits{MaxQueued: 1}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	swapRunSpec(t, func(ctx context.Context, spec *Spec, p *Progress, parallel int) ([]byte, error) {
		started <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return []byte(`{}`), nil
	})
	s := newTestScheduler(t, Options{Workers: 1, Tenants: reg})
	srv := httptest.NewServer(tenant.Middleware(NewHandler(s), tenant.MiddlewareOptions{Registry: reg}))
	t.Cleanup(srv.Close)
	defer close(release)

	post := func(seed int, key string) (*http.Response, []byte) {
		t.Helper()
		spec := fmt.Sprintf(`{"kind":"explore","explore":{"mode":"fuzz","seed":%d}}`, seed)
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/jobs", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		if key != "" {
			req.Header.Set("Authorization", "Bearer "+key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp, buf.Bytes()
	}

	// No key: the closed registry rejects before the handler runs.
	if resp, _ := post(1, ""); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("anonymous POST = %d, want 401", resp.StatusCode)
	}
	// Authenticated submissions run as the keyed tenant.
	resp, body := post(1, "k-acme")
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST 1: %d %s", resp.StatusCode, body)
	}
	var view JobView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	if view.Tenant != "acme" {
		t.Fatalf("job tenant = %q, want acme", view.Tenant)
	}
	<-started // seed 1 occupies the worker
	if resp, body := post(2, "k-acme"); resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST 2: %d %s", resp.StatusCode, body) // queued, at the cap
	}
	resp, body = post(3, "k-acme")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap POST = %d %s, want 429", resp.StatusCode, body)
	}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || secs < 1 {
		t.Fatalf("429 Retry-After = %q, want a positive whole-second count", resp.Header.Get("Retry-After"))
	}
}
