package jobs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, opts Options) (*Scheduler, *httptest.Server) {
	t.Helper()
	s := newTestScheduler(t, opts)
	srv := httptest.NewServer(NewHandler(s))
	t.Cleanup(srv.Close)
	return s, srv
}

func doJSON(t *testing.T, method, url string, body string) (*http.Response, []byte) {
	t.Helper()
	var rd *bytes.Reader
	if body != "" {
		rd = bytes.NewReader([]byte(body))
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func pollDone(t *testing.T, base, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, body := doJSON(t, http.MethodGet, base+"/v1/jobs/"+id, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET job: %d %s", resp.StatusCode, body)
		}
		var view JobView
		if err := json.Unmarshal(body, &view); err != nil {
			t.Fatalf("decoding view: %v (%s)", err, body)
		}
		if view.Status.Terminal() {
			return view
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return JobView{}
}

// TestHTTPIdempotentSubmitAndCachedResult is the acceptance-criteria test:
// submitting the same job spec twice returns the same job ID and a
// byte-identical cached result.
func TestHTTPIdempotentSubmitAndCachedResult(t *testing.T) {
	_, srv := newTestServer(t, Options{Workers: 2})
	spec := `{"kind":"explore","explore":{"alg":"central","mode":"exhaustive"}}`

	resp, body := doJSON(t, http.MethodPost, srv.URL+"/v1/jobs", spec)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("first POST: %d %s", resp.StatusCode, body)
	}
	var first JobView
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if len(first.ID) != 64 {
		t.Fatalf("job ID %q is not a sha256 digest", first.ID)
	}
	done := pollDone(t, srv.URL, first.ID)
	if done.Status != StatusDone {
		t.Fatalf("job ended %s (%s)", done.Status, done.Error)
	}
	if len(done.Result) == 0 {
		t.Fatal("done view has no result")
	}

	// Same spec, spelled with defaults explicit and fields reordered.
	equivalent := `{"explore":{"mode":"exhaustive","alg":"central","object":"fetch-increment","n":2,"opsPerProc":1},"kind":"explore"}`
	resp, body = doJSON(t, http.MethodPost, srv.URL+"/v1/jobs", equivalent)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second POST: %d %s (want 200 — idempotent resubmission)", resp.StatusCode, body)
	}
	var second JobView
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if second.ID != first.ID {
		t.Fatalf("equivalent specs got different IDs: %s vs %s", second.ID, first.ID)
	}
	if !second.Cached {
		t.Fatal("resubmission should be served as cached")
	}
	if !bytes.Equal(second.Result, done.Result) {
		t.Fatalf("cached result differs:\n  first:  %s\n  second: %s", done.Result, second.Result)
	}

	// Cache stats are exposed.
	resp, body = doJSON(t, http.MethodGet, srv.URL+"/v1/cache/stats", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cache stats: %d", resp.StatusCode)
	}
	var st CacheStats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Entries != 1 {
		t.Fatalf("cache entries = %d, want 1", st.Entries)
	}
}

func TestHTTPEventsStream(t *testing.T) {
	_, srv := newTestServer(t, Options{Workers: 1})
	spec := `{"kind":"explore","explore":{"alg":"central","mode":"exhaustive"}}`
	resp, body := doJSON(t, http.MethodPost, srv.URL+"/v1/jobs", spec)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST: %d %s", resp.StatusCode, body)
	}
	var view JobView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}

	// Subscribe immediately; the stream must end with the terminal status
	// line regardless of how many intermediate events we catch.
	eresp, err := http.Get(srv.URL + "/v1/jobs/" + view.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	if ct := eresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events content-type = %q", ct)
	}
	var lines []string
	sc := bufio.NewScanner(eresp.Body)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) < 2 {
		t.Fatalf("stream had %d lines, want snapshot + terminal at least: %v", len(lines), lines)
	}
	// Every line is valid JSON; Seq never decreases.
	lastSeq := -1
	for i, line := range lines {
		var ev struct {
			Seq    int    `json:"seq"`
			Status string `json:"status"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d %q: %v", i, line, err)
		}
		if ev.Seq < lastSeq {
			t.Fatalf("seq regressed at line %d: %v", i, lines)
		}
		lastSeq = ev.Seq
	}
	var terminal struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &terminal); err != nil {
		t.Fatal(err)
	}
	if terminal.Status != string(StatusDone) {
		t.Fatalf("terminal line status = %q, want done: %v", terminal.Status, lines)
	}
}

func TestHTTPCancelJob(t *testing.T) {
	started := make(chan struct{})
	swapRunSpec(t, func(ctx context.Context, spec *Spec, p *Progress, parallel int) ([]byte, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	s, srv := newTestServer(t, Options{Workers: 1})

	spec := `{"kind":"explore","explore":{"mode":"exhaustive"}}`
	resp, body := doJSON(t, http.MethodPost, srv.URL+"/v1/jobs", spec)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST: %d %s", resp.StatusCode, body)
	}
	var view JobView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	<-started

	resp, body = doJSON(t, http.MethodDelete, srv.URL+"/v1/jobs/"+view.ID, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: %d %s", resp.StatusCode, body)
	}
	final := pollDone(t, srv.URL, view.ID)
	if final.Status != StatusCanceled {
		t.Fatalf("cancelled job = %s, want canceled", final.Status)
	}
	if len(final.Result) != 0 {
		t.Fatal("cancelled job carries a result")
	}
	if _, ok := s.Cache().Get(view.ID); ok {
		t.Fatal("cancelled job poisoned the cache")
	}
}

func TestHTTPListJobs(t *testing.T) {
	_, srv := newTestServer(t, Options{Workers: 2})

	// Before any submission the listing is present but empty.
	resp, body := doJSON(t, http.MethodGet, srv.URL+"/v1/jobs", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/jobs: %d %s", resp.StatusCode, body)
	}
	var listing struct {
		Jobs []JobView `json:"jobs"`
	}
	if err := json.Unmarshal(body, &listing); err != nil {
		t.Fatalf("decoding listing: %v (%s)", err, body)
	}
	if listing.Jobs == nil || len(listing.Jobs) != 0 {
		t.Fatalf("empty listing = %s, want {\"jobs\":[]}", body)
	}

	// Two distinct jobs; wait until both are terminal.
	ids := make([]string, 0, 2)
	for _, alg := range []string{"central", "herlihy"} {
		spec := fmt.Sprintf(`{"kind":"explore","explore":{"alg":%q,"mode":"exhaustive"}}`, alg)
		resp, body := doJSON(t, http.MethodPost, srv.URL+"/v1/jobs", spec)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("POST: %d %s", resp.StatusCode, body)
		}
		var view JobView
		if err := json.Unmarshal(body, &view); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, view.ID)
	}
	for _, id := range ids {
		if done := pollDone(t, srv.URL, id); done.Status != StatusDone {
			t.Fatalf("job %s ended %s", id, done.Status)
		}
	}

	resp, body = doJSON(t, http.MethodGet, srv.URL+"/v1/jobs", "")
	if err := json.Unmarshal(body, &listing); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || len(listing.Jobs) != 2 {
		t.Fatalf("listing after 2 jobs: %d %s", resp.StatusCode, body)
	}
	// Oldest submission first, results elided.
	if listing.Jobs[0].ID != ids[0] && listing.Jobs[0].Created.After(listing.Jobs[1].Created) {
		t.Fatalf("listing out of order: %s", body)
	}
	for _, v := range listing.Jobs {
		if len(v.Result) != 0 {
			t.Fatalf("listing embeds a result payload: %s", body)
		}
		if v.Status != StatusDone {
			t.Fatalf("job %s listed as %s, want done", v.ID, v.Status)
		}
	}

	// Status filtering: done matches both, queued matches none.
	resp, body = doJSON(t, http.MethodGet, srv.URL+"/v1/jobs?status=done", "")
	if err := json.Unmarshal(body, &listing); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || len(listing.Jobs) != 2 {
		t.Fatalf("?status=done: %d %s", resp.StatusCode, body)
	}
	resp, body = doJSON(t, http.MethodGet, srv.URL+"/v1/jobs?status=queued", "")
	if err := json.Unmarshal(body, &listing); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || len(listing.Jobs) != 0 {
		t.Fatalf("?status=queued: %d %s", resp.StatusCode, body)
	}

	// An unknown status value is a client error, not an empty result.
	resp, body = doJSON(t, http.MethodGet, srv.URL+"/v1/jobs?status=exploded", "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("?status=exploded: %d %s, want 400", resp.StatusCode, body)
	}
}

func TestHTTPDeleteTerminalJobConflicts(t *testing.T) {
	_, srv := newTestServer(t, Options{Workers: 1})

	spec := `{"kind":"explore","explore":{"alg":"central","mode":"exhaustive"}}`
	resp, body := doJSON(t, http.MethodPost, srv.URL+"/v1/jobs", spec)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST: %d %s", resp.StatusCode, body)
	}
	var view JobView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	done := pollDone(t, srv.URL, view.ID)
	if done.Status != StatusDone {
		t.Fatalf("job ended %s", done.Status)
	}

	// DELETE on the finished job: 409, and the body is the final view so
	// the caller learns the true state in one round trip.
	resp, body = doJSON(t, http.MethodDelete, srv.URL+"/v1/jobs/"+view.ID, "")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("DELETE terminal: %d %s, want 409", resp.StatusCode, body)
	}
	var final JobView
	if err := json.Unmarshal(body, &final); err != nil {
		t.Fatalf("409 body is not a job view: %v (%s)", err, body)
	}
	if final.ID != view.ID || final.Status != StatusDone || len(final.Result) == 0 {
		t.Fatalf("409 view = %s", body)
	}

	// The conflict must not have disturbed the job.
	if again := pollDone(t, srv.URL, view.ID); again.Status != StatusDone {
		t.Fatalf("job flipped to %s after conflicting DELETE", again.Status)
	}
}

func TestHTTPErrorPaths(t *testing.T) {
	_, srv := newTestServer(t, Options{Workers: 1})

	cases := []struct {
		name, method, path, body string
		want                     int
	}{
		{"bad json", http.MethodPost, "/v1/jobs", `{"kind":`, http.StatusBadRequest},
		{"unknown field", http.MethodPost, "/v1/jobs", `{"kind":"report","frobnicate":1}`, http.StatusBadRequest},
		{"invalid spec", http.MethodPost, "/v1/jobs", `{"kind":"bogus"}`, http.StatusBadRequest},
		{"unknown job", http.MethodGet, "/v1/jobs/deadbeef", "", http.StatusNotFound},
		{"unknown job events", http.MethodGet, "/v1/jobs/deadbeef/events", "", http.StatusNotFound},
		{"unknown job cancel", http.MethodDelete, "/v1/jobs/deadbeef", "", http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := doJSON(t, tc.method, srv.URL+tc.path, tc.body)
			if resp.StatusCode != tc.want {
				t.Fatalf("%s %s: %d %s, want %d", tc.method, tc.path, resp.StatusCode, body, tc.want)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
				t.Fatalf("error body %q is not {\"error\": ...}", body)
			}
		})
	}
}

func TestHTTPHealthz(t *testing.T) {
	_, srv := newTestServer(t, Options{Workers: 1})
	resp, body := doJSON(t, http.MethodGet, srv.URL+"/healthz", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("healthz body = %s", body)
	}
}

func TestHTTPQueueFullMaps503(t *testing.T) {
	release := make(chan struct{})
	running := make(chan struct{})
	var once bool
	swapRunSpec(t, func(ctx context.Context, spec *Spec, p *Progress, parallel int) ([]byte, error) {
		if !once {
			once = true
			close(running)
		}
		select {
		case <-release:
			return []byte(`{"ok":true}`), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	_, srv := newTestServer(t, Options{Workers: 1, QueueDepth: 1})
	defer close(release)

	for i := 2; i <= 3; i++ {
		spec := fmt.Sprintf(`{"kind":"explore","explore":{"n":%d,"mode":"exhaustive"}}`, i)
		resp, body := doJSON(t, http.MethodPost, srv.URL+"/v1/jobs", spec)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("POST %d: %d %s", i, resp.StatusCode, body)
		}
		if i == 2 {
			<-running
		}
	}
	resp, body := doJSON(t, http.MethodPost, srv.URL+"/v1/jobs", `{"kind":"explore","explore":{"n":4,"mode":"exhaustive"}}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow POST: %d %s, want 503", resp.StatusCode, body)
	}
}
