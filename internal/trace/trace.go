// Package trace serializes adversary runs into a stable, human-readable
// form. Traces serve three purposes: golden tests (a committed trace
// pins the adversary's exact schedule, so an accidental change to phase
// ordering or UP bookkeeping shows up as a diff), determinism checks
// (identical inputs must yield identical traces), and debugging (the diff
// of two traces localizes the first divergence between runs).
package trace

import (
	"encoding/json"
	"fmt"
	"sort"

	"jayanti98/internal/core"
)

// Trace is the serializable form of an adversary run.
type Trace struct {
	Algorithm string       `json:"algorithm"`
	N         int          `json:"n"`
	Rounds    []RoundTrace `json:"rounds"`
	Returns   []string     `json:"returns"` // "p3 -> 1", sorted by pid
	Steps     []int        `json:"steps"`   // per-pid shared-access counts
}

// RoundTrace is one round of the run.
type RoundTrace struct {
	R        int      `json:"r"`
	Returned []string `json:"returned,omitempty"`
	Steps    []string `json:"steps,omitempty"` // rendered StepRecords, in order
	Sigma    []int    `json:"sigma,omitempty"` // the secretive move schedule
}

// FromAllRun captures a run.
func FromAllRun(run *core.AllRun) *Trace {
	t := &Trace{
		Algorithm: run.Alg.Name(),
		N:         run.N,
		Steps:     make([]int, run.N),
	}
	for pid := 0; pid < run.N; pid++ {
		t.Steps[pid] = run.Steps[pid]
	}
	pids := make([]int, 0, len(run.Returns))
	for pid := range run.Returns {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		t.Returns = append(t.Returns, fmt.Sprintf("p%d -> %v", pid, run.Returns[pid]))
	}
	for _, round := range run.Rounds {
		rt := RoundTrace{R: round.R, Sigma: round.Sigma}
		retPids := make([]int, 0, len(round.Returned))
		for pid := range round.Returned {
			retPids = append(retPids, pid)
		}
		sort.Ints(retPids)
		for _, pid := range retPids {
			rt.Returned = append(rt.Returned, fmt.Sprintf("p%d -> %v", pid, round.Returned[pid]))
		}
		for _, s := range round.Steps {
			rt.Steps = append(rt.Steps, s.String())
		}
		t.Rounds = append(t.Rounds, rt)
	}
	return t
}

// MarshalIndent renders the trace as stable, indented JSON.
func (t *Trace) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(t, "", "  ")
}

// Parse decodes a trace previously produced by MarshalIndent.
func Parse(data []byte) (*Trace, error) {
	var t Trace
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return &t, nil
}

// Diff returns a description of the first difference between two traces,
// or "" if they are identical. It compares metadata, then rounds
// step-by-step, so the result pinpoints the first diverging event.
func Diff(a, b *Trace) string {
	switch {
	case a.Algorithm != b.Algorithm:
		return fmt.Sprintf("algorithm: %q vs %q", a.Algorithm, b.Algorithm)
	case a.N != b.N:
		return fmt.Sprintf("n: %d vs %d", a.N, b.N)
	case len(a.Rounds) != len(b.Rounds):
		return fmt.Sprintf("rounds: %d vs %d", len(a.Rounds), len(b.Rounds))
	}
	for i := range a.Rounds {
		ra, rb := a.Rounds[i], b.Rounds[i]
		if d := diffStrings(fmt.Sprintf("round %d steps", ra.R), ra.Steps, rb.Steps); d != "" {
			return d
		}
		if d := diffStrings(fmt.Sprintf("round %d returns", ra.R), ra.Returned, rb.Returned); d != "" {
			return d
		}
	}
	if d := diffStrings("final returns", a.Returns, b.Returns); d != "" {
		return d
	}
	for pid := range a.Steps {
		if a.Steps[pid] != b.Steps[pid] {
			return fmt.Sprintf("steps of p%d: %d vs %d", pid, a.Steps[pid], b.Steps[pid])
		}
	}
	return ""
}

func diffStrings(label string, a, b []string) string {
	if len(a) != len(b) {
		return fmt.Sprintf("%s: %d vs %d entries", label, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Sprintf("%s[%d]: %q vs %q", label, i, a[i], b[i])
		}
	}
	return ""
}

// DiffLines reports the first difference between two rendered event logs,
// or "" if they are identical. It is the building block Diff uses per
// round, exported for other record-by-record comparisons — in particular
// the exploration harness's bit-for-bit replay verification (package
// explore), which compares the step logs of an original failing run and
// its replay.
func DiffLines(label string, a, b []string) string {
	return diffStrings(label, a, b)
}
