package trace

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"jayanti98/internal/algos/tas"
	"jayanti98/internal/core"
	"jayanti98/internal/lowerbound"
	"jayanti98/internal/machine"
	"jayanti98/internal/wakeup"
)

// Regenerate the golden files after an *intentional* schedule change with:
//
//	go test ./internal/trace/ -run Golden -update
var updateGolden = flag.Bool("update", false, "rewrite the golden trace files")

// TestGoldenTraces pins the adversary's exact schedule for every wakeup
// algorithm at small n: a committed canonical trace per algorithm. Any
// accidental change to phase ordering, UP bookkeeping, or the step
// renderer shows up as a diff naming the first divergent round.
//
// Every case runs twice, once on each execution engine: the wakeup
// algorithms all carry compiled chunks, so the bytecode VM must reproduce
// the goroutine interpreter's trace byte for byte. (-update regenerates
// from the goroutine engine and then checks the VM against the result.)
func TestGoldenTraces(t *testing.T) {
	cases := []struct {
		alg  machine.Algorithm
		n    int
		seed int64
		// ta overrides the default parity-based toss helper. The TAS cases
		// need it: (pid+j+seed)%2 gives same-parity pids identical toss
		// streams, which livelocks a TV match between them forever.
		ta   machine.TossAssignment
		file string
	}{
		{wakeup.SetRegister(), 3, 0, nil, "set_register_n3.json"},
		{wakeup.SetRegister(), 4, 3, nil, "set_register_n4_seed3.json"},
		{wakeup.DoubleRegister(), 4, 0, nil, "double_register_n4.json"},
		{wakeup.MoveCourier(), 4, 0, nil, "move_courier_n4.json"},
		// The zoo's randomized TAS protocols under the same adversary, with
		// hashed tosses (the protocols are randomized, not wait-free, so
		// degenerate toss streams livelock them).
		{tas.TrompVitanyi(), 2, 0, lowerbound.HashTosses(3), "tas_tv_n2_seed3.json"},
		{tas.Tournament(), 4, 0, lowerbound.HashTosses(3), "tas_tournament_n4_seed3.json"},
	}
	engines := []machine.Engine{machine.EngineGoroutine, machine.EngineVM}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.file, func(t *testing.T) {
			golden := filepath.Join("testdata", tc.file)
			if *updateGolden {
				prev := machine.SetDefaultEngine(machine.EngineGoroutine)
				got := captureCase(t, tc.alg, tc.n, tc.seed, tc.ta)
				machine.SetDefaultEngine(prev)
				data, err := got.MarshalIndent()
				if err != nil {
					t.Fatal(err)
				}
				data = append(data, '\n')
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, data, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with -update): %v", err)
			}
			wantTrace, err := Parse(want)
			if err != nil {
				t.Fatal(err)
			}
			for _, eng := range engines {
				t.Run(eng.String(), func(t *testing.T) {
					prev := machine.SetDefaultEngine(eng)
					defer machine.SetDefaultEngine(prev)
					got := captureCase(t, tc.alg, tc.n, tc.seed, tc.ta)
					data, err := got.MarshalIndent()
					if err != nil {
						t.Fatal(err)
					}
					data = append(data, '\n')
					// Semantic diff first: it pinpoints the first divergent round.
					if d := Diff(wantTrace, got); d != "" {
						t.Fatalf("schedule changed vs golden (regenerate with -update if intentional): %s", d)
					}
					// Then bytes, so even renderer-invisible churn is caught.
					if string(normalize(want)) != string(normalize(data)) {
						t.Fatalf("%s [%s]: serialized trace differs from golden despite semantic equality", tc.file, eng)
					}
				})
			}
		})
	}
}

// normalize strips a single trailing newline so goldens written before
// the trailing-newline convention still compare equal.
func normalize(b []byte) []byte {
	for len(b) > 0 && b[len(b)-1] == '\n' {
		b = b[:len(b)-1]
	}
	return b
}

// captureCase runs one golden case: with an explicit toss assignment when
// the case carries one, else through the shared parity-based capture.
func captureCase(t *testing.T, alg machine.Algorithm, n int, seed int64, ta machine.TossAssignment) *Trace {
	t.Helper()
	if ta == nil {
		return capture(t, alg, n, seed)
	}
	run, err := core.RunAll(alg, n, ta, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return FromAllRun(run)
}
