package trace

import (
	"testing"

	"jayanti98/internal/core"
	"jayanti98/internal/machine"
	"jayanti98/internal/wakeup"
)

func capture(t *testing.T, alg machine.Algorithm, n int, seed int64) *Trace {
	t.Helper()
	ta := machine.ZeroTosses
	if seed != 0 {
		ta = func(pid, j int) int64 { return (int64(pid) + int64(j) + seed) % 2 }
	}
	run, err := core.RunAll(alg, n, ta, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return FromAllRun(run)
}

func TestDeterministicReplay(t *testing.T) {
	// The adversary is a deterministic function of (algorithm, n, A):
	// two executions must produce byte-identical traces.
	algs := []machine.Algorithm{
		wakeup.SetRegister(),
		wakeup.MoveCourier(),
		wakeup.DoubleRegister(),
	}
	for _, alg := range algs {
		t1 := capture(t, alg, 6, 3)
		t2 := capture(t, alg, 6, 3)
		if d := Diff(t1, t2); d != "" {
			t.Fatalf("%s: runs diverged: %s", alg.Name(), d)
		}
		b1, err := t1.MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		b2, _ := t2.MarshalIndent()
		if string(b1) != string(b2) {
			t.Fatalf("%s: serialized traces differ", alg.Name())
		}
	}
}

func TestDiffPinpointsDivergence(t *testing.T) {
	t1 := capture(t, wakeup.SetRegister(), 4, 0)
	t2 := capture(t, wakeup.SetRegister(), 4, 0)
	if d := Diff(t1, t2); d != "" {
		t.Fatalf("identical runs diff: %s", d)
	}
	t2.Rounds[1].Steps[0] = "p9: LL(R9) -> (true, 9)"
	if d := Diff(t1, t2); d == "" {
		t.Fatal("diff missed a step change")
	}
	t3 := capture(t, wakeup.SetRegister(), 5, 0)
	if d := Diff(t1, t3); d == "" {
		t.Fatal("diff missed n change")
	}
}

func TestRoundTripJSON(t *testing.T) {
	t1 := capture(t, wakeup.MoveCourier(), 4, 0)
	data, err := t1.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if d := Diff(t1, t2); d != "" {
		t.Fatalf("round trip changed trace: %s", d)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse([]byte("{")); err == nil {
		t.Fatal("Parse must reject malformed JSON")
	}
}
