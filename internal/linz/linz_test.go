package linz

import (
	"sync"
	"testing"

	"jayanti98/internal/llsc"
	"jayanti98/internal/objtype"
	"jayanti98/internal/universal"
)

func TestSequentialHistoryLinearizable(t *testing.T) {
	typ := objtype.NewFetchIncrement(8)
	h := NewHistory(2)
	h.Add(0, objtype.Op{Name: objtype.OpFetchIncrement}, "0", 1, 2)
	h.Add(1, objtype.Op{Name: objtype.OpFetchIncrement}, "1", 3, 4)
	res, err := Check(typ, h)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Linearizable {
		t.Fatal("sequential history must linearize")
	}
	if len(res.Order) != 2 || res.Order[0] != 0 {
		t.Fatalf("witness order = %v", res.Order)
	}
}

func TestRealTimeOrderViolationDetected(t *testing.T) {
	typ := objtype.NewFetchIncrement(8)
	h := NewHistory(2)
	// p0 completes first but observed the SECOND ticket: impossible.
	h.Add(0, objtype.Op{Name: objtype.OpFetchIncrement}, "1", 1, 2)
	h.Add(1, objtype.Op{Name: objtype.OpFetchIncrement}, "0", 3, 4)
	res, err := Check(typ, h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Linearizable {
		t.Fatal("real-time violation must be rejected")
	}
}

func TestConcurrentOverlapAllowsEitherOrder(t *testing.T) {
	typ := objtype.NewFetchIncrement(8)
	h := NewHistory(2)
	// Overlapping ops: tickets may land either way.
	h.Add(0, objtype.Op{Name: objtype.OpFetchIncrement}, "1", 1, 10)
	h.Add(1, objtype.Op{Name: objtype.OpFetchIncrement}, "0", 2, 9)
	res, err := Check(typ, h)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Linearizable {
		t.Fatal("overlapping ops may linearize in either order")
	}
}

func TestDuplicateTicketNotLinearizable(t *testing.T) {
	typ := objtype.NewFetchIncrement(8)
	h := NewHistory(2)
	h.Add(0, objtype.Op{Name: objtype.OpFetchIncrement}, "0", 1, 10)
	h.Add(1, objtype.Op{Name: objtype.OpFetchIncrement}, "0", 2, 9)
	res, err := Check(typ, h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Linearizable {
		t.Fatal("two identical fetch&increment responses cannot linearize")
	}
}

func TestQueueHistoryFIFOChecked(t *testing.T) {
	typ := objtype.NewEmptyQueue()
	h := NewHistory(2)
	h.Add(0, objtype.Op{Name: objtype.OpEnqueue, Arg: "a"}, nil, 1, 2)
	h.Add(0, objtype.Op{Name: objtype.OpEnqueue, Arg: "b"}, nil, 3, 4)
	h.Add(1, objtype.Op{Name: objtype.OpDequeue}, "a", 5, 6)
	res, err := Check(typ, h)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Linearizable {
		t.Fatal("FIFO history must linearize")
	}

	// Dequeuing "b" first while both enqueues strictly precede it is a
	// FIFO violation.
	h2 := NewHistory(2)
	h2.Add(0, objtype.Op{Name: objtype.OpEnqueue, Arg: "a"}, nil, 1, 2)
	h2.Add(0, objtype.Op{Name: objtype.OpEnqueue, Arg: "b"}, nil, 3, 4)
	h2.Add(1, objtype.Op{Name: objtype.OpDequeue}, "b", 5, 6)
	res, err = Check(typ, h2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Linearizable {
		t.Fatal("LIFO-looking dequeue must be rejected for a queue")
	}
}

func TestValidateRejectsBadHistories(t *testing.T) {
	h := NewHistory(1)
	h.Add(0, objtype.Op{Name: objtype.OpRead}, nil, 5, 5)
	if err := h.Validate(); err == nil {
		t.Fatal("empty interval must be rejected")
	}
	h2 := NewHistory(1)
	h2.Add(0, objtype.Op{Name: objtype.OpRead}, nil, 1, 10)
	h2.Add(0, objtype.Op{Name: objtype.OpRead}, nil, 5, 12)
	if err := h2.Validate(); err == nil {
		t.Fatal("overlapping same-process ops must be rejected")
	}
	if _, err := Check(objtype.NewCAS(nil), h2); err == nil {
		t.Fatal("Check must propagate validation errors")
	}
}

func TestEmptyHistory(t *testing.T) {
	res, err := Check(objtype.NewEmptyQueue(), NewHistory(1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Linearizable || len(res.Order) != 0 {
		t.Fatalf("empty history: %+v", res)
	}
}

// runConcurrent drives k ops per process through obj on the llsc backend
// and records the history.
func runConcurrent(t *testing.T, obj universal.Construction, n, k int, op func(pid, i int) objtype.Op) *History {
	t.Helper()
	mem := llsc.New(n)
	rec := NewRecorder(n)
	var wg sync.WaitGroup
	wg.Add(n)
	for pid := 0; pid < n; pid++ {
		go func(pid int) {
			defer wg.Done()
			h := mem.Handle(pid)
			for i := 0; i < k; i++ {
				o := op(pid, i)
				inv := rec.Begin()
				resp := obj.Invoke(h, o)
				rec.End(pid, o, resp, inv)
			}
		}(pid)
	}
	wg.Wait()
	return rec.History()
}

// TestConstructionsLinearizableOnLLSC is the end-to-end payoff: concurrent
// histories produced by every universal construction on the concurrent
// backend pass the checker for both a counter and a queue.
func TestConstructionsLinearizableOnLLSC(t *testing.T) {
	const n, k = 4, 3
	counter := objtype.NewFetchIncrement(16)
	queue := objtype.NewEmptyQueue()
	for _, mk := range []func(objtype.Type) universal.Construction{
		func(typ objtype.Type) universal.Construction { return universal.NewGroupUpdate(typ, n, 0) },
		func(typ objtype.Type) universal.Construction { return universal.NewHerlihy(typ, n, 0) },
		func(typ objtype.Type) universal.Construction { return universal.NewCentral(typ, n, 0) },
	} {
		obj := mk(counter)
		h := runConcurrent(t, obj, n, k, func(pid, i int) objtype.Op {
			return objtype.Op{Name: objtype.OpFetchIncrement}
		})
		res, err := Check(counter, h)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Linearizable {
			t.Fatalf("%s counter history not linearizable (%d ops)", obj.Name(), h.Len())
		}

		qobj := mk(queue)
		h = runConcurrent(t, qobj, n, k, func(pid, i int) objtype.Op {
			if i%2 == 0 {
				return objtype.Op{Name: objtype.OpEnqueue, Arg: pid*10 + i}
			}
			return objtype.Op{Name: objtype.OpDequeue}
		})
		res, err = Check(queue, h)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Linearizable {
			t.Fatalf("%s queue history not linearizable (%d ops)", qobj.Name(), h.Len())
		}
	}
}

func TestRecorderTimestampsStrictlyIncrease(t *testing.T) {
	rec := NewRecorder(2)
	a := rec.Begin()
	b := rec.Begin()
	if b <= a {
		t.Fatal("clock must strictly increase")
	}
	rec.End(0, objtype.Op{Name: objtype.OpRead}, nil, a)
	rec.End(1, objtype.Op{Name: objtype.OpRead}, nil, b)
	if rec.History().Len() != 2 {
		t.Fatal("history lost operations")
	}
}
