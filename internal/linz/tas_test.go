package linz

import (
	"testing"

	"jayanti98/internal/objtype"
)

func tasOp() objtype.Op { return objtype.Op{Name: objtype.OpTestAndSet} }

// The TAS histories below are the shapes the zoo's randomized protocols
// can produce (and the shapes their seeded mutants produce); the explore
// harness feeds exactly such histories to this checker, so these tests pin
// the oracle the protocol tests rely on.

func TestTASSequentialWinnerFirst(t *testing.T) {
	h := NewHistory(3)
	h.Add(0, tasOp(), 0, 1, 2)
	h.Add(1, tasOp(), 1, 3, 4)
	h.Add(2, tasOp(), 1, 5, 6)
	res, err := Check(objtype.NewTAS(), h)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Linearizable {
		t.Fatal("one winner first, losers later must linearize")
	}
}

func TestTASTwoWinnersRejected(t *testing.T) {
	h := NewHistory(2)
	h.Add(0, tasOp(), 0, 1, 10)
	h.Add(1, tasOp(), 0, 2, 9)
	res, err := Check(objtype.NewTAS(), h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Linearizable {
		t.Fatal("two winners must be rejected even with overlapping intervals")
	}
}

// TestTASAllLosersRejected is the broken-TV shape: every operation returns
// 1, but the first linearized test&set must return 0.
func TestTASAllLosersRejected(t *testing.T) {
	h := NewHistory(2)
	h.Add(0, tasOp(), 1, 1, 10)
	h.Add(1, tasOp(), 1, 2, 9)
	res, err := Check(objtype.NewTAS(), h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Linearizable {
		t.Fatal("a history with no winner must be rejected")
	}
}

// TestTASRealTimeViolationRejected is the doorway-less-tournament shape: a
// loser completes strictly before the winner invokes, so the loser must
// linearize first — but then it would have won.
func TestTASRealTimeViolationRejected(t *testing.T) {
	h := NewHistory(2)
	h.Add(0, tasOp(), 1, 1, 2) // completed loser...
	h.Add(1, tasOp(), 0, 3, 4) // ...before the winner's invocation
	res, err := Check(objtype.NewTAS(), h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Linearizable {
		t.Fatal("completed loser before the winner's invocation must be rejected")
	}
}

// TestTASOverlappingLoserAllowed: with overlap the loser may linearize
// after the winner even though it returned first.
func TestTASOverlappingLoserAllowed(t *testing.T) {
	h := NewHistory(2)
	h.Add(0, tasOp(), 1, 1, 5)
	h.Add(1, tasOp(), 0, 2, 9)
	res, err := Check(objtype.NewTAS(), h)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Linearizable {
		t.Fatal("overlapping loser-then-winner must linearize")
	}
}

// TestTASPendingWinner: a truncated run where the eventual winner never
// returned — the pending op may linearize first (it could have taken
// effect), so the completed op's 1 response is explicable.
func TestTASPendingWinner(t *testing.T) {
	h := NewHistory(2)
	h.AddPending(0, tasOp(), 1)
	h.Add(1, tasOp(), 1, 2, 3)
	res, err := Check(objtype.NewTAS(), h)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Linearizable {
		t.Fatal("pending op must be allowed to absorb the win")
	}
	// But without any candidate winner — pending or not — a lone loser is
	// still impossible.
	h2 := NewHistory(2)
	h2.Add(1, tasOp(), 1, 2, 3)
	res, err = Check(objtype.NewTAS(), h2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Linearizable {
		t.Fatal("a lone loser with nobody else in the history must be rejected")
	}
}

// TestTASReadHistories: the spec's read operation observes the state
// transition at the winner's linearization point.
func TestTASReadHistories(t *testing.T) {
	h := NewHistory(3)
	h.Add(0, objtype.Op{Name: objtype.OpRead}, 0, 1, 2)
	h.Add(1, tasOp(), 0, 3, 4)
	h.Add(2, objtype.Op{Name: objtype.OpRead}, 1, 5, 6)
	res, err := Check(objtype.NewTAS(), h)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Linearizable {
		t.Fatal("read 0, win, read 1 must linearize")
	}
	h2 := NewHistory(3)
	h2.Add(0, objtype.Op{Name: objtype.OpRead}, 1, 1, 2) // reads set...
	h2.Add(1, tasOp(), 0, 3, 4)                          // ...before anyone set it
	res, err = Check(objtype.NewTAS(), h2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Linearizable {
		t.Fatal("read of 1 strictly before the only test&set must be rejected")
	}
}
